package nimblock

import (
	"testing"
	"time"
)

// TestClusterFailoverFacade drives a board crash through the public
// API: a FaultPlan with a board-crash event arms the failure domain
// layer, work fails over to the surviving board, and the per-board
// health states and failover stats are visible.
func TestClusterFailoverFacade(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.FaultPlan = "board-crash board=0 at=300ms recover=60s"
	cfg.Health = &HealthConfig{RetryBudget: 2}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		app, _ := Benchmark(Rendering3D)
		if err := cl.Submit(app, 3, PriorityMedium, time.Duration(i)*100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("%d results", len(res))
	}
	completed, failed := 0, 0
	for i, r := range res {
		switch {
		case r.Failed:
			if r.FailReason == "" {
				t.Fatalf("result %d failed without a reason", i)
			}
			failed++
		default:
			if r.Attempts < 1 || r.Response <= 0 {
				t.Fatalf("result %d malformed: %+v", i, r)
			}
			completed++
		}
	}
	if completed+failed != 6 {
		t.Fatalf("conservation broken: %d + %d != 6", completed, failed)
	}
	st := cl.FailoverStats()
	if st.Deaths == 0 {
		t.Fatal("board-crash in the plan never registered")
	}
	if st.FailedSubmissions != failed {
		t.Fatalf("%d failed results but stats count %d", failed, st.FailedSubmissions)
	}
	states := cl.BoardHealth()
	if len(states) != 2 {
		t.Fatalf("board health = %v", states)
	}
	for b, s := range states {
		switch s {
		case "healthy", "degraded", "recovering":
		default:
			t.Fatalf("board %d ended the run %q", b, s)
		}
	}
}

// TestClusterHedgedDispatchFacade checks the public hedging knob: a
// high-priority submission is duplicated and the loser cancelled.
func TestClusterHedgedDispatchFacade(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Health = &HealthConfig{HedgePriority: 8}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := Benchmark(LeNet)
	if err := cl.Submit(app, 2, PriorityLow, 0); err != nil {
		t.Fatal(err)
	}
	critical, _ := Benchmark(Rendering3D)
	if err := cl.Submit(critical, 2, 9, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	st := cl.FailoverStats()
	if st.Hedged != 1 || st.HedgeCancelled != 1 {
		t.Fatalf("hedged=%d cancelled=%d, want 1/1", st.Hedged, st.HedgeCancelled)
	}
	// No failure layer engaged: BoardHealth still reports, stats clean.
	if st.Deaths != 0 || st.FailedSubmissions != 0 {
		t.Fatalf("phantom failures: %+v", st)
	}
}
