module nimblock

go 1.22
