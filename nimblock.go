// Package nimblock is a Go reproduction of "Nimblock: Scheduling for
// Fine-grained FPGA Sharing through Virtualization" (ISCA 2023).
//
// It provides a virtualized, slot-based FPGA overlay — simulated in
// deterministic virtual time because the original requires a Xilinx
// ZCU106 board — together with the Nimblock hypervisor and five
// scheduling algorithms: the Nimblock algorithm itself (token-based
// candidate selection, goal-number slot allocation, cross-batch
// pipelining, and batch-preemption), a no-sharing baseline, FCFS,
// task-based PREMA, and Coyote-style round-robin.
//
// A minimal session:
//
//	sys, _ := nimblock.NewSystem(nimblock.DefaultConfig())
//	app, _ := nimblock.Benchmark(nimblock.LeNet)
//	sys.Submit(app, 5, nimblock.PriorityHigh, 0)
//	results, _ := sys.Run()
//
// Applications are slot-sized task DAGs; build custom ones with NewApp.
// Every submission carries a batch size (independent inputs processed by
// one request) and a priority level (1, 3, or 9).
package nimblock

import (
	"fmt"
	"time"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/faults"
	"nimblock/internal/fpga"
	"nimblock/internal/hv"
	"nimblock/internal/interconnect"
	"nimblock/internal/metrics"
	"nimblock/internal/sched"
	"nimblock/internal/sched/baseline"
	"nimblock/internal/sched/ckpt"
	"nimblock/internal/sched/energy"
	"nimblock/internal/sched/fcfs"
	"nimblock/internal/sched/prema"
	"nimblock/internal/sched/rr"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
	"nimblock/internal/trace"
)

// Priority levels used throughout the paper.
const (
	PriorityLow    = 1
	PriorityMedium = 3
	PriorityHigh   = 9
)

// Benchmark names from the paper's evaluation suite.
const (
	LeNet            = apps.LeNet
	AlexNet          = apps.AlexNet
	ImageCompression = apps.ImageCompression
	OpticalFlow      = apps.OpticalFlow
	Rendering3D      = apps.Rendering3D
	DigitRecognition = apps.DigitRecognition
)

// Algorithm selects a scheduling policy.
type Algorithm string

// Available scheduling algorithms.
const (
	// AlgoNimblock is the full Nimblock algorithm (Section 4).
	AlgoNimblock Algorithm = "Nimblock"
	// AlgoNimblockNoPreempt disables batch-preemption (ablation).
	AlgoNimblockNoPreempt Algorithm = "NimblockNoPreempt"
	// AlgoNimblockNoPipe disables cross-batch pipelining (ablation).
	AlgoNimblockNoPipe Algorithm = "NimblockNoPipe"
	// AlgoNimblockNoPreemptNoPipe disables both (ablation).
	AlgoNimblockNoPreemptNoPipe Algorithm = "NimblockNoPreemptNoPipe"
	// AlgoNimblockCheckpoint is the full algorithm plus mid-batch
	// SLO-rescue preemption; pair it with Config.Checkpoint so rescue
	// preemptions are honoured mid-item via checkpoint/restore.
	AlgoNimblockCheckpoint Algorithm = "NimblockCheckpoint"
	// AlgoBaseline gives the whole board to one application at a time.
	AlgoBaseline Algorithm = "Baseline"
	// AlgoFCFS shares slots first-come, first-served.
	AlgoFCFS Algorithm = "FCFS"
	// AlgoPREMA is the task-based PREMA comparator.
	AlgoPREMA Algorithm = "PREMA"
	// AlgoRR is the Coyote-style round-robin comparator.
	AlgoRR Algorithm = "RR"
	// AlgoNimblockEnergy is the Nimblock algorithm with goal-capped
	// (energy-conserving) slot allocation and weighted per-tenant
	// fairness; pair with SubmitTenant and a Board power model.
	AlgoNimblockEnergy Algorithm = "NimblockEnergy"
)

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoBaseline, AlgoFCFS, AlgoPREMA, AlgoRR,
		AlgoNimblock, AlgoNimblockNoPreempt, AlgoNimblockNoPipe, AlgoNimblockNoPreemptNoPipe,
		AlgoNimblockCheckpoint, AlgoNimblockEnergy,
	}
}

// Config parameterizes a System.
type Config struct {
	// Algorithm selects the scheduling policy (default AlgoNimblock).
	Algorithm Algorithm
	// Slots is the number of reconfigurable slots (default 10, the
	// ZCU106 overlay of the evaluation).
	Slots int
	// Board, when non-nil, is the board's full capability spec — slot
	// count, reconfiguration bandwidth, latency scale, and per-slot
	// power model — and overrides Slots. A power model here is what
	// makes System.Energy report non-zero joules.
	Board *BoardSpec
	// SchedInterval is the periodic scheduling interval (default 400 ms).
	SchedInterval time.Duration
	// ReconfigFaultRate injects transient reconfiguration faults with
	// the given probability (default 0). For richer scenarios use
	// FaultPlan, which overrides this knob.
	ReconfigFaultRate float64
	// FaultPlan is a deterministic fault scenario in the faults DSL:
	// one fault per line, e.g.
	//
	//	seed 42
	//	crc  prob=0.1 slot=3     # transient CRC faults on slot 3
	//	dead slot=7 at=2.5s      # permanent failure mid-run
	//	hang prob=0.01 app=LeNet # kernel hang (needs WatchdogFactor)
	//
	// See package internal/faults for the full grammar.
	FaultPlan string
	// WatchdogFactor arms the hypervisor watchdog: an item running past
	// WatchdogFactor x its HLS estimate is killed and re-executed.
	// Required to recover from injected hangs (default 0, disabled).
	WatchdogFactor float64
	// QuarantineThreshold takes a slot offline after that many injected
	// faults; schedulers re-plan for the smaller board (default 0,
	// disabled).
	QuarantineThreshold int
	// EnableTrace records a full execution trace, retrievable with
	// System.TraceDump and System.Gantt.
	EnableTrace bool
	// RelocatableBitstreams stores one slot-agnostic partial bitstream
	// per task instead of one per (task, slot), dividing bitstream
	// storage by the slot count; scheduling behaviour is unchanged.
	RelocatableBitstreams bool
	// Interconnect selects the inter-slot data path: "" or "folded"
	// (calibrated default, data movement folded into task latencies),
	// "ps-bus" (explicit serialized transfers through the PS, as on the
	// real overlay), or "noc" (parallel mesh, the paper's future work).
	Interconnect string
	// CheckpointPreemption switches batch-boundary preemption to classic
	// mid-item checkpointing with the given state save/restore cost per
	// side (0 keeps the paper's batch-preemption). Superseded by
	// Checkpoint, the full subsystem; setting both is an error.
	CheckpointPreemption time.Duration
	// Checkpoint enables the full checkpoint/restore subsystem: items
	// checkpoint at preemption points (periodically and on demand),
	// state streams through the configuration port at a cost
	// proportional to its size, and watchdog kills, slot failures, and
	// mid-item preemptions resume from the last checkpoint instead of
	// re-executing from scratch.
	Checkpoint CheckpointConfig
	// Horizon bounds virtual time (default ~55 hours); Run fails if
	// applications are still pending then.
	Horizon time.Duration
	// Observer, when non-nil, receives every trace event live as the
	// simulation emits it — independent of EnableTrace. See the Observer
	// interface for the contract.
	Observer Observer
}

// CheckpointConfig configures the checkpoint/restore subsystem.
type CheckpointConfig struct {
	// Enabled turns the subsystem on.
	Enabled bool
	// Period saves a checkpoint periodically while an item runs (zero:
	// on-demand captures only, at preemptions).
	Period time.Duration
	// StateBytes is the per-task checkpoint state size used when an
	// application declares none (default 1 MiB).
	StateBytes int64
	// DefaultPoints is the number of uniform preemption points assumed
	// for tasks that declare none (default 9, every 10%).
	DefaultPoints int
}

// BoardSpec describes one board's capabilities for heterogeneous
// deployments. Parse one with ParseBoardSpec or fill the fields
// directly; every field except Slots treats zero as "inherit the
// platform default".
type BoardSpec struct {
	// Slots is the number of reconfigurable slots (must be >= 1).
	Slots int
	// CAPBytesPerSec and SDBytesPerSec override the reconfiguration
	// pipeline bandwidths: the configuration access port and the
	// bitstream storage feeding it.
	CAPBytesPerSec float64
	SDBytesPerSec  float64
	// LatencyScale stretches (>1) or shrinks (<1) every kernel latency
	// relative to the reference platform.
	LatencyScale float64
	// StaticWattsPerSlot burns on every usable slot for the whole run;
	// ActiveWattsPerSlot adds while a slot reconfigures or computes.
	// Together they drive System.Energy.
	StaticWattsPerSlot float64
	ActiveWattsPerSlot float64
}

// ParseBoardSpec parses a textual board spec of whitespace- or
// comma-separated key=value tokens, e.g.
//
//	"slots=8 scale=1.25 static=2.5 active=1.5"
//
// Keys: slots, cap, sd, scale, static, active (matching the BoardSpec
// fields in order). Unknown or duplicate keys, malformed numbers, and
// physically meaningless values are errors.
func ParseBoardSpec(s string) (*BoardSpec, error) {
	sp, err := fpga.ParseSpec(s)
	if err != nil {
		return nil, err
	}
	b := BoardSpec(sp)
	return &b, nil
}

// String renders the spec in the syntax ParseBoardSpec accepts,
// omitting zero (inherited) fields.
func (b BoardSpec) String() string { return fpga.Spec(b).String() }

// DefaultConfig mirrors the paper's evaluation platform with the full
// Nimblock algorithm.
func DefaultConfig() Config {
	return Config{
		Algorithm:     AlgoNimblock,
		Slots:         10,
		SchedInterval: 400 * time.Millisecond,
	}
}

// Application is a compiled task-graph ready for submission.
type Application struct {
	graph *taskgraph.Graph
}

// Name reports the application name.
func (a *Application) Name() string { return a.graph.Name() }

// NumTasks reports the number of slot-sized tasks.
func (a *Application) NumTasks() int { return a.graph.NumTasks() }

// NumEdges reports the number of dependency edges.
func (a *Application) NumEdges() int { return a.graph.NumEdges() }

// CriticalPath reports the per-item latency lower bound.
func (a *Application) CriticalPath() time.Duration { return a.graph.CriticalPath().Std() }

// TaskID identifies a task within an AppBuilder.
type TaskID int

// AppBuilder constructs a custom application DAG.
type AppBuilder struct {
	b *taskgraph.Builder
}

// NewApp starts building a custom application. Each task carries its
// per-batch-item latency; dependencies form a DAG.
func NewApp(name string) *AppBuilder {
	return &AppBuilder{b: taskgraph.NewBuilder(name)}
}

// AddTask appends a slot-sized task with the given per-item latency.
func (ab *AppBuilder) AddTask(name string, latency time.Duration) TaskID {
	return TaskID(ab.b.AddTask(name, sim.FromStd(latency)))
}

// AddDependency makes task "to" consume the output of task "from".
func (ab *AppBuilder) AddDependency(from, to TaskID) *AppBuilder {
	ab.b.AddEdge(int(from), int(to))
	return ab
}

// Chain links tasks in sequence.
func (ab *AppBuilder) Chain(ids ...TaskID) *AppBuilder {
	for i := 1; i < len(ids); i++ {
		ab.AddDependency(ids[i-1], ids[i])
	}
	return ab
}

// Build validates and freezes the application.
func (ab *AppBuilder) Build() (*Application, error) {
	g, err := ab.b.Build()
	if err != nil {
		return nil, err
	}
	return &Application{graph: g}, nil
}

// Benchmark returns one of the paper's six evaluation applications.
func Benchmark(name string) (*Application, error) {
	g, err := apps.Graph(name)
	if err != nil {
		return nil, err
	}
	return &Application{graph: g}, nil
}

// Benchmarks lists the evaluation suite names.
func Benchmarks() []string { return apps.Names() }

// Result is the per-application outcome of a run.
type Result struct {
	// App is the application name; ID disambiguates submissions.
	App string
	ID  int64
	// Batch and Priority echo the submission.
	Batch    int
	Priority int
	// Arrival, FirstLaunch, and Retire are instants in virtual time
	// since system start.
	Arrival     time.Duration
	FirstLaunch time.Duration
	Retire      time.Duration
	// Response is Retire - Arrival, the paper's primary metric.
	Response time.Duration
	// Run, Reconfig, and Wait break down where time went.
	Run      time.Duration
	Reconfig time.Duration
	Wait     time.Duration
	// Preemptions counts batch-preemptions suffered.
	Preemptions int
	// Reconfigurations counts slot configurations performed.
	Reconfigurations int
}

// Throughput reports batch items completed per second of response time.
func (r Result) Throughput() float64 {
	if r.Response <= 0 {
		return 0
	}
	return float64(r.Batch) / r.Response.Seconds()
}

// System is one virtualized FPGA with a hypervisor and a scheduling
// policy. Create with NewSystem, Submit applications, then Run.
type System struct {
	eng     *sim.Engine
	hv      *hv.Hypervisor
	cfg     Config
	horizon sim.Time
	// energy is the stats sampled at engine quiescence (the makespan)
	// during Run; Run's final clock sits at the horizon, where lazy
	// accrual would price static power over the idle tail.
	energy *hv.EnergyStats
}

// newPolicy builds the scheduler for the config.
func newPolicy(cfg Config, board hv.Config) (sched.Scheduler, error) {
	switch cfg.Algorithm {
	case AlgoNimblock:
		return core.New(core.Options{Preemption: true, Pipelining: true}, board.Board), nil
	case AlgoNimblockNoPreempt:
		return core.New(core.Options{Pipelining: true}, board.Board), nil
	case AlgoNimblockNoPipe:
		return core.New(core.Options{Preemption: true}, board.Board), nil
	case AlgoNimblockNoPreemptNoPipe:
		return core.New(core.Options{}, board.Board), nil
	case AlgoNimblockCheckpoint:
		return ckpt.New(ckpt.DefaultOptions(), board.Board), nil
	case AlgoNimblockEnergy:
		return energy.New(board.Board), nil
	case AlgoBaseline:
		return baseline.New(), nil
	case AlgoFCFS:
		return fcfs.New(), nil
	case AlgoPREMA:
		return prema.New(), nil
	case AlgoRR:
		return rr.New(), nil
	default:
		return nil, fmt.Errorf("nimblock: unknown algorithm %q", cfg.Algorithm)
	}
}

// NewSystem builds a virtualized FPGA system.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgoNimblock
	}
	hcfg := hv.DefaultConfig()
	if cfg.Slots > 0 {
		hcfg.Board.Slots = cfg.Slots
	}
	if cfg.Board != nil {
		sp := fpga.Spec(*cfg.Board)
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		hcfg.Board = sp.Apply(hcfg.Board)
	}
	if cfg.SchedInterval > 0 {
		hcfg.SchedInterval = sim.FromStd(cfg.SchedInterval)
	}
	if cfg.ReconfigFaultRate > 0 {
		hcfg.Board.FaultRate = cfg.ReconfigFaultRate
		hcfg.Board.MaxRetries = 10
	}
	if cfg.FaultPlan != "" {
		plan, err := faults.ParsePlan(cfg.FaultPlan)
		if err != nil {
			return nil, err
		}
		factory, err := plan.Factory()
		if err != nil {
			return nil, err
		}
		hcfg.Board.NewInjector = factory
		hcfg.Board.MaxRetries = 10
	}
	if cfg.WatchdogFactor > 0 {
		hcfg.WatchdogFactor = cfg.WatchdogFactor
		hcfg.WatchdogGrace = 50 * sim.Millisecond
	}
	hcfg.QuarantineThreshold = cfg.QuarantineThreshold
	if cfg.Horizon > 0 {
		hcfg.Horizon = sim.Time(sim.FromStd(cfg.Horizon))
	}
	hcfg.EnableTrace = cfg.EnableTrace
	hcfg.Observer = wrapObserver(cfg.Observer)
	hcfg.RelocatableBitstreams = cfg.RelocatableBitstreams
	switch cfg.Interconnect {
	case "", "folded":
		hcfg.Interconnect = interconnect.DefaultConfig()
	case "ps-bus":
		hcfg.Interconnect = interconnect.DefaultPSBus()
	case "noc":
		hcfg.Interconnect = interconnect.DefaultNoC()
	default:
		return nil, fmt.Errorf("nimblock: unknown interconnect %q", cfg.Interconnect)
	}
	if cfg.CheckpointPreemption > 0 {
		hcfg.Preempt = hv.PreemptWithCheckpoint
		hcfg.CheckpointSave = sim.FromStd(cfg.CheckpointPreemption)
		hcfg.CheckpointRestore = sim.FromStd(cfg.CheckpointPreemption)
	}
	if cfg.Checkpoint.Enabled {
		hcfg.Checkpoint = hv.CheckpointConfig{
			Enabled:       true,
			Period:        sim.FromStd(cfg.Checkpoint.Period),
			StateBytes:    cfg.Checkpoint.StateBytes,
			DefaultPoints: cfg.Checkpoint.DefaultPoints,
		}
	}
	pol, err := newPolicy(cfg, hcfg)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	h, err := hv.New(eng, hcfg, pol)
	if err != nil {
		return nil, err
	}
	return &System{eng: eng, hv: h, cfg: cfg, horizon: hcfg.Horizon}, nil
}

// Submit schedules an application arrival at the given virtual time
// offset with the given batch size and priority level.
func (s *System) Submit(app *Application, batch, priority int, arrival time.Duration) error {
	if app == nil {
		return fmt.Errorf("nimblock: nil application")
	}
	return s.hv.Submit(app.graph, batch, priority, sim.Time(sim.FromStd(arrival)))
}

// SubmitTenant is Submit with a tenant label and a service weight.
// The fairness-aware AlgoNimblockEnergy policy favours tenants whose
// weighted delivered service lags; other policies ignore the label but
// still account service per tenant (see TenantServices). A weight <= 0
// means 1.
func (s *System) SubmitTenant(app *Application, batch, priority int, arrival time.Duration, tenant string, weight float64) error {
	if app == nil {
		return fmt.Errorf("nimblock: nil application")
	}
	_, err := s.hv.SubmitTenant(app.graph, batch, priority, sim.Time(sim.FromStd(arrival)), tenant, weight)
	return err
}

// EnergyStats reports the board's integrated energy under the power
// model on Config.Board. Every field is zero when no power model is
// configured.
type EnergyStats struct {
	// StaticJoules integrates the per-slot static power over every
	// usable slot for the whole run; ActiveJoules integrates the active
	// power over occupied (reconfiguring or computing) slot time.
	StaticJoules, ActiveJoules float64
	// OccupiedSlotSeconds and UsableSlotSeconds are the underlying
	// slot-time integrals.
	OccupiedSlotSeconds, UsableSlotSeconds float64
}

// TotalJoules is static plus active energy.
func (e EnergyStats) TotalJoules() float64 { return e.StaticJoules + e.ActiveJoules }

// Energy reports integrated energy: after Run, the batch's total
// sampled at the makespan (the instant the last event fired), so
// static joules price the time the work actually needed; before Run,
// whatever has accrued at the current virtual time.
func (s *System) Energy() EnergyStats {
	es := s.hv.Energy()
	if s.energy != nil {
		es = *s.energy
	}
	return EnergyStats{
		StaticJoules:        es.StaticJoules,
		ActiveJoules:        es.ActiveJoules,
		OccupiedSlotSeconds: es.OccupiedSlotSeconds,
		UsableSlotSeconds:   es.UsableSlotSeconds,
	}
}

// TenantServices reports the weighted service (occupied slot time
// divided by the submission weight) delivered to each tenant named in
// SubmitTenant calls.
func (s *System) TenantServices() map[string]time.Duration {
	raw := s.hv.TenantServices()
	out := make(map[string]time.Duration, len(raw))
	for tenant, d := range raw {
		out[tenant] = d.Std()
	}
	return out
}

// FairnessIndex is Jain's index over per-tenant weighted service: 1
// when every tenant got an equal weighted share, 1/n under total
// monopoly, and 1 degenerately when no tenant service was recorded.
func (s *System) FairnessIndex() float64 {
	raw := s.hv.TenantServices()
	xs := make([]float64, 0, len(raw))
	for _, d := range raw {
		xs = append(xs, d.Seconds())
	}
	return metrics.JainIndex(xs)
}

// Run executes the simulation until every submitted application retires
// and returns per-application results in submission order.
func (s *System) Run() ([]Result, error) {
	// Drain to quiescence (bounded by the horizon, so horizon
	// enforcement still sees stuck applications) and sample energy at
	// the makespan before the hypervisor's collection pass advances the
	// clock to the horizon.
	s.eng.DrainUntil(s.horizon)
	es := s.hv.Energy()
	s.energy = &es
	raw, err := s.hv.Run()
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(raw))
	for i, r := range raw {
		out[i] = Result{
			App:              r.App,
			ID:               r.AppID,
			Batch:            r.Batch,
			Priority:         r.Priority,
			Arrival:          time.Duration(r.Arrival) * time.Microsecond,
			FirstLaunch:      time.Duration(r.FirstLaunch) * time.Microsecond,
			Retire:           time.Duration(r.Retire) * time.Microsecond,
			Response:         r.Response.Std(),
			Run:              r.Run.Std(),
			Reconfig:         r.Reconfig.Std(),
			Wait:             r.Wait.Std(),
			Preemptions:      r.Preemptions,
			Reconfigurations: r.Reconfigurations,
		}
	}
	return out, nil
}

// Algorithm reports the active scheduling policy name.
func (s *System) Algorithm() string { return s.hv.Policy().Name() }

// SingleSlotLatency is the latency of the application on one slot with
// no contention — the basis of the paper's deadline analysis.
func (s *System) SingleSlotLatency(app *Application, batch int) time.Duration {
	return s.hv.SingleSlotLatency(app.graph, batch).Std()
}

// TraceDump returns the recorded execution trace (one event per line);
// empty unless Config.EnableTrace was set.
func (s *System) TraceDump() string { return s.hv.Trace().Dump() }

// TraceJSON exports the execution trace for offline analysis; empty
// unless Config.EnableTrace was set.
func (s *System) TraceJSON() ([]byte, error) { return s.hv.Trace().MarshalJSON() }

// Gantt renders per-slot occupancy over the run as ASCII art; empty
// unless Config.EnableTrace was set. The chart spans from time zero to
// the last recorded event.
func (s *System) Gantt(cols int) string {
	var end sim.Time
	for _, e := range s.hv.Trace().Events() {
		if e.At > end {
			end = e.At
		}
	}
	return s.hv.Trace().Gantt(s.hv.Board().NumSlots(), end, cols)
}

// Preemptions reports the total batch-preemptions performed across the
// run; requires Config.EnableTrace.
func (s *System) Preemptions() int {
	return s.hv.Trace().Count(trace.KindPreempt)
}

// RecoveryStats summarizes fault injection and recovery over a run.
type RecoveryStats struct {
	// FaultsInjected counts faults that fired (reconfiguration faults,
	// hangs, slowdowns); Retries and Recovered track the board's retry
	// machinery.
	FaultsInjected int
	Retries        int
	Recovered      int
	// WatchdogKills counts items killed past their deadline and
	// re-executed.
	WatchdogKills int
	// Quarantined and SlotsOffline count slots lost to the fault
	// threshold and to all causes respectively.
	Quarantined  int
	SlotsOffline int
	// WastedWork is fabric time burned on executions whose results were
	// lost. With Config.Checkpoint enabled, only progress since the last
	// checkpoint is wasted.
	WastedWork time.Duration
	// ResumedItems counts items that resumed from a checkpoint instead
	// of re-executing; SavedWork is the work those restores carried
	// over; CheckpointSaves and CheckpointFaults count state captures
	// and snapshots found lost or corrupt at restore time.
	ResumedItems     int
	CheckpointSaves  int
	CheckpointFaults int
	SavedWork        time.Duration
	// CheckpointOverhead is time spent streaming checkpoint state
	// through the configuration port (never counted in WastedWork).
	CheckpointOverhead time.Duration
	// EffectiveSlots is the time-weighted average usable slot count —
	// the board size the run actually had.
	EffectiveSlots float64
}

// Recovery reports fault-injection and recovery statistics; all zero
// when no faults were configured.
func (s *System) Recovery() RecoveryStats {
	rec := s.hv.Recovery()
	return RecoveryStats{
		FaultsInjected:     rec.FaultsInjected,
		Retries:            rec.Retries,
		Recovered:          rec.Recovered,
		WatchdogKills:      rec.WatchdogKills,
		Quarantined:        rec.Quarantined,
		SlotsOffline:       rec.SlotsOffline,
		WastedWork:         rec.WastedWork.Std(),
		ResumedItems:       rec.ResumedItems,
		CheckpointSaves:    rec.CheckpointSaves,
		CheckpointFaults:   rec.CheckpointFaults,
		SavedWork:          rec.SavedWork.Std(),
		CheckpointOverhead: rec.CheckpointOverhead.Std(),
		EffectiveSlots:     metrics.EffectiveSlots(rec.Timeline, s.eng.Now()),
	}
}
