// Multitenant: a long-running low-priority tenant pipelines aggressively
// across slots until high-priority tenants arrive; Nimblock batch-preempts
// the over-consumer at batch boundaries and the newcomers meet their
// deadlines. The example prints the preemption events and a per-slot
// Gantt chart of the run.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"nimblock"
)

func main() {
	cfg := nimblock.DefaultConfig()
	cfg.EnableTrace = true
	sys, err := nimblock.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The hog: a 9-task optical-flow pipeline with a large batch. Alone
	// on the board it will spread across most slots.
	hog, _ := nimblock.Benchmark(nimblock.OpticalFlow)
	if err := sys.Submit(hog, 20, nimblock.PriorityLow, 0); err != nil {
		log.Fatal(err)
	}
	// Two seconds later, latency-sensitive tenants arrive.
	for i, name := range []string{nimblock.LeNet, nimblock.Rendering3D, nimblock.ImageCompression} {
		app, _ := nimblock.Benchmark(name)
		at := 2*time.Second + time.Duration(i)*100*time.Millisecond
		if err := sys.Submit(app, 5, nimblock.PriorityHigh, at); err != nil {
			log.Fatal(err)
		}
	}

	results, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-application outcome:")
	for _, r := range results {
		fmt.Printf("  %-18s prio=%d response=%-10v preemptions=%d\n",
			r.App, r.Priority, r.Response.Round(time.Millisecond), r.Preemptions)
	}
	fmt.Printf("\ntotal batch-preemptions: %d\n", sys.Preemptions())

	fmt.Println("\npreemption timeline (from the execution trace):")
	for _, line := range strings.Split(sys.TraceDump(), "\n") {
		if strings.Contains(line, "preempt") {
			fmt.Println(" ", line)
		}
	}

	fmt.Println("\nslot occupancy (R = reconfiguring, # = computing):")
	fmt.Print(sys.Gantt(100))
}
