// Overload: sweep a two-board Nimblock cluster's arrival rate past
// saturation, with an admission controller in front, and watch the
// system degrade gracefully — admitted traffic keeps bounded latency
// while the controller sheds the excess (and says why: queue full,
// missed deadline, tenant over quota).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimblock"
)

func main() {
	// The job mix: small LeNet inferences from an interactive tenant
	// with a latency SLO, plus bulk 3DRendering work from a batch tenant
	// that is capped so it cannot crowd the queue.
	names := []string{"LeNet", "3DRendering"}
	apps := map[string]*nimblock.Application{}
	for _, n := range names {
		a, err := nimblock.Benchmark(n)
		if err != nil {
			log.Fatal(err)
		}
		apps[n] = a
	}

	fmt.Println("rate multiplier | offered | completed | shed | deadline | quota | worst admitted latency")
	fmt.Println("----------------+---------+-----------+------+----------+-------+-----------------------")
	for _, mult := range []float64{0.5, 1, 2, 4} {
		cfg := nimblock.DefaultClusterConfig()
		cfg.Boards = 2
		cfg.Admission = &nimblock.AdmissionConfig{
			// Queue bound: at most 8 submissions admitted-but-unfinished;
			// at most 4 on the boards at once. Past that, lowest-priority
			// newest work is shed.
			Capacity:    8,
			MaxInFlight: 4,
			// The batch tenant may hold at most 2 admission slots.
			Quotas: map[string]int{"batch": 2},
		}
		cl, err := nimblock.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}

		// Poisson arrivals at mult x a ~2.5 jobs/s baseline, identical
		// job mix at every multiplier.
		rng := rand.New(rand.NewSource(42))
		at := time.Duration(0)
		const jobs = 40
		for i := 0; i < jobs; i++ {
			if i%3 == 0 {
				// Bulk rendering from the capped batch tenant.
				err = cl.SubmitWith(apps["3DRendering"], 12, 1, at, nimblock.SubmitOptions{Tenant: "batch"})
			} else {
				// Interactive inference with a 4 s SLO: if the backlog
				// makes that impossible, reject at arrival instead of
				// serving a useless late answer.
				err = cl.SubmitWith(apps["LeNet"], 2, 9, at, nimblock.SubmitOptions{Tenant: "online", SLO: 4 * time.Second})
			}
			if err != nil {
				log.Fatal(err)
			}
			at += time.Duration(rng.ExpFloat64() * float64(400*time.Millisecond) / mult)
		}

		results, err := cl.Run()
		if err != nil {
			log.Fatal(err)
		}
		var completed, shed, deadline, quota int
		var worst time.Duration
		for _, r := range results {
			switch {
			case !r.Rejected:
				completed++
				if r.Response > worst {
					worst = r.Response
				}
			case r.RejectReason == "shed":
				shed++
			case r.RejectReason == "deadline":
				deadline++
			case r.RejectReason == "quota":
				quota++
			}
		}
		fmt.Printf("%14gx | %7d | %9d | %4d | %8d | %5d | %v\n",
			mult, len(results), completed, shed, deadline, quota, worst.Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("Admitted-traffic latency stays bounded as offered load quadruples;")
	fmt.Println("the admission controller absorbs the excess as explicit rejections.")
}
