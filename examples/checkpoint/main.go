// Checkpoint: run the same fault-injected workload twice — once with
// the checkpoint/restore subsystem enabled, once without — and show
// the difference between resuming killed work from a snapshot and
// re-executing it from scratch: resumed items, fabric seconds
// salvaged, and the CAP overhead paid for the snapshots.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"nimblock"
)

// run builds a system under a slow-fault plan aggressive enough that
// the watchdog fires throughout the run, submits a contended mix, and
// returns it after completion.
func run(cfg nimblock.Config) *nimblock.System {
	// Every item runs 4x slow for the first two simulated minutes, so a
	// 2x watchdog kills mid-flight work repeatedly. Whether that work is
	// lost or salvaged is exactly what the checkpoint subsystem decides.
	cfg.FaultPlan = "seed 7\nslow prob=0.6 factor=4 until=120s\n"
	cfg.WatchdogFactor = 2
	cfg.EnableTrace = true
	sys, err := nimblock.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{nimblock.LeNet, nimblock.OpticalFlow, nimblock.ImageCompression, nimblock.Rendering3D}
	for i, name := range names {
		app, err := nimblock.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Submit(app, 6, nimblock.PriorityMedium, time.Duration(i)*200*time.Millisecond); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	return sys
}

func main() {
	ckptCfg := nimblock.DefaultConfig()
	ckptCfg.Checkpoint = nimblock.CheckpointConfig{
		Enabled: true,
		Period:  50 * time.Millisecond, // snapshot cadence per active task
	}
	withCkpt := run(ckptCfg)
	plain := run(nimblock.DefaultConfig())

	cr, pr := withCkpt.Recovery(), plain.Recovery()
	fmt.Println("Same workload, same faults, same 2x watchdog:")
	fmt.Printf("  %-28s %14s %14s\n", "", "checkpointing", "re-execute")
	fmt.Printf("  %-28s %14d %14d\n", "watchdog kills", cr.WatchdogKills, pr.WatchdogKills)
	fmt.Printf("  %-28s %14d %14d\n", "items resumed from snapshot", cr.ResumedItems, pr.ResumedItems)
	fmt.Printf("  %-28s %14v %14v\n", "fabric work wasted",
		cr.WastedWork.Round(time.Millisecond), pr.WastedWork.Round(time.Millisecond))
	fmt.Printf("  %-28s %14v %14v\n", "fabric work salvaged",
		cr.SavedWork.Round(time.Millisecond), pr.SavedWork.Round(time.Millisecond))
	fmt.Printf("  %-28s %14d %14d\n", "checkpoint saves", cr.CheckpointSaves, pr.CheckpointSaves)
	fmt.Printf("  %-28s %14v %14v\n", "CAP overhead paid",
		cr.CheckpointOverhead.Round(time.Millisecond), pr.CheckpointOverhead.Round(time.Millisecond))

	fmt.Println("\nFirst restores from the trace (kill -> resume, not re-execute):")
	shown := 0
	for _, line := range strings.Split(withCkpt.TraceDump(), "\n") {
		if strings.Contains(line, " restore ") {
			fmt.Println("  " + line)
			if shown++; shown == 5 {
				break
			}
		}
	}
}
