// Ablation: measure what pipelining and batch-preemption each contribute
// to Nimblock by running the same stressed workload under all four
// variants (Section 5.6 of the paper).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimblock"
)

func main() {
	variants := []nimblock.Algorithm{
		nimblock.AlgoNimblock,
		nimblock.AlgoNimblockNoPreempt,
		nimblock.AlgoNimblockNoPipe,
		nimblock.AlgoNimblockNoPreemptNoPipe,
	}
	fmt.Printf("%-26s %14s %14s %10s\n", "variant", "mean response", "worst", "preempts")
	var base time.Duration
	for _, v := range variants {
		mean, worst, preempts := run(v)
		if v == nimblock.AlgoNimblock {
			base = mean
		}
		fmt.Printf("%-26s %14v %14v %10d   (%.2fx Nimblock)\n",
			v, mean.Round(time.Millisecond), worst.Round(time.Millisecond),
			preempts, float64(mean)/float64(base))
	}
}

// run replays the same deterministic workload under one variant and
// returns the mean and worst response plus total preemptions.
func run(algo nimblock.Algorithm) (mean, worst time.Duration, preempts int) {
	cfg := nimblock.DefaultConfig()
	cfg.Algorithm = algo
	sys, err := nimblock.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	names := []string{
		nimblock.LeNet, nimblock.ImageCompression, nimblock.Rendering3D,
		nimblock.OpticalFlow, nimblock.AlexNet,
	}
	prios := []int{nimblock.PriorityLow, nimblock.PriorityMedium, nimblock.PriorityHigh}
	at := time.Duration(0)
	for i := 0; i < 12; i++ {
		app, _ := nimblock.Benchmark(names[rng.Intn(len(names))])
		if err := sys.Submit(app, 5, prios[rng.Intn(len(prios))], at); err != nil {
			log.Fatal(err)
		}
		at += time.Duration(150+rng.Intn(50)) * time.Millisecond
	}
	results, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	var total time.Duration
	for _, r := range results {
		total += r.Response
		if r.Response > worst {
			worst = r.Response
		}
		preempts += r.Preemptions
	}
	return total / time.Duration(len(results)), worst, preempts
}
