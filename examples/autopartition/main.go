// Autopartition: build a fine-grained operation graph (the way an HLS
// flow sees an application) and let the compilation flow cluster it into
// slot-sized tasks automatically — the partitioning step the paper
// performs by hand for its six benchmarks — then run the result on the
// virtualized FPGA.
package main

import (
	"fmt"
	"log"
	"time"

	"nimblock"
)

func main() {
	// A small CNN at operation granularity: conv/pool/fc stages with
	// their relative slot footprints from synthesis.
	b := nimblock.NewOpApp("minicnn")
	conv1 := b.AddOp("conv1", 30*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.45, DSPs: 0.60})
	pool1 := b.AddOp("pool1", 5*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.15})
	conv2 := b.AddOp("conv2", 40*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.55, DSPs: 0.70})
	pool2 := b.AddOp("pool2", 5*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.15})
	fc1 := b.AddOp("fc1", 20*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.40, BRAMs: 0.60})
	fc2 := b.AddOp("fc2", 10*time.Millisecond, nimblock.ResourceDemand{LUTs: 0.25, BRAMs: 0.35})
	b.Chain(conv1, pool1, conv2, pool2, fc1, fc2)

	app, info, err := b.Partition()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned %q into %d slot-sized tasks (ops per task %v, mean slot utilization %.0f%%)\n",
		app.Name(), info.Tasks, info.OpsPerTask, 100*info.Utilization)
	fmt.Printf("task-graph: %d tasks, %d edges, critical path %v per item\n",
		app.NumTasks(), app.NumEdges(), app.CriticalPath())

	// Run the partitioned application alongside a benchmark tenant.
	sys, err := nimblock.NewSystem(nimblock.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	other, _ := nimblock.Benchmark(nimblock.OpticalFlow)
	if err := sys.Submit(other, 8, nimblock.PriorityLow, 0); err != nil {
		log.Fatal(err)
	}
	if err := sys.Submit(app, 10, nimblock.PriorityHigh, 300*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	results, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-14s batch=%-3d response=%v\n", r.App, r.Batch, r.Response.Round(time.Millisecond))
	}
}
