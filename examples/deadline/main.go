// Deadline: reproduce the paper's service-level analysis on a small
// workload. Deadlines are the single-slot latency of each application
// scaled by a factor Ds; the example sweeps Ds and reports the violation
// rate of each scheduling algorithm for high-priority tenants.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimblock"
)

type event struct {
	name    string
	batch   int
	prio    int
	arrival time.Duration
}

// workload draws a deterministic random stress-style event mix.
func workload() []event {
	rng := rand.New(rand.NewSource(7))
	names := []string{
		nimblock.LeNet, nimblock.ImageCompression, nimblock.Rendering3D,
		nimblock.OpticalFlow, nimblock.AlexNet,
	}
	prios := []int{nimblock.PriorityLow, nimblock.PriorityMedium, nimblock.PriorityHigh}
	var evs []event
	at := time.Duration(0)
	for i := 0; i < 14; i++ {
		evs = append(evs, event{
			name:    names[rng.Intn(len(names))],
			batch:   1 + rng.Intn(10),
			prio:    prios[rng.Intn(len(prios))],
			arrival: at,
		})
		at += time.Duration(150+rng.Intn(50)) * time.Millisecond
	}
	return evs
}

func main() {
	evs := workload()
	algos := []nimblock.Algorithm{
		nimblock.AlgoBaseline, nimblock.AlgoFCFS, nimblock.AlgoPREMA,
		nimblock.AlgoRR, nimblock.AlgoNimblock,
	}
	type run struct {
		results    []nimblock.Result
		singleSlot map[int64]time.Duration
	}
	runs := map[nimblock.Algorithm]run{}
	for _, algo := range algos {
		cfg := nimblock.DefaultConfig()
		cfg.Algorithm = algo
		sys, err := nimblock.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ss := map[int64]time.Duration{}
		for i, ev := range evs {
			app, _ := nimblock.Benchmark(ev.name)
			if err := sys.Submit(app, ev.batch, ev.prio, ev.arrival); err != nil {
				log.Fatal(err)
			}
			ss[int64(i+1)] = sys.SingleSlotLatency(app, ev.batch)
		}
		results, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		runs[algo] = run{results, ss}
	}

	fmt.Printf("%-6s", "Ds")
	for _, a := range algos {
		fmt.Printf("  %9s", a)
	}
	fmt.Println("  (violation rate, high priority)")
	for ds := 1.0; ds <= 8.0; ds += 0.5 {
		fmt.Printf("%-6.2f", ds)
		for _, a := range algos {
			r := runs[a]
			total, missed := 0, 0
			for _, res := range r.results {
				if res.Priority != nimblock.PriorityHigh {
					continue
				}
				total++
				deadline := time.Duration(ds * float64(r.singleSlot[res.ID]))
				if res.Response > deadline {
					missed++
				}
			}
			rate := 0.0
			if total > 0 {
				rate = float64(missed) / float64(total)
			}
			fmt.Printf("  %8.0f%%", 100*rate)
		}
		fmt.Println()
	}
}
