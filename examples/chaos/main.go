// Chaos: run a contended Nimblock workload while a fault plan kills
// slots, hangs a kernel, and peppers reconfigurations with transient
// CRC faults — then show that every application still completes, with
// the recovery events and statistics to prove it.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"nimblock"
)

func main() {
	cfg := nimblock.DefaultConfig()
	cfg.EnableTrace = true
	// The scenario: slot 9 dies outright mid-run, slot 3 develops a
	// transient CRC fault that quarantine eventually retires, and LeNet's
	// first kernel hangs once early on (the watchdog re-executes it).
	cfg.FaultPlan = `
seed 7
dead slot=9 at=1s
crc  slot=3 prob=0.9
hang app=LeNet task=0 prob=1 until=500ms
`
	cfg.WatchdogFactor = 3
	cfg.QuarantineThreshold = 5
	sys, err := nimblock.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	submissions := []struct {
		name    string
		batch   int
		prio    int
		arrival time.Duration
	}{
		{nimblock.OpticalFlow, 10, nimblock.PriorityLow, 0},
		{nimblock.LeNet, 5, nimblock.PriorityHigh, 100 * time.Millisecond},
		{nimblock.Rendering3D, 8, nimblock.PriorityMedium, 300 * time.Millisecond},
		{nimblock.DigitRecognition, 6, nimblock.PriorityHigh, 500 * time.Millisecond},
	}
	for _, s := range submissions {
		app, err := nimblock.Benchmark(s.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Submit(app, s.batch, s.prio, s.arrival); err != nil {
			log.Fatal(err)
		}
	}

	results, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("All applications completed despite the faults:")
	for _, r := range results {
		fmt.Printf("  %-18s batch=%-3d prio=%d  response=%8v\n",
			r.App, r.Batch, r.Priority, r.Response.Round(time.Millisecond))
	}

	rec := sys.Recovery()
	fmt.Println("\nRecovery statistics:")
	fmt.Printf("  faults injected   %d\n", rec.FaultsInjected)
	fmt.Printf("  retries/recovered %d/%d\n", rec.Retries, rec.Recovered)
	fmt.Printf("  watchdog kills    %d\n", rec.WatchdogKills)
	fmt.Printf("  slots offline     %d (quarantined %d)\n", rec.SlotsOffline, rec.Quarantined)
	fmt.Printf("  wasted work       %v\n", rec.WastedWork.Round(time.Millisecond))
	fmt.Printf("  effective slots   %.1f of 10\n", rec.EffectiveSlots)

	fmt.Println("\nRecovery events from the trace:")
	for _, line := range strings.Split(sys.TraceDump(), "\n") {
		for _, kind := range []string{"retry", "watchdog", "quarantine", "slot-offline", "fault"} {
			if strings.Contains(line, " "+kind+" ") {
				fmt.Println("  " + line)
				break
			}
		}
	}
}
