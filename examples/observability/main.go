// Observability: attach a live observer to a Nimblock system and build a
// per-application timeline while the simulation runs — no stored trace
// needed. The observer sees every scheduling event (arrivals, slot
// reconfigurations, work-item execution, preemptions, retirements) as it
// happens, which is how the -serve metrics endpoints of nimblock-sim and
// nimblock-paper are fed.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"nimblock"
)

// timeline folds the event stream into per-application lifecycle marks.
type timeline struct {
	first    map[string]time.Duration // app -> first event time
	done     map[string]time.Duration // app -> retirement time
	items    map[string]int           // app -> work items executed
	reconfig int
	events   int
}

func (t *timeline) Observe(e nimblock.TraceEvent) {
	t.events++
	key := fmt.Sprintf("%s#%d", e.App, e.AppID)
	switch e.Kind {
	case "arrival":
		t.first[key] = e.At
	case "retire":
		t.done[key] = e.At
	case "item-done":
		t.items[key]++
	case "reconfig-done":
		t.reconfig++
	}
}

func main() {
	tl := &timeline{
		first: map[string]time.Duration{},
		done:  map[string]time.Duration{},
		items: map[string]int{},
	}

	cfg := nimblock.DefaultConfig()
	cfg.Observer = tl // live stream; no trace log is stored
	sys, err := nimblock.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Four tenants with mixed priorities arriving over one second.
	submissions := []struct {
		name    string
		batch   int
		prio    int
		arrival time.Duration
	}{
		{nimblock.AlexNet, 6, nimblock.PriorityLow, 0},
		{nimblock.LeNet, 4, nimblock.PriorityHigh, 250 * time.Millisecond},
		{nimblock.ImageCompression, 8, nimblock.PriorityMedium, 500 * time.Millisecond},
		{nimblock.OpticalFlow, 5, nimblock.PriorityLow, 750 * time.Millisecond},
	}
	for _, s := range submissions {
		app, err := nimblock.Benchmark(s.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Submit(app, s.batch, s.prio, s.arrival); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	keys := make([]string, 0, len(tl.first))
	for k := range tl.first {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return tl.first[keys[i]] < tl.first[keys[j]] })

	fmt.Printf("observed %d events, %d reconfigurations\n\n", tl.events, tl.reconfig)
	fmt.Println("app              submit     complete   items")
	for _, k := range keys {
		fmt.Printf("%-16s %-10v %-10v %d\n",
			k, tl.first[k].Round(time.Millisecond), tl.done[k].Round(time.Millisecond), tl.items[k])
	}
}
