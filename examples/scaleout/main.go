// Scaleout: spread a bursty workload across a multi-FPGA cluster — the
// scale-out property the paper's introduction requires of a virtualized
// FPGA — and compare dispatch policies and cluster sizes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimblock"
)

// submitBurst sends a deterministic burst of mixed applications.
func submitBurst(cl *nimblock.Cluster) error {
	rng := rand.New(rand.NewSource(3))
	names := []string{
		nimblock.LeNet, nimblock.ImageCompression, nimblock.Rendering3D,
		nimblock.OpticalFlow, nimblock.AlexNet,
	}
	at := time.Duration(0)
	for i := 0; i < 16; i++ {
		app, err := nimblock.Benchmark(names[rng.Intn(len(names))])
		if err != nil {
			return err
		}
		if err := cl.Submit(app, 1+rng.Intn(8), nimblock.PriorityMedium, at); err != nil {
			return err
		}
		at += time.Duration(50+rng.Intn(100)) * time.Millisecond
	}
	return nil
}

func mean(res []nimblock.ClusterResult) time.Duration {
	var total time.Duration
	for _, r := range res {
		total += r.Response
	}
	return total / time.Duration(len(res))
}

func main() {
	fmt.Println("cluster size sweep (least-loaded dispatch, Nimblock per board):")
	for _, boards := range []int{1, 2, 4, 8} {
		cfg := nimblock.DefaultClusterConfig()
		cfg.Boards = boards
		cl, err := nimblock.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := submitBurst(cl); err != nil {
			log.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d board(s): mean response %v\n", boards, mean(res).Round(time.Millisecond))
	}

	fmt.Println("\ndispatch policy comparison (4 boards):")
	for _, d := range []nimblock.DispatchPolicy{
		nimblock.DispatchRoundRobin, nimblock.DispatchLeastLoaded,
		nimblock.DispatchLeastPending, nimblock.DispatchRandom,
	} {
		cfg := nimblock.DefaultClusterConfig()
		cfg.Boards = 4
		cfg.Dispatch = d
		cl, err := nimblock.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := submitBurst(cl); err != nil {
			log.Fatal(err)
		}
		res, err := cl.Run()
		if err != nil {
			log.Fatal(err)
		}
		perBoard := map[int]int{}
		for _, r := range res {
			perBoard[r.Board]++
		}
		fmt.Printf("  %-14s mean response %-10v placement %v\n",
			d, mean(res).Round(time.Millisecond), perBoard)
	}
}
