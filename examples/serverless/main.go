// Serverless: run FPGA functions behind a FaaS front-end — the computing
// model the paper's introduction says FPGA virtualization will enable.
// Functions are registered once; invocations arrive in bursts; the
// dispatcher keeps functions on warm boards and pays cold starts
// (bitstream distribution) only to absorb load spikes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"nimblock"
)

func main() {
	cfg := nimblock.DefaultServerlessConfig()
	cfg.Boards = 3
	cfg.ScaleUp = 3
	platform, err := nimblock.NewPlatform(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Register three functions from the benchmark suite.
	for _, fn := range []struct {
		name string
		prio int
	}{
		{nimblock.LeNet, nimblock.PriorityHigh}, // latency-sensitive classifier
		{nimblock.ImageCompression, nimblock.PriorityMedium},
		{nimblock.Rendering3D, nimblock.PriorityLow},
	} {
		app, err := nimblock.Benchmark(fn.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := platform.Register(fn.name, app, fn.prio); err != nil {
			log.Fatal(err)
		}
	}

	// A calm period followed by a burst.
	rng := rand.New(rand.NewSource(5))
	names := []string{nimblock.LeNet, nimblock.ImageCompression, nimblock.Rendering3D}
	at := time.Duration(0)
	for i := 0; i < 10; i++ { // calm: one invocation per second
		platform.Invoke(names[rng.Intn(3)], 1+rng.Intn(3), at)
		at += time.Second
	}
	for i := 0; i < 20; i++ { // burst: twenty invocations in one second
		platform.Invoke(names[rng.Intn(3)], 1+rng.Intn(3), at)
		at += 50 * time.Millisecond
	}

	results, err := platform.Run()
	if err != nil {
		log.Fatal(err)
	}

	perFn := map[string][]time.Duration{}
	for _, r := range results {
		perFn[r.Function] = append(perFn[r.Function], r.Latency)
	}
	fmt.Printf("%-18s %6s %12s %12s %12s\n", "function", "calls", "p50", "p99", "max")
	for _, name := range names {
		ls := perFn[name]
		if len(ls) == 0 {
			continue
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		fmt.Printf("%-18s %6d %12v %12v %12v\n", name, len(ls),
			ls[len(ls)/2].Round(time.Millisecond),
			ls[len(ls)*99/100].Round(time.Millisecond),
			ls[len(ls)-1].Round(time.Millisecond))
	}
	st := platform.Stats()
	fmt.Printf("\n%d invocations: %d cold starts, %d warm\n", st.Invocations, st.ColdStarts, st.WarmStarts)
}
