// Quickstart: submit three applications from the paper's benchmark suite
// to a Nimblock-scheduled virtual FPGA and print their response times.
package main

import (
	"fmt"
	"log"
	"time"

	"nimblock"
)

func main() {
	// A 10-slot virtualized FPGA running the full Nimblock algorithm
	// (token-based candidacy, goal-number allocation, cross-batch
	// pipelining, batch-preemption).
	sys, err := nimblock.NewSystem(nimblock.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Three tenants arrive over half a second with different batch
	// sizes and priority levels.
	submissions := []struct {
		name    string
		batch   int
		prio    int
		arrival time.Duration
	}{
		{nimblock.OpticalFlow, 10, nimblock.PriorityLow, 0},
		{nimblock.LeNet, 5, nimblock.PriorityHigh, 200 * time.Millisecond},
		{nimblock.ImageCompression, 8, nimblock.PriorityMedium, 400 * time.Millisecond},
	}
	for _, s := range submissions {
		app, err := nimblock.Benchmark(s.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Submit(app, s.batch, s.prio, s.arrival); err != nil {
			log.Fatal(err)
		}
	}

	results, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %6s %5s %12s %10s %10s\n", "app", "batch", "prio", "response", "waited", "items/s")
	for _, r := range results {
		fmt.Printf("%-18s %6d %5d %12v %10v %10.2f\n",
			r.App, r.Batch, r.Priority, r.Response.Round(time.Millisecond),
			r.Wait.Round(time.Millisecond), r.Throughput())
	}
}
