// Package optsched computes offline reference schedules with full
// knowledge of the workload — the comparison point the paper draws
// against DML, whose ILP solver finds optimal schedules but "relies on
// prior knowledge of applications and their arrival times" and sits on
// the critical path.
//
// The search space is the class of *eager list schedules*: a global
// configuration order over every (application, task) pair that respects
// each task-graph's topological order; the hypervisor configures the
// next task in the order as soon as a slot is free and the task is
// configurable, and items flow with cross-batch pipelining. Slots are
// uniform, so the order is the only spatial decision that matters. The
// package enumerates every linear extension of the per-application task
// orders (feasible only for small instances, exactly like the ILP) and
// replays each through the real hypervisor mechanics, returning the
// order minimizing mean response time.
package optsched

import (
	"fmt"
	"math"

	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Job is one application in the offline instance.
type Job struct {
	Graph    *taskgraph.Graph
	Batch    int
	Priority int
	Arrival  sim.Time
}

// Step is one entry of a global configuration order.
type Step struct {
	Job  int // index into the instance's jobs
	Task int
}

// Schedule is the outcome of evaluating one configuration order.
type Schedule struct {
	Order        []Step
	MeanResponse sim.Duration
	Results      []hv.Result
}

// scripted configures tasks strictly in the given global order: the head
// of the order is configured as soon as it is configurable and a slot is
// free; later entries wait for the head. Cross-batch pipelining is on
// (the schedule class DML's formulation optimizes over). The policy is
// the only configurer, so a job cannot retire while it still has steps
// in the order — a missing job simply has not arrived yet and blocks.
type scripted struct {
	order []Step
	pos   int
}

func (s *scripted) Name() string     { return "scripted" }
func (s *scripted) Pipelining() bool { return true }

func (s *scripted) Schedule(w sched.World, why sched.Reason) {
	apps := w.Apps()
	for s.pos < len(s.order) {
		step := s.order[s.pos]
		var app *sched.App
		for _, a := range apps {
			if int(a.ID) == step.Job+1 { // hypervisor assigns IDs in submission order
				app = a
				break
			}
		}
		if app == nil {
			return // not arrived yet; the order waits
		}
		if !app.Configurable(step.Task) {
			return // upstream tasks must finish configuring first
		}
		free := w.FreeSlots()
		if len(free) == 0 {
			return
		}
		if err := w.Reconfigure(free[0], app, step.Task); err != nil {
			return
		}
		s.pos++
	}
}

// Evaluate replays one configuration order through the hypervisor.
func Evaluate(jobs []Job, order []Step, cfg hv.Config) (*Schedule, error) {
	if err := validateOrder(jobs, order); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	pol := &scripted{order: order}
	h, err := hv.New(eng, cfg, pol)
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		if err := h.Submit(j.Graph, j.Batch, j.Priority, j.Arrival); err != nil {
			return nil, err
		}
	}
	results, err := h.Run()
	if err != nil {
		return nil, err
	}
	var total sim.Duration
	for _, r := range results {
		total += r.Response
	}
	return &Schedule{
		Order:        order,
		MeanResponse: total / sim.Duration(len(results)),
		Results:      results,
	}, nil
}

// validateOrder checks the order covers every task of every job exactly
// once and respects topological precedence within each job.
func validateOrder(jobs []Job, order []Step) error {
	seen := map[Step]bool{}
	progress := make([]int, len(jobs))
	ranks := make([][]int, len(jobs))
	topoAt := make([][]int, len(jobs))
	total := 0
	for i, j := range jobs {
		ranks[i] = j.Graph.TopoRank()
		topoAt[i] = j.Graph.Topo()
		total += j.Graph.NumTasks()
	}
	if len(order) != total {
		return fmt.Errorf("optsched: order has %d steps for %d tasks", len(order), total)
	}
	for _, s := range order {
		if s.Job < 0 || s.Job >= len(jobs) {
			return fmt.Errorf("optsched: step references job %d", s.Job)
		}
		if s.Task < 0 || s.Task >= jobs[s.Job].Graph.NumTasks() {
			return fmt.Errorf("optsched: step references task %d of job %d", s.Task, s.Job)
		}
		if seen[s] {
			return fmt.Errorf("optsched: duplicate step %+v", s)
		}
		seen[s] = true
		// Within a job, steps must follow the job's topological order;
		// we require exactly the graph's canonical topo order per job,
		// which loses no generality for chains and keeps enumeration
		// tractable for DAGs (any linear extension of the interleaving
		// is still explored across jobs).
		want := topoAt[s.Job][progress[s.Job]]
		if s.Task != want {
			return fmt.Errorf("optsched: job %d steps out of topo order: got task %d, want %d", s.Job, s.Task, want)
		}
		progress[s.Job]++
	}
	return nil
}

// Enumerate calls fn with every interleaving of the jobs' canonical task
// orders (one linear extension per multiset permutation). It returns the
// number of orders visited. Instances are capped to keep the search
// tractable; the multinomial count is checked up front.
func Enumerate(jobs []Job, maxOrders int, fn func(order []Step) error) (int, error) {
	if n := countInterleavings(jobs); n > float64(maxOrders) {
		return 0, fmt.Errorf("optsched: %.0f interleavings exceed cap %d", n, maxOrders)
	}
	remaining := make([]int, len(jobs))
	topo := make([][]int, len(jobs))
	total := 0
	for i, j := range jobs {
		remaining[i] = j.Graph.NumTasks()
		topo[i] = j.Graph.Topo()
		total += j.Graph.NumTasks()
	}
	order := make([]Step, 0, total)
	count := 0
	var rec func() error
	rec = func() error {
		if len(order) == total {
			count++
			return fn(append([]Step(nil), order...))
		}
		for jb := range jobs {
			if remaining[jb] == 0 {
				continue
			}
			next := topo[jb][len(topo[jb])-remaining[jb]]
			order = append(order, Step{Job: jb, Task: next})
			remaining[jb]--
			if err := rec(); err != nil {
				return err
			}
			remaining[jb]++
			order = order[:len(order)-1]
		}
		return nil
	}
	if err := rec(); err != nil {
		return count, err
	}
	return count, nil
}

// countInterleavings computes the multinomial (Σn_i)! / Π n_i!.
func countInterleavings(jobs []Job) float64 {
	total := 0
	for _, j := range jobs {
		total += j.Graph.NumTasks()
	}
	out := 1.0
	used := 0
	for _, j := range jobs {
		n := j.Graph.NumTasks()
		// Multiply C(used+n, n) incrementally.
		for k := 1; k <= n; k++ {
			out *= float64(used+k) / float64(k)
		}
		used += n
	}
	_ = total
	return math.Round(out)
}

// Best exhaustively searches the interleaving space and returns the
// schedule minimizing mean response.
func Best(jobs []Job, cfg hv.Config, maxOrders int) (*Schedule, int, error) {
	var best *Schedule
	visited, err := Enumerate(jobs, maxOrders, func(order []Step) error {
		s, err := Evaluate(jobs, order, cfg)
		if err != nil {
			return err
		}
		if best == nil || s.MeanResponse < best.MeanResponse {
			best = s
		}
		return nil
	})
	if err != nil {
		return nil, visited, err
	}
	if best == nil {
		return nil, visited, fmt.Errorf("optsched: no feasible order found")
	}
	return best, visited, nil
}
