package optsched

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

func smallInstance() []Job {
	return []Job{
		{Graph: apps.MustGraph(apps.LeNet), Batch: 3, Priority: 3, Arrival: 0},
		{Graph: apps.MustGraph(apps.Rendering3D), Batch: 2, Priority: 3, Arrival: sim.Time(100 * sim.Millisecond)},
	}
}

func TestCountInterleavings(t *testing.T) {
	// Two 3-task chains: C(6,3) = 20 interleavings.
	if n := countInterleavings(smallInstance()); n != 20 {
		t.Fatalf("countInterleavings = %v, want 20", n)
	}
	one := []Job{{Graph: apps.MustGraph(apps.LeNet)}}
	if n := countInterleavings(one); n != 1 {
		t.Fatalf("single job interleavings = %v", n)
	}
}

func TestEnumerateVisitsAll(t *testing.T) {
	jobs := smallInstance()
	seen := map[string]bool{}
	n, err := Enumerate(jobs, 100, func(order []Step) error {
		key := ""
		for _, s := range order {
			key += string(rune('A' + s.Job))
		}
		if seen[key] {
			t.Fatalf("duplicate interleaving %q", key)
		}
		seen[key] = true
		return validateOrder(jobs, order)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 || len(seen) != 20 {
		t.Fatalf("visited %d orders, %d distinct", n, len(seen))
	}
}

func TestEnumerateCap(t *testing.T) {
	jobs := []Job{
		{Graph: apps.MustGraph(apps.OpticalFlow)},
		{Graph: apps.MustGraph(apps.OpticalFlow)},
	}
	// C(18,9) = 48620 > 100.
	if _, err := Enumerate(jobs, 100, func([]Step) error { return nil }); err == nil {
		t.Fatal("cap not enforced")
	}
}

func TestValidateOrder(t *testing.T) {
	jobs := smallInstance()
	good := []Step{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2}}
	if err := validateOrder(jobs, good); err != nil {
		t.Fatal(err)
	}
	bad := [][]Step{
		{{0, 0}}, // wrong length
		{{0, 1}, {0, 0}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}, // topo violation
		{{0, 0}, {0, 0}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}, // duplicate
		{{9, 0}, {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}}, // bad job
	}
	for i, o := range bad {
		if err := validateOrder(jobs, o); err == nil {
			t.Errorf("bad order %d accepted", i)
		}
	}
}

func TestEvaluateCompletesJobs(t *testing.T) {
	jobs := smallInstance()
	order := []Step{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	s, err := Evaluate(jobs, order, hv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 2 || s.MeanResponse <= 0 {
		t.Fatalf("schedule = %+v", s)
	}
}

func TestBestIsNoWorseThanAnyOrder(t *testing.T) {
	jobs := smallInstance()
	cfg := hv.DefaultConfig()
	best, visited, err := Best(jobs, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if visited != 20 {
		t.Fatalf("visited %d orders", visited)
	}
	// Spot-check two specific orders.
	for _, order := range [][]Step{
		{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}},
		{{1, 0}, {1, 1}, {1, 2}, {0, 0}, {0, 1}, {0, 2}},
	} {
		s, err := Evaluate(jobs, order, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if best.MeanResponse > s.MeanResponse {
			t.Fatalf("best (%v) worse than sampled order (%v)", best.MeanResponse, s.MeanResponse)
		}
	}
}

// The key optimality-gap property: Nimblock, with no future knowledge,
// stays within a modest factor of the best offline eager schedule.
func TestNimblockNearOptimal(t *testing.T) {
	jobs := smallInstance()
	cfg := hv.DefaultConfig()
	best, _, err := Best(jobs, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Run Nimblock on the identical instance.
	eng := sim.NewEngine()
	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := h.Submit(j.Graph, j.Batch, j.Priority, j.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	var total sim.Duration
	for _, r := range res {
		total += r.Response
	}
	nimblock := total / sim.Duration(len(res))
	if nimblock < best.MeanResponse {
		// Possible: Nimblock's interval-driven timing is outside the
		// eager class; that is fine (and good).
		return
	}
	if float64(nimblock) > 2.0*float64(best.MeanResponse) {
		t.Fatalf("Nimblock %v more than 2x the offline best %v", nimblock, best.MeanResponse)
	}
}
