// Package bitstream models partial bitstream generation, storage, and
// loading for the Nimblock overlay.
//
// The Nimblock compilation flow generates, for every task of an
// application, one partial bitstream per slot (n slots -> n bitstreams per
// task) so any task can be configured into any slot. Bitstreams carry a
// header with interface information, the application batch size, HLS
// performance estimates, and the priority level. On the ZCU106 they live
// on the SD card and are loaded into DDR by the ARM core before being
// streamed through the configuration access port.
//
// Slots are uniform, so every partial bitstream has the same size as the
// slot region it targets (plus a small header), which is why partial
// reconfiguration takes a near-constant ~80 ms on the evaluation board.
package bitstream

import (
	"fmt"

	"nimblock/internal/hls"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// SlotImageBytes is the size of one slot's partial bitstream. With the
// default CAP bandwidth this yields the paper's ~80 ms reconfiguration.
const SlotImageBytes = 7_500_000

// HeaderBytes is the metadata prefix on each stored bitstream.
const HeaderBytes = 4096

// Header mirrors the metadata the hypervisor parses when an application's
// bitstreams arrive (Section 2.2 of the paper).
type Header struct {
	App       string
	Task      int
	TaskName  string
	Slot      int
	Batch     int
	Priority  int
	Estimate  hls.Estimate
	NumInputs int // memory-mapped data interfaces consumed
}

// Image is one stored partial bitstream.
type Image struct {
	Header Header
	Bytes  int
}

// ID identifies an image within a store.
func (im *Image) ID() string {
	return fmt.Sprintf("%s/t%d/s%d", im.Header.App, im.Header.Task, im.Header.Slot)
}

// imgKey addresses one image within a store. A struct key avoids the
// per-lookup string formatting a path-style key would cost: Lookup sits
// on the reconfiguration hot path.
type imgKey struct {
	app  string
	task int
	slot int
}

// Store models the hypervisor's bitstream filesystem (the SD card).
type Store struct {
	images map[imgKey]*Image
	bytes  int64
}

// NewStore returns an empty bitstream store.
func NewStore() *Store {
	return &Store{images: map[imgKey]*Image{}}
}

// RelocatableSlot marks an image as slot-agnostic: with bitstream
// relocation, one image per task serves every slot.
const RelocatableSlot = -1

// Register runs the partial-reconfiguration flow for an application:
// for each task it generates one bitstream per slot, each annotated with
// the HLS estimate, batch size, and priority from the submission.
func (s *Store) Register(g *taskgraph.Graph, report *hls.Report, slots, batch, priority int) error {
	if slots < 1 {
		return fmt.Errorf("bitstream: register %s with %d slots", g.Name(), slots)
	}
	return s.register(g, report, slots, batch, priority, false)
}

// RegisterRelocatable runs the flow with bitstream relocation (Corbetta
// et al.; BITMAN; AutoReloc — cited but out of scope in the paper):
// uniform slots let one partial bitstream per task be patched to any
// slot at load time, dividing SD-card storage by the slot count.
func (s *Store) RegisterRelocatable(g *taskgraph.Graph, report *hls.Report, batch, priority int) error {
	return s.register(g, report, 1, batch, priority, true)
}

func (s *Store) register(g *taskgraph.Graph, report *hls.Report, slots, batch, priority int, relocatable bool) error {
	if report.NumTasks() != g.NumTasks() {
		return fmt.Errorf("bitstream: HLS report covers %d tasks, graph has %d", report.NumTasks(), g.NumTasks())
	}
	for task := 0; task < g.NumTasks(); task++ {
		for slot := 0; slot < slots; slot++ {
			imgSlot := slot
			if relocatable {
				imgSlot = RelocatableSlot
			}
			hdr := Header{
				App:       g.Name(),
				Task:      task,
				TaskName:  g.Task(task).Name,
				Slot:      imgSlot,
				Batch:     batch,
				Priority:  priority,
				Estimate:  report.Task(task),
				NumInputs: len(g.Pred(task)),
			}
			key := imgKey{app: hdr.App, task: task, slot: imgSlot}
			if im, dup := s.images[key]; dup {
				// Re-registration overwrites the stored image in place, as
				// writing the same SD-card path would. The image size never
				// changes (uniform slots), so holders of the pointer see
				// only refreshed metadata.
				im.Header = hdr
				continue
			}
			im := &Image{Header: hdr, Bytes: SlotImageBytes + HeaderBytes}
			s.bytes += int64(im.Bytes)
			s.images[key] = im
		}
	}
	return nil
}

// Lookup fetches the bitstream for (app, task, slot), falling back to
// the task's relocatable image if one was registered.
func (s *Store) Lookup(app string, task, slot int) (*Image, error) {
	if im, ok := s.images[imgKey{app: app, task: task, slot: slot}]; ok {
		return im, nil
	}
	if im, ok := s.images[imgKey{app: app, task: task, slot: RelocatableSlot}]; ok {
		return im, nil
	}
	return nil, fmt.Errorf("bitstream: no image %s/t%d/s%d", app, task, slot)
}

// Count reports the number of stored images.
func (s *Store) Count() int { return len(s.images) }

// Bytes reports total stored bytes (SD card occupancy).
func (s *Store) Bytes() int64 { return s.bytes }

// LoadTime models reading an image from the SD card into DDR at the given
// bandwidth in bytes per second.
func (im *Image) LoadTime(sdBytesPerSec float64) sim.Duration {
	if sdBytesPerSec <= 0 {
		return 0
	}
	return sim.Seconds(float64(im.Bytes) / sdBytesPerSec)
}
