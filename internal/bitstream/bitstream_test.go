package bitstream

import (
	"testing"

	"nimblock/internal/hls"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

func graphAndReport(t *testing.T, tasks int) (*taskgraph.Graph, *hls.Report) {
	t.Helper()
	b := taskgraph.NewBuilder("app")
	ids := make([]int, tasks)
	for i := range ids {
		ids[i] = b.AddTask("t", 10*sim.Millisecond)
	}
	b.Chain(ids...)
	g := b.MustBuild()
	return g, hls.Analyze(g)
}

func TestRegisterGeneratesPerSlotImages(t *testing.T) {
	g, r := graphAndReport(t, 3)
	s := NewStore()
	if err := s.Register(g, r, 10, 5, 9); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 30 {
		t.Fatalf("Count = %d, want 3 tasks x 10 slots = 30", s.Count())
	}
	im, err := s.Lookup("app", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	h := im.Header
	if h.App != "app" || h.Task != 2 || h.Slot != 7 || h.Batch != 5 || h.Priority != 9 {
		t.Fatalf("header = %+v", h)
	}
	if h.Estimate != r.Task(2) {
		t.Fatalf("header estimate %v, want %v", h.Estimate, r.Task(2))
	}
	if h.NumInputs != 1 {
		t.Fatalf("NumInputs = %d, want 1 (chain)", h.NumInputs)
	}
}

func TestRegisterIdempotentBytes(t *testing.T) {
	g, r := graphAndReport(t, 2)
	s := NewStore()
	if err := s.Register(g, r, 4, 1, 1); err != nil {
		t.Fatal(err)
	}
	b1 := s.Bytes()
	if err := s.Register(g, r, 4, 1, 1); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != b1 {
		t.Fatalf("re-register changed byte accounting: %d -> %d", b1, s.Bytes())
	}
	want := int64(8 * (SlotImageBytes + HeaderBytes))
	if b1 != want {
		t.Fatalf("Bytes = %d, want %d", b1, want)
	}
}

func TestRegisterValidation(t *testing.T) {
	g, r := graphAndReport(t, 2)
	s := NewStore()
	if err := s.Register(g, r, 0, 1, 1); err == nil {
		t.Fatal("zero slots accepted")
	}
	g2, _ := graphAndReport(t, 3)
	if err := s.Register(g2, r, 2, 1, 1); err == nil {
		t.Fatal("mismatched HLS report accepted")
	}
}

func TestLookupMissing(t *testing.T) {
	s := NewStore()
	if _, err := s.Lookup("ghost", 0, 0); err == nil {
		t.Fatal("lookup of missing image succeeded")
	}
}

func TestLoadTime(t *testing.T) {
	im := &Image{Bytes: 1_000_000}
	if got := im.LoadTime(1_000_000); got != sim.Second {
		t.Fatalf("LoadTime = %v, want 1s", got)
	}
	if got := im.LoadTime(0); got != 0 {
		t.Fatalf("LoadTime with zero bandwidth = %v, want 0", got)
	}
}

func TestRelocatableRegistration(t *testing.T) {
	g, r := graphAndReport(t, 3)
	s := NewStore()
	if err := s.RegisterRelocatable(g, r, 5, 9); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want one image per task", s.Count())
	}
	// Any slot resolves to the relocatable image.
	for slot := 0; slot < 10; slot++ {
		im, err := s.Lookup("app", 1, slot)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if im.Header.Slot != RelocatableSlot {
			t.Fatalf("slot %d resolved to %+v", slot, im.Header)
		}
	}
}

func TestRelocationStorageSavings(t *testing.T) {
	g, r := graphAndReport(t, 4)
	perSlot, reloc := NewStore(), NewStore()
	if err := perSlot.Register(g, r, 10, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := reloc.RegisterRelocatable(g, r, 1, 1); err != nil {
		t.Fatal(err)
	}
	if perSlot.Bytes() != 10*reloc.Bytes() {
		t.Fatalf("savings factor: %d vs %d bytes", perSlot.Bytes(), reloc.Bytes())
	}
}

func TestPerSlotImagePreferredOverRelocatable(t *testing.T) {
	g, r := graphAndReport(t, 1)
	s := NewStore()
	s.RegisterRelocatable(g, r, 1, 1)
	s.Register(g, r, 2, 1, 1)
	im, err := s.Lookup("app", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if im.Header.Slot != 1 {
		t.Fatalf("lookup preferred %+v over the per-slot image", im.Header)
	}
}
