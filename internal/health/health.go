// Package health tracks per-board liveness for a fleet of virtual FPGA
// boards, turning raw fault signals (crashes, hangs, degrades, failed
// dispatches) into a small state machine the cluster and serverless
// front-ends consult before placing work.
//
// Each board moves through healthy → degraded → draining → dead →
// recovering: degraded boards still accept work but lose tie-breaks,
// draining boards finish in-flight work without new placements, dead
// boards trigger failover of their queued and checkpointed work, and
// recovering boards re-admit through a consecutive-failure circuit
// breaker with exponentially backed-off, jittered probation.
//
// Liveness is heartbeat-style but derived from simulated event progress
// rather than wall-clock pings: a board with outstanding work whose
// progress counter stops advancing across poll intervals is first
// suspected (draining) and then declared dead, exactly how a freeze
// (board-hang) is distinguished from a slow board.
package health

import (
	"fmt"
	"math/rand"

	"nimblock/internal/obs"
	"nimblock/internal/sim"
)

// State is one node of the board health state machine.
type State int

const (
	// Healthy boards accept new work.
	Healthy State = iota
	// Degraded boards accept new work but rank behind healthy ones in
	// placement; a board-degrade fault or repeated (sub-threshold)
	// failures put a board here.
	Degraded
	// Draining boards finish in-flight work but take no new placements:
	// either liveness has begun to suspect them, or an operator/monitor
	// asked for a graceful drain.
	Draining
	// Dead boards lost everything: their work is failed over and the
	// board waits for scheduled recovery (if any).
	Dead
	// Recovering boards came back from Dead but sit behind the circuit
	// breaker: placeable only after the backoff expires, and promoted to
	// Healthy only after Probation consecutive successes.
	Recovering
)

// String names the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Draining:
		return "draining"
	case Dead:
		return "dead"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config tunes the health tracker. The zero value selects the defaults
// below via withDefaults.
type Config struct {
	// LivenessInterval is the progress-poll period (default 500ms).
	LivenessInterval sim.Duration
	// LivenessMisses is how many consecutive static-progress polls (with
	// work outstanding) declare a board dead; fewer misses only suspend
	// placements (default 3).
	LivenessMisses int
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (default 1 — a board death opens it immediately).
	BreakerThreshold int
	// BackoffBase and BackoffMax bound the re-admission backoff: the
	// n-th breaker opening waits min(Base<<(n-1), Max), jittered
	// (defaults 2s and 60s).
	BackoffBase sim.Duration
	BackoffMax  sim.Duration
	// Jitter is the symmetric fractional backoff jitter in [0,1): 0
	// selects the default 0.2 (±20%), negative disables jitter.
	Jitter float64
	// Probation is how many consecutive successful retirements a
	// recovering board needs before it counts as healthy again
	// (default 2).
	Probation int
	// Seed derives each tracker's jitter stream; tracker i draws from
	// Seed mixed with i so boards jitter independently.
	Seed int64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.LivenessInterval <= 0 {
		c.LivenessInterval = 500 * sim.Millisecond
	}
	if c.LivenessMisses <= 0 {
		c.LivenessMisses = 3
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 1
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * sim.Second
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 60 * sim.Second
	}
	if c.Jitter == 0 || c.Jitter >= 1 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Probation <= 0 {
		c.Probation = 2
	}
	return c
}

// Options is the shared failover configuration both front-ends accept.
type Options struct {
	// Tracker tunes the per-board health state machine.
	Tracker Config
	// RetryBudget is how many times one submission may be re-dispatched
	// after losing its board before it fails permanently (default 2).
	RetryBudget int
	// HedgePriority, when > 0, hedges submissions with priority >= it:
	// the submission is placed on the two best healthy boards and the
	// slower copy is cancelled when the faster retires.
	HedgePriority int
	// Registry, when non-nil, receives the failover_* counters/gauges.
	Registry *obs.Registry
}

// WithDefaults fills zero fields of the options.
func (o Options) WithDefaults() Options {
	o.Tracker = o.Tracker.withDefaults()
	if o.RetryBudget <= 0 {
		o.RetryBudget = 2
	}
	return o
}

// Tracker is one board's health state machine. It is not safe for
// concurrent use; the simulator is single-threaded per run.
type Tracker struct {
	cfg   Config
	state State
	// degraded overlays Healthy: a degrade fault or sub-threshold
	// failures rank the board behind clean peers without blocking it.
	degraded bool
	// breaker bookkeeping.
	fails     int // consecutive failures
	opens     int // times the breaker has opened
	backoff   sim.Duration
	readmitAt sim.Time
	successes int // consecutive successes while recovering
	// liveness bookkeeping.
	lastProgress uint64
	misses       int
	suspect      bool // draining because liveness suspects a freeze
	rng          *rand.Rand
}

// NewTracker builds a tracker for one board.
func NewTracker(cfg Config, board int) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed ^ int64(board)*0x5e3779b97f4a7c15 ^ 0x5bd1e995)),
	}
}

// State reports the board's current state, folding the degraded overlay
// into Healthy.
func (t *Tracker) State() State {
	if t.state == Healthy && t.degraded {
		return Degraded
	}
	return t.state
}

// Placeable reports whether new work may land on the board now:
// healthy and degraded boards always, recovering boards once the
// breaker backoff has expired, draining and dead boards never.
func (t *Tracker) Placeable(now sim.Time) bool {
	switch t.state {
	case Healthy:
		return true
	case Recovering:
		return now >= t.readmitAt
	default:
		return false
	}
}

// Score ranks placeable boards: 0 for clean (healthy or recovering past
// backoff — an empty revived board must win load-based placement so its
// probation can complete), 1 for degraded. Lower is better.
func (t *Tracker) Score() int {
	if t.state == Healthy && t.degraded {
		return 1
	}
	return 0
}

// ReportFailure records one dispatch/executive failure. Reaching the
// consecutive-failure threshold opens the breaker and escalates the
// backoff the next revival will wait out.
func (t *Tracker) ReportFailure() {
	t.fails++
	if t.fails < t.cfg.BreakerThreshold {
		return
	}
	t.fails = 0
	t.opens++
	b := t.cfg.BackoffBase
	for i := 1; i < t.opens && b < t.cfg.BackoffMax; i++ {
		b <<= 1
	}
	if b > t.cfg.BackoffMax {
		b = t.cfg.BackoffMax
	}
	// Deterministic symmetric jitter decorrelates simultaneous revivals.
	j := 1 + t.cfg.Jitter*(2*t.rng.Float64()-1)
	t.backoff = sim.Duration(float64(b) * j)
}

// ReportSuccess records one successful retirement, closing the breaker
// window and advancing recovery probation.
func (t *Tracker) ReportSuccess() {
	t.fails = 0
	if t.state != Recovering {
		return
	}
	t.successes++
	if t.successes >= t.cfg.Probation {
		t.state = Healthy
		t.opens = 0
		t.backoff = 0
	}
}

// MarkDead declares the board dead (crash fault or liveness timeout).
// It counts as a breaker failure so revival waits out the backoff.
func (t *Tracker) MarkDead() {
	t.state = Dead
	t.suspect = false
	t.misses = 0
	t.fails = t.cfg.BreakerThreshold - 1
	t.ReportFailure()
}

// Revive moves a dead board to Recovering. New placements wait until
// the returned re-admission time (now plus the breaker backoff).
func (t *Tracker) Revive(now sim.Time) sim.Time {
	t.state = Recovering
	t.successes = 0
	t.misses = 0
	t.lastProgress = 0
	t.readmitAt = now + sim.Time(t.backoff)
	return t.readmitAt
}

// ReadmitAt reports when a recovering board becomes placeable again.
func (t *Tracker) ReadmitAt() sim.Time { return t.readmitAt }

// MarkDegraded and ClearDegraded toggle the degrade overlay.
func (t *Tracker) MarkDegraded() { t.degraded = true }

// ClearDegraded removes the degrade overlay.
func (t *Tracker) ClearDegraded() { t.degraded = false }

// BeginDrain stops new placements while in-flight work finishes.
func (t *Tracker) BeginDrain() {
	if t.state == Healthy {
		t.state = Draining
	}
}

// EndDrain returns a draining board to service.
func (t *Tracker) EndDrain() {
	if t.state == Draining {
		t.state = Healthy
		t.suspect = false
		t.misses = 0
	}
}

// NoteLiveness feeds one poll of the board's monotonic progress
// counter. With work outstanding and no progress since the previous
// poll, the board first becomes suspect (draining — no new placements)
// and, after LivenessMisses consecutive static polls, dead. Progress
// clears suspicion. It returns the state transition the poll caused.
func (t *Tracker) NoteLiveness(progress uint64, busy bool) (died bool) {
	if t.state == Dead || t.state == Recovering {
		return false
	}
	if progress != t.lastProgress || !busy {
		t.lastProgress = progress
		t.misses = 0
		if t.suspect {
			t.suspect = false
			t.EndDrain()
		}
		return false
	}
	t.misses++
	if t.misses >= t.cfg.LivenessMisses {
		t.MarkDead()
		return true
	}
	if !t.suspect && t.state == Healthy {
		t.suspect = true
		t.BeginDrain()
	}
	return false
}
