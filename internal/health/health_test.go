package health

import (
	"testing"

	"nimblock/internal/faults"
	"nimblock/internal/obs"
	"nimblock/internal/sim"
)

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.LivenessInterval != 500*sim.Millisecond || c.LivenessMisses != 3 ||
		c.BreakerThreshold != 1 || c.BackoffBase != 2*sim.Second ||
		c.BackoffMax != 60*sim.Second || c.Jitter != 0.2 || c.Probation != 2 {
		t.Fatalf("defaults = %+v", c)
	}
	o := Options{}.WithDefaults()
	if o.RetryBudget != 2 {
		t.Fatalf("default retry budget = %d", o.RetryBudget)
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Healthy: "healthy", Degraded: "degraded", Draining: "draining",
		Dead: "dead", Recovering: "recovering", State(99): "State(99)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker(Config{BackoffBase: sim.Duration(sim.Second)}, 0)
	if tr.State() != Healthy || !tr.Placeable(0) || tr.Score() != 0 {
		t.Fatalf("fresh tracker: state=%v placeable=%v score=%d", tr.State(), tr.Placeable(0), tr.Score())
	}
	tr.MarkDegraded()
	if tr.State() != Degraded || !tr.Placeable(0) || tr.Score() != 1 {
		t.Fatalf("degraded tracker: state=%v placeable=%v score=%d", tr.State(), tr.Placeable(0), tr.Score())
	}
	tr.ClearDegraded()
	tr.BeginDrain()
	if tr.State() != Draining || tr.Placeable(0) {
		t.Fatalf("draining tracker: state=%v placeable=%v", tr.State(), tr.Placeable(0))
	}
	tr.EndDrain()
	if tr.State() != Healthy {
		t.Fatalf("drain did not end: %v", tr.State())
	}
	tr.MarkDead()
	if tr.State() != Dead || tr.Placeable(0) {
		t.Fatalf("dead tracker: state=%v placeable=%v", tr.State(), tr.Placeable(0))
	}
	now := sim.Time(10 * sim.Second)
	at := tr.Revive(now)
	if tr.State() != Recovering || at <= now || at != tr.ReadmitAt() {
		t.Fatalf("revive: state=%v at=%v readmit=%v", tr.State(), at, tr.ReadmitAt())
	}
	if tr.Placeable(at - 1) {
		t.Fatal("placeable before the breaker backoff expired")
	}
	if !tr.Placeable(at) {
		t.Fatal("not placeable at the re-admission time")
	}
	// Probation: default 2 consecutive successes promote to Healthy.
	tr.ReportSuccess()
	if tr.State() != Recovering {
		t.Fatalf("promoted after one success: %v", tr.State())
	}
	tr.ReportSuccess()
	if tr.State() != Healthy {
		t.Fatalf("not promoted after probation: %v", tr.State())
	}
}

// TestBackoffGrowsAndCaps checks the breaker backoff doubles per
// opening, stays inside the jitter envelope, and saturates at the max.
func TestBackoffGrowsAndCaps(t *testing.T) {
	cfg := Config{
		BackoffBase: sim.Duration(sim.Second),
		BackoffMax:  8 * sim.Second,
		Jitter:      0.2,
	}
	tr := NewTracker(cfg, 0)
	want := []sim.Duration{
		sim.Duration(sim.Second), 2 * sim.Second, 4 * sim.Second,
		8 * sim.Second, 8 * sim.Second, // capped
	}
	for i, base := range want {
		tr.MarkDead()
		at := tr.Revive(0)
		got := sim.Duration(at)
		lo := sim.Duration(float64(base) * 0.8)
		hi := sim.Duration(float64(base) * 1.2)
		if got < lo || got > hi {
			t.Fatalf("opening %d: backoff %v outside [%v, %v]", i+1, got, lo, hi)
		}
	}
	// Completing probation resets the escalation.
	tr.ReportSuccess()
	tr.ReportSuccess()
	tr.MarkDead()
	got := sim.Duration(tr.Revive(0))
	if got > sim.Duration(float64(sim.Second)*1.2) {
		t.Fatalf("backoff did not reset after recovery: %v", got)
	}
}

// TestBreakerThreshold checks sub-threshold failures do not open the
// breaker and a success closes the window.
func TestBreakerThreshold(t *testing.T) {
	tr := NewTracker(Config{BreakerThreshold: 3, BackoffBase: sim.Duration(sim.Second)}, 0)
	tr.ReportFailure()
	tr.ReportFailure()
	if tr.backoff != 0 {
		t.Fatal("breaker opened below threshold")
	}
	tr.ReportSuccess() // resets the consecutive count
	tr.ReportFailure()
	tr.ReportFailure()
	if tr.backoff != 0 {
		t.Fatal("success did not reset the failure window")
	}
	tr.ReportFailure()
	if tr.backoff == 0 {
		t.Fatal("threshold failures did not open the breaker")
	}
}

// TestNoteLiveness walks the suspect → drain → dead ladder and checks
// progress clears suspicion.
func TestNoteLiveness(t *testing.T) {
	tr := NewTracker(Config{LivenessMisses: 3}, 0)
	if tr.NoteLiveness(1, true) {
		t.Fatal("first poll died")
	}
	// Static progress with work outstanding: miss 1 suspects (drains).
	if tr.NoteLiveness(1, true) || tr.State() != Draining {
		t.Fatalf("after one miss: %v", tr.State())
	}
	// Progress resumes: suspicion clears.
	if tr.NoteLiveness(2, true) || tr.State() != Healthy {
		t.Fatalf("progress did not clear suspicion: %v", tr.State())
	}
	// Idle boards never miss.
	for i := 0; i < 5; i++ {
		if tr.NoteLiveness(2, false) {
			t.Fatal("idle board died")
		}
	}
	if tr.State() != Healthy {
		t.Fatalf("idle board left healthy: %v", tr.State())
	}
	// Three consecutive static busy polls kill the board.
	tr.NoteLiveness(3, true)
	died := false
	for i := 0; i < 3; i++ {
		died = tr.NoteLiveness(3, true)
	}
	if !died || tr.State() != Dead {
		t.Fatalf("liveness did not declare death: died=%v state=%v", died, tr.State())
	}
	// Dead and recovering boards ignore further polls.
	if tr.NoteLiveness(3, true) {
		t.Fatal("dead board died again")
	}
	tr.Revive(0)
	if tr.NoteLiveness(3, true) {
		t.Fatal("recovering board died from stale progress")
	}
}

func TestScheduleValidation(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMonitor(eng, 2, Config{}, Hooks{
		Progress: func(int) uint64 { return 0 },
		Busy:     func(int) bool { return false },
		OnDead:   func(int) {},
	}, nil)
	if err := m.Schedule([]faults.BoardEvent{{Kind: faults.BoardCrash, Board: 2}}); err == nil {
		t.Fatal("out-of-range board accepted")
	}
	if err := m.Schedule([]faults.BoardEvent{{Kind: faults.Kind(-1), Board: 0}}); err == nil {
		t.Fatal("non-board kind accepted")
	}
	if err := m.Schedule([]faults.BoardEvent{{Kind: faults.BoardCrash, Board: 1, At: 5}}); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorCrashReviveCycle drives a scheduled crash + recovery
// through the monitor and checks hooks fire in order and the stats and
// instruments agree.
func TestMonitorCrashReviveCycle(t *testing.T) {
	eng := sim.NewEngine()
	reg := obs.NewRegistry()
	ins := NewInstruments(reg)
	var deaths, revives []int
	m := NewMonitor(eng, 2, Config{BackoffBase: 100 * sim.Millisecond}, Hooks{
		Progress: func(int) uint64 { return 0 },
		Busy:     func(int) bool { return false },
		OnDead:   func(b int) { deaths = append(deaths, b) },
		OnRevive: func(b int) { revives = append(revives, b) },
	}, ins)
	err := m.Schedule([]faults.BoardEvent{{
		Kind: faults.BoardCrash, Board: 1,
		At: sim.Time(sim.Second), Recover: sim.Time(2 * sim.Second),
	}})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(10 * sim.Second))
	if len(deaths) != 1 || deaths[0] != 1 || len(revives) != 1 || revives[0] != 1 {
		t.Fatalf("deaths=%v revives=%v", deaths, revives)
	}
	st := m.Stats()
	if st.Deaths != 1 || st.Recoveries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if m.Tracker(1).State() != Recovering {
		t.Fatalf("board 1 state %v after revive", m.Tracker(1).State())
	}
	if !m.Tracker(1).Placeable(eng.Now()) {
		t.Fatal("backoff long expired but board not placeable")
	}
}

// TestMonitorLivenessDeclaresFrozenDead feeds a static progress counter
// through the poll loop: the busy board must drain and then die without
// any scheduled crash.
func TestMonitorLivenessDeclaresFrozenDead(t *testing.T) {
	eng := sim.NewEngine()
	var dead []int
	frozen := false
	m := NewMonitor(eng, 1, Config{LivenessInterval: 100 * sim.Millisecond, LivenessMisses: 3}, Hooks{
		Progress: func(int) uint64 { return 7 }, // never advances
		Busy:     func(int) bool { return true },
		OnDead:   func(b int) { dead = append(dead, b) },
		OnFreeze: func(int) { frozen = true },
	}, nil)
	err := m.Schedule([]faults.BoardEvent{{Kind: faults.BoardHang, Board: 0, At: sim.Time(50 * sim.Millisecond)}})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(5 * sim.Second))
	if !frozen {
		t.Fatal("freeze hook never fired")
	}
	if len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("deaths = %v, want [0]", dead)
	}
	if st := m.Stats(); st.Freezes != 1 || st.Deaths != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
