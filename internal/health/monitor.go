package health

import (
	"fmt"

	"nimblock/internal/faults"
	"nimblock/internal/obs"
	"nimblock/internal/sim"
)

// Hooks are the front-end callbacks the monitor drives. All are
// mandatory except OnDegrade and OnFreeze (used only when the plan
// schedules those faults).
type Hooks struct {
	// Progress returns board b's monotonic event-progress counter — the
	// heartbeat signal liveness polls compare across intervals.
	Progress func(b int) uint64
	// Busy reports whether board b has outstanding work; idle boards
	// never miss heartbeats.
	Busy func(b int) bool
	// OnDead fires when board b is declared dead (crash fault or
	// liveness timeout): the front-end must fail its work over.
	OnDead func(b int)
	// OnFreeze fires when a board-hang fault freezes board b; the
	// front-end stops the board's event flow so liveness can notice.
	OnFreeze func(b int)
	// OnDegrade fires at both edges of a board-degrade window; factor
	// is the slowdown multiplier, or 1 when the window closes.
	OnDegrade func(b int, factor float64)
	// OnRevive fires when a crashed or hung board's scheduled recovery
	// arrives; the front-end rebuilds the backend. Placement is still
	// gated by the tracker's breaker backoff.
	OnRevive func(b int)
}

// Monitor owns the fleet's trackers, schedules board-level fault
// events, and polls liveness. One monitor serves one front-end run.
type Monitor struct {
	eng      *sim.Engine
	cfg      Config
	trackers []*Tracker
	hooks    Hooks
	armed    bool // liveness poll scheduled
	stats    Stats
	ins      *Instruments
}

// NewMonitor builds a monitor for n boards.
func NewMonitor(eng *sim.Engine, n int, cfg Config, hooks Hooks, ins *Instruments) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{eng: eng, cfg: cfg, hooks: hooks, ins: ins}
	for b := 0; b < n; b++ {
		m.trackers = append(m.trackers, NewTracker(cfg, b))
	}
	return m
}

// Tracker returns board b's tracker.
func (m *Monitor) Tracker(b int) *Tracker { return m.trackers[b] }

// Stats returns the failover accounting so far.
func (m *Monitor) Stats() Stats { return m.stats }

// StatsRef exposes the accounting for front-end counters that the
// monitor does not observe itself (re-dispatches, migrations, hedges).
func (m *Monitor) StatsRef() *Stats { return &m.stats }

// Instruments returns the obs bundle (nil when no registry was given).
func (m *Monitor) Instruments() *Instruments { return m.ins }

// Schedule registers the plan's board-level events. Events aimed at
// boards outside the fleet are an error.
func (m *Monitor) Schedule(events []faults.BoardEvent) error {
	for _, ev := range events {
		if ev.Board < 0 || ev.Board >= len(m.trackers) {
			return fmt.Errorf("health: board event %v targets board %d of %d", ev.Kind, ev.Board, len(m.trackers))
		}
		ev := ev
		switch ev.Kind {
		case faults.BoardCrash:
			m.eng.At(ev.At, func() { m.crash(ev.Board, ev.Recover) })
		case faults.BoardHang:
			m.eng.At(ev.At, func() { m.freeze(ev.Board, ev.Recover) })
		case faults.BoardDegrade:
			m.eng.At(ev.At, func() { m.degrade(ev.Board, ev.Factor) })
			if ev.Until != 0 {
				m.eng.At(ev.Until, func() { m.undegrade(ev.Board) })
			}
		default:
			return fmt.Errorf("health: %v is not a board event", ev.Kind)
		}
	}
	return nil
}

// crash declares the board dead immediately and schedules recovery.
func (m *Monitor) crash(b int, recover sim.Time) {
	t := m.trackers[b]
	if t.State() == Dead {
		return
	}
	m.declareDead(b)
	if recover != 0 {
		m.eng.At(recover, func() { m.revive(b) })
	}
}

// freeze hands the board to the front-end's freeze hook; death comes
// later, from missed heartbeats.
func (m *Monitor) freeze(b int, recover sim.Time) {
	if m.trackers[b].State() == Dead {
		return
	}
	m.stats.Freezes++
	if m.hooks.OnFreeze != nil {
		m.hooks.OnFreeze(b)
	}
	m.Kick()
	if recover != 0 {
		m.eng.At(recover, func() { m.revive(b) })
	}
}

func (m *Monitor) degrade(b int, factor float64) {
	if m.trackers[b].State() == Dead {
		return
	}
	m.stats.Degrades++
	m.trackers[b].MarkDegraded()
	if m.hooks.OnDegrade != nil {
		m.hooks.OnDegrade(b, factor)
	}
}

func (m *Monitor) undegrade(b int) {
	m.trackers[b].ClearDegraded()
	if m.hooks.OnDegrade != nil {
		m.hooks.OnDegrade(b, 1)
	}
}

// declareDead moves the tracker to Dead and runs the failover hook.
func (m *Monitor) declareDead(b int) {
	m.trackers[b].MarkDead()
	m.stats.Deaths++
	if m.ins != nil {
		m.ins.Deaths.Inc()
	}
	m.hooks.OnDead(b)
}

// revive returns a dead board to Recovering and tells the front-end to
// rebuild it. A hung board whose scheduled recovery arrives before
// liveness declared it dead is declared dead here first — a frozen
// hypervisor cannot resume, so recovery always means evacuate+rebuild.
func (m *Monitor) revive(b int) {
	t := m.trackers[b]
	if t.State() != Dead {
		m.declareDead(b)
	}
	at := t.Revive(m.eng.Now())
	m.stats.Recoveries++
	if m.ins != nil {
		m.ins.Recoveries.Inc()
		m.ins.ReadmitDelay.Set(sim.Duration(at - m.eng.Now()).Seconds())
	}
	if m.hooks.OnRevive != nil {
		m.hooks.OnRevive(b)
	}
}

// Kick arms the liveness poll if it is not already running. Front-ends
// call it after dispatching work; the poll re-arms itself only while
// some board is busy, so an idle fleet stops generating events and the
// run can drain.
func (m *Monitor) Kick() {
	if m.armed {
		return
	}
	m.armed = true
	m.eng.After(m.cfg.LivenessInterval, m.poll)
}

// poll compares every board's progress counter against the previous
// interval, suspecting and then declaring frozen boards dead.
func (m *Monitor) poll() {
	m.armed = false
	again := false
	for b, t := range m.trackers {
		st := t.State()
		if st == Dead || st == Recovering {
			continue
		}
		busy := m.hooks.Busy(b)
		if t.NoteLiveness(m.hooks.Progress(b), busy) {
			m.stats.Deaths++
			if m.ins != nil {
				m.ins.Deaths.Inc()
			}
			m.hooks.OnDead(b)
			continue
		}
		if busy || t.State() == Draining {
			again = true
		}
	}
	if again {
		m.Kick()
	}
}

// Stats is the fleet-level failover accounting shared by the cluster
// and serverless front-ends.
type Stats struct {
	// Deaths counts declared board deaths (crash faults and liveness
	// timeouts); Freezes and Degrades count those fault activations;
	// Recoveries counts boards revived into probation.
	Deaths, Freezes, Degrades, Recoveries int
	// Redispatched counts submissions moved off a dead board onto a
	// healthy one; MigratedItems counts checkpointed mid-flight items
	// whose snapshots travelled with them.
	Redispatched, MigratedItems int
	// FailedSubmissions counts work that exhausted its retry budget (or
	// stranded with no live board) and surfaced as a terminal failure.
	FailedSubmissions int
	// Hedged counts duplicated SLO-critical placements; HedgeCancelled
	// counts loser copies aborted after the winner retired.
	Hedged, HedgeCancelled int
	// WastedWork is fabric time lost to dead boards (work completed on
	// the old board minus what snapshots carried over); MigratedWork is
	// the progress the snapshots preserved.
	WastedWork, MigratedWork sim.Duration
}

// Instruments is the failover_* observability bundle.
type Instruments struct {
	Deaths        *obs.Counter
	Recoveries    *obs.Counter
	Redispatched  *obs.Counter
	MigratedItems *obs.Counter
	Failed        *obs.Counter
	Hedged        *obs.Counter
	HedgeWins     *obs.Counter
	WastedWork    *obs.Gauge
	MigratedWork  *obs.Gauge
	ReadmitDelay  *obs.Gauge
}

// NewInstruments registers the failover family on reg; nil reg yields
// nil instruments (every use site is nil-guarded).
func NewInstruments(reg *obs.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Deaths:        reg.Counter("failover_deaths_total", "Boards declared dead (crash faults and liveness timeouts)."),
		Recoveries:    reg.Counter("failover_recoveries_total", "Dead boards revived into circuit-breaker probation."),
		Redispatched:  reg.Counter("failover_redispatched_total", "Submissions re-dispatched off dead boards."),
		MigratedItems: reg.Counter("failover_migrated_items_total", "Checkpointed items migrated to a healthy board."),
		Failed:        reg.Counter("failover_failed_total", "Submissions failed permanently after exhausting retries."),
		Hedged:        reg.Counter("failover_hedged_total", "SLO-critical submissions placed on two boards."),
		HedgeWins:     reg.Counter("failover_hedge_cancelled_total", "Hedge loser copies cancelled after the winner retired."),
		WastedWork:    reg.Gauge("failover_wasted_work_seconds", "Fabric seconds lost to board deaths (net of migrated progress)."),
		MigratedWork:  reg.Gauge("failover_migrated_work_seconds", "Fabric seconds of progress preserved by checkpoint migration."),
		ReadmitDelay:  reg.Gauge("failover_readmit_delay_seconds", "Most recent circuit-breaker re-admission backoff."),
	}
}
