package cluster

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/sched/energy"
	"nimblock/internal/sim"

	"nimblock/internal/sched"
)

// heteroCluster builds a fleet whose board i gets latency scale
// scales[i] (1 = reference speed) on an otherwise default config.
func heteroCluster(t *testing.T, scales []float64, d Dispatch) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	cfgs := make([]hv.Config, len(scales))
	for i, s := range scales {
		c := hv.DefaultConfig()
		c.Board.LatencyScale = s
		cfgs[i] = c
	}
	cfg := Config{Boards: len(scales), HV: hv.DefaultConfig(), BoardConfigs: cfgs, Dispatch: d, Seed: 1}
	cl, err := New(eng, cfg, func(b hv.Config) sched.Scheduler { return energy.New(b.Board) })
	if err != nil {
		t.Fatal(err)
	}
	return eng, cl
}

// Regression (mirrors the PR 4/PR 8 tie-break tests): identical boards
// produce identical hetero scores, and every equal-score decision must
// break toward the lowest board index — the first submission always
// lands on board 0 no matter the fleet size.
func TestHeteroAwareTieBreaksByLowestIndex(t *testing.T) {
	for _, boards := range []int{2, 3, 5} {
		_, c := heteroCluster(t, make2(boards, 1), HeteroAware)
		if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Board != 0 {
			t.Fatalf("%d identical boards: first submission on board %d, want 0", boards, res[0].Board)
		}
	}
}

func make2(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// An empty slow board must lose to an empty fast board even when the
// slow board has the lower index: capability, not position, decides.
func TestHeteroAwarePrefersFasterBoard(t *testing.T) {
	_, c := heteroCluster(t, []float64{3, 1}, HeteroAware)
	if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Board != 1 {
		t.Fatalf("submission on board %d, want the fast board 1", res[0].Board)
	}
}

// Sequential arrivals under load must spread: once the fast board holds
// outstanding work, a slow-but-idle board can win the score.
func TestHeteroAwareBalancesUnderLoad(t *testing.T) {
	_, c := heteroCluster(t, []float64{1.2, 1}, HeteroAware)
	for i := 0; i < 8; i++ {
		if err := c.Submit(apps.MustGraph(apps.LeNet), 6, 3, sim.Time(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for _, r := range res {
		used[r.Board]++
	}
	if len(used) != 2 {
		t.Fatalf("board usage %v, want both boards used", used)
	}
}

// Tenant identity and weight must ride dispatch onto the boards: the
// fleet-level service report attributes fabric time per tenant.
func TestClusterTenantServiceWiring(t *testing.T) {
	_, c := heteroCluster(t, []float64{1, 1}, HeteroAware)
	for i := 0; i < 4; i++ {
		tenant := "alpha"
		if i%2 == 1 {
			tenant = "beta"
		}
		err := c.SubmitWith(apps.MustGraph(apps.LeNet), 3, 3, 0, SubmitOptions{Tenant: tenant, Weight: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	svc := c.TenantServices()
	if svc["alpha"] <= 0 || svc["beta"] <= 0 {
		t.Fatalf("tenant service %v, want both tenants credited", svc)
	}
	es := c.Energy()
	if es.TotalJoules() != 0 {
		t.Fatalf("no power model configured but energy %v J", es.TotalJoules())
	}
}

// With a power model on every board, the fleet energy report aggregates
// per-board integrals.
func TestClusterEnergyAggregates(t *testing.T) {
	eng := sim.NewEngine()
	cfgs := make([]hv.Config, 2)
	for i := range cfgs {
		c := hv.DefaultConfig()
		c.Board.StaticWattsPerSlot = 1
		c.Board.ActiveWattsPerSlot = 2
		cfgs[i] = c
	}
	cfg := Config{Boards: 2, HV: hv.DefaultConfig(), BoardConfigs: cfgs, Dispatch: RoundRobin, Seed: 1}
	cl, err := New(eng, cfg, func(b hv.Config) sched.Scheduler { return energy.New(b.Board) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := cl.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	es := cl.Energy()
	if es.StaticJoules <= 0 || es.ActiveJoules <= 0 {
		t.Fatalf("fleet energy %+v, want positive static and active joules", es)
	}
	one := cl.Board(0).Energy()
	if es.ActiveJoules <= one.ActiveJoules {
		t.Fatalf("fleet active %v J not above single board %v J", es.ActiveJoules, one.ActiveJoules)
	}
}
