package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/faults"
	"nimblock/internal/health"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

// newFailoverCluster builds a cluster with the failure-domain layer
// armed and the given board events scheduled.
func newFailoverCluster(t *testing.T, boards int, cfg Config, events []faults.BoardEvent) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	cfg.Boards = boards
	if cfg.HV.Board.Slots == 0 {
		cfg.HV = hv.DefaultConfig()
	}
	cfg.BoardFaults = events
	c, err := New(eng, cfg, mkNimblock(cfg.HV))
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

// classify asserts the exactly-one-terminal-outcome invariant and
// returns the counts.
func classify(t *testing.T, c *Cluster, res []Result) (completed, rejected, failed int) {
	t.Helper()
	for i, r := range res {
		switch {
		case r.Rejected:
			rejected++
			if r.Failed {
				t.Fatalf("result %d both rejected and failed: %+v", i, r)
			}
		case r.Failed:
			failed++
			if r.FailReason == "" {
				t.Fatalf("result %d failed without a reason: %+v", i, r)
			}
			if r.Response != 0 || r.Retire != 0 {
				t.Fatalf("result %d failed but carries completion times: %+v", i, r)
			}
		default:
			completed++
			if r.Board < 0 || r.Board >= c.Boards() || r.Response <= 0 {
				t.Fatalf("result %d completed but malformed: %+v", i, r)
			}
			if r.Attempts < 1 {
				t.Fatalf("result %d completed with %d attempts", i, r.Attempts)
			}
		}
	}
	return
}

func TestBoardCrashRedispatchesWork(t *testing.T) {
	events := []faults.BoardEvent{{
		Kind: faults.BoardCrash, Board: 0,
		At: sim.Time(300 * sim.Millisecond), Recover: sim.Time(20 * sim.Second),
	}}
	_, c := newFailoverCluster(t, 2, Config{Dispatch: RoundRobin, Seed: 1}, events)
	submitMix(t, c, 8)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("%d results for 8 submissions", len(res))
	}
	completed, _, failed := classify(t, c, res)
	if completed+failed != 8 {
		t.Fatalf("conservation broken: %d completed + %d failed != 8", completed, failed)
	}
	st := c.FailoverStats()
	if st.Deaths == 0 {
		t.Fatal("crash fault never declared a death")
	}
	if st.Redispatched == 0 && failed == 0 {
		t.Fatal("board died with work aboard but nothing was re-dispatched or failed")
	}
	if completed == 0 {
		t.Fatal("no submission survived a single-board crash in a 2-board fleet")
	}
}

func TestBoardHangIsDetectedByLiveness(t *testing.T) {
	events := []faults.BoardEvent{{
		Kind: faults.BoardHang, Board: 1,
		At: sim.Time(300 * sim.Millisecond), Recover: sim.Time(60 * sim.Second),
	}}
	hopt := &health.Options{Tracker: health.Config{
		LivenessInterval: 200 * sim.Millisecond,
		LivenessMisses:   3,
	}}
	_, c := newFailoverCluster(t, 2, Config{Dispatch: RoundRobin, Seed: 2, Health: hopt}, events)
	submitMix(t, c, 8)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	completed, _, failed := classify(t, c, res)
	if completed+failed != 8 {
		t.Fatalf("conservation broken: %d + %d != 8", completed, failed)
	}
	st := c.FailoverStats()
	if st.Freezes != 1 {
		t.Fatalf("Freezes = %d, want 1", st.Freezes)
	}
	if st.Deaths == 0 {
		t.Fatal("liveness never declared the frozen board dead")
	}
}

func TestBoardDegradeSlowsButCompletes(t *testing.T) {
	run := func(events []faults.BoardEvent) sim.Duration {
		_, c := newFailoverCluster(t, 1, Config{Dispatch: RoundRobin, Seed: 3}, events)
		submitMix(t, c, 4)
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		var worst sim.Duration
		for _, r := range res {
			if r.Failed || r.Rejected {
				t.Fatalf("degrade must not lose work: %+v", r)
			}
			if r.Response > worst {
				worst = r.Response
			}
		}
		return worst
	}
	clean := run([]faults.BoardEvent{{
		// A zero-effect marker event keeps the failure-domain layer armed
		// so both runs go through identical dispatch paths.
		Kind: faults.BoardDegrade, Board: 0, Factor: 1.0001,
		At: 0, Until: sim.Time(1 * sim.Millisecond),
	}})
	slowed := run([]faults.BoardEvent{{
		Kind: faults.BoardDegrade, Board: 0, Factor: 4,
		At: 0, Until: sim.Time(600 * sim.Second),
	}})
	if slowed <= clean {
		t.Fatalf("4x degrade did not slow the run: clean %v, degraded %v", clean, slowed)
	}
}

// TestCheckpointMigrationReducesWaste is the acceptance check that
// migrated items resume from their snapshots: the same crash with the
// checkpoint subsystem on wastes measurably less fabric time than full
// re-execution, and the migration counters prove snapshots moved.
func TestCheckpointMigrationReducesWaste(t *testing.T) {
	run := func(ckpt bool) health.Stats {
		cfg := Config{Dispatch: RoundRobin, Seed: 4, HV: hv.DefaultConfig()}
		if ckpt {
			cfg.HV.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 20 * sim.Millisecond}
		}
		// OpticalFlow items run 507ms; a crash at 1s lands mid-item with
		// several periodic snapshots already captured.
		events := []faults.BoardEvent{{
			Kind: faults.BoardCrash, Board: 0,
			At: sim.Time(1 * sim.Second), Recover: sim.Time(60 * sim.Second),
		}}
		_, c := newFailoverCluster(t, 2, cfg, events)
		for i := 0; i < 4; i++ {
			g := apps.MustGraph(apps.OpticalFlow)
			if err := c.Submit(g, 2, 3, sim.Time(i)*sim.Time(50*sim.Millisecond)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		completed, _, failed := classify(t, c, res)
		if completed+failed != 4 {
			t.Fatalf("conservation broken: %d + %d != 4", completed, failed)
		}
		return c.FailoverStats()
	}
	plain := run(false)
	migrated := run(true)
	if plain.Redispatched == 0 {
		t.Fatal("crash re-dispatched nothing; the scenario is too gentle to compare")
	}
	if migrated.MigratedItems == 0 {
		t.Fatal("checkpoint run migrated no items")
	}
	if migrated.MigratedWork <= 0 {
		t.Fatalf("migrated %d items but preserved no work", migrated.MigratedItems)
	}
	if migrated.WastedWork >= plain.WastedWork {
		t.Fatalf("checkpoint migration did not reduce waste: with %v, without %v",
			migrated.WastedWork, plain.WastedWork)
	}
}

func TestHedgedDispatchDuplicatesAndCancels(t *testing.T) {
	hopt := &health.Options{HedgePriority: 8}
	_, c := newFailoverCluster(t, 2, Config{Dispatch: LeastPending, Seed: 5, Health: hopt}, nil)
	lo := apps.MustGraph(apps.LeNet)
	hi := apps.MustGraph(apps.OpticalFlow)
	if err := c.Submit(lo, 2, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(hi, 2, 9, sim.Time(10*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results for 2 submissions", len(res))
	}
	completed, _, failed := classify(t, c, res)
	if completed != 2 || failed != 0 {
		t.Fatalf("completed %d failed %d, want 2/0", completed, failed)
	}
	st := c.FailoverStats()
	if st.Hedged != 1 {
		t.Fatalf("Hedged = %d, want 1 (only the priority-9 submission)", st.Hedged)
	}
	if st.HedgeCancelled != 1 {
		t.Fatalf("HedgeCancelled = %d, want 1 (the loser copy)", st.HedgeCancelled)
	}
}

// TestHedgeSurvivesBoardDeath crashes the fleet under hedged traffic:
// each submission must still end exactly once.
func TestHedgeSurvivesBoardDeath(t *testing.T) {
	hopt := &health.Options{HedgePriority: 1}
	events := []faults.BoardEvent{{
		Kind: faults.BoardCrash, Board: 0,
		At: sim.Time(250 * sim.Millisecond), Recover: sim.Time(20 * sim.Second),
	}}
	_, c := newFailoverCluster(t, 3, Config{Dispatch: RoundRobin, Seed: 6, Health: hopt}, events)
	submitMix(t, c, 9)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	completed, _, failed := classify(t, c, res)
	if completed+failed != 9 {
		t.Fatalf("conservation broken: %d + %d != 9", completed, failed)
	}
	if c.FailoverStats().Hedged == 0 {
		t.Fatal("no submission was hedged despite HedgePriority=1")
	}
}

// TestRecoveredBoardServesAgain checks the full circuit-breaker cycle:
// a crashed board revives, waits out its backoff, and takes new work
// within the same run.
func TestRecoveredBoardServesAgain(t *testing.T) {
	hopt := &health.Options{Tracker: health.Config{
		BackoffBase: 100 * sim.Millisecond,
		BackoffMax:  200 * sim.Millisecond,
	}}
	events := []faults.BoardEvent{{
		Kind: faults.BoardCrash, Board: 0,
		At: sim.Time(200 * sim.Millisecond), Recover: sim.Time(2 * sim.Second),
	}}
	_, c := newFailoverCluster(t, 2, Config{Dispatch: RoundRobin, Seed: 7, Health: hopt}, events)
	submitMix(t, c, 6)
	// Late arrivals land well after the board re-admits.
	for i := 0; i < 4; i++ {
		g := apps.MustGraph(apps.LeNet)
		at := sim.Time(30*sim.Second) + sim.Time(i)*sim.Time(sim.Second)
		if err := c.Submit(g, 2, 3, at); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	completed, _, failed := classify(t, c, res)
	if completed+failed != 10 {
		t.Fatalf("conservation broken: %d + %d != 10", completed, failed)
	}
	st := c.FailoverStats()
	if st.Recoveries == 0 {
		t.Fatal("scheduled recovery never revived the board")
	}
	onRevived := 0
	for _, r := range res {
		if !r.Failed && !r.Rejected && r.Board == 0 && r.Arrival >= sim.Time(30*sim.Second) {
			onRevived++
		}
	}
	if onRevived == 0 {
		t.Fatal("revived board 0 never served post-recovery work")
	}
	states := c.BoardStates()
	if states[0] == health.Dead || states[0] == health.Draining {
		t.Fatalf("board 0 ended the run %v", states[0])
	}
}

// TestFailoverConservation extends the conservation property to board
// deaths: across random workloads, board-level fault schedules, retry
// budgets, hedging, and checkpointing, every submission ends as exactly
// one of {completed, failed-after-retries} under every dispatch policy
// — never lost, never double-counted — and the failover counters agree
// with the results.
func TestFailoverConservation(t *testing.T) {
	pool := []string{apps.LeNet, apps.ImageCompression, apps.Rendering3D, apps.OpticalFlow}
	policies := []Dispatch{RoundRobin, LeastLoaded, LeastPending, RandomBoard}
	for seed := int64(0); seed < 20; seed++ {
		for _, d := range policies {
			seed, d := seed, d
			t.Run(fmt.Sprintf("seed=%d/%s", seed, d), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed))
				boards := 1 + rng.Intn(3)
				cfg := Config{Dispatch: d, Seed: seed, HV: hv.DefaultConfig()}
				if rng.Intn(2) == 0 {
					cfg.HV.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 30 * sim.Millisecond}
				}
				hopt := &health.Options{RetryBudget: 1 + rng.Intn(3)}
				if rng.Intn(2) == 0 && boards > 1 {
					hopt.HedgePriority = 5
				}
				cfg.Health = hopt
				var events []faults.BoardEvent
				for i, n := 0, 1+rng.Intn(3); i < n; i++ {
					b := rng.Intn(boards)
					at := sim.Time(rng.Int63n(int64(3 * sim.Second)))
					var recover sim.Time
					if rng.Intn(2) == 0 {
						recover = at + sim.Time(1+rng.Int63n(int64(10*sim.Second)))
					}
					switch rng.Intn(3) {
					case 0:
						events = append(events, faults.BoardEvent{Kind: faults.BoardCrash, Board: b, At: at, Recover: recover})
					case 1:
						events = append(events, faults.BoardEvent{Kind: faults.BoardHang, Board: b, At: at, Recover: recover})
					default:
						events = append(events, faults.BoardEvent{
							Kind: faults.BoardDegrade, Board: b, At: at,
							Until: at + sim.Time(1+rng.Int63n(int64(5*sim.Second))), Factor: 1.5 + rng.Float64()*6,
						})
					}
				}
				_, c := newFailoverCluster(t, boards, cfg, events)
				n := 6 + rng.Intn(10)
				for i := 0; i < n; i++ {
					g := apps.MustGraph(pool[rng.Intn(len(pool))])
					arrival := sim.Time(rng.Int63n(int64(2 * sim.Second)))
					if err := c.Submit(g, 1+rng.Intn(3), 1+rng.Intn(9), arrival); err != nil {
						t.Fatal(err)
					}
				}
				res, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				if len(res) != n {
					t.Fatalf("%d results for %d submissions", len(res), n)
				}
				completed, rejected, failed := classify(t, c, res)
				if rejected != 0 {
					t.Fatalf("no admission configured but %d rejected", rejected)
				}
				if completed+failed != n {
					t.Fatalf("conservation broken: %d completed + %d failed != %d", completed, failed, n)
				}
				st := c.FailoverStats()
				if failed != st.FailedSubmissions {
					t.Fatalf("%d failed results but stats count %d", failed, st.FailedSubmissions)
				}
				for i, r := range res {
					if !r.Failed && !r.Rejected && r.Attempts > hopt.RetryBudget+1 {
						t.Fatalf("result %d used %d attempts with budget %d", i, r.Attempts, hopt.RetryBudget)
					}
				}
			})
		}
	}
}

// TestPickTieBreaksDeterministically is the regression test for
// deterministic board selection: under equal health scores and equal
// load, every load-aware policy must choose the lowest index.
func TestPickTieBreaksDeterministically(t *testing.T) {
	for _, d := range []Dispatch{LeastLoaded, LeastPending} {
		t.Run(d.String(), func(t *testing.T) {
			// Health off: idle boards tie on load.
			_, c := newCluster(t, 4, d)
			if b := c.pick(); b != 0 {
				t.Fatalf("%s picked board %d on an idle fleet, want 0", d, b)
			}
			// Health on: same tie, now through the placeable filter.
			_, ch := newFailoverCluster(t, 4, Config{Dispatch: d, Seed: 8, Health: &health.Options{}}, nil)
			if b := ch.pick(); b != 0 {
				t.Fatalf("%s picked board %d with health armed, want 0", d, b)
			}
			// A degraded board 0 loses the tie to the first clean board.
			ch.mon.Tracker(0).MarkDegraded()
			if b := ch.pick(); b != 1 {
				t.Fatalf("%s picked board %d with board 0 degraded, want 1", d, b)
			}
		})
	}
}
