package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"nimblock/internal/admit"
	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

// TestAdmissionConservation is the streaming-invariant property test for
// the admission layer: across random workloads, every submission is
// exactly one of {completed, rejected-at-admission, shed} — never lost,
// never double-counted — under every dispatch policy, and the
// controller's own counters agree with the results.
func TestAdmissionConservation(t *testing.T) {
	pool := []string{apps.LeNet, apps.ImageCompression, apps.Rendering3D, apps.OpticalFlow}
	policies := []Dispatch{RoundRobin, LeastLoaded, LeastPending, RandomBoard}
	for seed := int64(0); seed < 20; seed++ {
		for _, d := range policies {
			seed, d := seed, d
			t.Run(fmt.Sprintf("seed=%d/%s", seed, d), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed))
				adm := admit.Config{
					Capacity:       2 + rng.Intn(6),
					MaxInFlight:    rng.Intn(4),              // 0 = unbounded window
					DeadlineFactor: float64(rng.Intn(3)) * 8, // 0, 8, or 16
					Quotas:         map[string]int{"a": 1 + rng.Intn(3)},
					Weights:        map[string]float64{"b": 0.5 + rng.Float64()*2},
				}
				eng := sim.NewEngine()
				cfg := Config{Boards: 1 + rng.Intn(3), HV: hv.DefaultConfig(), Dispatch: d, Seed: seed, Admission: &adm}
				c, err := New(eng, cfg, mkNimblock(cfg.HV))
				if err != nil {
					t.Fatal(err)
				}
				n := 8 + rng.Intn(12)
				tenants := []string{"", "a", "b"}
				for i := 0; i < n; i++ {
					g := apps.MustGraph(pool[rng.Intn(len(pool))])
					opts := SubmitOptions{Tenant: tenants[rng.Intn(len(tenants))]}
					if rng.Intn(3) == 0 {
						opts.SLO = sim.Duration(1+rng.Intn(60)) * sim.Second
					}
					arrival := sim.Time(rng.Int63n(int64(2 * sim.Second)))
					if err := c.SubmitWith(g, 1+rng.Intn(4), 1+rng.Intn(9), arrival, opts); err != nil {
						t.Fatal(err)
					}
				}
				res, err := c.Run()
				if err != nil {
					t.Fatal(err)
				}
				if len(res) != n {
					t.Fatalf("%d results for %d submissions", len(res), n)
				}
				var completed, rejected int
				reasons := map[string]int{}
				for i, r := range res {
					switch {
					case r.Rejected:
						rejected++
						reasons[r.RejectReason]++
						if r.Board != -1 || r.Response != 0 {
							t.Fatalf("result %d: rejected with board/response: %+v", i, r)
						}
					default:
						completed++
						if r.Board < 0 || r.Board >= c.Boards() || r.Response <= 0 {
							t.Fatalf("result %d: completed but malformed: %+v", i, r)
						}
					}
				}
				s := c.AdmissionStats()
				if s.Offered != n {
					t.Fatalf("offered %d != submitted %d", s.Offered, n)
				}
				if s.Admitted+s.Shed-s.Evicted+s.RejectedDeadline+s.RejectedQuota != s.Offered {
					t.Fatalf("controller conservation broken: %+v", s)
				}
				if completed != s.Completed || completed != s.Admitted-s.Evicted {
					t.Fatalf("completed %d vs stats %+v", completed, s)
				}
				if rejected != s.Shed+s.RejectedDeadline+s.RejectedQuota {
					t.Fatalf("rejected %d vs stats %+v", rejected, s)
				}
				if reasons["shed"] != s.Shed || reasons["deadline"] != s.RejectedDeadline || reasons["quota"] != s.RejectedQuota {
					t.Fatalf("reasons %v vs stats %+v", reasons, s)
				}
				if completed+rejected != n {
					t.Fatalf("conservation broken: %d + %d != %d", completed, rejected, n)
				}
			})
		}
	}
}
