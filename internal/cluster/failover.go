package cluster

// Board-level failure domains for the cluster front-end. When
// Config.Health (or a non-empty Config.BoardFaults) arms this layer,
// every board gets a health tracker fed by its hypervisor's event
// heartbeat, dispatch only considers placeable boards, and a declared
// board death evacuates unfinished work: already-retired results are
// harvested, mid-flight submissions are re-dispatched onto healthy
// boards (resuming from checkpoints when the target board runs the
// checkpoint subsystem), and work that exhausts its retry budget
// surfaces as a distinct terminal Failed result — never silently
// dropped, never double-counted.

import (
	"fmt"
	"math"

	"nimblock/internal/admit"
	"nimblock/internal/health"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

// parkedWork is one unit of dispatchable work waiting for a placeable
// board: either a fresh submission that arrived while every board was
// down, or an evacuee carried off a dead board.
type parkedWork struct {
	sub    *submission
	ticket *admit.Ticket
	// snaps and workDone travel with an evacuee: surviving checkpoints
	// to seed into the next board, and the fabric time the dead board
	// already spent (wasted unless the snapshots carry part of it).
	snaps    []hv.Snapshot
	workDone sim.Duration
	// redispatch marks evacuees, so placement books the re-dispatch and
	// wasted/migrated work into the failover stats.
	redispatch bool
}

// hedge tracks one submission placed on two boards. The first copy to
// retire wins; the loser is aborted. The admission ticket is held here
// (not in the per-board ticket maps) so it is released exactly once.
type hedge struct {
	copies map[int]int64 // board -> board-local submission ID
	ticket *admit.Ticket
	done   bool
}

// initHealth arms the failure-domain layer when configured. With no
// Health options and no board faults the cluster behaves exactly as it
// did without this layer — no monitor, no polls, no extra events.
func (c *Cluster) initHealth() error {
	if c.cfg.Health == nil && len(c.cfg.BoardFaults) == 0 {
		return nil
	}
	opt := health.Options{}
	if c.cfg.Health != nil {
		opt = *c.cfg.Health
	}
	opt = opt.WithDefaults()
	if opt.Tracker.Seed == 0 {
		opt.Tracker.Seed = c.cfg.Seed
	}
	c.hopt = opt
	ins := health.NewInstruments(opt.Registry)
	hooks := health.Hooks{
		Progress:  func(b int) uint64 { return c.boards[b].Progress() },
		Busy:      func(b int) bool { return c.boards[b].PendingCount() > 0 },
		OnDead:    c.boardDead,
		OnFreeze:  func(b int) { c.boards[b].Freeze() },
		OnDegrade: func(b int, factor float64) { c.boards[b].SetSlowdown(factor) },
		OnRevive:  c.boardRevive,
	}
	c.mon = health.NewMonitor(c.eng, len(c.boards), opt.Tracker, hooks, ins)
	if err := c.mon.Schedule(c.cfg.BoardFaults); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.retries = map[int]int{}
	c.failed = map[int]string{}
	c.lastOn = map[int]int{}
	c.hedges = map[int]*hedge{}
	c.done = map[int]Result{}
	return nil
}

// placeable lists the boards dispatch may use right now, filtered to
// the best (lowest) health score so degraded boards only receive work
// when no clean board is available.
func (c *Cluster) placeable() []int {
	now := c.eng.Now()
	var cands []int
	best := int(^uint(0) >> 1)
	for b := range c.boards {
		t := c.mon.Tracker(b)
		if !t.Placeable(now) {
			continue
		}
		s := t.Score()
		if s < best {
			best = s
			cands = cands[:0]
		}
		if s == best {
			cands = append(cands, b)
		}
	}
	return cands
}

// pickAmong applies the dispatch policy over a candidate set; nil means
// every board (the health-off fast path). Load and pending ties break
// toward the lowest board index — strict "<" keeps the earliest
// minimum — so placement is deterministic regardless of which boards
// happen to be healthy.
func (c *Cluster) pickAmong(cands []int) int {
	all := cands == nil
	in := func(b int) bool {
		if all {
			return true
		}
		for _, x := range cands {
			if x == b {
				return true
			}
		}
		return false
	}
	n := len(c.boards)
	switch c.cfg.Dispatch {
	case LeastLoaded:
		best, bestLoad := -1, sim.Duration(0)
		for i := 0; i < n; i++ {
			if !in(i) {
				continue
			}
			if l := c.boards[i].OutstandingEstimate(); best < 0 || l < bestLoad {
				best, bestLoad = i, l
			}
		}
		return best
	case LeastPending:
		best, bestN := -1, 0
		for i := 0; i < n; i++ {
			if !in(i) {
				continue
			}
			if p := c.boards[i].PendingCount(); best < 0 || p < bestN {
				best, bestN = i, p
			}
		}
		return best
	case HeteroAware:
		best, bestScore := -1, 0.0
		for i := 0; i < n; i++ {
			if !in(i) {
				continue
			}
			if s := c.heteroScore(i); best < 0 || s < bestScore {
				best, bestScore = i, s
			}
		}
		return best
	case RandomBoard:
		if all {
			return c.rng.Intn(n)
		}
		return cands[c.rng.Intn(len(cands))]
	default: // RoundRobin: advance the cursor to the next usable board.
		for k := 0; k < n; k++ {
			b := (c.next + k) % n
			if in(b) {
				c.next = (b + 1) % n
				return b
			}
		}
		return -1
	}
}

// heteroScore is the HeteroAware placement score of board i: estimated
// outstanding seconds stretched by the board's latency scale, divided
// by its usable slot count — a completion-time proxy for the next unit
// of work. The +1 makes empty boards rank by capability (fast, wide
// boards first); a board with no usable slots ranks last. Equal scores
// break toward the lowest board index via pickAmong's strict "<".
func (c *Cluster) heteroScore(i int) float64 {
	usable := c.boards[i].Board().UsableSlots()
	if usable == 0 {
		return math.Inf(1)
	}
	scale := c.boards[i].Board().LatencyScale()
	return (1 + c.boards[i].OutstandingEstimate().Seconds()) * scale / float64(usable)
}

// park shelves work until a board becomes placeable again.
func (c *Cluster) park(p parkedWork) {
	c.parked = append(c.parked, p)
}

// unpark retries placement for everything parked; work that still has
// no placeable board stays parked.
func (c *Cluster) unpark() {
	if len(c.parked) == 0 {
		return
	}
	rest := c.parked[:0]
	for _, p := range c.parked {
		target := c.pick()
		if target < 0 {
			rest = append(rest, p)
			continue
		}
		c.place(p, target)
	}
	c.parked = rest
}

// place lands one unit of work (fresh, parked, or evacuated) on target,
// seeding any surviving checkpoints so migrated items resume instead of
// re-executing, and booking the re-dispatch accounting.
func (c *Cluster) place(p parkedWork, target int) {
	sub := p.sub
	id, err := c.submitTo(target, sub)
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("cluster: submission %d (%s) on board %d: %w", sub.idx, sub.g.Name(), target, err))
		if c.ctrl != nil {
			c.ctrl.Release(p.ticket)
		}
		return
	}
	st := c.mon.StatsRef()
	ins := c.mon.Instruments()
	var migrated sim.Duration
	if len(p.snaps) > 0 && c.boardConfig(target).Checkpoint.Enabled {
		c.boards[target].SeedCheckpoints(id, p.snaps)
		for _, s := range p.snaps {
			migrated += s.Progress
		}
		st.MigratedItems += len(p.snaps)
		st.MigratedWork += migrated
		if ins != nil {
			ins.MigratedItems.Add(int64(len(p.snaps)))
			ins.MigratedWork.Add(migrated.Seconds())
		}
	}
	if p.redispatch {
		wasted := p.workDone - migrated
		if wasted < 0 {
			wasted = 0
		}
		st.Redispatched++
		st.WastedWork += wasted
		if ins != nil {
			ins.Redispatched.Inc()
			ins.WastedWork.Add(wasted.Seconds())
		}
	}
	c.placed[sub.idx] = target
	c.lastOn[sub.idx] = target
	c.idxOf[target][id] = sub.idx
	if p.ticket != nil {
		c.tickets[target][id] = p.ticket
	}
	c.mon.Kick()
}

// hedgeDispatch places an SLO-critical submission on the two best
// placeable boards. It returns false when fewer than two boards can
// take it, and the caller falls back to a single placement.
func (c *Cluster) hedgeDispatch(sub *submission, t *admit.Ticket) bool {
	cands := c.placeable()
	if len(cands) < 2 {
		return false
	}
	first := c.pickAmong(cands)
	rest := make([]int, 0, len(cands)-1)
	for _, b := range cands {
		if b != first {
			rest = append(rest, b)
		}
	}
	second := c.pickAmong(rest)
	id1, err := c.submitTo(first, sub)
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("cluster: submission %d (%s) on board %d: %w", sub.idx, sub.g.Name(), first, err))
		if c.ctrl != nil {
			c.ctrl.Release(t)
		}
		return true
	}
	id2, err := c.submitTo(second, sub)
	if err != nil {
		// The twin failed to submit: keep the single healthy placement.
		c.errs = append(c.errs, fmt.Errorf("cluster: hedge twin for submission %d on board %d: %w", sub.idx, second, err))
		c.placed[sub.idx] = first
		c.lastOn[sub.idx] = first
		c.idxOf[first][id1] = sub.idx
		if t != nil {
			c.tickets[first][id1] = t
		}
		c.mon.Kick()
		return true
	}
	c.hedges[sub.idx] = &hedge{copies: map[int]int64{first: id1, second: id2}, ticket: t}
	c.placed[sub.idx] = first
	c.lastOn[sub.idx] = first
	c.idxOf[first][id1] = sub.idx
	c.idxOf[second][id2] = sub.idx
	st := c.mon.StatsRef()
	st.Hedged++
	if ins := c.mon.Instruments(); ins != nil {
		ins.Hedged.Inc()
	}
	c.mon.Kick()
	return true
}

// retired is the failure-domain half of the retire hook: it advances
// the board's breaker probation, settles hedges (aborting the loser
// copy), and wakes parked work.
func (c *Cluster) retired(board int, id int64) {
	c.mon.Tracker(board).ReportSuccess()
	if idx, ok := c.idxOf[board][id]; ok {
		if h := c.hedges[idx]; h != nil && !h.done {
			h.done = true
			c.placed[idx] = board
			c.lastOn[idx] = board
			st := c.mon.StatsRef()
			ins := c.mon.Instruments()
			for b, cid := range h.copies {
				if b == board && cid == id {
					continue
				}
				if ok, spent := c.boards[b].Abort(cid); ok {
					st.HedgeCancelled++
					st.WastedWork += spent
					if ins != nil {
						ins.HedgeWins.Inc()
						ins.WastedWork.Add(spent.Seconds())
					}
				}
				delete(c.idxOf[b], cid)
			}
			if h.ticket != nil && c.ctrl != nil {
				c.ctrl.Release(h.ticket)
				h.ticket = nil
				if c.ctrl.QueueDepth() > 0 {
					c.eng.After(0, c.pump)
				}
			}
		}
	}
	if len(c.parked) > 0 {
		c.eng.After(0, c.unpark)
	}
}

// boardDead fails a dead board's work over. Results that retired before
// the death are harvested now — the board is rebuilt immediately and
// its replacement restarts local IDs, so the old bookkeeping must be
// settled before the maps reset. Unfinished work is re-dispatched
// (with surviving checkpoints), parked if no board can take it, or
// failed once its retry budget runs out.
func (c *Cluster) boardDead(b int) {
	evs := c.boards[b].Evacuate()
	results, err := c.boards[b].Collect()
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("cluster: harvesting dead board %d: %w", b, err))
	}
	for _, r := range results {
		idx, ok := c.idxOf[b][r.AppID]
		if !ok {
			c.errs = append(c.errs, fmt.Errorf("cluster: dead board %d reported unknown app %d", b, r.AppID))
			continue
		}
		c.done[idx] = Result{Result: r, Board: b}
	}
	oldIdx, oldTickets := c.idxOf[b], c.tickets[b]
	// Rebuild now, while the tracker still refuses placements: the dead
	// hypervisor can never serve again, and a revive only has to lift
	// the breaker.
	if h, err := c.newBoard(b); err != nil {
		c.errs = append(c.errs, fmt.Errorf("cluster: rebuilding board %d: %w", b, err))
	} else {
		c.boards[b] = h
	}
	c.idxOf[b] = map[int64]int{}
	c.tickets[b] = map[int64]*admit.Ticket{}
	st := c.mon.StatsRef()
	ins := c.mon.Instruments()
	for _, ev := range evs {
		idx, ok := oldIdx[ev.ID]
		if !ok {
			c.errs = append(c.errs, fmt.Errorf("cluster: dead board %d evacuated unknown app %d", b, ev.ID))
			continue
		}
		ticket := oldTickets[ev.ID]
		if h := c.hedges[idx]; h != nil && !h.done {
			// One copy of a hedge died; its twin is still in flight.
			delete(h.copies, b)
			st.WastedWork += ev.WorkDone
			if ins != nil {
				ins.WastedWork.Add(ev.WorkDone.Seconds())
			}
			if len(h.copies) > 0 {
				continue
			}
			// Both copies are gone: recover the ticket and fail over as
			// ordinary work. The wasted work is already booked.
			ticket = h.ticket
			delete(c.hedges, idx)
			ev.WorkDone = 0
		}
		c.failover(idx, ticket, ev.Snapshots, ev.WorkDone)
	}
}

// failover re-dispatches one evacuated submission, parking it when no
// board is placeable and failing it permanently once its retry budget
// is exhausted.
func (c *Cluster) failover(idx int, t *admit.Ticket, snaps []hv.Snapshot, workDone sim.Duration) {
	c.retries[idx]++
	if c.retries[idx] > c.hopt.RetryBudget {
		st := c.mon.StatsRef()
		st.WastedWork += workDone
		if ins := c.mon.Instruments(); ins != nil {
			ins.WastedWork.Add(workDone.Seconds())
		}
		c.fail(idx, "retries-exhausted", t)
		return
	}
	p := parkedWork{sub: c.subs[idx], ticket: t, snaps: snaps, workDone: workDone, redispatch: true}
	target := c.pick()
	if target < 0 {
		c.park(p)
		return
	}
	c.place(p, target)
}

// fail records a permanent loss: the submission surfaces from Run as a
// Failed result instead of vanishing, and its admission slot is freed.
func (c *Cluster) fail(idx int, reason string, t *admit.Ticket) {
	c.failed[idx] = reason
	if c.ctrl != nil && t != nil {
		c.ctrl.Release(t)
		if c.ctrl.QueueDepth() > 0 {
			c.eng.After(0, c.pump)
		}
	}
	st := c.mon.StatsRef()
	st.FailedSubmissions++
	if ins := c.mon.Instruments(); ins != nil {
		ins.Failed.Inc()
	}
}

// strand fails everything still parked when the run ends: no board
// ever came back to take it.
func (c *Cluster) strand() {
	st := c.mon.StatsRef()
	ins := c.mon.Instruments()
	for _, p := range c.parked {
		st.WastedWork += p.workDone
		if ins != nil {
			ins.WastedWork.Add(p.workDone.Seconds())
		}
		c.fail(p.sub.idx, "stranded", p.ticket)
	}
	c.parked = nil
}

// annotate overlays re-dispatch accounting on a completed result: the
// response clock starts at the original arrival, not the re-dispatch,
// so failover latency shows up in the metrics it actually cost.
func (c *Cluster) annotate(idx int, r Result) Result {
	if c.mon == nil {
		return r
	}
	r.Attempts = c.retries[idx] + 1
	if c.retries[idx] > 0 {
		sub := c.subs[idx]
		r.Arrival = sub.arrival
		if r.FirstLaunch >= 0 {
			r.Wait = r.FirstLaunch.Sub(sub.arrival)
		}
		r.Response = r.Retire.Sub(sub.arrival)
	}
	return r
}

// boardRevive runs when a dead board's scheduled recovery arrives. The
// hypervisor was already rebuilt at death; what remains is waking
// parked work once the circuit breaker re-admits the board.
func (c *Cluster) boardRevive(b int) {
	at := c.mon.Tracker(b).ReadmitAt()
	c.eng.At(at, c.unpark)
}

// FailoverStats reports the fleet's failover accounting; the zero Stats
// when the failure-domain layer is off.
func (c *Cluster) FailoverStats() health.Stats {
	if c.mon == nil {
		return health.Stats{}
	}
	return c.mon.Stats()
}

// BoardStates reports every board's health state; nil when the
// failure-domain layer is off.
func (c *Cluster) BoardStates() []health.State {
	if c.mon == nil {
		return nil
	}
	out := make([]health.State, len(c.boards))
	for b := range c.boards {
		out[b] = c.mon.Tracker(b).State()
	}
	return out
}
