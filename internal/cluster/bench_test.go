package cluster

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// BenchmarkClusterRun measures a 4-board least-loaded run end to end.
func BenchmarkClusterRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cfg := Config{Boards: 4, HV: hv.DefaultConfig(), Dispatch: LeastLoaded}
		c, err := New(eng, cfg, mkNimblockBench(cfg.HV))
		if err != nil {
			b.Fatal(err)
		}
		names := []string{apps.LeNet, apps.ImageCompression, apps.Rendering3D, apps.OpticalFlow}
		for j := 0; j < 12; j++ {
			if err := c.Submit(apps.MustGraph(names[j%len(names)]), 3, 3, sim.Time(j)*sim.Time(50*sim.Millisecond)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// mkNimblockBench mirrors the test helper without *testing.T.
func mkNimblockBench(cfg hv.Config) func(hv.Config) sched.Scheduler {
	return func(b hv.Config) sched.Scheduler { return core.New(core.DefaultOptions(), b.Board) }
}
