package cluster

import (
	"strings"
	"testing"

	"nimblock/internal/admit"
	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

// TestDispatchErrorSurfacedNotPanic pins the bugfix for the old panic on
// a dispatch-time submit failure: an invalid submission (batch 0 fails
// hypervisor-side validation at dispatch) must come back as an error
// from Run, leaving the process alive.
func TestDispatchErrorSurfacedNotPanic(t *testing.T) {
	_, c := newCluster(t, 2, RoundRobin)
	if err := c.Submit(apps.MustGraph(apps.LeNet), 0, 3, 0); err != nil {
		t.Fatalf("Submit rejected eagerly: %v", err)
	}
	if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
		t.Fatal(err)
	}
	_, err := c.Run()
	if err == nil {
		t.Fatal("dispatch failure not surfaced from Run")
	}
	if !strings.Contains(err.Error(), "batch 0") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestSameInstantArrivalsSpread pins the same-instant dispatch fix:
// simultaneous submissions must see each other's placement, so
// LeastLoaded/LeastPending spread a burst instead of piling it on one
// board.
func TestSameInstantArrivalsSpread(t *testing.T) {
	for _, d := range []Dispatch{LeastLoaded, LeastPending} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			_, c := newCluster(t, 2, d)
			for i := 0; i < 4; i++ {
				if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
					t.Fatal(err)
				}
			}
			res, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			perBoard := map[int]int{}
			for _, r := range res {
				perBoard[r.Board]++
			}
			if perBoard[0] != 2 || perBoard[1] != 2 {
				t.Fatalf("burst not spread: %v", perBoard)
			}
		})
	}
}

// TestLoadTieBreaksToLowestBoard pins deterministic tie-breaking: on a
// fully idle cluster every load-aware policy places the first arrival on
// board 0.
func TestLoadTieBreaksToLowestBoard(t *testing.T) {
	for _, d := range []Dispatch{LeastLoaded, LeastPending} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			_, c := newCluster(t, 4, d)
			if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
				t.Fatal(err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res[0].Board != 0 {
				t.Fatalf("idle tie broke to board %d, want 0", res[0].Board)
			}
		})
	}
}

func admCluster(t *testing.T, boards int, adm admit.Config) *Cluster {
	t.Helper()
	eng := sim.NewEngine()
	cfg := Config{Boards: boards, HV: hv.DefaultConfig(), Dispatch: LeastLoaded, Admission: &adm}
	c, err := New(eng, cfg, mkNimblock(cfg.HV))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAdmissionShedsBeyondCapacity: a same-instant burst past Capacity
// sheds the excess, returned as Rejected results in submission order.
func TestAdmissionShedsBeyondCapacity(t *testing.T) {
	c := admCluster(t, 1, admit.Config{Capacity: 2})
	for i := 0; i < 5; i++ {
		if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d results", len(res))
	}
	var completed, rejected int
	for i, r := range res {
		if r.Rejected {
			rejected++
			if r.Board != -1 || r.RejectReason != "shed" || r.App != apps.LeNet {
				t.Fatalf("result %d: %+v", i, r)
			}
		} else {
			completed++
			if r.Response <= 0 {
				t.Fatalf("admitted result %d has no response: %+v", i, r)
			}
		}
	}
	if completed != 2 || rejected != 3 {
		t.Fatalf("completed %d rejected %d", completed, rejected)
	}
	s := c.AdmissionStats()
	if s.Offered != 5 || s.Admitted != 2 || s.Shed != 3 {
		t.Fatalf("stats %+v", s)
	}
}

// TestAdmissionQueueDrainsOnRetire: with a dispatch window of one, work
// queues at admission and is promoted as each app retires — everything
// still completes.
func TestAdmissionQueueDrainsOnRetire(t *testing.T) {
	c := admCluster(t, 1, admit.Config{Capacity: 4, MaxInFlight: 1})
	for i := 0; i < 4; i++ {
		if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, sim.Time(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Rejected || r.Response <= 0 {
			t.Fatalf("result %d not completed: %+v", i, r)
		}
	}
	s := c.AdmissionStats()
	if s.Completed != 4 || s.PeakInFlight != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestAdmissionEvictsLowPriority: a high-priority arrival displaces a
// queued low-priority submission, which is reported shed.
func TestAdmissionEvictsLowPriority(t *testing.T) {
	c := admCluster(t, 1, admit.Config{Capacity: 2, MaxInFlight: 1})
	// idx 0 dispatches (window 1); idx 1 waits; idx 2 evicts it.
	if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 1, sim.Time(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 7, sim.Time(2*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Rejected != true || res[1].RejectReason != "shed" || res[1].Priority != 1 {
		t.Fatalf("low-priority waiter not evicted: %+v", res[1])
	}
	if res[0].Rejected || res[2].Rejected {
		t.Fatalf("wrong victims: %+v / %+v", res[0], res[2])
	}
}

// TestAdmissionDeadlineReject: an unreachable SLO is rejected at
// arrival, and a reachable one on an idle cluster is admitted.
func TestAdmissionDeadlineReject(t *testing.T) {
	c := admCluster(t, 1, admit.Config{})
	g := apps.MustGraph(apps.LeNet)
	if err := c.SubmitWith(g, 2, 3, 0, SubmitOptions{SLO: sim.Duration(sim.Microsecond)}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitWith(g, 2, 3, 0, SubmitOptions{SLO: sim.Duration(time10s())}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Rejected || res[0].RejectReason != "deadline" {
		t.Fatalf("impossible SLO admitted: %+v", res[0])
	}
	if res[1].Rejected {
		t.Fatalf("feasible SLO rejected: %+v", res[1])
	}
	if s := c.AdmissionStats(); s.RejectedDeadline != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func time10s() sim.Duration { return 10 * sim.Second }

// TestAdmissionTenantQuota: a hard per-tenant cap rejects the tenant's
// excess while other tenants are untouched.
func TestAdmissionTenantQuota(t *testing.T) {
	c := admCluster(t, 1, admit.Config{Quotas: map[string]int{"noisy": 1}})
	g := apps.MustGraph(apps.LeNet)
	if err := c.SubmitWith(g, 2, 3, 0, SubmitOptions{Tenant: "noisy"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitWith(g, 2, 3, 0, SubmitOptions{Tenant: "noisy"}); err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitWith(g, 2, 3, 0, SubmitOptions{Tenant: "calm"}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rejected || res[2].Rejected {
		t.Fatalf("wrong rejections: %+v / %+v", res[0], res[2])
	}
	if !res[1].Rejected || res[1].RejectReason != "quota" {
		t.Fatalf("quota not enforced: %+v", res[1])
	}
}

// TestAdmissionDisabledUnchanged: a nil Admission config admits
// everything, byte-identical to a cluster built before the admission
// layer existed.
func TestAdmissionDisabledUnchanged(t *testing.T) {
	_, c := newCluster(t, 2, RoundRobin)
	submitMix(t, c, 6)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Rejected {
			t.Fatalf("result %d rejected without admission: %+v", i, r)
		}
	}
	if s := c.AdmissionStats(); s != (admit.Stats{}) {
		t.Fatalf("stats without controller: %+v", s)
	}
}

// TestAdmissionInvalidConfig: controller validation surfaces from New.
func TestAdmissionInvalidConfig(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{Boards: 1, HV: hv.DefaultConfig(), Admission: &admit.Config{Capacity: -1}}
	if _, err := New(eng, cfg, mkNimblock(cfg.HV)); err == nil {
		t.Fatal("invalid admission config accepted")
	}
}
