// Package cluster scales Nimblock out across multiple FPGAs.
//
// The paper's introduction lists scale-out — "allowing applications to
// spread across multiple FPGAs" — as one of the three properties a
// virtualized FPGA should support, and leaves cloud-scale exploration to
// future work. This package provides that layer: a dispatcher in front
// of N independent boards, each running its own Nimblock hypervisor, all
// advancing on one virtual clock. Applications are placed on a board at
// arrival time by a pluggable dispatch policy; within a board, the
// configured scheduling algorithm takes over.
//
// An optional admission controller (internal/admit) sits in front of
// dispatch: arrivals it rejects never reach a board and come back from
// Run as Rejected results instead of errors, so overload degrades the
// excess traffic rather than the whole run.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"nimblock/internal/admit"
	"nimblock/internal/faults"
	"nimblock/internal/health"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Dispatch selects how arrivals are spread across boards.
type Dispatch int

const (
	// RoundRobin cycles through boards in order.
	RoundRobin Dispatch = iota
	// LeastLoaded picks the board with the smallest estimated
	// outstanding work (HLS estimates, like the schedulers use).
	LeastLoaded
	// LeastPending picks the board with the fewest pending applications.
	LeastPending
	// RandomBoard picks uniformly at random (seeded, deterministic).
	RandomBoard
	// HeteroAware ranks boards by estimated completion of the next unit
	// of work on a heterogeneous fleet: outstanding work stretched by
	// the board's latency scale and divided by its usable slot count.
	// On a homogeneous fleet it degenerates to LeastLoaded.
	HeteroAware
)

// String names the dispatch policy.
func (d Dispatch) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case LeastPending:
		return "least-pending"
	case RandomBoard:
		return "random"
	case HeteroAware:
		return "hetero-aware"
	default:
		return fmt.Sprintf("Dispatch(%d)", int(d))
	}
}

// Config parameterizes a cluster.
type Config struct {
	// Boards is the number of FPGAs (>= 1).
	Boards int
	// HV configures each board's hypervisor identically.
	HV hv.Config
	// BoardConfigs, when non-nil, overrides HV per board, enabling
	// heterogeneous clusters (e.g. a mix of edge-scale 4-slot and
	// cloud-scale 10-slot devices, the Hetero-ViTAL direction). Its
	// length must equal Boards.
	BoardConfigs []hv.Config
	// Dispatch selects the placement policy (default RoundRobin).
	Dispatch Dispatch
	// Seed drives RandomBoard placement.
	Seed int64
	// Admission, when non-nil, bounds what the cluster accepts: arrivals
	// the controller rejects are reported as Rejected results from Run
	// instead of being dispatched.
	Admission *admit.Config
	// Health, when non-nil, arms the board-level failure domain layer:
	// per-board liveness tracking, health-aware dispatch, failover of
	// work off dead boards (checkpoint migration when the board config
	// enables hv.CheckpointConfig), circuit-breaker re-admission, and
	// hedged dispatch for priority >= Health.HedgePriority submissions.
	// It is enabled automatically when BoardFaults is non-empty.
	Health *health.Options
	// BoardFaults schedules board-level fault events (crash, hang,
	// degrade) against the fleet, typically via faults.Plan.BoardEvents.
	BoardFaults []faults.BoardEvent
}

// Result is a per-application outcome annotated with its board. When
// Rejected is set the submission never reached a board: Board is -1,
// RejectReason names the admission outcome ("shed", "deadline",
// "quota"), and only the identifying Result fields (App, Batch,
// Priority, Arrival) are meaningful.
type Result struct {
	hv.Result
	Board        int
	Rejected     bool
	RejectReason string
	// Failed marks work that was admitted but lost permanently to board
	// deaths: its retry budget ran out (FailReason "retries-exhausted")
	// or no board ever came back to run it ("stranded"). Board is the
	// last board that held it, or -1 if it never ran.
	Failed     bool
	FailReason string
	// Attempts counts placements: 1 for work that ran where it first
	// landed, more when board deaths forced re-dispatch, 0 for rejected.
	Attempts int
}

// SubmitOptions carries the admission-relevant attributes of one
// submission. The zero value is a default-tenant submission with no
// explicit SLO.
type SubmitOptions struct {
	// Tenant attributes the submission for quotas and fair sharing.
	Tenant string
	// SLO is the latency budget for deadline admission; 0 falls back to
	// the controller's DeadlineFactor (or no deadline test).
	SLO sim.Duration
	// Weight is the tenant's fair-share weight for service-proportional
	// scheduling on the boards (NimblockEnergy); 0 means weight 1.
	Weight float64
}

// submission is the cluster-side record of one Submit call.
type submission struct {
	idx      int
	g        *taskgraph.Graph
	batch    int
	priority int
	arrival  sim.Time
	opts     SubmitOptions
}

// Cluster fronts N hypervisors with an arrival-time dispatcher.
type Cluster struct {
	eng      *sim.Engine
	cfg      Config
	boards   []hv.Instance
	rng      *rand.Rand
	next     int // round-robin cursor
	expected int
	placed   map[int]int // submission index -> board

	ctrl     *admit.Controller
	buffer   []*submission             // same-instant arrivals awaiting the canonical drain
	tickets  []map[int64]*admit.Ticket // board -> local app ID -> admission ticket
	idxOf    []map[int64]int           // board -> local app ID -> submission index
	rejected map[int]*submission       // submission index -> rejected record
	reasons  map[int]string            // submission index -> admission outcome
	errs     []error                   // dispatch-time submit failures

	// Failure-domain state (nil/empty when Config.Health is off; see
	// failover.go).
	mkPolicy func(hv.Config) sched.Scheduler // retained to rebuild dead boards
	mon      *health.Monitor
	hopt     health.Options
	subs     map[int]*submission // submission index -> record (for re-dispatch)
	retries  map[int]int         // submission index -> re-dispatches so far
	failed   map[int]string      // submission index -> terminal failure reason
	lastOn   map[int]int         // submission index -> last board that held it
	parked   []parkedWork        // evacuees waiting for a placeable board
	hedges   map[int]*hedge      // submission index -> hedge state
	done     map[int]Result      // results harvested off boards that later died
}

// New builds a cluster; mkPolicy supplies a fresh scheduling policy per
// board (policies are stateful and must not be shared) and receives the
// board's configuration so policies that plan against board shape (the
// Nimblock goal-number analysis) work on heterogeneous clusters.
func New(eng *sim.Engine, cfg Config, mkPolicy func(board hv.Config) sched.Scheduler) (*Cluster, error) {
	if cfg.Boards < 1 {
		return nil, fmt.Errorf("cluster: need at least one board, got %d", cfg.Boards)
	}
	if mkPolicy == nil {
		return nil, fmt.Errorf("cluster: nil policy factory")
	}
	if cfg.BoardConfigs != nil && len(cfg.BoardConfigs) != cfg.Boards {
		return nil, fmt.Errorf("cluster: %d board configs for %d boards", len(cfg.BoardConfigs), cfg.Boards)
	}
	c := &Cluster{
		eng:      eng,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		placed:   map[int]int{},
		rejected: map[int]*submission{},
		reasons:  map[int]string{},
		mkPolicy: mkPolicy,
		subs:     map[int]*submission{},
	}
	if cfg.Admission != nil {
		ctrl, err := admit.New(*cfg.Admission)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.ctrl = ctrl
	}
	for i := 0; i < cfg.Boards; i++ {
		h, err := c.newBoard(i)
		if err != nil {
			return nil, fmt.Errorf("cluster: board %d: %w", i, err)
		}
		c.boards = append(c.boards, h)
		c.tickets = append(c.tickets, map[int64]*admit.Ticket{})
		c.idxOf = append(c.idxOf, map[int64]int{})
	}
	if err := c.initHealth(); err != nil {
		return nil, err
	}
	return c, nil
}

// newBoard builds (or rebuilds, after a recovery) board i's hypervisor
// with the cluster's retire hook chained onto any user-provided one.
func (c *Cluster) newBoard(i int) (hv.Instance, error) {
	bcfg := c.boardConfig(i)
	board, user := i, bcfg.OnRetire
	bcfg.OnRetire = func(id int64) {
		if user != nil {
			user(id)
		}
		c.onRetire(board, id)
	}
	return hv.New(c.eng, bcfg, c.mkPolicy(bcfg))
}

// Boards reports the cluster size.
func (c *Cluster) Boards() int { return len(c.boards) }

// Board exposes one board's backend (for tests and reports).
func (c *Cluster) Board(i int) hv.Instance { return c.boards[i] }

// AdmissionStats reports the admission controller's counters; the zero
// Stats when admission is disabled.
func (c *Cluster) AdmissionStats() admit.Stats {
	if c.ctrl == nil {
		return admit.Stats{}
	}
	return c.ctrl.Stats()
}

// Submit schedules an application arrival under the default tenant with
// no explicit SLO. The board is chosen when the application actually
// arrives, so load-aware policies see current state.
func (c *Cluster) Submit(g *taskgraph.Graph, batch, priority int, arrival sim.Time) error {
	return c.SubmitWith(g, batch, priority, arrival, SubmitOptions{})
}

// SubmitWith is Submit with admission attributes (tenant, SLO).
func (c *Cluster) SubmitWith(g *taskgraph.Graph, batch, priority int, arrival sim.Time, opts SubmitOptions) error {
	if g == nil {
		return fmt.Errorf("cluster: nil graph")
	}
	sub := &submission{idx: c.expected, g: g, batch: batch, priority: priority, opts: opts}
	c.subs[sub.idx] = sub
	c.expected++
	c.eng.At(arrival, func() {
		// Buffer and drain once all arrivals at this instant are in: the
		// drain's After(0) event sorts after every Submit event already
		// queued at the same time, so simultaneous submissions are
		// admitted and dispatched in one canonical pass (by submission
		// index) no matter how their events were interleaved.
		sub.arrival = c.eng.Now()
		c.buffer = append(c.buffer, sub)
		if len(c.buffer) == 1 {
			c.eng.After(0, c.drain)
		}
	})
	return nil
}

// drain admits and dispatches every arrival buffered at this instant.
func (c *Cluster) drain() {
	batch := c.buffer
	c.buffer = nil
	sort.Slice(batch, func(i, j int) bool { return batch[i].idx < batch[j].idx })
	for _, sub := range batch {
		if c.ctrl == nil {
			c.dispatch(sub, nil)
			continue
		}
		_, evicted, out := c.ctrl.Offer(admit.Request{
			Tenant:   sub.opts.Tenant,
			Priority: sub.priority,
			Estimate: c.estimate(sub),
			SLO:      sub.opts.SLO,
			Arrival:  c.eng.Now(),
			Payload:  sub,
		}, c.minLoad())
		if out != admit.Admitted {
			c.reject(sub, out.String())
			continue
		}
		if evicted != nil {
			c.reject(evicted.Request().Payload.(*submission), admit.Shed.String())
		}
	}
	if c.ctrl != nil {
		c.pump()
	}
}

// pump dispatches every ticket the controller clears for boards.
func (c *Cluster) pump() {
	for _, t := range c.ctrl.Dispatchable() {
		c.dispatch(t.Request().Payload.(*submission), t)
	}
}

// dispatch places one admitted submission on a board. Submit failures at
// dispatch time are recorded and surfaced from Run — never a panic: a
// malformed submission must not take down the whole cluster run.
func (c *Cluster) dispatch(sub *submission, t *admit.Ticket) {
	if c.mon != nil && c.hopt.HedgePriority > 0 && sub.priority >= c.hopt.HedgePriority {
		if c.hedgeDispatch(sub, t) {
			return
		}
	}
	b := c.pick()
	if b < 0 {
		// No placeable board right now: park until one recovers.
		c.park(parkedWork{sub: sub, ticket: t})
		return
	}
	id, err := c.submitTo(b, sub)
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("cluster: submission %d (%s) on board %d: %w", sub.idx, sub.g.Name(), b, err))
		if c.ctrl != nil {
			c.ctrl.Release(t) // free the admission slot the failed dispatch held
		}
		return
	}
	c.placed[sub.idx] = b
	c.idxOf[b][id] = sub.idx
	if t != nil {
		c.tickets[b][id] = t
	}
	if c.mon != nil {
		c.lastOn[sub.idx] = b
		c.mon.Kick()
	}
}

// submitTo lands one submission on board b, carrying the tenant
// identity and fair-share weight through to the board's scheduler when
// the submission has them (anonymous submissions keep the cheaper
// untagged path).
func (c *Cluster) submitTo(b int, sub *submission) (int64, error) {
	if sub.opts.Tenant != "" {
		return c.boards[b].SubmitTenant(sub.g, sub.batch, sub.priority, c.eng.Now(), sub.opts.Tenant, sub.opts.Weight)
	}
	return c.boards[b].SubmitID(sub.g, sub.batch, sub.priority, c.eng.Now())
}

// Energy sums the per-board energy reports; each board integrates its
// own power model, so heterogeneous fleets aggregate correctly.
func (c *Cluster) Energy() hv.EnergyStats {
	var total hv.EnergyStats
	for _, b := range c.boards {
		es := b.Energy()
		total.StaticJoules += es.StaticJoules
		total.ActiveJoules += es.ActiveJoules
		total.OccupiedSlotSeconds += es.OccupiedSlotSeconds
		total.UsableSlotSeconds += es.UsableSlotSeconds
	}
	return total
}

// TenantServices merges delivered per-tenant fabric time across the
// fleet (board-local latency scales already folded in by each board's
// accounting).
func (c *Cluster) TenantServices() map[string]sim.Duration {
	out := map[string]sim.Duration{}
	for _, b := range c.boards {
		for tenant, d := range b.TenantServices() {
			out[tenant] += d
		}
	}
	return out
}

// reject records an admission rejection for reporting from Run.
func (c *Cluster) reject(sub *submission, reason string) {
	c.rejected[sub.idx] = sub
	c.reasons[sub.idx] = reason
}

// onRetire releases the retiring application's admission slot and, on
// the next event tick (outside the hypervisor's retire processing),
// dispatches any queued work the freed slot clears.
func (c *Cluster) onRetire(board int, id int64) {
	if c.mon != nil {
		c.retired(board, id)
	}
	t, ok := c.tickets[board][id]
	if !ok {
		return
	}
	delete(c.tickets[board], id)
	c.ctrl.Release(t)
	if c.ctrl.QueueDepth() > 0 {
		c.eng.After(0, c.pump)
	}
}

// estimate is the admission-time work estimate for a submission: its
// single-slot latency on the cluster's fastest-case board. Optimistic
// across heterogeneous boards, so the deadline test never rejects work a
// big board could have finished in time.
func (c *Cluster) estimate(sub *submission) sim.Duration {
	best := hv.SingleSlotLatencyFor(c.boardConfig(0).Board, sub.g, sub.batch)
	for i := 1; i < len(c.boards); i++ {
		if e := hv.SingleSlotLatencyFor(c.boardConfig(i).Board, sub.g, sub.batch); e < best {
			best = e
		}
	}
	return best
}

// boardConfig resolves the effective hv.Config of board i.
func (c *Cluster) boardConfig(i int) hv.Config {
	if c.cfg.BoardConfigs != nil {
		return c.cfg.BoardConfigs[i]
	}
	return c.cfg.HV
}

// minLoad is the least-loaded board's outstanding estimate — the
// admission controller's optimistic view of how soon new work could
// start.
func (c *Cluster) minLoad() sim.Duration {
	boards := []int(nil)
	if c.mon != nil {
		boards = c.placeable()
	}
	if boards == nil {
		best := c.boards[0].OutstandingEstimate()
		for i := 1; i < len(c.boards); i++ {
			if l := c.boards[i].OutstandingEstimate(); l < best {
				best = l
			}
		}
		return best
	}
	if len(boards) == 0 {
		// Nothing placeable: admission sees an effectively infinite queue.
		return c.cfg.HV.Horizon.Sub(0)
	}
	best := c.boards[boards[0]].OutstandingEstimate()
	for _, b := range boards[1:] {
		if l := c.boards[b].OutstandingEstimate(); l < best {
			best = l
		}
	}
	return best
}

// pick applies the dispatch policy. Load ties break toward the lowest
// board index (strict "<" keeps the earliest minimum), so placement is
// deterministic and independent of event ordering. With the failure
// domain layer armed, only placeable boards (best health score first)
// are considered; -1 means nothing can take work right now.
func (c *Cluster) pick() int {
	if c.mon == nil {
		return c.pickAmong(nil)
	}
	cands := c.placeable()
	if len(cands) == 0 {
		return -1
	}
	return c.pickAmong(cands)
}

// Run drives the shared engine until every application on every board
// retires, and returns one Result per submission in global submission
// order: board-annotated outcomes for dispatched work, Rejected entries
// for what admission turned away. Dispatch-time submit failures
// accumulated during the run are returned joined.
func (c *Cluster) Run() ([]Result, error) {
	// Drain rather than run to the horizon: DrainUntil leaves the clock
	// at the last fired event (the fleet's makespan), so Energy sampled
	// after Run prices static power over time actually spanned by work,
	// not over the idle tail out to the horizon.
	c.eng.DrainUntil(c.cfg.HV.Horizon)
	if c.mon != nil {
		c.strand()
	}
	if err := errors.Join(c.errs...); err != nil {
		return nil, err
	}
	out := make([]Result, c.expected)
	filled := 0
	for i, b := range c.boards {
		results, err := b.Collect()
		if err != nil {
			return nil, fmt.Errorf("cluster: board %d: %w", i, err)
		}
		for _, r := range results {
			idx, ok := c.idxOf[i][r.AppID]
			if !ok {
				return nil, fmt.Errorf("cluster: board %d reported unknown app %d", i, r.AppID)
			}
			out[idx] = c.annotate(idx, Result{Result: r, Board: i})
			filled++
		}
	}
	// Results harvested off boards that died mid-run, then work lost to
	// those deaths permanently — distinct terminal outcomes, one result
	// each, so the conservation check below still balances.
	for idx, r := range c.done {
		out[idx] = c.annotate(idx, r)
		filled++
	}
	for idx, reason := range c.failed {
		sub := c.subs[idx]
		board := -1
		if b, ok := c.lastOn[idx]; ok {
			board = b
		}
		out[idx] = Result{
			Result: hv.Result{
				AppID:       -1,
				App:         sub.g.Name(),
				Batch:       sub.batch,
				Priority:    sub.priority,
				Arrival:     sub.arrival,
				FirstLaunch: -1,
			},
			Board:      board,
			Failed:     true,
			FailReason: reason,
			Attempts:   c.retries[idx],
		}
		filled++
	}
	for idx, sub := range c.rejected {
		out[idx] = Result{
			Result: hv.Result{
				AppID:       -1,
				App:         sub.g.Name(),
				Batch:       sub.batch,
				Priority:    sub.priority,
				Arrival:     sub.arrival,
				FirstLaunch: -1,
			},
			Board:        -1,
			Rejected:     true,
			RejectReason: c.reasons[idx],
		}
		filled++
	}
	if c.ctrl != nil && c.ctrl.QueueDepth() > 0 {
		return nil, fmt.Errorf("cluster: %d admitted submissions still queued at horizon", c.ctrl.QueueDepth())
	}
	if filled != c.expected {
		return nil, fmt.Errorf("cluster: %d results for %d submissions", filled, c.expected)
	}
	return out, nil
}
