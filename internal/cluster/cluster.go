// Package cluster scales Nimblock out across multiple FPGAs.
//
// The paper's introduction lists scale-out — "allowing applications to
// spread across multiple FPGAs" — as one of the three properties a
// virtualized FPGA should support, and leaves cloud-scale exploration to
// future work. This package provides that layer: a dispatcher in front
// of N independent boards, each running its own Nimblock hypervisor, all
// advancing on one virtual clock. Applications are placed on a board at
// arrival time by a pluggable dispatch policy; within a board, the
// configured scheduling algorithm takes over.
package cluster

import (
	"fmt"
	"math/rand"

	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Dispatch selects how arrivals are spread across boards.
type Dispatch int

const (
	// RoundRobin cycles through boards in order.
	RoundRobin Dispatch = iota
	// LeastLoaded picks the board with the smallest estimated
	// outstanding work (HLS estimates, like the schedulers use).
	LeastLoaded
	// LeastPending picks the board with the fewest pending applications.
	LeastPending
	// RandomBoard picks uniformly at random (seeded, deterministic).
	RandomBoard
)

// String names the dispatch policy.
func (d Dispatch) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case LeastPending:
		return "least-pending"
	case RandomBoard:
		return "random"
	default:
		return fmt.Sprintf("Dispatch(%d)", int(d))
	}
}

// Config parameterizes a cluster.
type Config struct {
	// Boards is the number of FPGAs (>= 1).
	Boards int
	// HV configures each board's hypervisor identically.
	HV hv.Config
	// BoardConfigs, when non-nil, overrides HV per board, enabling
	// heterogeneous clusters (e.g. a mix of edge-scale 4-slot and
	// cloud-scale 10-slot devices, the Hetero-ViTAL direction). Its
	// length must equal Boards.
	BoardConfigs []hv.Config
	// Dispatch selects the placement policy (default RoundRobin).
	Dispatch Dispatch
	// Seed drives RandomBoard placement.
	Seed int64
}

// Result is a per-application outcome annotated with its board.
type Result struct {
	hv.Result
	Board int
}

// Cluster fronts N hypervisors with an arrival-time dispatcher.
type Cluster struct {
	eng      *sim.Engine
	cfg      Config
	boards   []*hv.Hypervisor
	rng      *rand.Rand
	next     int // round-robin cursor
	expected int
	placed   map[int]int // submission index -> board
}

// New builds a cluster; mkPolicy supplies a fresh scheduling policy per
// board (policies are stateful and must not be shared) and receives the
// board's configuration so policies that plan against board shape (the
// Nimblock goal-number analysis) work on heterogeneous clusters.
func New(eng *sim.Engine, cfg Config, mkPolicy func(board hv.Config) sched.Scheduler) (*Cluster, error) {
	if cfg.Boards < 1 {
		return nil, fmt.Errorf("cluster: need at least one board, got %d", cfg.Boards)
	}
	if mkPolicy == nil {
		return nil, fmt.Errorf("cluster: nil policy factory")
	}
	if cfg.BoardConfigs != nil && len(cfg.BoardConfigs) != cfg.Boards {
		return nil, fmt.Errorf("cluster: %d board configs for %d boards", len(cfg.BoardConfigs), cfg.Boards)
	}
	c := &Cluster{
		eng:    eng,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		placed: map[int]int{},
	}
	for i := 0; i < cfg.Boards; i++ {
		bcfg := cfg.HV
		if cfg.BoardConfigs != nil {
			bcfg = cfg.BoardConfigs[i]
		}
		h, err := hv.New(eng, bcfg, mkPolicy(bcfg))
		if err != nil {
			return nil, fmt.Errorf("cluster: board %d: %w", i, err)
		}
		c.boards = append(c.boards, h)
	}
	return c, nil
}

// Boards reports the cluster size.
func (c *Cluster) Boards() int { return len(c.boards) }

// Board exposes one board's hypervisor (for tests and reports).
func (c *Cluster) Board(i int) *hv.Hypervisor { return c.boards[i] }

// Submit schedules an application arrival. The board is chosen when the
// application actually arrives, so load-aware policies see current state.
func (c *Cluster) Submit(g *taskgraph.Graph, batch, priority int, arrival sim.Time) error {
	if g == nil {
		return fmt.Errorf("cluster: nil graph")
	}
	idx := c.expected
	c.expected++
	c.eng.At(arrival, func() {
		b := c.pick()
		c.placed[idx] = b
		// Arrival is "now" from the board's perspective.
		if err := c.boards[b].Submit(g, batch, priority, c.eng.Now()); err != nil {
			// Submission failures at dispatch time are mechanical
			// errors; surface through the board's error state by
			// re-checking in Run (Collect reports missing apps).
			panic(fmt.Sprintf("cluster: dispatch-time submit failed: %v", err))
		}
	})
	return nil
}

// pick applies the dispatch policy.
func (c *Cluster) pick() int {
	switch c.cfg.Dispatch {
	case LeastLoaded:
		best, bestLoad := 0, c.boards[0].OutstandingEstimate()
		for i := 1; i < len(c.boards); i++ {
			if l := c.boards[i].OutstandingEstimate(); l < bestLoad {
				best, bestLoad = i, l
			}
		}
		return best
	case LeastPending:
		best, bestN := 0, c.boards[0].PendingCount()
		for i := 1; i < len(c.boards); i++ {
			if n := c.boards[i].PendingCount(); n < bestN {
				best, bestN = i, n
			}
		}
		return best
	case RandomBoard:
		return c.rng.Intn(len(c.boards))
	default:
		b := c.next
		c.next = (c.next + 1) % len(c.boards)
		return b
	}
}

// Run drives the shared engine until every application on every board
// retires, and returns board-annotated results in submission order of
// each board (stable across runs).
func (c *Cluster) Run() ([]Result, error) {
	c.eng.RunUntil(c.cfg.HV.Horizon)
	var out []Result
	for i, b := range c.boards {
		results, err := b.Collect()
		if err != nil {
			return nil, fmt.Errorf("cluster: board %d: %w", i, err)
		}
		for _, r := range results {
			out = append(out, Result{Result: r, Board: i})
		}
	}
	if len(out) != c.expected {
		return nil, fmt.Errorf("cluster: %d results for %d submissions", len(out), c.expected)
	}
	return out, nil
}
