package cluster

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sched/fcfs"
	"nimblock/internal/sim"
)

func mkNimblock(cfg hv.Config) func(hv.Config) sched.Scheduler {
	return func(b hv.Config) sched.Scheduler { return core.New(core.DefaultOptions(), b.Board) }
}

func newCluster(t *testing.T, boards int, d Dispatch) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := Config{Boards: boards, HV: hv.DefaultConfig(), Dispatch: d, Seed: 1}
	c, err := New(eng, cfg, mkNimblock(cfg.HV))
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func submitMix(t *testing.T, c *Cluster, n int) {
	t.Helper()
	names := []string{apps.LeNet, apps.ImageCompression, apps.Rendering3D, apps.OpticalFlow}
	for i := 0; i < n; i++ {
		g := apps.MustGraph(names[i%len(names)])
		if err := c.Submit(g, 3, 3, sim.Time(i)*sim.Time(100*sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClusterCompletesAllApps(t *testing.T) {
	for _, d := range []Dispatch{RoundRobin, LeastLoaded, LeastPending, RandomBoard} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			_, c := newCluster(t, 3, d)
			submitMix(t, c, 9)
			res, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 9 {
				t.Fatalf("%d results", len(res))
			}
			for _, r := range res {
				if r.Board < 0 || r.Board >= 3 {
					t.Fatalf("bad board %d", r.Board)
				}
				if r.Response <= 0 {
					t.Fatalf("bad response %v", r.Response)
				}
			}
		})
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	_, c := newCluster(t, 3, RoundRobin)
	submitMix(t, c, 9)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	perBoard := map[int]int{}
	for _, r := range res {
		perBoard[r.Board]++
	}
	for b := 0; b < 3; b++ {
		if perBoard[b] != 3 {
			t.Fatalf("board %d got %d apps, want 3 (%v)", b, perBoard[b], perBoard)
		}
	}
}

func TestLeastLoadedAvoidsBusyBoard(t *testing.T) {
	eng, c := newCluster(t, 2, LeastLoaded)
	// A huge job lands first; it must go somewhere, and the following
	// burst of short jobs must avoid that board.
	if err := c.Submit(apps.MustGraph(apps.DigitRecognition), 10, 3, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := c.Submit(apps.MustGraph(apps.LeNet), 2, 3, sim.Time(sim.Second)+sim.Time(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = eng
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	var drBoard int
	for _, r := range res {
		if r.App == apps.DigitRecognition {
			drBoard = r.Board
		}
	}
	for _, r := range res {
		if r.App == apps.LeNet && r.Board == drBoard {
			t.Fatalf("short job placed on the loaded board %d", drBoard)
		}
	}
}

func TestMoreBoardsHelpUnderLoad(t *testing.T) {
	run := func(boards int) sim.Duration {
		eng := sim.NewEngine()
		cfg := Config{Boards: boards, HV: hv.DefaultConfig(), Dispatch: LeastLoaded}
		c, err := New(eng, cfg, func(hv.Config) sched.Scheduler { return fcfs.New() })
		if err != nil {
			t.Fatal(err)
		}
		// A burst of medium jobs that oversubscribes one board.
		for i := 0; i < 8; i++ {
			if err := c.Submit(apps.MustGraph(apps.OpticalFlow), 5, 3, sim.Time(i)*sim.Time(50*sim.Millisecond)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		var total sim.Duration
		for _, r := range res {
			total += r.Response
		}
		return total
	}
	one, four := run(1), run(4)
	if four >= one {
		t.Fatalf("4 boards (%v) not faster than 1 (%v)", four, one)
	}
}

func TestClusterValidation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{Boards: 0, HV: hv.DefaultConfig()}
	if _, err := New(eng, cfg, mkNimblock(cfg.HV)); err == nil {
		t.Fatal("zero boards accepted")
	}
	cfg.Boards = 1
	if _, err := New(eng, cfg, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	c, err := New(eng, cfg, mkNimblock(cfg.HV))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(nil, 1, 1, 0); err == nil {
		t.Fatal("nil graph accepted")
	}
	if c.Boards() != 1 || c.Board(0) == nil {
		t.Fatal("accessors broken")
	}
}

func TestDispatchStrings(t *testing.T) {
	for _, d := range []Dispatch{RoundRobin, LeastLoaded, LeastPending, RandomBoard, Dispatch(99)} {
		if d.String() == "" {
			t.Fatalf("empty name for %d", int(d))
		}
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() []Result {
		_, c := newCluster(t, 2, RandomBoard)
		submitMix(t, c, 6)
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	eng := sim.NewEngine()
	small := hv.DefaultConfig()
	small.Board.Slots = 4
	big := hv.DefaultConfig()
	big.Board.Slots = 10
	cfg := Config{
		Boards:       2,
		HV:           hv.DefaultConfig(),
		BoardConfigs: []hv.Config{small, big},
		Dispatch:     LeastLoaded,
	}
	c, err := New(eng, cfg, mkNimblock(cfg.HV))
	if err != nil {
		t.Fatal(err)
	}
	if c.Board(0).NumSlots() != 4 || c.Board(1).NumSlots() != 10 {
		t.Fatalf("board sizes %d/%d", c.Board(0).NumSlots(), c.Board(1).NumSlots())
	}
	submitMix(t, c, 8)
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("%d results", len(res))
	}
}

func TestHeterogeneousConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{
		Boards:       3,
		HV:           hv.DefaultConfig(),
		BoardConfigs: []hv.Config{hv.DefaultConfig()},
	}
	if _, err := New(eng, cfg, mkNimblock(cfg.HV)); err == nil {
		t.Fatal("mismatched BoardConfigs length accepted")
	}
}
