package cluster

import (
	"fmt"
	"testing"

	"nimblock/internal/admit"
	"nimblock/internal/faults"
	"nimblock/internal/health"
	"nimblock/internal/sim"
)

// TestHedgeWinnerBoardDeathAtRetire pins the narrowest hedge/failure
// interleaving: the hedge winner's board dies at the very instant the
// winner retires — just before it (the retire never happens and the
// loser must carry the submission), at the same timestamp (the crash
// fires first: board faults are scheduled at construction, so their
// events sort ahead of same-instant retires), and just after it (the
// hedge has settled and the loser's Abort already landed when the
// board's death harvests the winner's result). In every interleaving
// the admission ticket must be released exactly once and every
// submission must end in exactly one terminal state.
func TestHedgeWinnerBoardDeathAtRetire(t *testing.T) {
	const subs = 6
	build := func(events []faults.BoardEvent) *Cluster {
		_, c := newFailoverCluster(t, 3, Config{
			Dispatch:  LeastPending,
			Seed:      11,
			Health:    &health.Options{HedgePriority: 1},
			Admission: &admit.Config{Capacity: 64, MaxInFlight: 64},
		}, events)
		submitMix(t, c, subs)
		return c
	}

	// Probe run: same cluster, no faults — find the first hedge winner's
	// board and retire instant. Determinism makes the fault runs replay
	// this placement exactly up to the crash.
	probe := build(nil)
	res, err := probe.Run()
	if err != nil {
		t.Fatal(err)
	}
	if probe.FailoverStats().Hedged == 0 {
		t.Fatal("probe run hedged nothing despite HedgePriority=1")
	}
	winner, retireAt := -1, sim.Time(0)
	for _, r := range res {
		if !r.Rejected && !r.Failed && (winner < 0 || r.Retire < retireAt) {
			winner, retireAt = r.Board, r.Retire
		}
	}
	if winner < 0 {
		t.Fatal("probe run completed nothing")
	}

	for _, offset := range []sim.Duration{-sim.Microsecond, 0, sim.Microsecond} {
		offset := offset
		t.Run(fmt.Sprintf("offset%+d", offset), func(t *testing.T) {
			c := build([]faults.BoardEvent{{
				Kind: faults.BoardCrash, Board: winner,
				At: retireAt.Add(offset), Recover: sim.Time(60 * sim.Second),
			}})
			res, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != subs {
				t.Fatalf("%d results for %d submissions", len(res), subs)
			}
			completed, rejected, failed := classify(t, c, res)
			if completed+rejected+failed != subs {
				t.Fatalf("conservation broken: %d + %d + %d != %d", completed, rejected, failed, subs)
			}
			ast := c.AdmissionStats()
			if ast.Admitted != subs {
				t.Fatalf("admitted %d of %d", ast.Admitted, subs)
			}
			// Exactly-once ticket release: every admitted submission's
			// terminal transition released its slot — no leak (Completed
			// short of Admitted) and no double release (Release is
			// guarded, so a double call would mask a lost slot elsewhere;
			// equality plus zero in-flight rules both out).
			if ast.Completed != ast.Admitted {
				t.Fatalf("tickets released %d times for %d admissions", ast.Completed, ast.Admitted)
			}
			if st := c.FailoverStats(); st.Deaths == 0 {
				t.Fatalf("board %d crash at %v never declared a death", winner, retireAt.Add(offset))
			}
		})
	}
}
