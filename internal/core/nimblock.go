// Package core implements the Nimblock scheduling algorithm — the paper's
// primary contribution (Section 4).
//
// At each scheduling opportunity the algorithm:
//
//  1. accumulates PREMA-style tokens and updates the candidate pool
//     (Section 4.1, Algorithm 1);
//  2. reallocates slots: one slot per candidate oldest-first, then up to
//     each candidate's goal number (from saturation-point analysis), then
//     leftover slots to applications that can still use them
//     (Section 4.2);
//  3. selects a task from the oldest candidate with allocation headroom
//     and a configurable task, and a free slot to host it (Section 4.3);
//     pipelining across batch items begins automatically because extra
//     slots admit downstream tasks while upstream ones still run;
//  4. if a task is ready but no slot is free, batch-preempts the
//     application that most exceeds its allocation, choosing its latest
//     task in topological order (Section 4.4, Algorithm 2); the
//     hypervisor honours the preemption at the next batch boundary so no
//     user-logic state is ever checkpointed.
//
// Options switch off preemption and/or pipelining for the paper's
// ablation study (Section 5.6).
package core

import (
	"nimblock/internal/fpga"
	"nimblock/internal/saturate"
	"nimblock/internal/sched"
)

// Options selects Nimblock features; both on is the full algorithm.
type Options struct {
	// Preemption enables batch-preemption of over-consuming applications.
	Preemption bool
	// Pipelining enables cross-batch pipelining of an application's tasks.
	Pipelining bool
}

// DefaultOptions enables the full algorithm.
func DefaultOptions() Options { return Options{Preemption: true, Pipelining: true} }

// satKey caches saturation analyses per application shape and per board
// size, so goal numbers recompute when faults shrink the usable board.
type satKey struct {
	name  string
	batch int
	slots int
}

// Scheduler is the Nimblock policy.
type Scheduler struct {
	opts  Options
	board fpga.Config
	pool  *sched.TokenPool
	cache map[satKey]saturate.Result
	cands []*sched.App // scratch, reused across Schedule calls
}

// New returns a Nimblock scheduler that will plan against boards shaped
// like the given configuration (the saturation analysis sweeps its slot
// count and reconfiguration latency).
func New(opts Options, board fpga.Config) *Scheduler {
	return &Scheduler{
		opts:  opts,
		board: board,
		pool:  sched.NewTokenPool(),
		cache: map[satKey]saturate.Result{},
	}
}

// Name implements sched.Scheduler, matching the ablation labels used in
// Figures 9-11 of the paper.
func (s *Scheduler) Name() string {
	switch {
	case s.opts.Preemption && s.opts.Pipelining:
		return "Nimblock"
	case !s.opts.Preemption && s.opts.Pipelining:
		return "NimblockNoPreempt"
	case s.opts.Preemption && !s.opts.Pipelining:
		return "NimblockNoPipe"
	default:
		return "NimblockNoPreemptNoPipe"
	}
}

// Pipelining implements sched.Scheduler.
func (s *Scheduler) Pipelining() bool { return s.opts.Pipelining }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w sched.World, why sched.Reason) {
	apps := w.Apps()
	s.pool.Accumulate(w.Now(), apps)
	s.cands = sched.CandidatesInto(s.cands, apps)
	s.reallocate(w, s.cands)
	s.selectAndLaunch(w, s.cands)
}

// analysis returns the cached saturation analysis for the application on
// a board with the given number of usable slots. The analysis is computed
// from HLS estimates only; on the real system it runs in parallel with
// synthesis, firmly off the user flow's critical path, so treating it as
// pre-computed here is faithful. Re-analysing at a reduced slot count
// when faults quarantine part of the board is cheap for the same reason.
func (s *Scheduler) analysis(a *sched.App, slots int) saturate.Result {
	key := satKey{name: a.Name, batch: a.Batch, slots: slots}
	if r, ok := s.cache[key]; ok {
		return r
	}
	board := s.board
	board.Slots = slots
	r, err := saturate.AnalyzeCached(a.Graph, a.Report, a.Batch, board, s.opts.Pipelining)
	if err != nil {
		// Conservative fallback: the universally best second slot.
		r = saturate.Result{Goal: 2, MaxUseful: a.Graph.NumTasks()}
	}
	if r.Goal < 1 {
		r.Goal = 1
	}
	if r.MaxUseful < r.Goal {
		r.MaxUseful = r.Goal
	}
	s.cache[key] = r
	return r
}

// reallocate recomputes SlotsAllocated for every pending application
// (Section 4.2). It runs on every scheduling opportunity, which subsumes
// the paper's "periodic intervals plus candidate-pool changes" triggers.
func (s *Scheduler) reallocate(w sched.World, cands []*sched.App) {
	for _, a := range w.Apps() {
		a.SlotsAllocated = 0
	}
	// Budget only the usable slots: a quarantined board degrades into a
	// smaller one and the goal numbers below are recomputed to match.
	usable := w.UsableSlots()
	remaining := usable
	if remaining == 0 {
		return
	}
	// Phase 1: one slot per candidate, oldest first, so every candidate
	// makes forward progress.
	for _, a := range cands {
		if remaining == 0 {
			return
		}
		a.SlotsAllocated = 1
		remaining--
	}
	// Phase 2: raise allocations to the goal number, oldest first.
	for _, a := range cands {
		if remaining == 0 {
			return
		}
		an := s.analysis(a, usable)
		a.Goal = an.Goal
		add := an.Goal - a.SlotsAllocated
		if add > remaining {
			add = remaining
		}
		if add > 0 {
			a.SlotsAllocated += add
			remaining -= add
		}
	}
	// Phase 3: hand leftover slots to applications that can still make
	// use of them, in age order, so older applications can pipeline
	// aggressively toward their deadlines.
	for _, a := range cands {
		if remaining == 0 {
			return
		}
		an := s.analysis(a, usable)
		add := an.MaxUseful - a.SlotsAllocated
		if add > remaining {
			add = remaining
		}
		if add > 0 {
			a.SlotsAllocated += add
			remaining -= add
		}
	}
}

// selectAndLaunch picks one task to configure (Section 4.3). Only one
// slot can be reconfigured at a time, so at most one reconfiguration is
// issued per opportunity, and only when the CAP is idle.
func (s *Scheduler) selectAndLaunch(w sched.World, cands []*sched.App) {
	if w.CAPBusy() {
		return
	}
	for _, a := range cands {
		if a.SlotsAllocated == 0 || a.SlotsUsed() >= a.SlotsAllocated {
			continue
		}
		tasks := a.ConfigurableTasks()
		if len(tasks) == 0 {
			continue
		}
		if free := w.FreeSlots(); len(free) > 0 {
			w.Reconfigure(free[0], a, tasks[0])
			return
		}
		// A task is ready but no slot is available: consider preemption.
		if s.opts.Preemption {
			s.preempt(w)
		}
		return
	}
}

// preempt implements Algorithm 2: select the application that most
// exceeds its slot allocation and batch-preempt its topologically latest
// running task. The paper returns without acting when the victim is
// mid-item and re-evaluates at the next step; our preemption request is
// honoured by the hypervisor at the batch boundary, which yields the same
// boundary-only semantics without re-polling.
func (s *Scheduler) preempt(w sched.World) {
	// One preemption in flight at a time.
	for slot := 0; slot < w.NumSlots(); slot++ {
		if w.PreemptRequested(slot) {
			return
		}
	}
	// An app occupying several slots is examined once per slot, but its
	// over-consumption is identical each time and the comparison is
	// strict, so the first slot decides — no dedup set needed.
	var victim *sched.App
	over := 0
	for slot := 0; slot < w.NumSlots(); slot++ {
		a, _, ok := w.SlotOccupant(slot)
		if !ok {
			continue
		}
		if c := a.OverConsumption(); c > over {
			over, victim = c, a
		}
	}
	if victim == nil {
		return // no over-consumer: nothing is preempted
	}
	// Latest task in topological order eliminates the chance of removing
	// a pipelined dependency of another running task.
	rank := victim.Graph.TopoRank()
	bestSlot, bestRank := -1, -1
	for slot := 0; slot < w.NumSlots(); slot++ {
		a, task, ok := w.SlotOccupant(slot)
		if !ok || a != victim || a.TaskState(task) != sched.TaskActive {
			continue
		}
		if rank[task] > bestRank {
			bestRank, bestSlot = rank[task], slot
		}
	}
	if bestSlot >= 0 {
		w.RequestPreempt(bestSlot)
	}
}
