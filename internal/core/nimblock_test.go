package core

import (
	"fmt"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/fpga"
	"nimblock/internal/hls"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// fakeWorld is a minimal sched.World for policy unit tests.
type fakeWorld struct {
	now       sim.Time
	slots     int
	occupants map[int]occ // slot -> occupant
	waiting   map[int]bool
	preempt   map[int]bool
	offline   map[int]bool
	capBusy   bool
	apps      []*sched.App

	reconfigs []string
	preempts  []int
}

type occ struct {
	app  *sched.App
	task int
}

func newFakeWorld(slots int) *fakeWorld {
	return &fakeWorld{
		slots:     slots,
		occupants: map[int]occ{},
		waiting:   map[int]bool{},
		preempt:   map[int]bool{},
		offline:   map[int]bool{},
	}
}

func (w *fakeWorld) Now() sim.Time         { return w.now }
func (w *fakeWorld) NumSlots() int         { return w.slots }
func (w *fakeWorld) UsableSlots() int      { return w.slots - len(w.offline) }
func (w *fakeWorld) SlotUsable(s int) bool { return !w.offline[s] }
func (w *fakeWorld) CAPBusy() bool         { return w.capBusy }
func (w *fakeWorld) Apps() []*sched.App    { return w.apps }

func (w *fakeWorld) FreeSlots() []int {
	var free []int
	for s := 0; s < w.slots; s++ {
		if _, ok := w.occupants[s]; !ok {
			free = append(free, s)
		}
	}
	return free
}

func (w *fakeWorld) SlotOccupant(slot int) (*sched.App, int, bool) {
	o, ok := w.occupants[slot]
	return o.app, o.task, ok
}

func (w *fakeWorld) SlotWaiting(slot int) bool   { return w.waiting[slot] }
func (w *fakeWorld) PreemptRequested(s int) bool { return w.preempt[s] }

func (w *fakeWorld) TenantService(string) sim.Duration { return 0 }
func (w *fakeWorld) RequestPreempt(slot int) error {
	w.preempt[slot] = true
	w.preempts = append(w.preempts, slot)
	return nil
}

func (w *fakeWorld) Reconfigure(slot int, a *sched.App, task int) error {
	if _, ok := w.occupants[slot]; ok {
		return fmt.Errorf("slot %d occupied", slot)
	}
	if err := a.MarkConfiguring(task, slot); err != nil {
		return err
	}
	w.occupants[slot] = occ{a, task}
	w.reconfigs = append(w.reconfigs, fmt.Sprintf("%s#%d/t%d@s%d", a.Name, a.ID, task, slot))
	return nil
}

// occupy places an app's task in a slot as active.
func (w *fakeWorld) occupy(t *testing.T, slot int, a *sched.App, task int) {
	t.Helper()
	if err := a.MarkConfiguring(task, slot); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkActive(task); err != nil {
		t.Fatal(err)
	}
	w.occupants[slot] = occ{a, task}
}

func mkApp(t *testing.T, id int64, name string, batch, prio int, arrival sim.Time) *sched.App {
	t.Helper()
	g := apps.MustGraph(name)
	a, err := sched.NewApp(id, g, hls.Analyze(g), batch, prio, arrival)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func board() fpga.Config { return fpga.DefaultConfig() }

func TestNames(t *testing.T) {
	cases := map[string]Options{
		"Nimblock":                {Preemption: true, Pipelining: true},
		"NimblockNoPreempt":       {Pipelining: true},
		"NimblockNoPipe":          {Preemption: true},
		"NimblockNoPreemptNoPipe": {},
	}
	for want, opts := range cases {
		s := New(opts, board())
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
		if s.Pipelining() != opts.Pipelining {
			t.Errorf("%s: Pipelining() = %v", want, s.Pipelining())
		}
	}
	if !DefaultOptions().Preemption || !DefaultOptions().Pipelining {
		t.Fatal("DefaultOptions must enable the full algorithm")
	}
}

func TestReallocateOneSlotEachOldestFirst(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(3)
	// Five candidates, more than slots: only the three oldest get a slot.
	for i := 0; i < 5; i++ {
		a := mkApp(t, int64(i+1), apps.LeNet, 2, 3, sim.Time(i))
		a.Candidate = true
		a.CandidateSince = sim.Time(i)
		w.apps = append(w.apps, a)
	}
	s.reallocate(w, sched.Candidates(w.apps))
	for i, a := range w.apps {
		want := 0
		if i < 3 {
			want = 1
		}
		if a.SlotsAllocated != want {
			t.Errorf("app %d allocated %d, want %d", i, a.SlotsAllocated, want)
		}
	}
}

func TestReallocateGoalNumbers(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(10)
	// Two candidates with plenty of slots: both reach their goal, and
	// leftover goes to the older one up to its max useful count.
	a := mkApp(t, 1, apps.OpticalFlow, 10, 3, 0) // 9-task chain, pipelines well
	b := mkApp(t, 2, apps.LeNet, 10, 3, 1)
	for _, x := range []*sched.App{a, b} {
		x.Candidate = true
		x.CandidateSince = x.Arrival
		w.apps = append(w.apps, x)
	}
	s.reallocate(w, sched.Candidates(w.apps))
	if a.SlotsAllocated < a.Goal || b.SlotsAllocated < b.Goal {
		t.Fatalf("allocations below goal: a=%d/%d b=%d/%d", a.SlotsAllocated, a.Goal, b.SlotsAllocated, b.Goal)
	}
	if a.Goal < 2 {
		t.Fatalf("OpticalFlow goal = %d, want >= 2", a.Goal)
	}
	total := a.SlotsAllocated + b.SlotsAllocated
	if total > 10 {
		t.Fatalf("over-allocated: %d slots", total)
	}
}

func TestReallocateNonCandidatesZeroed(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(4)
	a := mkApp(t, 1, apps.LeNet, 2, 9, 0)
	a.Candidate = true
	b := mkApp(t, 2, apps.LeNet, 2, 1, 0)
	b.Candidate = false
	b.SlotsAllocated = 3 // stale
	w.apps = []*sched.App{a, b}
	s.reallocate(w, sched.Candidates(w.apps))
	if b.SlotsAllocated != 0 {
		t.Fatalf("non-candidate kept allocation %d", b.SlotsAllocated)
	}
}

// Allocation invariants under arbitrary candidate mixes.
func TestReallocateInvariants(t *testing.T) {
	names := apps.Names()
	for seed := 0; seed < 25; seed++ {
		s := New(DefaultOptions(), board())
		w := newFakeWorld(10)
		n := seed%7 + 1
		for i := 0; i < n; i++ {
			a := mkApp(t, int64(i+1), names[(seed+i)%len(names)], (seed+i)%workloadMax+1, 3, sim.Time(i))
			a.Candidate = true
			a.CandidateSince = sim.Time(i)
			w.apps = append(w.apps, a)
		}
		cands := sched.Candidates(w.apps)
		s.reallocate(w, cands)
		total := 0
		for _, a := range w.apps {
			total += a.SlotsAllocated
		}
		if total > 10 {
			t.Fatalf("seed %d: allocated %d > 10 slots", seed, total)
		}
		// Every candidate gets at least one slot when candidates <= slots.
		if len(cands) <= 10 {
			for _, a := range cands {
				if a.SlotsAllocated < 1 {
					t.Fatalf("seed %d: candidate %d starved", seed, a.ID)
				}
			}
		}
	}
}

const workloadMax = 10

func TestSelectRespectsCAP(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(4)
	a := mkApp(t, 1, apps.LeNet, 2, 9, 0)
	w.apps = []*sched.App{a}
	w.capBusy = true
	s.Schedule(w, sched.ReasonTick)
	if len(w.reconfigs) != 0 {
		t.Fatalf("reconfigured %v while CAP busy", w.reconfigs)
	}
	w.capBusy = false
	s.Schedule(w, sched.ReasonTick)
	if len(w.reconfigs) != 1 {
		t.Fatalf("reconfigs = %v, want exactly one per opportunity", w.reconfigs)
	}
}

func TestSelectOldestCandidateFirst(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(4)
	young := mkApp(t, 1, apps.LeNet, 2, 9, 10)
	old := mkApp(t, 2, apps.LeNet, 2, 9, 0)
	w.apps = []*sched.App{old, young}
	s.Schedule(w, sched.ReasonTick)
	if len(w.reconfigs) != 1 || w.reconfigs[0] != "LeNet#2/t0@s0" {
		t.Fatalf("reconfigs = %v, want oldest app first", w.reconfigs)
	}
}

func TestSelectHonoursAllocation(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(2)
	a := mkApp(t, 1, apps.OpticalFlow, 10, 9, 0)
	b := mkApp(t, 2, apps.OpticalFlow, 10, 9, 1)
	w.apps = []*sched.App{a, b}
	// Run several scheduling rounds, activating configured tasks so the
	// next round can continue.
	for round := 0; round < 6; round++ {
		s.Schedule(w, sched.ReasonTick)
		for slot, o := range w.occupants {
			if o.app.TaskState(o.task) == sched.TaskConfiguring {
				o.app.MarkActive(o.task)
				_ = slot
			}
		}
	}
	if a.SlotsUsed() > a.SlotsAllocated || b.SlotsUsed() > b.SlotsAllocated {
		t.Fatalf("allocation exceeded: a=%d/%d b=%d/%d",
			a.SlotsUsed(), a.SlotsAllocated, b.SlotsUsed(), b.SlotsAllocated)
	}
}

func TestPreemptPicksMaxOverConsumer(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(4)
	// hog uses 3 slots, allocated 1 -> over-consumption 2.
	hog := mkApp(t, 1, apps.OpticalFlow, 10, 1, 0)
	w.occupy(t, 0, hog, 0)
	w.occupy(t, 1, hog, 1)
	w.occupy(t, 2, hog, 2)
	hog.SlotsAllocated = 1
	// mild uses 1 slot, allocated 0 -> over-consumption 1.
	mild := mkApp(t, 2, apps.LeNet, 5, 1, 0)
	w.occupy(t, 3, mild, 0)
	mild.SlotsAllocated = 0
	w.apps = []*sched.App{hog, mild}

	s.preempt(w)
	if len(w.preempts) != 1 {
		t.Fatalf("preempts = %v, want exactly one", w.preempts)
	}
	// Victim must be the hog's topologically latest running task (task 2
	// in slot 2), never a pipelined dependency.
	if w.preempts[0] != 2 {
		t.Fatalf("preempted slot %d, want 2 (latest topo task of max over-consumer)", w.preempts[0])
	}
}

func TestPreemptNoOverConsumer(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(2)
	a := mkApp(t, 1, apps.LeNet, 2, 3, 0)
	w.occupy(t, 0, a, 0)
	a.SlotsAllocated = 2
	w.apps = []*sched.App{a}
	s.preempt(w)
	if len(w.preempts) != 0 {
		t.Fatal("preempted without an over-consumer")
	}
}

func TestPreemptOnePendingAtATime(t *testing.T) {
	s := New(DefaultOptions(), board())
	w := newFakeWorld(3)
	hog := mkApp(t, 1, apps.OpticalFlow, 10, 1, 0)
	w.occupy(t, 0, hog, 0)
	w.occupy(t, 1, hog, 1)
	hog.SlotsAllocated = 1
	w.apps = []*sched.App{hog}
	s.preempt(w)
	s.preempt(w)
	if len(w.preempts) != 1 {
		t.Fatalf("preempts = %v, want one while a request is pending", w.preempts)
	}
}

func TestNoPreemptOptionNeverPreempts(t *testing.T) {
	s := New(Options{Pipelining: true}, board())
	w := newFakeWorld(2)
	hog := mkApp(t, 1, apps.OpticalFlow, 10, 1, 0)
	w.occupy(t, 0, hog, 0)
	w.occupy(t, 1, hog, 1)
	hog.SlotsAllocated = 0
	hog.Candidate = true
	newcomer := mkApp(t, 2, apps.LeNet, 2, 9, 1)
	newcomer.Candidate = true
	w.apps = []*sched.App{hog, newcomer}
	s.Schedule(w, sched.ReasonTick)
	if len(w.preempts) != 0 {
		t.Fatalf("NoPreempt variant preempted: %v", w.preempts)
	}
}

func TestAnalysisFallbackSane(t *testing.T) {
	s := New(DefaultOptions(), board())
	a := mkApp(t, 1, apps.AlexNet, 5, 3, 0)
	slots := board().Slots
	an := s.analysis(a, slots)
	if an.Goal < 1 || an.MaxUseful < an.Goal {
		t.Fatalf("analysis = %+v", an)
	}
	// Cached result is stable.
	an2 := s.analysis(a, slots)
	if an.Goal != an2.Goal || an.MaxUseful != an2.MaxUseful {
		t.Fatal("analysis cache unstable")
	}
	// A degraded board caps the useful allocation at its usable size.
	if deg := s.analysis(a, 2); deg.Goal > 2 || deg.MaxUseful > 2 {
		t.Fatalf("degraded analysis = %+v, want goal and max within 2 slots", deg)
	}
}
