package obs_test

import (
	"sync"
	"testing"
	"time"

	"nimblock/internal/obs"
	"nimblock/internal/trace"
)

// Below capacity, the async sink loses nothing: every event from every
// producer goroutine arrives downstream exactly once. Run with -race.
func TestAsyncZeroLossBelowCapacity(t *testing.T) {
	const producers, perProducer = 8, 500
	inner := &obs.Counting{}
	a := obs.NewAsync(inner, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				a.Observe(trace.Event{Kind: trace.KindArrival, AppID: int64(p), Item: i})
			}
		}(p)
	}
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := inner.Total(); got != producers*perProducer {
		t.Fatalf("delivered %d events, want %d", got, producers*perProducer)
	}
	if d := a.Dropped(); d != 0 {
		t.Fatalf("%d drops below capacity", d)
	}
}

// blockingSink parks the drain goroutine until released, forcing the
// buffer to fill.
type blockingSink struct {
	release chan struct{}
	seen    int
	mu      sync.Mutex
}

func (b *blockingSink) Observe(trace.Event) {
	<-b.release
	b.mu.Lock()
	b.seen++
	b.mu.Unlock()
}

// Above capacity, the drop counter is exact: delivered + dropped equals
// events observed.
func TestAsyncExactDropAccounting(t *testing.T) {
	const capacity, sent = 16, 2000
	inner := &blockingSink{release: make(chan struct{})}
	a := obs.NewAsync(inner, capacity)

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < sent/4; i++ {
				a.Observe(trace.Event{Kind: trace.KindArrival, AppID: int64(p), Item: i})
			}
		}(p)
	}
	wg.Wait()
	close(inner.release) // let the drain finish
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	inner.mu.Lock()
	delivered := inner.seen
	inner.mu.Unlock()
	dropped := int(a.Dropped())
	if delivered+dropped != sent {
		t.Fatalf("delivered %d + dropped %d != sent %d", delivered, dropped, sent)
	}
	if dropped == 0 {
		t.Fatalf("expected drops with capacity %d and a parked drain", capacity)
	}
}

// Observing after Close neither panics nor deadlocks — it drops.
func TestAsyncObserveAfterClose(t *testing.T) {
	inner := &obs.Counting{}
	a := obs.NewAsync(inner, 4)
	a.Observe(trace.Event{Kind: trace.KindArrival})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	before := a.Dropped()
	a.Observe(trace.Event{Kind: trace.KindRetire})
	if a.Dropped() != before+1 {
		t.Fatal("post-close observation not counted as a drop")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// Concurrent Observe and Close must not race on the channel. Run with
// -race; the assertion is simply that we get here.
func TestAsyncConcurrentClose(t *testing.T) {
	for i := 0; i < 50; i++ {
		a := obs.NewAsync(&obs.Counting{}, 8)
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 100; j++ {
					a.Observe(trace.Event{Kind: trace.KindArrival, Item: j})
				}
			}()
		}
		go func() {
			time.Sleep(time.Microsecond * time.Duration(i))
			a.Close()
		}()
		wg.Wait()
		a.Close()
	}
}
