package obs_test

import (
	"math"
	"testing"

	"nimblock/internal/obs"
)

// RecordEnergy accumulates joules across runs sharing one registry;
// RecordFairness overwrites with the latest index.
func TestEnergyAndFairnessInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewMetrics(reg, 10)
	m.RecordEnergy(100, 40)
	m.RecordEnergy(25, 10)
	m.RecordFairness(0.5)
	m.RecordFairness(0.97)
	if v := reg.Gauge("nimblock_energy_static_joules", "").Value(); math.Abs(v-125) > 1e-9 {
		t.Fatalf("static joules %v, want 125", v)
	}
	if v := reg.Gauge("nimblock_energy_active_joules", "").Value(); math.Abs(v-50) > 1e-9 {
		t.Fatalf("active joules %v, want 50", v)
	}
	if v := reg.Gauge("nimblock_fairness_jain_index", "").Value(); v != 0.97 {
		t.Fatalf("fairness gauge %v, want latest 0.97", v)
	}
	// A second sink over the same registry shares the instruments.
	m2 := obs.NewMetrics(reg, 10)
	m2.RecordEnergy(75, 50)
	if v := reg.Gauge("nimblock_energy_static_joules", "").Value(); math.Abs(v-200) > 1e-9 {
		t.Fatalf("shared static joules %v, want 200", v)
	}
}
