package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/faults"
	"nimblock/internal/hv"
	"nimblock/internal/obs"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
	"nimblock/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden metamorphic snapshots")

// scenarioRun is one deterministic simulation with live observability
// attached alongside the post-hoc trace.
type scenarioRun struct {
	results []hv.Result
	log     *trace.Log
	metrics *obs.Metrics
	spans   *obs.SpanBuilder
	slots   int
}

func runScenario(t *testing.T, name string) scenarioRun {
	t.Helper()
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.EnableTrace = true
	spec := workload.Spec{Scenario: workload.Standard, Events: 8}
	seed := int64(7)
	switch name {
	case "standard":
	case "stress":
		spec = workload.Spec{Scenario: workload.Stress, Events: 10}
		seed = 3
	case "chaos":
		spec = workload.Spec{Scenario: workload.Stress, Events: 8}
		seed = 11
		cfg.Board.FaultRate = 0.15
		cfg.Board.FaultSeed = 3
		cfg.Board.MaxRetries = 50
	default:
		t.Fatalf("unknown scenario %q", name)
	}
	reg := obs.NewRegistry()
	m := obs.NewMetrics(reg, cfg.Board.Slots)
	spans := obs.NewSpanBuilder()
	cfg.Observer = obs.Tee(m, spans)

	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range workload.Generate(spec, seed) {
		if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	return scenarioRun{results: res, log: h.Trace(), metrics: m, spans: spans, slots: cfg.Board.Slots}
}

func scenarios() []string { return []string{"standard", "stress", "chaos"} }

// Metamorphic relation 1: folding the events online (as the run emits
// them) and post-hoc (replaying the recorded log) must produce exactly
// the same metrics registry and the same spans — compared as bytes.
func TestOnlineEqualsPostHoc(t *testing.T) {
	for _, name := range scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := runScenario(t, name)

			replayReg := obs.NewRegistry()
			replayM := obs.NewMetrics(replayReg, run.slots)
			for _, e := range run.log.Events() {
				replayM.Observe(e)
			}
			online, err := json.Marshal(run.metrics.Registry())
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := json.Marshal(replayReg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(online, replayed) {
				t.Fatalf("online metrics diverge from post-hoc replay:\nonline  %s\nreplay  %s", online, replayed)
			}

			liveSpans, err := json.Marshal(run.spans)
			if err != nil {
				t.Fatal(err)
			}
			replaySpans, err := json.Marshal(obs.NewSpanBuilder().Replay(run.log))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(liveSpans, replaySpans) {
				t.Fatalf("online spans diverge from post-hoc replay:\nonline  %s\nreplay  %s", liveSpans, replaySpans)
			}
		})
	}
}

// Metamorphic relation 2: the online instruments agree with the
// independent post-hoc analyzers — trace.Summarize and the hypervisor's
// own accounting — on every derivable quantity.
func TestOnlineMatchesSummarize(t *testing.T) {
	for _, name := range scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := runScenario(t, name)
			reg := run.metrics.Registry()
			snap := reg.Snapshot()

			if got := snap.Counters["nimblock_apps_completed_total"]; got != int64(len(run.results)) {
				t.Fatalf("completed counter %d, want %d", got, len(run.results))
			}
			if got := snap.Gauges["nimblock_pending_apps"]; got != 0 {
				t.Fatalf("pending gauge %v after full drain", got)
			}

			var wantResponse, wantWait float64
			for _, r := range run.results {
				wantResponse += r.Response.Seconds()
				wantWait += r.FirstLaunch.Sub(r.Arrival).Seconds()
			}
			resp := snap.Histograms["nimblock_response_seconds"]
			if resp.Count != int64(len(run.results)) {
				t.Fatalf("response count %d, want %d", resp.Count, len(run.results))
			}
			if math.Abs(resp.Sum-wantResponse) > 1e-9*math.Max(1, wantResponse) {
				t.Fatalf("response sum %v, accounting %v", resp.Sum, wantResponse)
			}
			wait := snap.Histograms["nimblock_wait_seconds"]
			if math.Abs(wait.Sum-wantWait) > 1e-9*math.Max(1, wantWait) {
				t.Fatalf("wait sum %v, accounting %v", wait.Sum, wantWait)
			}

			sums := run.log.Summarize()
			byID := map[int64]trace.AppSummary{}
			for _, s := range sums {
				byID[s.AppID] = s
			}
			var events int64
			for _, c := range snap.Counters {
				events += c
			}
			events -= snap.Counters["nimblock_apps_completed_total"]
			if events != int64(run.log.Len()) {
				t.Fatalf("per-kind counters sum to %d events, trace has %d", events, run.log.Len())
			}

			for _, sp := range run.spans.Spans() {
				s, ok := byID[sp.AppID]
				if !ok {
					t.Fatalf("span for unknown app %d", sp.AppID)
				}
				if sp.Response() != s.Response() {
					t.Fatalf("app %d: span response %v, summary %v", sp.AppID, sp.Response(), s.Response())
				}
				if sp.Items != s.Items {
					t.Fatalf("app %d: span items %d, summary %d", sp.AppID, sp.Items, s.Items)
				}
			}
		})
	}
}

// Golden snapshots: the registry's JSON for each scenario is pinned.
// Deterministic simulation + deterministic encoding means any drift in
// either the scheduler or the metrics pipeline shows up as a byte diff.
// Refresh intentionally with -update.
func TestMetricsGoldenSnapshots(t *testing.T) {
	for _, name := range scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := runScenario(t, name)
			got, err := json.MarshalIndent(run.metrics.Registry().Snapshot(), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "metrics_"+name+".golden.json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("metrics snapshot drifted from %s:\n%s", path, got)
			}
		})
	}
}

// Checkpoint instruments agree with the hypervisor's recovery
// accounting: resumes, saved work, and transfer overhead fold online
// into the registry exactly as RecoveryStats reports them.
func TestCheckpointMetricsMatchRecovery(t *testing.T) {
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	reg := obs.NewRegistry()
	m := obs.NewMetrics(reg, cfg.Board.Slots)
	cfg.Observer = m
	cfg.Board.NewInjector = faults.MustParsePlan("seed 7\nslow prob=0.6 factor=4 until=120s").MustFactory()
	cfg.WatchdogFactor = 2
	cfg.WatchdogGrace = 20 * sim.Millisecond
	cfg.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 50 * sim.Millisecond}
	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range workload.Generate(workload.Spec{Scenario: workload.Stress, Events: 6}, 5) {
		if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Run(); err != nil {
		t.Fatal(err)
	}
	rec := h.Recovery()
	if rec.ResumedItems == 0 {
		t.Fatal("scenario produced no resumes; the test checks nothing")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["nimblock_items_resumed_total"]; got != int64(rec.ResumedItems) {
		t.Fatalf("resumed counter %d, recovery %d", got, rec.ResumedItems)
	}
	if got, want := snap.Gauges["nimblock_saved_work_seconds"], rec.SavedWork.Seconds(); math.Abs(got-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("saved-work gauge %v, recovery %v", got, want)
	}
	if got, want := snap.Gauges["nimblock_checkpoint_overhead_seconds"], rec.CheckpointOverhead.Seconds(); math.Abs(got-want) > 1e-9*math.Max(1, want) {
		t.Fatalf("overhead gauge %v, recovery %v", got, want)
	}
	xfer := snap.Histograms["nimblock_state_transfer_seconds"]
	if xfer.Count != int64(rec.CheckpointSaves+rec.ResumedItems) {
		t.Fatalf("transfer count %d, want %d saves + %d restores", xfer.Count, rec.CheckpointSaves, rec.ResumedItems)
	}
}

// The effective-slots gauge tracks permanent slot losses live.
func TestEffectiveSlotsGauge(t *testing.T) {
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	reg := obs.NewRegistry()
	m := obs.NewMetrics(reg, cfg.Board.Slots)
	cfg.Observer = m
	cfg.Board.NewInjector = faults.Plan{
		Seed:   1,
		Faults: []faults.Fault{{Kind: faults.PermanentSlot, Slot: 1, From: sim.Time(200 * sim.Millisecond)}},
	}.MustFactory()
	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range workload.Generate(workload.Spec{Scenario: workload.Stress, Events: 6}, 5) {
		if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Run(); err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.Board.Slots - 1)
	if got := reg.Snapshot().Gauges["nimblock_effective_slots"]; got != want {
		t.Fatalf("effective slots %v, want %v", got, want)
	}
	if busy := reg.Snapshot().Gauges["nimblock_cap_busy_fraction"]; busy <= 0 || busy > 1 {
		t.Fatalf("CAP busy fraction %v outside (0,1]", busy)
	}
}
