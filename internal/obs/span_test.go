package obs_test

import (
	"testing"

	"nimblock/internal/obs"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

func at(ms sim.Duration) sim.Time { return sim.Time(ms * sim.Millisecond) }

// A hand-written lifetime with one preemption folds into the expected
// milestones and segment timeline.
func TestSpanBuilderFolding(t *testing.T) {
	b := obs.NewSpanBuilder()
	events := []trace.Event{
		{At: at(0), Kind: trace.KindArrival, App: "a", AppID: 1},
		{At: at(10), Kind: trace.KindReconfigStart, App: "a", AppID: 1, Task: 0, Slot: 2},
		{At: at(90), Kind: trace.KindReconfigDone, App: "a", AppID: 1, Task: 0, Slot: 2},
		{At: at(91), Kind: trace.KindItemStart, App: "a", AppID: 1, Task: 0, Slot: 2, Item: 0},
		{At: at(120), Kind: trace.KindItemDone, App: "a", AppID: 1, Task: 0, Slot: 2, Item: 0},
		{At: at(121), Kind: trace.KindPreemptRequest, App: "a", AppID: 1, Task: 0, Slot: 2},
		{At: at(130), Kind: trace.KindPreempt, App: "a", AppID: 1, Task: 0, Slot: 2},
		{At: at(400), Kind: trace.KindReconfigStart, App: "a", AppID: 1, Task: 0, Slot: 0},
		{At: at(480), Kind: trace.KindReconfigDone, App: "a", AppID: 1, Task: 0, Slot: 0},
		{At: at(481), Kind: trace.KindItemStart, App: "a", AppID: 1, Task: 0, Slot: 0, Item: 1},
		{At: at(510), Kind: trace.KindItemDone, App: "a", AppID: 1, Task: 0, Slot: 0, Item: 1},
		{At: at(510), Kind: trace.KindTaskDone, App: "a", AppID: 1, Task: 0, Slot: 0},
		{At: at(511), Kind: trace.KindRetire, App: "a", AppID: 1},
	}
	for _, e := range events {
		b.Observe(e)
	}
	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Submit != at(0) || s.FirstConfig != at(10) || s.FirstLaunch != at(91) || s.Complete != at(511) {
		t.Fatalf("milestones wrong: %+v", s)
	}
	if s.Response() != sim.Duration(at(511)) || s.Wait() != sim.Duration(at(91)) {
		t.Fatalf("response %v wait %v", s.Response(), s.Wait())
	}
	if s.Preemptions != 1 || s.Items != 2 {
		t.Fatalf("preemptions %d items %d", s.Preemptions, s.Items)
	}
	var kinds []obs.SegmentKind
	for _, seg := range s.Segments {
		kinds = append(kinds, seg.Kind)
	}
	want := []obs.SegmentKind{
		obs.SegReconfig, obs.SegCompute, obs.SegPreemptWait, obs.SegPreempted,
		obs.SegReconfig, obs.SegCompute,
	}
	if len(kinds) != len(want) {
		t.Fatalf("segments %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("segment %d is %s, want %s (%v)", i, kinds[i], want[i], kinds)
		}
	}
	for _, seg := range s.Segments {
		if seg.To < seg.From {
			t.Fatalf("segment %+v runs backwards", seg)
		}
	}
}

// Spans are meaningful mid-run: milestones not reached yet stay -1.
func TestSpanBuilderPartial(t *testing.T) {
	b := obs.NewSpanBuilder()
	b.Observe(trace.Event{At: at(5), Kind: trace.KindArrival, App: "p", AppID: 9})
	s := b.Spans()[0]
	if s.Submit != at(5) || s.FirstConfig != -1 || s.FirstLaunch != -1 || s.Complete != -1 {
		t.Fatalf("partial span %+v", s)
	}
	if s.Response() != -1 || s.Wait() != -1 {
		t.Fatalf("partial span derived %v %v, want -1", s.Response(), s.Wait())
	}
}
