package obs

import (
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramBoundsCopy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 5})
	b := h.Bounds()
	if len(b) != 3 || b[0] != 1 || b[2] != 5 {
		t.Fatalf("bounds %v", b)
	}
	b[0] = 99
	if h.Bounds()[0] != 1 {
		t.Fatal("Bounds aliases internal state")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 5})
	if got := h.Quantile(0.5); got != -1 {
		t.Fatalf("empty histogram quantile %v, want -1", got)
	}
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(10) // lands in the +Inf bucket
	// Out-of-range q clamps instead of panicking.
	if got := h.Quantile(-3); got < 0 {
		t.Fatalf("q<0 gave %v", got)
	}
	// q=1 targets the +Inf bucket, reported as the largest finite bound.
	if got := h.Quantile(1); got != 5 {
		t.Fatalf("q=1 gave %v, want 5", got)
	}
	if got := h.Quantile(2); got != 5 {
		t.Fatalf("q>1 gave %v, want 5", got)
	}
}

func TestFmtFloat(t *testing.T) {
	if got := fmtFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("+Inf rendered %q", got)
	}
	if got := fmtFloat(0.25); got != "0.25" {
		t.Fatalf("0.25 rendered %q", got)
	}
}

func TestMustBeFreeAllTypes(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("c", "")
	r.Gauge("g", "")
	r.Histogram("h", "", nil)
	mustPanic("counter name reused as gauge", func() { r.Gauge("c", "") })
	mustPanic("gauge name reused as histogram", func() { r.Histogram("g", "", nil) })
	mustPanic("histogram name reused as counter", func() { r.Counter("h", "") })
	// Same-type lookups return the existing instrument without panicking.
	if r.Counter("c", "") == nil || r.Gauge("g", "") == nil || r.Histogram("h", "", nil) == nil {
		t.Fatal("same-type lookup failed")
	}
}

// failAfter errors on the n-th write, exercising WritePrometheus's error
// propagation at each stage of the rendering.
type failAfter struct {
	n   int
	err error
}

func (w *failAfter) Write(p []byte) (int, error) {
	w.n--
	if w.n < 0 {
		return 0, w.err
	}
	return len(p), nil
}

func TestWritePrometheusPropagatesWriteErrors(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "count help").Add(1)
	r.Gauge("g", "gauge help").Set(2)
	h := r.Histogram("h", "hist help", []float64{1})
	h.Observe(0.5)
	// Count the writes of a full render, then fail at every position.
	counter := &failAfter{n: 1 << 30}
	if err := r.WritePrometheus(counter); err != nil {
		t.Fatal(err)
	}
	writes := (1 << 30) - counter.n
	boom := errors.New("pipe burst")
	for i := 0; i < writes; i++ {
		if err := r.WritePrometheus(&failAfter{n: i, err: boom}); !errors.Is(err, boom) {
			t.Fatalf("write failure at %d not propagated: %v", i, err)
		}
	}
}

func TestHandlerFormatQuery(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(7)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"c": 7`) {
		t.Fatalf("body %q", rec.Body.String())
	}
}
