package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"nimblock/internal/trace"
)

// JSONL streams events to a writer as JSON Lines: one JSON object per
// event, newline-terminated, in the same interchange vocabulary as
// trace.Log.MarshalJSON. Unlike the post-hoc export, a JSONL stream is
// readable while the run is still in progress (tail -f, jq, or a replay
// into trace.ParseJSON after wrapping in brackets).
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // non-nil when the underlying writer should be closed
	err error
}

// NewJSONL returns a sink writing one JSON object per event to w. The
// stream is buffered; call Close (or Flush) to push it out. If w is also
// an io.Closer, Close closes it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Observe implements Sink. The first write error sticks and suppresses
// further output; retrieve it with Err or Close.
func (j *JSONL) Observe(e trace.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	line, err := json.Marshal(trace.EventJSON(e))
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(line); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Flush pushes buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Err reports the first error encountered, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes
// it. It returns the first error encountered over the sink's lifetime.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ferr := j.w.Flush(); j.err == nil {
		j.err = ferr
	}
	if j.c != nil {
		if cerr := j.c.Close(); j.err == nil {
			j.err = cerr
		}
		j.c = nil
	}
	return j.err
}
