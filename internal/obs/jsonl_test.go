package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"nimblock/internal/trace"
)

// errWriter fails every write; errCloser also fails Close.
type errWriter struct{ err error }

func (w errWriter) Write([]byte) (int, error) { return 0, w.err }

type errCloser struct {
	bytes.Buffer
	closeErr error
	closed   bool
}

func (c *errCloser) Close() error {
	c.closed = true
	return c.closeErr
}

func TestJSONLFlushAndErr(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Observe(trace.Event{Kind: trace.KindArrival, AppID: 1})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("line escaped the buffer before Flush")
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"arrival"`) {
		t.Fatalf("flushed %q", buf.String())
	}
	// A plain writer is not closed; Close only flushes.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLStickyWriteError(t *testing.T) {
	boom := errors.New("disk full")
	// The bufio layer defers the failure until the buffer spills or is
	// flushed; after that every entry point reports the first error.
	j := NewJSONL(errWriter{boom})
	j.Observe(trace.Event{Kind: trace.KindArrival, AppID: 1})
	if err := j.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush error %v, want %v", err, boom)
	}
	if err := j.Err(); !errors.Is(err, boom) {
		t.Fatalf("sticky error %v, want %v", err, boom)
	}
	j.Observe(trace.Event{Kind: trace.KindRetire, AppID: 1}) // suppressed
	if err := j.Flush(); !errors.Is(err, boom) {
		t.Fatalf("error not sticky across Flush: %v", err)
	}
	if err := j.Close(); !errors.Is(err, boom) {
		t.Fatalf("close error %v, want %v", err, boom)
	}
}

func TestJSONLClosesCloser(t *testing.T) {
	c := &errCloser{}
	j := NewJSONL(c)
	j.Observe(trace.Event{Kind: trace.KindArrival, AppID: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !c.closed {
		t.Fatal("underlying closer not closed")
	}
	if !strings.Contains(c.String(), `"arrival"`) {
		t.Fatalf("close did not flush: %q", c.String())
	}

	c = &errCloser{closeErr: errors.New("already gone")}
	j = NewJSONL(c)
	if err := j.Close(); err == nil {
		t.Fatal("close error swallowed")
	}
}

func TestAsyncCapacityClamp(t *testing.T) {
	var got []trace.Event
	a := NewAsync(Func(func(e trace.Event) { got = append(got, e) }), 0)
	a.Observe(trace.Event{Kind: trace.KindArrival, AppID: 1})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("clamped-capacity sink delivered %d events, want 1", len(got))
	}
}
