package obs

import (
	"encoding/json"
	"sort"
	"sync"

	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// SegmentKind classifies one span segment.
type SegmentKind string

// Segment kinds. Interval segments (From < To) cover reconfiguration,
// compute, and the window between a preemption request and the batch
// boundary that honours it; instant segments (From == To) mark recovery
// activity.
const (
	SegReconfig    SegmentKind = "reconfig"
	SegCompute     SegmentKind = "compute"
	SegPreemptWait SegmentKind = "preempt-wait"
	SegPreempted   SegmentKind = "preempted"
	SegCheckpoint  SegmentKind = "checkpoint"
	SegFault       SegmentKind = "fault"
	SegRetry       SegmentKind = "retry"
	SegWatchdog    SegmentKind = "watchdog"
)

// Segment is one interval (or instant) of an application's life.
type Segment struct {
	Kind SegmentKind `json:"kind"`
	From sim.Time    `json:"from_us"`
	To   sim.Time    `json:"to_us"`
	Task int         `json:"task"`
	Slot int         `json:"slot"`
	Item int         `json:"item"`
}

// AppSpan is the folded lifetime of one application: the four milestones
// of the paper's response-time breakdown (submit, first configuration,
// first launch, completion) plus every execution and recovery segment in
// between. Milestones that have not happened yet are -1, so spans are
// meaningful mid-run.
type AppSpan struct {
	App         string    `json:"app"`
	AppID       int64     `json:"app_id"`
	Submit      sim.Time  `json:"submit_us"`
	FirstConfig sim.Time  `json:"first_config_us"`
	FirstLaunch sim.Time  `json:"first_launch_us"`
	Complete    sim.Time  `json:"complete_us"`
	Preemptions int       `json:"preemptions"`
	Items       int       `json:"items"`
	Segments    []Segment `json:"segments"`
}

// Response is completion minus submission, or -1 while incomplete.
func (s AppSpan) Response() sim.Duration {
	if s.Complete < 0 || s.Submit < 0 {
		return -1
	}
	return s.Complete.Sub(s.Submit)
}

// Wait is first launch minus submission, or -1 before the first item.
func (s AppSpan) Wait() sim.Duration {
	if s.FirstLaunch < 0 || s.Submit < 0 {
		return -1
	}
	return s.FirstLaunch.Sub(s.Submit)
}

// openKey identifies an in-flight interval by application and slot.
type openKey struct {
	appID int64
	slot  int
}

// SpanBuilder folds raw trace events into per-application spans online.
// It implements Sink and is safe for concurrent use; feed it live as an
// observer or replay a recorded log through it (Replay).
type SpanBuilder struct {
	mu       sync.Mutex
	byID     map[int64]*AppSpan
	reconfig map[openKey]sim.Time // open reconfiguration intervals
	compute  map[openKey]Segment  // open compute intervals
	preempt  map[openKey]sim.Time // open preempt-request windows
}

// NewSpanBuilder returns an empty builder.
func NewSpanBuilder() *SpanBuilder {
	return &SpanBuilder{
		byID:     map[int64]*AppSpan{},
		reconfig: map[openKey]sim.Time{},
		compute:  map[openKey]Segment{},
		preempt:  map[openKey]sim.Time{},
	}
}

// Replay folds an entire recorded log, returning the builder for
// chaining: NewSpanBuilder().Replay(log).Spans().
func (b *SpanBuilder) Replay(l *trace.Log) *SpanBuilder {
	for _, e := range l.Events() {
		b.Observe(e)
	}
	return b
}

func (b *SpanBuilder) span(e trace.Event) *AppSpan {
	s, ok := b.byID[e.AppID]
	if !ok {
		s = &AppSpan{App: e.App, AppID: e.AppID, Submit: -1, FirstConfig: -1, FirstLaunch: -1, Complete: -1}
		b.byID[e.AppID] = s
	}
	return s
}

// Observe implements Sink.
func (b *SpanBuilder) Observe(e trace.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch e.Kind {
	case trace.KindArrival:
		b.span(e).Submit = e.At
	case trace.KindRetire:
		b.span(e).Complete = e.At
	case trace.KindReconfigStart:
		s := b.span(e)
		if s.FirstConfig < 0 {
			s.FirstConfig = e.At
		}
		b.reconfig[openKey{e.AppID, e.Slot}] = e.At
	case trace.KindReconfigDone:
		k := openKey{e.AppID, e.Slot}
		if from, ok := b.reconfig[k]; ok {
			delete(b.reconfig, k)
			s := b.span(e)
			s.Segments = append(s.Segments, Segment{Kind: SegReconfig, From: from, To: e.At, Task: e.Task, Slot: e.Slot, Item: -1})
		}
	case trace.KindItemStart:
		s := b.span(e)
		if s.FirstLaunch < 0 {
			s.FirstLaunch = e.At
		}
		b.compute[openKey{e.AppID, e.Slot}] = Segment{Kind: SegCompute, From: e.At, Task: e.Task, Slot: e.Slot, Item: e.Item}
	case trace.KindItemDone:
		k := openKey{e.AppID, e.Slot}
		if seg, ok := b.compute[k]; ok {
			delete(b.compute, k)
			seg.To = e.At
			s := b.span(e)
			s.Items++
			s.Segments = append(s.Segments, seg)
		}
	case trace.KindPreemptRequest:
		b.preempt[openKey{e.AppID, e.Slot}] = e.At
	case trace.KindPreempt, trace.KindCheckpoint:
		s := b.span(e)
		s.Preemptions++
		kind := SegPreempted
		if e.Kind == trace.KindCheckpoint {
			kind = SegCheckpoint
		}
		k := openKey{e.AppID, e.Slot}
		from := e.At
		if at, ok := b.preempt[k]; ok {
			delete(b.preempt, k)
			from = at
			if from < e.At {
				s.Segments = append(s.Segments, Segment{Kind: SegPreemptWait, From: from, To: e.At, Task: e.Task, Slot: e.Slot, Item: -1})
			}
		}
		s.Segments = append(s.Segments, Segment{Kind: kind, From: e.At, To: e.At, Task: e.Task, Slot: e.Slot, Item: e.Item})
		// An aborted checkpoint save leaves its open compute interval
		// behind; discard it so a later item on the slot cannot pair
		// against a stale start.
		delete(b.compute, k)
	case trace.KindFault, trace.KindRetry, trace.KindWatchdog:
		kind := SegFault
		switch e.Kind {
		case trace.KindRetry:
			kind = SegRetry
		case trace.KindWatchdog:
			kind = SegWatchdog
		}
		s := b.span(e)
		s.Segments = append(s.Segments, Segment{Kind: kind, From: e.At, To: e.At, Task: e.Task, Slot: e.Slot, Item: e.Item})
		if e.Kind == trace.KindWatchdog {
			// The killed item's compute interval never completes.
			delete(b.compute, openKey{e.AppID, e.Slot})
		}
	}
}

// Spans returns a snapshot of every application span ordered by AppID.
// Segments within a span are ordered by start time.
func (b *SpanBuilder) Spans() []AppSpan {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]AppSpan, 0, len(b.byID))
	for _, s := range b.byID {
		cp := *s
		cp.Segments = append([]Segment(nil), s.Segments...)
		sort.SliceStable(cp.Segments, func(i, j int) bool { return cp.Segments[i].From < cp.Segments[j].From })
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AppID < out[j].AppID })
	return out
}

// MarshalJSON exports the span timeline (an array of AppSpan objects).
func (b *SpanBuilder) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.Spans())
}
