package obs

import (
	"sync"
	"sync/atomic"

	"nimblock/internal/trace"
)

// Async decouples event producers from a slow downstream sink through a
// bounded buffer drained by one background goroutine. Observe never
// blocks: when the buffer is full the event is dropped and counted
// instead of applying backpressure to the simulation. The drop counter
// is exact — every observed event is either delivered downstream or
// counted as dropped, never both, never neither.
type Async struct {
	inner   Sink
	ch      chan trace.Event
	dropped atomic.Uint64
	done    chan struct{}

	// mu guards sends against channel close: Observe holds the read
	// side (cheap, shared among producers), Close the write side.
	mu     sync.RWMutex
	closed bool
	once   sync.Once
}

// NewAsync wraps inner with a bounded buffer of the given capacity
// (minimum 1) and starts the drain goroutine. Call Close to flush the
// buffer and stop the goroutine.
func NewAsync(inner Sink, capacity int) *Async {
	if capacity < 1 {
		capacity = 1
	}
	a := &Async{
		inner: inner,
		ch:    make(chan trace.Event, capacity),
		done:  make(chan struct{}),
	}
	go a.drain()
	return a
}

func (a *Async) drain() {
	for e := range a.ch {
		a.inner.Observe(e)
	}
	close(a.done)
}

// Observe implements Sink. It never blocks; events that do not fit in
// the buffer are dropped and counted. Observing after Close drops.
func (a *Async) Observe(e trace.Event) {
	a.mu.RLock()
	if a.closed {
		a.mu.RUnlock()
		a.dropped.Add(1)
		return
	}
	select {
	case a.ch <- e:
	default:
		a.dropped.Add(1)
	}
	a.mu.RUnlock()
}

// Dropped reports the number of events lost to a full buffer (or to
// observation after Close).
func (a *Async) Dropped() uint64 { return a.dropped.Load() }

// Close drains buffered events into the inner sink, stops the drain
// goroutine, and closes the inner sink if it is a Closer. Safe to call
// more than once; Observe calls after Close count as drops.
func (a *Async) Close() error {
	var err error
	a.once.Do(func() {
		a.mu.Lock()
		a.closed = true
		close(a.ch)
		a.mu.Unlock()
		<-a.done
		err = Close(a.inner)
	})
	return err
}
