package obs_test

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nimblock/internal/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	if r.Counter("c_total", "ignored") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge %v, want 1.5", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h_seconds", "latencies", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-16) > 1e-9 {
		t.Fatalf("sum %v, want 16", h.Sum())
	}
	cum := h.Cumulative()
	// le=1: 0.5 and 1.0 (le semantics); le=2: +1.5; le=5: +3; +Inf: +10.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("median %v outside its bucket [1,2]", q)
	}
	if empty := r.Histogram("h2", "", []float64{1}); empty.Quantile(0.9) != -1 {
		t.Fatal("quantile of empty histogram should be -1")
	}
}

func TestCrossTypeRegistrationPanics(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("name", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter name did not panic")
		}
	}()
	r.Gauge("name", "")
}

func TestPrometheusExposition(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("nimblock_apps_completed_total", "applications retired").Add(3)
	r.Gauge("nimblock_effective_slots", "usable slots").Set(3)
	h := r.Histogram("nimblock_response_seconds", "response time", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE nimblock_apps_completed_total counter",
		"nimblock_apps_completed_total 3",
		"# TYPE nimblock_effective_slots gauge",
		"nimblock_effective_slots 3",
		"# TYPE nimblock_response_seconds histogram",
		`nimblock_response_seconds_bucket{le="0.1"} 1`,
		`nimblock_response_seconds_bucket{le="1"} 2`,
		`nimblock_response_seconds_bucket{le="+Inf"} 3`,
		"nimblock_response_seconds_sum 30.55",
		"nimblock_response_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHandlerServesTextAndJSON(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("x_total", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}

	res2, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(res2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["x_total"] != 1 {
		t.Fatalf("snapshot counters %v", snap.Counters)
	}

	res3, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	res3.Body.Close()
	if res3.StatusCode != 404 {
		t.Fatalf("unknown path returned %d", res3.StatusCode)
	}
}

// Snapshot encoding is deterministic: two identical registries encode to
// identical bytes (map keys sort), which the golden metamorphic tests
// rely on.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() *obs.Registry {
		r := obs.NewRegistry()
		r.Counter("b_total", "").Add(2)
		r.Counter("a_total", "").Add(1)
		r.Gauge("g", "").Set(4.25)
		h := r.Histogram("h", "", []float64{1, 10})
		h.Observe(0.5)
		h.Observe(5)
		return r
	}
	x, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	y, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if string(x) != string(y) {
		t.Fatalf("snapshot not deterministic:\n%s\n%s", x, y)
	}
}

// Instruments are safe under concurrent writers; run with -race.
func TestInstrumentsConcurrent(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", obs.DefaultLatencyBuckets)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 100)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count %d, want 8000", h.Count())
	}
}
