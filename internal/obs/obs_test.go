package obs_test

import (
	"bufio"
	"bytes"
	"testing"

	"nimblock/internal/obs"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

func sampleEvents(n int) []trace.Event {
	out := make([]trace.Event, n)
	for i := range out {
		out[i] = trace.Event{
			At:    sim.Time(i * 1000),
			Kind:  trace.Kind(i % trace.NumKinds()),
			App:   "sample",
			AppID: int64(i % 5),
			Task:  i % 3,
			Slot:  i % 4,
			Item:  i,
		}
	}
	return out
}

func TestTeeFansOutAndSkipsNil(t *testing.T) {
	a, b := &obs.Counting{}, &obs.Counting{}
	tee := obs.Tee(nil, a, nil, b)
	for _, e := range sampleEvents(10) {
		tee.Observe(e)
	}
	if a.Total() != 10 || b.Total() != 10 {
		t.Fatalf("tee delivered %d/%d events, want 10/10", a.Total(), b.Total())
	}
	if obs.Tee() != nil {
		t.Fatal("empty tee should collapse to nil")
	}
	if got := obs.Tee(nil, a); got != obs.Sink(a) {
		t.Fatal("single-sink tee should collapse to the sink itself")
	}
}

func TestFuncAdapter(t *testing.T) {
	var got []trace.Kind
	s := obs.Func(func(e trace.Event) { got = append(got, e.Kind) })
	s.Observe(trace.Event{Kind: trace.KindArrival})
	s.Observe(trace.Event{Kind: trace.KindRetire})
	if len(got) != 2 || got[0] != trace.KindArrival || got[1] != trace.KindRetire {
		t.Fatalf("func sink saw %v", got)
	}
}

func TestCountingPerKind(t *testing.T) {
	c := &obs.Counting{}
	c.Observe(trace.Event{Kind: trace.KindArrival})
	c.Observe(trace.Event{Kind: trace.KindArrival})
	c.Observe(trace.Event{Kind: trace.KindRetire})
	if c.Total() != 3 {
		t.Fatalf("total %d, want 3", c.Total())
	}
	if c.Count(trace.KindArrival) != 2 || c.Count(trace.KindRetire) != 1 {
		t.Fatalf("per-kind counts wrong: arrival=%d retire=%d", c.Count(trace.KindArrival), c.Count(trace.KindRetire))
	}
	if c.Count(trace.Kind(200)) != 0 {
		t.Fatal("out-of-range kind should count zero")
	}
}

// JSONL output must parse back into the exact events that were written.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	events := sampleEvents(25)
	for _, e := range events {
		sink.Observe(e)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var got []trace.Event
	for sc.Scan() {
		e, err := trace.ParseEventJSON(sc.Bytes())
		if err != nil {
			t.Fatalf("line %d: %v", len(got), err)
		}
		got = append(got, e)
	}
	if len(got) != len(events) {
		t.Fatalf("%d lines, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("line %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestCloseHelper(t *testing.T) {
	if err := obs.Close(nil); err != nil {
		t.Fatal(err)
	}
	if err := obs.Close(&obs.Counting{}); err != nil {
		t.Fatal(err) // not a Closer: no-op
	}
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	j.Observe(trace.Event{Kind: trace.KindArrival})
	if err := obs.Close(j); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Close did not flush the JSONL sink")
	}
}
