package obs

import (
	"strings"
	"sync"

	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// DefaultLatencyBuckets covers the paper's response-time range: from
// tens of milliseconds (one small task, no contention) to thousands of
// seconds (long batches queued behind a congested board).
var DefaultLatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
}

// ReconfigBuckets covers partial-reconfiguration times: one slot image
// takes ~80 ms end to end on the default board; retries stretch that.
var ReconfigBuckets = []float64{0.02, 0.05, 0.08, 0.1, 0.15, 0.25, 0.5, 1, 2}

// StateXferBuckets covers checkpoint state transfers through the CAP:
// the default 1 MiB state streams in ~9 ms; queueing stretches that.
var StateXferBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}

// Metrics is a Sink that folds trace events into a Registry online:
// per-kind event counters, response/wait/reconfiguration latency
// histograms, and gauges for pending applications, effective (usable)
// slots, and CAP occupancy. The online results exactly match what the
// post-hoc analyzers (trace.Summarize, internal/metrics) compute from a
// recorded log of the same run — the metamorphic tests enforce it.
//
// Pairing state (arrival -> retire, reconfig start -> done) is keyed by
// application and slot IDs, which are unique within one hypervisor. To
// aggregate a parallel sweep, give each run its own Metrics sink sharing
// one Registry: instruments are shared and atomic, pairing stays local.
type Metrics struct {
	reg *Registry

	events       []*Counter // one per trace.Kind
	completed    *Counter
	resumed      *Counter
	pending      *Gauge
	effSlots     *Gauge
	capBusy      *Gauge
	ckptOverhead *Gauge
	savedWork    *Gauge
	energyStatic *Gauge
	energyActive *Gauge
	fairness     *Gauge
	response     *Histogram
	wait         *Histogram
	reconfig     *Histogram
	stateXfer    *Histogram

	mu          sync.Mutex
	arrival     map[int64]sim.Time // app -> arrival time
	launched    map[int64]bool     // app -> first item started
	reconfOpen  map[int]sim.Time   // slot -> reconfig start
	capBusyTime sim.Duration       // union of open reconfiguration windows
	lastAt      sim.Time           // latest event time seen
	slotsOff    int
	slots       int
}

// NewMetrics builds a metrics sink over the registry. slots is the
// board's initial slot count, seeding the effective-slots gauge; pass 0
// if unknown (the gauge then tracks only losses, from 0 downward).
func NewMetrics(reg *Registry, slots int) *Metrics {
	m := &Metrics{
		reg:        reg,
		arrival:    map[int64]sim.Time{},
		launched:   map[int64]bool{},
		reconfOpen: map[int]sim.Time{},
		slots:      slots,
	}
	for k := trace.Kind(0); int(k) < trace.NumKinds(); k++ {
		name := "nimblock_events_" + strings.ReplaceAll(k.String(), "-", "_") + "_total"
		m.events = append(m.events, reg.Counter(name, "trace events of kind "+k.String()))
	}
	m.completed = reg.Counter("nimblock_apps_completed_total", "applications retired")
	m.pending = reg.Gauge("nimblock_pending_apps", "applications arrived and not yet retired")
	m.effSlots = reg.Gauge("nimblock_effective_slots", "usable slot count (initial slots minus offline)")
	m.capBusy = reg.Gauge("nimblock_cap_busy_fraction", "fraction of virtual time the CAP spent reconfiguring")
	m.resumed = reg.Counter("nimblock_items_resumed_total", "items resumed from a checkpoint instead of re-executing")
	m.ckptOverhead = reg.Gauge("nimblock_checkpoint_overhead_seconds", "cumulative checkpoint save/restore transfer time")
	m.savedWork = reg.Gauge("nimblock_saved_work_seconds", "cumulative nominal work carried over by restores")
	m.energyStatic = reg.Gauge("nimblock_energy_static_joules", "cumulative static (leakage) energy over usable slot-time")
	m.energyActive = reg.Gauge("nimblock_energy_active_joules", "cumulative active energy over occupied slot-time")
	m.fairness = reg.Gauge("nimblock_fairness_jain_index", "Jain's fairness index over per-tenant weighted service (latest run)")
	m.response = reg.Histogram("nimblock_response_seconds", "application response time (retire - arrival)", DefaultLatencyBuckets)
	m.wait = reg.Histogram("nimblock_wait_seconds", "application wait time (first item start - arrival)", DefaultLatencyBuckets)
	m.reconfig = reg.Histogram("nimblock_reconfig_seconds", "per-request partial reconfiguration time on the CAP", ReconfigBuckets)
	m.stateXfer = reg.Histogram("nimblock_state_transfer_seconds", "per-transfer checkpoint state time on the CAP", StateXferBuckets)
	m.effSlots.Set(float64(slots))
	return m
}

// Registry returns the backing registry.
func (m *Metrics) Registry() *Registry { return m.reg }

// RecordEnergy folds one run's energy report into the registry. Energy
// is integrated by the board's power model, not derivable from the
// event stream (the stream carries no wattage), so harnesses publish it
// explicitly after each run; values accumulate across runs sharing the
// registry, like the event counters do.
func (m *Metrics) RecordEnergy(staticJoules, activeJoules float64) {
	m.energyStatic.Add(staticJoules)
	m.energyActive.Add(activeJoules)
}

// RecordFairness publishes Jain's fairness index over per-tenant
// weighted service for the latest run (a point-in-time quality signal,
// so the gauge is set, not accumulated).
func (m *Metrics) RecordFairness(jain float64) { m.fairness.Set(jain) }

// Observe implements Sink.
func (m *Metrics) Observe(e trace.Event) {
	if k := int(e.Kind); k >= 0 && k < len(m.events) {
		m.events[k].Inc()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.At > m.lastAt {
		// Reconfiguration windows include CAP queueing and may overlap
		// across slots; occupancy is the union, integrated eventwise
		// (state is constant between events in a discrete-event run).
		if len(m.reconfOpen) > 0 {
			m.capBusyTime += e.At.Sub(m.lastAt)
		}
		m.lastAt = e.At
	}
	switch e.Kind {
	case trace.KindArrival:
		m.arrival[e.AppID] = e.At
		m.pending.Add(1)
	case trace.KindItemStart:
		if !m.launched[e.AppID] {
			m.launched[e.AppID] = true
			if at, ok := m.arrival[e.AppID]; ok {
				m.wait.Observe(e.At.Sub(at).Seconds())
			}
		}
	case trace.KindRetire:
		if at, ok := m.arrival[e.AppID]; ok {
			m.response.Observe(e.At.Sub(at).Seconds())
			delete(m.arrival, e.AppID)
			delete(m.launched, e.AppID)
		}
		m.completed.Inc()
		m.pending.Add(-1)
	case trace.KindReconfigStart:
		m.reconfOpen[e.Slot] = e.At
	case trace.KindReconfigDone, trace.KindFault:
		// Both outcomes release the CAP; a fault still occupied it for
		// the (possibly retried) attempt window.
		if from, ok := m.reconfOpen[e.Slot]; ok {
			delete(m.reconfOpen, e.Slot)
			m.reconfig.Observe(e.At.Sub(from).Seconds())
		}
	case trace.KindSlotOffline:
		m.slotsOff++
		m.effSlots.Set(float64(m.slots - m.slotsOff))
	case trace.KindCheckpointSave, trace.KindCheckpoint, trace.KindCheckpointFault:
		// A zero Dur means no transfer happened (a boundary preemption in
		// the legacy study mode, or a snapshot lost before streaming).
		if e.Dur > 0 {
			m.stateXfer.Observe(e.Dur.Seconds())
			m.ckptOverhead.Add(e.Dur.Seconds())
		}
	case trace.KindRestore:
		m.stateXfer.Observe(e.Dur.Seconds())
		m.ckptOverhead.Add(e.Dur.Seconds())
		m.savedWork.Add(e.Progress.Seconds())
		m.resumed.Inc()
	}
	if m.lastAt > 0 {
		m.capBusy.Set(float64(m.capBusyTime) / float64(m.lastAt))
	}
}
