package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges, and fixed-bucket histograms
// updated online as a run progresses. All instruments are safe for
// concurrent use; reads (exposition, snapshots) may interleave with
// writes and observe a consistent point-in-time view per instrument.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error and are ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket i counts observations <= bound i, plus an implicit
// +Inf bucket).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram validates and sorts the bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative count at each bound, ending with
// the +Inf bucket (== Count()).
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket; -1 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return -1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := h.Cumulative()
	lo := 0.0
	for i, c := range cum {
		if float64(c) >= rank {
			hi := math.Inf(1)
			if i < len(h.bounds) {
				hi = h.bounds[i]
			} else if len(h.bounds) > 0 {
				// +Inf bucket: report the largest finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			prev := 0.0
			if i > 0 {
				prev = float64(cum[i-1])
			}
			width := float64(h.buckets[i].Load())
			if width == 0 {
				return hi
			}
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (hi-lo)*(rank-prev)/width
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.mustBeFree(name)
	c := &Counter{}
	r.counters[name] = c
	r.help[name] = help
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFree(name)
	g := &Gauge{}
	r.gauges[name] = g
	r.help[name] = help
	return g
}

// Histogram returns (creating if needed) the named histogram. Bounds are
// fixed at first creation; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.mustBeFree(name)
	h := newHistogram(bounds)
	r.histograms[name] = h
	r.help[name] = help
	return h
}

// mustBeFree panics if the name is already bound to another instrument
// type — a programming error, caught loudly. Callers hold r.mu.
func (r *Registry) mustBeFree(name string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// fmtFloat renders a float the way Prometheus clients expect.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4), names sorted for determinism.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	var names []string
	for n := range counters {
		names = append(names, n)
	}
	for n := range gauges {
		names = append(names, n)
	}
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if h := help[n]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, h); err != nil {
				return err
			}
		}
		switch {
		case counters[n] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[n].Value()); err != nil {
				return err
			}
		case gauges[n] != nil:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, fmtFloat(gauges[n].Value())); err != nil {
				return err
			}
		default:
			h := hists[n]
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
				return err
			}
			cum := h.Cumulative()
			for i, b := range h.bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, fmtFloat(b), cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, fmtFloat(h.Sum()), n, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// histSnapshot is the JSON form of one histogram.
type histSnapshot struct {
	Buckets map[string]int64 `json:"buckets"`
	Sum     float64          `json:"sum"`
	Count   int64            `json:"count"`
}

// Snapshot is a point-in-time JSON-friendly view of the registry; map
// keys serialize sorted, so encoding a Snapshot is deterministic for
// deterministic runs (the metamorphic golden tests rely on this).
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]histSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histSnapshot{},
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		hs := histSnapshot{Buckets: map[string]int64{}, Sum: h.Sum(), Count: h.Count()}
		cum := h.Cumulative()
		for i, b := range h.bounds {
			hs.Buckets[fmtFloat(b)] = cum[i]
		}
		hs.Buckets["+Inf"] = cum[len(cum)-1]
		s.Histograms[n] = hs
	}
	return s
}

// MarshalJSON exports the registry as an expvar-style JSON document.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// Handler serves the registry over HTTP: Prometheus text at /metrics
// (and /), expvar-style JSON at /metrics.json or with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch {
		case req.URL.Path == "/metrics.json" || req.URL.Query().Get("format") == "json":
			w.Header().Set("Content-Type", "application/json")
			data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(data)
			w.Write([]byte("\n"))
		case req.URL.Path == "/" || req.URL.Path == "/metrics":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := r.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.NotFound(w, req)
		}
	})
}
