// Package obs is the live observability layer: streaming sinks, span
// building, online metrics, and Prometheus-text exposition over the
// hypervisor's trace events.
//
// The existing internal/trace and internal/metrics packages are post-hoc
// analyzers — they inspect a completed run. Package obs instead hooks the
// emission point: every trace.Event the hypervisor records is also fanned
// out, as it happens, to any attached Sink. That turns a long-running
// simulation, a cluster sweep, or a serverless replay into something that
// can be watched while it runs — the same lens multi-tenant FPGA runtimes
// use to monitor per-tenant fairness and slot occupancy in production.
//
// Design rules:
//
//   - A nil Sink is "observability off" and must cost nothing on the
//     simulator hot path: the hypervisor guards emission with a single
//     nil check and passes events by value (zero allocations; a benchmark
//     in internal/hv enforces this).
//   - Every Sink shipped by this package is safe for concurrent use: the
//     parallel experiment harness (internal/experiments) runs many
//     engines at once and may point them all at one sink.
//   - Sinks never block the simulation. The Async sink makes that
//     explicit: it buffers into a bounded queue and counts drops instead
//     of applying backpressure.
package obs

import (
	"sync"

	"nimblock/internal/trace"
)

// Sink receives trace events as they are emitted. Implementations must
// be safe for concurrent Observe calls: the parallel experiment harness
// attaches one sink to many simulator goroutines.
type Sink interface {
	Observe(e trace.Event)
}

// Closer is implemented by sinks that hold resources (background
// goroutines, buffered writers). Close flushes and releases them; the
// sink must not be Observed after Close.
type Closer interface {
	Close() error
}

// Close closes s if it implements Closer; otherwise it is a no-op.
func Close(s Sink) error {
	if c, ok := s.(Closer); ok {
		return c.Close()
	}
	return nil
}

// Func adapts a function to the Sink interface. The function must be
// safe for concurrent calls.
type Func func(e trace.Event)

// Observe implements Sink.
func (f Func) Observe(e trace.Event) { f(e) }

// tee fans every event out to several sinks in order.
type tee []Sink

// Tee returns a sink that forwards each event to every given sink in
// order. Nil entries are skipped; a tee of zero or one sinks collapses
// to nothing or the sink itself.
func Tee(sinks ...Sink) Sink {
	var live tee
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

// Observe implements Sink.
func (t tee) Observe(e trace.Event) {
	for _, s := range t {
		s.Observe(e)
	}
}

// Counting is a minimal sink that tallies events by kind — useful as a
// cheap liveness probe and in tests.
type Counting struct {
	mu     sync.Mutex
	total  int64
	byKind []int64
}

// Observe implements Sink.
func (c *Counting) Observe(e trace.Event) {
	c.mu.Lock()
	if c.byKind == nil {
		c.byKind = make([]int64, trace.NumKinds())
	}
	c.total++
	if k := int(e.Kind); k >= 0 && k < len(c.byKind) {
		c.byKind[k]++
	}
	c.mu.Unlock()
}

// Total reports the number of events observed.
func (c *Counting) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Count reports the number of events of one kind observed.
func (c *Counting) Count(k trace.Kind) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(k) < 0 || int(k) >= len(c.byKind) {
		return 0
	}
	return c.byKind[k]
}
