package saturate

import (
	"sync"

	"nimblock/internal/fpga"
	"nimblock/internal/hls"
	"nimblock/internal/taskgraph"
)

// cacheKey identifies one analysis. Applications are keyed by name: the
// compilation flow produces one task-graph per application, so the name
// determines the shape and the estimates.
type cacheKey struct {
	name       string
	batch      int
	pipelining bool
	slots      int
	capBW      float64
	sdBW       float64
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]Result{}
)

// AnalyzeCached is Analyze with a process-wide cache. On the real system
// the analysis runs once per application during compilation (in parallel
// with synthesis and place-and-route); caching reproduces that "computed
// ahead of time" property across scheduler instances.
func AnalyzeCached(g *taskgraph.Graph, report *hls.Report, batch int, board fpga.Config, pipelining bool) (Result, error) {
	key := cacheKey{
		name:       g.Name(),
		batch:      batch,
		pipelining: pipelining,
		slots:      board.Slots,
		capBW:      board.CAPBytesPerSec,
		sdBW:       board.SDBytesPerSec,
	}
	cacheMu.Lock()
	r, ok := cache[key]
	cacheMu.Unlock()
	if ok {
		return r, nil
	}
	r, err := Analyze(g, report, batch, board, pipelining)
	if err != nil {
		return Result{}, err
	}
	cacheMu.Lock()
	cache[key] = r
	cacheMu.Unlock()
	return r, nil
}
