package saturate

import (
	"hash/fnv"
	"sync"

	"nimblock/internal/fpga"
	"nimblock/internal/hls"
	"nimblock/internal/taskgraph"
)

// cacheKey identifies one analysis. Applications are keyed by the
// structural fingerprint of their task-graph plus a hash of the HLS
// estimates the analysis consumes — never by name alone, so two graphs
// sharing a name (e.g. a rebuilt or synthetic variant) can never return
// each other's saturation results.
type cacheKey struct {
	graphFP    uint64
	reportFP   uint64
	batch      int
	pipelining bool
	slots      int
	capBW      float64
	sdBW       float64
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]Result{}
)

// reportFingerprint hashes the per-task latency estimates: the only part
// of the HLS report the analysis reads.
func reportFingerprint(report *hls.Report) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < report.NumTasks(); i++ {
		lat := uint64(report.Task(i).Latency)
		for b := 0; b < 8; b++ {
			buf[b] = byte(lat >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// AnalyzeCached is Analyze with a process-wide cache. On the real system
// the analysis runs once per application during compilation (in parallel
// with synthesis and place-and-route); caching reproduces that "computed
// ahead of time" property across scheduler instances.
func AnalyzeCached(g *taskgraph.Graph, report *hls.Report, batch int, board fpga.Config, pipelining bool) (Result, error) {
	key := cacheKey{
		graphFP:    g.Fingerprint(),
		reportFP:   reportFingerprint(report),
		batch:      batch,
		pipelining: pipelining,
		slots:      board.Slots,
		capBW:      board.CAPBytesPerSec,
		sdBW:       board.SDBytesPerSec,
	}
	cacheMu.Lock()
	r, ok := cache[key]
	cacheMu.Unlock()
	if ok {
		return r, nil
	}
	r, err := Analyze(g, report, batch, board, pipelining)
	if err != nil {
		return Result{}, err
	}
	cacheMu.Lock()
	cache[key] = r
	cacheMu.Unlock()
	return r, nil
}
