// Package saturate identifies application saturation points and goal
// numbers for Nimblock's slot allocation.
//
// The paper generates performance estimates across slot allocations with
// DML's integer linear programming formulation (solved by Gurobi), which
// accounts for pipelining and reconfiguration time, then picks the point
// where adding slots stops helping. Gurobi is unavailable here; instead we
// estimate makespans by running the application alone through the actual
// hypervisor mechanics — a greedy list-scheduling execution on k slots
// with the same CAP serialization and (optionally) cross-batch pipelining.
// This is at least as faithful to the running system as an external ILP:
// the analysis consumes HLS estimates only, exactly like the paper's flow,
// and runs off the critical path (results are cached per application and
// batch size).
package saturate

import (
	"fmt"

	"nimblock/internal/fpga"
	"nimblock/internal/hls"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// GoalThreshold is the marginal-improvement cutoff defining the
// saturation point: if one more slot improves estimated makespan by less
// than this fraction, the application is saturated.
const GoalThreshold = 0.05

// UsefulThreshold is the cutoff below which an extra slot is considered
// to provide no benefit at all.
const UsefulThreshold = 0.005

// Result is the saturation analysis for one (application, batch) pair.
type Result struct {
	// Makespans[k-1] is the estimated makespan with k slots.
	Makespans []sim.Duration
	// Goal is the saturation point: the slot count beyond which marginal
	// improvement drops under GoalThreshold.
	Goal int
	// MaxUseful is the largest slot count that still improves makespan
	// by at least UsefulThreshold over one fewer slot.
	MaxUseful int
}

// greedy is the internal list-scheduling policy used for estimation: it
// configures the application's configurable tasks onto free slots in
// topological order, with pipelining per the flag.
type greedy struct{ pipe bool }

func (g *greedy) Name() string     { return "saturate-greedy" }
func (g *greedy) Pipelining() bool { return g.pipe }
func (g *greedy) Schedule(w sched.World, why sched.Reason) {
	free := w.FreeSlots()
	idx := 0
	for _, a := range w.Apps() {
		for _, t := range a.ConfigurableTasks() {
			if idx >= len(free) {
				return
			}
			if err := w.Reconfigure(free[idx], a, t); err != nil {
				return
			}
			idx++
		}
	}
}

// estimateGraph clones the task-graph with HLS-estimated latencies, so
// the analysis never sees ground truth.
func estimateGraph(g *taskgraph.Graph, report *hls.Report) (*taskgraph.Graph, error) {
	b := taskgraph.NewBuilder(g.Name())
	for i := 0; i < g.NumTasks(); i++ {
		b.AddTask(g.Task(i).Name, report.Task(i).Latency)
	}
	for i := 0; i < g.NumTasks(); i++ {
		for _, succ := range g.Succ(i) {
			b.AddEdge(i, succ)
		}
	}
	return b.Build()
}

// Makespan estimates the response time of the application running alone
// on k slots of the given board.
func Makespan(g *taskgraph.Graph, report *hls.Report, batch, k int, board fpga.Config, pipelining bool) (sim.Duration, error) {
	if k < 1 {
		return 0, fmt.Errorf("saturate: k must be >= 1, got %d", k)
	}
	est, err := estimateGraph(g, report)
	if err != nil {
		return 0, err
	}
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.Board = board
	cfg.Board.Slots = k
	// Analysis assumes fault-free hardware: strip every injection knob.
	cfg.Board.FaultRate = 0
	cfg.Board.NewInjector = nil
	cfg.Board.OnFault = nil
	h, err := hv.New(eng, cfg, &greedy{pipe: pipelining})
	if err != nil {
		return 0, err
	}
	if err := h.Submit(est, batch, 1, 0); err != nil {
		return 0, err
	}
	results, err := h.Run()
	if err != nil {
		return 0, err
	}
	return results[0].Response, nil
}

// ActualMakespan runs the same greedy execution on the ground-truth task
// latencies instead of HLS estimates — the realized makespan the
// analysis tries to predict. The gap between Makespan and ActualMakespan
// is the HLS estimation error propagated through scheduling.
func ActualMakespan(g *taskgraph.Graph, batch, k int, board fpga.Config, pipelining bool) (sim.Duration, error) {
	if k < 1 {
		return 0, fmt.Errorf("saturate: k must be >= 1, got %d", k)
	}
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.Board = board
	cfg.Board.Slots = k
	cfg.Board.FaultRate = 0
	cfg.Board.NewInjector = nil
	cfg.Board.OnFault = nil
	h, err := hv.New(eng, cfg, &greedy{pipe: pipelining})
	if err != nil {
		return 0, err
	}
	if err := h.Submit(g, batch, 1, 0); err != nil {
		return 0, err
	}
	results, err := h.Run()
	if err != nil {
		return 0, err
	}
	return results[0].Response, nil
}

// Analyze sweeps slot counts from one to the board size and derives the
// goal number and maximum useful allocation.
func Analyze(g *taskgraph.Graph, report *hls.Report, batch int, board fpga.Config, pipelining bool) (Result, error) {
	max := board.Slots
	if max < 1 {
		return Result{}, fmt.Errorf("saturate: board has %d slots", max)
	}
	// More slots than tasks can never help; cap the sweep.
	if g.NumTasks() < max {
		max = g.NumTasks()
	}
	res := Result{Makespans: make([]sim.Duration, max)}
	for k := 1; k <= max; k++ {
		m, err := Makespan(g, report, batch, k, board, pipelining)
		if err != nil {
			return Result{}, err
		}
		res.Makespans[k-1] = m
	}
	res.Goal = goalFrom(res.Makespans)
	res.MaxUseful = maxUsefulFrom(res.Makespans)
	return res, nil
}

// goalFrom finds the saturation point: the smallest k whose next slot
// improves makespan by less than GoalThreshold.
func goalFrom(ms []sim.Duration) int {
	for k := 1; k < len(ms); k++ {
		prev, next := float64(ms[k-1]), float64(ms[k])
		if prev <= 0 || (prev-next)/prev < GoalThreshold {
			return k
		}
	}
	return len(ms)
}

// maxUsefulFrom finds the largest k that still improves at least
// UsefulThreshold over k-1 (monotone scan from below; a plateau ends the
// useful range).
func maxUsefulFrom(ms []sim.Duration) int {
	useful := 1
	for k := 2; k <= len(ms); k++ {
		prev, cur := float64(ms[k-2]), float64(ms[k-1])
		if prev <= 0 || (prev-cur)/prev < UsefulThreshold {
			break
		}
		useful = k
	}
	return useful
}
