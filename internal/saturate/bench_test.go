package saturate

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/fpga"
	"nimblock/internal/hls"
)

// BenchmarkAnalyze measures a full goal-number analysis for the largest
// benchmark — the work the paper offloads to Gurobi, here a makespan
// sweep over the overlay sizes.
func BenchmarkAnalyze(b *testing.B) {
	g := apps.MustGraph(apps.AlexNet)
	r := hls.Analyze(g)
	cfg := fpga.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(g, r, 10, cfg, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMakespan measures one k-slot estimate.
func BenchmarkMakespan(b *testing.B) {
	g := apps.MustGraph(apps.OpticalFlow)
	r := hls.Analyze(g)
	cfg := fpga.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Makespan(g, r, 10, 4, cfg, true); err != nil {
			b.Fatal(err)
		}
	}
}
