package saturate

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/fpga"
	"nimblock/internal/hls"
	"nimblock/internal/sim"
)

func board() fpga.Config { return fpga.DefaultConfig() }

func TestMakespanMonotoneInSlots(t *testing.T) {
	g := apps.MustGraph(apps.OpticalFlow)
	r := hls.Analyze(g)
	var prev sim.Duration
	for k := 1; k <= 5; k++ {
		m, err := Makespan(g, r, 5, k, board(), true)
		if err != nil {
			t.Fatal(err)
		}
		if m <= 0 {
			t.Fatalf("k=%d: non-positive makespan", k)
		}
		if k > 1 && m > prev {
			t.Fatalf("k=%d makespan %v worse than k=%d (%v)", k, m, k-1, prev)
		}
		prev = m
	}
}

func TestPipeliningImprovesMakespan(t *testing.T) {
	g := apps.MustGraph(apps.OpticalFlow)
	r := hls.Analyze(g)
	bulk, err := Makespan(g, r, 10, 4, board(), false)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Makespan(g, r, 10, 4, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	if pipe >= bulk {
		t.Fatalf("pipelined makespan %v not better than bulk %v", pipe, bulk)
	}
}

func TestSecondSlotGreatestBenefit(t *testing.T) {
	// The paper's observation: a second slot gives the greatest benefit
	// for pipelined apps because two batches execute in parallel.
	g := apps.MustGraph(apps.Rendering3D)
	r := hls.Analyze(g)
	res, err := Analyze(g, r, 10, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Makespans) < 2 {
		t.Fatalf("sweep too short: %v", res.Makespans)
	}
	gain12 := float64(res.Makespans[0] - res.Makespans[1])
	for k := 2; k < len(res.Makespans); k++ {
		gain := float64(res.Makespans[k-1] - res.Makespans[k])
		if gain > gain12 {
			t.Fatalf("slot %d->%d gain %.0f exceeds 1->2 gain %.0f", k, k+1, gain, gain12)
		}
	}
	if res.Goal < 2 {
		t.Fatalf("goal = %d, want >= 2 for a pipelinable batch-10 chain", res.Goal)
	}
}

func TestGoalBoundedByTasks(t *testing.T) {
	g := apps.MustGraph(apps.LeNet) // 3 tasks
	r := hls.Analyze(g)
	res, err := Analyze(g, r, 30, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Makespans) != 3 {
		t.Fatalf("sweep length %d, want 3 (capped at task count)", len(res.Makespans))
	}
	if res.Goal > 3 || res.MaxUseful > 3 {
		t.Fatalf("goal=%d maxUseful=%d exceed task count", res.Goal, res.MaxUseful)
	}
	if res.MaxUseful < res.Goal {
		t.Fatalf("maxUseful %d < goal %d", res.MaxUseful, res.Goal)
	}
}

func TestBatchOneChainDoesNotPipeline(t *testing.T) {
	// A chain with batch 1 has no cross-batch parallelism: extra slots
	// only prefetch reconfigurations, so the goal stays small.
	g := apps.MustGraph(apps.DigitRecognition) // 65 s items dwarf reconfig
	r := hls.Analyze(g)
	res, err := Analyze(g, r, 1, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Goal != 1 {
		t.Fatalf("goal = %d for batch-1 long chain, want 1", res.Goal)
	}
}

func TestGoalHelpers(t *testing.T) {
	ms := []sim.Duration{100, 50, 48, 47}
	if g := goalFrom(ms); g != 2 {
		t.Fatalf("goalFrom = %d, want 2", g)
	}
	if u := maxUsefulFrom(ms); u != 4 {
		t.Fatalf("maxUsefulFrom = %d, want 4", u)
	}
	flat := []sim.Duration{100, 100, 100}
	if g := goalFrom(flat); g != 1 {
		t.Fatalf("goalFrom(flat) = %d", g)
	}
	if u := maxUsefulFrom(flat); u != 1 {
		t.Fatalf("maxUsefulFrom(flat) = %d", u)
	}
	if g := goalFrom([]sim.Duration{100}); g != 1 {
		t.Fatalf("goalFrom(single) = %d", g)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	g := apps.MustGraph(apps.LeNet)
	r := hls.Analyze(g)
	if _, err := Makespan(g, r, 1, 0, board(), true); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad := board()
	bad.Slots = 0
	if _, err := Analyze(g, r, 1, bad, true); err == nil {
		t.Fatal("zero-slot board accepted")
	}
}

func TestAnalyzeCached(t *testing.T) {
	g := apps.MustGraph(apps.ImageCompression)
	r := hls.Analyze(g)
	a, err := AnalyzeCached(g, r, 4, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeCached(g, r, 4, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Goal != b.Goal || a.MaxUseful != b.MaxUseful || len(a.Makespans) != len(b.Makespans) {
		t.Fatalf("cached result differs: %+v vs %+v", a, b)
	}
	// Different pipelining flag is a different key.
	c, err := AnalyzeCached(g, r, 4, board(), false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespans[len(c.Makespans)-1] < a.Makespans[len(a.Makespans)-1] {
		t.Fatal("bulk analysis faster than pipelined; cache keys collided?")
	}
}

// Two structurally different graphs sharing a name must not return each
// other's cached results (regression: the cache used to key by name).
func TestAnalyzeCachedNameCollision(t *testing.T) {
	short := apps.Synthetic("collide", 2, 10*sim.Millisecond)
	long := apps.Synthetic("collide", 8, 900*sim.Millisecond)
	a, err := AnalyzeCached(short, hls.Analyze(short), 5, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeCached(long, hls.Analyze(long), 5, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Makespans) == len(b.Makespans) {
		t.Fatalf("colliding-name graphs returned same sweep length %d", len(a.Makespans))
	}
	if b.Makespans[0] <= a.Makespans[0] {
		t.Fatalf("8x900ms chain (%v) not slower than 2x10ms chain (%v): cache collision",
			b.Makespans[0], a.Makespans[0])
	}
}

func TestMakespanMatchesSingleSlotIntuition(t *testing.T) {
	// With one slot, the makespan is roughly tasks x reconfig + batch x work.
	g := apps.MustGraph(apps.Rendering3D)
	r := hls.Analyze(g)
	m, err := Makespan(g, r, 5, 1, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	var est sim.Duration
	for i := 0; i < g.NumTasks(); i++ {
		est += r.Task(i).Latency * 5
	}
	est += 3 * 80 * sim.Millisecond
	lo := est - est/10
	hi := est + est/10
	if m < lo || m > hi {
		t.Fatalf("1-slot makespan %v outside [%v, %v]", m, lo, hi)
	}
}

func TestActualMakespanCloseToEstimate(t *testing.T) {
	g := apps.MustGraph(apps.Rendering3D)
	r := hls.Analyze(g)
	est, err := Makespan(g, r, 5, 2, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	act, err := ActualMakespan(g, 5, 2, board(), true)
	if err != nil {
		t.Fatal(err)
	}
	rel := float64(est-act) / float64(act)
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.15 {
		t.Fatalf("estimate %v vs actual %v: %.1f%% error", est, act, 100*rel)
	}
	if _, err := ActualMakespan(g, 1, 0, board(), true); err == nil {
		t.Fatal("k=0 accepted")
	}
}
