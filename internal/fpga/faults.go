package fpga

import (
	"math/rand"

	"nimblock/internal/sim"
)

// FaultClass classifies the outcome of one reconfiguration attempt.
type FaultClass int

const (
	// FaultNone means the attempt succeeded.
	FaultNone FaultClass = iota
	// FaultCRC is a transient CRC mismatch on the configuration stream;
	// the attempt is retryable.
	FaultCRC
	// FaultSD is a transient SD-card read error while staging the
	// bitstream into DDR; the attempt is retryable.
	FaultSD
	// FaultFatal is a permanent failure of the reconfigurable region;
	// the slot goes offline and never returns.
	FaultFatal
)

// String names the class for traces and errors.
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultCRC:
		return "crc"
	case FaultSD:
		return "sd-read"
	case FaultFatal:
		return "fatal"
	default:
		return "unknown"
	}
}

// ReconfigOutcome is the injector's verdict on one reconfiguration
// attempt.
type ReconfigOutcome struct {
	// Class is the fault injected, or FaultNone.
	Class FaultClass
	// Stall is extra CAP latency charged to the attempt (a stalled or
	// congested configuration port). Applies to faulted attempts too.
	Stall sim.Duration
}

// ExecOutcome is the injector's verdict on one task-item execution.
type ExecOutcome struct {
	// Hang makes the item never complete on its own; only a hypervisor
	// watchdog can recover the slot.
	Hang bool
	// Factor > 1 multiplies the item's execution latency (a degraded or
	// thermally throttled kernel). Values <= 1 mean nominal speed.
	Factor float64
}

// SlotFailure is a pre-planned permanent slot failure.
type SlotFailure struct {
	Slot int
	At   sim.Time
}

// Injector is the fault-decision surface consulted by the virtual
// hardware (per reconfiguration attempt) and by the hypervisor (per
// item launch, plus scheduled permanent failures). Implementations must
// be deterministic functions of their seed and the probe sequence so
// simulations stay bit-for-bit reproducible.
type Injector interface {
	// ReconfigAttempt is consulted once per attempt (attempt 0 is the
	// first try) before the stream is charged to the CAP.
	ReconfigAttempt(now sim.Time, slot, attempt int) ReconfigOutcome
	// Exec is consulted once per item launch.
	Exec(now sim.Time, app string, task, slot int) ExecOutcome
	// PermanentFailures lists slot failures scheduled at known times so
	// the hypervisor can take the slots down even while they run.
	PermanentFailures() []SlotFailure
}

// CheckpointOutcome is the injector's verdict on one checkpoint restore
// attempt. Integrity is probed at restore time (not at save time): a
// snapshot that is never needed again cannot hurt the schedule.
type CheckpointOutcome struct {
	// Lost means the snapshot is gone (e.g. backing store failure) and
	// the restore transfer never starts; the item re-executes from
	// scratch immediately.
	Lost bool
	// Corrupt means the snapshot streams back through the CAP but fails
	// validation afterwards; the transfer time is spent, then the item
	// re-executes from scratch.
	Corrupt bool
}

// CheckpointInjector is an optional Injector extension consulted once
// per checkpoint restore attempt. Injectors that do not implement it
// never fault checkpoints.
type CheckpointInjector interface {
	Checkpoint(now sim.Time, app string, task, slot int) CheckpointOutcome
}

// ProbeCheckpoint consults inj's CheckpointInjector extension if it has
// one, and reports a healthy snapshot otherwise (including for nil
// injectors).
func ProbeCheckpoint(inj Injector, now sim.Time, app string, task, slot int) CheckpointOutcome {
	if ci, ok := inj.(CheckpointInjector); ok {
		return ci.Checkpoint(now, app, task, slot)
	}
	return CheckpointOutcome{}
}

// FaultEvent notifies the board owner of one injected reconfiguration
// fault, before the board mutates slot state for it.
type FaultEvent struct {
	Slot    int
	Attempt int
	Class   FaultClass
	// WillRetry reports whether the board is about to retry the attempt
	// (false when retries are exhausted or the fault is fatal).
	WillRetry bool
}

// NewUniformInjector builds the legacy FaultRate process explicitly —
// used by tests that disable or rebuild fault injection mid-scenario.
func NewUniformInjector(rate float64, seed int64) Injector {
	return &uniformInjector{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// uniformInjector is the legacy FaultRate behaviour: every
// reconfiguration attempt fails CRC with fixed probability. It draws
// exactly one random number per attempt, preserving the fault sequences
// of pre-injector seeds.
type uniformInjector struct {
	rate float64
	rng  *rand.Rand
}

func (u *uniformInjector) ReconfigAttempt(now sim.Time, slot, attempt int) ReconfigOutcome {
	if u.rng.Float64() < u.rate {
		return ReconfigOutcome{Class: FaultCRC}
	}
	return ReconfigOutcome{}
}

func (u *uniformInjector) Exec(now sim.Time, app string, task, slot int) ExecOutcome {
	return ExecOutcome{}
}

func (u *uniformInjector) PermanentFailures() []SlotFailure { return nil }
