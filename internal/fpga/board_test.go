package fpga

import (
	"testing"

	"nimblock/internal/bitstream"
	"nimblock/internal/sim"
)

func image(slot int) *bitstream.Image {
	return &bitstream.Image{
		Header: bitstream.Header{App: "app", Task: 0, Slot: slot},
		Bytes:  bitstream.SlotImageBytes + bitstream.HeaderBytes,
	}
}

func newBoard(t *testing.T, cfg Config) (*sim.Engine, *Board) {
	t.Helper()
	eng := sim.NewEngine()
	b, err := NewBoard(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, b
}

func TestDefaultReconfigAround80ms(t *testing.T) {
	_, b := newBoard(t, DefaultConfig())
	d := b.ReconfigTime(image(0))
	if d < 70*sim.Millisecond || d > 90*sim.Millisecond {
		t.Fatalf("reconfig time %v, want ~80ms", d)
	}
}

func TestReconfigureLifecycle(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	var doneAt sim.Time
	img := image(3)
	if err := b.Reconfigure(3, img, func(err error) {
		if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
		doneAt = eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if got := b.Slot(3).State; got != SlotReconfiguring {
		t.Fatalf("state during reconfig = %v", got)
	}
	if !b.CAPBusy() {
		t.Fatal("CAP should be busy")
	}
	eng.Run()
	if b.Slot(3).State != SlotLoaded {
		t.Fatalf("state after reconfig = %v", b.Slot(3).State)
	}
	if b.Slot(3).Image != img {
		t.Fatal("loaded image mismatch")
	}
	if doneAt != sim.Time(0).Add(b.ReconfigTime(img)) {
		t.Fatalf("completion at %v, want %v", doneAt, b.ReconfigTime(img))
	}
	if b.Stats().Reconfigurations != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestCAPSerializesRequests(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	var order []int
	var times []sim.Time
	for _, slot := range []int{0, 1, 2} {
		slot := slot
		if err := b.Reconfigure(slot, image(slot), func(error) {
			order = append(order, slot)
			times = append(times, eng.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.CAPQueueLen() != 2 {
		t.Fatalf("queue length = %d, want 2", b.CAPQueueLen())
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order %v", order)
	}
	d := b.ReconfigTime(image(0))
	for i, at := range times {
		want := sim.Time(0).Add(sim.Duration(i+1) * d)
		if at != want {
			t.Fatalf("completion %d at %v, want %v (serialized)", i, at, want)
		}
	}
}

func TestReconfigureValidation(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	if err := b.Reconfigure(99, image(99), nil); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if err := b.Reconfigure(0, nil, nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if err := b.Reconfigure(0, image(5), nil); err == nil {
		t.Fatal("image targeting wrong slot accepted (no relocation)")
	}
	if err := b.Reconfigure(0, image(0), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Reconfigure(0, image(0), nil); err == nil {
		t.Fatal("reconfigure of busy slot accepted")
	}
	eng.Run()
	if err := b.Reconfigure(0, image(0), nil); err == nil {
		t.Fatal("reconfigure of loaded slot accepted")
	}
}

func TestRelease(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	if err := b.Release(0); err == nil {
		t.Fatal("release of free slot accepted")
	}
	b.Reconfigure(0, image(0), nil)
	eng.Run()
	if err := b.Release(0); err != nil {
		t.Fatal(err)
	}
	if b.Slot(0).State != SlotFree || b.Slot(0).Image != nil {
		t.Fatal("release did not free slot")
	}
	if len(b.FreeSlots()) != b.NumSlots() {
		t.Fatalf("FreeSlots = %v", b.FreeSlots())
	}
}

func TestFaultInjectionRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultRate = 0.5
	cfg.FaultSeed = 42
	cfg.MaxRetries = 10
	eng, b := newBoard(t, cfg)
	ok := false
	b.Reconfigure(0, image(0), func(err error) {
		if err != nil {
			t.Errorf("reconfig failed despite retries: %v", err)
		}
		ok = true
	})
	eng.Run()
	if !ok {
		t.Fatal("callback never invoked")
	}
	if b.Slot(0).State != SlotLoaded {
		t.Fatalf("slot state %v after retried reconfig", b.Slot(0).State)
	}
}

func TestFaultInjectionExhaustsRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultRate = 0.999999
	cfg.FaultSeed = 7
	cfg.MaxRetries = 2
	eng, b := newBoard(t, cfg)
	var gotErr error
	called := false
	b.Reconfigure(0, image(0), func(err error) { gotErr = err; called = true })
	eng.Run()
	if !called || gotErr == nil {
		t.Fatal("expected an unrecoverable reconfiguration error")
	}
	if b.Slot(0).State != SlotFree {
		t.Fatalf("failed slot should be freed, state=%v", b.Slot(0).State)
	}
	if b.Stats().Faults != 3 {
		t.Fatalf("faults = %d, want 3 (initial + 2 retries)", b.Stats().Faults)
	}
	if b.Stats().Retries != 2 {
		t.Fatalf("retries = %d, want 2", b.Stats().Retries)
	}
	if ss := b.SlotStats(0); ss.Faults != 3 || ss.Retries != 2 || ss.Reconfigurations != 0 {
		t.Fatalf("slot 0 stats = %+v", ss)
	}
	// The CAP must recover for subsequent work.
	ok := false
	b.inj = nil // heal the injected fault process
	b.Reconfigure(1, image(1), func(err error) { ok = err == nil })
	eng.Run()
	if !ok {
		t.Fatal("CAP did not recover after a failed reconfiguration")
	}
}

// Retried streams are distinguishable in Stats: Retries counts re-streamed
// attempts, Recovered counts faults absorbed by eventual success, and the
// per-slot counters attribute them to the faulting region.
func TestRetryAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultRate = 0.5
	cfg.FaultSeed = 42
	cfg.MaxRetries = 10
	eng, b := newBoard(t, cfg)
	if err := b.Reconfigure(0, image(0), nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	st := b.Stats()
	if st.Reconfigurations != 1 {
		t.Fatalf("reconfigurations = %d, want 1", st.Reconfigurations)
	}
	if st.Faults == 0 {
		t.Fatal("seed 42 at rate 0.5 should fault at least once")
	}
	if st.Retries != st.Faults {
		t.Fatalf("retries = %d, faults = %d; every fault of a recovered stream is a retry", st.Retries, st.Faults)
	}
	if st.Recovered != st.Faults {
		t.Fatalf("recovered = %d, want %d (the stream eventually succeeded)", st.Recovered, st.Faults)
	}
	ss := b.SlotStats(0)
	if ss.Faults != st.Faults || ss.Retries != st.Retries || ss.Reconfigurations != 1 {
		t.Fatalf("slot stats %+v disagree with board stats %+v", ss, st)
	}
	if other := b.SlotStats(1); other != (SlotStats{}) {
		t.Fatalf("healthy slot accrued stats %+v", other)
	}
}

// Retries back off exponentially with a cap: attempt n waits
// min(RetryBackoff << (n-1), RetryBackoffCap) before re-streaming.
func TestRetryBackoffTiming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetries = 4
	cfg.RetryBackoff = 10 * sim.Millisecond
	cfg.RetryBackoffCap = 25 * sim.Millisecond
	faults := 3 // fail the first three attempts, then succeed
	cfg.NewInjector = func() Injector {
		return scriptedInjector{reconfig: func(attempt int) ReconfigOutcome {
			if attempt < faults {
				return ReconfigOutcome{Class: FaultCRC}
			}
			return ReconfigOutcome{}
		}}
	}
	eng, b := newBoard(t, cfg)
	var doneAt sim.Time
	if err := b.Reconfigure(0, image(0), func(err error) {
		if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
		doneAt = eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	d := b.ReconfigTime(image(0))
	// 4 attempts + backoffs of 10, 20, min(40,25)=25 ms.
	want := sim.Time(0).Add(4*d + 10*sim.Millisecond + 20*sim.Millisecond + 25*sim.Millisecond)
	if doneAt != want {
		t.Fatalf("completion at %v, want %v", doneAt, want)
	}
	if b.Stats().Retries != 3 || b.Stats().Recovered != 3 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

// scriptedInjector drives deterministic outcomes per attempt index.
type scriptedInjector struct {
	reconfig func(attempt int) ReconfigOutcome
}

func (s scriptedInjector) ReconfigAttempt(now sim.Time, slot, attempt int) ReconfigOutcome {
	return s.reconfig(attempt)
}
func (s scriptedInjector) Exec(now sim.Time, app string, task, slot int) ExecOutcome {
	return ExecOutcome{}
}
func (s scriptedInjector) PermanentFailures() []SlotFailure { return nil }

// A fatal fault takes the slot offline; the board keeps serving the
// remaining regions and reports the reduced usable count.
func TestFatalFaultTakesSlotOffline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NewInjector = func() Injector {
		return scriptedInjector{reconfig: func(attempt int) ReconfigOutcome {
			return ReconfigOutcome{Class: FaultFatal}
		}}
	}
	eng, b := newBoard(t, cfg)
	var gotErr error
	b.Reconfigure(4, image(4), func(err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("fatal fault reported no error")
	}
	if b.Slot(4).State != SlotOffline {
		t.Fatalf("slot state = %v, want offline", b.Slot(4).State)
	}
	if b.UsableSlots() != b.NumSlots()-1 {
		t.Fatalf("usable = %d, want %d", b.UsableSlots(), b.NumSlots()-1)
	}
	if off := b.OfflineSlots(); len(off) != 1 || off[0] != 4 {
		t.Fatalf("offline = %v", off)
	}
	if b.SlotUsable(4) || !b.SlotUsable(3) {
		t.Fatal("SlotUsable disagrees with slot state")
	}
	// Offline slots are not free and cannot be reconfigured or released.
	for _, s := range b.FreeSlots() {
		if s == 4 {
			t.Fatal("offline slot listed free")
		}
	}
	if err := b.Reconfigure(4, image(4), nil); err == nil {
		t.Fatal("reconfigure of offline slot accepted")
	}
	if err := b.Release(4); err == nil {
		t.Fatal("release of offline slot accepted")
	}
}

// SetOffline handles all slot states: free goes down immediately,
// reconfiguring fails the in-flight stream, loaded must be released
// first, and the call is idempotent.
func TestSetOffline(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	if err := b.SetOffline(0); err != nil {
		t.Fatal(err)
	}
	if b.Slot(0).State != SlotOffline {
		t.Fatalf("state = %v", b.Slot(0).State)
	}
	if err := b.SetOffline(0); err != nil {
		t.Fatalf("SetOffline not idempotent: %v", err)
	}
	// Mid-reconfiguration: the stream completes with a fatal error.
	var gotErr error
	if err := b.Reconfigure(1, image(1), func(err error) { gotErr = err }); err != nil {
		t.Fatal(err)
	}
	if err := b.SetOffline(1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if gotErr == nil {
		t.Fatal("in-flight stream on a dying slot reported no error")
	}
	if b.Slot(1).State != SlotOffline {
		t.Fatalf("state = %v, want offline", b.Slot(1).State)
	}
	// Loaded: the occupant must be released first.
	b.Reconfigure(2, image(2), nil)
	eng.Run()
	if err := b.SetOffline(2); err == nil {
		t.Fatal("SetOffline of a loaded slot accepted")
	}
	if err := b.Release(2); err != nil {
		t.Fatal(err)
	}
	if err := b.SetOffline(2); err != nil {
		t.Fatal(err)
	}
	if b.UsableSlots() != b.NumSlots()-3 {
		t.Fatalf("usable = %d", b.UsableSlots())
	}
	if b.Stats().Offline != 3 {
		t.Fatalf("offline stat = %d, want 3", b.Stats().Offline)
	}
}

func TestBoardConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	bad := []Config{
		{Slots: 0, CAPBytesPerSec: 1, SDBytesPerSec: 1},
		{Slots: 1, CAPBytesPerSec: 0, SDBytesPerSec: 1},
		{Slots: 1, CAPBytesPerSec: 1, SDBytesPerSec: 0},
		{Slots: 1, CAPBytesPerSec: 1, SDBytesPerSec: 1, FaultRate: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewBoard(eng, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestResourcesTable1(t *testing.T) {
	// The static region dominates the board; a slot's demand fits the
	// slot capacity but not vice versa.
	if !SlotResourcesMax.Fits(SlotResources) {
		t.Fatal("slot min should fit slot max")
	}
	if SlotResources.Fits(StaticResources) {
		t.Fatal("static region cannot fit in a slot")
	}
	ten := SlotResources.Scale(10)
	if ten.LUT != 96800 {
		t.Fatalf("Scale: %+v", ten)
	}
	sum := SlotResources.Add(StaticResources)
	if sum.DSP != 46+1004 {
		t.Fatalf("Add: %+v", sum)
	}
}

func TestRelocationGate(t *testing.T) {
	reloc := &bitstream.Image{
		Header: bitstream.Header{App: "app", Task: 0, Slot: bitstream.RelocatableSlot},
		Bytes:  bitstream.SlotImageBytes,
	}
	// Without relocation support, a slot-agnostic image is rejected.
	eng, b := newBoard(t, DefaultConfig())
	if err := b.Reconfigure(2, reloc, nil); err == nil {
		t.Fatal("relocatable image accepted without AllowRelocation")
	}
	// With support, it configures into any slot.
	cfg := DefaultConfig()
	cfg.AllowRelocation = true
	eng, b = newBoard(t, cfg)
	if err := b.Reconfigure(2, reloc, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if b.Slot(2).State != SlotLoaded {
		t.Fatalf("state = %v", b.Slot(2).State)
	}
	// A mismatched per-slot image is still rejected even with relocation.
	if err := b.Reconfigure(3, image(5), nil); err == nil {
		t.Fatal("mismatched per-slot image accepted")
	}
}
