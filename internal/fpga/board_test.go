package fpga

import (
	"testing"

	"nimblock/internal/bitstream"
	"nimblock/internal/sim"
)

func image(slot int) *bitstream.Image {
	return &bitstream.Image{
		Header: bitstream.Header{App: "app", Task: 0, Slot: slot},
		Bytes:  bitstream.SlotImageBytes + bitstream.HeaderBytes,
	}
}

func newBoard(t *testing.T, cfg Config) (*sim.Engine, *Board) {
	t.Helper()
	eng := sim.NewEngine()
	b, err := NewBoard(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, b
}

func TestDefaultReconfigAround80ms(t *testing.T) {
	_, b := newBoard(t, DefaultConfig())
	d := b.ReconfigTime(image(0))
	if d < 70*sim.Millisecond || d > 90*sim.Millisecond {
		t.Fatalf("reconfig time %v, want ~80ms", d)
	}
}

func TestReconfigureLifecycle(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	var doneAt sim.Time
	img := image(3)
	if err := b.Reconfigure(3, img, func(err error) {
		if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
		doneAt = eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if got := b.Slot(3).State; got != SlotReconfiguring {
		t.Fatalf("state during reconfig = %v", got)
	}
	if !b.CAPBusy() {
		t.Fatal("CAP should be busy")
	}
	eng.Run()
	if b.Slot(3).State != SlotLoaded {
		t.Fatalf("state after reconfig = %v", b.Slot(3).State)
	}
	if b.Slot(3).Image != img {
		t.Fatal("loaded image mismatch")
	}
	if doneAt != sim.Time(0).Add(b.ReconfigTime(img)) {
		t.Fatalf("completion at %v, want %v", doneAt, b.ReconfigTime(img))
	}
	if b.Stats().Reconfigurations != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestCAPSerializesRequests(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	var order []int
	var times []sim.Time
	for _, slot := range []int{0, 1, 2} {
		slot := slot
		if err := b.Reconfigure(slot, image(slot), func(error) {
			order = append(order, slot)
			times = append(times, eng.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	if b.CAPQueueLen() != 2 {
		t.Fatalf("queue length = %d, want 2", b.CAPQueueLen())
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("completion order %v", order)
	}
	d := b.ReconfigTime(image(0))
	for i, at := range times {
		want := sim.Time(0).Add(sim.Duration(i+1) * d)
		if at != want {
			t.Fatalf("completion %d at %v, want %v (serialized)", i, at, want)
		}
	}
}

func TestReconfigureValidation(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	if err := b.Reconfigure(99, image(99), nil); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if err := b.Reconfigure(0, nil, nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if err := b.Reconfigure(0, image(5), nil); err == nil {
		t.Fatal("image targeting wrong slot accepted (no relocation)")
	}
	if err := b.Reconfigure(0, image(0), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Reconfigure(0, image(0), nil); err == nil {
		t.Fatal("reconfigure of busy slot accepted")
	}
	eng.Run()
	if err := b.Reconfigure(0, image(0), nil); err == nil {
		t.Fatal("reconfigure of loaded slot accepted")
	}
}

func TestRelease(t *testing.T) {
	eng, b := newBoard(t, DefaultConfig())
	if err := b.Release(0); err == nil {
		t.Fatal("release of free slot accepted")
	}
	b.Reconfigure(0, image(0), nil)
	eng.Run()
	if err := b.Release(0); err != nil {
		t.Fatal(err)
	}
	if b.Slot(0).State != SlotFree || b.Slot(0).Image != nil {
		t.Fatal("release did not free slot")
	}
	if len(b.FreeSlots()) != b.NumSlots() {
		t.Fatalf("FreeSlots = %v", b.FreeSlots())
	}
}

func TestFaultInjectionRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultRate = 0.5
	cfg.FaultSeed = 42
	cfg.MaxRetries = 10
	eng, b := newBoard(t, cfg)
	ok := false
	b.Reconfigure(0, image(0), func(err error) {
		if err != nil {
			t.Errorf("reconfig failed despite retries: %v", err)
		}
		ok = true
	})
	eng.Run()
	if !ok {
		t.Fatal("callback never invoked")
	}
	if b.Slot(0).State != SlotLoaded {
		t.Fatalf("slot state %v after retried reconfig", b.Slot(0).State)
	}
}

func TestFaultInjectionExhaustsRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultRate = 0.999999
	cfg.FaultSeed = 7
	cfg.MaxRetries = 2
	eng, b := newBoard(t, cfg)
	var gotErr error
	called := false
	b.Reconfigure(0, image(0), func(err error) { gotErr = err; called = true })
	eng.Run()
	if !called || gotErr == nil {
		t.Fatal("expected an unrecoverable reconfiguration error")
	}
	if b.Slot(0).State != SlotFree {
		t.Fatalf("failed slot should be freed, state=%v", b.Slot(0).State)
	}
	if b.Stats().Faults != 3 {
		t.Fatalf("faults = %d, want 3 (initial + 2 retries)", b.Stats().Faults)
	}
	// The CAP must recover for subsequent work.
	ok := false
	cfg2 := b.cfg
	_ = cfg2
	b.cfg.FaultRate = 0
	b.Reconfigure(1, image(1), func(err error) { ok = err == nil })
	eng.Run()
	if !ok {
		t.Fatal("CAP did not recover after a failed reconfiguration")
	}
}

func TestBoardConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	bad := []Config{
		{Slots: 0, CAPBytesPerSec: 1, SDBytesPerSec: 1},
		{Slots: 1, CAPBytesPerSec: 0, SDBytesPerSec: 1},
		{Slots: 1, CAPBytesPerSec: 1, SDBytesPerSec: 0},
		{Slots: 1, CAPBytesPerSec: 1, SDBytesPerSec: 1, FaultRate: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewBoard(eng, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestResourcesTable1(t *testing.T) {
	// The static region dominates the board; a slot's demand fits the
	// slot capacity but not vice versa.
	if !SlotResourcesMax.Fits(SlotResources) {
		t.Fatal("slot min should fit slot max")
	}
	if SlotResources.Fits(StaticResources) {
		t.Fatal("static region cannot fit in a slot")
	}
	ten := SlotResources.Scale(10)
	if ten.LUT != 96800 {
		t.Fatalf("Scale: %+v", ten)
	}
	sum := SlotResources.Add(StaticResources)
	if sum.DSP != 46+1004 {
		t.Fatalf("Add: %+v", sum)
	}
}

func TestRelocationGate(t *testing.T) {
	reloc := &bitstream.Image{
		Header: bitstream.Header{App: "app", Task: 0, Slot: bitstream.RelocatableSlot},
		Bytes:  bitstream.SlotImageBytes,
	}
	// Without relocation support, a slot-agnostic image is rejected.
	eng, b := newBoard(t, DefaultConfig())
	if err := b.Reconfigure(2, reloc, nil); err == nil {
		t.Fatal("relocatable image accepted without AllowRelocation")
	}
	// With support, it configures into any slot.
	cfg := DefaultConfig()
	cfg.AllowRelocation = true
	eng, b = newBoard(t, cfg)
	if err := b.Reconfigure(2, reloc, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if b.Slot(2).State != SlotLoaded {
		t.Fatalf("state = %v", b.Slot(2).State)
	}
	// A mismatched per-slot image is still rejected even with relocation.
	if err := b.Reconfigure(3, image(5), nil); err == nil {
		t.Fatal("mismatched per-slot image accepted")
	}
}
