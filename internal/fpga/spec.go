package fpga

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec is a per-board capability description: how many slots the board
// exposes, how fast its reconfiguration pipeline moves bitstreams, how
// its fabric speed compares to the reference platform, and what each
// slot costs in power. It is the serializable face of the heterogeneity
// fields on Config — front-ends parse one Spec per board and Apply it
// over a base configuration.
type Spec struct {
	// Slots is the number of reconfigurable regions (must be >= 1).
	Slots int
	// CAPBytesPerSec and SDBytesPerSec are the reconfiguration pipeline
	// bandwidths; zero keeps the base config's value.
	CAPBytesPerSec float64
	SDBytesPerSec  float64
	// LatencyScale stretches (>1) or shrinks (<1) task compute latency
	// on this board; zero keeps the base config's value (default 1).
	LatencyScale float64
	// StaticWattsPerSlot and ActiveWattsPerSlot parameterize the power
	// model (see Board.Energy).
	StaticWattsPerSlot float64
	ActiveWattsPerSlot float64
}

// specKeys maps the textual spec keys to their meaning; kept in one
// place so ParseSpec and String stay in lockstep.
const specKeySet = "slots, cap, sd, scale, static, active"

// ParseSpec parses a textual board spec of whitespace- or
// comma-separated key=value tokens, e.g.
//
//	"slots=8 cap=117.3e6 sd=469e6 scale=1.25 static=2.5 active=1.5"
//
// Unknown keys, duplicate keys, and malformed numbers are errors, and
// the assembled spec must pass Validate.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	seen := map[string]bool{}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == ',' })
	if len(fields) == 0 {
		return Spec{}, fmt.Errorf("fpga: empty board spec")
	}
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fpga: board spec token %q is not key=value", f)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("fpga: duplicate board spec key %q", key)
		}
		seen[key] = true
		if key == "slots" {
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, fmt.Errorf("fpga: board spec slots=%q: %v", val, err)
			}
			sp.Slots = n
			continue
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fpga: board spec %s=%q: %v", key, val, err)
		}
		switch key {
		case "cap":
			sp.CAPBytesPerSec = x
		case "sd":
			sp.SDBytesPerSec = x
		case "scale":
			sp.LatencyScale = x
		case "static":
			sp.StaticWattsPerSlot = x
		case "active":
			sp.ActiveWattsPerSlot = x
		default:
			return Spec{}, fmt.Errorf("fpga: unknown board spec key %q (want one of %s)", key, specKeySet)
		}
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// MaxSpecSlots bounds the slot count a board spec may declare. Specs
// arrive from external text (flags, config files), and per-slot state
// is allocated eagerly, so an absurd count must fail validation rather
// than exhaust memory; 1024 is far beyond any real partial-reconfig
// overlay.
const MaxSpecSlots = 1024

// Validate rejects physically meaningless specs: slot counts outside
// [1, MaxSpecSlots], NaN/Inf or negative power, non-positive or
// non-finite scale factors, and non-positive bandwidths. Zero is
// allowed for every field except Slots, meaning "inherit from the base
// config".
func (sp Spec) Validate() error {
	if sp.Slots < 1 {
		return fmt.Errorf("fpga: board spec needs at least one slot, got %d", sp.Slots)
	}
	if sp.Slots > MaxSpecSlots {
		return fmt.Errorf("fpga: board spec slots %d exceeds the %d maximum", sp.Slots, MaxSpecSlots)
	}
	if bad(sp.CAPBytesPerSec) || sp.CAPBytesPerSec < 0 {
		return fmt.Errorf("fpga: board spec CAP bandwidth %v must be positive and finite", sp.CAPBytesPerSec)
	}
	if bad(sp.SDBytesPerSec) || sp.SDBytesPerSec < 0 {
		return fmt.Errorf("fpga: board spec SD bandwidth %v must be positive and finite", sp.SDBytesPerSec)
	}
	if bad(sp.LatencyScale) || sp.LatencyScale < 0 {
		return fmt.Errorf("fpga: board spec scale %v must be positive and finite", sp.LatencyScale)
	}
	if bad(sp.StaticWattsPerSlot) || sp.StaticWattsPerSlot < 0 {
		return fmt.Errorf("fpga: board spec static power %v must be non-negative and finite", sp.StaticWattsPerSlot)
	}
	if bad(sp.ActiveWattsPerSlot) || sp.ActiveWattsPerSlot < 0 {
		return fmt.Errorf("fpga: board spec active power %v must be non-negative and finite", sp.ActiveWattsPerSlot)
	}
	return nil
}

func bad(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }

// Apply overlays the spec on a base board configuration: Slots always
// applies; every other field applies only when non-zero, so a sparse
// spec inherits the platform defaults.
func (sp Spec) Apply(cfg Config) Config {
	cfg.Slots = sp.Slots
	if sp.CAPBytesPerSec != 0 {
		cfg.CAPBytesPerSec = sp.CAPBytesPerSec
	}
	if sp.SDBytesPerSec != 0 {
		cfg.SDBytesPerSec = sp.SDBytesPerSec
	}
	if sp.LatencyScale != 0 {
		cfg.LatencyScale = sp.LatencyScale
	}
	if sp.StaticWattsPerSlot != 0 {
		cfg.StaticWattsPerSlot = sp.StaticWattsPerSlot
	}
	if sp.ActiveWattsPerSlot != 0 {
		cfg.ActiveWattsPerSlot = sp.ActiveWattsPerSlot
	}
	return cfg
}

// String renders the spec in the syntax ParseSpec accepts, omitting
// zero (inherited) fields.
func (sp Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "slots=%d", sp.Slots)
	emit := func(key string, v float64) {
		if v != 0 {
			fmt.Fprintf(&b, " %s=%s", key, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	emit("cap", sp.CAPBytesPerSec)
	emit("sd", sp.SDBytesPerSec)
	emit("scale", sp.LatencyScale)
	emit("static", sp.StaticWattsPerSlot)
	emit("active", sp.ActiveWattsPerSlot)
	return b.String()
}
