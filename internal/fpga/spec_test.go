package fpga

import (
	"math"
	"testing"

	"nimblock/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "slots=8 cap=1.173e+08 sd=4.69e+08 scale=1.25 static=2.5 active=1.5"
	sp, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Slots != 8 || sp.LatencyScale != 1.25 || sp.StaticWattsPerSlot != 2.5 || sp.ActiveWattsPerSlot != 1.5 {
		t.Fatalf("parsed %+v", sp)
	}
	again, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("round trip of %q: %v", sp.String(), err)
	}
	if again != sp {
		t.Fatalf("round trip %+v != %+v", again, sp)
	}
}

func TestParseSpecCommaSeparated(t *testing.T) {
	sp, err := ParseSpec("slots=4,scale=2")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Slots != 4 || sp.LatencyScale != 2 {
		t.Fatalf("parsed %+v", sp)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"slots=0",
		"slots=-3",
		"scale=1",            // missing slots
		"slots=4 scale=-1",
		"slots=4 scale=NaN",
		"slots=4 scale=Inf",
		"slots=4 static=NaN",
		"slots=4 static=-2",
		"slots=4 active=-0.5",
		"slots=4 cap=-1",
		"slots=4 bogus=1",
		"slots=4 slots=5",
		"slots=x",
		"slots",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", s)
		}
	}
}

func TestSpecApplyInheritsZeroFields(t *testing.T) {
	base := DefaultConfig()
	cfg := Spec{Slots: 6, LatencyScale: 1.5}.Apply(base)
	if cfg.Slots != 6 || cfg.LatencyScale != 1.5 {
		t.Fatalf("applied %+v", cfg)
	}
	if cfg.CAPBytesPerSec != base.CAPBytesPerSec || cfg.SDBytesPerSec != base.SDBytesPerSec {
		t.Fatalf("bandwidths not inherited: %+v", cfg)
	}
	if cfg.StaticWattsPerSlot != 0 || cfg.ActiveWattsPerSlot != 0 {
		t.Fatalf("power not inherited: %+v", cfg)
	}
}

func TestNewBoardRejectsBadPower(t *testing.T) {
	eng := sim.NewEngine()
	for _, cfg := range []Config{
		func() Config { c := DefaultConfig(); c.LatencyScale = -1; return c }(),
		func() Config { c := DefaultConfig(); c.LatencyScale = math.NaN(); return c }(),
		func() Config { c := DefaultConfig(); c.StaticWattsPerSlot = math.NaN(); return c }(),
		func() Config { c := DefaultConfig(); c.StaticWattsPerSlot = -2; return c }(),
		func() Config { c := DefaultConfig(); c.ActiveWattsPerSlot = math.Inf(1); return c }(),
	} {
		if _, err := NewBoard(eng, cfg); err == nil {
			t.Errorf("NewBoard accepted %+v, want error", cfg)
		}
	}
}

func TestBoardEnergyIntegrals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StaticWattsPerSlot = 2
	cfg.ActiveWattsPerSlot = 1
	eng, b := newBoard(t, cfg)
	img := image(0)
	if err := b.Reconfigure(0, img, func(err error) {
		if err != nil {
			t.Errorf("reconfigure: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	occupied := b.ReconfigTime(img) // slot 0 occupied since t=0
	hold := sim.Second
	eng.RunUntil(eng.Now().Add(hold))
	occupied += hold
	if got := b.OccupiedSlotTime(); got != occupied {
		t.Fatalf("occupied slot time %v, want %v", got, occupied)
	}
	wall := sim.Duration(eng.Now())
	if got := b.UsableSlotTime(); got != wall*sim.Duration(cfg.Slots) {
		t.Fatalf("usable slot time %v, want %v", got, wall*sim.Duration(cfg.Slots))
	}
	want := 2*float64(cfg.Slots)*wall.Seconds() + 1*occupied.Seconds()
	if got := b.Energy(); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("energy %v J, want %v J", got, want)
	}
	if err := b.Release(0); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(eng.Now().Add(hold))
	if got := b.OccupiedSlotTime(); got != occupied {
		t.Fatalf("occupied slot time after release %v, want %v (unchanged)", got, occupied)
	}
}

func TestBoardEnergyUsableDropsOffline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StaticWattsPerSlot = 1
	eng, b := newBoard(t, cfg)
	eng.RunUntil(sim.Time(sim.Second))
	if err := b.SetOffline(3); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(sim.Time(2 * sim.Second))
	want := sim.Duration(cfg.Slots)*sim.Second + sim.Duration(cfg.Slots-1)*sim.Second
	if got := b.UsableSlotTime(); got != want {
		t.Fatalf("usable slot time %v, want %v", got, want)
	}
}

func TestLatencyScaleDefault(t *testing.T) {
	_, b := newBoard(t, DefaultConfig())
	if b.LatencyScale() != 1 {
		t.Fatalf("default latency scale %v, want 1", b.LatencyScale())
	}
	cfg := DefaultConfig()
	cfg.LatencyScale = 0.5
	_, b = newBoard(t, cfg)
	if b.LatencyScale() != 0.5 {
		t.Fatalf("latency scale %v, want 0.5", b.LatencyScale())
	}
}

// FuzzBoardSpec drives the parse/validate/apply path: any spec the
// parser accepts must validate, round-trip through String, and build a
// board without error.
func FuzzBoardSpec(f *testing.F) {
	f.Add("slots=8 cap=117.3e6 sd=469e6 scale=1.25 static=2.5 active=1.5")
	f.Add("slots=1")
	f.Add("slots=10,scale=0.5")
	f.Add("slots=0")
	f.Add("slots=4 static=NaN")
	f.Add("slots=4 scale=-1")
	f.Add("slots=2 active=1e308 static=1e308")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		if sp.Slots < 1 {
			t.Fatalf("ParseSpec(%q) accepted %d slots", s, sp.Slots)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted but Validate failed: %v", s, err)
		}
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("round trip of %q (from %q): %v", sp.String(), s, err)
		}
		if again != sp {
			t.Fatalf("round trip %+v != %+v (input %q)", again, sp, s)
		}
		cfg := sp.Apply(DefaultConfig())
		if _, err := NewBoard(sim.NewEngine(), cfg); err != nil {
			t.Fatalf("NewBoard rejected applied spec %q: %v", s, err)
		}
	})
}
