// Package fpga simulates the Nimblock overlay on the ZCU106 board: a
// static region plus uniform, independently reconfigurable slots driven by
// a single configuration access port (CAP).
//
// The simulation exposes exactly the surface the hypervisor observes on
// real hardware — slot occupancy, serialized reconfiguration with ~80 ms
// latency, and completion callbacks — while the user-logic compute itself
// is advanced in virtual time by the hypervisor.
package fpga

// Resources counts fabric primitives, mirroring Table 1 of the paper.
type Resources struct {
	DSP    int
	LUT    int
	FF     int
	Carry  int
	RAMB18 int
	RAMB36 int
	IOBuf  int
}

// SlotResources is the capacity of one reconfigurable slot. Slots on the
// ZCU106 overlay vary slightly with floorplanning; we model the lower
// bound of the ranges in Table 1, the conservative capacity every slot
// can guarantee.
var SlotResources = Resources{
	DSP:    46,
	LUT:    9680,
	FF:     19360,
	Carry:  1210,
	RAMB18: 44,
	RAMB36: 22,
	IOBuf:  1908,
}

// SlotResourcesMax is the upper bound of the per-slot ranges in Table 1.
var SlotResourcesMax = Resources{
	DSP:    92,
	LUT:    12960,
	FF:     22880,
	Carry:  1620,
	RAMB18: 46,
	RAMB36: 23,
	IOBuf:  2343,
}

// StaticResources is the static region utilization from Table 1: the
// interconnect, decoupling logic, and PS attachment programmed once at
// system start-up.
var StaticResources = Resources{
	DSP:    1004,
	LUT:    122560,
	FF:     245120,
	Carry:  15320,
	RAMB18: 172,
	RAMB36: 86,
	IOBuf:  24803,
}

// Fits reports whether a demand fits within capacity c.
func (c Resources) Fits(demand Resources) bool {
	return demand.DSP <= c.DSP &&
		demand.LUT <= c.LUT &&
		demand.FF <= c.FF &&
		demand.Carry <= c.Carry &&
		demand.RAMB18 <= c.RAMB18 &&
		demand.RAMB36 <= c.RAMB36 &&
		demand.IOBuf <= c.IOBuf
}

// Add returns the component-wise sum of two resource vectors.
func (c Resources) Add(o Resources) Resources {
	return Resources{
		DSP:    c.DSP + o.DSP,
		LUT:    c.LUT + o.LUT,
		FF:     c.FF + o.FF,
		Carry:  c.Carry + o.Carry,
		RAMB18: c.RAMB18 + o.RAMB18,
		RAMB36: c.RAMB36 + o.RAMB36,
		IOBuf:  c.IOBuf + o.IOBuf,
	}
}

// Scale returns the resource vector multiplied by n.
func (c Resources) Scale(n int) Resources {
	return Resources{
		DSP:    c.DSP * n,
		LUT:    c.LUT * n,
		FF:     c.FF * n,
		Carry:  c.Carry * n,
		RAMB18: c.RAMB18 * n,
		RAMB36: c.RAMB36 * n,
		IOBuf:  c.IOBuf * n,
	}
}
