package fpga

import (
	"testing"

	"nimblock/internal/sim"
)

// Energy accounting rides every slot transition whether or not a power
// model is configured, so it must be free: accruing the occupancy and
// usable integrals is pure counter arithmetic with zero allocations.
// This is the energy counterpart of hv's TestDisabledObserverZeroAlloc.
func TestEnergyAccountingZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	b, err := NewBoard(eng, DefaultConfig()) // no power model configured
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		b.accrue()
		_ = b.OccupiedSlotTime()
		_ = b.UsableSlotTime()
		_ = b.Energy()
	}); n != 0 {
		t.Fatalf("energy accounting allocates %v per transition, want 0", n)
	}
}
