package fpga

import (
	"testing"

	"nimblock/internal/sim"
)

// BenchmarkReconfigurationPipeline measures filling and draining the CAP
// queue for a full board.
func BenchmarkReconfigurationPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		board, err := NewBoard(eng, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < board.NumSlots(); s++ {
			if err := board.Reconfigure(s, image(s), nil); err != nil {
				b.Fatal(err)
			}
		}
		eng.Run()
		for s := 0; s < board.NumSlots(); s++ {
			if err := board.Release(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFreeSlots(b *testing.B) {
	eng := sim.NewEngine()
	board, _ := NewBoard(eng, DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(board.FreeSlots()) != 10 {
			b.Fatal("bad free count")
		}
	}
}
