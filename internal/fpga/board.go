package fpga

import (
	"fmt"
	"math/rand"

	"nimblock/internal/bitstream"
	"nimblock/internal/sim"
)

// SlotState is the electrical state of a reconfigurable slot.
type SlotState int

const (
	// SlotFree means no user logic is configured (or it has been
	// decoupled and released).
	SlotFree SlotState = iota
	// SlotReconfiguring means the CAP is streaming a partial bitstream
	// into this region; decoupling isolates it from the interconnect.
	SlotReconfiguring
	// SlotLoaded means user logic is configured and attached to the
	// memory-mapped control and data interfaces.
	SlotLoaded
)

// String names the state for traces.
func (s SlotState) String() string {
	switch s {
	case SlotFree:
		return "free"
	case SlotReconfiguring:
		return "reconfiguring"
	case SlotLoaded:
		return "loaded"
	default:
		return fmt.Sprintf("SlotState(%d)", int(s))
	}
}

// Slot is one reconfigurable region.
type Slot struct {
	ID    int
	State SlotState
	// Image is the partial bitstream currently configured (nil when free
	// or while the first reconfiguration is in flight).
	Image *bitstream.Image
}

// Config sets the physical parameters of the simulated board.
type Config struct {
	// Slots is the number of reconfigurable regions (paper: 10).
	Slots int
	// CAPBytesPerSec is the configuration port bandwidth. The default
	// moves one 7.5 MB slot image in ~80 ms.
	CAPBytesPerSec float64
	// SDBytesPerSec is the SD-card read bandwidth for loading bitstreams
	// into DDR before configuration. The ARM core performs the load and
	// the CAP write back-to-back, so both serialize on the single
	// reconfiguration pipeline.
	SDBytesPerSec float64
	// FaultRate, if positive, is the probability that a reconfiguration
	// attempt fails CRC and must be retried (fault injection for tests).
	FaultRate float64
	// FaultSeed seeds the fault process.
	FaultSeed int64
	// MaxRetries bounds reconfiguration retries before reporting an
	// error (0 means a single attempt).
	MaxRetries int
	// AllowRelocation accepts slot-agnostic partial bitstreams
	// (Header.Slot < 0): the loader patches frame addresses for the
	// target slot before streaming.
	AllowRelocation bool
}

// DefaultConfig reproduces the evaluation platform: 10 slots and ~80 ms
// partial reconfiguration (SD load ~16 ms + CAP write ~64 ms).
func DefaultConfig() Config {
	return Config{
		Slots:          10,
		CAPBytesPerSec: 117.3e6, // ~64 ms for a slot image
		SDBytesPerSec:  469.0e6, // ~16 ms for a slot image
		MaxRetries:     3,
	}
}

// Stats aggregates board-level counters.
type Stats struct {
	Reconfigurations int
	ReconfigTime     sim.Duration
	Faults           int
	Releases         int
}

// reconfigRequest is one queued CAP operation.
type reconfigRequest struct {
	slot   int
	img    *bitstream.Image
	onDone func(error)
	tries  int
}

// Board is the simulated FPGA. It is driven entirely by the simulation
// engine: Reconfigure enqueues work on the single CAP, and completion is
// delivered by callback in virtual time.
type Board struct {
	eng   *sim.Engine
	cfg   Config
	slots []*Slot
	queue []reconfigRequest
	busy  bool
	rng   *rand.Rand
	stats Stats
}

// NewBoard programs the static region and returns a board with all slots
// free.
func NewBoard(eng *sim.Engine, cfg Config) (*Board, error) {
	if cfg.Slots < 1 {
		return nil, fmt.Errorf("fpga: board needs at least one slot, got %d", cfg.Slots)
	}
	if cfg.CAPBytesPerSec <= 0 {
		return nil, fmt.Errorf("fpga: CAP bandwidth must be positive")
	}
	if cfg.SDBytesPerSec <= 0 {
		return nil, fmt.Errorf("fpga: SD bandwidth must be positive")
	}
	if cfg.FaultRate < 0 || cfg.FaultRate >= 1 {
		return nil, fmt.Errorf("fpga: fault rate %v outside [0,1)", cfg.FaultRate)
	}
	b := &Board{
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.FaultSeed)),
	}
	for i := 0; i < cfg.Slots; i++ {
		b.slots = append(b.slots, &Slot{ID: i})
	}
	return b, nil
}

// NumSlots reports the number of reconfigurable regions.
func (b *Board) NumSlots() int { return len(b.slots) }

// Slot returns a view of slot i. Callers must not mutate it.
func (b *Board) Slot(i int) *Slot { return b.slots[i] }

// CAPBusy reports whether a reconfiguration is currently streaming.
func (b *Board) CAPBusy() bool { return b.busy }

// CAPQueueLen reports the number of reconfigurations waiting behind the
// active one.
func (b *Board) CAPQueueLen() int { return len(b.queue) }

// Stats returns a copy of the board counters.
func (b *Board) Stats() Stats { return b.stats }

// ReconfigTime reports how long one configuration of the given image
// takes end to end (SD load + CAP write), excluding queueing.
func (b *Board) ReconfigTime(img *bitstream.Image) sim.Duration {
	load := img.LoadTime(b.cfg.SDBytesPerSec)
	write := sim.Seconds(float64(img.Bytes) / b.cfg.CAPBytesPerSec)
	return load + write
}

// Reconfigure requests that the given image be configured into the slot.
// The slot must be free; it transitions to SlotReconfiguring immediately
// (the region is decoupled) and to SlotLoaded when the CAP finishes, at
// which point onDone is invoked. Requests are served strictly in order —
// only one region can be configured at a time on a single device.
func (b *Board) Reconfigure(slot int, img *bitstream.Image, onDone func(error)) error {
	if slot < 0 || slot >= len(b.slots) {
		return fmt.Errorf("fpga: slot %d out of range [0,%d)", slot, len(b.slots))
	}
	if img == nil {
		return fmt.Errorf("fpga: nil bitstream for slot %d", slot)
	}
	if img.Header.Slot != slot {
		if img.Header.Slot >= 0 || !b.cfg.AllowRelocation {
			return fmt.Errorf("fpga: bitstream %s targets slot %d, not %d (no relocation support)", img.ID(), img.Header.Slot, slot)
		}
	}
	s := b.slots[slot]
	if s.State != SlotFree {
		return fmt.Errorf("fpga: slot %d is %v, cannot reconfigure", slot, s.State)
	}
	s.State = SlotReconfiguring
	s.Image = nil
	b.queue = append(b.queue, reconfigRequest{slot: slot, img: img, onDone: onDone})
	b.pump()
	return nil
}

// pump starts the next queued reconfiguration if the CAP is idle.
func (b *Board) pump() {
	if b.busy || len(b.queue) == 0 {
		return
	}
	req := b.queue[0]
	b.queue = b.queue[1:]
	b.busy = true
	d := b.ReconfigTime(req.img)
	b.eng.After(d, func() { b.finish(req, d) })
}

// finish completes (or retries) the active reconfiguration.
func (b *Board) finish(req reconfigRequest, d sim.Duration) {
	b.stats.ReconfigTime += d
	if b.cfg.FaultRate > 0 && b.rng.Float64() < b.cfg.FaultRate {
		b.stats.Faults++
		if req.tries < b.cfg.MaxRetries {
			req.tries++
			// Retry: stream the image again; CAP stays busy.
			b.eng.After(d, func() { b.finish(req, d) })
			return
		}
		// Unrecoverable: free the slot and report the error.
		s := b.slots[req.slot]
		s.State = SlotFree
		s.Image = nil
		b.busy = false
		b.pump()
		if req.onDone != nil {
			req.onDone(fmt.Errorf("fpga: reconfiguration of slot %d failed after %d retries", req.slot, req.tries))
		}
		return
	}
	b.stats.Reconfigurations++
	s := b.slots[req.slot]
	s.State = SlotLoaded
	s.Image = req.img
	b.busy = false
	b.pump()
	if req.onDone != nil {
		req.onDone(nil)
	}
}

// Release decouples and frees a loaded slot. The hypervisor calls this
// when a task completes or is preempted at a batch boundary.
func (b *Board) Release(slot int) error {
	if slot < 0 || slot >= len(b.slots) {
		return fmt.Errorf("fpga: slot %d out of range", slot)
	}
	s := b.slots[slot]
	if s.State != SlotLoaded {
		return fmt.Errorf("fpga: slot %d is %v, cannot release", slot, s.State)
	}
	s.State = SlotFree
	s.Image = nil
	b.stats.Releases++
	return nil
}

// FreeSlots lists the IDs of slots currently free.
func (b *Board) FreeSlots() []int {
	var free []int
	for _, s := range b.slots {
		if s.State == SlotFree {
			free = append(free, s.ID)
		}
	}
	return free
}
