package fpga

import (
	"fmt"
	"math"

	"nimblock/internal/bitstream"
	"nimblock/internal/sim"
)

// SlotState is the electrical state of a reconfigurable slot.
type SlotState int

const (
	// SlotFree means no user logic is configured (or it has been
	// decoupled and released).
	SlotFree SlotState = iota
	// SlotReconfiguring means the CAP is streaming a partial bitstream
	// into this region; decoupling isolates it from the interconnect.
	SlotReconfiguring
	// SlotLoaded means user logic is configured and attached to the
	// memory-mapped control and data interfaces.
	SlotLoaded
	// SlotOffline means the region has permanently left service — a
	// fatal hardware fault or a hypervisor quarantine. It is never free
	// and never schedulable again.
	SlotOffline
)

// String names the state for traces.
func (s SlotState) String() string {
	switch s {
	case SlotFree:
		return "free"
	case SlotReconfiguring:
		return "reconfiguring"
	case SlotLoaded:
		return "loaded"
	case SlotOffline:
		return "offline"
	default:
		return fmt.Sprintf("SlotState(%d)", int(s))
	}
}

// Slot is one reconfigurable region.
type Slot struct {
	ID    int
	State SlotState
	// Image is the partial bitstream currently configured (nil when free
	// or while the first reconfiguration is in flight).
	Image *bitstream.Image
}

// Config sets the physical parameters of the simulated board.
type Config struct {
	// Slots is the number of reconfigurable regions (paper: 10).
	Slots int
	// CAPBytesPerSec is the configuration port bandwidth. The default
	// moves one 7.5 MB slot image in ~80 ms.
	CAPBytesPerSec float64
	// SDBytesPerSec is the SD-card read bandwidth for loading bitstreams
	// into DDR before configuration. The ARM core performs the load and
	// the CAP write back-to-back, so both serialize on the single
	// reconfiguration pipeline.
	SDBytesPerSec float64
	// FaultRate, if positive, is the probability that a reconfiguration
	// attempt fails CRC and must be retried — the convenience knob for a
	// uniform-random fault process. Ignored when NewInjector is set;
	// richer fault plans live in internal/faults.
	FaultRate float64
	// FaultSeed seeds the fault process.
	FaultSeed int64
	// NewInjector, when non-nil, constructs the fault injector for this
	// board instance. A factory (rather than an instance) keeps replayed
	// runs independent: every board gets a fresh, identically seeded
	// injector.
	NewInjector func() Injector
	// MaxRetries bounds reconfiguration retries before reporting an
	// error (0 means a single attempt).
	MaxRetries int
	// RetryBackoff is the base delay before the first retry of a faulted
	// reconfiguration; each further retry doubles it (capped by
	// RetryBackoffCap). Zero retries immediately.
	RetryBackoff sim.Duration
	// RetryBackoffCap bounds the exponential backoff. Zero with a
	// positive RetryBackoff means uncapped.
	RetryBackoffCap sim.Duration
	// OnFault, when non-nil, is invoked for every injected
	// reconfiguration fault before the board mutates slot state — the
	// hypervisor uses it to trace retries and drive quarantine.
	OnFault func(FaultEvent)
	// AllowRelocation accepts slot-agnostic partial bitstreams
	// (Header.Slot < 0): the loader patches frame addresses for the
	// target slot before streaming.
	AllowRelocation bool
	// LatencyScale stretches (>1, a slower fabric) or shrinks (<1, a
	// faster one) every task's compute latency on this board relative to
	// the reference platform. Zero means 1 (the homogeneous default).
	LatencyScale float64
	// StaticWattsPerSlot is the leakage + clock-tree power one usable
	// slot draws whether or not logic is configured. Zero disables
	// energy accounting for the static term.
	StaticWattsPerSlot float64
	// ActiveWattsPerSlot is the additional dynamic power a slot draws
	// while occupied (reconfiguring or loaded). Zero disables the
	// active term.
	ActiveWattsPerSlot float64
}

// DefaultConfig reproduces the evaluation platform: 10 slots and ~80 ms
// partial reconfiguration (SD load ~16 ms + CAP write ~64 ms).
func DefaultConfig() Config {
	return Config{
		Slots:           10,
		CAPBytesPerSec:  117.3e6, // ~64 ms for a slot image
		SDBytesPerSec:   469.0e6, // ~16 ms for a slot image
		MaxRetries:      3,
		RetryBackoff:    5 * sim.Millisecond,
		RetryBackoffCap: 80 * sim.Millisecond,
	}
}

// Stats aggregates board-level counters.
type Stats struct {
	Reconfigurations int
	ReconfigTime     sim.Duration
	Faults           int
	// Retries counts faulted attempts that were streamed again.
	Retries int
	// Recovered counts faults absorbed by retrying: every fault on a
	// request that eventually configured successfully.
	Recovered int
	// Offline counts slots permanently removed from service.
	Offline  int
	Releases int
	// StateTransfers counts checkpoint save/restore transfers completed
	// through the CAP; StateTransferTime is their total streaming time
	// (kept apart from ReconfigTime so CAP utilization can be split).
	StateTransfers    int
	StateTransferTime sim.Duration
}

// SlotStats aggregates per-slot health counters; the hypervisor's
// quarantine policy keys off Faults.
type SlotStats struct {
	Reconfigurations int
	Faults           int
	Retries          int
}

// reconfigRequest is one queued CAP operation: a reconfiguration
// (img != nil) or a checkpoint state transfer (xferBytes > 0).
type reconfigRequest struct {
	slot      int
	img       *bitstream.Image
	onDone    func(error)
	tries     int
	xferBytes int64
}

// Board is the simulated FPGA. It is driven entirely by the simulation
// engine: Reconfigure enqueues work on the single CAP, and completion is
// delivered by callback in virtual time.
type Board struct {
	eng         *sim.Engine
	cfg         Config
	slots       []*Slot
	queue       []reconfigRequest
	busy        bool
	inj         Injector
	stats       Stats
	slotStats   []SlotStats
	failPending []bool // permanent failure arrived while reconfiguring
	freeScratch []int  // reused by FreeSlots

	// Energy accounting: piecewise-constant integrals of the occupied
	// (reconfiguring or loaded) and usable (not offline) slot counts over
	// virtual time, accrued lazily at every state transition. Pure
	// counter arithmetic — no allocation, no per-event cost when the
	// power model is unconfigured.
	occupied       int
	usable         int
	lastAcc        sim.Time
	occSlotTime    sim.Duration
	usableSlotTime sim.Duration
}

// NewBoard programs the static region and returns a board with all slots
// free.
func NewBoard(eng *sim.Engine, cfg Config) (*Board, error) {
	if cfg.Slots < 1 {
		return nil, fmt.Errorf("fpga: board needs at least one slot, got %d", cfg.Slots)
	}
	if cfg.CAPBytesPerSec <= 0 {
		return nil, fmt.Errorf("fpga: CAP bandwidth must be positive")
	}
	if cfg.SDBytesPerSec <= 0 {
		return nil, fmt.Errorf("fpga: SD bandwidth must be positive")
	}
	if cfg.FaultRate < 0 || cfg.FaultRate > 1 {
		return nil, fmt.Errorf("fpga: fault rate %v outside [0,1]", cfg.FaultRate)
	}
	if cfg.RetryBackoff < 0 || cfg.RetryBackoffCap < 0 {
		return nil, fmt.Errorf("fpga: negative retry backoff")
	}
	if cfg.LatencyScale < 0 || math.IsNaN(cfg.LatencyScale) || math.IsInf(cfg.LatencyScale, 0) {
		return nil, fmt.Errorf("fpga: latency scale %v must be positive and finite (or zero for the default)", cfg.LatencyScale)
	}
	if cfg.StaticWattsPerSlot < 0 || math.IsNaN(cfg.StaticWattsPerSlot) || math.IsInf(cfg.StaticWattsPerSlot, 0) {
		return nil, fmt.Errorf("fpga: static power %v watts/slot must be non-negative and finite", cfg.StaticWattsPerSlot)
	}
	if cfg.ActiveWattsPerSlot < 0 || math.IsNaN(cfg.ActiveWattsPerSlot) || math.IsInf(cfg.ActiveWattsPerSlot, 0) {
		return nil, fmt.Errorf("fpga: active power %v watts/slot must be non-negative and finite", cfg.ActiveWattsPerSlot)
	}
	b := &Board{
		eng:         eng,
		cfg:         cfg,
		slotStats:   make([]SlotStats, cfg.Slots),
		failPending: make([]bool, cfg.Slots),
		usable:      cfg.Slots,
		lastAcc:     eng.Now(),
	}
	switch {
	case cfg.NewInjector != nil:
		b.inj = cfg.NewInjector()
	case cfg.FaultRate > 0:
		b.inj = NewUniformInjector(cfg.FaultRate, cfg.FaultSeed)
	}
	for i := 0; i < cfg.Slots; i++ {
		b.slots = append(b.slots, &Slot{ID: i})
	}
	return b, nil
}

// Injector returns the active fault injector, or nil on a healthy board.
func (b *Board) Injector() Injector { return b.inj }

// accrue folds the time since the last slot-count change into the
// occupied- and usable-slot integrals. It must run immediately before
// every transition that changes either count.
func (b *Board) accrue() {
	now := b.eng.Now()
	if d := now.Sub(b.lastAcc); d > 0 {
		b.occSlotTime += d * sim.Duration(b.occupied)
		b.usableSlotTime += d * sim.Duration(b.usable)
	}
	b.lastAcc = now
}

// OccupiedSlotTime is the integral over virtual time of the number of
// occupied (reconfiguring or loaded) slots — the active-power term of
// the energy model — accrued up to the engine's current time.
func (b *Board) OccupiedSlotTime() sim.Duration {
	b.accrue()
	return b.occSlotTime
}

// UsableSlotTime is the integral over virtual time of the number of
// slots still in service — the static-power term of the energy model —
// accrued up to the engine's current time.
func (b *Board) UsableSlotTime() sim.Duration {
	b.accrue()
	return b.usableSlotTime
}

// LatencyScale resolves the configured task-latency scale factor (1 for
// the zero default).
func (b *Board) LatencyScale() float64 {
	if b.cfg.LatencyScale == 0 {
		return 1
	}
	return b.cfg.LatencyScale
}

// Energy evaluates the power model at the engine's current time:
// static watts per usable slot plus active watts per occupied slot,
// integrated over the run so far. Returns total joules.
func (b *Board) Energy() float64 {
	b.accrue()
	return b.cfg.StaticWattsPerSlot*b.usableSlotTime.Seconds() +
		b.cfg.ActiveWattsPerSlot*b.occSlotTime.Seconds()
}

// NumSlots reports the number of reconfigurable regions.
func (b *Board) NumSlots() int { return len(b.slots) }

// Slot returns a view of slot i. Callers must not mutate it.
func (b *Board) Slot(i int) *Slot { return b.slots[i] }

// CAPBusy reports whether a reconfiguration is currently streaming.
func (b *Board) CAPBusy() bool { return b.busy }

// CAPQueueLen reports the number of reconfigurations waiting behind the
// active one.
func (b *Board) CAPQueueLen() int { return len(b.queue) }

// Stats returns a copy of the board counters.
func (b *Board) Stats() Stats { return b.stats }

// SlotStats returns a copy of slot i's health counters.
func (b *Board) SlotStats(i int) SlotStats { return b.slotStats[i] }

// ReconfigTime reports how long one configuration of the given image
// takes end to end (SD load + CAP write), excluding queueing.
func (b *Board) ReconfigTime(img *bitstream.Image) sim.Duration {
	load := img.LoadTime(b.cfg.SDBytesPerSec)
	write := sim.Seconds(float64(img.Bytes) / b.cfg.CAPBytesPerSec)
	return load + write
}

// Reconfigure requests that the given image be configured into the slot.
// The slot must be free; it transitions to SlotReconfiguring immediately
// (the region is decoupled) and to SlotLoaded when the CAP finishes, at
// which point onDone is invoked. Requests are served strictly in order —
// only one region can be configured at a time on a single device.
func (b *Board) Reconfigure(slot int, img *bitstream.Image, onDone func(error)) error {
	if slot < 0 || slot >= len(b.slots) {
		return fmt.Errorf("fpga: slot %d out of range [0,%d)", slot, len(b.slots))
	}
	if img == nil {
		return fmt.Errorf("fpga: nil bitstream for slot %d", slot)
	}
	if img.Header.Slot != slot {
		if img.Header.Slot >= 0 || !b.cfg.AllowRelocation {
			return fmt.Errorf("fpga: bitstream %s targets slot %d, not %d (no relocation support)", img.ID(), img.Header.Slot, slot)
		}
	}
	s := b.slots[slot]
	if s.State != SlotFree {
		return fmt.Errorf("fpga: slot %d is %v, cannot reconfigure", slot, s.State)
	}
	b.accrue()
	b.occupied++
	s.State = SlotReconfiguring
	s.Image = nil
	b.queue = append(b.queue, reconfigRequest{slot: slot, img: img, onDone: onDone})
	b.pump()
	return nil
}

// StateTransferTime reports how long moving bytes of slot state through
// the configuration port takes. State capture and restore go through the
// same CAP as partial bitstreams (Rodriguez-Canal et al.), so the cost
// is size-proportional at CAP bandwidth.
func (b *Board) StateTransferTime(bytes int64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	return sim.Seconds(float64(bytes) / b.cfg.CAPBytesPerSec)
}

// TransferState enqueues a checkpoint state save or restore for a loaded
// slot on the single CAP pipeline — it serializes with reconfigurations
// and other transfers, preserving the one-port constraint. The slot
// state is unchanged (user logic stays configured); onDone fires when
// the stream completes. Transfers never fault at the board level:
// checkpoint integrity is the hypervisor's concern at restore time.
func (b *Board) TransferState(slot int, bytes int64, onDone func(error)) error {
	if slot < 0 || slot >= len(b.slots) {
		return fmt.Errorf("fpga: slot %d out of range [0,%d)", slot, len(b.slots))
	}
	if bytes <= 0 {
		return fmt.Errorf("fpga: state transfer needs positive size, got %d", bytes)
	}
	if s := b.slots[slot]; s.State != SlotLoaded {
		return fmt.Errorf("fpga: slot %d is %v, cannot transfer state", slot, s.State)
	}
	b.queue = append(b.queue, reconfigRequest{slot: slot, onDone: onDone, xferBytes: bytes})
	b.pump()
	return nil
}

// pump starts the next queued reconfiguration if the CAP is idle.
func (b *Board) pump() {
	if b.busy || len(b.queue) == 0 {
		return
	}
	req := b.queue[0]
	b.queue = b.queue[1:]
	b.busy = true
	b.stream(req, 0)
}

// stream charges one attempt (plus backoff and any injected CAP stall)
// to the busy CAP and schedules its completion. The fault outcome is
// drawn up front — exactly one injector consultation per attempt.
// Checkpoint state transfers skip the injector and never retry.
func (b *Board) stream(req reconfigRequest, backoff sim.Duration) {
	if req.xferBytes > 0 {
		d := b.StateTransferTime(req.xferBytes)
		b.eng.After(d, func() { b.finishTransfer(req, d) })
		return
	}
	d := b.ReconfigTime(req.img)
	out := ReconfigOutcome{}
	if b.inj != nil {
		out = b.inj.ReconfigAttempt(b.eng.Now(), req.slot, req.tries)
	}
	b.eng.After(backoff+d+out.Stall, func() { b.finish(req, out, d+out.Stall) })
}

// backoffFor is the capped exponential delay before retry n (n >= 1).
func (b *Board) backoffFor(n int) sim.Duration {
	if b.cfg.RetryBackoff <= 0 {
		return 0
	}
	d := b.cfg.RetryBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if b.cfg.RetryBackoffCap > 0 && d >= b.cfg.RetryBackoffCap {
			return b.cfg.RetryBackoffCap
		}
	}
	if b.cfg.RetryBackoffCap > 0 && d > b.cfg.RetryBackoffCap {
		d = b.cfg.RetryBackoffCap
	}
	return d
}

func (b *Board) notifyFault(slot, attempt int, class FaultClass, willRetry bool) {
	if b.cfg.OnFault != nil {
		b.cfg.OnFault(FaultEvent{Slot: slot, Attempt: attempt, Class: class, WillRetry: willRetry})
	}
}

// finishTransfer completes a checkpoint state transfer and releases the
// CAP. The slot keeps whatever state it had — a transfer mutates no
// configuration, so even a slot that went offline mid-stream needs no
// board-side handling (the hypervisor's callbacks guard for staleness).
func (b *Board) finishTransfer(req reconfigRequest, d sim.Duration) {
	b.stats.StateTransfers++
	b.stats.StateTransferTime += d
	b.busy = false
	b.pump()
	if req.onDone != nil {
		req.onDone(nil)
	}
}

// finish completes (or retries) the active reconfiguration.
func (b *Board) finish(req reconfigRequest, out ReconfigOutcome, d sim.Duration) {
	b.stats.ReconfigTime += d
	if b.failPending[req.slot] {
		// The region died while the stream was in flight; the attempt is
		// lost regardless of its own outcome.
		b.failPending[req.slot] = false
		out = ReconfigOutcome{Class: FaultFatal}
	}
	switch out.Class {
	case FaultCRC, FaultSD:
		b.stats.Faults++
		b.slotStats[req.slot].Faults++
		if req.tries < b.cfg.MaxRetries {
			req.tries++
			b.stats.Retries++
			b.slotStats[req.slot].Retries++
			b.notifyFault(req.slot, req.tries-1, out.Class, true)
			// Retry: stream the image again after backoff; the CAP stays
			// busy — the single reconfiguration pipeline is blocked on
			// the faulted stream.
			b.stream(req, b.backoffFor(req.tries))
			return
		}
		b.notifyFault(req.slot, req.tries, out.Class, false)
		// Unrecoverable: free the slot and report the error.
		s := b.slots[req.slot]
		b.accrue()
		b.occupied--
		s.State = SlotFree
		s.Image = nil
		b.busy = false
		b.pump()
		if req.onDone != nil {
			req.onDone(fmt.Errorf("fpga: reconfiguration of slot %d failed after %d retries", req.slot, req.tries))
		}
		return
	case FaultFatal:
		b.stats.Faults++
		b.slotStats[req.slot].Faults++
		b.notifyFault(req.slot, req.tries, FaultFatal, false)
		b.takeOffline(req.slot)
		b.busy = false
		b.pump()
		if req.onDone != nil {
			req.onDone(fmt.Errorf("fpga: slot %d failed permanently during reconfiguration", req.slot))
		}
		return
	}
	b.stats.Reconfigurations++
	b.slotStats[req.slot].Reconfigurations++
	if req.tries > 0 {
		b.stats.Recovered += req.tries
	}
	s := b.slots[req.slot]
	s.State = SlotLoaded
	s.Image = req.img
	b.busy = false
	b.pump()
	if req.onDone != nil {
		req.onDone(nil)
	}
}

// takeOffline transitions a slot to SlotOffline unconditionally.
func (b *Board) takeOffline(slot int) {
	s := b.slots[slot]
	b.accrue()
	if s.State == SlotReconfiguring || s.State == SlotLoaded {
		b.occupied--
	}
	b.usable--
	s.State = SlotOffline
	s.Image = nil
	b.stats.Offline++
}

// SetOffline permanently removes a slot from service (fatal fault or
// hypervisor quarantine). A free slot goes offline immediately; a
// reconfiguring slot is marked so the in-flight stream fails on
// completion. A loaded slot must be released (its occupant killed) by
// the caller first. Idempotent for slots already offline.
func (b *Board) SetOffline(slot int) error {
	if slot < 0 || slot >= len(b.slots) {
		return fmt.Errorf("fpga: slot %d out of range", slot)
	}
	s := b.slots[slot]
	switch s.State {
	case SlotOffline:
		return nil
	case SlotFree:
		b.takeOffline(slot)
		return nil
	case SlotReconfiguring:
		b.failPending[slot] = true
		return nil
	default:
		return fmt.Errorf("fpga: slot %d is %v, release it before taking it offline", slot, s.State)
	}
}

// SlotUsable reports whether slot i is still in service.
func (b *Board) SlotUsable(i int) bool { return b.slots[i].State != SlotOffline }

// UsableSlots counts slots still in service.
func (b *Board) UsableSlots() int {
	n := 0
	for _, s := range b.slots {
		if s.State != SlotOffline {
			n++
		}
	}
	return n
}

// OfflineSlots lists the IDs of slots permanently out of service.
func (b *Board) OfflineSlots() []int {
	var off []int
	for _, s := range b.slots {
		if s.State == SlotOffline {
			off = append(off, s.ID)
		}
	}
	return off
}

// Release decouples and frees a loaded slot. The hypervisor calls this
// when a task completes or is preempted at a batch boundary.
func (b *Board) Release(slot int) error {
	if slot < 0 || slot >= len(b.slots) {
		return fmt.Errorf("fpga: slot %d out of range", slot)
	}
	s := b.slots[slot]
	if s.State != SlotLoaded {
		return fmt.Errorf("fpga: slot %d is %v, cannot release", slot, s.State)
	}
	b.accrue()
	b.occupied--
	s.State = SlotFree
	s.Image = nil
	b.stats.Releases++
	return nil
}

// FreeSlots lists the IDs of slots currently free. The returned slice
// is a board-owned scratch buffer valid until the next FreeSlots call on
// this board; callers must not retain or mutate it. This is the hottest
// query on the scheduling path — reusing the buffer keeps it
// allocation-free.
func (b *Board) FreeSlots() []int {
	free := b.freeScratch[:0]
	for _, s := range b.slots {
		if s.State == SlotFree {
			free = append(free, s.ID)
		}
	}
	b.freeScratch = free
	return free
}
