// Package fleet scales Nimblock from a cluster to a datacenter: a
// two-level scheduler in the shape Paul & Danelutto describe for FPGAs
// in data centers — fleet-level placement above, per-device schedulers
// below.
//
// The single-engine cluster front-end tops out when one event queue
// carries every board. The fleet splits the boards into N shards, each
// a cluster-style group of hypervisors on its own sim.Engine, and
// advances the shards in lockstep epochs: route the epoch's arrivals,
// run every shard to the epoch boundary (in parallel, one worker per
// shard at most), synchronize, repeat. Placement reads per-board state
// only at epoch barriers — where every shard's clock sits at the same
// instant — plus deterministic in-epoch accumulation, so results are
// byte-identical for any shard count and any worker count: the same
// discipline internal/experiments/pool.go uses for parallel runs.
//
// Workloads arrive as a workload.Stream, pulled one event at a time as
// epochs advance; a fleet run over millions of arrivals holds O(1)
// generator state instead of a materialized sequence.
package fleet

import (
	"fmt"
	"math"
	"sync"

	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/obs"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
	"nimblock/internal/workload"
)

// Config parameterizes a fleet.
type Config struct {
	// Shards is the number of independent engine groups (>= 1).
	Shards int
	// Boards is the total board count across the fleet (>= Shards).
	// Boards are dealt to shards in contiguous blocks; placement works
	// on global board indices, so the same fleet sharded differently
	// schedules identically.
	Boards int
	// HV configures every board identically.
	HV hv.Config
	// BoardConfigs, when non-nil, overrides HV per global board index,
	// enabling a heterogeneous fleet. Its length must equal Boards.
	BoardConfigs []hv.Config
	// Epoch is the lockstep quantum (default 100 ms): placement sees
	// board load refreshed once per epoch, and shards never diverge by
	// more than one epoch.
	Epoch sim.Duration
	// Workers bounds the goroutines advancing shards; 0 means one per
	// shard (capped by GOMAXPROCS by the runtime's own scheduling).
	Workers int
	// MaxOutstanding, when positive, sheds arrivals once the fleet's
	// estimated pending submissions reach the cap — open-loop overload
	// degrades the excess instead of queueing without bound.
	MaxOutstanding int
	// Registry, when non-nil, receives per-shard and fleet-level
	// metrics (pending depth, submissions, epoch progress).
	Registry *obs.Registry
}

// Result is one submission's outcome. Board is the global board index;
// rejected submissions never reached a board (Board and Shard are -1,
// RejectReason says why).
type Result struct {
	hv.Result
	Shard        int
	Board        int
	Rejected     bool
	RejectReason string
}

// Stats aggregates a finished run.
type Stats struct {
	Submitted int
	Completed int
	Rejected  int
	Epochs    int
	// EventsFired sums simulator events across every shard engine.
	EventsFired int64
	// Makespan is the epoch boundary at which the fleet went quiescent.
	Makespan sim.Time
	// Energy sums per-board energy, sampled with every shard clock at
	// the same final epoch boundary.
	Energy hv.EnergyStats
	// BoardFairness is the Jain index over per-board occupied
	// slot-seconds — how evenly placement spread the work.
	BoardFairness float64
}

// shard is one engine group: a slice of the global board list living on
// a private clock between epoch barriers.
type shard struct {
	eng    *sim.Engine
	boards []hv.Instance
	global []int           // local board index -> global board index
	idxOf  []map[int64]int // local board -> board-local ID -> submission index
}

// Fleet is the two-level scheduler.
type Fleet struct {
	cfg    Config
	mk     func(hv.Config) sched.Scheduler
	shards []*shard
	// Global-board lookup tables and placement state.
	shardOf []int
	localOf []int
	down    []bool         // health mask: true = not placeable
	outSnap []sim.Duration // barrier snapshot of OutstandingEstimate
	routed  []sim.Duration // estimates routed since the last barrier
	pendEst int            // barrier pending + routed since, for shedding

	graphs  sync.Map // app name -> *taskgraph.Graph, O(apps) not O(events)
	estMemo map[estKey]sim.Duration

	subs     int
	rejected map[int]Result
	errs     []error
	stats    Stats

	gauges *instruments
}

// estKey memoizes single-slot estimates: per (app, batch) on a
// homogeneous fleet, per (app, batch, board) on a heterogeneous one.
type estKey struct {
	app   string
	batch int
	board int
}

// New builds a fleet; mkPolicy supplies a fresh scheduling policy per
// board and receives the board's configuration, as in internal/cluster.
func New(cfg Config, mkPolicy func(hv.Config) sched.Scheduler) (*Fleet, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Boards < cfg.Shards {
		return nil, fmt.Errorf("fleet: %d boards across %d shards", cfg.Boards, cfg.Shards)
	}
	if mkPolicy == nil {
		return nil, fmt.Errorf("fleet: nil policy factory")
	}
	if cfg.BoardConfigs != nil && len(cfg.BoardConfigs) != cfg.Boards {
		return nil, fmt.Errorf("fleet: %d board configs for %d boards", len(cfg.BoardConfigs), cfg.Boards)
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 100 * sim.Millisecond
	}
	f := &Fleet{
		cfg:      cfg,
		mk:       mkPolicy,
		shardOf:  make([]int, cfg.Boards),
		localOf:  make([]int, cfg.Boards),
		down:     make([]bool, cfg.Boards),
		outSnap:  make([]sim.Duration, cfg.Boards),
		routed:   make([]sim.Duration, cfg.Boards),
		estMemo:  map[estKey]sim.Duration{},
		rejected: map[int]Result{},
	}
	// Deal boards to shards in contiguous blocks, remainder spread over
	// the leading shards, so board g's identity never depends on the
	// shard count.
	per, extra := cfg.Boards/cfg.Shards, cfg.Boards%cfg.Shards
	g := 0
	for s := 0; s < cfg.Shards; s++ {
		n := per
		if s < extra {
			n++
		}
		sh := &shard{eng: sim.NewEngine()}
		for k := 0; k < n; k++ {
			bcfg := f.boardConfig(g)
			b, err := hv.New(sh.eng, bcfg, mkPolicy(bcfg))
			if err != nil {
				return nil, fmt.Errorf("fleet: board %d: %w", g, err)
			}
			sh.boards = append(sh.boards, b)
			sh.global = append(sh.global, g)
			sh.idxOf = append(sh.idxOf, map[int64]int{})
			f.shardOf[g] = s
			f.localOf[g] = k
			g++
		}
		f.shards = append(f.shards, sh)
	}
	f.initInstruments()
	return f, nil
}

// boardConfig resolves the effective hv.Config of global board g.
func (f *Fleet) boardConfig(g int) hv.Config {
	if f.cfg.BoardConfigs != nil {
		return f.cfg.BoardConfigs[g]
	}
	return f.cfg.HV
}

// Shards reports the shard count; Boards the global board count.
func (f *Fleet) Shards() int { return len(f.shards) }

// Boards reports the fleet size.
func (f *Fleet) Boards() int { return f.cfg.Boards }

// Board exposes one board's backend by global index (for tests and
// reports).
func (f *Fleet) Board(g int) hv.Instance {
	return f.shards[f.shardOf[g]].boards[f.localOf[g]]
}

// SetBoardDown marks a board unplaceable (or placeable again) at the
// next routing decision — the fleet-level health mask. Work already on
// the board keeps running; new placements avoid it.
func (f *Fleet) SetBoardDown(g int, down bool) { f.down[g] = down }

// graph resolves an application name to its shared immutable task
// graph; one graph per distinct app regardless of arrival count.
func (f *Fleet) graph(name string) (*taskgraph.Graph, error) {
	if g, ok := f.graphs.Load(name); ok {
		return g.(*taskgraph.Graph), nil
	}
	g, err := apps.Graph(name)
	if err != nil {
		return nil, err
	}
	got, _ := f.graphs.LoadOrStore(name, g)
	return got.(*taskgraph.Graph), nil
}

// estimate is the placement-time work estimate of one arrival on board
// g: its single-slot latency there, memoized per app/batch/board shape.
func (f *Fleet) estimate(g int, app string, graph *taskgraph.Graph, batch int) sim.Duration {
	key := estKey{app: app, batch: batch}
	if f.cfg.BoardConfigs != nil {
		key.board = g
	}
	if d, ok := f.estMemo[key]; ok {
		return d
	}
	d := hv.SingleSlotLatencyFor(f.boardConfig(g).Board, graph, batch)
	f.estMemo[key] = d
	return d
}

// score ranks global board g for the next placement: estimated
// outstanding seconds (barrier snapshot plus work routed this epoch)
// stretched by the board's latency scale, divided by its usable slot
// count — the cluster's hetero-aware score lifted fleet-wide. Down
// boards rank +Inf; ties break toward the lowest global index.
func (f *Fleet) score(g int) float64 {
	if f.down[g] {
		return math.Inf(1)
	}
	b := f.Board(g).Board()
	usable := b.UsableSlots()
	if usable == 0 {
		return math.Inf(1)
	}
	out := f.outSnap[g] + f.routed[g]
	return (1 + out.Seconds()) * b.LatencyScale() / float64(usable)
}

// pick selects the board for the next placement; -1 when nothing is
// placeable.
func (f *Fleet) pick() int {
	best, bestScore := -1, math.Inf(1)
	for g := 0; g < f.cfg.Boards; g++ {
		if s := f.score(g); s < bestScore {
			best, bestScore = g, s
		}
	}
	return best
}

// route places one arrival, or records its rejection.
func (f *Fleet) route(ev workload.Event) {
	idx := f.subs
	f.subs++
	f.stats.Submitted++
	if f.gauges != nil {
		f.gauges.submitted.Inc()
	}
	if f.cfg.MaxOutstanding > 0 && f.pendEst >= f.cfg.MaxOutstanding {
		f.reject(idx, ev, "shed")
		return
	}
	graph, err := f.graph(ev.App)
	if err != nil {
		f.errs = append(f.errs, fmt.Errorf("fleet: submission %d: %w", idx, err))
		f.reject(idx, ev, "invalid")
		return
	}
	g := f.pick()
	if g < 0 {
		f.reject(idx, ev, "unplaceable")
		return
	}
	s, l := f.shardOf[g], f.localOf[g]
	id, err := f.shards[s].boards[l].SubmitID(graph, ev.Batch, ev.Priority, ev.Arrival)
	if err != nil {
		f.errs = append(f.errs, fmt.Errorf("fleet: submission %d (%s) on board %d: %w", idx, ev.App, g, err))
		f.reject(idx, ev, "submit-error")
		return
	}
	f.shards[s].idxOf[l][id] = idx
	f.routed[g] += f.estimate(g, ev.App, graph, ev.Batch)
	f.pendEst++
	if f.gauges != nil {
		f.gauges.shardSubmitted[s].Inc()
	}
}

// reject records a fleet-level rejection for reporting from Run.
func (f *Fleet) reject(idx int, ev workload.Event, reason string) {
	f.stats.Rejected++
	if f.gauges != nil {
		f.gauges.rejected.Inc()
	}
	f.rejected[idx] = Result{
		Result: hv.Result{
			AppID:       -1,
			App:         ev.App,
			Batch:       ev.Batch,
			Priority:    ev.Priority,
			Arrival:     ev.Arrival,
			FirstLaunch: -1,
		},
		Shard:        -1,
		Board:        -1,
		Rejected:     true,
		RejectReason: reason,
	}
}
