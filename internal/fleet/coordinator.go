package fleet

// The shard coordinator: lockstep epoch advancement with deterministic
// results for any shard count and any worker count.
//
// Every epoch does three things in a fixed order: (1) pull the epoch's
// arrivals off the stream and place each one, reading only barrier
// snapshots plus the estimates already routed this epoch; (2) advance
// every shard engine to the epoch boundary with RunUntil — in parallel,
// since shards share no state — so all clocks land on the same instant;
// (3) at the barrier, refresh the per-board load snapshots the next
// epoch's placement will read. Boards on a shared engine never touch
// each other's state (only placement reads across boards, and only at
// barriers), so a board's event outcomes are invariant under regrouping
// — the shard-determinism property the tests pin.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nimblock/internal/metrics"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// workers resolves the advancement fan-out for this config.
func (f *Fleet) workers() int {
	w := f.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(f.shards) {
		w = len(f.shards)
	}
	return w
}

// advance runs every shard engine to the epoch boundary and returns the
// total events fired. Shards are fully independent between barriers, so
// any assignment of shards to workers fires the same events; with one
// worker this is the serial reference path.
func (f *Fleet) advance(end sim.Time) int64 {
	w := f.workers()
	if w <= 1 {
		var total int64
		for _, sh := range f.shards {
			total += int64(sh.eng.RunUntil(end))
		}
		return total
	}
	var (
		next  atomic.Int64
		total atomic.Int64
		wg    sync.WaitGroup
	)
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= len(f.shards) {
					return
				}
				total.Add(int64(f.shards[s].eng.RunUntil(end)))
			}
		}()
	}
	wg.Wait()
	return total.Load()
}

// barrier refreshes placement state once every shard clock sits at the
// same epoch boundary, and reports the fleet's true pending count.
func (f *Fleet) barrier() int {
	pending := 0
	perShard := make([]int, len(f.shards))
	for g := 0; g < f.cfg.Boards; g++ {
		b := f.Board(g)
		f.outSnap[g] = b.OutstandingEstimate()
		f.routed[g] = 0
		p := b.PendingCount()
		pending += p
		perShard[f.shardOf[g]] += p
	}
	f.pendEst = pending
	if f.gauges != nil {
		for s, p := range perShard {
			f.gauges.shardPending[s].Set(float64(p))
		}
		f.gauges.pending.Set(float64(pending))
	}
	return pending
}

// Run consumes the stream to exhaustion, drives the fleet to
// quiescence, and returns one Result per arrival in stream order.
// The stream may be unbounded only if something else bounds it (the
// horizon will otherwise run out and Run reports the stall).
func (f *Fleet) Run(stream *workload.Stream) ([]Result, error) {
	if stream == nil {
		return nil, fmt.Errorf("fleet: nil stream")
	}
	horizon := f.cfg.HV.Horizon
	var (
		now        sim.Time
		lookahead  workload.Event
		haveEvent  bool
		streamDone bool
	)
	for !streamDone || f.pending() {
		end := now.Add(f.cfg.Epoch)
		if end > horizon {
			end = horizon
		}
		// Route this epoch's arrivals in stream order.
		for {
			if !haveEvent && !streamDone {
				lookahead, haveEvent = stream.Next()
				streamDone = !haveEvent
			}
			if !haveEvent || lookahead.Arrival > end {
				break
			}
			f.route(lookahead)
			haveEvent = false
		}
		f.stats.EventsFired += f.advance(end)
		f.stats.Epochs++
		now = end
		pending := f.barrier()
		if f.gauges != nil {
			f.gauges.epoch.Set(now.Seconds())
		}
		if streamDone && pending == 0 {
			break
		}
		if now >= horizon {
			return nil, fmt.Errorf("fleet: %d submissions still pending at horizon %v", pending, horizon)
		}
	}
	f.stats.Makespan = now
	if err := errors.Join(f.errs...); err != nil {
		return nil, err
	}
	return f.collect()
}

// pending reports whether any board still holds unfinished work; used
// only for the degenerate empty-stream first iteration.
func (f *Fleet) pending() bool {
	for _, sh := range f.shards {
		for _, b := range sh.boards {
			if b.PendingCount() > 0 {
				return true
			}
		}
	}
	return false
}

// collect assembles per-submission results in stream order and the
// aggregate stats, with every shard clock parked at the same final
// epoch boundary so energy integrates over identical spans regardless
// of sharding.
func (f *Fleet) collect() ([]Result, error) {
	out := make([]Result, f.subs)
	filled := 0
	occupied := make([]float64, 0, f.cfg.Boards)
	for s, sh := range f.shards {
		for l, b := range sh.boards {
			g := sh.global[l]
			results, err := b.Collect()
			if err != nil {
				return nil, fmt.Errorf("fleet: board %d: %w", g, err)
			}
			for _, r := range results {
				idx, ok := sh.idxOf[l][r.AppID]
				if !ok {
					return nil, fmt.Errorf("fleet: board %d reported unknown app %d", g, r.AppID)
				}
				out[idx] = Result{Result: r, Shard: s, Board: g}
				filled++
			}
			es := b.Energy()
			f.stats.Energy.StaticJoules += es.StaticJoules
			f.stats.Energy.ActiveJoules += es.ActiveJoules
			f.stats.Energy.OccupiedSlotSeconds += es.OccupiedSlotSeconds
			f.stats.Energy.UsableSlotSeconds += es.UsableSlotSeconds
			occupied = append(occupied, es.OccupiedSlotSeconds)
		}
	}
	for idx, r := range f.rejected {
		out[idx] = r
		filled++
	}
	if filled != f.subs {
		return nil, fmt.Errorf("fleet: %d results for %d submissions", filled, f.subs)
	}
	f.stats.Completed = filled - f.stats.Rejected
	f.stats.BoardFairness = metrics.JainIndex(occupied)
	return out, nil
}

// Stats reports the aggregate counters of a finished run.
func (f *Fleet) Stats() Stats { return f.stats }

// P99Response is the 99th-percentile response time over completed
// results (a helper for sweeps; 0 when nothing completed).
func P99Response(results []Result) sim.Duration {
	var xs []float64
	for _, r := range results {
		if !r.Rejected {
			xs = append(xs, r.Response.Seconds())
		}
	}
	if len(xs) == 0 {
		return 0
	}
	return sim.Seconds(metrics.Percentile(xs, 99))
}
