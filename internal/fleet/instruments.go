package fleet

import (
	"fmt"

	"nimblock/internal/obs"
)

// instruments are the fleet's obs-registry metrics: fleet-level
// counters plus one pending gauge and submission counter per shard, so
// a scrape shows how evenly the router spreads load.
type instruments struct {
	submitted      *obs.Counter
	rejected       *obs.Counter
	pending        *obs.Gauge
	epoch          *obs.Gauge
	shardSubmitted []*obs.Counter
	shardPending   []*obs.Gauge
}

// initInstruments registers the fleet's metrics; a nil Registry leaves
// the fleet unobserved with zero overhead on the hot paths.
func (f *Fleet) initInstruments() {
	reg := f.cfg.Registry
	if reg == nil {
		return
	}
	ins := &instruments{
		submitted: reg.Counter("fleet_submitted_total", "Arrivals offered to the fleet router."),
		rejected:  reg.Counter("fleet_rejected_total", "Arrivals the fleet shed or could not place."),
		pending:   reg.Gauge("fleet_pending", "Unfinished submissions across all shards at the last epoch barrier."),
		epoch:     reg.Gauge("fleet_epoch_seconds", "Simulated time of the last completed epoch barrier."),
	}
	for s := range f.shards {
		ins.shardSubmitted = append(ins.shardSubmitted, reg.Counter(
			fmt.Sprintf("fleet_shard%d_submitted_total", s),
			fmt.Sprintf("Submissions routed to shard %d.", s)))
		ins.shardPending = append(ins.shardPending, reg.Gauge(
			fmt.Sprintf("fleet_shard%d_pending", s),
			fmt.Sprintf("Unfinished submissions on shard %d at the last epoch barrier.", s)))
	}
	f.gauges = ins
}
