package fleet

import (
	"strings"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/obs"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

func mkNimblock(b hv.Config) sched.Scheduler {
	return core.New(core.DefaultOptions(), b.Board)
}

func newFleet(t *testing.T, shards, boards int, mut func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{Shards: shards, Boards: boards, HV: hv.DefaultConfig()}
	if mut != nil {
		mut(&cfg)
	}
	f, err := New(cfg, mkNimblock)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFleetCompletesStream(t *testing.T) {
	f := newFleet(t, 2, 4, nil)
	res, err := f.Run(workload.NewStream(workload.Spec{Scenario: workload.Stress, Events: 24}, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 24 {
		t.Fatalf("%d results for 24 arrivals", len(res))
	}
	boardsUsed := map[int]bool{}
	for i, r := range res {
		if r.Rejected {
			t.Fatalf("result %d rejected: %s", i, r.RejectReason)
		}
		if r.Board < 0 || r.Board >= 4 || r.Shard < 0 || r.Shard >= 2 {
			t.Fatalf("result %d on shard %d board %d", i, r.Shard, r.Board)
		}
		if r.Response <= 0 {
			t.Fatalf("result %d response %v", i, r.Response)
		}
		boardsUsed[r.Board] = true
	}
	if len(boardsUsed) < 2 {
		t.Fatalf("placement used only boards %v", boardsUsed)
	}
	st := f.Stats()
	if st.Submitted != 24 || st.Completed != 24 || st.Rejected != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Epochs < 1 || st.EventsFired == 0 || st.Makespan <= 0 {
		t.Fatalf("degenerate run stats %+v", st)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	bad := []Config{
		{Shards: 0, Boards: 4, HV: hv.DefaultConfig()},
		{Shards: 5, Boards: 4, HV: hv.DefaultConfig()},
		{Shards: 1, Boards: 2, HV: hv.DefaultConfig(), BoardConfigs: []hv.Config{hv.DefaultConfig()}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, mkNimblock); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{Shards: 1, Boards: 1, HV: hv.DefaultConfig()}, nil); err == nil {
		t.Fatal("nil policy factory accepted")
	}
}

func TestFleetShedsAtMaxOutstanding(t *testing.T) {
	f := newFleet(t, 2, 2, func(c *Config) { c.MaxOutstanding = 2 })
	// A rapid burst far beyond two boards' capacity: the cap must shed
	// the excess, and completed+rejected must still conserve.
	res, err := f.Run(workload.NewStream(workload.Spec{
		Scenario: workload.RealTime, Events: 40, FixedBatch: 8,
	}, 3))
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Rejected == 0 {
		t.Fatal("no arrivals shed at MaxOutstanding=2")
	}
	if st.Completed+st.Rejected != st.Submitted || st.Submitted != 40 {
		t.Fatalf("conservation broken: %+v", st)
	}
	shed := 0
	for _, r := range res {
		if r.Rejected {
			if r.RejectReason != "shed" {
				t.Fatalf("reject reason %q", r.RejectReason)
			}
			shed++
		}
	}
	if shed != st.Rejected {
		t.Fatalf("%d shed results, stats say %d", shed, st.Rejected)
	}
}

func TestFleetHealthMaskRoutesAroundDownBoards(t *testing.T) {
	f := newFleet(t, 2, 4, nil)
	f.SetBoardDown(0, true)
	f.SetBoardDown(2, true)
	res, err := f.Run(workload.NewStream(workload.Spec{Scenario: workload.Stress, Events: 16}, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Board == 0 || r.Board == 2 {
			t.Fatalf("result %d placed on down board %d", i, r.Board)
		}
	}
}

func TestFleetAllDownRejectsUnplaceable(t *testing.T) {
	f := newFleet(t, 1, 2, nil)
	f.SetBoardDown(0, true)
	f.SetBoardDown(1, true)
	res, err := f.Run(workload.NewStream(workload.Spec{Scenario: workload.Stress, Events: 4}, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Rejected || r.RejectReason != "unplaceable" {
			t.Fatalf("result %d = %+v, want unplaceable rejection", i, r)
		}
	}
}

func TestFleetHeterogeneousPrefersBigBoards(t *testing.T) {
	small := hv.DefaultConfig()
	small.Board.Slots = 3
	big := hv.DefaultConfig()
	big.Board.Slots = 10
	f := newFleet(t, 2, 2, func(c *Config) {
		c.BoardConfigs = []hv.Config{small, big}
	})
	res, err := f.Run(workload.NewStream(workload.Spec{Scenario: workload.Stress, Events: 20}, 11))
	if err != nil {
		t.Fatal(err)
	}
	per := map[int]int{}
	for _, r := range res {
		per[r.Board]++
	}
	if per[1] <= per[0] {
		t.Fatalf("big board got %d of %d placements (small %d)", per[1], len(res), per[0])
	}
}

func TestFleetRegistryMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	f := newFleet(t, 2, 4, func(c *Config) { c.Registry = reg })
	if _, err := f.Run(workload.NewStream(workload.Spec{Scenario: workload.Stress, Events: 12}, 9)); err != nil {
		t.Fatal(err)
	}
	if n := f.gauges.submitted.Value(); n != 12 {
		t.Fatalf("fleet_submitted_total = %d", n)
	}
	routed := int64(0)
	for s := range f.shards {
		routed += f.gauges.shardSubmitted[s].Value()
	}
	if routed != 12 {
		t.Fatalf("per-shard submissions sum to %d", routed)
	}
	for s := range f.shards {
		if p := f.gauges.shardPending[s].Value(); p != 0 {
			t.Fatalf("shard %d pending %v after quiescence", s, p)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"fleet_submitted_total", "fleet_shard0_pending", "fleet_shard1_submitted_total", "fleet_epoch_seconds"} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %s:\n%s", want, text)
		}
	}
}

func TestFleetStallAtHorizon(t *testing.T) {
	cfg := Config{Shards: 1, Boards: 1, HV: hv.DefaultConfig()}
	cfg.HV.Horizon = sim.Time(200 * sim.Millisecond)
	f, err := New(cfg, mkNimblock)
	if err != nil {
		t.Fatal(err)
	}
	// Real work cannot finish inside 200 ms of horizon: Run must report
	// the stall instead of spinning epochs forever.
	_, err = f.Run(workload.NewStream(workload.Spec{Scenario: workload.RealTime, Events: 10, FixedBatch: 20}, 2))
	if err == nil || !strings.Contains(err.Error(), "pending at horizon") {
		t.Fatalf("err = %v, want horizon stall", err)
	}
}

func TestFleetDefaultStreamLength(t *testing.T) {
	f := newFleet(t, 2, 2, nil)
	res, err := f.Run(workload.NewStream(workload.Spec{Pool: []string{apps.LeNet}}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != workload.EventsPerSequence {
		t.Fatalf("%d results, want the default %d", len(res), workload.EventsPerSequence)
	}
}

func TestFleetEmptyStream(t *testing.T) {
	f := newFleet(t, 2, 2, nil)
	st := workload.NewStream(workload.Spec{Events: 3}, 1)
	for {
		if _, ok := st.Next(); !ok {
			break
		}
	}
	res, err := f.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("%d results from an exhausted stream", len(res))
	}
}
