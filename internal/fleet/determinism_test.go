package fleet

import (
	"testing"

	"nimblock/internal/hv"
	"nimblock/internal/workload"
)

// The shard-determinism property: a fleet of B boards produces
// byte-identical per-submission results — and identical aggregate
// energy and fairness — whether those boards live on 1, 2, or 8
// engines, and however many workers advance the shards. Placement reads
// per-board state only at epoch barriers (where every clock sits on the
// same instant) plus deterministic in-epoch accumulation, and boards on
// a shared engine never touch each other's state, so regrouping cannot
// change any outcome. Run under -race, this is also the proof the
// parallel coordinator shares nothing it shouldn't.
func TestShardDeterminism(t *testing.T) {
	const boards = 8
	run := func(shards, workers int, seed int64) ([]Result, Stats) {
		cfg := Config{Shards: shards, Boards: boards, HV: hv.DefaultConfig(), Workers: workers}
		f, err := New(cfg, mkNimblock)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(workload.NewStream(workload.Spec{Scenario: workload.Stress, Events: 30}, seed))
		if err != nil {
			t.Fatal(err)
		}
		return res, f.Stats()
	}

	for seed := int64(1); seed <= 20; seed++ {
		ref, refStats := run(1, 1, seed)
		for _, shards := range []int{2, 8} {
			for _, workers := range []int{1, 4} {
				got, gotStats := run(shards, workers, seed)
				if len(got) != len(ref) {
					t.Fatalf("seed %d shards %d workers %d: %d results vs %d", seed, shards, workers, len(got), len(ref))
				}
				for i := range ref {
					// The hosting shard is the only field allowed to
					// differ across shard counts.
					a, b := ref[i], got[i]
					a.Shard, b.Shard = 0, 0
					if a != b {
						t.Fatalf("seed %d shards %d workers %d: result %d differs:\n  1 shard:  %+v\n  %d shards: %+v",
							seed, shards, workers, i, ref[i], shards, got[i])
					}
				}
				if gotStats.Energy != refStats.Energy {
					t.Fatalf("seed %d shards %d: energy differs: %+v vs %+v", seed, shards, gotStats.Energy, refStats.Energy)
				}
				if gotStats.BoardFairness != refStats.BoardFairness {
					t.Fatalf("seed %d shards %d: fairness %v vs %v", seed, shards, gotStats.BoardFairness, refStats.BoardFairness)
				}
				if gotStats.Completed != refStats.Completed || gotStats.Rejected != refStats.Rejected {
					t.Fatalf("seed %d shards %d: stats differ: %+v vs %+v", seed, shards, gotStats, refStats)
				}
			}
		}
	}
}
