package sim

// The determinism oracle: the pre-wheel binary-heap engine, kept here as
// a reference implementation. Randomized interleavings of
// At/AtCancellable/Cancel/Step/Run/RunUntil are driven against both
// engines and must produce identical firing orders, clock advancement,
// Pending counts, and Cancel results — byte-identical traces are the
// contract the wheel must honour.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// heapEvent mirrors the old event struct.
type heapEvent struct {
	at      Time
	seq     int64
	id      EventID
	fn      func()
	index   int
	tracked bool
}

type refHeap []*heapEvent

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refHeap) Push(x any) {
	e := x.(*heapEvent)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// heapEngine is the old container/heap engine with the same API surface
// as Engine.
type heapEngine struct {
	now     Time
	pq      refHeap
	live    map[EventID]*heapEvent
	nextSeq int64
	nextID  EventID
	stopped bool
}

func (e *heapEngine) Now() Time    { return e.now }
func (e *heapEngine) Pending() int { return len(e.pq) }

func (e *heapEngine) schedule(at Time, fn func(), tracked bool) *heapEvent {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < e.now {
		panic("sim: event scheduled in the past")
	}
	e.nextSeq++
	ev := &heapEvent{at: at, seq: e.nextSeq, fn: fn, tracked: tracked}
	heap.Push(&e.pq, ev)
	return ev
}

func (e *heapEngine) At(at Time, fn func()) { e.schedule(at, fn, false) }

func (e *heapEngine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

func (e *heapEngine) AtCancellable(at Time, fn func()) EventID {
	ev := e.schedule(at, fn, true)
	e.nextID++
	ev.id = e.nextID
	if e.live == nil {
		e.live = map[EventID]*heapEvent{}
	}
	e.live[ev.id] = ev
	return ev.id
}

func (e *heapEngine) AfterCancellable(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.AtCancellable(e.now.Add(d), fn)
}

func (e *heapEngine) Cancel(id EventID) bool {
	ev, ok := e.live[id]
	if !ok {
		return false
	}
	delete(e.live, id)
	heap.Remove(&e.pq, ev.index)
	return true
}

func (e *heapEngine) Stop() { e.stopped = true }

func (e *heapEngine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*heapEvent)
	if ev.tracked {
		delete(e.live, ev.id)
	}
	e.now = ev.at
	ev.fn()
	return true
}

func (e *heapEngine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	return n
}

func (e *heapEngine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for !e.stopped && len(e.pq) > 0 && e.pq[0].at <= deadline {
		e.Step()
		n++
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}

// simEngine is the common surface the oracle drives on both engines.
type simEngine interface {
	Now() Time
	Pending() int
	At(Time, func())
	After(Duration, func())
	AtCancellable(Time, func()) EventID
	AfterCancellable(Duration, func()) EventID
	Cancel(EventID) bool
	Step() bool
	Run() int
	RunUntil(Time) int
	Stop()
}

// oracle ops, encoded as bytes so the fuzzer shares the driver.
const (
	opAt byte = iota
	opAfter
	opAtCancellable
	opAfterCancellable
	opCancel
	opStep
	opRun
	opRunUntil
	opNested // schedule an event whose callback schedules/cancels more
	opCount
)

// driveOps applies one op script to an engine and returns the trace:
// every fired event as (tag, time), plus clock/pending/return-value
// checkpoints after each op. Callbacks may schedule and cancel, so the
// trace also exercises same-instant and in-callback paths.
func driveOps(eng simEngine, data []byte) []int64 {
	var trace []int64
	record := func(tag int, at Time) {
		trace = append(trace, int64(tag), int64(at))
	}
	var ids []EventID
	tag := 0
	i := 0
	next := func() int64 {
		if i >= len(data) {
			return 0
		}
		v := int64(data[i])
		i++
		return v
	}
	for i < len(data) {
		op := data[i] % byte(opCount)
		i++
		switch op {
		case opAt:
			t := tag
			tag++
			eng.At(eng.Now().Add(Duration(next()*3)), func() { record(t, eng.Now()) })
		case opAfter:
			t := tag
			tag++
			eng.After(Duration(next()*5-64), func() { record(t, eng.Now()) })
		case opAtCancellable:
			t := tag
			tag++
			ids = append(ids, eng.AtCancellable(eng.Now().Add(Duration(next()*3)), func() { record(t, eng.Now()) }))
		case opAfterCancellable:
			t := tag
			tag++
			ids = append(ids, eng.AfterCancellable(Duration(next()*5-64), func() { record(t, eng.Now()) }))
		case opCancel:
			if len(ids) > 0 {
				id := ids[int(next())%len(ids)]
				ok := eng.Cancel(id)
				if ok {
					trace = append(trace, -1)
				} else {
					trace = append(trace, -2)
				}
			}
		case opStep:
			if eng.Step() {
				trace = append(trace, -3)
			}
		case opRun:
			trace = append(trace, -4, int64(eng.Run()))
		case opRunUntil:
			trace = append(trace, -5, int64(eng.RunUntil(eng.Now().Add(Duration(next()*7)))))
		case opNested:
			t := tag
			tag++
			d := Duration(next() * 3)
			inner := Duration(next() * 2)
			eng.After(d, func() {
				record(t, eng.Now())
				id := eng.AfterCancellable(inner, func() { record(t+100000, eng.Now()) })
				eng.After(inner, func() { record(t+200000, eng.Now()) })
				if inner%3 == 0 {
					if eng.Cancel(id) {
						trace = append(trace, -6)
					}
				}
				eng.After(0, func() { record(t+300000, eng.Now()) })
			})
			tag++ // reserve tag space for nested callbacks
		}
		trace = append(trace, -7, int64(eng.Now()), int64(eng.Pending()))
	}
	trace = append(trace, -8, int64(eng.Run()), int64(eng.Now()), int64(eng.Pending()))
	return trace
}

func compareEngines(t *testing.T, data []byte) {
	t.Helper()
	got := driveOps(NewEngine(), data)
	want := driveOps(&heapEngine{}, data)
	if len(got) != len(want) {
		t.Fatalf("trace length mismatch: wheel %d heap %d\nops=%v", len(got), len(want), data)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trace diverges at %d: wheel %d heap %d\nops=%v\nwheel=%v\nheap=%v",
				i, got[i], want[i], data, got, want)
		}
	}
}

// TestEngineMatchesHeapOracle drives randomized op scripts through the
// wheel engine and the reference heap engine and requires identical
// traces.
func TestEngineMatchesHeapOracle(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		compareEngines(t, data)
	}
}

// TestEngineOracleFarFuture forces the overflow list and rewind paths:
// events beyond the wheel horizon, then earlier arrivals behind the
// advanced reference.
func TestEngineOracleFarFuture(t *testing.T) {
	run := func(eng simEngine) []int64 {
		var trace []int64
		record := func(tag int) { trace = append(trace, int64(tag), int64(eng.Now())) }
		horizon := Time(1) << 45 // beyond the 64^7-us wheel span
		eng.At(horizon, func() { record(1) })
		eng.At(horizon+1, func() { record(2) })
		id := eng.AtCancellable(horizon+2, func() { record(3) })
		eng.At(5, func() { record(4) })
		trace = append(trace, int64(eng.RunUntil(10)), int64(eng.Now()))
		// The engine has peeked at the far-future minimum; schedule behind it.
		eng.At(20, func() { record(5) })
		eng.Cancel(id)
		trace = append(trace, int64(eng.Run()), int64(eng.Now()), int64(eng.Pending()))
		return trace
	}
	got := run(NewEngine())
	want := run(&heapEngine{})
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("far-future trace diverges at %d: wheel=%v heap=%v", i, got, want)
		}
	}
}

// FuzzEngineOracle lets the fuzzer search for op scripts where the wheel
// and the heap reference disagree.
func FuzzEngineOracle(f *testing.F) {
	f.Add([]byte{0, 10, 2, 20, 4, 0, 6})
	f.Add([]byte{8, 3, 3, 8, 0, 0, 6, 5, 5, 5})
	f.Add([]byte{2, 255, 4, 0, 7, 200, 6})
	rng := rand.New(rand.NewSource(7))
	seed := make([]byte, 64)
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip()
		}
		got := driveOps(NewEngine(), data)
		want := driveOps(&heapEngine{}, data)
		if len(got) != len(want) {
			t.Fatalf("trace length mismatch: wheel %d heap %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trace diverges at %d: wheel %d heap %d", i, got[i], want[i])
			}
		}
	})
}
