package sim

// Microbenchmarks isolating the event-queue swap: schedule/fire
// throughput, cancel-heavy timer churn, same-instant bursts, and the
// mixed tracked/untracked profile the hypervisor actually generates.

import "testing"

// BenchmarkScheduleFire measures raw schedule+fire throughput: a
// self-sustaining chain of untracked events, the engine's common case.
func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(Duration(7), tick)
		}
	}
	eng.After(0, tick)
	eng.Run()
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkScheduleFireSpread schedules events up front across a wide
// time range, then drains — exercises cascading instead of the
// one-in-one-out steady state.
func BenchmarkScheduleFireSpread(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	fired := 0
	fn := func() { fired++ }
	for i := 0; i < b.N; i++ {
		// Spread pseudo-randomly over ~17 simulated minutes.
		eng.At(Time((i*2654435761)%1_000_000_000), fn)
	}
	b.ResetTimer()
	eng.Run()
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// BenchmarkCancelHeavy models watchdog churn: every scheduled event gets
// a cancellable timer that is cancelled before it fires. The old heap
// paid an O(log n) heap.Remove per cancel; the wheel leaves a tombstone.
func BenchmarkCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	n := 0
	var tick func()
	var wd EventID
	tick = func() {
		n++
		if wd != 0 {
			eng.Cancel(wd)
		}
		if n < b.N {
			wd = eng.AfterCancellable(Seconds(3600), func() { b.Error("watchdog fired") })
			eng.After(Duration(5), tick)
		}
	}
	eng.After(0, tick)
	eng.Run()
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkSameInstantBurst drains bursts of events sharing one
// timestamp — the After(0) wake/arrival-batching pattern — which the
// wheel dispatches as a single sorted batch.
func BenchmarkSameInstantBurst(b *testing.B) {
	b.ReportAllocs()
	const burst = 64
	eng := NewEngine()
	fired := 0
	fn := func() { fired++ }
	rounds := b.N/burst + 1
	var kick func()
	r := 0
	kick = func() {
		r++
		for i := 0; i < burst; i++ {
			eng.After(0, fn)
		}
		if r < rounds {
			eng.After(Duration(100), kick)
		}
	}
	eng.After(0, kick)
	eng.Run()
	if fired < b.N {
		b.Fatalf("fired %d, want >= %d", fired, b.N)
	}
}

// BenchmarkMixedTrackedUntracked interleaves plain events with
// cancellable ones that mostly fire (the tryStart itemDone/watchdog
// pairing), hitting both the live-map and tombstone paths.
func BenchmarkMixedTrackedUntracked(b *testing.B) {
	b.ReportAllocs()
	eng := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n >= b.N {
			return
		}
		if n%4 == 0 {
			id := eng.AfterCancellable(Duration(3), func() { tick() })
			if n%8 == 0 {
				eng.Cancel(id)
				eng.After(Duration(3), tick)
			}
		} else {
			eng.After(Duration(2), tick)
		}
	}
	eng.After(0, tick)
	eng.Run()
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}
