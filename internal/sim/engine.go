package sim

import (
	"container/heap"
	"fmt"
)

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued.
type EventID int64

// event is a pending callback in the simulation.
type event struct {
	at    Time
	seq   int64 // schedule order; breaks ties deterministically
	id    EventID
	fn    func()
	index int // heap index
}

// eventHeap implements a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is ready to use. Engines are not safe for concurrent use;
// the entire Nimblock simulation is deliberately single-threaded so that
// runs are bit-for-bit reproducible.
type Engine struct {
	now     Time
	pq      eventHeap
	live    map[EventID]*event
	nextSeq int64
	nextID  EventID
	stopped bool
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{live: map[EventID]*event{}}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn func()) EventID {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (at=%v now=%v)", at, e.now))
	}
	if e.live == nil {
		e.live = map[EventID]*event{}
	}
	e.nextSeq++
	e.nextID++
	ev := &event{at: at, seq: e.nextSeq, id: e.nextID, fn: fn}
	heap.Push(&e.pq, ev)
	e.live[ev.id] = ev
	return ev.id
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired or was cancelled).
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.live[id]
	if !ok {
		return false
	}
	delete(e.live, id)
	heap.Remove(&e.pq, ev.index)
	return true
}

// Stop halts Run after the current event's callback returns.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	delete(e.live, ev.id)
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue drains or Stop is called. It returns
// the number of events fired.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	return n
}

// RunUntil fires events with time <= deadline. The clock finishes at
// min(deadline, time of last fired event); if events remain beyond the
// deadline the clock is advanced to the deadline.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for !e.stopped && len(e.pq) > 0 && e.pq[0].at <= deadline {
		e.Step()
		n++
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}
