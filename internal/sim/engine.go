package sim

import (
	"container/heap"
	"fmt"
	"sync"
)

// EventID identifies a cancellable scheduled event. The zero EventID is
// never issued.
type EventID int64

// event is a pending callback in the simulation.
type event struct {
	at      Time
	seq     int64 // schedule order; breaks ties deterministically
	id      EventID
	fn      func()
	index   int  // heap index
	tracked bool // registered in live (cancellable)
}

// eventPool recycles event structs across engines and runs. A full
// experiment sweep schedules millions of events, nearly all of which are
// short-lived; pooling removes them from the allocation hot path.
var eventPool = sync.Pool{New: func() any { return new(event) }}

// release returns an event to the pool, dropping the callback reference so
// the pool does not retain closures (and whatever they capture).
func release(ev *event) {
	*ev = event{}
	eventPool.Put(ev)
}

// eventHeap implements a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is ready to use and behaves identically to NewEngine().
// Engines are not safe for concurrent use; the entire Nimblock simulation
// is deliberately single-threaded so that runs are bit-for-bit
// reproducible. Parallelism lives one layer up: independent runs each own
// an engine (see internal/experiments).
type Engine struct {
	now     Time
	pq      eventHeap
	live    map[EventID]*event // cancellable events only; lazily created
	nextSeq int64
	nextID  EventID
	stopped bool
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.pq) }

// schedule validates and enqueues one event.
func (e *Engine) schedule(at Time, fn func(), tracked bool) *event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (at=%v now=%v)", at, e.now))
	}
	e.nextSeq++
	ev := eventPool.Get().(*event)
	ev.at, ev.seq, ev.fn, ev.tracked = at, e.nextSeq, fn, tracked
	heap.Push(&e.pq, ev)
	return ev
}

// At schedules fn to run at absolute time at. The event cannot be
// cancelled — the common case, which skips all cancellation bookkeeping;
// use AtCancellable when a handle is needed. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn func()) {
	e.schedule(at, fn, false)
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero. Like At, the event cannot be cancelled.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// AtCancellable schedules fn at absolute time at and returns a handle that
// Cancel accepts. It costs one map insert over At; reserve it for events
// that may actually be cancelled (timeouts, watchdogs, preemptable work).
func (e *Engine) AtCancellable(at Time, fn func()) EventID {
	ev := e.schedule(at, fn, true)
	e.nextID++
	ev.id = e.nextID
	if e.live == nil {
		e.live = map[EventID]*event{}
	}
	e.live[ev.id] = ev
	return ev.id
}

// AfterCancellable schedules fn to run d after the current time and
// returns a cancellation handle. Negative delays are clamped to zero.
func (e *Engine) AfterCancellable(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.AtCancellable(e.now.Add(d), fn)
}

// Cancel removes a pending cancellable event. It reports whether the event
// was still pending (false if it already fired or was cancelled).
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.live[id]
	if !ok {
		return false
	}
	delete(e.live, id)
	heap.Remove(&e.pq, ev.index)
	release(ev)
	return true
}

// Stop halts Run after the current event's callback returns.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	if ev.tracked {
		delete(e.live, ev.id)
	}
	e.now = ev.at
	fn := ev.fn
	release(ev)
	fn()
	return true
}

// Run fires events until the queue drains or Stop is called. It returns
// the number of events fired.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	return n
}

// RunUntil fires events with time <= deadline. The clock finishes at
// min(deadline, time of last fired event); if events remain beyond the
// deadline the clock is advanced to the deadline.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for !e.stopped && len(e.pq) > 0 && e.pq[0].at <= deadline {
		e.Step()
		n++
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}
