package sim

import (
	"fmt"
	"math/bits"
	"slices"
)

// EventID identifies a cancellable scheduled event. The zero EventID is
// never issued.
type EventID int64

// The pending-event store is a hierarchical timing wheel: wheelLevels
// levels of wheelSlots buckets each, where a level-l bucket spans
// 64^l microseconds. Level 0 buckets are single instants, so one bucket
// holds exactly the events of one timestamp; higher levels hold
// coarser-grained far-future events that cascade down as the wheel
// reference time advances. With 7 levels the wheel spans 64^7 us
// (~139 years of simulated time) ahead of the reference; anything beyond
// that lands in an unsorted overflow list that is consulted only when
// the wheel drains. See DESIGN.md section 13 for the level-placement
// invariants.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 7
	chunkEvents = 128
	sweepFloor  = 64
)

// event is a pending callback in the simulation. Events are allocated
// from a per-engine freelist (chunked, intrusively linked through next)
// and never touch the garbage collector on the steady-state path.
type event struct {
	at      Time
	seq     int64 // schedule order; breaks ties deterministically
	id      EventID
	fn      func() // nil marks a cancelled event (tombstone)
	next    *event // bucket chain, or freelist chain
	tracked bool   // registered in live (cancellable)
}

// wheelLevel is one ring of the timing wheel. occupied has bit s set iff
// slot[s] has a (possibly tombstoned) chain.
type wheelLevel struct {
	occupied uint64
	slot     [wheelSlots]*event
}

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is ready to use and behaves identically to NewEngine().
// Engines are not safe for concurrent use; the entire Nimblock simulation
// is deliberately single-threaded so that runs are bit-for-bit
// reproducible. Parallelism lives one layer up: independent runs each own
// an engine (see internal/experiments).
type Engine struct {
	now Time
	// base is the wheel reference time: every stored event's level is a
	// pure function of (event time, base). It trails now between batches
	// and advances monotonically while the engine locates the next batch;
	// scheduling behind it forces a rewind (rare, only possible between
	// run calls).
	base     Time
	levels   [wheelLevels]wheelLevel
	overflow []*event // events beyond the wheel horizon; always later than every wheel event

	// batch holds the events of the single next instant, sorted by seq.
	// Entries before batchPos have fired (and are nilled out); cancelled
	// entries are skipped and freed as they surface.
	batch    []*event
	batchPos int
	batchAt  Time

	live     map[EventID]*event // cancellable events only; lazily created
	freeList *event
	pending  int   // scheduled events not yet fired or cancelled
	dead     int   // tombstones still parked in the wheel/overflow/batch
	fired    int64 // total events fired over the engine's lifetime
	nextSeq  int64
	nextID   EventID
	stopped  bool
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to fire. Cancelled events
// leave tombstones in the wheel but are not counted.
func (e *Engine) Pending() int { return e.pending }

// Fired reports the total number of events fired since the engine was
// created. It feeds the events/sec figure in cmd/nimblock-bench.
func (e *Engine) Fired() int64 { return e.fired }

// alloc takes an event from the freelist, growing it by a chunk when
// empty. Chunk allocation keeps freelist growth at one GC object per
// chunkEvents events instead of one per event.
func (e *Engine) alloc() *event {
	if e.freeList == nil {
		chunk := make([]event, chunkEvents)
		for i := range chunk[:chunkEvents-1] {
			chunk[i].next = &chunk[i+1]
		}
		e.freeList = &chunk[0]
	}
	ev := e.freeList
	e.freeList = ev.next
	ev.next = nil
	return ev
}

// release returns an event to the freelist, dropping the callback
// reference so the freelist does not retain closures (and whatever they
// capture).
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.id = 0
	ev.tracked = false
	ev.next = e.freeList
	e.freeList = ev
}

// freeDead releases a tombstone encountered while walking the structure.
func (e *Engine) freeDead(ev *event) {
	e.dead--
	e.release(ev)
}

// insert places an event into the wheel (or overflow) according to the
// current reference time. The level is the bit position of the highest
// bit in which the event time differs from base, divided into 6-bit
// bands: events sharing all but the low 6 bits of base go to level 0,
// and so on. This is O(1) and keeps the invariant that every event at
// level l+1 fires after every event at levels <= l.
func (e *Engine) insert(ev *event) {
	diff := uint64(ev.at) ^ uint64(e.base)
	var lvl int
	if diff != 0 {
		lvl = (63 - bits.LeadingZeros64(diff)) / wheelBits
	}
	if lvl >= wheelLevels {
		e.overflow = append(e.overflow, ev)
		return
	}
	s := (uint64(ev.at) >> (uint(lvl) * wheelBits)) & wheelMask
	lv := &e.levels[lvl]
	ev.next = lv.slot[s]
	lv.slot[s] = ev
	lv.occupied |= 1 << uint(s)
}

// schedule validates and enqueues one event.
func (e *Engine) schedule(at Time, fn func(), tracked bool) *event {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (at=%v now=%v)", at, e.now))
	}
	if at < e.base {
		e.rewind(at)
	}
	e.nextSeq++
	ev := e.alloc()
	ev.at, ev.seq, ev.fn, ev.tracked = at, e.nextSeq, fn, tracked
	e.insert(ev)
	e.pending++
	return ev
}

// rewind lowers the wheel reference to at and rebuilds every placement.
// The reference runs ahead of the clock while the engine locates the
// next batch (RunUntil peeks past its deadline, for example), so a
// driver that stops and then schedules between now and the previously
// found minimum lands behind base. That can only happen between run
// calls — callbacks always schedule at >= now == base — and costs
// O(pending), so correctness is cheap where it matters.
func (e *Engine) rewind(at Time) {
	var head *event
	for l := range e.levels {
		lv := &e.levels[l]
		for occ := lv.occupied; occ != 0; occ &= occ - 1 {
			s := bits.TrailingZeros64(occ)
			for ev := lv.slot[s]; ev != nil; {
				next := ev.next
				ev.next = head
				head = ev
				ev = next
			}
			lv.slot[s] = nil
		}
		lv.occupied = 0
	}
	for _, ev := range e.overflow {
		ev.next = head
		head = ev
	}
	e.overflow = e.overflow[:0]
	for _, ev := range e.batch[e.batchPos:] {
		ev.next = head
		head = ev
	}
	e.batch = e.batch[:0]
	e.batchPos = 0
	e.base = at
	for ev := head; ev != nil; {
		next := ev.next
		if ev.fn == nil {
			e.freeDead(ev)
		} else {
			e.insert(ev)
		}
		ev = next
	}
}

// compareSeq orders batch events; all events in a batch share one
// timestamp, so schedule order is the whole order.
func compareSeq(a, b *event) int {
	if a.seq < b.seq {
		return -1
	}
	return 1
}

// loadBatch locates the next instant with live events and drains its
// level-0 bucket into batch, sorted by seq. Cascading re-disperses one
// higher-level bucket at a time: the lowest occupied level's first
// bucket always contains the global minimum (overflow events are beyond
// every wheel event by construction), and each cascaded event strictly
// descends at least one level, so the loop terminates and each event is
// touched O(wheelLevels) times over its life. It reports false when no
// live events remain.
func (e *Engine) loadBatch() bool {
	e.batch = e.batch[:0]
	e.batchPos = 0
	for {
		if lv := &e.levels[0]; lv.occupied != 0 {
			s := bits.TrailingZeros64(lv.occupied)
			at := (e.base &^ wheelMask) | Time(s)
			for ev := lv.slot[s]; ev != nil; {
				next := ev.next
				if ev.fn == nil {
					e.freeDead(ev)
				} else {
					ev.next = nil
					e.batch = append(e.batch, ev)
				}
				ev = next
			}
			lv.slot[s] = nil
			lv.occupied &^= 1 << uint(s)
			if len(e.batch) == 0 {
				continue // bucket was all tombstones
			}
			e.base = at
			e.batchAt = at
			if len(e.batch) > 1 {
				slices.SortFunc(e.batch, compareSeq)
			}
			return true
		}
		lvl := 1
		for lvl < wheelLevels && e.levels[lvl].occupied == 0 {
			lvl++
		}
		if lvl == wheelLevels {
			if !e.spillOverflow() {
				return false
			}
			continue
		}
		lv := &e.levels[lvl]
		s := bits.TrailingZeros64(lv.occupied)
		width := Time(1) << (uint(lvl) * wheelBits)
		bucketStart := (e.base &^ (width<<wheelBits - 1)) + Time(s)*width
		head := lv.slot[s]
		lv.slot[s] = nil
		lv.occupied &^= 1 << uint(s)
		if bucketStart > e.base {
			e.base = bucketStart
		}
		for ev := head; ev != nil; {
			next := ev.next
			if ev.fn == nil {
				e.freeDead(ev)
			} else {
				e.insert(ev)
			}
			ev = next
		}
	}
}

// spillOverflow advances the reference to the earliest live overflow
// event and re-inserts the overflow list against it; events within the
// new wheel horizon land in the wheel (the minimum always does — it
// becomes level 0), the rest stay in overflow. It reports false when no
// live events remain anywhere.
func (e *Engine) spillOverflow() bool {
	min := Time(-1)
	n := 0
	for _, ev := range e.overflow {
		if ev.fn == nil {
			e.freeDead(ev)
			continue
		}
		e.overflow[n] = ev
		n++
		if min < 0 || ev.at < min {
			min = ev.at
		}
	}
	e.overflow = e.overflow[:n]
	if n == 0 {
		return false
	}
	e.base = min
	ovf := e.overflow
	e.overflow = e.overflow[:0]
	for _, ev := range ovf {
		e.insert(ev)
	}
	return true
}

// ensureNext positions the engine at the next live event, freeing any
// cancelled-after-load batch entries it steps over. It reports false
// when the engine has drained.
func (e *Engine) ensureNext() bool {
	for {
		for e.batchPos < len(e.batch) {
			ev := e.batch[e.batchPos]
			if ev.fn != nil {
				return true
			}
			e.batch[e.batchPos] = nil
			e.batchPos++
			e.freeDead(ev)
		}
		if !e.loadBatch() {
			return false
		}
	}
}

// At schedules fn to run at absolute time at. The event cannot be
// cancelled — the common case, which skips all cancellation bookkeeping;
// use AtCancellable when a handle is needed. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn func()) {
	e.schedule(at, fn, false)
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to zero. Like At, the event cannot be cancelled.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// AtCancellable schedules fn at absolute time at and returns a handle that
// Cancel accepts. It costs one map insert over At; reserve it for events
// that may actually be cancelled (timeouts, watchdogs, preemptable work).
func (e *Engine) AtCancellable(at Time, fn func()) EventID {
	ev := e.schedule(at, fn, true)
	e.nextID++
	ev.id = e.nextID
	if e.live == nil {
		e.live = map[EventID]*event{}
	}
	e.live[ev.id] = ev
	return ev.id
}

// AfterCancellable schedules fn to run d after the current time and
// returns a cancellation handle. Negative delays are clamped to zero.
func (e *Engine) AfterCancellable(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.AtCancellable(e.now.Add(d), fn)
}

// Cancel removes a pending cancellable event. It reports whether the event
// was still pending (false if it already fired or was cancelled).
//
// Cancellation is lazy: the event becomes a tombstone that the wheel
// frees when its bucket is next touched, so Cancel never restructures
// the queue. Pending() stays exact — tombstones are not counted. A
// sweep reclaims tombstone memory early if they ever outnumber live
// events two to one.
func (e *Engine) Cancel(id EventID) bool {
	ev, ok := e.live[id]
	if !ok {
		return false
	}
	delete(e.live, id)
	ev.fn = nil
	ev.id = 0
	e.pending--
	e.dead++
	if e.dead > sweepFloor && e.dead > 2*e.pending {
		e.sweepDead()
	}
	return true
}

// sweepDead walks the wheel and overflow freeing tombstones. Batch
// entries are left for ensureNext, which frees them on the next step.
func (e *Engine) sweepDead() {
	for l := range e.levels {
		lv := &e.levels[l]
		for occ := lv.occupied; occ != 0; occ &= occ - 1 {
			s := bits.TrailingZeros64(occ)
			var head *event
			for ev := lv.slot[s]; ev != nil; {
				next := ev.next
				if ev.fn == nil {
					e.freeDead(ev)
				} else {
					ev.next = head
					head = ev
				}
				ev = next
			}
			lv.slot[s] = head
			if head == nil {
				lv.occupied &^= 1 << uint(s)
			}
		}
	}
	n := 0
	for _, ev := range e.overflow {
		if ev.fn == nil {
			e.freeDead(ev)
			continue
		}
		e.overflow[n] = ev
		n++
	}
	e.overflow = e.overflow[:n]
}

// Stop halts Run after the current event's callback returns.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if !e.ensureNext() {
		return false
	}
	ev := e.batch[e.batchPos]
	e.batch[e.batchPos] = nil
	e.batchPos++
	if ev.tracked {
		delete(e.live, ev.id)
	}
	e.now = ev.at
	e.pending--
	e.fired++
	fn := ev.fn
	e.release(ev)
	fn()
	return true
}

// Run fires events until the queue drains or Stop is called. It returns
// the number of events fired.
func (e *Engine) Run() int {
	e.stopped = false
	n := 0
	for !e.stopped && e.Step() {
		n++
	}
	return n
}

// DrainUntil fires events with time <= deadline like RunUntil, but
// leaves the clock at the last fired event instead of advancing it to
// the deadline — the quiescence point for sampling time-integrated
// state (energy accrual) without pricing the idle tail to the horizon.
func (e *Engine) DrainUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for !e.stopped && e.ensureNext() && e.batchAt <= deadline {
		e.Step()
		n++
	}
	return n
}

// RunUntil fires events with time <= deadline. The clock finishes at
// min(deadline, time of last fired event); if events remain beyond the
// deadline the clock is advanced to the deadline.
func (e *Engine) RunUntil(deadline Time) int {
	e.stopped = false
	n := 0
	for !e.stopped && e.ensureNext() && e.batchAt <= deadline {
		e.Step()
		n++
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}
