package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	var tm Time
	tm = tm.Add(3 * Second)
	if tm != Time(3_000_000) {
		t.Fatalf("Add: got %d, want 3000000", tm)
	}
	if d := tm.Sub(Time(1_000_000)); d != 2*Second {
		t.Fatalf("Sub: got %v, want 2s", d)
	}
	if tm.Seconds() != 3.0 {
		t.Fatalf("Seconds: got %v, want 3.0", tm.Seconds())
	}
}

func TestDurationConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Milliseconds(80) != 80*Millisecond {
		t.Fatalf("Milliseconds(80) = %v", Milliseconds(80))
	}
	if FromStd(2*time.Second) != 2*Second {
		t.Fatalf("FromStd = %v", FromStd(2*time.Second))
	}
	if (80 * Millisecond).Milliseconds() != 80 {
		t.Fatalf("Milliseconds() = %v", (80 * Millisecond).Milliseconds())
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v", got)
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{500, 100, 300, 200, 400} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{100, 200, 300, 400, 500}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakIsScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(42, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order %v, want ascending", order)
		}
	}
}

func TestEngineAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-5*Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v, want 0", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.AtCancellable(10, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel reported event not pending")
	}
	if e.Cancel(id) {
		t.Fatal("double Cancel reported success")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

// Cancellable and plain events share one queue and one deterministic
// (time, schedule-order) ordering.
func TestEngineMixedTrackingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 0) })
	e.AtCancellable(10, func() { order = append(order, 1) })
	e.After(0, func() { order = append(order, 2) })
	e.AfterCancellable(0, func() { order = append(order, 3) })
	e.Run()
	want := []int{2, 3, 0, 1}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestEngineCancelAfterFireReportsFalse(t *testing.T) {
	e := NewEngine()
	id := e.AtCancellable(10, func() {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel of a fired event reported success")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	ids := make([]EventID, 10)
	for i := 0; i < 10; i++ {
		i := i
		ids[i] = e.AtCancellable(Time(i*10), func() { got = append(got, i) })
	}
	e.Cancel(ids[3])
	e.Cancel(ids[7])
	e.Run()
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestEngineSchedulingFromCallback(t *testing.T) {
	e := NewEngine()
	var seq []Time
	e.At(100, func() {
		seq = append(seq, e.Now())
		e.After(50, func() { seq = append(seq, e.Now()) })
	})
	e.Run()
	if len(seq) != 2 || seq[0] != 100 || seq[1] != 150 {
		t.Fatalf("seq = %v, want [100 150]", seq)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	NewEngine().At(1, nil)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if n := e.Run(); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	// Run again resumes.
	if n := e.Run(); n != 2 {
		t.Fatalf("resumed Run fired %d events, want 2", n)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	n := e.RunUntil(25)
	if n != 2 {
		t.Fatalf("RunUntil fired %d, want 2", n)
	}
	if e.Now() != 25 {
		t.Fatalf("clock at %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("total fired %d, want 4", len(fired))
	}
}

func TestEngineDrainUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	// Unlike RunUntil, the clock stays at the last fired event.
	if n := e.DrainUntil(25); n != 2 {
		t.Fatalf("DrainUntil fired %d, want 2", n)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %v, want last event time 20", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	// Draining past everything stops at the final event, not the bound.
	if n := e.DrainUntil(1000); n != 2 {
		t.Fatalf("second DrainUntil fired %d, want 2", n)
	}
	if e.Now() != 40 {
		t.Fatalf("clock at %v, want 40", e.Now())
	}
	if len(fired) != 4 {
		t.Fatalf("total fired %d, want 4", len(fired))
	}
}

func TestEngineZeroValueUsable(t *testing.T) {
	var e Engine
	fired := false
	e.At(5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("zero-value engine did not fire event")
	}
}

// A zero-value engine must behave identically to NewEngine() for the
// cancellation path too (pooled engines are re-created as zero values).
func TestEngineZeroValueCancellable(t *testing.T) {
	var e Engine
	fired := false
	id := e.AfterCancellable(5, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("zero-value engine could not cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired on zero-value engine")
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the engine drains completely.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, u := range times {
			at := Time(u)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestEngineCancelProperty(t *testing.T) {
	f := func(n uint8, seed int64) bool {
		count := int(n%64) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		fired := map[int]bool{}
		ids := make([]EventID, count)
		for i := 0; i < count; i++ {
			i := i
			ids[i] = e.AtCancellable(Time(rng.Intn(100)), func() { fired[i] = true })
		}
		cancelled := map[int]bool{}
		for i := 0; i < count; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				e.Cancel(ids[i])
			}
		}
		e.Run()
		for i := 0; i < count; i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func() {})
		}
		e.Run()
	}
}
