// Package sim provides a deterministic discrete-event simulation engine.
//
// All Nimblock components execute against a virtual clock measured in
// microseconds. Events scheduled for the same instant fire in the order
// they were scheduled, which makes every simulation run reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports d as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Std converts d to a standard library time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Microsecond }

// String formats the duration using the standard library representation.
func (d Duration) String() string { return d.Std().String() }

// FromStd converts a standard library duration to a simulation duration,
// truncating to microsecond precision.
func FromStd(d time.Duration) Duration { return Duration(d / time.Microsecond) }

// Seconds builds a Duration from a floating-point second count.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Milliseconds builds a Duration from a floating-point millisecond count.
func Milliseconds(ms float64) Duration { return Duration(ms * float64(Millisecond)) }
