package workload

// Streamed workload generation. A Stream draws the same events, in the
// same order, as Generate — one shared draw path keeps the two
// interchangeable — but yields them one at a time, so a fleet-scale run
// with millions of arrivals holds O(1) generator state instead of a
// materialized Sequence. Admission loops pull from the stream as
// simulated time advances; nothing is retained after an event is
// consumed.

import (
	"math/rand"

	"nimblock/internal/apps"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// Stream produces a spec's events one at a time. The zero value is not
// usable; build with NewStream. A Stream is single-use and not safe for
// concurrent use — each consumer (each fleet router, each replica of a
// run) owns its own.
type Stream struct {
	spec Spec
	rng  *rand.Rand
	pool []string
	n    int // total events; < 0 streams without bound
	i    int // events emitted so far
	at   sim.Time
}

// NewStream builds the deterministic event stream for the spec. The
// same (spec, seed) pair always yields the same events, and the first
// spec.Events draws match Generate(spec, seed) exactly. A negative
// spec.Events makes the stream unbounded — Next never reports
// exhaustion — which is how open-loop sweeps run at a target rate for a
// target duration instead of a target count.
func NewStream(spec Spec, seed int64) *Stream {
	n := spec.Events
	if n == 0 {
		n = EventsPerSequence
	}
	pool := spec.Pool
	if len(pool) == 0 {
		pool = apps.Names()
	}
	return &Stream{
		spec: spec,
		rng:  rand.New(rand.NewSource(seed)),
		pool: pool,
		n:    n,
	}
}

// Next returns the stream's next event, or ok=false once spec.Events
// have been emitted (never for an unbounded stream).
func (s *Stream) Next() (Event, bool) {
	if s.n >= 0 && s.i >= s.n {
		return Event{}, false
	}
	batch := s.spec.FixedBatch
	if batch <= 0 {
		cap := MaxBatch
		if s.spec.BatchCap > 0 && s.spec.BatchCap < cap {
			cap = s.spec.BatchCap
		}
		batch = 1 + s.rng.Intn(cap)
	}
	prio := s.spec.FixedPriority
	if prio <= 0 {
		prio = sched.PriorityLevels[s.rng.Intn(len(sched.PriorityLevels))]
	}
	ev := Event{
		App:      s.pool[s.rng.Intn(len(s.pool))],
		Batch:    batch,
		Priority: prio,
		Arrival:  s.at,
	}
	gap := s.spec.FixedGap
	if gap <= 0 && s.spec.PoissonRate > 0 {
		gap = sim.Seconds(s.rng.ExpFloat64() / s.spec.PoissonRate)
	}
	if gap <= 0 {
		gap = s.spec.Scenario.gap(s.rng)
	}
	s.at = s.at.Add(gap)
	s.i++
	return ev, true
}

// Emitted reports how many events the stream has produced so far.
func (s *Stream) Emitted() int { return s.i }
