// Package workload generates the event sequences used by the evaluation.
//
// An event is the arrival of an application at the hypervisor: an
// application name, batch information, a priority level, and an arrival
// time (Section 5.1). The paper's test stimuli are sequences of 20
// randomly selected events from the six-application pool, with randomly
// generated batch sizes (up to 30) and priorities (1/3/9), replayed
// identically against every scheduling algorithm. Three congestion
// scenarios set the inter-arrival gaps: standard (1500-2000 ms), stress
// (150-200 ms), and real-time (a consistent 50 ms).
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"nimblock/internal/apps"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// Event is one application arrival.
type Event struct {
	App      string   `json:"app"`
	Batch    int      `json:"batch"`
	Priority int      `json:"priority"`
	Arrival  sim.Time `json:"arrival_us"`
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%v %s batch=%d prio=%d", e.Arrival, e.App, e.Batch, e.Priority)
}

// Sequence is an ordered set of events forming one test.
type Sequence []Event

// Validate checks application names and field ranges.
func (s Sequence) Validate() error {
	last := sim.Time(-1)
	for i, e := range s {
		if _, err := apps.Graph(e.App); err != nil {
			return fmt.Errorf("workload: event %d: %w", i, err)
		}
		if e.Batch < 1 || e.Batch > MaxBatch {
			return fmt.Errorf("workload: event %d: batch %d outside [1,%d]", i, e.Batch, MaxBatch)
		}
		ok := false
		for _, p := range sched.PriorityLevels {
			if e.Priority == p {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("workload: event %d: priority %d not in %v", i, e.Priority, sched.PriorityLevels)
		}
		if e.Arrival < last {
			return fmt.Errorf("workload: event %d: arrivals not sorted", i)
		}
		last = e.Arrival
	}
	return nil
}

// MaxBatch is the largest batch size generated (paper: 30).
const MaxBatch = 30

// EventsPerSequence matches the paper's 20 events per sequence.
const EventsPerSequence = 20

// SequencesPerTest matches the paper's 10 distinct sequences per test.
const SequencesPerTest = 10

// Scenario is a congestion condition from Section 5.1.
type Scenario int

const (
	// Standard emulates low demand: 1500-2000 ms between events.
	Standard Scenario = iota
	// Stress is a rapid stream: 150-200 ms between events.
	Stress
	// RealTime emulates streaming input: a consistent 50 ms gap.
	RealTime
)

// String names the scenario as in the figures.
func (s Scenario) String() string {
	switch s {
	case Standard:
		return "standard"
	case Stress:
		return "stress"
	case RealTime:
		return "real-time"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Scenarios lists all congestion conditions in figure order.
func Scenarios() []Scenario { return []Scenario{Standard, Stress, RealTime} }

// gap draws one inter-arrival gap for the scenario.
func (s Scenario) gap(rng *rand.Rand) sim.Duration {
	switch s {
	case Standard:
		return sim.Milliseconds(1500 + 500*rng.Float64())
	case Stress:
		return sim.Milliseconds(150 + 50*rng.Float64())
	default:
		return 50 * sim.Millisecond
	}
}

// Spec parameterizes sequence generation.
type Spec struct {
	// Scenario sets inter-arrival gaps.
	Scenario Scenario
	// Events is the sequence length (default EventsPerSequence).
	Events int
	// FixedBatch forces every event's batch size; 0 draws uniformly
	// from [1, MaxBatch].
	FixedBatch int
	// BatchCap, when positive, caps drawn batch sizes: the draw becomes
	// uniform over [1, min(BatchCap, MaxBatch)]. Ignored when FixedBatch
	// is set. Load-style sweeps cap batches so offered work scales with
	// the arrival rate, not with a heavy tail of giant batches.
	BatchCap int
	// FixedGap overrides the scenario gap when positive (e.g. the 500 ms
	// spacing used for Table 3).
	FixedGap sim.Duration
	// Pool restricts application choice; nil uses the whole suite.
	Pool []string
	// FixedPriority forces every event's priority; 0 draws uniformly
	// from the three levels.
	FixedPriority int
	// PoissonRate, when positive, draws inter-arrival gaps from an
	// exponential distribution with this mean arrival rate (events per
	// second) instead of the scenario's uniform gaps — the arrival
	// process cloud providers usually assume.
	PoissonRate float64
}

// Generate produces one deterministic random sequence for the spec by
// materializing its Stream. A negative spec.Events (an unbounded
// stream) is treated as the default length here — only Stream consumers
// can run open-ended.
func Generate(spec Spec, seed int64) Sequence {
	if spec.Events < 0 {
		spec.Events = EventsPerSequence
	}
	st := NewStream(spec, seed)
	n := spec.Events
	if n == 0 {
		n = EventsPerSequence
	}
	seq := make(Sequence, 0, n)
	for {
		ev, ok := st.Next()
		if !ok {
			return seq
		}
		seq = append(seq, ev)
	}
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix, so
// distinct inputs always map to distinct outputs and close inputs map
// to statistically unrelated ones.
func splitmix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed maps (baseSeed, index) to the seed of sequence i of a
// test. The SplitMix64 golden-ratio stride plus finalizer guarantees
// two (base, i) pairs share a seed only when base1-base2 is an exact
// multiple of the stride — never for the small base-seed offsets
// experiments actually use. The previous derivation was the linear
// baseSeed + i*1_000_003, under which two tests with base seeds
// 1_000_003 apart shared 9 of their 10 sequences.
func DeriveSeed(baseSeed int64, i int) int64 {
	const golden = 0x9E3779B97F4A7C15
	return int64(splitmix64(uint64(baseSeed) + (uint64(i)+1)*golden))
}

// GenerateTest produces the paper's full stimulus for one scenario:
// SequencesPerTest sequences derived from the base seed via DeriveSeed.
func GenerateTest(spec Spec, baseSeed int64) []Sequence {
	out := make([]Sequence, SequencesPerTest)
	for i := range out {
		out[i] = Generate(spec, DeriveSeed(baseSeed, i))
	}
	return out
}

// ParseJSON decodes sequences produced by the generation tool (a JSON
// array of sequences) and validates each one.
func ParseJSON(data []byte) ([]Sequence, error) {
	var seqs []Sequence
	if err := json.Unmarshal(data, &seqs); err != nil {
		return nil, fmt.Errorf("workload: parsing sequences: %w", err)
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("workload: no sequences in input")
	}
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("workload: sequence %d: %w", i, err)
		}
	}
	return seqs, nil
}

// MarshalJSON renders sequences in the tool's interchange format.
func MarshalJSON(seqs []Sequence) ([]byte, error) {
	return json.MarshalIndent(seqs, "", "  ")
}

// Names lists the distinct applications in the sequence, sorted.
func (s Sequence) Names() []string {
	set := map[string]bool{}
	for _, e := range s {
		set[e.App] = true
	}
	var names []string
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
