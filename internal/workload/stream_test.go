package workload

import (
	"testing"

	"nimblock/internal/sim"
)

// The stream and the materializing generator must be interchangeable:
// same spec and seed, same events, in order.
func TestStreamMatchesGenerate(t *testing.T) {
	specs := []Spec{
		{Scenario: Standard},
		{Scenario: Stress, Events: 57},
		{Scenario: RealTime, FixedBatch: 4, FixedPriority: 9},
		{Scenario: Stress, BatchCap: 5, Pool: []string{"LeNet", "OpticalFlow"}},
		{PoissonRate: 40, Events: 200},
		{FixedGap: 500 * sim.Millisecond, Events: 31},
	}
	for si, spec := range specs {
		for seed := int64(1); seed <= 5; seed++ {
			want := Generate(spec, seed)
			st := NewStream(spec, seed)
			for i, ev := range want {
				got, ok := st.Next()
				if !ok {
					t.Fatalf("spec %d seed %d: stream ended at %d, want %d events", si, seed, i, len(want))
				}
				if got != ev {
					t.Fatalf("spec %d seed %d event %d: stream %+v != generate %+v", si, seed, i, got, ev)
				}
			}
			if _, ok := st.Next(); ok {
				t.Fatalf("spec %d seed %d: stream yields beyond %d events", si, seed, len(want))
			}
			if st.Emitted() != len(want) {
				t.Fatalf("spec %d seed %d: emitted %d, want %d", si, seed, st.Emitted(), len(want))
			}
		}
	}
}

// An unbounded stream keeps producing past any sequence length, with
// strictly advancing arrivals and valid fields.
func TestStreamUnbounded(t *testing.T) {
	st := NewStream(Spec{Scenario: Stress, Events: -1}, 7)
	last := sim.Time(-1)
	for i := 0; i < 10*EventsPerSequence; i++ {
		ev, ok := st.Next()
		if !ok {
			t.Fatalf("unbounded stream ended at event %d", i)
		}
		if ev.Arrival < last {
			t.Fatalf("event %d: arrival %v before %v", i, ev.Arrival, last)
		}
		if ev.Batch < 1 || ev.Batch > MaxBatch {
			t.Fatalf("event %d: batch %d", i, ev.Batch)
		}
		last = ev.Arrival
	}
}

// Seed-derivation independence: no two (baseSeed, sequence index) pairs
// across a band of adjacent base seeds may collide into the same
// per-sequence seed. The old linear derivation (baseSeed + i*1_000_003)
// failed exactly this — base seeds 1_000_003 apart shared 9 of 10
// sequences.
func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64][2]int64{}
	bases := []int64{0, 1, 2, 17, 1_000_003, 2_000_006, 20230617, 20230617 + 1_000_003}
	for _, base := range bases {
		for i := 0; i < SequencesPerTest; i++ {
			s := DeriveSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (base %d, seq %d) and (base %d, seq %d) both derive %d",
					prev[0], prev[1], base, int64(i), s)
			}
			seen[s] = [2]int64{base, int64(i)}
		}
	}
	// And the derived sequences themselves must differ across adjacent
	// bases (the user-visible symptom of the old collision).
	a := GenerateTest(Spec{Scenario: Stress}, 20230617)
	b := GenerateTest(Spec{Scenario: Stress}, 20230617+1_000_003)
	for i := range a {
		for j := range b {
			if len(a[i]) == len(b[j]) && a[i][0] == b[j][0] && a[i][len(a[i])-1] == b[j][len(b[j])-1] {
				same := true
				for k := range a[i] {
					if a[i][k] != b[j][k] {
						same = false
						break
					}
				}
				if same {
					t.Fatalf("tests with adjacent base seeds share sequence (%d == %d)", i, j)
				}
			}
		}
	}
}
