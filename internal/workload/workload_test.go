package workload

import (
	"testing"
	"testing/quick"

	"nimblock/internal/apps"
	"nimblock/internal/sim"
)

func TestGenerateDefaults(t *testing.T) {
	seq := Generate(Spec{Scenario: Standard}, 1)
	if len(seq) != EventsPerSequence {
		t.Fatalf("len = %d, want %d", len(seq), EventsPerSequence)
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq[0].Arrival != 0 {
		t.Fatalf("first arrival = %v, want 0", seq[0].Arrival)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Scenario: Stress}, 42)
	b := Generate(Spec{Scenario: Stress}, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Generate(Spec{Scenario: Stress}, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestScenarioGaps(t *testing.T) {
	check := func(s Scenario, lo, hi sim.Duration) {
		seq := Generate(Spec{Scenario: s, Events: 50}, 7)
		for i := 1; i < len(seq); i++ {
			gap := seq[i].Arrival.Sub(seq[i-1].Arrival)
			if gap < lo || gap > hi {
				t.Errorf("%v: gap %v outside [%v, %v]", s, gap, lo, hi)
			}
		}
	}
	check(Standard, 1500*sim.Millisecond, 2000*sim.Millisecond)
	check(Stress, 150*sim.Millisecond, 200*sim.Millisecond)
	check(RealTime, 50*sim.Millisecond, 50*sim.Millisecond)
}

func TestFixedOverrides(t *testing.T) {
	seq := Generate(Spec{
		Scenario:      Stress,
		Events:        10,
		FixedBatch:    5,
		FixedGap:      500 * sim.Millisecond,
		FixedPriority: 9,
		Pool:          []string{apps.LeNet},
	}, 3)
	for i, e := range seq {
		if e.Batch != 5 || e.Priority != 9 || e.App != apps.LeNet {
			t.Fatalf("event %d = %+v", i, e)
		}
		if e.Arrival != sim.Time(i)*sim.Time(500*sim.Millisecond) {
			t.Fatalf("event %d arrival = %v", i, e.Arrival)
		}
	}
}

func TestBatchCap(t *testing.T) {
	seq := Generate(Spec{Scenario: Stress, Events: 200, BatchCap: 4}, 5)
	hitCap := false
	for i, e := range seq {
		if e.Batch < 1 || e.Batch > 4 {
			t.Fatalf("event %d batch %d outside [1,4]", i, e.Batch)
		}
		if e.Batch == 4 {
			hitCap = true
		}
	}
	if !hitCap {
		t.Fatal("cap value never drawn in 200 events")
	}
	// FixedBatch wins over BatchCap; caps above MaxBatch are inert.
	for i, e := range Generate(Spec{Scenario: Stress, Events: 20, BatchCap: 4, FixedBatch: 7}, 5) {
		if e.Batch != 7 {
			t.Fatalf("event %d batch %d, want fixed 7", i, e.Batch)
		}
	}
	if err := Generate(Spec{Scenario: Stress, Events: 50, BatchCap: MaxBatch * 10}, 5).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTest(t *testing.T) {
	seqs := GenerateTest(Spec{Scenario: Standard}, 11)
	if len(seqs) != SequencesPerTest {
		t.Fatalf("got %d sequences", len(seqs))
	}
	// Distinct sequences.
	if seqs[0][0] == seqs[1][0] && seqs[0][1] == seqs[1][1] && seqs[0][2] == seqs[1][2] {
		t.Fatal("sequences 0 and 1 look identical")
	}
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			t.Fatalf("sequence %d: %v", i, err)
		}
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	bad := []Sequence{
		{{App: "nope", Batch: 1, Priority: 1, Arrival: 0}},
		{{App: apps.LeNet, Batch: 0, Priority: 1, Arrival: 0}},
		{{App: apps.LeNet, Batch: MaxBatch + 1, Priority: 1, Arrival: 0}},
		{{App: apps.LeNet, Batch: 1, Priority: 2, Arrival: 0}},
		{
			{App: apps.LeNet, Batch: 1, Priority: 1, Arrival: 100},
			{App: apps.LeNet, Batch: 1, Priority: 1, Arrival: 50},
		},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sequence %d accepted", i)
		}
	}
}

func TestNames(t *testing.T) {
	seq := Sequence{
		{App: apps.LeNet, Batch: 1, Priority: 1},
		{App: apps.AlexNet, Batch: 1, Priority: 1},
		{App: apps.LeNet, Batch: 1, Priority: 1},
	}
	got := seq.Names()
	if len(got) != 2 || got[0] != apps.AlexNet || got[1] != apps.LeNet {
		t.Fatalf("Names = %v", got)
	}
}

func TestScenarioStrings(t *testing.T) {
	for _, s := range []Scenario{Standard, Stress, RealTime, Scenario(99)} {
		if s.String() == "" {
			t.Fatalf("empty name for scenario %d", int(s))
		}
	}
	if len(Scenarios()) != 3 {
		t.Fatal("Scenarios() should list three conditions")
	}
}

// Property: every generated sequence validates, for any seed and scenario.
func TestGenerateAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, sc uint8, fixedBatch uint8) bool {
		spec := Spec{
			Scenario:   Scenarios()[int(sc)%3],
			FixedBatch: int(fixedBatch) % (MaxBatch + 1), // 0 = random
		}
		return Generate(spec, seed).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := GenerateTest(Spec{Scenario: Stress, Events: 5}, 9)
	data, err := MarshalJSON(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost sequences: %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		for j := range orig[i] {
			if back[i][j] != orig[i][j] {
				t.Fatalf("event %d/%d changed: %v vs %v", i, j, back[i][j], orig[i][j])
			}
		}
	}
}

func TestParseJSONErrors(t *testing.T) {
	if _, err := ParseJSON([]byte("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseJSON([]byte("[]")); err == nil {
		t.Fatal("empty input accepted")
	}
	bad := `[[{"app":"ghost","batch":1,"priority":1,"arrival_us":0}]]`
	if _, err := ParseJSON([]byte(bad)); err == nil {
		t.Fatal("invalid sequence accepted")
	}
}

func TestPoissonArrivals(t *testing.T) {
	spec := Spec{Scenario: Stress, Events: 400, PoissonRate: 5} // mean gap 200 ms
	seq := Generate(spec, 17)
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	var total sim.Duration
	distinct := map[sim.Duration]bool{}
	for i := 1; i < len(seq); i++ {
		gap := seq[i].Arrival.Sub(seq[i-1].Arrival)
		total += gap
		distinct[gap] = true
	}
	mean := total.Seconds() / float64(len(seq)-1)
	if mean < 0.15 || mean > 0.25 {
		t.Fatalf("mean gap %.3fs, want ~0.2s", mean)
	}
	// Exponential gaps are continuous: virtually all distinct, unlike
	// the uniform scenario draws.
	if len(distinct) < 350 {
		t.Fatalf("only %d distinct gaps", len(distinct))
	}
	// FixedGap still wins over PoissonRate.
	fixed := Generate(Spec{Scenario: Stress, Events: 5, PoissonRate: 5, FixedGap: sim.Second}, 1)
	if got := fixed[1].Arrival.Sub(fixed[0].Arrival); got != sim.Second {
		t.Fatalf("FixedGap overridden: %v", got)
	}
}
