package workload

import "testing"

// FuzzParseJSON ensures arbitrary input never panics the sequence parser
// and that anything it accepts round-trips losslessly.
func FuzzParseJSON(f *testing.F) {
	seed, _ := MarshalJSON([]Sequence{Generate(Spec{Scenario: Stress, Events: 3}, 1)})
	f.Add(seed)
	f.Add([]byte("[]"))
	f.Add([]byte("not json"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, err := ParseJSON(data)
		if err != nil {
			return
		}
		out, err := MarshalJSON(seqs)
		if err != nil {
			t.Fatalf("accepted sequences failed to marshal: %v", err)
		}
		back, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(seqs) {
			t.Fatalf("round trip changed sequence count")
		}
	})
}
