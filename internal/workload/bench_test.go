package workload

import "testing"

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Spec{Scenario: Stress}, int64(i))
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	seqs := GenerateTest(Spec{Scenario: Standard}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := MarshalJSON(seqs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}
