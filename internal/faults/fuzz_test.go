package faults

import (
	"reflect"
	"testing"
)

// FuzzPlan checks the canonical-form property: any text that parses into
// a plan must render to a string that parses back into the same plan.
func FuzzPlan(f *testing.F) {
	f.Add("seed 42\ncrc prob=0.1 slot=3 from=1s until=10s")
	f.Add("sd prob=0.05\ndead slot=7 at=2.5s")
	f.Add("hang prob=0.01 app=LeNet task=2\nslow prob=0.02 factor=3.5")
	f.Add("stall prob=0.1 delay=20ms # comment")
	f.Add("crc prob=1e-3\nseed -9000")
	f.Add("lost prob=0.05 app=LeNet from=1s\ncorrupt prob=0.02 slot=3")
	f.Add("board-crash board=1 at=5s recover=30s")
	f.Add("board-hang board=0 at=10s\nboard-crash board=2 at=1s")
	f.Add("board-degrade board=2 factor=3 from=5s until=25s\nseed 7")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ParsePlan(text)
		if err != nil {
			return
		}
		canon := p.String()
		back, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not parse: %v", canon, text, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("round trip changed plan:\ninput %q\nfirst %+v\nsecond %+v", text, p, back)
		}
		if again := back.String(); again != canon {
			t.Fatalf("canonical form is not a fixed point: %q then %q", canon, again)
		}
		// Every parseable plan must build an injector.
		if _, err := New(p); err != nil {
			t.Fatalf("parsed plan %q rejected by New: %v", text, err)
		}
		// Board-event extraction must be total on valid plans and cover
		// exactly the board-scoped faults.
		scoped := 0
		for _, fl := range p.Faults {
			if fl.Kind.boardScoped() {
				scoped++
			}
		}
		if evs := p.BoardEvents(); len(evs) != scoped {
			t.Fatalf("plan %q has %d board faults but %d board events", text, scoped, len(evs))
		}
	})
}
