// Package faults provides deterministic fault injection for the virtual
// FPGA and its hypervisor.
//
// A fault plan is a declarative list of fault specifications — transient
// CRC faults, SD read errors, permanent slot failures at a known time,
// task hangs, task slowdowns, and CAP stalls — each scoped to a slot,
// application, task, and time window. A seedable Injector evaluates the
// plan at the probe points exposed by fpga.Injector, so every run of a
// plan is bit-for-bit reproducible. Plans are written either in Go or in
// a small line-oriented DSL (see ParsePlan), which the chaos experiment
// and examples use. Checkpoint integrity faults (lost/corrupt) probe at
// restore time and force a fall-back to from-scratch re-execution.
//
// The recovery side lives with the mechanisms: the board retries
// transient faults with capped exponential backoff, the hypervisor
// watchdog re-executes items lost to hangs, and slots that fail
// permanently or exceed the quarantine threshold are taken offline while
// the scheduler's goal numbers adapt to the reduced board.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"nimblock/internal/fpga"
	"nimblock/internal/sim"
)

// Kind is one fault mechanism.
type Kind int

const (
	// TransientCRC fails a reconfiguration attempt with a CRC mismatch;
	// the board retries with backoff.
	TransientCRC Kind = iota
	// SDReadError fails a reconfiguration attempt while staging the
	// bitstream from SD; also retryable.
	SDReadError
	// PermanentSlot kills a slot outright at time From; the hypervisor
	// takes it offline even mid-execution.
	PermanentSlot
	// TaskHang makes a matching item never complete; only the watchdog
	// recovers the slot.
	TaskHang
	// TaskSlowdown multiplies a matching item's latency by Factor.
	TaskSlowdown
	// CAPStall adds Stall extra latency to a reconfiguration attempt.
	CAPStall
	// CheckpointLost makes a matching checkpoint restore find its
	// snapshot gone — the item falls back to from-scratch re-execution
	// without spending restore time.
	CheckpointLost
	// CheckpointCorrupt makes a matching checkpoint restore stream back
	// through the CAP and then fail validation — restore time is spent,
	// then the item re-executes from scratch.
	CheckpointCorrupt
	// BoardCrash kills an entire board at time From: every slot, the CAP,
	// and all in-flight work. The fleet health layer declares the board
	// dead and fails work over; an optional Recover time schedules the
	// board's return through the circuit breaker.
	BoardCrash
	// BoardHang freezes a board at time From: events stop, heartbeats
	// stall, and liveness detection must notice the silence. Recover,
	// when set, revives the board.
	BoardHang
	// BoardDegrade multiplies every item latency on the board by Factor
	// over the [From, Until) window, marking the board degraded so
	// health-aware dispatch steers new work elsewhere.
	BoardDegrade

	numKinds
)

// keyword returns the DSL keyword for the kind.
func (k Kind) keyword() string {
	switch k {
	case TransientCRC:
		return "crc"
	case SDReadError:
		return "sd"
	case PermanentSlot:
		return "dead"
	case TaskHang:
		return "hang"
	case TaskSlowdown:
		return "slow"
	case CAPStall:
		return "stall"
	case CheckpointLost:
		return "lost"
	case CheckpointCorrupt:
		return "corrupt"
	case BoardCrash:
		return "board-crash"
	case BoardHang:
		return "board-hang"
	case BoardDegrade:
		return "board-degrade"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// String names the kind.
func (k Kind) String() string { return k.keyword() }

// AnySlot and AnyTask are wildcard scopes.
const (
	AnySlot = -1
	AnyTask = -1
)

// Fault is one fault specification. Zero scope fields mean "match
// everything": Slot/Task of -1, empty App, and an open time window.
type Fault struct {
	Kind Kind
	// Slot scopes the fault to one reconfigurable region (AnySlot for
	// all). PermanentSlot requires an explicit slot.
	Slot int
	// App and Task scope execution faults (TaskHang, TaskSlowdown) to
	// one application name and/or task index.
	App  string
	Task int
	// From and Until bound the active window. Until of 0 leaves the
	// window open-ended. PermanentSlot fires exactly at From.
	From  sim.Time
	Until sim.Time
	// Prob is the per-opportunity trigger probability in [0,1].
	// PermanentSlot ignores it (the failure is certain).
	Prob float64
	// Factor is the TaskSlowdown or BoardDegrade latency multiplier
	// (> 1).
	Factor float64
	// Stall is the CAPStall extra latency.
	Stall sim.Duration
	// Board scopes board-level faults (BoardCrash, BoardHang,
	// BoardDegrade) to one board index in a fleet. Other kinds must
	// leave it 0.
	Board int
	// Recover schedules the board's return for BoardCrash and BoardHang
	// (must be after From); 0 means the board never comes back.
	Recover sim.Time
}

// boardScoped reports whether the kind targets a whole board rather
// than a slot, app, or checkpoint.
func (k Kind) boardScoped() bool {
	return k == BoardCrash || k == BoardHang || k == BoardDegrade
}

// active reports whether the window covers now.
func (f Fault) active(now sim.Time) bool {
	return now >= f.From && (f.Until == 0 || now < f.Until)
}

// matchSlot reports whether the fault applies to the slot.
func (f Fault) matchSlot(slot int) bool { return f.Slot == AnySlot || f.Slot == slot }

// matchExec reports whether the fault applies to the (app, task) pair.
func (f Fault) matchExec(app string, task int) bool {
	return (f.App == "" || f.App == app) && (f.Task == AnyTask || f.Task == task)
}

// validate checks one fault.
func (f Fault) validate(i int) error {
	if f.Kind < 0 || f.Kind >= numKinds {
		return fmt.Errorf("faults: fault %d: unknown kind %d", i, int(f.Kind))
	}
	if !(f.Prob >= 0 && f.Prob <= 1) { // also rejects NaN
		return fmt.Errorf("faults: fault %d: probability %v outside [0,1]", i, f.Prob)
	}
	if f.Slot < AnySlot {
		return fmt.Errorf("faults: fault %d: slot %d invalid", i, f.Slot)
	}
	if f.Task < AnyTask {
		return fmt.Errorf("faults: fault %d: task %d invalid", i, f.Task)
	}
	if f.From < 0 || f.Until < 0 {
		return fmt.Errorf("faults: fault %d: negative window", i)
	}
	if f.Until != 0 && f.Until <= f.From {
		return fmt.Errorf("faults: fault %d: empty window [%v,%v)", i, f.From, f.Until)
	}
	if f.Board < 0 {
		return fmt.Errorf("faults: fault %d: board %d invalid", i, f.Board)
	}
	if !f.Kind.boardScoped() {
		if f.Board != 0 {
			return fmt.Errorf("faults: fault %d: board= only applies to board-level kinds", i)
		}
		if f.Recover != 0 {
			return fmt.Errorf("faults: fault %d: recover= only applies to board-crash and board-hang", i)
		}
	} else {
		if f.Slot != AnySlot || f.App != "" || f.Task != AnyTask {
			return fmt.Errorf("faults: fault %d: %v scopes to a board, not slot/app/task", i, f.Kind)
		}
	}
	switch f.Kind {
	case PermanentSlot:
		if f.Slot == AnySlot {
			return fmt.Errorf("faults: fault %d: permanent failure needs an explicit slot", i)
		}
	case TaskSlowdown, BoardDegrade:
		if !(f.Factor > 1 && f.Factor <= 1e6) { // also rejects NaN and Inf
			return fmt.Errorf("faults: fault %d: slowdown factor %v outside (1,1e6]", i, f.Factor)
		}
	case CAPStall:
		if f.Stall <= 0 {
			return fmt.Errorf("faults: fault %d: stall duration %v must be positive", i, f.Stall)
		}
	case BoardCrash, BoardHang:
		if f.Until != 0 {
			return fmt.Errorf("faults: fault %d: %v fires at a point in time, not a window", i, f.Kind)
		}
		if f.Recover != 0 && f.Recover <= f.From {
			return fmt.Errorf("faults: fault %d: recover %v not after at %v", i,
				sim.Duration(f.Recover), sim.Duration(f.From))
		}
	}
	if f.Kind == BoardDegrade && f.Recover != 0 {
		return fmt.Errorf("faults: fault %d: board-degrade ends with until=, not recover=", i)
	}
	if f.Kind != TaskSlowdown && f.Kind != BoardDegrade && f.Factor != 0 {
		return fmt.Errorf("faults: fault %d: factor only applies to slow and board-degrade", i)
	}
	if f.Kind != CAPStall && f.Stall != 0 {
		return fmt.Errorf("faults: fault %d: delay only applies to stall", i)
	}
	if f.Kind == PermanentSlot || f.Kind.boardScoped() {
		if f.Prob != 0 {
			return fmt.Errorf("faults: fault %d: %v is unconditional, prob does not apply", i, f.Kind)
		}
	} else if f.Prob == 0 {
		return fmt.Errorf("faults: fault %d: %v fault with zero probability never fires", i, f.Kind)
	}
	return nil
}

// Plan is a complete fault scenario.
type Plan struct {
	// Seed derives every random decision the plan makes.
	Seed int64
	// Faults are evaluated in order at every probe point.
	Faults []Fault
}

// Validate checks every fault in the plan.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if err := f.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Uniform is the convenience constructor replacing the board's ad-hoc
// FaultRate knob: every reconfiguration attempt faults CRC with the
// given probability.
func Uniform(rate float64, seed int64) Plan {
	return Plan{Seed: seed, Faults: []Fault{{
		Kind: TransientCRC, Slot: AnySlot, Task: AnyTask, Prob: rate,
	}}}
}

// Injector evaluates a plan deterministically. It implements
// fpga.Injector (and its CheckpointInjector extension). Reconfiguration,
// execution, and checkpoint probes draw from independent random streams
// so adding faults of one family to a plan never perturbs the fault
// sequences of the others.
type Injector struct {
	plan     Plan
	reconfig *rand.Rand
	exec     *rand.Rand
	ckpt     *rand.Rand
}

// New builds an injector for the plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		plan:     plan,
		reconfig: rand.New(rand.NewSource(plan.Seed)),
		exec:     rand.New(rand.NewSource(plan.Seed ^ 0x5e3779b97f4a7c15)),
		ckpt:     rand.New(rand.NewSource(plan.Seed ^ 0x2545f4914f6cdd1d)),
	}, nil
}

// Factory adapts the plan to fpga.Config.NewInjector; each board built
// from the config gets a fresh, identically seeded injector.
func (p Plan) Factory() (func() fpga.Injector, error) {
	if _, err := New(p); err != nil {
		return nil, err
	}
	return func() fpga.Injector {
		in, _ := New(p)
		return in
	}, nil
}

// MustFactory is Factory for statically known-good plans.
func (p Plan) MustFactory() func() fpga.Injector {
	f, err := p.Factory()
	if err != nil {
		panic(err)
	}
	return f
}

// ReconfigAttempt implements fpga.Injector. The first triggered
// transient or fatal fault decides the class; CAP stalls accumulate
// independently.
func (in *Injector) ReconfigAttempt(now sim.Time, slot, attempt int) fpga.ReconfigOutcome {
	out := fpga.ReconfigOutcome{}
	for _, f := range in.plan.Faults {
		if !f.active(now) || !f.matchSlot(slot) {
			continue
		}
		switch f.Kind {
		case TransientCRC, SDReadError:
			// One draw per matching fault keeps the stream aligned
			// regardless of earlier outcomes.
			hit := in.reconfig.Float64() < f.Prob
			if hit && out.Class == fpga.FaultNone {
				if f.Kind == TransientCRC {
					out.Class = fpga.FaultCRC
				} else {
					out.Class = fpga.FaultSD
				}
			}
		case PermanentSlot:
			// An attempt on a slot that is past its failure time dies
			// fatally even if the hypervisor has not reaped it yet.
			out.Class = fpga.FaultFatal
		case CAPStall:
			if in.reconfig.Float64() < f.Prob {
				out.Stall += f.Stall
			}
		}
	}
	return out
}

// Exec implements fpga.Injector. Hangs dominate slowdowns; concurrent
// slowdowns multiply.
func (in *Injector) Exec(now sim.Time, app string, task, slot int) fpga.ExecOutcome {
	out := fpga.ExecOutcome{Factor: 1}
	for _, f := range in.plan.Faults {
		if !f.active(now) || !f.matchExec(app, task) || !f.matchSlot(slot) {
			continue
		}
		switch f.Kind {
		case TaskHang:
			if in.exec.Float64() < f.Prob {
				out.Hang = true
			}
		case TaskSlowdown:
			if in.exec.Float64() < f.Prob {
				out.Factor *= f.Factor
			}
		}
	}
	return out
}

// Checkpoint implements fpga.CheckpointInjector: one probe per restore
// attempt. Lost dominates corrupt; one draw per matching fault keeps the
// stream aligned regardless of earlier outcomes.
func (in *Injector) Checkpoint(now sim.Time, app string, task, slot int) fpga.CheckpointOutcome {
	out := fpga.CheckpointOutcome{}
	for _, f := range in.plan.Faults {
		if !f.active(now) || !f.matchExec(app, task) || !f.matchSlot(slot) {
			continue
		}
		switch f.Kind {
		case CheckpointLost:
			if in.ckpt.Float64() < f.Prob {
				out.Lost = true
			}
		case CheckpointCorrupt:
			if in.ckpt.Float64() < f.Prob {
				out.Corrupt = true
			}
		}
	}
	return out
}

// BoardEvent is one board-level fault extracted from a plan for the
// fleet health layer: a crash or hang at At (with optional Recover), or
// a degrade over [At, Until).
type BoardEvent struct {
	Kind    Kind
	Board   int
	At      sim.Time
	Until   sim.Time // BoardDegrade window end (0 = open)
	Recover sim.Time // BoardCrash/BoardHang revival time (0 = never)
	Factor  float64  // BoardDegrade multiplier
}

// BoardEvents extracts the plan's board-level faults in deterministic
// order (time, then board index). Slot/app/checkpoint faults stay with
// the per-board injector; board events are consumed by the cluster and
// serverless health monitors instead.
func (p Plan) BoardEvents() []BoardEvent {
	var out []BoardEvent
	for _, f := range p.Faults {
		if !f.Kind.boardScoped() {
			continue
		}
		out = append(out, BoardEvent{
			Kind: f.Kind, Board: f.Board, At: f.From,
			Until: f.Until, Recover: f.Recover, Factor: f.Factor,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Board < out[j].Board
	})
	return out
}

// PermanentFailures implements fpga.Injector.
func (in *Injector) PermanentFailures() []fpga.SlotFailure {
	var out []fpga.SlotFailure
	for _, f := range in.plan.Faults {
		if f.Kind == PermanentSlot {
			out = append(out, fpga.SlotFailure{Slot: f.Slot, At: f.From})
		}
	}
	return out
}
