package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"nimblock/internal/sim"
)

// The plan DSL is line-oriented: one fault per line, introduced by the
// fault keyword, followed by key=value fields in any order. Blank lines
// and '#' comments are ignored. A 'seed N' line seeds the random
// streams.
//
//	seed 42
//	crc   prob=0.1 slot=3 from=1s until=10s   # transient CRC faults
//	sd    prob=0.05                           # SD read errors, any slot
//	dead  slot=7 at=2.5s                      # permanent slot failure
//	hang  prob=0.01 app=LeNet task=2          # kernel hang
//	slow  prob=0.02 factor=3.5                # 3.5x slowdown
//	stall prob=0.1 delay=20ms                 # CAP stall
//	lost  prob=0.05 app=LeNet                 # checkpoint gone at restore
//	corrupt prob=0.02                         # checkpoint fails validation
//	board-crash board=1 at=5s recover=30s     # whole board dies, revives at 30s
//	board-hang board=0 at=10s                 # board freezes, never returns
//	board-degrade board=2 factor=3 from=5s until=25s  # 3x slowdown window
//
// String renders the canonical form; ParsePlan(p.String()) reproduces p.

// ParsePlan parses the DSL into a validated plan.
func ParsePlan(text string) (Plan, error) {
	p := Plan{}
	seenSeed := false
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "seed" {
			if seenSeed {
				return Plan{}, fmt.Errorf("faults: line %d: duplicate seed", ln+1)
			}
			if len(fields) != 2 {
				return Plan{}, fmt.Errorf("faults: line %d: seed takes one value", ln+1)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: line %d: bad seed %q", ln+1, fields[1])
			}
			p.Seed = v
			seenSeed = true
			continue
		}
		f, err := parseFault(fields)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: line %d: %w", ln+1, err)
		}
		p.Faults = append(p.Faults, f)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// MustParsePlan parses a statically known-good plan.
func MustParsePlan(text string) Plan {
	p, err := ParsePlan(text)
	if err != nil {
		panic(err)
	}
	return p
}

var keywordKinds = map[string]Kind{}

func init() {
	for k := Kind(0); k < numKinds; k++ {
		keywordKinds[k.keyword()] = k
	}
}

func parseFault(fields []string) (Fault, error) {
	kind, ok := keywordKinds[fields[0]]
	if !ok {
		return Fault{}, fmt.Errorf("unknown fault kind %q", fields[0])
	}
	f := Fault{Kind: kind, Slot: AnySlot, Task: AnyTask}
	seen := map[string]bool{}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return Fault{}, fmt.Errorf("field %q is not key=value", kv)
		}
		if seen[key] {
			return Fault{}, fmt.Errorf("duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "slot":
			f.Slot, err = parseInt(val, 0)
		case "app":
			f.App = val
		case "task":
			f.Task, err = parseInt(val, 0)
		case "prob":
			f.Prob, err = strconv.ParseFloat(val, 64)
		case "factor":
			f.Factor, err = strconv.ParseFloat(val, 64)
		case "delay":
			var d sim.Duration
			d, err = parseDuration(val)
			f.Stall = d
		case "board":
			f.Board, err = parseInt(val, 0)
		case "recover":
			var d sim.Duration
			d, err = parseDuration(val)
			f.Recover = sim.Time(d)
		case "at", "from":
			if key == "at" && !pointInTime(kind) {
				return Fault{}, fmt.Errorf("field at= only applies to dead, board-crash, and board-hang")
			}
			if key == "from" && pointInTime(kind) {
				return Fault{}, fmt.Errorf("%s uses at=, not from=", kind)
			}
			var d sim.Duration
			d, err = parseDuration(val)
			f.From = sim.Time(d)
		case "until":
			var d sim.Duration
			d, err = parseDuration(val)
			f.Until = sim.Time(d)
		default:
			return Fault{}, fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return Fault{}, fmt.Errorf("field %q: %v", kv, err)
		}
	}
	if pointInTime(kind) && !seen["at"] {
		return Fault{}, fmt.Errorf("%s needs at=", kind)
	}
	return f, nil
}

// pointInTime reports whether the kind fires at one instant (at=)
// rather than over a window (from=/until=).
func pointInTime(k Kind) bool {
	return k == PermanentSlot || k == BoardCrash || k == BoardHang
}

func parseInt(s string, min int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v < min {
		return 0, fmt.Errorf("value %d below %d", v, min)
	}
	return v, nil
}

func parseDuration(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	return sim.FromStd(d), nil
}

// String renders the plan in canonical DSL form.
func (p Plan) String() string {
	var b strings.Builder
	if p.Seed != 0 {
		fmt.Fprintf(&b, "seed %d\n", p.Seed)
	}
	for _, f := range p.Faults {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one fault as a canonical DSL line.
func (f Fault) String() string {
	var parts []string
	parts = append(parts, f.Kind.keyword())
	if f.Kind.boardScoped() {
		parts = append(parts, fmt.Sprintf("board=%d", f.Board))
	}
	if f.Slot != AnySlot {
		parts = append(parts, fmt.Sprintf("slot=%d", f.Slot))
	}
	if f.App != "" {
		parts = append(parts, "app="+f.App)
	}
	if f.Task != AnyTask {
		parts = append(parts, fmt.Sprintf("task=%d", f.Task))
	}
	if f.Prob != 0 {
		parts = append(parts, "prob="+strconv.FormatFloat(f.Prob, 'g', -1, 64))
	}
	if f.Factor != 0 {
		parts = append(parts, "factor="+strconv.FormatFloat(f.Factor, 'g', -1, 64))
	}
	if f.Stall != 0 {
		parts = append(parts, "delay="+f.Stall.String())
	}
	if pointInTime(f.Kind) {
		parts = append(parts, "at="+sim.Duration(f.From).String())
	} else if f.From != 0 {
		parts = append(parts, "from="+sim.Duration(f.From).String())
	}
	if f.Until != 0 {
		parts = append(parts, "until="+sim.Duration(f.Until).String())
	}
	if f.Recover != 0 {
		parts = append(parts, "recover="+sim.Duration(f.Recover).String())
	}
	return strings.Join(parts, " ")
}
