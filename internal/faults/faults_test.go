package faults

import (
	"reflect"
	"strings"
	"testing"

	"nimblock/internal/fpga"
	"nimblock/internal/sim"
)

func TestParsePlanFull(t *testing.T) {
	text := `
# chaos scenario
seed 42
crc   prob=0.1 slot=3 from=1s until=10s
sd    prob=0.05
dead  slot=7 at=2.5s
hang  prob=0.01 app=LeNet task=2
slow  prob=0.02 factor=3.5
stall prob=0.1 delay=20ms
`
	p, err := ParsePlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || len(p.Faults) != 6 {
		t.Fatalf("plan = %+v", p)
	}
	want := []Fault{
		{Kind: TransientCRC, Slot: 3, Task: AnyTask, Prob: 0.1, From: sim.Time(sim.Second), Until: sim.Time(10 * sim.Second)},
		{Kind: SDReadError, Slot: AnySlot, Task: AnyTask, Prob: 0.05},
		{Kind: PermanentSlot, Slot: 7, Task: AnyTask, From: sim.Time(2500 * sim.Millisecond)},
		{Kind: TaskHang, Slot: AnySlot, App: "LeNet", Task: 2, Prob: 0.01},
		{Kind: TaskSlowdown, Slot: AnySlot, Task: AnyTask, Prob: 0.02, Factor: 3.5},
		{Kind: CAPStall, Slot: AnySlot, Task: AnyTask, Prob: 0.1, Stall: 20 * sim.Millisecond},
	}
	if !reflect.DeepEqual(p.Faults, want) {
		t.Fatalf("faults = %+v\nwant %+v", p.Faults, want)
	}
}

func TestPlanStringRoundTrips(t *testing.T) {
	p := Plan{Seed: 7, Faults: []Fault{
		{Kind: TransientCRC, Slot: AnySlot, Task: AnyTask, Prob: 0.25},
		{Kind: PermanentSlot, Slot: 9, Task: AnyTask, From: sim.Time(3 * sim.Second)},
		{Kind: TaskHang, Slot: 2, App: "OpticalFlow", Task: 1, Prob: 1, From: sim.Time(sim.Second), Until: sim.Time(2 * sim.Second)},
		{Kind: TaskSlowdown, Slot: AnySlot, Task: AnyTask, Prob: 0.5, Factor: 10},
		{Kind: CAPStall, Slot: AnySlot, Task: AnyTask, Prob: 1, Stall: sim.Duration(1500)},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("canonical form %q does not parse: %v", p.String(), err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip changed plan:\n%+v\n%+v", p, back)
	}
}

func TestParsePlanRejects(t *testing.T) {
	bad := []string{
		"bogus prob=0.5",
		"crc",                           // zero probability never fires
		"crc prob=2",                    // probability out of range
		"crc prob=NaN",                  // not a probability
		"crc prob",                      // not key=value
		"crc prob=0.5 prob=0.5",         // duplicate field
		"crc prob=0.5 wat=1",            // unknown field
		"crc prob=0.5 from=5s until=1s", // empty window
		"crc prob=0.5 at=1s",            // at= is dead-only
		"dead slot=1",                   // missing at=
		"dead slot=1 at=1s prob=.5",     // dead is unconditional
		"dead at=1s",                    // missing slot
		"dead slot=1 from=1s",           // dead uses at=
		"slow prob=0.5",                 // missing factor
		"slow prob=0.5 factor=0.5",      // factor must exceed 1
		"stall prob=0.5",                // missing delay
		"stall prob=0.5 delay=-1ms",     // negative delay
		"hang prob=0.5 slot=-3",         // bad slot
		"seed 1\nseed 2",                // duplicate seed
		"seed x",
	}
	for _, text := range bad {
		if _, err := ParsePlan(text); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

func TestUniformMatchesLegacyFaultRate(t *testing.T) {
	// The Uniform plan and the board's legacy FaultRate knob must
	// produce identical fault sequences for the same seed.
	plan := Uniform(0.5, 42)
	inj, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	legacy := fpga.NewUniformInjector(0.5, 42)
	for i := 0; i < 100; i++ {
		a := inj.ReconfigAttempt(0, i%10, 0)
		b := legacy.ReconfigAttempt(0, i%10, 0)
		if a.Class != b.Class {
			t.Fatalf("draw %d: plan %v, legacy %v", i, a.Class, b.Class)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan := MustParsePlan("seed 3\ncrc prob=0.3\nhang prob=0.2\nstall prob=0.5 delay=1ms")
	a, _ := New(plan)
	b, _ := New(plan)
	for i := 0; i < 200; i++ {
		ra, rb := a.ReconfigAttempt(sim.Time(i), i%8, 0), b.ReconfigAttempt(sim.Time(i), i%8, 0)
		if ra != rb {
			t.Fatalf("probe %d: %+v vs %+v", i, ra, rb)
		}
		ea, eb := a.Exec(sim.Time(i), "x", 0, i%8), b.Exec(sim.Time(i), "x", 0, i%8)
		if ea != eb {
			t.Fatalf("exec probe %d: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestWindowsAndScopes(t *testing.T) {
	plan := MustParsePlan(`
crc prob=1 slot=2 from=1s until=2s
dead slot=5 at=3s
hang prob=1 app=A task=1
slow prob=1 factor=2 app=B
`)
	inj, _ := New(plan)
	sec := sim.Time(sim.Second)
	// Outside the window or slot scope: clean.
	if out := inj.ReconfigAttempt(0, 2, 0); out.Class != fpga.FaultNone {
		t.Fatalf("fault before window: %+v", out)
	}
	if out := inj.ReconfigAttempt(sec+sec/2, 3, 0); out.Class != fpga.FaultNone {
		t.Fatalf("fault on unscoped slot: %+v", out)
	}
	if out := inj.ReconfigAttempt(sec+sec/2, 2, 0); out.Class != fpga.FaultCRC {
		t.Fatalf("no fault inside window: %+v", out)
	}
	if out := inj.ReconfigAttempt(2*sec, 2, 0); out.Class != fpga.FaultNone {
		t.Fatalf("window end is exclusive: %+v", out)
	}
	// A reconfiguration attempt on a dead slot after its failure time is
	// fatal even before the hypervisor reaps it.
	if out := inj.ReconfigAttempt(4*sec, 5, 0); out.Class != fpga.FaultFatal {
		t.Fatalf("attempt on dead slot: %+v", out)
	}
	if out := inj.ReconfigAttempt(4*sec, 4, 0); out.Class != fpga.FaultNone {
		t.Fatalf("neighbour of dead slot faulted: %+v", out)
	}
	// Exec scoping by app and task.
	if out := inj.Exec(0, "A", 1, 0); !out.Hang {
		t.Fatalf("scoped hang did not fire: %+v", out)
	}
	if out := inj.Exec(0, "A", 0, 0); out.Hang {
		t.Fatalf("hang fired on wrong task: %+v", out)
	}
	if out := inj.Exec(0, "B", 3, 0); out.Factor != 2 {
		t.Fatalf("scoped slowdown did not fire: %+v", out)
	}
	if out := inj.Exec(0, "C", 0, 0); out.Hang || out.Factor != 1 {
		t.Fatalf("unscoped app faulted: %+v", out)
	}
	// Permanent failures are exposed for hypervisor scheduling.
	fails := inj.PermanentFailures()
	if len(fails) != 1 || fails[0] != (fpga.SlotFailure{Slot: 5, At: 3 * sec}) {
		t.Fatalf("permanent failures = %+v", fails)
	}
}

func TestFactoryYieldsFreshInjectors(t *testing.T) {
	factory, err := Uniform(0.5, 1).Factory()
	if err != nil {
		t.Fatal(err)
	}
	seq := func(in fpga.Injector) []fpga.FaultClass {
		var out []fpga.FaultClass
		for i := 0; i < 50; i++ {
			out = append(out, in.ReconfigAttempt(0, 0, 0).Class)
		}
		return out
	}
	if !reflect.DeepEqual(seq(factory()), seq(factory())) {
		t.Fatal("factory instances share random state")
	}
	if _, err := (Plan{Faults: []Fault{{Kind: Kind(99)}}}).Factory(); err == nil {
		t.Fatal("invalid plan produced a factory")
	}
}

func TestUniformZeroRateIsValidButIdle(t *testing.T) {
	// rate 0 makes an invalid plan (never fires); Uniform callers guard.
	if err := Uniform(0, 1).Validate(); err == nil {
		t.Fatal("zero-rate uniform plan validated; callers must guard")
	}
	if !strings.Contains(Uniform(0.5, 1).String(), "crc prob=0.5") {
		t.Fatalf("uniform plan renders %q", Uniform(0.5, 1).String())
	}
}
