package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nimblock/internal/fpga"
	"nimblock/internal/sim"
)

// smallOp makes an op consuming a fraction of the slot's resources.
func smallOp(name string, lutFrac float64, lat sim.Duration) Op {
	s := fpga.SlotResources
	f := func(v int) int { return int(float64(v) * lutFrac) }
	return Op{
		Name:    name,
		Latency: lat,
		Res: fpga.Resources{
			DSP: f(s.DSP), LUT: f(s.LUT), FF: f(s.FF), Carry: f(s.Carry),
			RAMB18: f(s.RAMB18), RAMB36: f(s.RAMB36), IOBuf: f(s.IOBuf),
		},
	}
}

func chainOps(t *testing.T, fracs []float64) *OpGraph {
	t.Helper()
	b := NewBuilder("chain")
	var ids []int
	for i, f := range fracs {
		ids = append(ids, b.AddOp(smallOp("op", f, sim.Duration(i+1)*sim.Millisecond)))
	}
	b.Chain(ids...)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPacksSmallOpsTogether(t *testing.T) {
	// Six ops at 34% each: two fit a slot, a third would overflow, so
	// the packer emits three tasks of two ops.
	g := chainOps(t, []float64{0.34, 0.34, 0.34, 0.34, 0.34, 0.34})
	r, err := Partition(g, fpga.SlotResources)
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.NumTasks() != 3 {
		t.Fatalf("%d tasks, want 3", r.Graph.NumTasks())
	}
	for _, members := range r.TaskOps {
		if len(members) != 2 {
			t.Fatalf("task sizes %v, want pairs", r.TaskOps)
		}
	}
	// A 3-task chain has 2 edges after dedup.
	if r.Graph.NumEdges() != 2 {
		t.Fatalf("%d edges", r.Graph.NumEdges())
	}
	if r.Utilization < 0.6 || r.Utilization > 0.72 {
		t.Fatalf("utilization %v, want ~0.68", r.Utilization)
	}
}

func TestLatencyConservation(t *testing.T) {
	g := chainOps(t, []float64{0.4, 0.4, 0.4, 0.4})
	r, err := Partition(g, fpga.SlotResources)
	if err != nil {
		t.Fatal(err)
	}
	var opSum, taskSum sim.Duration
	for i := 0; i < g.NumOps(); i++ {
		opSum += g.Op(i).Latency
	}
	taskSum = r.Graph.TotalWork()
	if opSum != taskSum {
		t.Fatalf("latency not conserved: ops %v vs tasks %v", opSum, taskSum)
	}
}

func TestOversizedOpRejected(t *testing.T) {
	b := NewBuilder("big")
	b.AddOp(smallOp("huge", 1.5, sim.Millisecond))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(g, fpga.SlotResources); err == nil {
		t.Fatal("op exceeding the slot accepted")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := Partition(nil, fpga.SlotResources); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewBuilder("e").Build(); err == nil {
		t.Fatal("empty builder accepted")
	}
}

func TestCyclicOpsRejected(t *testing.T) {
	b := NewBuilder("cyc")
	x := b.AddOp(smallOp("x", 0.1, 1))
	y := b.AddOp(smallOp("y", 0.1, 1))
	b.AddEdge(x, y).AddEdge(y, x)
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestDiamondPartition(t *testing.T) {
	b := NewBuilder("diamond")
	s := b.AddOp(smallOp("src", 0.6, sim.Millisecond))
	l := b.AddOp(smallOp("left", 0.6, sim.Millisecond))
	rr := b.AddOp(smallOp("right", 0.6, sim.Millisecond))
	k := b.AddOp(smallOp("sink", 0.6, sim.Millisecond))
	b.AddEdge(s, l).AddEdge(s, rr).AddEdge(l, k).AddEdge(rr, k)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Partition(g, fpga.SlotResources)
	if err != nil {
		t.Fatal(err)
	}
	// 60% ops cannot pair: four tasks, quotient still a valid DAG.
	if r.Graph.NumTasks() != 4 {
		t.Fatalf("%d tasks", r.Graph.NumTasks())
	}
	if err := r.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: any random op DAG partitions into a valid task-graph with
// total latency conserved, every task within resources, and the
// assignment consistent with TaskOps.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%20) + 1
		b := NewBuilder("p")
		for i := 0; i < n; i++ {
			frac := 0.1 + 0.8*rng.Float64()
			b.AddOp(smallOp("op", frac, sim.Duration(1+rng.Intn(50))*sim.Millisecond))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					b.AddEdge(i, j)
				}
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		r, err := Partition(g, fpga.SlotResources)
		if err != nil {
			return false
		}
		if r.Graph.Validate() != nil {
			return false
		}
		// Latency conservation.
		var opSum sim.Duration
		for i := 0; i < n; i++ {
			opSum += g.Op(i).Latency
		}
		if r.Graph.TotalWork() != opSum {
			return false
		}
		// Resource feasibility and assignment consistency.
		for task, members := range r.TaskOps {
			var res fpga.Resources
			for _, op := range members {
				res = res.Add(g.Op(op).Res)
				if r.Assignment[op] != task {
					return false
				}
			}
			if !fpga.SlotResources.Fits(res) {
				return false
			}
		}
		// Every op assigned exactly once.
		count := 0
		for _, members := range r.TaskOps {
			count += len(members)
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Partitioned applications run end to end (smoke via the task-graph).
func TestPartitionedGraphRunnable(t *testing.T) {
	g := chainOps(t, []float64{0.3, 0.5, 0.2, 0.7, 0.3})
	r, err := Partition(g, fpga.SlotResources)
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.Name() != "chain" {
		t.Fatalf("name %q", r.Graph.Name())
	}
	if r.Graph.NumTasks() >= g.NumOps() {
		t.Fatalf("no packing happened: %d tasks for %d ops", r.Graph.NumTasks(), g.NumOps())
	}
}
