// Package partition implements the automatic application-partitioning
// step of the Nimblock compilation flow.
//
// Before an application reaches the hypervisor it must be split into
// slot-sized tasks (Section 2.2): each task is a portion of the
// application with an input and an output that fits one reconfigurable
// slot, and tasks should "use as much of the slot as possible". The
// paper partitions its benchmarks manually and cites automatic flows
// (AutoBridge, RapidStream, ViTAL); this package provides that flow for
// the simulated overlay: a fine-grained operation graph with per-op
// resource demands is clustered, along a topological order, into the
// fewest slot-feasible tasks, and the result is emitted as a task-graph
// ready for submission.
package partition

import (
	"fmt"

	"nimblock/internal/fpga"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Op is one fine-grained operation (e.g. a convolution, a pooling stage,
// an FFT butterfly block) with its synthesis resource demand.
type Op struct {
	Name    string
	Latency sim.Duration
	Res     fpga.Resources
}

// OpGraph is a DAG of operations. Build with NewBuilder.
type OpGraph struct {
	name string
	ops  []Op
	succ [][]int
	pred [][]int
	topo []int
}

// Builder constructs an OpGraph.
type Builder struct {
	name  string
	ops   []Op
	edges [][2]int
}

// NewBuilder starts an operation graph for the named application.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// AddOp appends an operation and returns its index.
func (b *Builder) AddOp(op Op) int {
	b.ops = append(b.ops, op)
	return len(b.ops) - 1
}

// AddEdge records a data dependency.
func (b *Builder) AddEdge(from, to int) *Builder {
	b.edges = append(b.edges, [2]int{from, to})
	return b
}

// Chain links operations in sequence.
func (b *Builder) Chain(ids ...int) *Builder {
	for i := 1; i < len(ids); i++ {
		b.AddEdge(ids[i-1], ids[i])
	}
	return b
}

// Build validates the operation graph. Validation reuses the task-graph
// machinery: op latencies must be positive and the graph acyclic.
func (b *Builder) Build() (*OpGraph, error) {
	// Validate structure by round-tripping through taskgraph.
	tb := taskgraph.NewBuilder(b.name)
	for _, op := range b.ops {
		tb.AddTask(op.Name, op.Latency)
	}
	for _, e := range b.edges {
		tb.AddEdge(e[0], e[1])
	}
	tg, err := tb.Build()
	if err != nil {
		return nil, err
	}
	g := &OpGraph{
		name: b.name,
		ops:  append([]Op(nil), b.ops...),
		succ: make([][]int, len(b.ops)),
		pred: make([][]int, len(b.ops)),
		topo: append([]int(nil), tg.Topo()...),
	}
	for i := range b.ops {
		g.succ[i] = append([]int(nil), tg.Succ(i)...)
		g.pred[i] = append([]int(nil), tg.Pred(i)...)
	}
	return g, nil
}

// NumOps reports the number of operations.
func (g *OpGraph) NumOps() int { return len(g.ops) }

// Op returns operation i.
func (g *OpGraph) Op(i int) Op { return g.ops[i] }

// Result is a completed partitioning.
type Result struct {
	// Graph is the slot-level task-graph ready for submission.
	Graph *taskgraph.Graph
	// Assignment maps each op index to its task index.
	Assignment []int
	// TaskOps lists the member operations of each task, in topological
	// order of execution within the slot.
	TaskOps [][]int
	// Utilization is the mean fraction of the slot's LUTs used per task
	// — the packing-quality metric ("use as much of the slot as
	// possible").
	Utilization float64
}

// Partition clusters the operation graph into slot-feasible tasks along
// a topological order. Assigning ops in topological order to the
// currently open cluster guarantees the quotient graph is acyclic: every
// cross-cluster edge points from an earlier cluster to a later one.
func Partition(g *OpGraph, slot fpga.Resources) (*Result, error) {
	if g == nil || g.NumOps() == 0 {
		return nil, fmt.Errorf("partition: empty operation graph")
	}
	for i, op := range g.ops {
		if !slot.Fits(op.Res) {
			return nil, fmt.Errorf("partition: op %d (%s) exceeds slot resources", i, op.Name)
		}
	}
	assignment := make([]int, g.NumOps())
	var taskOps [][]int
	var used fpga.Resources
	current := -1
	for _, op := range g.topo {
		need := used.Add(g.ops[op].Res)
		if current == -1 || !slot.Fits(need) {
			// Close the cluster and open a new one.
			taskOps = append(taskOps, nil)
			current = len(taskOps) - 1
			used = fpga.Resources{}
			need = g.ops[op].Res
		}
		taskOps[current] = append(taskOps[current], op)
		assignment[op] = current
		used = need
	}
	// Emit the task-graph: task latency is the serial latency of its
	// member operations (they share one slot), task edges deduplicate
	// crossing op edges.
	tb := taskgraph.NewBuilder(g.name)
	var lutSum float64
	for t, members := range taskOps {
		var lat sim.Duration
		var res fpga.Resources
		for _, op := range members {
			lat += g.ops[op].Latency
			res = res.Add(g.ops[op].Res)
		}
		tb.AddTask(fmt.Sprintf("%s-part%d", g.name, t), lat)
		lutSum += float64(res.LUT) / float64(slot.LUT)
	}
	edges := map[[2]int]bool{}
	for from := range g.ops {
		for _, to := range g.succ[from] {
			tf, tt := assignment[from], assignment[to]
			if tf == tt || edges[[2]int{tf, tt}] {
				continue
			}
			edges[[2]int{tf, tt}] = true
			tb.AddEdge(tf, tt)
		}
	}
	tg, err := tb.Build()
	if err != nil {
		return nil, fmt.Errorf("partition: quotient graph invalid: %w", err)
	}
	return &Result{
		Graph:       tg,
		Assignment:  assignment,
		TaskOps:     taskOps,
		Utilization: lutSum / float64(len(taskOps)),
	}, nil
}
