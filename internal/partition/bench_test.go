package partition

import (
	"math/rand"
	"testing"

	"nimblock/internal/fpga"
	"nimblock/internal/sim"
)

// BenchmarkPartition measures clustering a 200-op graph into slot tasks.
func BenchmarkPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bd := NewBuilder("bench")
	for i := 0; i < 200; i++ {
		frac := 0.1 + 0.4*rng.Float64()
		s := fpga.SlotResources
		f := func(v int) int { return int(float64(v) * frac) }
		bd.AddOp(Op{
			Name:    "op",
			Latency: sim.Duration(1+rng.Intn(50)) * sim.Millisecond,
			Res: fpga.Resources{
				DSP: f(s.DSP), LUT: f(s.LUT), FF: f(s.FF), Carry: f(s.Carry),
				RAMB18: f(s.RAMB18), RAMB36: f(s.RAMB36), IOBuf: f(s.IOBuf),
			},
		})
	}
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200 && j < i+5; j++ {
			if rng.Intn(3) == 0 {
				bd.AddEdge(i, j)
			}
		}
	}
	g, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(g, fpga.SlotResources); err != nil {
			b.Fatal(err)
		}
	}
}
