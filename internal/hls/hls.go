// Package hls models the performance estimates Nimblock parses from
// high-level synthesis reports.
//
// On the real system, Vivado HLS emits a latency estimate per task, and the
// hypervisor sums estimates over the task-graph to obtain an application
// latency estimate used for token accumulation (performance degradation)
// and for PREMA's shortest-candidate-first selection. Estimates are not
// ground truth: HLS reports deviate from measured latency. We model that
// with a deterministic per-task skew derived from a hash of the task
// identity, so estimates are reproducible but never exactly the truth.
package hls

import (
	"hash/fnv"

	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// MaxSkew bounds the relative estimation error: estimates lie within
// [1-MaxSkew, 1+MaxSkew] of the true latency.
const MaxSkew = 0.10

// skewFor returns a deterministic multiplier in [1-MaxSkew, 1+MaxSkew]
// for the given task identity.
func skewFor(app string, task int, name string) float64 {
	h := fnv.New64a()
	h.Write([]byte(app))
	h.Write([]byte{byte(task), byte(task >> 8)})
	h.Write([]byte(name))
	// Map the hash onto [-1, 1) then scale.
	u := float64(h.Sum64()%(1<<20)) / float64(1<<20) // [0,1)
	return 1 + MaxSkew*(2*u-1)
}

// Estimate is the HLS report for one task.
type Estimate struct {
	// Latency is the estimated time to process one batch item.
	Latency sim.Duration
}

// Report carries the per-task estimates for one application, mirroring the
// performance section of the bitstream header.
type Report struct {
	app       string
	perTask   []Estimate
	taskTotal sim.Duration
}

// Analyze produces the HLS report for a task-graph.
func Analyze(g *taskgraph.Graph) *Report {
	r := &Report{app: g.Name(), perTask: make([]Estimate, g.NumTasks())}
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(i)
		est := sim.Duration(float64(t.Latency) * skewFor(g.Name(), i, t.Name))
		if est <= 0 {
			est = 1
		}
		r.perTask[i] = Estimate{Latency: est}
		r.taskTotal += est
	}
	return r
}

// Task returns the estimate for task i.
func (r *Report) Task(i int) Estimate { return r.perTask[i] }

// NumTasks reports how many tasks were analyzed.
func (r *Report) NumTasks() int { return len(r.perTask) }

// AppLatency is the application latency estimate: the sum of task latency
// estimates over the task-graph (the paper's definition), i.e. the
// estimated time for one batch item with no parallelism.
func (r *Report) AppLatency() sim.Duration { return r.taskTotal }

// BatchLatency estimates processing a whole batch serially on one slot,
// excluding reconfiguration: AppLatency x batch.
func (r *Report) BatchLatency(batch int) sim.Duration {
	if batch < 1 {
		batch = 1
	}
	return r.taskTotal * sim.Duration(batch)
}
