package hls

import (
	"math"
	"testing"
	"testing/quick"

	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

func testGraph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	b := taskgraph.NewBuilder("app")
	a := b.AddTask("a", 100*sim.Millisecond)
	c := b.AddTask("b", 200*sim.Millisecond)
	b.Chain(a, c)
	return b.MustBuild()
}

func TestEstimatesWithinSkew(t *testing.T) {
	g := testGraph(t)
	r := Analyze(g)
	if r.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d", r.NumTasks())
	}
	for i := 0; i < g.NumTasks(); i++ {
		truth := float64(g.Task(i).Latency)
		est := float64(r.Task(i).Latency)
		rel := math.Abs(est-truth) / truth
		if rel > MaxSkew+1e-9 {
			t.Fatalf("task %d estimate off by %.3f (> %v)", i, rel, MaxSkew)
		}
	}
}

func TestEstimatesDeterministic(t *testing.T) {
	g := testGraph(t)
	r1, r2 := Analyze(g), Analyze(g)
	for i := 0; i < g.NumTasks(); i++ {
		if r1.Task(i) != r2.Task(i) {
			t.Fatalf("estimate for task %d not deterministic", i)
		}
	}
}

func TestAppLatencyIsSumOfTasks(t *testing.T) {
	g := testGraph(t)
	r := Analyze(g)
	var sum sim.Duration
	for i := 0; i < r.NumTasks(); i++ {
		sum += r.Task(i).Latency
	}
	if r.AppLatency() != sum {
		t.Fatalf("AppLatency = %v, want %v", r.AppLatency(), sum)
	}
}

func TestBatchLatency(t *testing.T) {
	g := testGraph(t)
	r := Analyze(g)
	if r.BatchLatency(5) != 5*r.AppLatency() {
		t.Fatalf("BatchLatency(5) = %v", r.BatchLatency(5))
	}
	if r.BatchLatency(0) != r.AppLatency() {
		t.Fatalf("BatchLatency(0) should clamp to one item")
	}
}

// Property: estimates are always positive and within the documented skew,
// for arbitrary task latencies.
func TestSkewBoundsProperty(t *testing.T) {
	f := func(lat uint32, nameSeed uint8) bool {
		l := sim.Duration(lat%10_000_000) + 1
		b := taskgraph.NewBuilder("p")
		b.AddTask(string(rune('a'+nameSeed%26)), l)
		g := b.MustBuild()
		r := Analyze(g)
		est := r.Task(0).Latency
		if est <= 0 {
			return false
		}
		rel := math.Abs(float64(est)-float64(l)) / float64(l)
		// Allow 1 microsecond of truncation slop on tiny latencies.
		return rel <= MaxSkew+1.0/float64(l)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentTasksGetDifferentSkew(t *testing.T) {
	b := taskgraph.NewBuilder("skewdiff")
	for i := 0; i < 16; i++ {
		b.AddTask("t", 1_000_000)
	}
	g := b.MustBuild()
	r := Analyze(g)
	distinct := map[sim.Duration]bool{}
	for i := 0; i < r.NumTasks(); i++ {
		distinct[r.Task(i).Latency] = true
	}
	if len(distinct) < 2 {
		t.Fatal("all tasks received identical estimates; skew is not per-task")
	}
}
