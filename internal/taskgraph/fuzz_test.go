package taskgraph

import (
	"testing"

	"nimblock/internal/sim"
)

// FuzzBuilder decodes fuzz input into a graph-construction script and
// verifies that whatever builds also validates: topological order
// consistent with every edge, depths well-formed, critical path bounded
// by total work.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2})
	f.Add([]byte{5, 0, 1, 0, 2, 1, 3, 2, 4})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%20 + 1
		b := NewBuilder("fuzz")
		for i := 0; i < n; i++ {
			b.AddTask("t", sim.Duration(i+1)*sim.Millisecond)
		}
		for i := 1; i+1 < len(data); i += 2 {
			from := int(data[i]) % n
			to := int(data[i+1]) % n
			b.AddEdge(from, to)
		}
		g, err := b.Build()
		if err != nil {
			return // rejected input (cycle, dup edge, self loop) is fine
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
		if g.CriticalPath() > g.TotalWork() {
			t.Fatalf("critical path %v exceeds total work %v", g.CriticalPath(), g.TotalWork())
		}
		if g.MaxWidth() < 1 || g.MaxWidth() > g.NumTasks() {
			t.Fatalf("width %d out of range", g.MaxWidth())
		}
	})
}
