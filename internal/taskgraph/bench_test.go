package taskgraph

import (
	"math/rand"
	"testing"

	"nimblock/internal/sim"
)

func benchGraph(n int) *Graph {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder("bench")
	for i := 0; i < n; i++ {
		b.AddTask("t", sim.Duration(1+rng.Intn(100))*sim.Millisecond)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j < i+8; j++ {
			if rng.Intn(3) == 0 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

func BenchmarkBuild100(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchGraph(100)
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.CriticalPath() <= 0 {
			b.Fatal("bad critical path")
		}
	}
}

func BenchmarkTopoRank(b *testing.B) {
	g := benchGraph(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.TopoRank()) != 200 {
			b.Fatal("bad rank")
		}
	}
}
