package taskgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nimblock/internal/sim"
)

func chain3(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("chain")
	a := b.AddTask("t0", 10*sim.Millisecond)
	c := b.AddTask("t1", 20*sim.Millisecond)
	d := b.AddTask("t2", 30*sim.Millisecond)
	b.Chain(a, c, d)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("diamond")
	s := b.AddTask("src", 5*sim.Millisecond)
	l := b.AddTask("left", 10*sim.Millisecond)
	r := b.AddTask("right", 20*sim.Millisecond)
	k := b.AddTask("sink", 5*sim.Millisecond)
	b.AddEdge(s, l).AddEdge(s, r).AddEdge(l, k).AddEdge(r, k)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainBasics(t *testing.T) {
	g := chain3(t)
	if g.NumTasks() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d tasks, %d edges", g.NumTasks(), g.NumEdges())
	}
	if got := g.Topo(); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("topo = %v", got)
	}
	if g.TotalWork() != 60*sim.Millisecond {
		t.Fatalf("TotalWork = %v", g.TotalWork())
	}
	if g.CriticalPath() != 60*sim.Millisecond {
		t.Fatalf("CriticalPath = %v", g.CriticalPath())
	}
	if g.MaxWidth() != 1 {
		t.Fatalf("MaxWidth = %d", g.MaxWidth())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDiamondBasics(t *testing.T) {
	g := diamond(t)
	if g.MaxWidth() != 2 {
		t.Fatalf("MaxWidth = %d, want 2", g.MaxWidth())
	}
	// Critical path goes through the slower branch.
	if g.CriticalPath() != 30*sim.Millisecond {
		t.Fatalf("CriticalPath = %v, want 30ms", g.CriticalPath())
	}
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Sinks = %v", got)
	}
	if g.Depth(3) != 2 {
		t.Fatalf("Depth(sink) = %d, want 2", g.Depth(3))
	}
}

func TestTopoRankInverse(t *testing.T) {
	g := diamond(t)
	rank := g.TopoRank()
	for pos, v := range g.Topo() {
		if rank[v] != pos {
			t.Fatalf("rank[%d]=%d, want %d", v, rank[v], pos)
		}
	}
}

func TestCycleRejected(t *testing.T) {
	b := NewBuilder("cyc")
	a := b.AddTask("a", 1)
	c := b.AddTask("b", 1)
	b.AddEdge(a, c).AddEdge(c, a)
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle not rejected")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder("self")
	a := b.AddTask("a", 1)
	b.AddEdge(a, a)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-loop not rejected")
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	b := NewBuilder("dup")
	a := b.AddTask("a", 1)
	c := b.AddTask("b", 1)
	b.AddEdge(a, c).AddEdge(a, c)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge not rejected")
	}
}

func TestOutOfRangeEdgeRejected(t *testing.T) {
	b := NewBuilder("oob")
	a := b.AddTask("a", 1)
	b.AddEdge(a, 99)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range edge not rejected")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("empty graph not rejected")
	}
}

func TestNonPositiveLatencyRejected(t *testing.T) {
	b := NewBuilder("zero")
	b.AddTask("a", 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("zero latency not rejected")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid graph")
		}
	}()
	NewBuilder("bad").MustBuild()
}

// randomDAG builds a random DAG by only adding forward edges i->j, i<j.
func randomDAG(rng *rand.Rand, n int) *Graph {
	b := NewBuilder("rand")
	for i := 0; i < n; i++ {
		b.AddTask("t", sim.Duration(1+rng.Intn(1000))*sim.Millisecond)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

// Property: random forward-edge DAGs always build, validate, and have a
// topological order consistent with every edge.
func TestRandomDAGProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%30) + 1
		g := randomDAG(rng, n)
		if err := g.Validate(); err != nil {
			return false
		}
		// Critical path is at least the max single-task latency and at
		// most the total work.
		cp, tw := g.CriticalPath(), g.TotalWork()
		if cp > tw {
			return false
		}
		var maxTask sim.Duration
		for i := 0; i < n; i++ {
			if g.Task(i).Latency > maxTask {
				maxTask = g.Task(i).Latency
			}
		}
		return cp >= maxTask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: depth is 0 exactly for source nodes, and depth of a node is
// 1 + max depth of its predecessors.
func TestDepthProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, int(sz%25)+1)
		for i := 0; i < g.NumTasks(); i++ {
			if len(g.Pred(i)) == 0 {
				if g.Depth(i) != 0 {
					return false
				}
				continue
			}
			want := 0
			for _, p := range g.Pred(i) {
				if g.Depth(p)+1 > want {
					want = g.Depth(p) + 1
				}
			}
			if g.Depth(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	g := diamond(t)
	want := "diamond{tasks=4 edges=4 width=2}"
	if g.String() != want {
		t.Fatalf("String = %q, want %q", g.String(), want)
	}
}
