// Package taskgraph models applications as directed acyclic graphs of
// slot-sized tasks, as required by the Nimblock compilation flow.
//
// Each node is a task — a portion of the application with an input and an
// output that fits in one reconfigurable slot. Edges are data dependencies:
// a task consumes buffers produced by its predecessors. The hypervisor and
// every scheduler reason about applications exclusively through this
// representation.
package taskgraph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"nimblock/internal/sim"
)

// Task describes one slot-sized unit of an application.
type Task struct {
	// Name is a human-readable label ("conv1", "pool2", ...).
	Name string
	// Latency is the ground-truth time to process one batch item.
	// Schedulers never see this directly; they see the HLS estimate.
	Latency sim.Duration
	// StateBytes is the live context that must move through the CAP to
	// checkpoint or restore this task mid-item (BRAM contents, register
	// file, pipeline state). Zero means "use the hypervisor default".
	StateBytes int64
	// Checkpoints lists the fractions of one item's work, strictly
	// increasing within (0,1), at which the kernel exposes a consistent
	// snapshot (a preemption point: no in-flight partial writes). Empty
	// means the hypervisor may assume uniformly spaced default points.
	// Callers must not modify the slice.
	Checkpoints []float64
}

// Graph is an immutable task DAG. Build one with a Builder; the
// constructor validates acyclicity and edge sanity.
type Graph struct {
	name  string
	tasks []Task
	succ  [][]int // adjacency: succ[i] lists tasks depending on i
	pred  [][]int // reverse adjacency
	topo  []int   // one valid topological order
	rank  []int   // rank[task] = position of task in topo
	depth []int   // longest path (in edges) from any source to each node
	fp    uint64  // structural fingerprint, computed once in Build
}

// Builder incrementally constructs a Graph.
type Builder struct {
	name  string
	tasks []Task
	edges [][2]int
}

// NewBuilder returns a Builder for an application graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// AddTask appends a task and returns its index.
func (b *Builder) AddTask(name string, latency sim.Duration) int {
	b.tasks = append(b.tasks, Task{Name: name, Latency: latency})
	return len(b.tasks) - 1
}

// SetTaskState declares the checkpointable state size of task id.
func (b *Builder) SetTaskState(id int, bytes int64) *Builder {
	b.tasks[id].StateBytes = bytes
	return b
}

// SetCheckpoints declares the preemption points of task id as fractions
// of one item's work, strictly increasing within (0,1).
func (b *Builder) SetCheckpoints(id int, fracs ...float64) *Builder {
	b.tasks[id].Checkpoints = append([]float64(nil), fracs...)
	return b
}

// AddEdge records a dependency: to consumes the output of from.
func (b *Builder) AddEdge(from, to int) *Builder {
	b.edges = append(b.edges, [2]int{from, to})
	return b
}

// Chain adds edges linking the given tasks in sequence.
func (b *Builder) Chain(ids ...int) *Builder {
	for i := 1; i < len(ids); i++ {
		b.AddEdge(ids[i-1], ids[i])
	}
	return b
}

// Build validates the graph and freezes it.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.tasks)
	if n == 0 {
		return nil, fmt.Errorf("taskgraph %q: graph has no tasks", b.name)
	}
	for i, t := range b.tasks {
		if t.Latency <= 0 {
			return nil, fmt.Errorf("taskgraph %q: task %d (%s) has non-positive latency %v", b.name, i, t.Name, t.Latency)
		}
		if t.StateBytes < 0 {
			return nil, fmt.Errorf("taskgraph %q: task %d (%s) has negative state size %d", b.name, i, t.Name, t.StateBytes)
		}
		prev := 0.0
		for _, p := range t.Checkpoints {
			if p <= prev || p >= 1 {
				return nil, fmt.Errorf("taskgraph %q: task %d (%s) checkpoints %v must be strictly increasing within (0,1)", b.name, i, t.Name, t.Checkpoints)
			}
			prev = p
		}
	}
	g := &Graph{
		name:  b.name,
		tasks: append([]Task(nil), b.tasks...),
		succ:  make([][]int, n),
		pred:  make([][]int, n),
	}
	seen := map[[2]int]bool{}
	for _, e := range b.edges {
		from, to := e[0], e[1]
		if from < 0 || from >= n || to < 0 || to >= n {
			return nil, fmt.Errorf("taskgraph %q: edge %d->%d out of range [0,%d)", b.name, from, to, n)
		}
		if from == to {
			return nil, fmt.Errorf("taskgraph %q: self-loop on task %d", b.name, from)
		}
		if seen[e] {
			return nil, fmt.Errorf("taskgraph %q: duplicate edge %d->%d", b.name, from, to)
		}
		seen[e] = true
		g.succ[from] = append(g.succ[from], to)
		g.pred[to] = append(g.pred[to], from)
	}
	topo, err := topoSort(g.succ, g.pred)
	if err != nil {
		return nil, fmt.Errorf("taskgraph %q: %w", b.name, err)
	}
	g.topo = topo
	g.rank = make([]int, len(topo))
	for pos, v := range topo {
		g.rank[v] = pos
	}
	g.depth = computeDepths(g.pred, topo)
	g.fp = fingerprint(g)
	return g, nil
}

// fingerprint hashes the complete graph structure — name, task names,
// ground-truth latencies, and every edge — with FNV-1a. Two graphs share
// a fingerprint iff they are structurally identical, so it is a safe
// cache key where the name alone is not (anyone can build a second graph
// under an existing name).
func fingerprint(g *Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	h.Write([]byte(g.name))
	writeInt(int64(len(g.tasks)))
	for _, t := range g.tasks {
		h.Write([]byte(t.Name))
		writeInt(int64(t.Latency))
		writeInt(t.StateBytes)
		writeInt(int64(len(t.Checkpoints)))
		for _, p := range t.Checkpoints {
			writeInt(int64(math.Float64bits(p)))
		}
	}
	var edges [][2]int
	for from, succs := range g.succ {
		for _, to := range succs {
			edges = append(edges, [2]int{from, to})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		writeInt(int64(e[0]))
		writeInt(int64(e[1]))
	}
	return h.Sum64()
}

// MustBuild is Build that panics on error; for statically known graphs.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// topoSort runs Kahn's algorithm. Ties are broken by node index so the
// order is deterministic.
func topoSort(succ, pred [][]int) ([]int, error) {
	n := len(succ)
	indeg := make([]int, n)
	for i := range pred {
		indeg[i] = len(pred[i])
	}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph contains a cycle")
	}
	return order, nil
}

// computeDepths returns, for each node, the length in edges of the longest
// path from any source node.
func computeDepths(pred [][]int, topo []int) []int {
	depth := make([]int, len(pred))
	for _, v := range topo {
		d := 0
		for _, p := range pred[v] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[v] = d
	}
	return depth
}

// Name reports the application name this graph belongs to.
func (g *Graph) Name() string { return g.name }

// Fingerprint reports a structural hash of the graph (name, tasks,
// latencies, edges). Structurally identical graphs share a fingerprint
// regardless of build order; use it to key caches that must not confuse
// distinct graphs sharing a name.
func (g *Graph) Fingerprint() uint64 { return g.fp }

// NumTasks reports the number of tasks (nodes).
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges reports the number of dependency edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// Task returns the task at index i.
func (g *Graph) Task(i int) Task { return g.tasks[i] }

// Succ returns the successors of task i. The slice must not be modified.
func (g *Graph) Succ(i int) []int { return g.succ[i] }

// Pred returns the predecessors of task i. The slice must not be modified.
func (g *Graph) Pred(i int) []int { return g.pred[i] }

// Topo returns a valid topological order. The slice must not be modified.
func (g *Graph) Topo() []int { return g.topo }

// Depth returns the longest-path depth (in edges) of task i from a source.
func (g *Graph) Depth(i int) int { return g.depth[i] }

// TopoRank returns the position of each task in the topological order:
// rank[task] = index in Topo(). Later rank means later in execution order,
// which is what the preemption algorithm uses to pick a victim task. The
// slice is computed once at build time and must not be modified.
func (g *Graph) TopoRank() []int { return g.rank }

// Sources returns tasks with no predecessors.
func (g *Graph) Sources() []int {
	var s []int
	for i := range g.tasks {
		if len(g.pred[i]) == 0 {
			s = append(s, i)
		}
	}
	return s
}

// Sinks returns tasks with no successors.
func (g *Graph) Sinks() []int {
	var s []int
	for i := range g.tasks {
		if len(g.succ[i]) == 0 {
			s = append(s, i)
		}
	}
	return s
}

// TotalWork reports the sum of all task latencies — the per-item compute
// time if every task ran sequentially.
func (g *Graph) TotalWork() sim.Duration {
	var total sim.Duration
	for _, t := range g.tasks {
		total += t.Latency
	}
	return total
}

// CriticalPath reports the largest sum of task latencies along any
// source-to-sink path: the lower bound on per-item latency with unlimited
// slots and free reconfiguration.
func (g *Graph) CriticalPath() sim.Duration {
	best := make([]sim.Duration, len(g.tasks))
	var max sim.Duration
	for _, v := range g.topo {
		var in sim.Duration
		for _, p := range g.pred[v] {
			if best[p] > in {
				in = best[p]
			}
		}
		best[v] = in + g.tasks[v].Latency
		if best[v] > max {
			max = best[v]
		}
	}
	return max
}

// MaxWidth reports the maximum number of tasks sharing the same depth —
// a structural upper bound on task-level parallelism within one batch item.
func (g *Graph) MaxWidth() int {
	counts := map[int]int{}
	max := 0
	for i := range g.tasks {
		counts[g.depth[i]]++
		if counts[g.depth[i]] > max {
			max = counts[g.depth[i]]
		}
	}
	return max
}

// SnapFraction returns the largest preemption point of task i that is
// <= frac — the latest consistent snapshot reachable after completing a
// frac share of one item. Tasks that declare no Checkpoints fall back to
// defaultPoints uniformly spaced interior points (k/(defaultPoints+1));
// the result is 0 when no point has been passed yet, meaning the only
// consistent state is "not started".
func (g *Graph) SnapFraction(i int, frac float64, defaultPoints int) float64 {
	if frac <= 0 {
		return 0
	}
	pts := g.tasks[i].Checkpoints
	if len(pts) == 0 {
		if defaultPoints <= 0 {
			return 0
		}
		step := 1.0 / float64(defaultPoints+1)
		k := int(frac / step)
		if k > defaultPoints {
			k = defaultPoints
		}
		return float64(k) * step
	}
	best := 0.0
	for _, p := range pts {
		if p > frac {
			break
		}
		best = p
	}
	return best
}

// Validate re-checks internal invariants; it is used by property tests.
func (g *Graph) Validate() error {
	if len(g.topo) != len(g.tasks) {
		return fmt.Errorf("topo order has %d entries for %d tasks", len(g.topo), len(g.tasks))
	}
	pos := g.TopoRank()
	for v, succs := range g.succ {
		for _, w := range succs {
			if pos[v] >= pos[w] {
				return fmt.Errorf("edge %d->%d violates topological order", v, w)
			}
		}
	}
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s{tasks=%d edges=%d width=%d}", g.name, g.NumTasks(), g.NumEdges(), g.MaxWidth())
}
