package hv_test

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

func newFailoverHV(t *testing.T, cfg hv.Config) (*sim.Engine, *hv.Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	return eng, h
}

// TestFreezeStallsHeartbeat pins the liveness contract: a frozen board's
// progress counter never advances again, while a live board under the
// same load keeps beating.
func TestFreezeStallsHeartbeat(t *testing.T) {
	eng, h := newFailoverHV(t, hv.DefaultConfig())
	if err := h.Submit(apps.MustGraph(apps.OpticalFlow), 4, 3, 0); err != nil {
		t.Fatal(err)
	}
	var atFreeze uint64
	eng.At(sim.Time(300*sim.Millisecond), func() {
		h.Freeze()
		atFreeze = h.Progress()
	})
	eng.RunUntil(sim.Time(10 * sim.Second))
	if atFreeze == 0 {
		t.Fatal("no heartbeat before the freeze")
	}
	if !h.Frozen() {
		t.Fatal("board not frozen")
	}
	if got := h.Progress(); got != atFreeze {
		t.Fatalf("frozen heartbeat advanced: %d -> %d", atFreeze, got)
	}
	if h.PendingCount() == 0 {
		t.Fatal("frozen board claims its work drained")
	}
}

// TestEvacuateConservation kills a board mid-run: retired results stay
// collectable, unfinished submissions come back as evacuees, and
// results + evacuees exactly cover the submissions.
func TestEvacuateConservation(t *testing.T) {
	eng, h := newFailoverHV(t, hv.DefaultConfig())
	// LeNet (129 ms nominal) retires before the crash; the OpticalFlow
	// pair (many seconds) is mid-flight when the board dies.
	if err := h.Submit(apps.MustGraph(apps.LeNet), 1, 9, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := h.Submit(apps.MustGraph(apps.OpticalFlow), 4, 3, 0); err != nil {
			t.Fatal(err)
		}
	}
	var evs []hv.Evacuee
	eng.At(sim.Time(2*sim.Second), func() { evs = h.Evacuate() })
	eng.RunUntil(sim.Time(60 * sim.Second))
	if !h.Evacuated() {
		t.Fatal("board not marked evacuated")
	}
	res, err := h.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res)+len(evs) != 3 {
		t.Fatalf("%d results + %d evacuees != 3 submissions", len(res), len(evs))
	}
	if len(res) != 1 || res[0].App != apps.LeNet {
		t.Fatalf("retired-before-death results = %+v", res)
	}
	seen := map[int64]bool{}
	for i, ev := range evs {
		if ev.ID <= 0 || ev.App == nil || ev.WorkDone < 0 {
			t.Fatalf("evacuee %d malformed: %+v", i, ev)
		}
		if seen[ev.ID] {
			t.Fatalf("evacuee ID %d returned twice", ev.ID)
		}
		seen[ev.ID] = true
		if ev.WorkDone <= 0 {
			t.Fatalf("evacuee %d carried no work despite 2s of runtime: %+v", i, ev)
		}
	}
	if h.Mem().Live() != 0 {
		t.Fatalf("%d buffers leaked across evacuation", h.Mem().Live())
	}
}

// TestEvacuateCarriesSnapshotsAndSeedsResume is the end-to-end
// migration contract: snapshots evacuated from a dying board, seeded
// into a fresh one, let the submission finish with strictly less fabric
// work than a from-scratch run.
func TestEvacuateCarriesSnapshotsAndSeedsResume(t *testing.T) {
	cfg := hv.DefaultConfig()
	cfg.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 20 * sim.Millisecond}
	eng, h := newFailoverHV(t, cfg)
	g := apps.MustGraph(apps.OpticalFlow)
	batch := 2
	if err := h.Submit(g, batch, 3, 0); err != nil {
		t.Fatal(err)
	}
	var evs []hv.Evacuee
	// 1 s is mid-item for OpticalFlow's 507 ms items, past several
	// periodic saves.
	eng.At(sim.Time(sim.Second), func() { evs = h.Evacuate() })
	eng.RunUntil(sim.Time(2 * sim.Second))
	if len(evs) != 1 {
		t.Fatalf("%d evacuees, want 1", len(evs))
	}
	ev := evs[0]
	if len(ev.Snapshots) == 0 {
		t.Fatal("no snapshots survived despite periodic checkpointing")
	}
	var migrated sim.Duration
	for _, s := range ev.Snapshots {
		if s.Progress <= 0 || s.Bytes <= 0 {
			t.Fatalf("snapshot %+v malformed", s)
		}
		migrated += s.Progress
	}

	// Resume on a fresh board.
	eng2, h2 := newFailoverHV(t, cfg)
	id, err := h2.SubmitID(g, batch, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2.SeedCheckpoints(id, ev.Snapshots)
	eng2.RunUntil(cfg.Horizon)
	res, err := h2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("%d results, want 1", len(res))
	}
	nominal := g.TotalWork() * sim.Duration(batch)
	if res[0].Run >= nominal {
		t.Fatalf("resumed run %v >= nominal %v: seeded checkpoints were not used", res[0].Run, nominal)
	}
	if nominal-res[0].Run > migrated {
		t.Fatalf("resumed board skipped %v but snapshots only carried %v", nominal-res[0].Run, migrated)
	}
}

// TestAbortDropsHedgeLoser pins Abort's contract: the aborted
// submission vanishes (no result, slots released, memory clean), the
// survivor completes, and a second abort reports not-found.
func TestAbortDropsHedgeLoser(t *testing.T) {
	eng, h := newFailoverHV(t, hv.DefaultConfig())
	g := apps.MustGraph(apps.OpticalFlow)
	loser, err := h.SubmitID(g, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.SubmitID(apps.MustGraph(apps.Rendering3D), 2, 3, 0); err != nil {
		t.Fatal(err)
	}
	var ok bool
	var spent sim.Duration
	eng.At(sim.Time(700*sim.Millisecond), func() { ok, spent = h.Abort(loser) })
	eng.RunUntil(hv.DefaultConfig().Horizon)
	if !ok {
		t.Fatal("abort of an in-flight submission failed")
	}
	if spent <= 0 {
		t.Fatalf("aborted submission spent %v, want > 0 after 700ms", spent)
	}
	res, err := h.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].App != apps.Rendering3D {
		t.Fatalf("results after abort = %+v", res)
	}
	if again, _ := h.Abort(loser); again {
		t.Fatal("second abort of the same ID succeeded")
	}
	if h.Mem().Live() != 0 {
		t.Fatalf("%d buffers leaked by abort", h.Mem().Live())
	}
}

// TestSlowdownStretchesItems checks board-degrade: the same workload
// takes strictly longer under a 4x slowdown and still completes.
func TestSlowdownStretchesItems(t *testing.T) {
	run := func(factor float64) sim.Duration {
		eng, h := newFailoverHV(t, hv.DefaultConfig())
		if factor > 1 {
			h.SetSlowdown(factor)
		}
		if err := h.Submit(apps.MustGraph(apps.Rendering3D), 3, 3, 0); err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(hv.DefaultConfig().Horizon)
		res, err := h.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Response
	}
	clean, slowed := run(1), run(4)
	if slowed <= clean {
		t.Fatalf("4x degrade did not slow the board: %v vs %v", slowed, clean)
	}
}
