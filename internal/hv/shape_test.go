package hv_test

import (
	"fmt"
	"os"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/sim"
)

// TestShapeReport prints per-policy responses for manual inspection.
// Enabled with NIMBLOCK_SHAPE=1.
func TestShapeReport(t *testing.T) {
	if os.Getenv("NIMBLOCK_SHAPE") == "" {
		t.Skip("set NIMBLOCK_SHAPE=1 to print the shape report")
	}
	subs := []submission{}
	arr := sim.Time(0)
	for _, n := range []string{apps.ImageCompression, apps.LeNet, apps.Rendering3D, apps.OpticalFlow, apps.AlexNet, apps.DigitRecognition, apps.LeNet, apps.ImageCompression} {
		subs = append(subs, submission{n, 5, 3, arr})
		arr = arr.Add(500 * sim.Millisecond)
	}
	for name, mk := range policies() {
		res, _ := runSuite(t, mk(), subs, false)
		var tot float64
		for _, r := range res {
			tot += r.Response.Seconds()
			fmt.Printf("%-8s %-18s arr=%7.1f resp=%9.2fs wait=%9.2fs preempt=%d\n", name, r.App, r.Arrival.Seconds(), r.Response.Seconds(), r.Wait.Seconds(), r.Preemptions)
		}
		fmt.Printf("%-8s TOTAL %.2fs\n\n", name, tot)
	}
	_ = core.DefaultOptions
}
