package hv_test

import (
	"strings"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/faults"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// degradedWorkload keeps the board contended well past the last slot
// failure so degradation, not idleness, shapes the makespan.
func degradedWorkload() []submission {
	return []submission{
		{apps.LeNet, 6, 9, 0},
		{apps.OpticalFlow, 8, 3, 0},
		{apps.ImageCompression, 6, 3, 200 * sim.Time(sim.Millisecond)},
		{apps.Rendering3D, 8, 1, 400 * sim.Time(sim.Millisecond)},
		{apps.DigitRecognition, 6, 9, 600 * sim.Time(sim.Millisecond)},
		{apps.OpticalFlow, 6, 1, 800 * sim.Time(sim.Millisecond)},
	}
}

func makespan(res []hv.Result) sim.Time {
	var end sim.Time
	for _, r := range res {
		if r.Retire > end {
			end = r.Retire
		}
	}
	return end
}

func runNimblock(t *testing.T, cfg hv.Config, subs []submission) ([]hv.Result, *hv.Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if err := h.Submit(apps.MustGraph(s.name), s.batch, s.prio, s.at); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, h
}

// Acceptance: a fault plan that permanently kills 3 of the 10 slots
// mid-run — one by quarantine after repeated CRC faults, two by outright
// hardware death — plus an early task hang must leave the contended
// Nimblock workload fully completed with zero hypervisor errors, the
// recovery events on the trace, and a makespan comparable to running on
// the surviving 7 slots from the start.
func TestDegradedBoardAcceptance(t *testing.T) {
	plan := faults.MustParsePlan(`
seed 11
crc  slot=7 prob=1
dead slot=8 at=1s
dead slot=9 at=2s
hang app=LeNet task=0 prob=1 until=400ms
`)
	cfg := hv.DefaultConfig()
	cfg.EnableTrace = true
	cfg.Board.NewInjector = plan.MustFactory()
	cfg.WatchdogFactor = 3
	cfg.WatchdogGrace = 50 * sim.Millisecond
	cfg.QuarantineThreshold = 3

	res, h := runNimblock(t, cfg, degradedWorkload())
	if h.Err() != nil {
		t.Fatalf("hypervisor error: %v", h.Err())
	}
	if len(res) != len(degradedWorkload()) {
		t.Fatalf("%d results for %d submissions", len(res), len(degradedWorkload()))
	}
	if got := h.UsableSlots(); got != 7 {
		t.Errorf("usable slots after the plan: %d, want 7", got)
	}

	log := h.Trace()
	if log.Count(trace.KindQuarantine) != 1 {
		t.Errorf("%d quarantine events, want 1", log.Count(trace.KindQuarantine))
	}
	if log.Count(trace.KindSlotOffline) != 3 {
		t.Errorf("%d slot-offline events, want 3", log.Count(trace.KindSlotOffline))
	}
	if log.Count(trace.KindWatchdog) == 0 {
		t.Error("no watchdog events despite a guaranteed hang")
	}
	if log.Count(trace.KindRetry) == 0 {
		t.Error("no retry events despite a guaranteed CRC fault")
	}

	rec := h.Recovery()
	if rec.SlotsOffline != 3 || rec.Quarantined != 1 {
		t.Errorf("recovery stats: %d offline (%d quarantined), want 3 (1)", rec.SlotsOffline, rec.Quarantined)
	}
	if rec.WatchdogKills == 0 || rec.WastedWork <= 0 {
		t.Errorf("watchdog accounting: kills=%d wasted=%v", rec.WatchdogKills, rec.WastedWork)
	}

	// Fault-free baseline on the 7 slots that survive: the degraded run
	// pays for retries, the hang, and work stranded on dying slots, but
	// must stay within 2x.
	base := hv.DefaultConfig()
	base.Board.Slots = 7
	bres, bh := runNimblock(t, base, degradedWorkload())
	if bh.Err() != nil {
		t.Fatalf("baseline hypervisor error: %v", bh.Err())
	}
	faulted, clean := makespan(res), makespan(bres)
	if clean <= 0 {
		t.Fatalf("degenerate baseline makespan %v", clean)
	}
	if ratio := float64(faulted) / float64(clean); ratio > 2 {
		t.Errorf("degraded makespan %v is %.2fx the 7-slot fault-free %v (limit 2x)", faulted, ratio, clean)
	}
}

// Unrecoverable hardware (every reconfiguration attempt faults, forever)
// must fail cleanly: each policy reports applications unfinished at the
// horizon rather than wedging, panicking, or corrupting state.
func TestUnrecoverableFaultsFailCleanly(t *testing.T) {
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			cfg := hv.DefaultConfig()
			cfg.Board.FaultRate = 1
			cfg.Horizon = sim.Time(10 * sim.Second)
			h, err := hv.New(eng, cfg, mk())
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range mixedWorkload() {
				if err := h.Submit(apps.MustGraph(s.name), s.batch, s.prio, s.at); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := h.Run(); err == nil {
				t.Fatal("run succeeded on a board that cannot configure anything")
			} else if !strings.Contains(err.Error(), "unfinished at horizon") {
				t.Fatalf("want a clean horizon failure, got: %v", err)
			}
			if h.Err() != nil {
				t.Fatalf("mechanical hypervisor error: %v", h.Err())
			}
			// Transient faults never cost slots: every failed
			// reconfiguration freed its slot and returned the task to
			// the policy.
			if h.UsableSlots() != h.NumSlots() {
				t.Errorf("%d of %d slots usable after transient-only faults",
					h.UsableSlots(), h.NumSlots())
			}
		})
	}
}
