package hv_test

import (
	"reflect"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/sched"
	"nimblock/internal/sched/energy"
	"nimblock/internal/sched/schedtest"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// sixPolicies extends the historical five-policy map with
// NimblockEnergy so the energy property suites quantify over every
// scheduler, including the one whose decisions depend on tenant
// service.
func sixPolicies() map[string]func() sched.Scheduler {
	m := policies()
	board := hv.DefaultConfig().Board
	m["NimblockEnergy"] = func() sched.Scheduler { return energy.New(board) }
	return m
}

// Property: energy conservation. For 20 seeds across all six policies,
// the hypervisor's reported joules must equal static power times the
// usable slot-time integral plus active power times the occupied
// slot-time integral, where both integrals are re-derived independently
// from the event stream by the trace checker. Every fourth seed injects
// reconfiguration faults so the retry and fault-abort transitions are
// covered too.
func TestEnergyConservationProperty(t *testing.T) {
	const seeds = 20
	const staticW, activeW = 2.5, 1.5
	scenarios := []workload.Scenario{workload.Standard, workload.Stress, workload.RealTime}
	for name, mk := range sixPolicies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= seeds; seed++ {
				checker := schedtest.NewChecker()
				eng := sim.NewEngine()
				cfg := hv.DefaultConfig()
				cfg.Observer = checker
				cfg.Board.StaticWattsPerSlot = staticW
				cfg.Board.ActiveWattsPerSlot = activeW
				if seed%4 == 0 {
					cfg.Board.FaultRate = 0.15
					cfg.Board.FaultSeed = seed
					cfg.Board.MaxRetries = 50
				}
				h, err := hv.New(eng, cfg, mk())
				if err != nil {
					t.Fatal(err)
				}
				seq := workload.Generate(workload.Spec{
					Scenario:   scenarios[seed%int64(len(scenarios))],
					Events:     6,
					FixedBatch: int(seed) % 7,
				}, seed)
				for _, ev := range seq {
					if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
						t.Fatal(err)
					}
				}
				res, err := h.Run()
				if err != nil {
					t.Fatalf("%s seed %d: %v", name, seed, err)
				}
				if err := checker.Finish(len(res)); err != nil {
					t.Fatalf("%s seed %d: %v", name, seed, err)
				}
				es := h.Energy()
				if es.TotalJoules() <= 0 || es.ActiveJoules <= 0 {
					t.Fatalf("%s seed %d: degenerate energy report %+v", name, seed, es)
				}
				if err := checker.CheckEnergy(cfg.Board.Slots, staticW, activeW, eng.Now(), es.TotalJoules()); err != nil {
					t.Fatalf("%s seed %d: %v", name, seed, err)
				}
			}
		})
	}
}

// Metamorphic: multiplying every power coefficient by k must multiply
// the reported joules by exactly k and leave the schedule bit-for-bit
// identical. Energy is an observation, never an input — for the
// energy-aware policy too, which steers by allocation shape and tenant
// service rather than by the wattage numbers.
func TestEnergyMetamorphicPowerScaling(t *testing.T) {
	// Power of two, so scaling each coefficient and the final sum is
	// exact in floating point and the comparison needs no tolerance.
	const k = 4.0
	for name, mk := range sixPolicies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 4; seed++ {
				run := func(scale float64) ([]hv.Result, float64) {
					eng := sim.NewEngine()
					cfg := hv.DefaultConfig()
					cfg.Board.StaticWattsPerSlot = 2 * scale
					cfg.Board.ActiveWattsPerSlot = 1 * scale
					h, err := hv.New(eng, cfg, mk())
					if err != nil {
						t.Fatal(err)
					}
					seq := workload.Generate(workload.Spec{
						Scenario:   workload.Stress,
						Events:     6,
						FixedBatch: int(seed) % 5,
					}, seed)
					for _, ev := range seq {
						if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
							t.Fatal(err)
						}
					}
					res, err := h.Run()
					if err != nil {
						t.Fatalf("%s seed %d: %v", name, seed, err)
					}
					return res, h.Energy().TotalJoules()
				}
				base, j1 := run(1)
				scaled, jk := run(k)
				if !reflect.DeepEqual(base, scaled) {
					t.Fatalf("%s seed %d: schedule changed when power was scaled", name, seed)
				}
				if jk != k*j1 {
					t.Fatalf("%s seed %d: joules %v at %vx power, want exactly %v", name, seed, jk, k, k*j1)
				}
			}
		})
	}
}

// fairnessRun drives the energy-aware policy with identical
// applications alternating between two tenants, all contending from
// t=0, and samples delivered per-tenant service mid-run (after
// completion any work-conserving schedule equalizes identical tenants,
// so only the mid-run snapshot distinguishes fair from unfair orders).
func fairnessRun(t *testing.T, seed int64, weightA, weightB float64) map[string]sim.Duration {
	t.Helper()
	const apps_ = 12
	batch := 5 + int(seed%5)
	submit := func(h *hv.Hypervisor) {
		t.Helper()
		for i := 0; i < apps_; i++ {
			tenant, w := "tenantA", weightA
			if i%2 == 1 {
				tenant, w = "tenantB", weightB
			}
			if _, err := h.SubmitTenant(apps.MustGraph(apps.LeNet), batch, 3, 0, tenant, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Probe run: measure the makespan of this exact workload so the
	// fairness snapshot lands mid-run with both tenants still backlogged.
	probeEng := sim.NewEngine()
	probe, err := hv.New(probeEng, hv.DefaultConfig(), energy.New(hv.DefaultConfig().Board))
	if err != nil {
		t.Fatal(err)
	}
	submit(probe)
	res, err := probe.Run()
	if err != nil {
		t.Fatal(err)
	}
	var makespan sim.Time
	for _, r := range res {
		if r.Retire > makespan {
			makespan = r.Retire
		}
	}
	eng := sim.NewEngine()
	h, err := hv.New(eng, hv.DefaultConfig(), energy.New(hv.DefaultConfig().Board))
	if err != nil {
		t.Fatal(err)
	}
	submit(h)
	eng.RunUntil(sim.Time(int64(makespan) / 2))
	return h.TenantServices()
}

// Property: fairness under equal weights. Two identical tenants in
// contention must split fabric time nearly evenly at every mid-run
// snapshot — Jain's index at least 0.95 across 20 seeds.
func TestFairnessEqualWeightsProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		svc := fairnessRun(t, seed, 1, 1)
		a, b := svc["tenantA"].Seconds(), svc["tenantB"].Seconds()
		if a <= 0 || b <= 0 {
			t.Fatalf("seed %d: tenant starved mid-run: A=%vs B=%vs", seed, a, b)
		}
		if j := metrics.JainIndex([]float64{a, b}); j < 0.95 {
			t.Fatalf("seed %d: Jain index %v < 0.95 (A=%vs B=%vs)", seed, j, a, b)
		}
	}
}

// Property: weighted fairness. A 4:1 weight split must deliver service
// in roughly 4:1 proportion under contention. Slot and batch
// granularity make the ratio coarse, so the tolerance band is generous
// but strictly separates 4:1 from both 1:1 and starvation.
func TestFairnessWeightedRatioProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		svc := fairnessRun(t, seed, 4, 1)
		a, b := svc["tenantA"].Seconds(), svc["tenantB"].Seconds()
		if b <= 0 {
			t.Fatalf("seed %d: light tenant starved (A=%vs B=%vs)", seed, a, b)
		}
		ratio := a / b
		if ratio < 2.0 || ratio > 8.0 {
			t.Fatalf("seed %d: service ratio %v outside [2,8] for 4:1 weights (A=%vs B=%vs)", seed, ratio, a, b)
		}
	}
}
