package hv_test

import (
	"testing"

	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sched/fcfs"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// goldenGraph is a 2-task chain with 100 ms items.
func goldenGraph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	b := taskgraph.NewBuilder("golden")
	x := b.AddTask("t0", 100*sim.Millisecond)
	y := b.AddTask("t1", 100*sim.Millisecond)
	b.Chain(x, y)
	return b.MustBuild()
}

// reconfigTime derives the exact per-slot reconfiguration latency from
// the analytic single-slot formula: n*R + batch*work.
func reconfigTime(t *testing.T, g *taskgraph.Graph) sim.Duration {
	t.Helper()
	ss := hv.SingleSlotLatencyFor(hv.DefaultConfig().Board, g, 1)
	return (ss - g.TotalWork()) / sim.Duration(g.NumTasks())
}

// TestGoldenScheduleFCFS pins the exact timeline of one bulk-mode app on
// two slots:
//
//	t=0       arrival; t0 queued on the CAP, t1 behind it (prefetch)
//	t=R       t0 live; items at [R, R+L], [R+L, R+2L]
//	t=2R      t1 live, waits for t0's whole batch (bulk readiness)
//	t=R+2L    t0 done; t1 items at [R+2L, R+3L], [R+3L, R+4L]
//	retire at R+4L (R < L, so reconfigurations hide behind compute)
func TestGoldenScheduleFCFS(t *testing.T) {
	g := goldenGraph(t)
	R := reconfigTime(t, g)
	L := 100 * sim.Millisecond
	if R >= L {
		t.Fatalf("golden schedule assumes R < L (R=%v)", R)
	}
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.Board.Slots = 2
	h, err := hv.New(eng, cfg, fcfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(g, 2, 3, 0); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.FirstLaunch != sim.Time(0).Add(R) {
		t.Errorf("first launch at %v, want %v", r.FirstLaunch, R)
	}
	want := sim.Time(0).Add(R + 4*L)
	if r.Retire != want {
		t.Errorf("retire at %v, want %v", r.Retire, want)
	}
	if r.Run != 4*L {
		t.Errorf("run = %v, want %v", r.Run, 4*L)
	}
	if r.Reconfig != 2*R {
		t.Errorf("reconfig = %v, want %v", r.Reconfig, 2*R)
	}
}

// TestGoldenScheduleNimblockPipelined pins the pipelined timeline of the
// same app under Nimblock:
//
//	t0 items at [R, R+L], [R+L, R+2L]
//	t1 live at 2R; item 0 ready at R+L (> 2R), so items at
//	[R+L, R+2L], [R+2L, R+3L] — retire at R+3L: pipelining saves L.
func TestGoldenScheduleNimblockPipelined(t *testing.T) {
	g := goldenGraph(t)
	R := reconfigTime(t, g)
	L := 100 * sim.Millisecond
	if 2*R >= R+L {
		t.Fatalf("golden schedule assumes 2R < R+L (R=%v)", R)
	}
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.Board.Slots = 2
	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(g, 2, 3, 0); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	want := sim.Time(0).Add(R + 3*L)
	if r.Retire != want {
		t.Errorf("retire at %v, want %v (pipelining must save one item)", r.Retire, want)
	}
}

// Preempting a free or configuring slot is a contract violation.
func TestRoguePreempt(t *testing.T) {
	eng := sim.NewEngine()
	h, err := hv.New(eng, hv.DefaultConfig(), &roguePreempt{})
	if err != nil {
		t.Fatal(err)
	}
	g := goldenGraph(t)
	if err := h.Submit(g, 1, 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(); err == nil {
		t.Fatal("preempt of empty slot did not fail the run")
	}
}

type roguePreempt struct{ fired bool }

func (r *roguePreempt) Name() string     { return "rogue-preempt" }
func (r *roguePreempt) Pipelining() bool { return false }
func (r *roguePreempt) Schedule(w sched.World, why sched.Reason) {
	if r.fired {
		return
	}
	r.fired = true
	w.RequestPreempt(3) // nothing is configured there
}
