package hv_test

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

// BenchmarkHypervisorRun measures one contended Nimblock run end to end:
// simulated time is fixed, so ns/op is pure harness overhead.
func BenchmarkHypervisorRun(b *testing.B) {
	board := hv.DefaultConfig().Board
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		h, err := hv.New(eng, hv.DefaultConfig(), core.New(core.DefaultOptions(), board))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range mixedWorkloadBench() {
			if err := h.Submit(apps.MustGraph(s.name), s.batch, s.prio, s.at); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := h.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func mixedWorkloadBench() []submission {
	return []submission{
		{apps.ImageCompression, 5, 3, 0},
		{apps.LeNet, 5, 1, 200 * sim.Time(sim.Millisecond)},
		{apps.OpticalFlow, 5, 9, 400 * sim.Time(sim.Millisecond)},
		{apps.Rendering3D, 8, 3, 600 * sim.Time(sim.Millisecond)},
	}
}

// BenchmarkSingleSlotLatency measures the analytic deadline helper.
func BenchmarkSingleSlotLatency(b *testing.B) {
	eng := sim.NewEngine()
	h, err := hv.New(eng, hv.DefaultConfig(), core.New(core.DefaultOptions(), hv.DefaultConfig().Board))
	if err != nil {
		b.Fatal(err)
	}
	g := apps.MustGraph(apps.AlexNet)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.SingleSlotLatency(g, 10) <= 0 {
			b.Fatal("bad latency")
		}
	}
}
