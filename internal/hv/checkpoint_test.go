package hv_test

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// checkpointConfig builds a hypervisor config in checkpoint mode.
func checkpointConfig(save, restore sim.Duration) hv.Config {
	cfg := hv.DefaultConfig()
	cfg.Preempt = hv.PreemptWithCheckpoint
	cfg.CheckpointSave = save
	cfg.CheckpointRestore = restore
	cfg.EnableTrace = true
	return cfg
}

// checkpointWorkload provokes mid-item preemption: a long-item app hogs
// slots, then high-priority newcomers arrive.
func checkpointWorkload(t *testing.T, cfg hv.Config) ([]hv.Result, *hv.Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	subs := []submission{
		{apps.OpticalFlow, 20, 1, 0}, // 507 ms items, pipelines wide
		{apps.AlexNet, 8, 1, 100 * sim.Time(sim.Millisecond)},
		{apps.LeNet, 5, 9, 2 * sim.Time(sim.Second)},
		{apps.Rendering3D, 5, 9, 2 * sim.Time(sim.Second)},
		{apps.ImageCompression, 5, 9, 2 * sim.Time(sim.Second)},
	}
	for _, s := range subs {
		if err := h.Submit(apps.MustGraph(s.name), s.batch, s.prio, s.at); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, h
}

func TestCheckpointPreemptionHappens(t *testing.T) {
	res, h := checkpointWorkload(t, checkpointConfig(10*sim.Millisecond, 10*sim.Millisecond))
	ckpts := h.Trace().Count(trace.KindCheckpoint)
	if ckpts == 0 {
		t.Fatal("no mid-item checkpoints happened")
	}
	preempts := 0
	for _, r := range res {
		preempts += r.Preemptions
	}
	if preempts < ckpts {
		t.Fatalf("accounted preemptions %d < checkpoints %d", preempts, ckpts)
	}
	// Work conservation with overhead: every app's run time covers at
	// least its nominal work (restore overhead may add to it).
	for _, r := range res {
		g := apps.MustGraph(r.App)
		want := g.TotalWork() * sim.Duration(r.Batch)
		if r.Run < want {
			t.Errorf("%s: run %v < nominal %v (checkpoint lost work)", r.App, r.Run, want)
		}
	}
	if h.Mem().Live() != 0 {
		t.Fatalf("%d buffers leaked", h.Mem().Live())
	}
}

func TestCheckpointedItemsResumeExactlyOnceEach(t *testing.T) {
	_, h := checkpointWorkload(t, checkpointConfig(sim.Millisecond, sim.Millisecond))
	type key struct {
		app        int64
		task, item int
	}
	starts := map[key]int{}
	ckpts := map[key]int{}
	dones := map[key]int{}
	for _, e := range h.Trace().Events() {
		k := key{e.AppID, e.Task, e.Item}
		switch e.Kind {
		case trace.KindItemStart:
			starts[k]++
		case trace.KindCheckpoint:
			ckpts[k]++
		case trace.KindItemDone:
			dones[k]++
		}
	}
	for k, n := range dones {
		if n != 1 {
			t.Fatalf("item %+v finished %d times", k, n)
		}
		if starts[k] != 1+ckpts[k] {
			t.Fatalf("item %+v: %d starts for %d checkpoints", k, starts[k], ckpts[k])
		}
	}
	for k := range starts {
		if dones[k] != 1 {
			t.Fatalf("item %+v never finished", k)
		}
	}
}

func TestCheckpointFreesSlotFasterThanBatchBoundary(t *testing.T) {
	// Compare the high-priority newcomers' responses under batch vs
	// cheap-checkpoint preemption: with 507 ms / 1.6 s items in flight,
	// instant checkpointing must serve newcomers at least as fast.
	batchCfg := hv.DefaultConfig()
	batchCfg.EnableTrace = true
	batchRes, _ := checkpointWorkload(t, batchCfg)
	ckptRes, _ := checkpointWorkload(t, checkpointConfig(sim.Millisecond, sim.Millisecond))
	var batchHigh, ckptHigh sim.Duration
	for i := range batchRes {
		if batchRes[i].Priority == 9 {
			batchHigh += batchRes[i].Response
			ckptHigh += ckptRes[i].Response
		}
	}
	if ckptHigh > batchHigh {
		t.Fatalf("cheap checkpointing slower for high-priority apps: %v vs %v", ckptHigh, batchHigh)
	}
}

func TestCheckpointConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := checkpointConfig(-1, 0)
	if _, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board)); err == nil {
		t.Fatal("negative save cost accepted")
	}
}

func TestCheckpointDeterminism(t *testing.T) {
	a, _ := checkpointWorkload(t, checkpointConfig(5*sim.Millisecond, 5*sim.Millisecond))
	b, _ := checkpointWorkload(t, checkpointConfig(5*sim.Millisecond, 5*sim.Millisecond))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
