package hv

import (
	"testing"

	"nimblock/internal/sched/fcfs"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// The observability hook must be free when disabled: with no observer
// and tracing off, emitting a trace event from the hot path performs
// zero allocations. This is the guard behind the "a nil Sink costs one
// pointer test" promise in internal/obs.
func TestDisabledObserverZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	h, err := New(eng, cfg, fcfs.New())
	if err != nil {
		t.Fatal(err)
	}
	e := trace.Event{At: 1000, Kind: trace.KindItemStart, App: "a", AppID: 1, Task: 0, Slot: 0, Item: 0}
	if n := testing.AllocsPerRun(1000, func() { h.trace(e) }); n != 0 {
		t.Fatalf("disabled-observer trace path allocates %v per event, want 0", n)
	}
}

// With an observer attached the event must actually reach it.
func TestObserverReceivesFromTracePath(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	var got int
	cfg.Observer = obsFunc(func(trace.Event) { got++ })
	h, err := New(eng, cfg, fcfs.New())
	if err != nil {
		t.Fatal(err)
	}
	h.trace(trace.Event{Kind: trace.KindArrival})
	h.trace(trace.Event{Kind: trace.KindRetire})
	if got != 2 {
		t.Fatalf("observer saw %d events, want 2", got)
	}
}

// obsFunc avoids importing obs.Func here just for an adapter.
type obsFunc func(trace.Event)

func (f obsFunc) Observe(e trace.Event) { f(e) }

// BenchmarkTraceDisabled pins the per-event cost of the disabled path:
// one nil check on the log, one nil check on the observer.
func BenchmarkTraceDisabled(b *testing.B) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	h, err := New(eng, cfg, fcfs.New())
	if err != nil {
		b.Fatal(err)
	}
	e := trace.Event{At: 1000, Kind: trace.KindItemStart, App: "a", AppID: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.trace(e)
	}
}
