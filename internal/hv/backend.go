package hv

// Backend and Lifecycle are the seams the fleet-facing layers manage
// boards through — the layered-manager split (builder / manager /
// per-concern interfaces, no state in the management layer) that lets
// the cluster, serverless, and fleet front-ends treat "a board" as an
// opaque backend. The hypervisor is the only implementation today;
// the interfaces exist so shards, heterogeneous boards, and failover
// all sit behind the same narrow surface, and so an alternative
// backend (a remote board, a recorded trace, a mock) can slot in
// without touching the management layers.

import (
	"nimblock/internal/fpga"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Backend is the per-board scheduling surface: everything a dispatcher
// needs to place work, read load, and collect results. Implementations
// are event-driven on the engine they were built against; none of these
// methods block.
type Backend interface {
	// SubmitID schedules an application arrival and returns the
	// board-local submission ID the front-end keys its bookkeeping with.
	SubmitID(g *taskgraph.Graph, batch, priority int, arrival sim.Time) (int64, error)
	// SubmitTenant is SubmitID with a tenant identity and fair-share
	// weight for service-proportional scheduling.
	SubmitTenant(g *taskgraph.Graph, batch, priority int, arrival sim.Time, tenant string, weight float64) (int64, error)
	// Collect returns every retired result once the engine has been
	// driven externally; it fails if work is still unfinished.
	Collect() ([]Result, error)
	// OutstandingEstimate sums the estimated remaining work of all
	// pending submissions — the load signal placement policies rank by.
	OutstandingEstimate() sim.Duration
	// PendingCount reports submissions accepted and not yet retired.
	PendingCount() int
	// NumSlots reports the board's reconfigurable region count.
	NumSlots() int
	// Board exposes the board's resource model (slots, latency scale,
	// power integrals) for placement scoring and energy aggregation.
	Board() *fpga.Board
	// Energy reports the board's integrated energy at the engine's
	// current time.
	Energy() EnergyStats
	// TenantServices reports weighted fabric time delivered per tenant.
	TenantServices() map[string]sim.Duration
}

// Lifecycle is the failure-domain surface: the operations a health
// monitor and failover layer drive when a board hangs, dies, degrades,
// or hosts the losing copy of a hedged dispatch.
type Lifecycle interface {
	// Progress is the monotonic heartbeat counter liveness polls compare.
	Progress() uint64
	// Freeze halts the board (board-hang): callbacks stop, heartbeat
	// stalls.
	Freeze()
	// Evacuate declares the board dead and hands back every unfinished
	// submission with its surviving checkpoints.
	Evacuate() []Evacuee
	// SeedCheckpoints installs snapshots evacuated from a dead board
	// under a freshly submitted ID, so migrated items resume.
	SeedCheckpoints(id int64, snaps []Snapshot)
	// Abort cancels one unfinished submission (the hedge loser) and
	// reports the fabric time spent on it.
	Abort(id int64) (bool, sim.Duration)
	// SetSlowdown applies a board-wide latency multiplier (board-degrade).
	SetSlowdown(f float64)
}

// Instance is a full board backend: schedulable and failure-domain
// managed. The cluster, serverless, and fleet front-ends hold their
// boards behind this type.
type Instance interface {
	Backend
	Lifecycle
}

// The hypervisor is the reference implementation of both seams.
var (
	_ Backend   = (*Hypervisor)(nil)
	_ Lifecycle = (*Hypervisor)(nil)
	_ Instance  = (*Hypervisor)(nil)
)
