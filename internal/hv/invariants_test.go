package hv_test

import (
	"fmt"
	"math/rand"

	"nimblock/internal/taskgraph"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sched/schedtest"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
	"nimblock/internal/workload"
)

// traceRun replays a generated sequence with tracing and returns the
// results and log.
func traceRun(t *testing.T, mk func() sched.Scheduler, seq workload.Sequence) ([]hv.Result, *trace.Log) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.EnableTrace = true
	h, err := hv.New(eng, cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range seq {
		if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Run()
	if err != nil {
		t.Fatalf("%v", err)
	}
	return res, h.Trace()
}

// checkTraceInvariants delegates to the reusable streaming checker in
// internal/sched/schedtest; see its documentation for the invariant
// catalogue (CAP serialization is checked separately where wanted, so
// the gap check is disabled here to match the historical behaviour).
func checkTraceInvariants(t *testing.T, lg *trace.Log, results []hv.Result) {
	t.Helper()
	c := schedtest.NewChecker()
	c.MinReconfigGap = 0
	if err := c.Replay(lg).Finish(len(results)); err != nil {
		t.Fatal(err)
	}
}

// checkCAPSerialization verifies the single configuration port globally:
// successive reconfiguration completions are spaced by at least one full
// reconfiguration time (trace records queueing at start, so completions
// are the serialization witness).
func checkCAPSerialization(t *testing.T, lg *trace.Log) {
	t.Helper()
	if err := schedtest.NewChecker().Replay(lg).Err(); err != nil {
		t.Fatal(err)
	}
}

// Property suite: the full invariant checker rides along live — attached
// as the hypervisor observer, with tracing off — across every policy and
// a spread of randomized workloads. This is the streaming counterpart of
// TestTraceInvariantsAcrossPolicies and doubles as coverage for the
// observability hook itself.
func TestInvariantPropertySuiteLive(t *testing.T) {
	const seeds = 20
	scenarios := []workload.Scenario{workload.Standard, workload.Stress, workload.RealTime}
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= seeds; seed++ {
				checker := schedtest.NewChecker()
				eng := sim.NewEngine()
				cfg := hv.DefaultConfig()
				cfg.Observer = checker
				h, err := hv.New(eng, cfg, mk())
				if err != nil {
					t.Fatal(err)
				}
				seq := workload.Generate(workload.Spec{
					Scenario:   scenarios[seed%int64(len(scenarios))],
					Events:     6,
					FixedBatch: int(seed) % 7,
				}, seed)
				for _, ev := range seq {
					if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
						t.Fatal(err)
					}
				}
				res, err := h.Run()
				if err != nil {
					t.Fatalf("%s seed %d: %v", name, seed, err)
				}
				if err := checker.Finish(len(res)); err != nil {
					t.Fatalf("%s seed %d: %v", name, seed, err)
				}
				if checker.Events() == 0 {
					t.Fatalf("%s seed %d: observer saw no events", name, seed)
				}
				if h.Trace().Len() != 0 {
					t.Fatalf("%s seed %d: tracing off but log has %d events", name, seed, h.Trace().Len())
				}
			}
		})
	}
}

// Randomized invariant sweep across all five policies.
func TestTraceInvariantsAcrossPolicies(t *testing.T) {
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				seq := workload.Generate(workload.Spec{
					Scenario: workload.Stress,
					Events:   10,
					// Bound batch so the sweep stays fast.
					FixedBatch: int(seed*3) % 8,
				}, seed)
				res, lg := traceRun(t, mk, seq)
				checkTraceInvariants(t, lg, res)
				checkCAPSerialization(t, lg)
			}
		})
	}
}

// The same invariants hold for the ablation variants, which exercise
// preemption and pipelining paths differently.
func TestTraceInvariantsAblations(t *testing.T) {
	board := hv.DefaultConfig().Board
	variants := map[string]core.Options{
		"NoPreempt":       {Pipelining: true},
		"NoPipe":          {Preemption: true},
		"NoPreemptNoPipe": {},
	}
	for name, opts := range variants {
		name, opts := name, opts
		t.Run(name, func(t *testing.T) {
			seq := workload.Generate(workload.Spec{Scenario: workload.RealTime, Events: 10}, 5)
			res, lg := traceRun(t, func() sched.Scheduler { return core.New(opts, board) }, seq)
			checkTraceInvariants(t, lg, res)
		})
	}
}

// Invariants hold under reconfiguration fault injection too.
func TestTraceInvariantsWithFaults(t *testing.T) {
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.EnableTrace = true
	cfg.Board.FaultRate = 0.15
	cfg.Board.FaultSeed = 3
	cfg.Board.MaxRetries = 50
	h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board))
	if err != nil {
		t.Fatal(err)
	}
	seq := workload.Generate(workload.Spec{Scenario: workload.Stress, Events: 8}, 11)
	for _, ev := range seq {
		if err := h.Submit(apps.MustGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkTraceInvariants(t, h.Trace(), res)
	if h.Board().Stats().Faults == 0 {
		t.Fatal("fault injection inactive")
	}
}

// Response-time accounting is consistent with the trace: an app's
// first item-start matches FirstLaunch and its retire matches Retire.
func TestAccountingMatchesTrace(t *testing.T) {
	board := hv.DefaultConfig().Board
	seq := workload.Generate(workload.Spec{Scenario: workload.Standard, Events: 8}, 21)
	res, lg := traceRun(t, func() sched.Scheduler { return core.New(core.DefaultOptions(), board) }, seq)
	firstStart := map[int64]sim.Time{}
	retire := map[int64]sim.Time{}
	for _, e := range lg.Events() {
		switch e.Kind {
		case trace.KindItemStart:
			if _, ok := firstStart[e.AppID]; !ok {
				firstStart[e.AppID] = e.At
			}
		case trace.KindRetire:
			retire[e.AppID] = e.At
		}
	}
	for _, r := range res {
		if firstStart[r.AppID] != r.FirstLaunch {
			t.Errorf("app %d: FirstLaunch %v, trace %v", r.AppID, r.FirstLaunch, firstStart[r.AppID])
		}
		if retire[r.AppID] != r.Retire {
			t.Errorf("app %d: Retire %v, trace %v", r.AppID, r.Retire, retire[r.AppID])
		}
	}
}

// randomDAGGraph builds a random DAG application with forward edges and
// mixed task latencies, exercising join/fork readiness paths the chain
// benchmarks never hit.
func randomDAGGraph(seed int64, name string) *taskgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(10)
	b := taskgraph.NewBuilder(name)
	for i := 0; i < n; i++ {
		b.AddTask("t", sim.Duration(5+rng.Intn(200))*sim.Millisecond)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

// Property: random DAG applications complete under every policy with all
// trace invariants intact.
func TestRandomDAGInvariantsProperty(t *testing.T) {
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := int64(100); seed < 106; seed++ {
				eng := sim.NewEngine()
				cfg := hv.DefaultConfig()
				cfg.EnableTrace = true
				h, err := hv.New(eng, cfg, mk())
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed))
				nApps := 2 + rng.Intn(4)
				for i := 0; i < nApps; i++ {
					g := randomDAGGraph(seed*31+int64(i), fmt.Sprintf("dag%d-%d", seed, i))
					batch := 1 + rng.Intn(6)
					prio := []int{1, 3, 9}[rng.Intn(3)]
					at := sim.Time(rng.Intn(2_000_000))
					if err := h.Submit(g, batch, prio, at); err != nil {
						t.Fatal(err)
					}
				}
				res, err := h.Run()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				checkTraceInvariants(t, h.Trace(), res)
				// Work conservation on arbitrary DAGs.
				for _, r := range res {
					if r.Run <= 0 {
						t.Fatalf("seed %d: app %s ran for %v", seed, r.App, r.Run)
					}
				}
				if h.Mem().Live() != 0 {
					t.Fatalf("seed %d: %d buffers leaked", seed, h.Mem().Live())
				}
			}
		})
	}
}

// The hypervisor's accounting must agree with trace-derived summaries.
func TestSummariesMatchAccounting(t *testing.T) {
	board := hv.DefaultConfig().Board
	seq := workload.Generate(workload.Spec{Scenario: workload.Stress, Events: 8}, 31)
	res, lg := traceRun(t, func() sched.Scheduler { return core.New(core.DefaultOptions(), board) }, seq)
	sums := lg.Summarize()
	if len(sums) != len(res) {
		t.Fatalf("%d summaries for %d results", len(sums), len(res))
	}
	byID := map[int64]hv.Result{}
	for _, r := range res {
		byID[r.AppID] = r
	}
	for _, s := range sums {
		r := byID[s.AppID]
		if s.Response() != r.Response {
			t.Errorf("app %d: summary response %v vs accounting %v", s.AppID, s.Response(), r.Response)
		}
		if s.ComputeTime != r.Run {
			t.Errorf("app %d: summary compute %v vs accounting %v", s.AppID, s.ComputeTime, r.Run)
		}
		if s.Preemptions != r.Preemptions {
			t.Errorf("app %d: summary preempts %d vs accounting %d", s.AppID, s.Preemptions, r.Preemptions)
		}
		if s.Reconfigs != r.Reconfigurations {
			t.Errorf("app %d: summary reconfigs %d vs accounting %d", s.AppID, s.Reconfigs, r.Reconfigurations)
		}
		g := apps.MustGraph(s.App)
		if s.Items != g.NumTasks()*r.Batch {
			t.Errorf("app %d: %d items, want %d", s.AppID, s.Items, g.NumTasks()*r.Batch)
		}
	}
}
