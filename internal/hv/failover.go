package hv

// Board-level failure-domain support: the cluster and serverless
// front-ends treat each hypervisor as a failure domain that can freeze
// (board-hang), die (board-crash or liveness timeout), or degrade
// (board-wide slowdown). A frozen board stops processing events — every
// callback is guarded by halted() — so its heartbeat counter stalls and
// the fleet's liveness monitor notices. A dead board is evacuated: its
// unfinished submissions (with any surviving checkpoints) are handed
// back for re-dispatch, and the hypervisor is left holding only retired
// results so Collect still balances.

import (
	"slices"

	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// halted reports whether the board has stopped serving (frozen or dead).
func (h *Hypervisor) halted() bool { return h.frozen || h.dead }

// Progress returns the monotonic heartbeat counter: it advances with
// every emitted event and stalls the moment the board freezes. Fleet
// liveness polls compare it across intervals.
func (h *Hypervisor) Progress() uint64 { return h.progress }

// Frozen reports whether the board is frozen (board-hang).
func (h *Hypervisor) Frozen() bool { return h.frozen }

// Evacuated reports whether the board was declared dead and drained.
func (h *Hypervisor) Evacuated() bool { return h.dead }

// SetSlowdown applies a board-wide latency multiplier to every item
// attempt started from now on (board-degrade). Factors <= 1 clear it.
// In-flight items keep the factor they started with.
func (h *Hypervisor) SetSlowdown(f float64) {
	if f <= 1 {
		h.slow = 0
		return
	}
	h.slow = f
}

// Freeze halts the board (board-hang): every slot's pending completion,
// watchdog, and checkpoint timer is cancelled and all further callbacks
// are dropped by the halted() guards, so no event — and therefore no
// heartbeat — is ever emitted again. Freezing is one-way: a frozen
// board is either evacuated after the fleet declares it dead, or
// discarded when a scheduled recovery replaces it.
func (h *Hypervisor) Freeze() {
	if h.halted() {
		return
	}
	h.frozen = true
	for s := range h.slots {
		rt := &h.slots[s]
		h.eng.Cancel(rt.itemEv)
		h.eng.Cancel(rt.wdEv)
		h.eng.Cancel(rt.ckptEv)
		rt.itemEv, rt.wdEv, rt.ckptEv = 0, 0, 0
		// Fold the running stretch into doneWall at the freeze instant so
		// frozen wall time is never billed as fabric work.
		if rt.active && rt.curItem >= 0 && !rt.saving && !rt.restoring {
			rt.doneWall += h.eng.Now().Sub(rt.itemStart)
			rt.itemStart = h.eng.Now()
		}
		rt.hung = true
	}
	h.tickPending = false
}

// Snapshot is one surviving checkpoint carried off a dead board.
type Snapshot struct {
	Task, Item int
	// Progress is the nominal work the snapshot captured; Remaining is
	// the nominal work left after it; Bytes is the state size that must
	// stream through the target board's CAP before the item resumes.
	Progress  sim.Duration
	Remaining sim.Duration
	Bytes     int64
}

// Evacuee is one unfinished submission handed back when its board died.
type Evacuee struct {
	// ID is the board-local submission ID the front-end keyed its
	// bookkeeping with.
	ID       int64
	App      *sched.App
	Priority int
	Batch    int
	Arrival  sim.Time
	// WorkDone is the fabric time the dead board had already spent on
	// the submission (run + reconfiguration + in-flight stretches) —
	// wasted unless snapshots carry part of it to the next board.
	WorkDone sim.Duration
	// Snapshots are the submission's surviving checkpoints, in no
	// particular order. Seed them into the target hypervisor with
	// SeedCheckpoints so migrated items resume instead of re-executing.
	Snapshots []Snapshot
}

// Evacuate declares the board dead and drains it: every unfinished
// submission is returned (with its surviving checkpoints) for the fleet
// to re-dispatch, and the hypervisor forgets it ever saw them, so
// Collect returns exactly the results that retired before the death.
func (h *Hypervisor) Evacuate() []Evacuee {
	h.Freeze()
	h.dead = true
	var out []Evacuee
	gone := map[*sched.App]bool{}
	for _, a := range h.apps {
		if a.Retired() {
			continue
		}
		gone[a] = true
		ev := Evacuee{ID: a.ID, App: a, Priority: a.Priority, Batch: a.Batch, Arrival: a.Arrival}
		if res, ok := h.acct[a.ID]; ok {
			ev.WorkDone = res.Run + res.Reconfig
		}
		for s := range h.slots {
			rt := &h.slots[s]
			if rt.app != a || !rt.active || rt.curItem < 0 {
				continue
			}
			// The dying stretch of an in-flight item was never booked
			// into Run; Freeze already folded it into doneWall.
			ev.WorkDone += rt.doneWall
		}
		for key, rec := range h.ckpt[a.ID] {
			if rec.bytes <= 0 || rec.progress <= 0 {
				continue // legacy flat-cost records cannot migrate
			}
			ev.Snapshots = append(ev.Snapshots, Snapshot{
				Task: key[0], Item: key[1],
				Progress: rec.progress, Remaining: rec.remaining, Bytes: rec.bytes,
			})
		}
		// Map iteration order is random; keep evacuees deterministic.
		slices.SortFunc(ev.Snapshots, func(x, y Snapshot) int {
			if x.Task != y.Task {
				return x.Task - y.Task
			}
			return x.Item - y.Item
		})
		a.MarkAborted()
		h.mem.ReleaseOwner(h.owner(a))
		delete(h.owners, a.ID)
		delete(h.bufOut, a.ID)
		delete(h.handoff, a.ID)
		delete(h.prodAt, a.ID)
		delete(h.ckpt, a.ID)
		delete(h.acct, a.ID)
		out = append(out, ev)
	}
	// Keep only apps whose results already retired so Collect's
	// conservation check balances.
	kept := h.apps[:0]
	for _, a := range h.apps {
		if !gone[a] {
			kept = append(kept, a)
		}
	}
	h.apps = kept
	h.pending = h.pending[:0]
	h.transit = h.transit[:0]
	for s := range h.slots {
		h.slots[s] = slotRuntime{curItem: -1}
	}
	return out
}

// SeedCheckpoints installs snapshots evacuated from a dead board under
// a freshly submitted ID on this board. When the migrated item starts,
// the normal restore path streams the state in through this board's CAP
// — migration is priced by the same cost model as any restore.
func (h *Hypervisor) SeedCheckpoints(id int64, snaps []Snapshot) {
	for _, s := range snaps {
		h.ckptPut(id, s.Task, s.Item, ckptRecord{remaining: s.Remaining, progress: s.Progress, bytes: s.Bytes})
	}
}

// Abort cancels one unfinished submission (the hedge loser after its
// twin retired elsewhere). In-flight items are dropped, loaded slots
// are released, and a mid-reconfiguration stream is left to drain — its
// completion callback sees the aborted ID and frees the slot. It
// returns false if the submission already retired (or was never here),
// and the fabric time the board had spent on it.
func (h *Hypervisor) Abort(id int64) (bool, sim.Duration) {
	var app *sched.App
	for _, a := range h.apps {
		if a.ID == id {
			app = a
			break
		}
	}
	if app == nil || app.Retired() {
		return false, 0
	}
	var spent sim.Duration
	if res, ok := h.acct[id]; ok {
		spent = res.Run + res.Reconfig
	}
	for s := range h.slots {
		rt := &h.slots[s]
		if rt.app != app {
			continue
		}
		h.eng.Cancel(rt.itemEv)
		h.eng.Cancel(rt.wdEv)
		h.eng.Cancel(rt.ckptEv)
		if !rt.active {
			// CAP stream in flight: reconfigDone drops it via abortedIDs.
			continue
		}
		if rt.curItem >= 0 && !rt.saving && !rt.restoring {
			spent += rt.doneWall + h.eng.Now().Sub(rt.itemStart)
		}
		if err := h.board.Release(s); err != nil {
			h.fail(err)
			return false, 0
		}
		h.slots[s] = slotRuntime{curItem: -1}
		h.wake(sched.ReasonSlotFree)
	}
	if h.abortedIDs == nil {
		h.abortedIDs = map[int64]bool{}
	}
	h.abortedIDs[id] = true
	app.MarkAborted()
	for i, a := range h.apps {
		if a == app {
			h.apps = append(h.apps[:i], h.apps[i+1:]...)
			break
		}
	}
	for i, a := range h.pending {
		if a == app {
			h.pending = append(h.pending[:i], h.pending[i+1:]...)
			break
		}
	}
	for i, a := range h.transit {
		if a == app {
			h.transit = append(h.transit[:i], h.transit[i+1:]...)
			break
		}
	}
	h.mem.ReleaseOwner(h.owner(app))
	delete(h.owners, id)
	delete(h.bufOut, id)
	delete(h.handoff, id)
	delete(h.prodAt, id)
	delete(h.ckpt, id)
	delete(h.acct, id)
	h.wake(sched.ReasonAppDone)
	return true, spent
}
