package hv_test

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/interconnect"
	"nimblock/internal/sched"
	"nimblock/internal/sched/baseline"
	"nimblock/internal/sched/fcfs"
	"nimblock/internal/sched/prema"
	"nimblock/internal/sched/rr"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// policies returns fresh instances of all five schedulers.
func policies() map[string]func() sched.Scheduler {
	board := hv.DefaultConfig().Board
	return map[string]func() sched.Scheduler{
		"Baseline": func() sched.Scheduler { return baseline.New() },
		"FCFS":     func() sched.Scheduler { return fcfs.New() },
		"PREMA":    func() sched.Scheduler { return prema.New() },
		"RR":       func() sched.Scheduler { return rr.New() },
		"Nimblock": func() sched.Scheduler { return core.New(core.DefaultOptions(), board) },
	}
}

func runSuite(t *testing.T, policy sched.Scheduler, subs []submission, traceOn bool) ([]hv.Result, *hv.Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.EnableTrace = traceOn
	h, err := hv.New(eng, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if err := h.Submit(apps.MustGraph(s.name), s.batch, s.prio, s.at); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Run()
	if err != nil {
		t.Fatalf("%s: %v", policy.Name(), err)
	}
	return res, h
}

type submission struct {
	name  string
	batch int
	prio  int
	at    sim.Time
}

// mixedWorkload is a moderately contended mix across the suite.
func mixedWorkload() []submission {
	return []submission{
		{apps.ImageCompression, 5, 3, 0},
		{apps.LeNet, 5, 1, 200 * sim.Time(sim.Millisecond)},
		{apps.OpticalFlow, 5, 9, 400 * sim.Time(sim.Millisecond)},
		{apps.Rendering3D, 8, 3, 600 * sim.Time(sim.Millisecond)},
		{apps.LeNet, 10, 9, 800 * sim.Time(sim.Millisecond)},
		{apps.ImageCompression, 3, 1, 1000 * sim.Time(sim.Millisecond)},
	}
}

// All five policies must complete every application, with consistent
// accounting and zero leaked buffers.
func TestAllPoliciesComplete(t *testing.T) {
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			res, h := runSuite(t, mk(), mixedWorkload(), false)
			if len(res) != len(mixedWorkload()) {
				t.Fatalf("%d results for %d submissions", len(res), len(mixedWorkload()))
			}
			for _, r := range res {
				if r.Response <= 0 {
					t.Errorf("%s: non-positive response %v", r.App, r.Response)
				}
				if r.Retire < r.FirstLaunch || r.FirstLaunch < r.Arrival {
					t.Errorf("%s: time ordering violated: arrival=%v launch=%v retire=%v",
						r.App, r.Arrival, r.FirstLaunch, r.Retire)
				}
				if r.Wait < 0 || r.Run <= 0 || r.Reconfig <= 0 {
					t.Errorf("%s: bad accounting %+v", r.App, r)
				}
				if r.Reconfigurations < 1 {
					t.Errorf("%s: no reconfigurations recorded", r.App)
				}
			}
			if h.Mem().Live() != 0 {
				t.Errorf("%d buffers leaked", h.Mem().Live())
			}
			if h.Mem().Used() != 0 {
				t.Errorf("%d bytes leaked", h.Mem().Used())
			}
		})
	}
}

// Run-time conservation: each application's summed item execution time
// equals batch x total per-item work, regardless of policy.
func TestRunTimeConservation(t *testing.T) {
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			res, _ := runSuite(t, mk(), mixedWorkload(), false)
			for _, r := range res {
				g := apps.MustGraph(r.App)
				want := g.TotalWork() * sim.Duration(r.Batch)
				if r.Run != want {
					t.Errorf("%s: run time %v, want %v", r.App, r.Run, want)
				}
			}
		})
	}
}

// Determinism: identical stimuli produce identical results.
func TestDeterminism(t *testing.T) {
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			a, _ := runSuite(t, mk(), mixedWorkload(), false)
			b, _ := runSuite(t, mk(), mixedWorkload(), false)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("run diverged at %d:\n%+v\n%+v", i, a[i], b[i])
				}
			}
		})
	}
}

// Baseline executes one application at a time: with distinct arrival
// times, busy intervals must not overlap.
func TestBaselineNoSharing(t *testing.T) {
	subs := []submission{
		{apps.Rendering3D, 5, 3, 0},
		{apps.LeNet, 5, 9, 100 * sim.Time(sim.Millisecond)},
		{apps.ImageCompression, 5, 1, 200 * sim.Time(sim.Millisecond)},
	}
	res, _ := runSuite(t, baseline.New(), subs, false)
	// Each app's first launch must come after the previous app retired
	// (modulo the reconfiguration prefetch, which only starts after
	// retirement too since slots belong to the active app).
	for i := 1; i < len(res); i++ {
		if res[i].FirstLaunch < res[i-1].Retire {
			t.Fatalf("app %d launched at %v before app %d retired at %v",
				i, res[i].FirstLaunch, i-1, res[i-1].Retire)
		}
	}
}

// Calibration check (Table 3): baseline execution shape. Response for a
// single uncontended app approximates the paper's baseline execution
// times: LeNet ~0.8s, ImgC ~0.64s, 3DR ~1.6s, OF ~23s (the paper's
// "execution time" excludes the initial reconfiguration; response
// includes it, so allow the ~80-160 ms shift).
func TestBaselineCalibration(t *testing.T) {
	want := map[string][2]float64{ // [lo, hi] seconds
		apps.LeNet:            {0.6, 1.0},
		apps.ImageCompression: {0.45, 0.75},
		apps.Rendering3D:      {1.3, 1.85},
		apps.OpticalFlow:      {21.5, 24.5},
	}
	for name, bounds := range want {
		res, _ := runSuite(t, baseline.New(), []submission{{name, 5, 3, 0}}, false)
		got := res[0].Response.Seconds()
		if got < bounds[0] || got > bounds[1] {
			t.Errorf("%s solo baseline response %.3fs outside [%.2f, %.2f]", name, got, bounds[0], bounds[1])
		}
	}
}

// AlexNet solo baseline lands near Table 3's 65.44 s execution time.
func TestBaselineAlexNetCalibration(t *testing.T) {
	res, _ := runSuite(t, baseline.New(), []submission{{apps.AlexNet, 5, 3, 0}}, false)
	got := res[0].Response.Seconds()
	if got < 55 || got > 75 {
		t.Fatalf("AlexNet solo baseline response %.2fs, want ~65s", got)
	}
}

// Sharing must beat no-sharing on average under contention.
func TestSharingBeatsBaselineUnderContention(t *testing.T) {
	subs := mixedWorkload()
	base, _ := runSuite(t, baseline.New(), subs, false)
	var baseTotal sim.Duration
	for _, r := range base {
		baseTotal += r.Response
	}
	board := hv.DefaultConfig().Board
	nim, _ := runSuite(t, core.New(core.DefaultOptions(), board), subs, false)
	var nimTotal sim.Duration
	for _, r := range nim {
		nimTotal += r.Response
	}
	if nimTotal >= baseTotal {
		t.Fatalf("Nimblock total response %v not better than baseline %v", nimTotal, baseTotal)
	}
}

// Nimblock actually preempts: a long pipelining app over-consumes, then a
// newcomer forces batch-preemption.
func TestNimblockPreemptionHappens(t *testing.T) {
	board := hv.DefaultConfig().Board
	subs := []submission{
		{apps.OpticalFlow, 20, 1, 0}, // long-running, will pipeline across many slots
		{apps.AlexNet, 10, 1, 100 * sim.Time(sim.Millisecond)},
		{apps.LeNet, 5, 9, 2 * sim.Time(sim.Second)}, // high-priority newcomer
		{apps.Rendering3D, 5, 9, 2500 * sim.Time(sim.Millisecond)},
		{apps.ImageCompression, 5, 9, 3 * sim.Time(sim.Second)},
	}
	res, h := runSuite(t, core.New(core.DefaultOptions(), board), subs, true)
	preempts := 0
	for _, r := range res {
		preempts += r.Preemptions
	}
	if preempts == 0 {
		t.Fatal("expected at least one batch-preemption")
	}
	lg := h.Trace()
	if lg.Count(trace.KindPreempt) != preempts {
		t.Fatalf("trace preempts %d != accounted %d", lg.Count(trace.KindPreempt), preempts)
	}
	// Preemption is honoured only at batch boundaries: no item may be
	// in flight between its start and the preemption of its slot. Verify
	// per-slot: every preempt event is preceded (for that slot) by an
	// item-done or reconfig-done, never an unmatched item-start.
	open := map[int]bool{}
	for _, e := range lg.Events() {
		switch e.Kind {
		case trace.KindItemStart:
			open[e.Slot] = true
		case trace.KindItemDone:
			open[e.Slot] = false
		case trace.KindPreempt:
			if open[e.Slot] {
				t.Fatalf("preemption of slot %d mid-item at %v", e.Slot, e.At)
			}
		}
	}
}

// Preempted work resumes and completes with no lost or duplicated items.
func TestPreemptedWorkConserved(t *testing.T) {
	board := hv.DefaultConfig().Board
	subs := []submission{
		{apps.OpticalFlow, 20, 1, 0},
		{apps.LeNet, 5, 9, sim.Time(sim.Second)},
		{apps.Rendering3D, 5, 9, sim.Time(sim.Second) + 1},
	}
	res, h := runSuite(t, core.New(core.DefaultOptions(), board), subs, true)
	for _, r := range res {
		g := apps.MustGraph(r.App)
		want := g.TotalWork() * sim.Duration(r.Batch)
		if r.Run != want {
			t.Errorf("%s: run %v, want %v (items lost or duplicated)", r.App, r.Run, want)
		}
	}
	// Every item-start has exactly one matching item-done.
	type key struct {
		id         int64
		task, item int
	}
	starts, dones := map[key]int{}, map[key]int{}
	for _, e := range h.Trace().Events() {
		k := key{e.AppID, e.Task, e.Item}
		switch e.Kind {
		case trace.KindItemStart:
			starts[k]++
		case trace.KindItemDone:
			dones[k]++
		}
	}
	for k, n := range starts {
		if n != 1 || dones[k] != 1 {
			t.Fatalf("item %+v started %d times, finished %d times", k, n, dones[k])
		}
	}
}

// Pipelining reduces a single app's response vs bulk execution.
func TestPipeliningHelpsSingleApp(t *testing.T) {
	board := hv.DefaultConfig().Board
	subs := []submission{{apps.OpticalFlow, 10, 3, 0}}
	pipe, _ := runSuite(t, core.New(core.DefaultOptions(), board), subs, false)
	noPipe, _ := runSuite(t, core.New(core.Options{Preemption: true}, board), subs, false)
	if pipe[0].Response >= noPipe[0].Response {
		t.Fatalf("pipelining did not help: %v vs %v", pipe[0].Response, noPipe[0].Response)
	}
}

// Reconfiguration faults are retried transparently; results unchanged
// except for time.
func TestFaultInjectionEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.Board.FaultRate = 0.2
	cfg.Board.FaultSeed = 99
	cfg.Board.MaxRetries = 50
	h, err := hv.New(eng, cfg, fcfs.New())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range mixedWorkload() {
		if err := h.Submit(apps.MustGraph(s.name), s.batch, s.prio, s.at); err != nil {
			t.Fatal(err)
		}
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(mixedWorkload()) {
		t.Fatalf("only %d results", len(res))
	}
	if h.Board().Stats().Faults == 0 {
		t.Fatal("fault injection produced no faults")
	}
}

// The hypervisor enforces its policy contract: configuring an occupied
// slot is a mechanical error that fails the run.
func TestPolicyContractViolationFailsRun(t *testing.T) {
	eng := sim.NewEngine()
	h, err := hv.New(eng, hv.DefaultConfig(), &rogue{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(apps.MustGraph(apps.LeNet), 2, 3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(); err == nil {
		t.Fatal("rogue policy did not fail the run")
	}
}

// rogue violates the contract by configuring the same slot twice.
type rogue struct{ fired bool }

func (r *rogue) Name() string     { return "rogue" }
func (r *rogue) Pipelining() bool { return false }
func (r *rogue) Schedule(w sched.World, why sched.Reason) {
	if r.fired {
		return
	}
	r.fired = true
	a := w.Apps()[0]
	w.Reconfigure(0, a, 0)
	w.Reconfigure(0, a, 1) // occupied: contract violation
}

// SingleSlotLatency matches its definition.
func TestSingleSlotLatency(t *testing.T) {
	eng := sim.NewEngine()
	h, err := hv.New(eng, hv.DefaultConfig(), fcfs.New())
	if err != nil {
		t.Fatal(err)
	}
	g := apps.MustGraph(apps.LeNet)
	got := h.SingleSlotLatency(g, 5)
	// 3 reconfigs (~80ms) + 5 x 129ms of work.
	lo, hi := sim.Seconds(0.80), sim.Seconds(0.95)
	if got < lo || got > hi {
		t.Fatalf("SingleSlotLatency = %v, want within [%v, %v]", got, lo, hi)
	}
}

// Config validation.
func TestHypervisorConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := hv.New(eng, hv.DefaultConfig(), nil); err == nil {
		t.Error("nil policy accepted")
	}
	bad := hv.DefaultConfig()
	bad.SchedInterval = 0
	if _, err := hv.New(eng, bad, fcfs.New()); err == nil {
		t.Error("zero interval accepted")
	}
	bad = hv.DefaultConfig()
	bad.Horizon = 0
	if _, err := hv.New(eng, bad, fcfs.New()); err == nil {
		t.Error("zero horizon accepted")
	}
	bad = hv.DefaultConfig()
	bad.BufferBytes = 0
	if _, err := hv.New(eng, bad, fcfs.New()); err == nil {
		t.Error("zero buffer size accepted")
	}
}

// Submissions are validated.
func TestSubmitValidation(t *testing.T) {
	eng := sim.NewEngine()
	h, _ := hv.New(eng, hv.DefaultConfig(), fcfs.New())
	if err := h.Submit(apps.MustGraph(apps.LeNet), 0, 3, 0); err == nil {
		t.Error("zero batch accepted")
	}
	if err := h.Submit(apps.MustGraph(apps.LeNet), 1, 0, 0); err == nil {
		t.Error("zero priority accepted")
	}
}

// Throughput accessor.
func TestResultThroughput(t *testing.T) {
	r := hv.Result{Batch: 10, Response: 2 * sim.Second}
	if got := r.Throughput(); got != 5 {
		t.Fatalf("Throughput = %v, want 5", got)
	}
	if (hv.Result{}).Throughput() != 0 {
		t.Fatal("zero response should yield zero throughput")
	}
}

// Relocatable bitstreams change storage, never scheduling.
func TestRelocatableBitstreamsEquivalent(t *testing.T) {
	run := func(reloc bool) ([]hv.Result, int64) {
		eng := sim.NewEngine()
		cfg := hv.DefaultConfig()
		cfg.RelocatableBitstreams = reloc
		h, err := hv.New(eng, cfg, fcfs.New())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range mixedWorkload() {
			if err := h.Submit(apps.MustGraph(s.name), s.batch, s.prio, s.at); err != nil {
				t.Fatal(err)
			}
		}
		res, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, h.Store().Bytes()
	}
	plain, plainBytes := run(false)
	reloc, relocBytes := run(true)
	for i := range plain {
		if plain[i] != reloc[i] {
			t.Fatalf("relocation changed results at %d:\n%+v\n%+v", i, plain[i], reloc[i])
		}
	}
	if plainBytes != 10*relocBytes {
		t.Fatalf("storage: %d vs %d bytes, want 10x saving", plainBytes, relocBytes)
	}
}

// Utilization accounting: a single chain app on a big board leaves most
// slot-time idle; the busy fraction matches work/(slots x makespan).
func TestUtilizationAccounting(t *testing.T) {
	eng := sim.NewEngine()
	h, err := hv.New(eng, hv.DefaultConfig(), fcfs.New())
	if err != nil {
		t.Fatal(err)
	}
	g := apps.MustGraph(apps.Rendering3D)
	if err := h.Submit(g, 5, 3, 0); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	makespan := res[0].Retire
	util := h.Utilization(makespan)
	want := float64(res[0].Run+res[0].Reconfig) / (float64(makespan) * 10)
	if util < want*0.999 || util > want*1.001 {
		t.Fatalf("utilization %v, want %v", util, want)
	}
	if h.Utilization(0) != 0 {
		t.Fatal("zero window should yield zero utilization")
	}
}

// PS-bus interconnect: explicit hand-offs delay a pipelined two-task
// chain by at least one transfer per consumed item relative to folded.
func TestPSBusDelaysPipelinedHandoffs(t *testing.T) {
	run := func(icfg interconnect.Config) sim.Duration {
		eng := sim.NewEngine()
		cfg := hv.DefaultConfig()
		cfg.Interconnect = icfg
		board := cfg.Board
		h, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), board))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Submit(apps.MustGraph(apps.Rendering3D), 10, 3, 0); err != nil {
			t.Fatal(err)
		}
		res, err := h.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Response
	}
	folded := run(interconnect.DefaultConfig())
	ps := run(interconnect.DefaultPSBus())
	if ps <= folded {
		t.Fatalf("PS-bus response %v not slower than folded %v", ps, folded)
	}
	noc := run(interconnect.DefaultNoC())
	if noc > ps {
		t.Fatalf("NoC response %v slower than PS bus %v", noc, ps)
	}
}

// A preempted low-priority application always recovers candidacy and
// completes even under a sustained stream of high-priority arrivals
// (candidate starvation regression).
func TestPreemptedLowPriorityRecovers(t *testing.T) {
	board := hv.DefaultConfig().Board
	subs := []submission{
		{apps.OpticalFlow, 15, 1, 0}, // low priority, pipelines wide
	}
	// 20 high-priority short apps arriving every 300 ms keep the
	// threshold pinned at 9 for several seconds.
	for i := 0; i < 20; i++ {
		subs = append(subs, submission{apps.LeNet, 3, 9, sim.Time(sim.Second) + sim.Time(i)*sim.Time(300*sim.Millisecond)})
	}
	res, _ := runSuite(t, core.New(core.DefaultOptions(), board), subs, false)
	for _, r := range res {
		if r.App == apps.OpticalFlow && r.Response <= 0 {
			t.Fatal("low-priority app never completed")
		}
	}
}

// Feature matrix smoke: every policy completes under every combination
// of relocation, explicit PS-bus interconnect, and fault injection.
func TestFeatureMatrixSmoke(t *testing.T) {
	features := []struct {
		name string
		mut  func(*hv.Config)
	}{
		{"reloc", func(c *hv.Config) { c.RelocatableBitstreams = true }},
		{"psbus", func(c *hv.Config) { c.Interconnect = interconnect.DefaultPSBus() }},
		{"faults", func(c *hv.Config) {
			c.Board.FaultRate = 0.1
			c.Board.FaultSeed = 5
			c.Board.MaxRetries = 50
		}},
		{"reloc+psbus+faults", func(c *hv.Config) {
			c.RelocatableBitstreams = true
			c.Interconnect = interconnect.DefaultPSBus()
			c.Board.FaultRate = 0.1
			c.Board.FaultSeed = 5
			c.Board.MaxRetries = 50
		}},
	}
	for name, mk := range policies() {
		for _, f := range features {
			name, mk, f := name, mk, f
			t.Run(name+"/"+f.name, func(t *testing.T) {
				eng := sim.NewEngine()
				cfg := hv.DefaultConfig()
				f.mut(&cfg)
				h, err := hv.New(eng, cfg, mk())
				if err != nil {
					t.Fatal(err)
				}
				subs := []submission{
					{apps.LeNet, 3, 9, 0},
					{apps.ImageCompression, 4, 1, 100 * sim.Time(sim.Millisecond)},
					{apps.Rendering3D, 2, 3, 200 * sim.Time(sim.Millisecond)},
				}
				for _, s := range subs {
					if err := h.Submit(apps.MustGraph(s.name), s.batch, s.prio, s.at); err != nil {
						t.Fatal(err)
					}
				}
				res, err := h.Run()
				if err != nil {
					t.Fatal(err)
				}
				if len(res) != len(subs) {
					t.Fatalf("%d results", len(res))
				}
				if h.Mem().Live() != 0 {
					t.Fatal("buffers leaked")
				}
			})
		}
	}
}
