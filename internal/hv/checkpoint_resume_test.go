package hv_test

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/faults"
	"nimblock/internal/hv"
	"nimblock/internal/sched/fcfs"
	"nimblock/internal/sched/schedtest"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
	"nimblock/internal/trace"
)

// This file exercises the full checkpoint/restore subsystem
// (Config.Checkpoint): CAP-serialized size-proportional state capture,
// periodic saves at preemption points, and resume-instead-of-re-execute
// recovery after watchdog kills and slot failures.

// slowPlan slows items down hard enough that the watchdog kills first
// attempts: factor 4 with WatchdogFactor 2 means a slowed item is killed
// at ~half its stretched latency, so without checkpoints all progress is
// lost and the item re-rolls from scratch.
const slowPlan = `
seed 7
slow prob=0.6 factor=4 until=120s
`

func ckptChaosConfig(enabled bool) hv.Config {
	cfg := hv.DefaultConfig()
	cfg.Board.NewInjector = faults.MustParsePlan(slowPlan).MustFactory()
	cfg.WatchdogFactor = 2
	cfg.WatchdogGrace = 20 * sim.Millisecond
	cfg.EnableTrace = true
	if enabled {
		cfg.Checkpoint = hv.CheckpointConfig{
			Enabled: true,
			Period:  50 * sim.Millisecond,
		}
	}
	return cfg
}

func ckptChaosWorkload() []submission {
	return []submission{
		{apps.LeNet, 6, 9, 0},
		{apps.OpticalFlow, 8, 3, 0},
		{apps.ImageCompression, 6, 3, 200 * sim.Time(sim.Millisecond)},
		{apps.Rendering3D, 8, 1, 400 * sim.Time(sim.Millisecond)},
		{apps.DigitRecognition, 6, 9, 600 * sim.Time(sim.Millisecond)},
	}
}

// TestCheckpointingReducesWastedWork is the headline regression test:
// the same seed and workload with checkpointing enabled must save work
// (SavedWork > 0) and waste strictly less fabric time than the same run
// without checkpointing.
func TestCheckpointingReducesWastedWork(t *testing.T) {
	_, plain := runNimblock(t, ckptChaosConfig(false), ckptChaosWorkload())
	_, ckpt := runNimblock(t, ckptChaosConfig(true), ckptChaosWorkload())
	pr, cr := plain.Recovery(), ckpt.Recovery()
	if pr.WatchdogKills == 0 {
		t.Fatal("plan injected no watchdog kills; the scenario tests nothing")
	}
	if cr.ResumedItems == 0 || cr.SavedWork <= 0 {
		t.Fatalf("checkpointed run resumed nothing: %+v", cr)
	}
	if cr.WastedWork >= pr.WastedWork {
		t.Fatalf("checkpointing did not reduce wasted work: with %v, without %v", cr.WastedWork, pr.WastedWork)
	}
	if cr.CheckpointOverhead <= 0 {
		t.Fatal("state moved through the CAP for free")
	}
	if plain.Recovery().SavedWork != 0 || pr.ResumedItems != 0 || pr.CheckpointOverhead != 0 {
		t.Fatalf("non-checkpointed run reports checkpoint stats: %+v", pr)
	}
}

// Watchdog-killed items must resume from their snapshot: every restore
// follows a save of the same (app, task, item), and resumed progress
// never exceeds what was captured.
func TestWatchdogKillResumesFromCheckpoint(t *testing.T) {
	_, h := runNimblock(t, ckptChaosConfig(true), ckptChaosWorkload())
	saved := map[[3]int64]sim.Duration{}
	restores := 0
	for _, e := range h.Trace().Events() {
		key := [3]int64{e.AppID, int64(e.Task), int64(e.Item)}
		switch e.Kind {
		case trace.KindCheckpointSave, trace.KindCheckpoint:
			if e.Progress > 0 {
				if e.Progress < saved[key] {
					t.Fatalf("snapshot progress regressed for %v: %v after %v", key, e.Progress, saved[key])
				}
				saved[key] = e.Progress
			}
		case trace.KindRestore:
			restores++
			got, ok := saved[key]
			if !ok {
				t.Fatalf("restore without a prior checkpoint: %v", e)
			}
			if e.Progress != got {
				t.Fatalf("restored progress %v, last snapshot %v", e.Progress, got)
			}
			if e.Dur <= 0 {
				t.Fatalf("restore with no CAP transfer time: %v", e)
			}
		}
	}
	if restores == 0 {
		t.Fatal("no restores traced")
	}
	rec := h.Recovery()
	if rec.ResumedItems != restores {
		t.Fatalf("ResumedItems %d, traced restores %d", rec.ResumedItems, restores)
	}
}

// An on-demand checkpoint preemption mid-item must capture state, free
// the slot for the preemptor, and later resume the item from the
// snapshot rather than re-running it from scratch.
func TestOnDemandCheckpointPreemption(t *testing.T) {
	g := apps.MustGraph(apps.LeNet)
	cfg := hv.DefaultConfig()
	cfg.Board.Slots = 1
	cfg.EnableTrace = true
	cfg.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 0} // on-demand only
	eng := sim.NewEngine()
	h, err := hv.New(eng, cfg, fcfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(g, 4, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Ask for a mid-item preemption once the first item is safely in
	// flight (after reconfiguration, mid first item, past a point).
	fired := false
	eng.At(sim.Time(600*sim.Millisecond), func() {
		if _, _, ok := h.SlotOccupant(0); ok && !h.SlotWaiting(0) {
			fired = true
			if err := h.RequestPreempt(0); err != nil {
				t.Errorf("RequestPreempt: %v", err)
			}
		}
	})
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Skip("first item was not in flight at the probe time; timeline shifted")
	}
	if n := h.Trace().Count(trace.KindCheckpoint); n == 0 {
		t.Fatal("no checkpoint preemption traced")
	}
	if n := h.Trace().Count(trace.KindRestore); n == 0 {
		t.Fatal("preempted item did not resume from its checkpoint")
	}
	rec := h.Recovery()
	if rec.SavedWork <= 0 {
		t.Fatalf("no work saved: %+v", rec)
	}
	// The run must still account at least the nominal batch work.
	want := g.TotalWork() * sim.Duration(4)
	if res[0].Run < want {
		t.Fatalf("run time %v below nominal batch work %v", res[0].Run, want)
	}
}

// Lost and corrupt checkpoints force from-scratch re-execution but must
// never wedge the run.
func TestCheckpointFaultsFallBackToScratch(t *testing.T) {
	cfg := ckptChaosConfig(true)
	cfg.Board.NewInjector = faults.MustParsePlan(slowPlan + "lost prob=1\n").MustFactory()
	_, h := runNimblock(t, cfg, ckptChaosWorkload())
	rec := h.Recovery()
	if rec.CheckpointFaults == 0 {
		t.Fatal("lost-checkpoint plan injected no checkpoint faults")
	}
	if rec.ResumedItems != 0 || rec.SavedWork != 0 {
		t.Fatalf("every checkpoint was lost yet items resumed: %+v", rec)
	}
	if h.Trace().Count(trace.KindCheckpointFault) != rec.CheckpointFaults {
		t.Fatal("traced checkpoint faults disagree with recovery stats")
	}

	cfg = ckptChaosConfig(true)
	cfg.Board.NewInjector = faults.MustParsePlan(slowPlan + "corrupt prob=1\n").MustFactory()
	_, h = runNimblock(t, cfg, ckptChaosWorkload())
	rec = h.Recovery()
	if rec.CheckpointFaults == 0 {
		t.Fatal("corrupt-checkpoint plan injected no checkpoint faults")
	}
	if rec.ResumedItems != 0 {
		t.Fatalf("every checkpoint was corrupt yet items resumed: %+v", rec)
	}
	// Corrupt restores still pay the CAP transfer before failing.
	if rec.CheckpointOverhead <= 0 {
		t.Fatal("corrupt restores paid no transfer time")
	}
}

// Declared preemption points and state sizes steer the subsystem: a
// graph with one late point checkpoints only there, and its declared
// state size prices the transfer.
func TestDeclaredPreemptionPoints(t *testing.T) {
	// One 100 ms task with a single point at 80% and 2 MiB of state.
	b := taskgraph.NewBuilder("declared")
	id := b.AddTask("t0", 100*sim.Millisecond)
	b.SetCheckpoints(id, 0.8)
	b.SetTaskState(id, 2<<20)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := hv.DefaultConfig()
	cfg.Board.Slots = 1
	cfg.EnableTrace = true
	cfg.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 10 * sim.Millisecond}
	eng := sim.NewEngine()
	h, err := hv.New(eng, cfg, fcfs.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(g, 2, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(); err != nil {
		t.Fatal(err)
	}
	saves := h.Trace().Filter(func(e trace.Event) bool { return e.Kind == trace.KindCheckpointSave })
	if len(saves) != 2 { // one per item, only at the 80% point
		t.Fatalf("saves = %d, want one per item:\n%s", len(saves), h.Trace().Dump())
	}
	wantXfer := h.Board().StateTransferTime(2 << 20)
	for _, e := range saves {
		if e.Progress != 80*sim.Millisecond {
			t.Fatalf("snapshot at %v, want 80ms", e.Progress)
		}
		if e.Dur < wantXfer {
			t.Fatalf("save transfer %v below CAP cost %v for 2 MiB", e.Dur, wantXfer)
		}
	}
}

// The full invariant checker accepts a real checkpointed chaos run:
// snapshot monotonicity, restore-only-from-saved-state, item
// conservation across kills and resumes, and CAP serialization of the
// uniform-size state transfers.
func TestCheckpointRunSatisfiesInvariants(t *testing.T) {
	res, h := runNimblock(t, ckptChaosConfig(true), ckptChaosWorkload())
	c := schedtest.NewChecker()
	c.MinReconfigGap = 0
	c.MinStateXferGap = h.Board().StateTransferTime(hv.DefaultStateBytes)
	if err := c.Replay(h.Trace()).Finish(len(res)); err != nil {
		t.Fatal(err)
	}
}

// Checkpoint runs must stay deterministic: identical configs produce
// byte-identical traces.
func TestCheckpointSubsystemDeterminism(t *testing.T) {
	_, h1 := runNimblock(t, ckptChaosConfig(true), ckptChaosWorkload())
	_, h2 := runNimblock(t, ckptChaosConfig(true), ckptChaosWorkload())
	if h1.Trace().Dump() != h2.Trace().Dump() {
		t.Fatal("identical checkpoint runs diverged")
	}
}

func TestCheckpointConfigRejectsBadParameters(t *testing.T) {
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: -1}
	if _, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board)); err == nil {
		t.Fatal("negative period accepted")
	}
	cfg = hv.DefaultConfig()
	cfg.Checkpoint = hv.CheckpointConfig{Enabled: true}
	cfg.Preempt = hv.PreemptWithCheckpoint
	cfg.CheckpointSave = sim.Millisecond
	cfg.CheckpointRestore = sim.Millisecond
	if _, err := hv.New(eng, cfg, core.New(core.DefaultOptions(), cfg.Board)); err == nil {
		t.Fatal("combining Checkpoint.Enabled with PreemptWithCheckpoint accepted")
	}
}
