// Package hv implements the Nimblock hypervisor.
//
// The hypervisor is the system manager described in Section 2.2 of the
// paper: it accepts application submissions, registers their partial
// bitstreams, drives reconfiguration through the CAP, allocates and
// relinquishes data buffers, launches tasks, honours batch-preemption
// requests at batch boundaries, and retires completed applications. The
// scheduling *policy* is pluggable (sched.Scheduler); the hypervisor
// invokes it at scheduling intervals and on arrival/completion/
// reconfiguration events and executes whatever reconfigurations and
// preemptions it requests.
package hv

import (
	"fmt"
	"slices"

	"nimblock/internal/bitstream"
	"nimblock/internal/fpga"
	"nimblock/internal/hls"
	"nimblock/internal/interconnect"
	"nimblock/internal/mem"
	"nimblock/internal/obs"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
	"nimblock/internal/trace"
)

// Config collects hypervisor parameters.
type Config struct {
	// Board configures the simulated FPGA.
	Board fpga.Config
	// SchedInterval is the periodic scheduling (and slot reallocation)
	// interval; the evaluation system uses 400 ms.
	SchedInterval sim.Duration
	// MemCapacity is the shared DDR available for data buffers.
	MemCapacity int64
	// BufferBytes is the size of one inter-task data buffer.
	BufferBytes int64
	// Horizon bounds simulated time; Run fails if applications are still
	// pending at the horizon (a wedged policy, not a slow workload).
	Horizon sim.Time
	// EnableTrace records a full execution trace.
	EnableTrace bool
	// Interconnect models inter-slot data movement. The default (Folded)
	// charges nothing: the calibrated task latencies already include
	// data movement through the PS, as measured on the evaluation
	// system. PSBus and NoC make the hand-off explicit for the
	// interconnect study.
	Interconnect interconnect.Config
	// RelocatableBitstreams registers one slot-agnostic image per task
	// instead of one per (task, slot), dividing bitstream storage by the
	// slot count. Scheduling behaviour is unchanged.
	RelocatableBitstreams bool
	// Preempt selects the preemption mechanism. The paper's design is
	// batch-boundary preemption (no FPGA state capture); checkpointing
	// models the classic alternative for the design-space study.
	Preempt PreemptMode
	// CheckpointSave and CheckpointRestore are the state capture and
	// restore costs under PreemptWithCheckpoint.
	CheckpointSave    sim.Duration
	CheckpointRestore sim.Duration
	// Checkpoint configures the full checkpoint/restore subsystem:
	// CAP-serialized size-proportional state capture at declared
	// preemption points, periodic and on-demand saves, and
	// resume-instead-of-re-execute recovery. It supersedes the flat-cost
	// PreemptWithCheckpoint study mode; enabling both is an error.
	Checkpoint CheckpointConfig
	// WatchdogFactor arms a per-item watchdog: an item still running
	// after WatchdogFactor x its HLS latency estimate (plus
	// WatchdogGrace) is killed and re-executed from scratch. Zero
	// disables the watchdog; without it a hung kernel wedges its slot
	// until the horizon.
	WatchdogFactor float64
	// WatchdogGrace is a fixed allowance added to every watchdog
	// deadline, absorbing short estimate misses on tiny items.
	WatchdogGrace sim.Duration
	// QuarantineThreshold takes a slot offline once its injected fault
	// count reaches the threshold, trading capacity for not burning
	// retries on a degrading region. Zero disables quarantine.
	QuarantineThreshold int
	// Observer receives every trace event live, as it is emitted,
	// independent of EnableTrace (which retains the full log in memory).
	// Attach sinks from internal/obs to watch a run in flight: metrics
	// registries, JSONL streams, span builders, invariant checkers. A
	// nil observer costs one pointer test per event — nothing allocates.
	// The observer must be safe for concurrent use if the same value is
	// shared across parallel runs (internal/experiments does this).
	Observer obs.Sink
	// OnRetire, when non-nil, is called at the instant an application
	// retires, with its board-local ID. Front-ends (the cluster
	// dispatcher, admission control) use it to track in-flight work
	// without polling the hypervisor.
	OnRetire func(id int64)
}

// DefaultStateBytes is the per-task checkpoint state size assumed when
// neither the task graph nor the config declares one: 1 MiB of BRAM and
// register context, ~9 ms through the default CAP.
const DefaultStateBytes = 1 << 20

// DefaultCheckpointPoints is the number of uniformly spaced preemption
// points assumed for tasks that declare none (snapshots at every 10% of
// an item).
const DefaultCheckpointPoints = 9

// CheckpointConfig parameterizes the checkpoint/restore subsystem.
type CheckpointConfig struct {
	// Enabled turns the subsystem on: items checkpoint at declared
	// preemption points, watchdog kills and slot failures resume from
	// the last checkpoint instead of re-executing from scratch, and
	// mid-item preemption requests capture state before releasing the
	// slot. All state moves through the CAP at its configured bandwidth,
	// serialized with reconfigurations.
	Enabled bool
	// Period, when positive, saves a checkpoint periodically while an
	// item runs (skipped when no new preemption point has been passed).
	// Zero means on-demand captures only.
	Period sim.Duration
	// StateBytes is the per-task state size used when a task declares
	// none (taskgraph.Task.StateBytes). Zero selects DefaultStateBytes.
	StateBytes int64
	// DefaultPoints is the number of uniform preemption points assumed
	// for tasks that declare none. Zero selects DefaultCheckpointPoints.
	DefaultPoints int
}

// PreemptMode selects how preemption requests are honoured.
type PreemptMode int

const (
	// PreemptAtBatchBoundary waits for the in-flight item to finish —
	// the paper's batch-preemption, which never checkpoints user state.
	PreemptAtBatchBoundary PreemptMode = iota
	// PreemptWithCheckpoint aborts the in-flight item immediately,
	// paying CheckpointSave to capture state; the item later resumes
	// from the checkpoint after paying CheckpointRestore. This models
	// the "architectural modifications [enabling] preemption at a finer
	// granularity" from the paper's future work.
	PreemptWithCheckpoint
)

// DefaultConfig mirrors the paper's evaluation platform.
func DefaultConfig() Config {
	return Config{
		Board:         fpga.DefaultConfig(),
		SchedInterval: 400 * sim.Millisecond,
		MemCapacity:   4 << 30, // ZCU106 PS-side DDR4
		BufferBytes:   4 << 20,
		Horizon:       sim.Time(200_000 * sim.Second),
	}
}

// Result is the per-application outcome used by all experiments.
type Result struct {
	AppID    int64
	App      string
	Batch    int
	Priority int

	Arrival     sim.Time
	FirstLaunch sim.Time
	Retire      sim.Time

	// Response is retirement minus arrival — the paper's primary metric.
	Response sim.Duration
	// Run is the summed execution time of all items across all tasks.
	Run sim.Duration
	// Reconfig is the total partial-reconfiguration time spent for this
	// application (including re-configurations after preemption).
	Reconfig sim.Duration
	// Wait is the time from arrival until the first item starts.
	Wait sim.Duration

	Preemptions      int
	Reconfigurations int
}

// Throughput reports completed items per second of response time.
func (r Result) Throughput() float64 {
	if r.Response <= 0 {
		return 0
	}
	return float64(r.Batch) / r.Response.Seconds()
}

// SlotSample records the usable slot count at one instant. A run's
// timeline starts with one sample at construction and gains one each
// time a slot leaves service.
type SlotSample struct {
	At     sim.Time
	Usable int
}

// RecoveryStats aggregates fault-injection and recovery activity over a
// run (see Recovery).
type RecoveryStats struct {
	// FaultsInjected counts faults that fired: reconfiguration faults
	// from the board plus execution hangs and slowdowns.
	FaultsInjected int
	// Retries and Recovered mirror the board's reconfiguration retry
	// accounting: faulted attempts retried, and requests that
	// eventually succeeded after at least one retry.
	Retries   int
	Recovered int
	// WatchdogKills counts items killed for running past their deadline.
	WatchdogKills int
	// Quarantined counts slots removed by the fault-threshold policy.
	// SlotsOffline additionally includes permanent hardware failures.
	Quarantined  int
	SlotsOffline int
	// WastedWork is fabric time consumed by executions whose results
	// were lost — hung or killed items that re-execute from scratch.
	// With checkpointing enabled, only progress since the last
	// checkpoint is wasted; work up to the checkpoint is committed.
	WastedWork sim.Duration
	// ResumedItems counts items that resumed from a checkpoint instead
	// of re-executing from scratch (one per successful restore).
	ResumedItems int
	// CheckpointSaves counts completed state captures; CheckpointFaults
	// counts restores that found their snapshot lost or corrupt and fell
	// back to from-scratch re-execution.
	CheckpointSaves  int
	CheckpointFaults int
	// SavedWork is nominal work carried over by restores — fabric time
	// that would have been re-executed without checkpointing.
	SavedWork sim.Duration
	// CheckpointOverhead is wall time spent capturing and restoring
	// state through the CAP (never double-counted into WastedWork).
	CheckpointOverhead sim.Duration
	// Timeline tracks the effective board size over the run.
	Timeline []SlotSample
}

// slotRuntime is the hypervisor's view of one slot.
type slotRuntime struct {
	app       *sched.App
	task      int
	active    bool // reconfiguration finished, logic live
	curItem   int  // item in flight, -1 if waiting at a batch boundary
	preempt   bool // preemption requested
	saving    bool // checkpoint save in progress
	restoring bool // checkpoint restore streaming back through the CAP
	hung      bool // injected hang: no completion event is coming
	itemEv    sim.EventID
	wdEv      sim.EventID
	ckptEv    sim.EventID // periodic checkpoint timer
	itemStart sim.Time    // start of the current run stretch
	itemLat   sim.Duration

	// Per-attempt checkpoint bookkeeping (Checkpoint.Enabled only). An
	// attempt is one MarkItemStarted..{done,killed,preempted} episode;
	// periodic saves pause and resume it without ending it.
	base        sim.Duration // nominal progress restored at attempt start
	doneNominal sim.Duration // nominal progress of earlier stretches this attempt
	doneWall    sim.Duration // wall compute of earlier stretches this attempt
	factor      float64      // injected slowdown of this attempt (>= 1)
	wdLeft      sim.Duration // watchdog budget left for this attempt
}

// ckptRecord is one saved snapshot: the nominal work it captured, the
// nominal work left after it, and the state size to stream back. The
// legacy PreemptWithCheckpoint mode stores only remaining.
type ckptRecord struct {
	remaining sim.Duration
	progress  sim.Duration
	bytes     int64
}

// prodInfo records where and when a (task, item) was produced, for
// interconnect hand-off computation.
type prodInfo struct {
	at   sim.Time
	slot int
}

// Hypervisor executes submissions under one scheduling policy.
type Hypervisor struct {
	eng    *sim.Engine
	cfg    Config
	board  *fpga.Board
	store  *bitstream.Store
	mem    *mem.Manager
	policy sched.Scheduler
	log    *trace.Log
	obs    obs.Sink

	apps     []*sched.App
	pending  []*sched.App
	transit  []*sched.App // submitted, arrival event not yet fired
	slots    []slotRuntime
	acct     map[int64]*Result
	bufOut   map[int64]map[int]int64 // app -> task -> output buffer ID
	ic       *interconnect.Model
	handoff  map[int64]map[[3]int]sim.Time   // app -> (pred, succ, item) -> data-ready time
	prodAt   map[int64]map[[2]int]prodInfo   // app -> (task, item) -> production record
	ckpt     map[int64]map[[2]int]ckptRecord // app -> (task, item) -> last checkpoint
	slotBusy []sim.Duration                  // per-slot occupied time (reconfig + compute)
	results  []Result
	nextID   int64

	// rec accumulates hypervisor-side recovery counters (exec faults,
	// watchdog kills, quarantines, wasted work, the slot timeline);
	// Recovery() merges in the board's reconfiguration-side numbers.
	rec RecoveryStats

	tickPending bool
	err         error

	// Board-level failure-domain state (see failover.go). progress is
	// the monotonic heartbeat counter liveness polls compare; frozen
	// stops all event processing (board-hang); dead additionally means
	// the board was evacuated and will never serve again; slow is a
	// board-wide degrade multiplier applied at item start; abortedIDs
	// marks hedge-cancelled submissions whose in-flight reconfigurations
	// must be dropped on completion.
	progress   uint64
	frozen     bool
	dead       bool
	slow       float64
	abortedIDs map[int64]bool

	// scale is the board's fabric latency scale factor (heterogeneous
	// fleets; 1 on the reference platform). It stretches compute time
	// exactly like a board-wide degrade, but permanently and in either
	// direction, and widens watchdog deadlines to match.
	scale float64

	// tenantSvc accumulates fabric compute time delivered per tenant;
	// fairness-aware policies read it through the World interface and
	// reports compute Jain's index over it. Apps without a tenant are
	// not tracked.
	tenantSvc map[string]sim.Duration

	// Pre-bound closures for the per-event hot path: scheduling a tick,
	// wake, or data-ready retry must not allocate a fresh closure each
	// time (these fire millions of times per run).
	tickFn  func()
	wakeFns [5]func()        // indexed by sched.Reason
	kickFns []func()         // per-slot tryStart retries
	owners  map[int64]string // app ID -> buffer-owner label
}

// New builds a hypervisor on the given engine with the given policy.
func New(eng *sim.Engine, cfg Config, policy sched.Scheduler) (*Hypervisor, error) {
	if policy == nil {
		return nil, fmt.Errorf("hv: nil scheduling policy")
	}
	if cfg.SchedInterval <= 0 {
		return nil, fmt.Errorf("hv: scheduling interval must be positive")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("hv: horizon must be positive")
	}
	if cfg.BufferBytes <= 0 {
		return nil, fmt.Errorf("hv: buffer size must be positive")
	}
	if cfg.RelocatableBitstreams {
		cfg.Board.AllowRelocation = true
	}
	if cfg.WatchdogFactor < 0 || cfg.WatchdogGrace < 0 {
		return nil, fmt.Errorf("hv: negative watchdog parameters")
	}
	if cfg.QuarantineThreshold < 0 {
		return nil, fmt.Errorf("hv: negative quarantine threshold")
	}
	if cfg.Checkpoint.Enabled {
		if cfg.Preempt == PreemptWithCheckpoint {
			return nil, fmt.Errorf("hv: Checkpoint.Enabled supersedes PreemptWithCheckpoint; enable only one")
		}
		if cfg.Checkpoint.Period < 0 || cfg.Checkpoint.StateBytes < 0 || cfg.Checkpoint.DefaultPoints < 0 {
			return nil, fmt.Errorf("hv: negative checkpoint parameters")
		}
		if cfg.Checkpoint.StateBytes == 0 {
			cfg.Checkpoint.StateBytes = DefaultStateBytes
		}
		if cfg.Checkpoint.DefaultPoints == 0 {
			cfg.Checkpoint.DefaultPoints = DefaultCheckpointPoints
		}
	}
	mm, err := mem.NewManager(cfg.MemCapacity)
	if err != nil {
		return nil, err
	}
	ic, err := interconnect.New(cfg.Interconnect)
	if err != nil {
		return nil, err
	}
	h := &Hypervisor{
		eng:     eng,
		store:   bitstream.NewStore(),
		mem:     mm,
		policy:  policy,
		acct:    map[int64]*Result{},
		bufOut:  map[int64]map[int]int64{},
		ic:      ic,
		handoff: map[int64]map[[3]int]sim.Time{},
		prodAt:  map[int64]map[[2]int]prodInfo{},
		ckpt:    map[int64]map[[2]int]ckptRecord{},
		owners:  map[int64]string{},

		tenantSvc: map[string]sim.Duration{},
	}
	h.tickFn = func() {
		h.tickPending = false
		if len(h.pending) == 0 || h.err != nil || h.halted() {
			return
		}
		// The periodic tick is also the liveness heartbeat: it keeps
		// firing while work is pending no matter how slowly items run, so
		// only a genuinely frozen board (halted guard above) ever reads
		// as static progress to the fleet monitor.
		h.progress++
		h.poke(sched.ReasonTick)
		h.ensureTick()
	}
	for r := range h.wakeFns {
		why := sched.Reason(r)
		h.wakeFns[r] = func() { h.poke(why) }
	}
	// Observe every board fault for retry tracing and accounting,
	// chaining any caller-provided hook.
	userFault := cfg.Board.OnFault
	cfg.Board.OnFault = func(ev fpga.FaultEvent) {
		h.onFault(ev)
		if userFault != nil {
			userFault(ev)
		}
	}
	board, err := fpga.NewBoard(eng, cfg.Board)
	if err != nil {
		return nil, err
	}
	h.cfg = cfg
	h.board = board
	h.scale = board.LatencyScale()
	h.slots = make([]slotRuntime, board.NumSlots())
	h.slotBusy = make([]sim.Duration, board.NumSlots())
	h.kickFns = make([]func(), board.NumSlots())
	for i := range h.kickFns {
		slot := i
		h.kickFns[i] = func() { h.tryStart(slot) }
	}
	if cfg.Preempt == PreemptWithCheckpoint && (cfg.CheckpointSave < 0 || cfg.CheckpointRestore < 0) {
		return nil, fmt.Errorf("hv: negative checkpoint costs")
	}
	if cfg.EnableTrace {
		h.log = trace.New()
	}
	h.obs = cfg.Observer
	for i := range h.slots {
		h.slots[i].curItem = -1
	}
	h.rec.Timeline = []SlotSample{{At: eng.Now(), Usable: board.UsableSlots()}}
	// Plan-known permanent failures are driven from here rather than the
	// board so a failure can kill a slot even while a task runs in it.
	if inj := board.Injector(); inj != nil {
		for _, f := range inj.PermanentFailures() {
			if f.Slot < 0 || f.Slot >= board.NumSlots() {
				return nil, fmt.Errorf("hv: fault plan kills slot %d, board has %d slots", f.Slot, board.NumSlots())
			}
			f := f
			eng.At(f.At, func() { h.forceOffline(f.Slot) })
		}
	}
	return h, nil
}

// Policy returns the scheduling policy in use.
func (h *Hypervisor) Policy() sched.Scheduler { return h.policy }

// Board exposes the simulated FPGA (for tests and reports).
func (h *Hypervisor) Board() *fpga.Board { return h.board }

// Mem exposes the buffer manager (for tests and reports).
func (h *Hypervisor) Mem() *mem.Manager { return h.mem }

// Trace returns the execution trace, or nil when tracing is disabled.
func (h *Hypervisor) Trace() *trace.Log { return h.log }

// Interconnect exposes the inter-slot data-movement model.
func (h *Hypervisor) Interconnect() *interconnect.Model { return h.ic }

// Store exposes the bitstream filesystem (for tests and reports).
func (h *Hypervisor) Store() *bitstream.Store { return h.store }

// Err reports the first mechanical error encountered (policy contract
// violations surface here and abort the run).
func (h *Hypervisor) Err() error { return h.err }

// Recovery reports the run's fault-injection and recovery statistics,
// merging the board's reconfiguration-side accounting with the
// hypervisor's execution-side counters.
func (h *Hypervisor) Recovery() RecoveryStats {
	out := h.rec
	bs := h.board.Stats()
	out.FaultsInjected += bs.Faults
	out.Retries = bs.Retries
	out.Recovered = bs.Recovered
	out.SlotsOffline = bs.Offline
	out.Timeline = append([]SlotSample(nil), h.rec.Timeline...)
	return out
}

// EnergyStats reports the power model evaluated over a run: static
// power integrates over usable slots (leakage burns whether or not
// logic runs; offline slots stop drawing), active power over occupied
// slots (reconfiguring or loaded). Computed post hoc from the board's
// occupancy integrals — energy never feeds back into scheduling
// decisions except through the explicit NimblockEnergy policy.
type EnergyStats struct {
	// StaticJoules and ActiveJoules split total energy by term.
	StaticJoules float64
	ActiveJoules float64
	// OccupiedSlotSeconds and UsableSlotSeconds expose the underlying
	// integrals (slot-seconds) for conservation checks.
	OccupiedSlotSeconds float64
	UsableSlotSeconds   float64
}

// TotalJoules is the run's total energy under the power model.
func (e EnergyStats) TotalJoules() float64 { return e.StaticJoules + e.ActiveJoules }

// Energy evaluates the board's power model at the current virtual time.
// With no power configured (the default) every term is zero.
func (h *Hypervisor) Energy() EnergyStats {
	occ := h.board.OccupiedSlotTime().Seconds()
	us := h.board.UsableSlotTime().Seconds()
	return EnergyStats{
		StaticJoules:        h.cfg.Board.StaticWattsPerSlot * us,
		ActiveJoules:        h.cfg.Board.ActiveWattsPerSlot * occ,
		OccupiedSlotSeconds: occ,
		UsableSlotSeconds:   us,
	}
}

// Submit schedules an application arrival. The graph's bitstreams are
// registered with the store (one per task per slot) and the application
// joins the pending queue at the arrival time.
func (h *Hypervisor) Submit(g *taskgraph.Graph, batch, priority int, arrival sim.Time) error {
	_, err := h.SubmitID(g, batch, priority, arrival)
	return err
}

// SubmitTenant is SubmitID with a tenant attribution: fabric compute
// time delivered to the submission accrues to the tenant's service
// account (TenantService), weighted by the tenant's share for fairness
// arithmetic. Weight 0 means 1.
func (h *Hypervisor) SubmitTenant(g *taskgraph.Graph, batch, priority int, arrival sim.Time, tenant string, weight float64) (int64, error) {
	if weight < 0 {
		return 0, fmt.Errorf("hv: negative tenant weight %v", weight)
	}
	id, err := h.SubmitID(g, batch, priority, arrival)
	if err != nil {
		return 0, err
	}
	a := h.apps[len(h.apps)-1]
	a.Tenant, a.Weight = tenant, weight
	return id, nil
}

// SubmitID is Submit returning the board-local application ID assigned
// to the submission, which OnRetire later reports back. Dispatchers that
// must correlate completions with their own records use this form.
func (h *Hypervisor) SubmitID(g *taskgraph.Graph, batch, priority int, arrival sim.Time) (int64, error) {
	report := hls.Analyze(g)
	var err error
	if h.cfg.RelocatableBitstreams {
		err = h.store.RegisterRelocatable(g, report, batch, priority)
	} else {
		err = h.store.Register(g, report, h.board.NumSlots(), batch, priority)
	}
	if err != nil {
		return 0, err
	}
	h.nextID++
	app, err := sched.NewApp(h.nextID, g, report, batch, priority, arrival)
	if err != nil {
		return 0, err
	}
	h.apps = append(h.apps, app)
	h.transit = append(h.transit, app)
	h.eng.At(arrival, func() { h.arrive(app) })
	return app.ID, nil
}

func (h *Hypervisor) arrive(app *sched.App) {
	if h.halted() || app.Retired() {
		// A dead or frozen board processes no arrivals (evacuation
		// re-homes in-transit work); an aborted hedge copy never lands.
		return
	}
	for i, a := range h.transit {
		if a == app {
			h.transit = append(h.transit[:i], h.transit[i+1:]...)
			break
		}
	}
	h.pending = append(h.pending, app)
	slices.SortStableFunc(h.pending, func(x, y *sched.App) int {
		if x.Arrival != y.Arrival {
			if x.Arrival < y.Arrival {
				return -1
			}
			return 1
		}
		if x.ID < y.ID {
			return -1
		}
		if x.ID > y.ID {
			return 1
		}
		return 0
	})
	h.acct[app.ID] = &Result{
		AppID:       app.ID,
		App:         app.Name,
		Batch:       app.Batch,
		Priority:    app.Priority,
		Arrival:     app.Arrival,
		FirstLaunch: -1,
	}
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindArrival, App: app.Name, AppID: app.ID, Task: -1, Slot: -1, Item: -1})
	h.ensureTick()
	h.poke(sched.ReasonArrival)
}

// ensureTick keeps the periodic scheduling interval alive while
// applications are pending.
func (h *Hypervisor) ensureTick() {
	if h.tickPending || len(h.pending) == 0 || h.err != nil || h.halted() {
		return
	}
	h.tickPending = true
	h.eng.After(h.cfg.SchedInterval, h.tickFn)
}

// poke invokes the policy unless the run has already failed.
func (h *Hypervisor) poke(why sched.Reason) {
	if h.err != nil || h.halted() {
		return
	}
	h.policy.Schedule(h, why)
}

// wake defers a poke to the next event at the same virtual time; used
// when the trigger occurs inside a policy callback (re-entrancy guard).
func (h *Hypervisor) wake(why sched.Reason) {
	if int(why) < len(h.wakeFns) && h.wakeFns[why] != nil {
		h.eng.After(0, h.wakeFns[why])
		return
	}
	h.eng.After(0, func() { h.poke(why) })
}

// fail records a mechanical error; the run aborts.
func (h *Hypervisor) fail(err error) error {
	if h.err == nil {
		h.err = err
		h.eng.Stop()
	}
	return err
}

// trace records an event in the in-memory log (when enabled) and fans
// it out to the live observer (when attached). The disabled path — nil
// log, nil observer — must stay allocation-free: it runs once per event
// on the simulator hot path (a test in this package enforces it).
func (h *Hypervisor) trace(e trace.Event) {
	// Every emitted event is one heartbeat: a frozen board emits nothing
	// (its callbacks are guarded), so liveness polls see the counter
	// stall and declare the board dead.
	h.progress++
	h.log.Add(e)
	if h.obs != nil {
		h.obs.Observe(e)
	}
}

// onFault observes every injected reconfiguration fault on the board.
// Retried attempts are traced here; a request's terminal failure is
// traced as KindFault on the reconfigDone error path.
func (h *Hypervisor) onFault(ev fpga.FaultEvent) {
	if !ev.WillRetry {
		return
	}
	e := trace.Event{At: h.eng.Now(), Kind: trace.KindRetry, AppID: -1, Task: -1, Slot: ev.Slot, Item: -1}
	if rt := &h.slots[ev.Slot]; rt.app != nil {
		e.App, e.AppID, e.Task = rt.app.Name, rt.app.ID, rt.task
	}
	h.trace(e)
}

// noteOffline traces a slot's departure and extends the slot timeline.
func (h *Hypervisor) noteOffline(slot int) {
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindSlotOffline, AppID: -1, Task: -1, Slot: slot, Item: -1})
	h.rec.Timeline = append(h.rec.Timeline, SlotSample{At: h.eng.Now(), Usable: h.board.UsableSlots()})
}

// quarantine retires a free slot whose fault count crossed the
// threshold; the policy's goal numbers adapt to the smaller board at the
// next scheduling opportunity.
func (h *Hypervisor) quarantine(slot int) {
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindQuarantine, AppID: -1, Task: -1, Slot: slot, Item: -1})
	if err := h.board.SetOffline(slot); err != nil {
		h.fail(err)
		return
	}
	h.rec.Quarantined++
	h.noteOffline(slot)
}

// forceOffline is the permanent-failure path: the slot dies at a
// plan-known time regardless of what it is doing. A running occupant is
// killed — its lost item re-executes elsewhere — and the slot leaves
// service for good.
func (h *Hypervisor) forceOffline(slot int) {
	if h.err != nil || h.halted() || !h.board.SlotUsable(slot) {
		return
	}
	rt := &h.slots[slot]
	if rt.app != nil && rt.active {
		a, task := rt.app, rt.task
		h.eng.Cancel(rt.itemEv)
		h.eng.Cancel(rt.wdEv)
		h.eng.Cancel(rt.ckptEv)
		if rt.curItem >= 0 {
			if h.ckptOn() {
				// Only progress since the last checkpoint is lost; the
				// snapshot survives the slot and resumes elsewhere.
				h.abortAccounting(slot, rt)
			} else if !rt.saving {
				// Progress on the dying item is lost. A mid-save checkpoint
				// was already booked as run time at save start.
				consumed := h.eng.Now().Sub(rt.itemStart)
				h.rec.WastedWork += consumed
				h.slotBusy[slot] += consumed
			}
		}
		if _, err := a.MarkKilled(task); err != nil {
			h.fail(err)
			return
		}
		if err := h.board.Release(slot); err != nil {
			h.fail(err)
			return
		}
		h.slots[slot] = slotRuntime{curItem: -1}
	}
	// A reconfiguring slot cannot be released mid-stream; SetOffline
	// instead arranges for the in-flight stream to fail fatally, which
	// funnels through the reconfigDone error path (including its
	// noteOffline call).
	if err := h.board.SetOffline(slot); err != nil {
		h.fail(err)
		return
	}
	if !h.board.SlotUsable(slot) {
		h.noteOffline(slot)
	}
	h.wake(sched.ReasonSlotFree)
}

// watchdogFire kills a task whose in-flight item outlived its deadline.
// The slot is released, the lost progress is accounted as wasted work,
// and the item re-executes when the task is rescheduled — from its last
// checkpoint when checkpointing is enabled, from scratch otherwise.
func (h *Hypervisor) watchdogFire(slot int, a *sched.App, task, item int) {
	if h.halted() {
		return
	}
	rt := &h.slots[slot]
	if rt.app != a || rt.task != task || rt.curItem != item || rt.saving {
		return // stale timer: the item completed or the slot moved on
	}
	h.eng.Cancel(rt.itemEv)
	h.eng.Cancel(rt.ckptEv)
	h.rec.WatchdogKills++
	if h.ckptOn() {
		// Only progress since the last checkpoint is wasted; work up to
		// the snapshot is committed and never re-executed.
		h.abortAccounting(slot, rt)
	} else {
		consumed := h.eng.Now().Sub(rt.itemStart)
		h.rec.WastedWork += consumed
		h.slotBusy[slot] += consumed
	}
	aborted, err := a.MarkKilled(task)
	if err != nil {
		h.fail(err)
		return
	}
	if aborted != item {
		h.fail(fmt.Errorf("hv: watchdog on slot %d aborted item %d, expected %d", slot, aborted, item))
		return
	}
	if err := h.board.Release(slot); err != nil {
		h.fail(err)
		return
	}
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindWatchdog, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item})
	h.slots[slot] = slotRuntime{curItem: -1}
	h.wake(sched.ReasonSlotFree)
}

// ---- sched.World implementation ----

// Now implements sched.World.
func (h *Hypervisor) Now() sim.Time { return h.eng.Now() }

// NumSlots implements sched.World.
func (h *Hypervisor) NumSlots() int { return h.board.NumSlots() }

// UsableSlots implements sched.World.
func (h *Hypervisor) UsableSlots() int { return h.board.UsableSlots() }

// SlotUsable implements sched.World.
func (h *Hypervisor) SlotUsable(slot int) bool { return h.board.SlotUsable(slot) }

// FreeSlots implements sched.World.
func (h *Hypervisor) FreeSlots() []int { return h.board.FreeSlots() }

// CAPBusy implements sched.World.
func (h *Hypervisor) CAPBusy() bool { return h.board.CAPBusy() }

// Apps implements sched.World: pending applications in arrival order.
func (h *Hypervisor) Apps() []*sched.App { return h.pending }

// SlotOccupant implements sched.World.
func (h *Hypervisor) SlotOccupant(slot int) (*sched.App, int, bool) {
	rt := &h.slots[slot]
	if rt.app == nil {
		return nil, 0, false
	}
	return rt.app, rt.task, true
}

// SlotWaiting implements sched.World: loaded and idle at a batch boundary.
func (h *Hypervisor) SlotWaiting(slot int) bool {
	rt := &h.slots[slot]
	return rt.app != nil && rt.active && rt.curItem == -1
}

// PreemptRequested implements sched.World.
func (h *Hypervisor) PreemptRequested(slot int) bool { return h.slots[slot].preempt }

// TenantService implements sched.World: fabric compute time delivered
// to the tenant so far (zero for unknown or empty tenants).
func (h *Hypervisor) TenantService(tenant string) sim.Duration { return h.tenantSvc[tenant] }

// TenantServices returns a copy of the per-tenant service accounts for
// reports and fairness analysis.
func (h *Hypervisor) TenantServices() map[string]sim.Duration {
	out := make(map[string]sim.Duration, len(h.tenantSvc))
	for k, v := range h.tenantSvc {
		out[k] = v
	}
	return out
}

// addService accrues delivered compute time to the app's tenant; apps
// submitted without a tenant cost one string compare and nothing else.
func (h *Hypervisor) addService(a *sched.App, d sim.Duration) {
	if a.Tenant == "" || d <= 0 {
		return
	}
	h.tenantSvc[a.Tenant] += d
}

// Reconfigure implements sched.World: configure app's task into the slot.
func (h *Hypervisor) Reconfigure(slot int, a *sched.App, task int) error {
	if slot < 0 || slot >= len(h.slots) {
		return h.fail(fmt.Errorf("hv: reconfigure slot %d out of range", slot))
	}
	if h.slots[slot].app != nil {
		return h.fail(fmt.Errorf("hv: reconfigure occupied slot %d", slot))
	}
	if a == nil || a.Retired() {
		return h.fail(fmt.Errorf("hv: reconfigure slot %d for retired or nil app", slot))
	}
	if !a.Configurable(task) {
		return h.fail(fmt.Errorf("hv: %s task %d not configurable (state %v)", a.Name, task, a.TaskState(task)))
	}
	img, err := h.store.Lookup(a.Name, task, slot)
	if err != nil {
		return h.fail(err)
	}
	if err := a.MarkConfiguring(task, slot); err != nil {
		return h.fail(err)
	}
	h.slots[slot] = slotRuntime{app: a, task: task, curItem: -1}
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindReconfigStart, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: -1})
	if err := h.board.Reconfigure(slot, img, func(err error) { h.reconfigDone(slot, a, task, img, err) }); err != nil {
		return h.fail(err)
	}
	return nil
}

func (h *Hypervisor) reconfigDone(slot int, a *sched.App, task int, img *bitstream.Image, err error) {
	if h.halted() {
		return // frozen or dead: the board never sees the completion
	}
	if h.abortedIDs[a.ID] {
		// Hedge-cancelled mid-reconfiguration: drop the stream's result
		// and free the slot for live work.
		if err == nil {
			if e := h.board.Release(slot); e != nil {
				h.fail(e)
				return
			}
		}
		h.slots[slot] = slotRuntime{curItem: -1}
		h.wake(sched.ReasonSlotFree)
		return
	}
	rt := &h.slots[slot]
	if err != nil {
		// Unrecoverable fault: give the task back to the policy.
		h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindFault, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: -1})
		if e := a.MarkConfigFailed(task); e != nil {
			h.fail(e)
			return
		}
		h.slots[slot] = slotRuntime{curItem: -1}
		if !h.board.SlotUsable(slot) {
			// The fault was fatal: the board already retired the slot.
			h.noteOffline(slot)
		} else if th := h.cfg.QuarantineThreshold; th > 0 && h.board.SlotStats(slot).Faults >= th {
			h.quarantine(slot)
		}
		h.poke(sched.ReasonSlotFree)
		return
	}
	if e := a.MarkActive(task); e != nil {
		h.fail(e)
		return
	}
	rt.active = true
	res := h.acct[a.ID]
	res.Reconfig += h.board.ReconfigTime(img)
	res.Reconfigurations++
	h.slotBusy[slot] += h.board.ReconfigTime(img)
	if e := h.allocOutputBuffer(a, task); e != nil {
		h.fail(e)
		return
	}
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindReconfigDone, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: -1})
	h.tryStart(slot)
	h.poke(sched.ReasonReconfigDone)
}

// owner returns the application's buffer-owner label, formatted once
// per app instead of once per allocation and release.
func (h *Hypervisor) owner(a *sched.App) string {
	s, ok := h.owners[a.ID]
	if !ok {
		s = fmt.Sprintf("%s#%d", a.Name, a.ID)
		h.owners[a.ID] = s
	}
	return s
}

// taskLabels pre-formats the output-buffer labels for the task indices
// any real graph uses; taskLabel falls back to formatting past that.
var taskLabels = [...]string{
	"task0.out", "task1.out", "task2.out", "task3.out",
	"task4.out", "task5.out", "task6.out", "task7.out",
	"task8.out", "task9.out", "task10.out", "task11.out",
	"task12.out", "task13.out", "task14.out", "task15.out",
}

func taskLabel(t int) string {
	if t >= 0 && t < len(taskLabels) {
		return taskLabels[t]
	}
	return fmt.Sprintf("task%d.out", t)
}

// allocOutputBuffer gives the task a place to write results; consumers
// hold references until they finish the batch. Re-activations after
// preemption reuse the existing buffer.
func (h *Hypervisor) allocOutputBuffer(a *sched.App, task int) error {
	m, ok := h.bufOut[a.ID]
	if !ok {
		m = map[int]int64{}
		h.bufOut[a.ID] = m
	}
	if _, exists := m[task]; exists {
		return nil
	}
	refs := len(a.Graph.Succ(task))
	if refs == 0 {
		refs = 1 // sink: released when the task itself completes
	}
	b, err := h.mem.Allocate(h.owner(a), taskLabel(task), h.cfg.BufferBytes, refs)
	if err != nil {
		return err
	}
	m[task] = b.ID
	return nil
}

// RequestPreempt implements sched.World. Idempotent; honoured at the next
// batch boundary, immediately if the task is already waiting.
func (h *Hypervisor) RequestPreempt(slot int) error {
	if slot < 0 || slot >= len(h.slots) {
		return h.fail(fmt.Errorf("hv: preempt slot %d out of range", slot))
	}
	rt := &h.slots[slot]
	if rt.app == nil || !rt.active {
		return h.fail(fmt.Errorf("hv: preempt slot %d with no active task", slot))
	}
	if rt.preempt {
		return nil
	}
	rt.preempt = true
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindPreemptRequest, App: rt.app.Name, AppID: rt.app.ID, Task: rt.task, Slot: slot, Item: -1})
	if rt.curItem == -1 {
		h.doPreempt(slot)
		return nil
	}
	if h.ckptOn() {
		h.startOnDemandCheckpoint(slot)
	} else if h.cfg.Preempt == PreemptWithCheckpoint {
		h.startCheckpoint(slot)
	}
	return nil
}

// startCheckpoint aborts the in-flight item, captures its state over
// CheckpointSave, then frees the slot. The aborted item's remaining work
// is recorded so its next execution resumes from the checkpoint.
func (h *Hypervisor) startCheckpoint(slot int) {
	rt := &h.slots[slot]
	if rt.saving || rt.curItem == -1 {
		return
	}
	rt.saving = true
	h.eng.Cancel(rt.itemEv)
	h.eng.Cancel(rt.wdEv)
	a, task, item := rt.app, rt.task, rt.curItem
	consumed := h.eng.Now().Sub(rt.itemStart)
	remaining := rt.itemLat - consumed
	if remaining < 0 {
		remaining = 0
	}
	// Partial progress counts as run time (it occupied the fabric).
	h.acct[a.ID].Run += consumed
	h.addService(a, consumed)
	h.slotBusy[slot] += consumed
	h.eng.After(h.cfg.CheckpointSave, func() {
		if h.halted() {
			return
		}
		if cur := &h.slots[slot]; cur.app != a || cur.task != task || !cur.saving {
			return // slot was reclaimed mid-save (permanent failure)
		}
		aborted, err := a.MarkCheckpointPreempted(task)
		if err != nil {
			h.fail(err)
			return
		}
		if aborted != item {
			h.fail(fmt.Errorf("hv: checkpoint of %s task %d aborted item %d, expected %d", a.Name, task, aborted, item))
			return
		}
		m, ok := h.ckpt[a.ID]
		if !ok {
			m = map[[2]int]ckptRecord{}
			h.ckpt[a.ID] = m
		}
		m[[2]int{task, item}] = ckptRecord{remaining: remaining}
		if err := h.board.Release(slot); err != nil {
			h.fail(err)
			return
		}
		h.acct[a.ID].Preemptions++
		h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindCheckpoint, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item})
		h.slots[slot] = slotRuntime{curItem: -1}
		h.wake(sched.ReasonSlotFree)
	})
}

// ---- checkpoint/restore subsystem (Config.Checkpoint) ----

// ckptOn reports whether the full checkpoint/restore subsystem is live.
func (h *Hypervisor) ckptOn() bool { return h.cfg.Checkpoint.Enabled }

// taskStateBytes is the checkpointable state size of one task: declared
// on the graph, or the configured default.
func (h *Hypervisor) taskStateBytes(a *sched.App, task int) int64 {
	if b := a.Graph.Task(task).StateBytes; b > 0 {
		return b
	}
	return h.cfg.Checkpoint.StateBytes
}

func (h *Hypervisor) ckptGet(appID int64, task, item int) (ckptRecord, bool) {
	m, ok := h.ckpt[appID]
	if !ok {
		return ckptRecord{}, false
	}
	rec, ok := m[[2]int{task, item}]
	return rec, ok
}

func (h *Hypervisor) ckptPut(appID int64, task, item int, rec ckptRecord) {
	m, ok := h.ckpt[appID]
	if !ok {
		m = map[[2]int]ckptRecord{}
		h.ckpt[appID] = m
	}
	m[[2]int{task, item}] = rec
}

func (h *Hypervisor) ckptDelete(appID int64, task, item int) {
	if m, ok := h.ckpt[appID]; ok {
		delete(m, [2]int{task, item})
	}
}

// stretchDur scales nominal work by a slowdown (>1) or speed-up (<1)
// factor; non-positive factors mean "no scaling" (unset).
func stretchDur(d sim.Duration, f float64) sim.Duration {
	if f <= 0 || f == 1 {
		return d
	}
	return sim.Duration(float64(d) * f)
}

// unstretchDur converts consumed wall time back to nominal progress.
func unstretchDur(d sim.Duration, f float64) sim.Duration {
	if f <= 0 || f == 1 {
		return d
	}
	return sim.Duration(float64(d) / f)
}

// startAttempt begins one execution attempt of (task, item) on the slot:
// it draws the attempt's execution fault, restores from the last
// checkpoint if one exists (probing checkpoint-integrity faults), and
// starts the run.
func (h *Hypervisor) startAttempt(slot int, a *sched.App, task, item int) {
	rt := &h.slots[slot]
	rt.base, rt.doneNominal, rt.doneWall, rt.factor, rt.hung = 0, 0, 0, 1, false
	// The watchdog budget spans the whole attempt: periodic save pauses
	// consume it rather than resetting it, so a slowed item cannot dodge
	// the watchdog by checkpointing often.
	rt.wdLeft = 0
	if h.cfg.WatchdogFactor > 0 {
		est := stretchDur(a.Report.Task(task).Latency, h.scale)
		rt.wdLeft = sim.Duration(float64(est)*h.cfg.WatchdogFactor) + h.cfg.WatchdogGrace
	}
	// One execution-fault probe per attempt, exactly like the legacy
	// path: a hang never completes, a slowdown stretches every stretch.
	if inj := h.board.Injector(); inj != nil {
		out := inj.Exec(h.eng.Now(), a.Name, task, slot)
		if out.Hang {
			rt.hung = true
			h.rec.FaultsInjected++
		} else if out.Factor > 1 {
			rt.factor = out.Factor
			h.rec.FaultsInjected++
		}
	}
	if h.slow > 1 {
		// Board-wide degrade stretches every attempt started inside the
		// window, compounding any injected per-item slowdown.
		rt.factor *= h.slow
	}
	if h.scale != 1 {
		// Fabric heterogeneity compounds the same way, permanently.
		rt.factor *= h.scale
	}
	rec, ok := h.ckptGet(a.ID, task, item)
	if ok {
		probe := fpga.ProbeCheckpoint(h.board.Injector(), h.eng.Now(), a.Name, task, slot)
		if probe.Lost {
			// The snapshot is gone before a single byte streams back:
			// fall back to from-scratch re-execution immediately.
			h.ckptDelete(a.ID, task, item)
			h.rec.FaultsInjected++
			h.rec.CheckpointFaults++
			h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindCheckpointFault, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item, Progress: rec.progress})
		} else {
			rt.base = rec.progress
			rt.restoring = true
			start := h.eng.Now()
			if err := h.board.TransferState(slot, rec.bytes, func(error) {
				h.restoreDone(slot, a, task, item, rec, probe.Corrupt, start)
			}); err != nil {
				h.fail(err)
			}
			return
		}
	}
	h.beginRun(slot, a, task, item)
}

// restoreDone completes a checkpoint restore: the state streamed back
// through the CAP; either the item resumes from the snapshot or (corrupt
// snapshot) re-executes from scratch with the transfer time spent.
func (h *Hypervisor) restoreDone(slot int, a *sched.App, task, item int, rec ckptRecord, corrupt bool, start sim.Time) {
	if h.halted() {
		return
	}
	rt := &h.slots[slot]
	if rt.app != a || rt.task != task || rt.curItem != item || !rt.restoring {
		return // slot was reclaimed mid-restore (permanent failure)
	}
	rt.restoring = false
	d := h.eng.Now().Sub(start)
	h.rec.CheckpointOverhead += d
	h.slotBusy[slot] += d
	if corrupt {
		h.ckptDelete(a.ID, task, item)
		h.rec.FaultsInjected++
		h.rec.CheckpointFaults++
		rt.base = 0
		h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindCheckpointFault, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item, Dur: d, Progress: rec.progress})
	} else {
		h.rec.ResumedItems++
		h.rec.SavedWork += rec.progress
		h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindRestore, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item, Dur: d, Progress: rec.progress})
	}
	if rt.preempt {
		// A preemption arrived while state streamed back: honour it now;
		// the snapshot (if intact) resumes on another slot.
		h.finishOnDemand(slot, a, task, item, 0)
		return
	}
	h.beginRun(slot, a, task, item)
}

// beginRun starts (or resumes) the compute stretch of the current
// attempt and arms its completion, watchdog, and periodic-save timers.
func (h *Hypervisor) beginRun(slot int, a *sched.App, task, item int) {
	rt := &h.slots[slot]
	nominal := a.Graph.Task(task).Latency
	remaining := nominal - rt.base - rt.doneNominal
	if remaining < 0 {
		remaining = 0 // float rounding across pause/resume cycles
	}
	lat := stretchDur(remaining, rt.factor)
	rt.itemStart = h.eng.Now()
	rt.itemLat = lat
	if rt.hung {
		rt.itemEv = 0
	} else {
		rt.itemEv = h.eng.AfterCancellable(lat, func() { h.itemDone(slot, a, task, item, lat) })
	}
	if h.cfg.WatchdogFactor > 0 && rt.wdLeft > 0 {
		rt.wdEv = h.eng.AfterCancellable(rt.wdLeft, func() { h.watchdogFire(slot, a, task, item) })
	}
	if p := h.cfg.Checkpoint.Period; p > 0 && !rt.hung {
		rt.ckptEv = h.eng.AfterCancellable(p, func() { h.ckptSave(slot, a, task, item) })
	}
}

// ckptSave is the periodic checkpoint: if the item has passed a new
// preemption point since the last capture, pause the kernel, stream the
// state out through the CAP, and resume. Saves of hung items are
// pointless (no consistent progress) and are skipped.
func (h *Hypervisor) ckptSave(slot int, a *sched.App, task, item int) {
	if h.halted() {
		return
	}
	rt := &h.slots[slot]
	if rt.app != a || rt.task != task || rt.curItem != item || rt.saving || rt.restoring || rt.hung {
		return // stale timer
	}
	nominal := a.Graph.Task(task).Latency
	elapsed := h.eng.Now().Sub(rt.itemStart)
	progressed := unstretchDur(elapsed, rt.factor)
	frac := float64(rt.base+rt.doneNominal+progressed) / float64(nominal)
	snap := sim.Duration(a.Graph.SnapFraction(task, frac, h.cfg.Checkpoint.DefaultPoints) * float64(nominal))
	rec, _ := h.ckptGet(a.ID, task, item)
	if snap <= rec.progress {
		// No new preemption point passed: nothing to capture; try again
		// next period.
		rt.ckptEv = h.eng.AfterCancellable(h.cfg.Checkpoint.Period, func() { h.ckptSave(slot, a, task, item) })
		return
	}
	h.eng.Cancel(rt.itemEv)
	h.eng.Cancel(rt.wdEv)
	rt.itemEv, rt.wdEv, rt.ckptEv = 0, 0, 0
	rt.doneWall += elapsed
	rt.doneNominal += progressed
	// The pause consumes watchdog budget (transfer time does not: the
	// kernel is not executing while its state streams out).
	rt.wdLeft -= elapsed
	if rt.wdLeft < 1 {
		rt.wdLeft = 1 // fire immediately after resume
	}
	rt.saving = true
	bytes := h.taskStateBytes(a, task)
	start := h.eng.Now()
	if err := h.board.TransferState(slot, bytes, func(error) {
		h.ckptSaveDone(slot, a, task, item, snap, bytes, start)
	}); err != nil {
		h.fail(err)
	}
}

// ckptSaveDone records the snapshot and resumes the paused kernel (or
// honours a preemption that arrived mid-save).
func (h *Hypervisor) ckptSaveDone(slot int, a *sched.App, task, item int, snap sim.Duration, bytes int64, start sim.Time) {
	if h.halted() {
		return
	}
	rt := &h.slots[slot]
	if rt.app != a || rt.task != task || rt.curItem != item || !rt.saving {
		return // slot was reclaimed mid-save (permanent failure)
	}
	rt.saving = false
	d := h.eng.Now().Sub(start)
	nominal := a.Graph.Task(task).Latency
	h.ckptPut(a.ID, task, item, ckptRecord{remaining: nominal - snap, progress: snap, bytes: bytes})
	h.rec.CheckpointSaves++
	h.rec.CheckpointOverhead += d
	h.slotBusy[slot] += d
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindCheckpointSave, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item, Dur: d, Progress: snap})
	if rt.preempt {
		h.finishOnDemand(slot, a, task, item, d)
		return
	}
	h.beginRun(slot, a, task, item)
}

// startOnDemandCheckpoint honours a mid-item preemption request under
// the checkpoint subsystem: pause, capture state at the latest passed
// preemption point (if newer than the last snapshot), and release the
// slot. Work past the snapshot is wasted — it re-executes on resume.
func (h *Hypervisor) startOnDemandCheckpoint(slot int) {
	rt := &h.slots[slot]
	if rt.curItem == -1 || rt.saving || rt.restoring {
		return // an in-flight transfer completes first; its callback honours preempt
	}
	a, task, item := rt.app, rt.task, rt.curItem
	elapsed := h.eng.Now().Sub(rt.itemStart)
	var progressed sim.Duration
	if !rt.hung {
		progressed = unstretchDur(elapsed, rt.factor)
	}
	h.eng.Cancel(rt.itemEv)
	h.eng.Cancel(rt.wdEv)
	h.eng.Cancel(rt.ckptEv)
	rt.itemEv, rt.wdEv, rt.ckptEv = 0, 0, 0
	rt.doneWall += elapsed
	rt.doneNominal += progressed
	rt.saving = true
	nominal := a.Graph.Task(task).Latency
	frac := float64(rt.base+rt.doneNominal) / float64(nominal)
	snap := sim.Duration(a.Graph.SnapFraction(task, frac, h.cfg.Checkpoint.DefaultPoints) * float64(nominal))
	rec, _ := h.ckptGet(a.ID, task, item)
	if snap <= rec.progress {
		// No new point passed since the last capture (or none at all):
		// nothing to save; release immediately.
		h.finishOnDemand(slot, a, task, item, 0)
		return
	}
	bytes := h.taskStateBytes(a, task)
	start := h.eng.Now()
	if err := h.board.TransferState(slot, bytes, func(error) {
		if h.halted() {
			return
		}
		cur := &h.slots[slot]
		if cur.app != a || cur.task != task || cur.curItem != item || !cur.saving {
			return // slot was reclaimed mid-save (permanent failure)
		}
		d := h.eng.Now().Sub(start)
		h.ckptPut(a.ID, task, item, ckptRecord{remaining: nominal - snap, progress: snap, bytes: bytes})
		h.rec.CheckpointSaves++
		h.rec.CheckpointOverhead += d
		h.slotBusy[slot] += d
		h.finishOnDemand(slot, a, task, item, d)
	}); err != nil {
		h.fail(err)
	}
}

// finishOnDemand completes a checkpoint preemption: commit the work the
// snapshot captured, waste the rest, abort the in-flight item (batch
// progress survives in the App), and free the slot.
func (h *Hypervisor) finishOnDemand(slot int, a *sched.App, task, item int, saveDur sim.Duration) {
	rt := &h.slots[slot]
	rt.saving = false
	var committed sim.Duration
	rec, has := h.ckptGet(a.ID, task, item)
	if has {
		committed = stretchDur(rec.progress-rt.base, rt.factor)
	}
	wall := rt.doneWall
	if committed > wall {
		committed = wall
	}
	h.acct[a.ID].Run += committed
	h.addService(a, committed)
	h.slotBusy[slot] += wall
	h.rec.WastedWork += wall - committed
	aborted, err := a.MarkCheckpointPreempted(task)
	if err != nil {
		h.fail(err)
		return
	}
	if aborted != item {
		h.fail(fmt.Errorf("hv: checkpoint of %s task %d aborted item %d, expected %d", a.Name, task, aborted, item))
		return
	}
	if err := h.board.Release(slot); err != nil {
		h.fail(err)
		return
	}
	h.acct[a.ID].Preemptions++
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindCheckpoint, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item, Dur: saveDur, Progress: rec.progress})
	h.slots[slot] = slotRuntime{curItem: -1}
	h.wake(sched.ReasonSlotFree)
}

// abortAccounting books a killed attempt under the checkpoint
// subsystem: wall compute up to the last snapshot is committed run
// time, everything since is wasted, and checkpoint transfer time is
// never double-counted (it lives in CheckpointOverhead).
func (h *Hypervisor) abortAccounting(slot int, rt *slotRuntime) {
	a := rt.app
	wall := rt.doneWall
	if !rt.saving && !rt.restoring {
		wall += h.eng.Now().Sub(rt.itemStart)
	}
	var committed sim.Duration
	if rec, ok := h.ckptGet(a.ID, rt.task, rt.curItem); ok {
		committed = stretchDur(rec.progress-rt.base, rt.factor)
	}
	if committed > wall {
		committed = wall
	}
	h.acct[a.ID].Run += committed
	h.addService(a, committed)
	h.slotBusy[slot] += wall
	h.rec.WastedWork += wall - committed
}

// doPreempt saves batch state (already tracked in the App) and frees the
// slot. Only legal at a batch boundary.
func (h *Hypervisor) doPreempt(slot int) {
	rt := &h.slots[slot]
	a, task := rt.app, rt.task
	if err := a.MarkPreempted(task); err != nil {
		h.fail(err)
		return
	}
	if err := h.board.Release(slot); err != nil {
		h.fail(err)
		return
	}
	h.acct[a.ID].Preemptions++
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindPreempt, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: -1})
	h.slots[slot] = slotRuntime{curItem: -1}
	h.wake(sched.ReasonSlotFree)
}

// tryStart pulls the next ready batch item into the slot's task, or
// honours a pending preemption at the boundary.
func (h *Hypervisor) tryStart(slot int) {
	if h.halted() {
		return
	}
	rt := &h.slots[slot]
	if rt.app == nil || !rt.active || rt.curItem != -1 {
		return
	}
	if rt.preempt {
		h.doPreempt(slot)
		return
	}
	a, task := rt.app, rt.task
	item := a.NextReadyItem(task, h.policy.Pipelining())
	if item < 0 {
		return // waiting at a batch boundary
	}
	// Inter-slot hand-off: the item's input data may still be in flight
	// from producer slots; retry once it lands.
	if avail := h.dataReadyAt(a, task, slot, item); avail > h.eng.Now() {
		h.eng.At(avail, h.kickFns[slot])
		return
	}
	if err := a.MarkItemStarted(task, item); err != nil {
		h.fail(err)
		return
	}
	rt.curItem = item
	res := h.acct[a.ID]
	if res.FirstLaunch < 0 {
		res.FirstLaunch = h.eng.Now()
	}
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindItemStart, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item})
	if h.ckptOn() {
		h.startAttempt(slot, a, task, item)
		return
	}
	lat := a.Graph.Task(task).Latency
	// A checkpointed item resumes from its saved state after paying the
	// restore cost.
	if m, ok := h.ckpt[a.ID]; ok {
		if rec, ok := m[[2]int{task, item}]; ok {
			lat = rec.remaining + h.cfg.CheckpointRestore
			delete(m, [2]int{task, item})
		}
	}
	// Execution faults: a hang never completes (only the watchdog or a
	// permanent slot failure recovers the slot); a slowdown stretches
	// the item past its estimate, possibly into watchdog range.
	hung := false
	if inj := h.board.Injector(); inj != nil {
		out := inj.Exec(h.eng.Now(), a.Name, task, slot)
		if out.Hang {
			hung = true
			h.rec.FaultsInjected++
		} else if out.Factor > 1 {
			lat = sim.Duration(float64(lat) * out.Factor)
			h.rec.FaultsInjected++
		}
	}
	lat = stretchDur(lat, h.slow)
	lat = stretchDur(lat, h.scale)
	rt.itemStart = h.eng.Now()
	rt.itemLat = lat
	rt.hung = hung
	if hung {
		rt.itemEv = 0
	} else {
		rt.itemEv = h.eng.AfterCancellable(lat, func() { h.itemDone(slot, a, task, item, lat) })
	}
	if h.cfg.WatchdogFactor > 0 {
		// The deadline scales with the fabric: a slow board's healthy
		// items must not read as hangs.
		est := stretchDur(a.Report.Task(task).Latency, h.scale)
		deadline := sim.Duration(float64(est)*h.cfg.WatchdogFactor) + h.cfg.WatchdogGrace
		rt.wdEv = h.eng.AfterCancellable(deadline, func() { h.watchdogFire(slot, a, task, item) })
	}
}

func (h *Hypervisor) itemDone(slot int, a *sched.App, task, item int, lat sim.Duration) {
	if h.halted() {
		return
	}
	rt := &h.slots[slot]
	if rt.app != a || rt.task != task || rt.curItem != item {
		h.fail(fmt.Errorf("hv: item completion for %s task %d item %d does not match slot %d state", a.Name, task, item, slot))
		return
	}
	h.eng.Cancel(rt.wdEv)
	h.eng.Cancel(rt.ckptEv)
	rt.wdEv, rt.ckptEv = 0, 0
	rt.curItem = -1
	taskDone, err := a.MarkItemDone(task, item)
	if err != nil {
		h.fail(err)
		return
	}
	h.recordProduction(a, task, item, slot)
	run := lat
	if h.ckptOn() {
		// The attempt's earlier stretches (between periodic saves) are
		// booked now, with the final stretch; save pauses were booked at
		// each save. The snapshot is obsolete once the item completes.
		run += rt.doneWall
		h.ckptDelete(a.ID, task, item)
		rt.base, rt.doneNominal, rt.doneWall = 0, 0, 0
	}
	h.acct[a.ID].Run += run
	h.addService(a, run)
	h.slotBusy[slot] += run
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindItemDone, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: item})
	if taskDone {
		if err := h.finishTask(slot, a, task); err != nil {
			h.fail(err)
			return
		}
		if a.Done() {
			if err := h.retire(a); err != nil {
				h.fail(err)
				return
			}
			h.kickApps()
			h.poke(sched.ReasonAppDone)
			return
		}
		h.kickApp(a)
		h.poke(sched.ReasonSlotFree)
		return
	}
	// Wake downstream pipelined instances, then this slot.
	h.kickApp(a)
}

// finishTask relinquishes buffers and frees the slot.
func (h *Hypervisor) finishTask(slot int, a *sched.App, task int) error {
	// Drop one reference on each predecessor's output: this consumer is done.
	for _, p := range a.Graph.Pred(task) {
		if id, ok := h.bufOut[a.ID][p]; ok {
			if err := h.mem.Release(id); err != nil {
				return err
			}
		}
	}
	// Sink tasks own their single output reference.
	if len(a.Graph.Succ(task)) == 0 {
		if id, ok := h.bufOut[a.ID][task]; ok {
			if err := h.mem.Release(id); err != nil {
				return err
			}
		}
	}
	if err := h.board.Release(slot); err != nil {
		return err
	}
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindTaskDone, App: a.Name, AppID: a.ID, Task: task, Slot: slot, Item: -1})
	h.slots[slot] = slotRuntime{curItem: -1}
	return nil
}

// recordProduction notes where a (task, item) output was produced so
// consumer-side hand-offs can be priced. Only needed for explicit
// interconnect models.
func (h *Hypervisor) recordProduction(a *sched.App, task, item, slot int) {
	if h.ic.Kind() == interconnect.Folded {
		return
	}
	m, ok := h.prodAt[a.ID]
	if !ok {
		m = map[[2]int]prodInfo{}
		h.prodAt[a.ID] = m
	}
	m[[2]int{task, item}] = prodInfo{at: h.eng.Now(), slot: slot}
}

// dataReadyAt reports when every predecessor's output for the item has
// arrived at the consumer slot, pricing each hand-off exactly once.
func (h *Hypervisor) dataReadyAt(a *sched.App, task, slot, item int) sim.Time {
	if h.ic.Kind() == interconnect.Folded || len(a.Graph.Pred(task)) == 0 {
		return h.eng.Now()
	}
	memo, ok := h.handoff[a.ID]
	if !ok {
		memo = map[[3]int]sim.Time{}
		h.handoff[a.ID] = memo
	}
	var ready sim.Time
	for _, p := range a.Graph.Pred(task) {
		key := [3]int{p, task, item}
		at, ok := memo[key]
		if !ok {
			prod, have := h.prodAt[a.ID][[2]int{p, item}]
			if !have {
				// Bulk mode: readiness was granted by whole-batch
				// completion; price the hand-off from the pred's last
				// known production of this item index. Fall back to
				// "already resident" if untracked.
				at = h.eng.Now()
			} else {
				at = h.ic.TransferDone(prod.at, prod.slot, slot)
			}
			memo[key] = at
		}
		if at > ready {
			ready = at
		}
	}
	return ready
}

// kickApp retries item starts on every slot hosting the application —
// item completions upstream may have unblocked pipelined consumers.
func (h *Hypervisor) kickApp(a *sched.App) {
	for s := range h.slots {
		if h.slots[s].app == a {
			h.tryStart(s)
		}
	}
}

// kickApps retries item starts everywhere (used after retirement).
func (h *Hypervisor) kickApps() {
	for s := range h.slots {
		h.tryStart(s)
	}
}

func (h *Hypervisor) retire(a *sched.App) error {
	if err := a.Retire(); err != nil {
		return err
	}
	for i, p := range h.pending {
		if p == a {
			h.pending = append(h.pending[:i], h.pending[i+1:]...)
			break
		}
	}
	res := h.acct[a.ID]
	res.Retire = h.eng.Now()
	res.Response = res.Retire.Sub(res.Arrival)
	res.Wait = res.FirstLaunch.Sub(res.Arrival)
	h.results = append(h.results, *res)
	// Any buffers still owned by the app would be leaks; reclaim and
	// surface them.
	owner := h.owner(a)
	if n := h.mem.ReleaseOwner(owner); n != 0 {
		return fmt.Errorf("hv: %s retired with %d leaked buffers", owner, n)
	}
	delete(h.owners, a.ID)
	delete(h.bufOut, a.ID)
	delete(h.handoff, a.ID)
	delete(h.prodAt, a.ID)
	delete(h.ckpt, a.ID)
	h.trace(trace.Event{At: h.eng.Now(), Kind: trace.KindRetire, App: a.Name, AppID: a.ID, Task: -1, Slot: -1, Item: -1})
	if h.cfg.OnRetire != nil {
		h.cfg.OnRetire(a.ID)
	}
	return nil
}

// Run drives the simulation until every submitted application retires.
// It fails if a mechanical error occurred or applications are still
// pending at the horizon.
func (h *Hypervisor) Run() ([]Result, error) {
	h.eng.RunUntil(h.cfg.Horizon)
	return h.Collect()
}

// Collect returns results after the engine has been driven externally
// (e.g. by a cluster coordinating several hypervisors on one engine).
// It fails if a mechanical error occurred or applications remain.
func (h *Hypervisor) Collect() ([]Result, error) {
	if h.err != nil {
		return nil, h.err
	}
	if len(h.results) != len(h.apps) {
		var stuck []string
		for _, a := range h.apps {
			if !a.Retired() {
				stuck = append(stuck, a.String())
			}
		}
		return nil, fmt.Errorf("hv: %d/%d applications unfinished at horizon %v under %s: %v",
			len(stuck), len(h.apps), h.cfg.Horizon, h.policy.Name(), stuck)
	}
	slices.SortFunc(h.results, func(x, y Result) int {
		if x.AppID < y.AppID {
			return -1
		}
		if x.AppID > y.AppID {
			return 1
		}
		return 0
	})
	return h.results, nil
}

// Utilization reports the fraction of slot-time actually occupied
// (reconfiguration or compute) over the window [0, until]. Low
// utilization under the no-sharing baseline is the resource-efficiency
// argument that motivates fine-grained sharing in the first place.
func (h *Hypervisor) Utilization(until sim.Time) float64 {
	if until <= 0 || len(h.slotBusy) == 0 {
		return 0
	}
	var busy sim.Duration
	for _, b := range h.slotBusy {
		busy += b
	}
	return float64(busy) / (float64(until) * float64(len(h.slotBusy)))
}

// OutstandingEstimate sums the HLS-estimated remaining work of all
// pending applications — the load signal a multi-FPGA dispatcher uses.
// Applications submitted for the current instant whose arrival event has
// not yet fired are included: without them, simultaneous dispatch
// decisions would not see each other and would all pick the same board.
func (h *Hypervisor) OutstandingEstimate() sim.Duration {
	var total sim.Duration
	for _, a := range h.pending {
		total += a.RemainingEstimate()
	}
	for _, a := range h.transit {
		total += a.RemainingEstimate()
	}
	return total
}

// PendingCount reports applications submitted and not yet retired,
// including submissions whose arrival event has not yet fired (see
// OutstandingEstimate for why in-transit work must count).
func (h *Hypervisor) PendingCount() int { return len(h.pending) + len(h.transit) }

// SingleSlotLatency is the latency of the application when given one slot
// and no contention: every task reconfigured once and run serially over
// the batch. The deadline analysis scales this (Section 5.4).
func (h *Hypervisor) SingleSlotLatency(g *taskgraph.Graph, batch int) sim.Duration {
	return SingleSlotLatencyFor(h.cfg.Board, g, batch)
}

// SingleSlotLatencyFor computes the single-slot latency for a board
// configuration without instantiating a hypervisor. The compute term
// scales with the board's fabric latency factor; the reconfiguration
// term follows its configuration bandwidths.
func SingleSlotLatencyFor(board fpga.Config, g *taskgraph.Graph, batch int) sim.Duration {
	bytes := float64(bitstream.SlotImageBytes + bitstream.HeaderBytes)
	r := sim.Seconds(bytes/board.SDBytesPerSec) + sim.Seconds(bytes/board.CAPBytesPerSec)
	return sim.Duration(g.NumTasks())*r + stretchDur(sim.Duration(batch)*g.TotalWork(), board.LatencyScale)
}
