// Package admit implements online admission control for the multi-FPGA
// front-ends (internal/cluster, internal/faas).
//
// The schedulers in internal/sched arbitrate among *admitted*
// applications; nothing bounds what the front-ends accept in the first
// place, so under overload the system's backlog — and with it the
// response time of everything already admitted — grows without limit.
// The controller here sits in front of dispatch and applies four
// policies, all online at arrival time:
//
//   - a bounded admission queue: admitted-but-unfinished work never
//     exceeds Capacity;
//   - priority-aware load shedding: when the queue is full, the
//     lowest-priority, newest waiting submission (possibly the arrival
//     itself) is rejected;
//   - deadline admission: an arrival whose HLS-estimated completion,
//     given the current outstanding work, cannot meet its SLO is
//     rejected immediately rather than admitted to miss it;
//   - per-tenant quotas and weighted fair sharing of admission slots:
//     hard caps always apply, and when the queue is full tenants over
//     their weighted share are shed first.
//
// The controller is pure decision logic driven by its caller at
// simulation instants; it schedules nothing itself, so front-ends stay
// deterministic and bit-for-bit reproducible.
package admit

import (
	"fmt"

	"nimblock/internal/obs"
	"nimblock/internal/sim"
)

// Config parameterizes a Controller.
type Config struct {
	// Capacity bounds admitted-but-unfinished submissions (waiting in
	// the admission queue plus dispatched to boards). 0 means unbounded:
	// no shedding ever occurs.
	Capacity int
	// MaxInFlight bounds submissions dispatched to boards concurrently;
	// admitted work beyond it waits in the admission queue, where a
	// higher-priority arrival can still displace it. 0 means unbounded —
	// admitted work dispatches immediately and shedding degenerates to
	// tail drop (the arrival itself is rejected when full).
	MaxInFlight int
	// DeadlineFactor, when positive, arms deadline admission for
	// requests that carry no explicit SLO: the implied SLO is
	// DeadlineFactor x the request's single-slot estimate, the same
	// slack notion as the paper's deadline analysis (Section 5.4).
	DeadlineFactor float64
	// Quotas caps concurrently admitted submissions per tenant; tenants
	// without an entry are uncapped. Applies before any queue-capacity
	// consideration.
	Quotas map[string]int
	// Weights sets tenants' relative shares of a full admission queue.
	// Unlisted tenants weigh 1. While the queue is not full every tenant
	// may exceed its share (the controller is work-conserving); once
	// full, entries of over-share tenants are shed first.
	Weights map[string]float64
	// Registry, when non-nil, receives admission counters and queue
	// gauges (admit_* instruments) for live observation.
	Registry *obs.Registry
}

// Outcome classifies one admission decision.
type Outcome int

const (
	// Admitted means the submission entered the admission queue.
	Admitted Outcome = iota
	// Shed means the queue was full and the submission lost the
	// priority/fair-share comparison (or displaced someone else who
	// did — see Offer's evicted result).
	Shed
	// RejectedDeadline means the estimated completion missed the SLO.
	RejectedDeadline
	// RejectedQuota means the tenant's hard quota was exhausted.
	RejectedQuota
)

// String names the outcome for results and reports.
func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case Shed:
		return "shed"
	case RejectedDeadline:
		return "deadline"
	case RejectedQuota:
		return "quota"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Request describes one arrival for admission.
type Request struct {
	// Tenant attributes the work for quotas and fair sharing; "" is the
	// shared default tenant.
	Tenant string
	// Priority is the submission's priority level (higher wins shed
	// comparisons).
	Priority int
	// Estimate is the HLS-derived single-slot work estimate.
	Estimate sim.Duration
	// SLO is the latency budget measured from arrival; 0 derives one
	// from Config.DeadlineFactor (or disables the deadline test when
	// that is unset).
	SLO sim.Duration
	// Arrival is the admission instant.
	Arrival sim.Time
	// Payload is opaque caller state echoed on the Ticket (the
	// front-end's submission record).
	Payload any
}

// Ticket is the handle for one admitted submission.
type Ticket struct {
	id         int64
	req        Request
	dispatched bool
}

// Request returns the request the ticket was issued for.
func (t *Ticket) Request() Request { return t.req }

// Stats aggregates a controller's lifetime accounting. Conservation
// invariant: Offered == Admitted + Shed + RejectedDeadline +
// RejectedQuota, and Admitted == Completed once the system drains.
type Stats struct {
	Offered          int
	Admitted         int
	Shed             int // includes Evicted
	Evicted          int // admitted first, displaced later
	RejectedDeadline int
	RejectedQuota    int
	Dispatched       int
	Completed        int
	PeakQueueDepth   int
	PeakInFlight     int
}

// Controller makes admission decisions and tracks the admission queue.
// It is not safe for concurrent use; like everything else in the
// simulation it runs single-threaded on the virtual clock.
type Controller struct {
	cfg      Config
	queue    []*Ticket // admitted, not yet dispatched, arrival order
	inFlight int
	usage    map[string]int // tenant -> waiting + in-flight
	nextID   int64
	stats    Stats

	cAdmitted, cShed, cDeadline, cQuota *obs.Counter
	cDispatched, cCompleted             *obs.Counter
	gQueue, gInFlight                   *obs.Gauge
}

// New validates the configuration and builds a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("admit: negative capacity %d", cfg.Capacity)
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("admit: negative max in-flight %d", cfg.MaxInFlight)
	}
	if cfg.DeadlineFactor < 0 {
		return nil, fmt.Errorf("admit: negative deadline factor %g", cfg.DeadlineFactor)
	}
	for t, q := range cfg.Quotas {
		if q < 1 {
			return nil, fmt.Errorf("admit: tenant %q quota %d < 1", t, q)
		}
	}
	for t, w := range cfg.Weights {
		if w <= 0 {
			return nil, fmt.Errorf("admit: tenant %q weight %g <= 0", t, w)
		}
	}
	c := &Controller{cfg: cfg, usage: map[string]int{}}
	if r := cfg.Registry; r != nil {
		c.cAdmitted = r.Counter("admit_admitted_total", "submissions admitted to the queue")
		c.cShed = r.Counter("admit_shed_total", "submissions shed at a full admission queue (including evictions)")
		c.cDeadline = r.Counter("admit_rejected_deadline_total", "submissions rejected because their SLO was unreachable")
		c.cQuota = r.Counter("admit_rejected_quota_total", "submissions rejected on an exhausted tenant quota")
		c.cDispatched = r.Counter("admit_dispatched_total", "admitted submissions released to boards")
		c.cCompleted = r.Counter("admit_completed_total", "dispatched submissions that completed")
		c.gQueue = r.Gauge("admit_queue_depth", "submissions admitted and waiting for dispatch")
		c.gInFlight = r.Gauge("admit_inflight", "submissions dispatched and not yet completed")
	}
	return c, nil
}

// Offer decides one arrival. load is the caller's view of outstanding
// board work (the least-loaded board's estimate). On Admitted the
// returned ticket is queued — the caller should immediately drain
// Dispatchable. evicted, when non-nil, is a previously admitted,
// not-yet-dispatched ticket displaced to make room: the caller must
// record its submission as shed.
func (c *Controller) Offer(req Request, load sim.Duration) (t *Ticket, evicted *Ticket, out Outcome) {
	c.stats.Offered++
	if q, ok := c.cfg.Quotas[req.Tenant]; ok && c.usage[req.Tenant] >= q {
		c.stats.RejectedQuota++
		c.inc(c.cQuota)
		return nil, nil, RejectedQuota
	}
	if slo := c.slo(req); slo > 0 {
		// Everything admitted ahead of this arrival serializes in front
		// of it in the worst case: the least-loaded board's outstanding
		// work plus the queue's own backlog.
		if load+c.queuedEstimate()+req.Estimate > slo {
			c.stats.RejectedDeadline++
			c.inc(c.cDeadline)
			return nil, nil, RejectedDeadline
		}
	}
	if c.cfg.Capacity > 0 && len(c.queue)+c.inFlight >= c.cfg.Capacity {
		victim := c.pickVictim(req)
		if victim == nil {
			c.stats.Shed++
			c.inc(c.cShed)
			return nil, nil, Shed
		}
		c.remove(victim)
		c.usage[victim.req.Tenant]--
		c.stats.Shed++
		c.stats.Evicted++
		c.inc(c.cShed)
		evicted = victim
	}
	c.nextID++
	t = &Ticket{id: c.nextID, req: req}
	c.queue = append(c.queue, t)
	c.usage[req.Tenant]++
	c.stats.Admitted++
	c.inc(c.cAdmitted)
	if d := len(c.queue); d > c.stats.PeakQueueDepth {
		c.stats.PeakQueueDepth = d
	}
	c.gauges()
	return t, evicted, Admitted
}

// Dispatchable pops tickets cleared to dispatch now — highest priority
// first, oldest arrival breaking ties — until the in-flight window
// (MaxInFlight) is full. The caller owns dispatching them and must
// Release each one on completion.
func (c *Controller) Dispatchable() []*Ticket {
	var out []*Ticket
	for len(c.queue) > 0 && (c.cfg.MaxInFlight == 0 || c.inFlight < c.cfg.MaxInFlight) {
		best := 0
		for i := 1; i < len(c.queue); i++ {
			if c.before(c.queue[i], c.queue[best]) {
				best = i
			}
		}
		t := c.queue[best]
		c.queue = append(c.queue[:best], c.queue[best+1:]...)
		t.dispatched = true
		c.inFlight++
		c.stats.Dispatched++
		c.inc(c.cDispatched)
		if c.inFlight > c.stats.PeakInFlight {
			c.stats.PeakInFlight = c.inFlight
		}
		out = append(out, t)
	}
	if out != nil {
		c.gauges()
	}
	return out
}

// before orders dispatch: higher priority, then earlier arrival, then
// admission order.
func (c *Controller) before(a, b *Ticket) bool {
	if a.req.Priority != b.req.Priority {
		return a.req.Priority > b.req.Priority
	}
	if a.req.Arrival != b.req.Arrival {
		return a.req.Arrival < b.req.Arrival
	}
	return a.id < b.id
}

// Release retires a dispatched ticket, freeing its admission slot. The
// caller should drain Dispatchable afterwards: the freed slot may clear
// queued work for dispatch.
func (c *Controller) Release(t *Ticket) {
	if t == nil || !t.dispatched {
		return
	}
	t.dispatched = false
	c.inFlight--
	c.usage[t.req.Tenant]--
	c.stats.Completed++
	c.inc(c.cCompleted)
	c.gauges()
}

// QueueDepth reports submissions admitted and waiting for dispatch.
func (c *Controller) QueueDepth() int { return len(c.queue) }

// InFlight reports submissions dispatched and not yet completed.
func (c *Controller) InFlight() int { return c.inFlight }

// Stats returns a copy of the lifetime counters.
func (c *Controller) Stats() Stats { return c.stats }

// slo resolves a request's effective latency budget.
func (c *Controller) slo(req Request) sim.Duration {
	if req.SLO > 0 {
		return req.SLO
	}
	if c.cfg.DeadlineFactor > 0 {
		return sim.Duration(float64(req.Estimate) * c.cfg.DeadlineFactor)
	}
	return 0
}

// queuedEstimate sums the single-slot estimates of waiting tickets.
func (c *Controller) queuedEstimate() sim.Duration {
	var total sim.Duration
	for _, t := range c.queue {
		total += t.req.Estimate
	}
	return total
}

// pickVictim chooses what to shed when the queue is full: among the
// waiting tickets and the newcomer, the entry of an over-share tenant
// loses first, then the lowest priority, then the newest arrival. A nil
// result means the newcomer itself is the victim (reject it). Already
// dispatched work is never a candidate — boards cannot take a
// submission back.
func (c *Controller) pickVictim(req Request) *Ticket {
	worst := (*Ticket)(nil) // nil stands for the newcomer
	worstOver := c.overShare(req.Tenant, c.usage[req.Tenant]+1)
	worstPrio := req.Priority
	worstArrival := req.Arrival
	worstID := c.nextID + 1 // newer than everything queued
	for _, t := range c.queue {
		over := c.overShare(t.req.Tenant, c.usage[t.req.Tenant])
		switch {
		case over != worstOver:
			if !over {
				continue
			}
		case t.req.Priority != worstPrio:
			if t.req.Priority > worstPrio {
				continue
			}
		case t.req.Arrival != worstArrival:
			if t.req.Arrival < worstArrival {
				continue
			}
		case t.id < worstID:
			continue
		}
		worst, worstOver, worstPrio, worstArrival, worstID = t, over, t.req.Priority, t.req.Arrival, t.id
	}
	return worst
}

// overShare reports whether a tenant holding `usage` admission slots
// exceeds its weighted fair share of the queue capacity. Shares are
// computed over tenants currently holding slots (weight 1 unless
// configured), so a lone tenant always owns the whole queue and fair
// sharing only bites under actual multi-tenant contention.
func (c *Controller) overShare(tenant string, usage int) bool {
	if c.cfg.Capacity == 0 {
		return false
	}
	var sum float64
	active := 0
	seen := false
	for t, n := range c.usage {
		if n <= 0 && t != tenant {
			continue
		}
		if t == tenant {
			seen = true
		}
		active++
		sum += c.weight(t)
	}
	if !seen {
		active++
		sum += c.weight(tenant)
	}
	if active < 2 {
		return false
	}
	share := float64(c.cfg.Capacity) * c.weight(tenant) / sum
	return float64(usage) > share
}

// weight looks up a tenant's configured weight (default 1).
func (c *Controller) weight(tenant string) float64 {
	if w, ok := c.cfg.Weights[tenant]; ok {
		return w
	}
	return 1
}

// remove deletes a ticket from the waiting queue.
func (c *Controller) remove(victim *Ticket) {
	for i, t := range c.queue {
		if t == victim {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// inc bumps a counter when metrics are wired.
func (c *Controller) inc(ctr *obs.Counter) {
	if ctr != nil {
		ctr.Inc()
	}
}

// gauges refreshes the queue-depth and in-flight gauges.
func (c *Controller) gauges() {
	if c.gQueue != nil {
		c.gQueue.Set(float64(len(c.queue)))
	}
	if c.gInFlight != nil {
		c.gInFlight.Set(float64(c.inFlight))
	}
}
