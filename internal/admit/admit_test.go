package admit

import (
	"strings"
	"testing"

	"nimblock/internal/obs"
	"nimblock/internal/sim"
)

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func req(prio int, arrival sim.Time) Request {
	return Request{Priority: prio, Estimate: sim.Second, Arrival: arrival}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{Capacity: -1},
		{MaxInFlight: -2},
		{DeadlineFactor: -0.5},
		{Quotas: map[string]int{"a": 0}},
		{Weights: map[string]float64{"a": 0}},
		{Weights: map[string]float64{"a": -3}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestUnboundedAdmitsEverything(t *testing.T) {
	c := mustNew(t, Config{})
	for i := 0; i < 100; i++ {
		_, evicted, out := c.Offer(req(1, sim.Time(i)), 0)
		if out != Admitted || evicted != nil {
			t.Fatalf("offer %d: %v evicted=%v", i, out, evicted)
		}
	}
	if got := len(c.Dispatchable()); got != 100 {
		t.Fatalf("dispatched %d, want 100", got)
	}
	if s := c.Stats(); s.Offered != 100 || s.Admitted != 100 || s.Dispatched != 100 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCapacityTailDrop(t *testing.T) {
	// No MaxInFlight: everything admitted dispatches immediately, so a
	// full queue can only drop the arrival itself.
	c := mustNew(t, Config{Capacity: 2})
	for i := 0; i < 2; i++ {
		if _, _, out := c.Offer(req(9, sim.Time(i)), 0); out != Admitted {
			t.Fatalf("offer %d: %v", i, out)
		}
		c.Dispatchable()
	}
	// Higher priority than everything in flight — still shed: dispatched
	// work cannot be taken back from a board.
	if _, evicted, out := c.Offer(req(9, 2), 0); out != Shed || evicted != nil {
		t.Fatalf("full offer: %v evicted=%v", out, evicted)
	}
	if s := c.Stats(); s.Shed != 1 || s.Evicted != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPriorityEviction(t *testing.T) {
	// Window of 1: one dispatched, rest wait and are evictable.
	c := mustNew(t, Config{Capacity: 3, MaxInFlight: 1})
	c.Offer(req(3, 0), 0)
	c.Dispatchable() // now in flight
	tLow, _, _ := c.Offer(req(1, 1), 0)
	c.Offer(req(3, 2), 0)
	// Queue full. A high-priority arrival displaces the low-priority
	// waiter, not the same-priority one.
	tNew, evicted, out := c.Offer(req(9, 3), 0)
	if out != Admitted || evicted != tLow || tNew == nil {
		t.Fatalf("out=%v evicted=%v", out, evicted)
	}
	// Another low-priority arrival now loses to everything queued.
	if _, evicted, out := c.Offer(req(1, 4), 0); out != Shed || evicted != nil {
		t.Fatalf("out=%v evicted=%v", out, evicted)
	}
	s := c.Stats()
	if s.Shed != 2 || s.Evicted != 1 || s.Admitted != 4 {
		t.Fatalf("stats %+v", s)
	}
}

func TestNewestSameePriorityShedFirst(t *testing.T) {
	c := mustNew(t, Config{Capacity: 2, MaxInFlight: 0})
	// MaxInFlight 0 dispatches instantly; use a window of 2 via capacity
	// by not draining: keep both waiting.
	c = mustNew(t, Config{Capacity: 2, MaxInFlight: 1})
	c.Offer(req(3, 0), 0)
	c.Dispatchable()
	tOld, _, _ := c.Offer(req(3, 1), 0)
	// Same priority as the waiter but newer: the arrival is the victim.
	if _, evicted, out := c.Offer(req(3, 2), 0); out != Shed || evicted != nil {
		t.Fatalf("newest not shed: %v %v", out, evicted)
	}
	_ = tOld
}

func TestDispatchOrderPriorityThenArrival(t *testing.T) {
	c := mustNew(t, Config{MaxInFlight: 10})
	a, _, _ := c.Offer(req(1, 0), 0)
	b, _, _ := c.Offer(req(9, 1), 0)
	d, _, _ := c.Offer(req(9, 2), 0)
	e, _, _ := c.Offer(req(3, 3), 0)
	got := c.Dispatchable()
	want := []*Ticket{b, d, e, a}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %d: got prio %d arrival %v", i, got[i].req.Priority, got[i].req.Arrival)
		}
	}
}

func TestWindowRefillsOnRelease(t *testing.T) {
	c := mustNew(t, Config{Capacity: 4, MaxInFlight: 2})
	for i := 0; i < 4; i++ {
		if _, _, out := c.Offer(req(3, sim.Time(i)), 0); out != Admitted {
			t.Fatalf("offer %d: %v", i, out)
		}
	}
	first := c.Dispatchable()
	if len(first) != 2 || c.QueueDepth() != 2 || c.InFlight() != 2 {
		t.Fatalf("window: %d dispatched, depth %d, inflight %d", len(first), c.QueueDepth(), c.InFlight())
	}
	if more := c.Dispatchable(); more != nil {
		t.Fatalf("overdispatched %d", len(more))
	}
	c.Release(first[0])
	if more := c.Dispatchable(); len(more) != 1 {
		t.Fatalf("release freed %d slots", len(more))
	}
	// Releasing an undispatched or nil ticket is a no-op.
	c.Release(nil)
	c.Release(&Ticket{})
	if c.InFlight() != 2 {
		t.Fatalf("inflight %d after no-op releases", c.InFlight())
	}
}

func TestDeadlineAdmission(t *testing.T) {
	c := mustNew(t, Config{})
	r := Request{Priority: 3, Estimate: sim.Second, SLO: 3 * sim.Second}
	// Load low enough: admitted.
	if _, _, out := c.Offer(r, sim.Second); out != Admitted {
		t.Fatalf("reachable SLO rejected: %v", out)
	}
	// Outstanding load alone blows the budget.
	if _, _, out := c.Offer(r, 5*sim.Second); out != RejectedDeadline {
		t.Fatalf("unreachable SLO admitted: %v", out)
	}
	// Queued-ahead work counts too: the first admission is still queued.
	if _, _, out := c.Offer(r, sim.Duration(1500*sim.Millisecond)); out != RejectedDeadline {
		t.Fatalf("queued-ahead work ignored: %v", out)
	}
	if s := c.Stats(); s.RejectedDeadline != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDeadlineFactorDerivesSLO(t *testing.T) {
	c := mustNew(t, Config{DeadlineFactor: 2})
	r := Request{Priority: 3, Estimate: sim.Second} // implied SLO 2s
	if _, _, out := c.Offer(r, sim.Duration(500*sim.Millisecond)); out != Admitted {
		t.Fatalf("out=%v", out)
	}
	if _, _, out := c.Offer(r, 10*sim.Second); out != RejectedDeadline {
		t.Fatalf("out=%v", out)
	}
}

func TestQuota(t *testing.T) {
	c := mustNew(t, Config{Quotas: map[string]int{"t1": 2}})
	mk := func(tenant string) Request {
		return Request{Tenant: tenant, Priority: 3, Estimate: sim.Second}
	}
	if _, _, out := c.Offer(mk("t1"), 0); out != Admitted {
		t.Fatal(out)
	}
	if _, _, out := c.Offer(mk("t1"), 0); out != Admitted {
		t.Fatal(out)
	}
	if _, _, out := c.Offer(mk("t1"), 0); out != RejectedQuota {
		t.Fatalf("quota not enforced: %v", out)
	}
	// Other tenants are unaffected.
	if _, _, out := c.Offer(mk("t2"), 0); out != Admitted {
		t.Fatal(out)
	}
	// Completion frees quota.
	tk := c.Dispatchable()[0]
	c.Release(tk)
	if _, _, out := c.Offer(mk("t1"), 0); out != Admitted {
		t.Fatalf("freed quota not reusable: %v", out)
	}
}

func TestWeightedFairShareShedding(t *testing.T) {
	// Heavy holds 3 of 4 slots; light has weight 3 vs heavy's 1, so
	// heavy's share of a full queue is 1 slot and its queued entries are
	// shed first even at higher priority.
	c := mustNew(t, Config{Capacity: 4, MaxInFlight: 1, Weights: map[string]float64{"light": 3, "heavy": 1}})
	c.Offer(Request{Tenant: "heavy", Priority: 9, Estimate: sim.Second, Arrival: 0}, 0)
	c.Dispatchable()
	h2, _, _ := c.Offer(Request{Tenant: "heavy", Priority: 9, Estimate: sim.Second, Arrival: 1}, 0)
	h3, _, _ := c.Offer(Request{Tenant: "heavy", Priority: 9, Estimate: sim.Second, Arrival: 2}, 0)
	c.Offer(Request{Tenant: "light", Priority: 1, Estimate: sim.Second, Arrival: 3}, 0)
	// Queue full (1 in flight + 3 waiting). A light arrival displaces
	// heavy's newest waiter despite lower priority: heavy is over its
	// weighted share, light is not.
	_, evicted, out := c.Offer(Request{Tenant: "light", Priority: 1, Estimate: sim.Second, Arrival: 4}, 0)
	if out != Admitted || evicted != h3 {
		t.Fatalf("out=%v evicted=%v (want %v)", out, evicted, h3)
	}
	_ = h2
	if s := c.Stats(); s.Evicted != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSingleTenantOwnsWholeQueue(t *testing.T) {
	// With one tenant, fair sharing must never bite: shedding falls back
	// to pure priority/newest comparisons.
	c := mustNew(t, Config{Capacity: 2, MaxInFlight: 1})
	c.Offer(req(1, 0), 0)
	c.Dispatchable()
	c.Offer(req(1, 1), 0)
	if _, evicted, out := c.Offer(req(9, 2), 0); out != Admitted || evicted == nil {
		t.Fatalf("out=%v evicted=%v", out, evicted)
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustNew(t, Config{Capacity: 1, Registry: reg})
	c.Offer(req(3, 0), 0)
	c.Offer(req(3, 1), 0) // shed: tail drop at capacity 1
	c.Dispatchable()
	snap := reg.Snapshot()
	if snap.Counters["admit_admitted_total"] != 1 || snap.Counters["admit_shed_total"] != 1 {
		t.Fatalf("counters %+v", snap.Counters)
	}
	if snap.Gauges["admit_inflight"] != 1 || snap.Gauges["admit_queue_depth"] != 0 {
		t.Fatalf("gauges %+v", snap.Gauges)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "admit_shed_total 1") {
		t.Fatalf("prometheus exposition missing shed counter:\n%s", sb.String())
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, tc := range []struct {
		o    Outcome
		want string
	}{{Admitted, "admitted"}, {Shed, "shed"}, {RejectedDeadline, "deadline"}, {RejectedQuota, "quota"}, {Outcome(42), "Outcome(42)"}} {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("%d: %q != %q", int(tc.o), got, tc.want)
		}
	}
}

func TestConservationCounters(t *testing.T) {
	c := mustNew(t, Config{Capacity: 3, MaxInFlight: 2, DeadlineFactor: 4, Quotas: map[string]int{"q": 1}})
	var tickets []*Ticket
	for i := 0; i < 50; i++ {
		tenant := ""
		if i%7 == 0 {
			tenant = "q"
		}
		r := Request{Tenant: tenant, Priority: 1 + i%9, Estimate: sim.Second, Arrival: sim.Time(i)}
		_, _, _ = c.Offer(r, sim.Duration(i%6)*sim.Second)
		tickets = append(tickets, c.Dispatchable()...)
		if i%3 == 0 && len(tickets) > 0 {
			c.Release(tickets[0])
			tickets = tickets[1:]
		}
	}
	s := c.Stats()
	if s.Offered != 50 {
		t.Fatalf("offered %d", s.Offered)
	}
	if got := s.Admitted + s.Shed - s.Evicted + s.RejectedDeadline + s.RejectedQuota; got != s.Offered {
		t.Fatalf("conservation: %d != offered %d (%+v)", got, s.Offered, s)
	}
	if s.Admitted != s.Evicted+s.Dispatched+c.QueueDepth() {
		t.Fatalf("admitted %d != evicted %d + dispatched %d + queued %d", s.Admitted, s.Evicted, s.Dispatched, c.QueueDepth())
	}
	if s.Dispatched != s.Completed+c.InFlight() {
		t.Fatalf("dispatched %d != completed %d + inflight %d", s.Dispatched, s.Completed, c.InFlight())
	}
	if s.PeakQueueDepth > 3 || len(tickets) > 2 {
		t.Fatalf("bounds violated: peak %d inflight %d", s.PeakQueueDepth, len(tickets))
	}
}
