package svgchart

import (
	"strings"
	"testing"
)

func TestBarChartSVG(t *testing.T) {
	c := BarChart{
		Title:  "Figure 5",
		YLabel: "reduction",
		Groups: []string{"standard", "stress"},
		Series: []BarSeries{
			{Name: "PREMA", Values: []float64{7.2, 7.1}},
			{Name: "Nimblock", Values: []float64{14.2, 14.2}},
		},
	}
	out, err := c.SVG(640, 320)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "Figure 5", "Nimblock", "standard", "<rect"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Two series x two groups = 4 data bars + 2 legend swatches.
	if n := strings.Count(out, "<rect"); n != 6 {
		t.Fatalf("%d rects, want 6", n)
	}
}

func TestBarChartValidation(t *testing.T) {
	if _, err := (BarChart{}).SVG(100, 100); err == nil {
		t.Fatal("empty chart accepted")
	}
	c := BarChart{Groups: []string{"a"}, Series: []BarSeries{{Name: "s", Values: []float64{1, 2}}}}
	if _, err := c.SVG(100, 100); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title:  "Figure 7",
		XLabel: "Ds",
		YLabel: "violations",
		X:      []float64{1, 2, 3, 4},
		Series: []LineSeries{
			{Name: "Nimblock", Y: []float64{0.4, 0.1, 0, 0}},
			{Name: "PREMA", Y: []float64{0.6, 0.4, 0.2, 0.1}},
		},
	}
	out, err := c.SVG(640, 320)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<polyline", "Ds", "Figure 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Fatalf("%d polylines, want 2", n)
	}
}

func TestLineChartValidation(t *testing.T) {
	if _, err := (LineChart{X: []float64{1}}).SVG(100, 100); err == nil {
		t.Fatal("single-sample chart accepted")
	}
	c := LineChart{X: []float64{2, 1}, Series: []LineSeries{{Name: "s", Y: []float64{1, 2}}}}
	if _, err := c.SVG(100, 100); err == nil {
		t.Fatal("non-increasing x accepted")
	}
	c = LineChart{X: []float64{1, 2}, Series: []LineSeries{{Name: "s", Y: []float64{1}}}}
	if _, err := c.SVG(100, 100); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestEscaping(t *testing.T) {
	c := BarChart{
		Title:  `<script>"x"&</script>`,
		Groups: []string{"g"},
		Series: []BarSeries{{Name: "s", Values: []float64{1}}},
	}
	out, err := c.SVG(200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "<script>") {
		t.Fatal("title not escaped")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{0.7: 1, 1: 1, 1.2: 2, 3: 5, 7: 10, 14: 20, 40: 50, 70: 100, 0: 1}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestGanttSVG(t *testing.T) {
	g := Gantt{
		Title: "occupancy",
		Rows:  2,
		End:   10,
		Spans: []Span{
			{Row: 0, From: 0, To: 1, Kind: 'R', Label: "app1"},
			{Row: 0, From: 1, To: 6, Kind: '#', Label: "app1"},
			{Row: 1, From: 2, To: 3, Kind: 'R', Label: "app2"},
			{Row: 1, From: 3, To: 9, Kind: '#', Label: "app2"},
		},
	}
	out, err := g.SVG(800)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"occupancy", "s0", "s1", "app1", "app2", "#bbb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %q", want)
		}
	}
	if n := strings.Count(out, "<rect"); n != 6 { // 4 spans + 2 legend swatches
		t.Fatalf("%d rects, want 6", n)
	}
}

func TestGanttValidation(t *testing.T) {
	if _, err := (Gantt{Rows: 0, End: 1}).SVG(100); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := (Gantt{Rows: 1, End: 0}).SVG(100); err == nil {
		t.Fatal("zero end accepted")
	}
	g := Gantt{Rows: 1, End: 1, Spans: []Span{{Row: 5, From: 0, To: 1}}}
	if _, err := g.SVG(100); err == nil {
		t.Fatal("out-of-range span accepted")
	}
	g = Gantt{Rows: 1, End: 1, Spans: []Span{{Row: 0, From: 1, To: 0}}}
	if _, err := g.SVG(100); err == nil {
		t.Fatal("inverted span accepted")
	}
}
