package svgchart

import (
	"fmt"
	"strings"
)

// Span is one busy interval on a Gantt row.
type Span struct {
	Row   int     // slot index
	From  float64 // seconds
	To    float64
	Kind  byte // 'R' reconfiguration, '#' compute
	Label string
}

// Gantt renders per-slot occupancy as an SVG timeline: reconfiguration
// spans in grey, compute spans coloured per application label.
type Gantt struct {
	Title string
	Rows  int
	End   float64 // seconds
	Spans []Span
}

// SVG renders the chart.
func (g Gantt) SVG(w int) (string, error) {
	if g.Rows < 1 || g.End <= 0 {
		return "", fmt.Errorf("svgchart: gantt needs rows and a positive end time")
	}
	rowH := 22.0
	h := int(marginTop + rowH*float64(g.Rows) + marginBottom)
	plotW := float64(w) - marginLeft - marginRight
	px := func(t float64) float64 { return marginLeft + plotW*t/g.End }

	// Stable colour per label.
	colorOf := map[string]string{}
	next := 0
	color := func(label string) string {
		if c, ok := colorOf[label]; ok {
			return c
		}
		c := palette[next%len(palette)]
		colorOf[label] = c
		next++
		return c
	}

	var b strings.Builder
	header(&b, w, h, g.Title)
	for r := 0; r < g.Rows; r++ {
		y := marginTop + rowH*float64(r)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`,
			marginLeft, y+rowH, marginLeft+plotW, y+rowH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end" fill="#555">s%d</text>`,
			marginLeft-6, y+rowH-6, r)
	}
	for _, s := range g.Spans {
		if s.Row < 0 || s.Row >= g.Rows || s.To <= s.From {
			return "", fmt.Errorf("svgchart: bad span %+v", s)
		}
		y := marginTop + rowH*float64(s.Row) + 3
		x0, x1 := px(s.From), px(s.To)
		if x1-x0 < 1 {
			x1 = x0 + 1
		}
		fill := "#bbb" // reconfiguration
		if s.Kind == '#' {
			fill = color(s.Label)
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %.3f-%.3fs</title></rect>`,
			x0, y, x1-x0, rowH-6, fill, esc(s.Label), s.From, s.To)
	}
	// Time axis labels.
	for _, t := range []float64{0, g.End / 2, g.End} {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#333">%ss</text>`,
			px(t), marginTop+rowH*float64(g.Rows)+16, trimFloat(t))
	}
	// Legend from compute labels.
	var names []string
	for label := range colorOf {
		names = append(names, label)
	}
	// Deterministic legend order: first-seen order is lost in map
	// iteration, so rebuild from spans.
	names = names[:0]
	seen := map[string]bool{}
	for _, s := range g.Spans {
		if s.Kind == '#' && !seen[s.Label] {
			seen[s.Label] = true
			names = append(names, s.Label)
		}
	}
	legend(&b, w, h, names)
	b.WriteString("</svg>")
	return b.String(), nil
}
