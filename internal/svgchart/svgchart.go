// Package svgchart renders minimal, dependency-free SVG charts for the
// HTML experiment report: grouped bar charts for the figure-5/6 style
// comparisons and line charts for the deadline sweeps.
package svgchart

import (
	"fmt"
	"math"
	"strings"
)

// palette cycles through series colours.
var palette = []string{"#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2"}

// BarSeries is one legend entry of a grouped bar chart.
type BarSeries struct {
	Name   string
	Values []float64 // one per group
}

// BarChart is a grouped bar chart.
type BarChart struct {
	Title  string
	YLabel string
	Groups []string
	Series []BarSeries
}

// LineSeries is one line of a line chart.
type LineSeries struct {
	Name string
	Y    []float64 // sampled on the chart's X grid
}

// LineChart plots series over a shared numeric X grid.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []LineSeries
}

const (
	marginLeft   = 60.0
	marginRight  = 16.0
	marginTop    = 34.0
	marginBottom = 46.0
)

// esc escapes text nodes.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func maxOf(vals ...float64) float64 {
	m := 0.0
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// niceCeil rounds a positive value up to 1/2/5 x 10^k.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	exp := math.Floor(math.Log10(v))
	base := math.Pow(10, exp)
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*base {
			return m * base
		}
	}
	return 10 * base
}

// header emits the SVG prologue with title and axes frame.
func header(b *strings.Builder, w, h int, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	fmt.Fprintf(b, `<text x="%d" y="18" font-size="14" font-weight="bold">%s</text>`, 10, esc(title))
}

// yAxis draws gridlines and labels for [0, yMax].
func yAxis(b *strings.Builder, w, h int, yMax float64, label string) {
	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom
	ticks := 5
	for i := 0; i <= ticks; i++ {
		v := yMax * float64(i) / float64(ticks)
		y := marginTop + plotH - plotH*float64(i)/float64(ticks)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`,
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="end" fill="#555">%s</text>`,
			marginLeft-6, y+4, esc(trimFloat(v)))
	}
	if label != "" {
		fmt.Fprintf(b, `<text x="14" y="%.1f" transform="rotate(-90 14 %.1f)" text-anchor="middle" fill="#333">%s</text>`,
			marginTop+plotH/2, marginTop+plotH/2, esc(label))
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// legend draws the series legend across the bottom.
func legend(b *strings.Builder, w, h int, names []string) {
	x := marginLeft
	y := float64(h) - 12
	for i, n := range names {
		c := palette[i%len(palette)]
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`, x, y-9, c)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" fill="#333">%s</text>`, x+14, y, esc(n))
		x += 14 + 7*float64(len(n)) + 18
	}
}

// SVG renders the grouped bar chart.
func (c BarChart) SVG(w, h int) (string, error) {
	if len(c.Groups) == 0 || len(c.Series) == 0 {
		return "", fmt.Errorf("svgchart: bar chart needs groups and series")
	}
	var all []float64
	for _, s := range c.Series {
		if len(s.Values) != len(c.Groups) {
			return "", fmt.Errorf("svgchart: series %q has %d values for %d groups", s.Name, len(s.Values), len(c.Groups))
		}
		all = append(all, s.Values...)
	}
	yMax := niceCeil(maxOf(all...))
	var b strings.Builder
	header(&b, w, h, c.Title)
	yAxis(&b, w, h, yMax, c.YLabel)
	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom
	groupW := plotW / float64(len(c.Groups))
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, g := range c.Groups {
		gx := marginLeft + groupW*float64(gi)
		for si, s := range c.Series {
			v := s.Values[gi]
			bh := plotH * v / yMax
			x := gx + groupW*0.1 + barW*float64(si)
			y := marginTop + plotH - bh
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %s</title></rect>`,
				x, y, barW, bh, palette[si%len(palette)], esc(g), esc(s.Name), trimFloat(v))
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#333">%s</text>`,
			gx+groupW/2, marginTop+plotH+16, esc(g))
	}
	names := make([]string, len(c.Series))
	for i, s := range c.Series {
		names[i] = s.Name
	}
	legend(&b, w, h, names)
	b.WriteString("</svg>")
	return b.String(), nil
}

// SVG renders the line chart.
func (c LineChart) SVG(w, h int) (string, error) {
	if len(c.X) < 2 || len(c.Series) == 0 {
		return "", fmt.Errorf("svgchart: line chart needs >= 2 x samples and >= 1 series")
	}
	var all []float64
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return "", fmt.Errorf("svgchart: series %q has %d samples for %d x values", s.Name, len(s.Y), len(c.X))
		}
		all = append(all, s.Y...)
	}
	yMax := niceCeil(maxOf(all...))
	xMin, xMax := c.X[0], c.X[len(c.X)-1]
	if xMax <= xMin {
		return "", fmt.Errorf("svgchart: x grid not increasing")
	}
	var b strings.Builder
	header(&b, w, h, c.Title)
	yAxis(&b, w, h, yMax, c.YLabel)
	plotW := float64(w) - marginLeft - marginRight
	plotH := float64(h) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + plotW*(x-xMin)/(xMax-xMin) }
	py := func(y float64) float64 { return marginTop + plotH - plotH*y/yMax }
	for si, s := range c.Series {
		var pts []string
		for i, x := range c.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"><title>%s</title></polyline>`,
			strings.Join(pts, " "), palette[si%len(palette)], esc(s.Name))
	}
	// X axis labels at the ends and midpoint.
	for _, x := range []float64{xMin, (xMin + xMax) / 2, xMax} {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#333">%s</text>`,
			px(x), marginTop+plotH+16, esc(trimFloat(x)))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#333">%s</text>`,
			marginLeft+plotW/2, marginTop+plotH+32, esc(c.XLabel))
	}
	names := make([]string, len(c.Series))
	for i, s := range c.Series {
		names[i] = s.Name
	}
	legend(&b, w, h, names)
	b.WriteString("</svg>")
	return b.String(), nil
}
