// Package baseline implements the paper's no-sharing, no-virtualization
// comparison point: one application owns the entire FPGA at a time.
//
// Applications wait in the pending queue until it is their turn; the
// active application may use every slot on the board to execute parallel
// branches of its task-graph, but no other application may run until it
// retires. There is no cross-batch pipelining and no preemption.
package baseline

import (
	"nimblock/internal/sched"
)

// Scheduler is the no-sharing policy.
type Scheduler struct {
	active *sched.App
}

// New returns a no-sharing scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "Baseline" }

// Pipelining implements sched.Scheduler: bulk processing only.
func (s *Scheduler) Pipelining() bool { return false }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w sched.World, why sched.Reason) {
	apps := w.Apps()
	if s.active != nil && s.active.Retired() {
		s.active = nil
	}
	if s.active == nil {
		if len(apps) == 0 {
			return
		}
		// First-come, first-served ownership of the whole board.
		s.active = apps[0]
	}
	// Configuring a task can make its successors configurable
	// (reconfiguration prefetch), so re-evaluate after each one.
	for _, slot := range w.FreeSlots() {
		tasks := s.active.ConfigurableTasks()
		if len(tasks) == 0 {
			return
		}
		if err := w.Reconfigure(slot, s.active, tasks[0]); err != nil {
			return
		}
	}
}
