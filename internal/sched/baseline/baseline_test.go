package baseline

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/sched"
	"nimblock/internal/sched/schedtest"
)

func TestIdentity(t *testing.T) {
	s := New()
	if s.Name() != "Baseline" || s.Pipelining() {
		t.Fatalf("identity: name=%q pipelining=%v", s.Name(), s.Pipelining())
	}
}

func TestEmptyWorldNoop(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(4)
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != 0 {
		t.Fatal("scheduled with no apps")
	}
}

func TestWholeBoardForOneApp(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(4)
	a := schedtest.NewApp(t, 1, apps.MustGraph(apps.OpticalFlow), 2, 3, 0)
	b := schedtest.NewApp(t, 2, apps.MustGraph(apps.LeNet), 2, 9, 1)
	w.AppList = []*sched.App{a, b}
	s.Schedule(w, sched.ReasonArrival)
	// Only the first-arrived app is scheduled, even though the second
	// has higher priority.
	for _, rc := range w.Reconfigs {
		if rc[:len("OpticalFlow")] != "OpticalFlow" {
			t.Fatalf("baseline scheduled non-active app: %v", w.Reconfigs)
		}
	}
	if a.SlotsUsed() == 0 {
		t.Fatal("active app got no slots")
	}
	if b.SlotsUsed() != 0 {
		t.Fatal("second app shared the board")
	}
}

func TestAdvancesAfterRetire(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(4)
	a := schedtest.NewApp(t, 1, apps.MustGraph(apps.LeNet), 1, 3, 0)
	b := schedtest.NewApp(t, 2, apps.MustGraph(apps.LeNet), 1, 3, 1)
	w.AppList = []*sched.App{a, b}
	// Drive app a to completion.
	for round := 0; round < 10 && !a.Done(); round++ {
		s.Schedule(w, sched.ReasonTick)
		for slot := 0; slot < w.Slots; slot++ {
			if _, ok := w.Occupants[slot]; ok {
				w.FinishTask(t, slot)
			}
		}
	}
	if !a.Done() {
		t.Fatal("first app never finished")
	}
	a.Retire()
	w.AppList = []*sched.App{b}
	s.Schedule(w, sched.ReasonAppDone)
	if b.SlotsUsed() == 0 {
		t.Fatal("baseline did not advance to the next app")
	}
}
