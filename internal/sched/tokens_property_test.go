package sched_test

import (
	"math"
	"math/rand"
	"testing"

	"nimblock/internal/hls"
	"nimblock/internal/sched"
	"nimblock/internal/sched/schedtest"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// randomApps builds n pending applications with random priorities and
// random chain graphs.
func randomApps(t *testing.T, rng *rand.Rand, n int) []*sched.App {
	t.Helper()
	out := make([]*sched.App, 0, n)
	for i := 0; i < n; i++ {
		b := taskgraph.NewBuilder("app")
		tasks := 1 + rng.Intn(5)
		for j := 0; j < tasks; j++ {
			b.AddTask("t", sim.Duration(1+rng.Intn(400))*sim.Millisecond)
			if j > 0 {
				b.AddEdge(j-1, j)
			}
		}
		g := b.MustBuild()
		prio := sched.PriorityLevels[rng.Intn(len(sched.PriorityLevels))]
		a, err := sched.NewApp(int64(i+1), g, hls.Analyze(g), 1+rng.Intn(8), prio, sim.Time(rng.Intn(1000)))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

// Property: after every Accumulate call, on a randomly churning pending
// queue, the token-pool invariants hold — non-negative finite balances,
// threshold-consistent candidate marking, and a never-empty candidate
// pool while applications wait.
func TestTokenPoolInvariantsProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pool := sched.NewTokenPool()
		apps := randomApps(t, rng, 2+rng.Intn(8))
		now := sim.Time(0)
		for step := 0; step < 60; step++ {
			now += sim.Time(rng.Intn(500_000)) // up to 0.5 s per step
			pool.Accumulate(now, apps)
			if err := schedtest.CheckTokenInvariants(apps); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			// Churn: retire the front app or admit a new one.
			switch {
			case len(apps) > 1 && rng.Intn(4) == 0:
				apps = apps[1:]
			case rng.Intn(4) == 0:
				extra := randomApps(t, rng, 1)
				extra[0].ID = int64(1000 + step)
				apps = append(apps, extra[0])
			}
		}
	}
}

// Property: token accrual is conserved across accumulation granularity —
// integrating degradation over one long interval or over many short ones
// yields the same balance (the accrual law is linear in elapsed time).
func TestTokenAccrualConservation(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		coarse := randomApps(t, rng, 5)
		fine := make([]*sched.App, len(coarse))
		for i, a := range coarse {
			cp := *a
			fine[i] = &cp
		}
		poolC, poolF := sched.NewTokenPool(), sched.NewTokenPool()
		start := sim.Time(1000)
		poolC.Accumulate(start, coarse)
		poolF.Accumulate(start, fine)

		end := start + sim.Time(10_000_000) // 10 s later
		poolC.Accumulate(end, coarse)
		for now := start; now < end; now += sim.Time(250_000 + rng.Intn(750_000)) {
			poolF.Accumulate(now, fine)
		}
		poolF.Accumulate(end, fine)

		for i := range coarse {
			got, want := fine[i].Tokens, coarse[i].Tokens
			if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("seed %d app %d: fine-grained accrual %v, coarse %v", seed, i, got, want)
			}
		}
	}
}
