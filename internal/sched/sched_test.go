package sched

import (
	"testing"

	"nimblock/internal/hls"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// chainApp builds a 3-task chain app with the given batch.
func chainApp(t *testing.T, batch int) *App {
	t.Helper()
	b := taskgraph.NewBuilder("chain")
	x := b.AddTask("a", 10*sim.Millisecond)
	y := b.AddTask("b", 10*sim.Millisecond)
	z := b.AddTask("c", 10*sim.Millisecond)
	b.Chain(x, y, z)
	g := b.MustBuild()
	a, err := NewApp(1, g, hls.Analyze(g), batch, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func diamondApp(t *testing.T, batch int) *App {
	t.Helper()
	b := taskgraph.NewBuilder("diamond")
	s := b.AddTask("s", 10*sim.Millisecond)
	l := b.AddTask("l", 10*sim.Millisecond)
	r := b.AddTask("r", 10*sim.Millisecond)
	k := b.AddTask("k", 10*sim.Millisecond)
	b.AddEdge(s, l).AddEdge(s, r).AddEdge(l, k).AddEdge(r, k)
	g := b.MustBuild()
	a, err := NewApp(2, g, hls.Analyze(g), batch, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAppValidation(t *testing.T) {
	g := taskgraph.NewBuilder("g")
	g.AddTask("t", 1)
	graph := g.MustBuild()
	if _, err := NewApp(1, nil, nil, 1, 1, 0); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewApp(1, graph, hls.Analyze(graph), 0, 1, 0); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := NewApp(1, graph, hls.Analyze(graph), 1, 0, 0); err == nil {
		t.Error("zero priority accepted")
	}
}

func TestConfigurableGate(t *testing.T) {
	a := chainApp(t, 2)
	if !a.Configurable(0) {
		t.Fatal("source task should be configurable")
	}
	if a.Configurable(1) || a.Configurable(2) {
		t.Fatal("tasks with idle predecessors should not be configurable")
	}
	a.MarkConfiguring(0, 0)
	if a.Configurable(0) {
		t.Fatal("configuring task should not be configurable again")
	}
	if !a.Configurable(1) {
		t.Fatal("task 1 should be configurable once task 0 is scheduled")
	}
	if a.Configurable(2) {
		t.Fatal("task 2 should wait until task 1 is scheduled")
	}
	got := a.ConfigurableTasks()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("ConfigurableTasks = %v, want [1]", got)
	}
}

func TestLifecycleAndItemFlow(t *testing.T) {
	a := chainApp(t, 2)
	if err := a.MarkConfiguring(0, 3); err != nil {
		t.Fatal(err)
	}
	if a.TaskSlot(0) != 3 || a.TaskState(0) != TaskConfiguring {
		t.Fatal("configuring state not recorded")
	}
	if err := a.MarkActive(0); err != nil {
		t.Fatal(err)
	}
	if got := a.NextReadyItem(0, true); got != 0 {
		t.Fatalf("first ready item = %d, want 0", got)
	}
	if err := a.MarkItemStarted(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.NextReadyItem(0, true); got != 1 {
		t.Fatalf("ready item while item 0 in flight = %d, want 1", got)
	}
	done, err := a.MarkItemDone(0, 0)
	if err != nil || done {
		t.Fatalf("done=%v err=%v after first item", done, err)
	}
	a.MarkItemStarted(0, 1)
	done, err = a.MarkItemDone(0, 1)
	if err != nil || !done {
		t.Fatalf("done=%v err=%v after final item", done, err)
	}
	if a.TaskState(0) != TaskDone || a.TaskSlot(0) != -1 {
		t.Fatal("task not marked done")
	}
	if a.SlotsUsed() != 0 {
		t.Fatalf("SlotsUsed = %d after completion", a.SlotsUsed())
	}
}

func TestPipeliningReadiness(t *testing.T) {
	a := chainApp(t, 3)
	a.MarkConfiguring(0, 0)
	a.MarkActive(0)
	a.MarkConfiguring(1, 1)
	a.MarkActive(1)

	// No predecessor items done: downstream not ready either way.
	if a.NextReadyItem(1, true) != -1 || a.NextReadyItem(1, false) != -1 {
		t.Fatal("task 1 ready before any predecessor item")
	}
	a.MarkItemStarted(0, 0)
	a.MarkItemDone(0, 0)
	// Pipelining: item 0 now ready downstream. Bulk: still blocked.
	if got := a.NextReadyItem(1, true); got != 0 {
		t.Fatalf("pipelined ready item = %d, want 0", got)
	}
	if got := a.NextReadyItem(1, false); got != -1 {
		t.Fatalf("bulk mode leaked item %d before batch completion", got)
	}
	a.MarkItemStarted(0, 1)
	a.MarkItemDone(0, 1)
	a.MarkItemStarted(0, 2)
	a.MarkItemDone(0, 2)
	if got := a.NextReadyItem(1, false); got != 0 {
		t.Fatalf("bulk mode ready item = %d after batch completion", got)
	}
}

func TestPreemptionAtBoundaryOnly(t *testing.T) {
	a := chainApp(t, 2)
	a.MarkConfiguring(0, 0)
	a.MarkActive(0)
	a.MarkItemStarted(0, 0)
	if err := a.MarkPreempted(0); err == nil {
		t.Fatal("preemption mid-item accepted")
	}
	a.MarkItemDone(0, 0)
	if err := a.MarkPreempted(0); err != nil {
		t.Fatal(err)
	}
	if a.TaskState(0) != TaskIdle || a.TaskSlot(0) != -1 {
		t.Fatal("preempted task not idle")
	}
	if a.DoneCount(0) != 1 {
		t.Fatal("preemption lost batch progress")
	}
	// Re-configure and finish from saved progress.
	if !a.Configurable(0) {
		t.Fatal("preempted task should be configurable")
	}
	a.MarkConfiguring(0, 5)
	a.MarkActive(0)
	if got := a.NextReadyItem(0, true); got != 1 {
		t.Fatalf("resumed ready item = %d, want 1", got)
	}
}

func TestDiamondReadinessJoin(t *testing.T) {
	a := diamondApp(t, 2)
	a.MarkConfiguring(0, 0)
	a.MarkActive(0)
	a.MarkItemStarted(0, 0)
	a.MarkItemDone(0, 0)
	a.MarkConfiguring(1, 1)
	a.MarkActive(1)
	a.MarkConfiguring(2, 2)
	a.MarkActive(2)
	a.MarkConfiguring(3, 3)
	a.MarkActive(3)
	a.MarkItemStarted(1, 0)
	a.MarkItemDone(1, 0)
	// Sink needs BOTH branches' item 0.
	if got := a.NextReadyItem(3, true); got != -1 {
		t.Fatalf("join task ready with one branch only (item %d)", got)
	}
	a.MarkItemStarted(2, 0)
	a.MarkItemDone(2, 0)
	if got := a.NextReadyItem(3, true); got != 0 {
		t.Fatalf("join task ready item = %d, want 0", got)
	}
}

func TestRemainingEstimateShrinks(t *testing.T) {
	a := chainApp(t, 2)
	before := a.RemainingEstimate()
	a.MarkConfiguring(0, 0)
	a.MarkActive(0)
	a.MarkItemStarted(0, 0)
	a.MarkItemDone(0, 0)
	after := a.RemainingEstimate()
	if after >= before {
		t.Fatalf("remaining estimate did not shrink: %v -> %v", before, after)
	}
}

func TestRetire(t *testing.T) {
	a := chainApp(t, 1)
	if err := a.Retire(); err == nil {
		t.Fatal("retired incomplete app")
	}
	for task := 0; task < 3; task++ {
		a.MarkConfiguring(task, task)
		a.MarkActive(task)
		a.MarkItemStarted(task, 0)
		a.MarkItemDone(task, 0)
	}
	if !a.Done() {
		t.Fatal("app not done after all items")
	}
	if err := a.Retire(); err != nil {
		t.Fatal(err)
	}
	if err := a.Retire(); err == nil {
		t.Fatal("double retire accepted")
	}
}

func TestOverConsumption(t *testing.T) {
	a := chainApp(t, 2)
	a.SlotsAllocated = 1
	a.MarkConfiguring(0, 0)
	a.MarkActive(0)
	a.MarkConfiguring(1, 1)
	if got := a.OverConsumption(); got != 1 {
		t.Fatalf("OverConsumption = %d, want 1", got)
	}
}

func TestReasonAndStateStrings(t *testing.T) {
	for _, r := range []Reason{ReasonTick, ReasonArrival, ReasonSlotFree, ReasonAppDone, ReasonReconfigDone, Reason(99)} {
		if r.String() == "" {
			t.Fatalf("empty string for reason %d", int(r))
		}
	}
	for _, s := range []TaskState{TaskIdle, TaskConfiguring, TaskActive, TaskDone, TaskState(99)} {
		if s.String() == "" {
			t.Fatalf("empty string for state %d", int(s))
		}
	}
}

func TestMarkConfigFailed(t *testing.T) {
	a := chainApp(t, 2)
	if err := a.MarkConfigFailed(0); err == nil {
		t.Fatal("config-fail of idle task accepted")
	}
	a.MarkConfiguring(0, 3)
	if err := a.MarkConfigFailed(0); err != nil {
		t.Fatal(err)
	}
	if a.TaskState(0) != TaskIdle || a.TaskSlot(0) != -1 {
		t.Fatal("failed task not returned to idle")
	}
	if !a.Configurable(0) {
		t.Fatal("failed task should be reconfigurable")
	}
}

func TestMarkCheckpointPreempted(t *testing.T) {
	a := chainApp(t, 3)
	if _, err := a.MarkCheckpointPreempted(0); err == nil {
		t.Fatal("checkpoint of idle task accepted")
	}
	a.MarkConfiguring(0, 0)
	a.MarkActive(0)
	a.MarkItemStarted(0, 0)
	item, err := a.MarkCheckpointPreempted(0)
	if err != nil {
		t.Fatal(err)
	}
	if item != 0 {
		t.Fatalf("aborted item %d, want 0", item)
	}
	if a.TaskState(0) != TaskIdle || a.InflightItem(0) != -1 {
		t.Fatal("checkpointed task left in bad state")
	}
	// The aborted item is still pending and resumes next.
	a.MarkConfiguring(0, 1)
	a.MarkActive(0)
	if got := a.NextReadyItem(0, true); got != 0 {
		t.Fatalf("resumed item = %d, want 0", got)
	}
	// Checkpoint at a boundary reports -1.
	b := chainApp(t, 1)
	b.MarkConfiguring(0, 0)
	b.MarkActive(0)
	item, err = b.MarkCheckpointPreempted(0)
	if err != nil || item != -1 {
		t.Fatalf("boundary checkpoint: item=%d err=%v", item, err)
	}
}
