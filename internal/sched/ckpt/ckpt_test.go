package ckpt_test

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sched/ckpt"
	"nimblock/internal/sched/schedtest"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// The rescue pass covers the gap PREMA token fairness leaves open: a
// low-priority batch that waited long enough keeps its candidacy (and
// therefore its slot allocation) when a priority-9 application arrives,
// so the core policy sees no over-consumer and never preempts — the
// arrival would wait out a full batch boundary. The scenarios below
// build exactly that state: occupants whose tokens have crossed the
// highest priority level, then a late high-priority arrival.

func TestNameAndPipelining(t *testing.T) {
	s := ckpt.New(ckpt.DefaultOptions(), hv.DefaultConfig().Board)
	if s.Name() != "NimblockCheckpoint" {
		t.Fatalf("name %q", s.Name())
	}
	if !s.Pipelining() {
		t.Fatal("default options disable pipelining")
	}
}

// saturate seeds a world whose slots each run one single-task
// priority-3 batch of 65-second items, with one Schedule call at t=0 so
// the token pool sees the occupants. By 450 s their tokens are past the
// highest priority level: they will keep candidacy (and allocation)
// against any arrival, so the core pass alone never preempts them.
func saturate(t *testing.T, s *ckpt.Scheduler, slots int, batches ...int) (*schedtest.World, []*sched.App) {
	t.Helper()
	w := schedtest.NewWorld(slots)
	g := apps.Synthetic("bigjob", 1, 65*sim.Second)
	var occ []*sched.App
	for i, batch := range batches {
		a := schedtest.NewApp(t, int64(i+1), g, batch, 3, 0)
		w.Occupy(t, i, a, 0)
		occ = append(occ, a)
		w.AppList = append(w.AppList, a)
	}
	s.Schedule(w, sched.ReasonTick)
	if len(w.Preempts) != 0 {
		t.Fatalf("preempted with nothing pending: %v", w.Preempts)
	}
	return w, occ
}

// arrive introduces a priority-9 LeNet at clock time now. Its recorded
// arrival time controls whether it is already past its SLO slack.
func arrive(t *testing.T, w *schedtest.World, now, arrival sim.Time) *sched.App {
	t.Helper()
	w.Clock = now
	a := schedtest.NewApp(t, 99, apps.MustGraph(apps.LeNet), 4, 9, arrival)
	w.AppList = append(w.AppList, a)
	return a
}

// Past its SLO slack, the pending priority-9 app triggers a preemption
// of the lower-priority mid-item occupant with the most work remaining.
func TestRescuePreemptsBusiestLowerPriorityVictim(t *testing.T) {
	s := ckpt.New(ckpt.DefaultOptions(), hv.DefaultConfig().Board)
	w, _ := saturate(t, s, 2, 2, 6) // slot 1 holds the bigger batch
	arrive(t, w, sim.Time(450*sim.Second), 0)
	s.Schedule(w, sched.ReasonTick)
	if len(w.Preempts) != 1 || w.Preempts[0] != 1 {
		t.Fatalf("preempts %v, want exactly slot 1 (busiest victim)", w.Preempts)
	}
}

// An app that can still meet its deadline by starting now is left to
// wait for a boundary: no mid-item preemption.
func TestNoRescueWhileOnTrack(t *testing.T) {
	s := ckpt.New(ckpt.DefaultOptions(), hv.DefaultConfig().Board)
	w, _ := saturate(t, s, 2, 2, 6)
	arrive(t, w, sim.Time(450*sim.Second), sim.Time(450*sim.Second)) // just arrived
	s.Schedule(w, sched.ReasonTick)
	if len(w.Preempts) != 0 {
		t.Fatalf("rescued an on-track app: preempts %v", w.Preempts)
	}
}

// With a free slot the core pass places the app; nothing is preempted.
func TestNoRescueWithFreeSlot(t *testing.T) {
	s := ckpt.New(ckpt.DefaultOptions(), hv.DefaultConfig().Board)
	w, _ := saturate(t, s, 3, 2, 6) // slot 2 stays free
	urgent := arrive(t, w, sim.Time(450*sim.Second), 0)
	s.Schedule(w, sched.ReasonTick)
	if len(w.Preempts) != 0 {
		t.Fatalf("preempted despite a free slot: %v", w.Preempts)
	}
	if urgent.SlotsUsed() == 0 {
		t.Fatal("core pass did not place the urgent app in the free slot")
	}
}

// Only strictly lower-priority occupants are victims.
func TestNoRescueOfEqualPriorityVictims(t *testing.T) {
	s := ckpt.New(ckpt.DefaultOptions(), hv.DefaultConfig().Board)
	w := schedtest.NewWorld(1)
	peer := schedtest.NewApp(t, 1, apps.Synthetic("bigjob", 1, 65*sim.Second), 4, 9, 0)
	w.Occupy(t, 0, peer, 0)
	w.AppList = []*sched.App{peer}
	s.Schedule(w, sched.ReasonTick)
	arrive(t, w, sim.Time(450*sim.Second), 0)
	s.Schedule(w, sched.ReasonTick)
	if len(w.Preempts) != 0 {
		t.Fatalf("preempted an equal-priority occupant: %v", w.Preempts)
	}
}

// A preemption already in flight suppresses further rescues: at most
// one outstanding request at a time.
func TestNoRescueWhilePreemptionInFlight(t *testing.T) {
	s := ckpt.New(ckpt.DefaultOptions(), hv.DefaultConfig().Board)
	w, _ := saturate(t, s, 2, 2, 6)
	arrive(t, w, sim.Time(450*sim.Second), 0)
	w.Preempted[0] = true
	s.Schedule(w, sched.ReasonTick)
	if len(w.Preempts) != 0 {
		t.Fatalf("issued a second preemption: %v", w.Preempts)
	}
}

// rescueRun drives the full hypervisor: two priority-3 DigitRecognition
// batches (65-second items, boundary at ~525 s) saturate a 2-slot board
// long enough to accumulate past the top token threshold, then a
// priority-9 LeNet arrives mid-item at 420 s. Returns the LeNet result.
func rescueRun(t *testing.T, policy sched.Scheduler) (hv.Result, *trace.Log, *hv.Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := hv.DefaultConfig()
	cfg.Board.Slots = 2
	cfg.EnableTrace = true
	cfg.Checkpoint = hv.CheckpointConfig{Enabled: true} // on-demand only
	h, err := hv.New(eng, cfg, policy)
	if err != nil {
		t.Fatal(err)
	}
	dr := apps.MustGraph(apps.DigitRecognition)
	if err := h.Submit(dr, 8, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(dr, 8, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(apps.MustGraph(apps.LeNet), 4, 9, sim.Time(420*sim.Second)); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Priority == 9 {
			return r, h.Trace(), h
		}
	}
	t.Fatal("priority-9 app missing from results")
	return hv.Result{}, nil, nil
}

// The headline scenario: mid-batch SLO rescue checkpoints a victim,
// frees its slot for the priority-9 arrival, and resumes the victim
// afterwards — cutting the high-priority response from boundary-wait
// scale (minutes behind 65-second DigitRecognition items) to seconds.
func TestRescueImprovesHighPriorityResponse(t *testing.T) {
	board := hv.DefaultConfig().Board
	board.Slots = 2
	plain, plainLog, _ := rescueRun(t, core.New(core.DefaultOptions(), board))
	rescued, log, h := rescueRun(t, ckpt.New(ckpt.DefaultOptions(), board))

	if n := plainLog.Count(trace.KindCheckpoint); n != 0 {
		t.Fatalf("plain Nimblock issued %d mid-item preemptions; the scenario no longer isolates the rescue pass", n)
	}
	if n := log.Count(trace.KindCheckpoint); n == 0 {
		t.Fatal("no rescue preemption traced")
	}
	if n := log.Count(trace.KindRestore); n == 0 {
		t.Fatal("the rescued victim never resumed from its checkpoint")
	}
	if rec := h.Recovery(); rec.SavedWork <= 0 {
		t.Fatalf("victim progress was not preserved: %+v", rec)
	}
	if rescued.Response >= plain.Response {
		t.Fatalf("rescue did not help: response %v with rescue, %v without", rescued.Response, plain.Response)
	}
	// The win is structural, not marginal: the plain run waits out at
	// least one 65-second item, the rescued run does not.
	if rescued.Response*10 > plain.Response {
		t.Fatalf("rescue win below 10x: %v vs %v", rescued.Response, plain.Response)
	}
}
