// Package ckpt implements NimblockCheckpoint: the full Nimblock
// algorithm plus mid-batch SLO-rescue preemption built on the
// checkpoint/restore subsystem.
//
// Plain Nimblock only preempts at batch boundaries, so a high-priority
// arrival can wait out an entire item of a long-running low-priority
// batch before a slot frees. When the hypervisor runs with
// Config.Checkpoint enabled, a preemption request is honoured mid-item:
// the victim checkpoints at its latest passed preemption point, releases
// the slot, and resumes from the snapshot later. This policy exploits
// that: when a priority-9 application is pending with no slots and its
// projected completion would miss its SLO, it requests preemption of the
// busiest lower-priority mid-item victim instead of waiting for a
// boundary.
//
// The SLO model matches the deadline analysis (Section 5.4): an
// application's deadline is its arrival plus SLOFactor times its
// single-slot latency estimate, computed policy-side from the HLS report
// and board bandwidths.
package ckpt

import (
	"nimblock/internal/bitstream"
	"nimblock/internal/core"
	"nimblock/internal/fpga"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// DefaultSLOFactor scales the single-slot estimate into a deadline; 3x
// is the paper's mid "loose" deadline tier.
const DefaultSLOFactor = 3.0

// DefaultRescuePriority is the minimum priority eligible for SLO-rescue
// preemption: only the paper's highest (real-time) tier.
const DefaultRescuePriority = 9

// Options configures the policy.
type Options struct {
	// Core selects the underlying Nimblock features.
	Core core.Options
	// SLOFactor scales the single-slot latency estimate into each
	// application's deadline (arrival + SLOFactor x estimate). Zero means
	// DefaultSLOFactor.
	SLOFactor float64
	// RescuePriority is the minimum priority whose SLO triggers a rescue
	// preemption. Zero means DefaultRescuePriority.
	RescuePriority int
}

// DefaultOptions enables the full algorithm with the default SLO model.
func DefaultOptions() Options {
	return Options{Core: core.DefaultOptions(), SLOFactor: DefaultSLOFactor, RescuePriority: DefaultRescuePriority}
}

// Scheduler wraps the core Nimblock policy with the SLO-rescue pass.
type Scheduler struct {
	opts  Options
	inner *core.Scheduler
	board fpga.Config
	est   map[estKey]sim.Duration
}

type estKey struct {
	name  string
	batch int
}

// New returns a NimblockCheckpoint scheduler planning against boards
// shaped like the given configuration.
func New(opts Options, board fpga.Config) *Scheduler {
	if opts.SLOFactor <= 0 {
		opts.SLOFactor = DefaultSLOFactor
	}
	if opts.RescuePriority <= 0 {
		opts.RescuePriority = DefaultRescuePriority
	}
	return &Scheduler{
		opts:  opts,
		inner: core.New(opts.Core, board),
		board: board,
		est:   map[estKey]sim.Duration{},
	}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "NimblockCheckpoint" }

// Pipelining implements sched.Scheduler.
func (s *Scheduler) Pipelining() bool { return s.inner.Pipelining() }

// Schedule implements sched.Scheduler. An SLO-missed rescue-priority
// application claims a free slot before the core pass can hand it back
// to an older candidate (the usual fate of a slot a rescue just freed);
// the core pass then runs with its over-consumption preemption blinded
// to rescue-priority occupants, so it cannot immediately evict the app
// the rescue placed; finally the SLO-rescue check preempts a victim for
// whatever is still pending and past its slack.
func (s *Scheduler) Schedule(w sched.World, why sched.Reason) {
	s.place(w)
	s.inner.Schedule(guardedWorld{World: w, min: s.opts.RescuePriority}, why)
	s.rescue(w)
}

// guardedWorld passes everything through except preemption requests
// against rescue-priority occupants: a rescued real-time application
// must not be evicted on behalf of a lower-priority over-consumption
// claim, or the rescue and the core pass livelock swapping the slot.
type guardedWorld struct {
	sched.World
	min int
}

func (g guardedWorld) RequestPreempt(slot int) error {
	if a, _, ok := g.World.SlotOccupant(slot); ok && a.Priority >= g.min {
		return nil // declined: the occupant outranks boundary preemption
	}
	return g.World.RequestPreempt(slot)
}

// place gives an SLO-missed rescue-priority application first claim on
// a free slot. The core pass allocates oldest-candidate-first, so
// without this the slot a rescue freed would go straight back to the
// long-waiting victim it was taken from.
func (s *Scheduler) place(w sched.World) {
	if w.CAPBusy() {
		return
	}
	free := w.FreeSlots()
	if len(free) == 0 {
		return
	}
	urgent := s.urgent(w)
	if urgent == nil {
		return
	}
	if tasks := urgent.ConfigurableTasks(); len(tasks) > 0 {
		w.Reconfigure(free[0], urgent, tasks[0])
	}
}

// estimate is the application's single-slot latency from HLS estimates
// alone: one reconfiguration per task plus the serial batch.
func (s *Scheduler) estimate(a *sched.App) sim.Duration {
	key := estKey{name: a.Name, batch: a.Batch}
	if d, ok := s.est[key]; ok {
		return d
	}
	bytes := float64(bitstream.SlotImageBytes + bitstream.HeaderBytes)
	r := sim.Seconds(bytes/s.board.SDBytesPerSec) + sim.Seconds(bytes/s.board.CAPBytesPerSec)
	var work sim.Duration
	for t := 0; t < a.Graph.NumTasks(); t++ {
		work += a.Report.Task(t).Latency
	}
	d := sim.Duration(a.Graph.NumTasks())*r + sim.Duration(a.Batch)*work
	s.est[key] = d
	return d
}

// urgent returns the oldest pending rescue-priority application that
// would miss its deadline even if it started right now, or nil.
func (s *Scheduler) urgent(w sched.World) *sched.App {
	now := w.Now()
	var urgent *sched.App
	for _, a := range w.Apps() {
		if a.Priority < s.opts.RescuePriority || a.SlotsUsed() > 0 {
			continue
		}
		if len(a.ConfigurableTasks()) == 0 {
			continue
		}
		est := s.estimate(a)
		deadline := a.Arrival.Add(sim.Duration(float64(est) * s.opts.SLOFactor))
		if now.Add(est) <= deadline {
			continue // still on track even if it starts right now
		}
		if urgent == nil || a.Arrival < urgent.Arrival {
			urgent = a
		}
	}
	return urgent
}

// rescue issues at most one mid-item preemption per opportunity: when
// the oldest pending rescue-priority application has no slots, none are
// free, and its projected completion (start now, run single-slot) would
// land past its deadline, the busiest lower-priority mid-item occupant
// is preempted. Boundary-waiting tasks are left to the core policy's
// own (cheaper) boundary preemption.
func (s *Scheduler) rescue(w sched.World) {
	// One preemption in flight at a time, shared with the core pass.
	for slot := 0; slot < w.NumSlots(); slot++ {
		if w.PreemptRequested(slot) {
			return
		}
	}
	if len(w.FreeSlots()) > 0 {
		return // a slot is already available; the core pass will use it
	}
	urgent := s.urgent(w)
	if urgent == nil {
		return
	}
	// Victim: the mid-item slot whose lower-priority occupant has the
	// most estimated work remaining — the one a boundary wait would stall
	// behind longest. Ties keep the lowest slot.
	victimSlot := -1
	var victimRem sim.Duration
	for slot := 0; slot < w.NumSlots(); slot++ {
		a, task, ok := w.SlotOccupant(slot)
		if !ok || a.Priority >= urgent.Priority {
			continue
		}
		if a.TaskState(task) != sched.TaskActive {
			continue
		}
		if rem := a.RemainingEstimate(); victimSlot == -1 || rem > victimRem {
			victimSlot, victimRem = slot, rem
		}
	}
	if victimSlot >= 0 {
		w.RequestPreempt(victimSlot)
	}
}
