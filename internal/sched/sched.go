// Package sched defines the contract between the Nimblock hypervisor and
// its scheduling algorithms, plus the application runtime state they share.
//
// The hypervisor owns mechanics — reconfiguration through the CAP, task
// launch, buffer management, batch-boundary preemption — and exposes them
// through the World interface. A Scheduler is pure policy: at each
// scheduling opportunity it inspects the world and issues reconfiguration
// or preemption requests. Five policies are implemented: the no-sharing
// baseline, FCFS, task-based PREMA, Coyote-style round-robin, and the
// Nimblock algorithm itself (package core).
package sched

import (
	"fmt"

	"nimblock/internal/hls"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Reason says why the scheduler is being invoked.
type Reason int

const (
	// ReasonTick is the periodic scheduling interval (400 ms on the
	// evaluation system).
	ReasonTick Reason = iota
	// ReasonArrival fires when a new application enters the pending queue.
	ReasonArrival
	// ReasonSlotFree fires when a task completes or a preemption is
	// honoured, freeing a slot.
	ReasonSlotFree
	// ReasonAppDone fires when an application retires.
	ReasonAppDone
	// ReasonReconfigDone fires when the CAP finishes programming a slot,
	// i.e. the next reconfiguration may be issued.
	ReasonReconfigDone
)

// String names the reason for traces.
func (r Reason) String() string {
	switch r {
	case ReasonTick:
		return "tick"
	case ReasonArrival:
		return "arrival"
	case ReasonSlotFree:
		return "slot-free"
	case ReasonAppDone:
		return "app-done"
	case ReasonReconfigDone:
		return "reconfig-done"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Scheduler is one scheduling policy.
type Scheduler interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Pipelining reports whether the policy allows tasks of one
	// application to pipeline across batch items. Only Nimblock (and its
	// ablations) enable this; for every other policy a task may start
	// items only after its predecessors finished the whole batch.
	Pipelining() bool
	// Schedule inspects the world and issues actions. It is called at
	// scheduling intervals, on arrivals, completions, and when the CAP
	// finishes a reconfiguration.
	Schedule(w World, why Reason)
}

// World is the hypervisor surface visible to schedulers.
type World interface {
	// Now is the current virtual time.
	Now() sim.Time
	// NumSlots is the number of reconfigurable slots on the board. Slots
	// are always addressed by index in [0, NumSlots), even when some are
	// offline.
	NumSlots() int
	// UsableSlots counts slots that are not offline. Policies size their
	// allocations against this so they degrade gracefully when faults
	// quarantine part of the board.
	UsableSlots() int
	// SlotUsable reports whether the slot is online (it may still be
	// occupied; see FreeSlots for availability).
	SlotUsable(slot int) bool
	// FreeSlots lists usable slots with no logic configured or in flight.
	// The returned slice is implementation-owned scratch, valid only until
	// the next FreeSlots call on the same world; callers must not retain
	// or mutate it.
	FreeSlots() []int
	// CAPBusy reports whether a reconfiguration is streaming right now.
	CAPBusy() bool
	// Apps lists applications that have arrived and not yet retired, in
	// arrival order. Slices and Apps must be treated as read-only except
	// for the scheduler-owned fields (Tokens, SlotsAllocated, Goal).
	Apps() []*App
	// SlotOccupant reports the application and task configured (or being
	// configured) in a slot; ok is false for free slots.
	SlotOccupant(slot int) (app *App, task int, ok bool)
	// SlotWaiting reports whether the slot's task is loaded and idle at a
	// batch boundary (finished an item, next not started).
	SlotWaiting(slot int) bool
	// PreemptRequested reports whether a preemption is pending on the slot.
	PreemptRequested(slot int) bool
	// Reconfigure requests that the task be configured into the slot.
	// The slot must be free and the task configurable for this policy.
	Reconfigure(slot int, a *App, task int) error
	// RequestPreempt asks for batch-preemption of the slot's task. The
	// hypervisor honours it at the next batch boundary (immediately if
	// the task is already waiting).
	RequestPreempt(slot int) error
	// TenantService reports the fabric compute time delivered so far to
	// the named tenant (zero for unknown tenants and for apps submitted
	// without one). Fairness-aware policies order candidates by weighted
	// service deficit against it.
	TenantService(tenant string) sim.Duration
}

// TaskState tracks one task of a running application.
type TaskState int

const (
	// TaskIdle means the task is not configured anywhere (never
	// scheduled, or preempted with partial progress).
	TaskIdle TaskState = iota
	// TaskConfiguring means a reconfiguration for this task is queued or
	// streaming on the CAP.
	TaskConfiguring
	// TaskActive means the task's logic is loaded and processing (or
	// waiting for) batch items.
	TaskActive
	// TaskDone means every batch item has been processed by this task.
	TaskDone
)

// String names the state for traces.
func (s TaskState) String() string {
	switch s {
	case TaskIdle:
		return "idle"
	case TaskConfiguring:
		return "configuring"
	case TaskActive:
		return "active"
	case TaskDone:
		return "done"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// App is the runtime state of one submitted application. Mechanical
// fields are maintained by the hypervisor through the Mark* methods;
// Tokens, SlotsAllocated, and Goal belong to the scheduling policy.
type App struct {
	ID       int64
	Name     string
	Graph    *taskgraph.Graph
	Report   *hls.Report
	Batch    int
	Priority int
	Arrival  sim.Time

	// Tenant names the submitting tenant for multi-tenant fairness
	// accounting; empty for single-tenant submissions. Weight is the
	// tenant's service share (0 means 1). Both are set at submission and
	// read-only afterwards.
	Tenant string
	Weight float64

	// Tokens is the PREMA-style token balance (policy-owned).
	Tokens float64
	// Candidate reports whether the app is in the candidate pool.
	Candidate bool
	// CandidateSince is when the app first joined the candidate pool.
	CandidateSince sim.Time
	// SlotsAllocated is the policy's current slot allocation (Nimblock).
	SlotsAllocated int
	// Goal is the saturation-point goal number (Nimblock).
	Goal int

	state    []TaskState
	slot     []int
	done     []bool // task-major: task t item i at t*Batch+i
	doneCnt  []int
	inflight []int
	tasksFin int
	retired  bool

	cfgScratch []int // reused by ConfigurableTasks
}

// NewApp builds runtime state for a submission.
func NewApp(id int64, g *taskgraph.Graph, report *hls.Report, batch, priority int, arrival sim.Time) (*App, error) {
	if g == nil {
		return nil, fmt.Errorf("sched: app %d has no task-graph", id)
	}
	if batch < 1 {
		return nil, fmt.Errorf("sched: app %d (%s) batch %d < 1", id, g.Name(), batch)
	}
	if priority < 1 {
		return nil, fmt.Errorf("sched: app %d (%s) priority %d < 1", id, g.Name(), priority)
	}
	n := g.NumTasks()
	// One backing array serves the three per-task int slices; done is a
	// single task-major bitmap. Apps are created per submission on the
	// simulation hot path, so allocation count matters.
	ints := make([]int, 3*n)
	a := &App{
		ID:       id,
		Name:     g.Name(),
		Graph:    g,
		Report:   report,
		Batch:    batch,
		Priority: priority,
		Arrival:  arrival,
		state:    make([]TaskState, n),
		slot:     ints[0:n:n],
		done:     make([]bool, n*batch),
		doneCnt:  ints[n : 2*n : 2*n],
		inflight: ints[2*n : 3*n : 3*n],
	}
	for i := 0; i < n; i++ {
		a.slot[i] = -1
		a.inflight[i] = -1
	}
	return a, nil
}

// TaskState reports the state of task t.
func (a *App) TaskState(t int) TaskState { return a.state[t] }

// TaskSlot reports the slot hosting task t, or -1.
func (a *App) TaskSlot(t int) int { return a.slot[t] }

// DoneCount reports how many items task t has completed.
func (a *App) DoneCount(t int) int { return a.doneCnt[t] }

// ItemDone reports whether task t has completed item i.
func (a *App) ItemDone(t, i int) bool { return a.done[t*a.Batch+i] }

// InflightItem reports the item task t is currently processing, or -1.
func (a *App) InflightItem(t int) int { return a.inflight[t] }

// Retired reports whether the application has completed and retired.
func (a *App) Retired() bool { return a.retired }

// ServiceWeight resolves the tenant share for fairness arithmetic: the
// configured Weight, or 1 when unset.
func (a *App) ServiceWeight() float64 {
	if a.Weight <= 0 {
		return 1
	}
	return a.Weight
}

// Done reports whether every task has processed every batch item.
func (a *App) Done() bool { return a.tasksFin == a.Graph.NumTasks() }

// SlotsUsed counts slots currently held (configuring or active).
func (a *App) SlotsUsed() int {
	n := 0
	for _, s := range a.state {
		if s == TaskConfiguring || s == TaskActive {
			n++
		}
	}
	return n
}

// OverConsumption is slots used beyond the policy allocation (Algorithm 2
// line 4 of the paper).
func (a *App) OverConsumption() int { return a.SlotsUsed() - a.SlotsAllocated }

// Configurable reports whether task t may be scheduled for
// reconfiguration: it is idle, unfinished, and every predecessor has at
// least been scheduled (configuring, active, or done). This lets the
// overlay hide reconfiguration latency behind predecessor compute for all
// policies; whether the configured task may actually *start* items before
// its predecessors finish the whole batch is the pipelining policy,
// enforced by NextReadyItem.
func (a *App) Configurable(t int) bool {
	if a.state[t] != TaskIdle || a.doneCnt[t] == a.Batch {
		return false
	}
	for _, p := range a.Graph.Pred(t) {
		if a.state[p] == TaskIdle && a.doneCnt[p] < a.Batch {
			return false
		}
	}
	return true
}

// ConfigurableTasks lists configurable tasks in topological order. The
// returned slice is app-owned scratch, valid only until the next
// ConfigurableTasks call on the same app; callers must not retain or
// mutate it. Policies call this in their inner loops, so it must not
// allocate.
func (a *App) ConfigurableTasks() []int {
	out := a.cfgScratch[:0]
	for _, t := range a.Graph.Topo() {
		if a.Configurable(t) {
			out = append(out, t)
		}
	}
	a.cfgScratch = out
	return out
}

// NextReadyItem returns the next batch item task t can process, or -1.
// With pipelining, item i is ready once every predecessor has finished
// item i; without, no item is ready until every predecessor has finished
// the entire batch (bulk processing).
func (a *App) NextReadyItem(t int, pipelining bool) int {
	if !pipelining {
		for _, p := range a.Graph.Pred(t) {
			if a.doneCnt[p] < a.Batch {
				return -1
			}
		}
	}
	for i := 0; i < a.Batch; i++ {
		if a.done[t*a.Batch+i] || a.inflight[t] == i {
			continue
		}
		ready := true
		if pipelining {
			for _, p := range a.Graph.Pred(t) {
				if !a.done[p*a.Batch+i] {
					ready = false
					break
				}
			}
		}
		if ready {
			return i
		}
		// Items are processed in order; if the lowest incomplete item is
		// not ready, later ones cannot be either (predecessors also
		// process in order).
		return -1
	}
	return -1
}

// RemainingEstimate is the HLS-estimated work left: sum over tasks of
// estimate x remaining items. PREMA uses it for shortest-first selection.
func (a *App) RemainingEstimate() sim.Duration {
	var total sim.Duration
	for t := 0; t < a.Graph.NumTasks(); t++ {
		rem := a.Batch - a.doneCnt[t]
		if rem > 0 {
			total += a.Report.Task(t).Latency * sim.Duration(rem)
		}
	}
	return total
}

// MarkConfiguring transitions task t to TaskConfiguring in the given slot.
func (a *App) MarkConfiguring(t, slot int) error {
	if a.state[t] != TaskIdle {
		return fmt.Errorf("sched: %s task %d is %v, cannot configure", a.Name, t, a.state[t])
	}
	a.state[t] = TaskConfiguring
	a.slot[t] = slot
	return nil
}

// MarkActive transitions task t from configuring to active.
func (a *App) MarkActive(t int) error {
	if a.state[t] != TaskConfiguring {
		return fmt.Errorf("sched: %s task %d is %v, cannot activate", a.Name, t, a.state[t])
	}
	a.state[t] = TaskActive
	return nil
}

// MarkConfigFailed returns a task whose reconfiguration faulted
// unrecoverably to idle so the policy can schedule it again.
func (a *App) MarkConfigFailed(t int) error {
	if a.state[t] != TaskConfiguring {
		return fmt.Errorf("sched: %s task %d is %v, cannot fail configuration", a.Name, t, a.state[t])
	}
	a.state[t] = TaskIdle
	a.slot[t] = -1
	return nil
}

// MarkPreempted returns task t to idle, preserving batch progress.
func (a *App) MarkPreempted(t int) error {
	if a.state[t] != TaskActive {
		return fmt.Errorf("sched: %s task %d is %v, cannot preempt", a.Name, t, a.state[t])
	}
	if a.inflight[t] >= 0 {
		return fmt.Errorf("sched: %s task %d preempted mid-item %d", a.Name, t, a.inflight[t])
	}
	a.state[t] = TaskIdle
	a.slot[t] = -1
	return nil
}

// MarkCheckpointPreempted preempts task t mid-item: classic preemption
// with state checkpointing (the alternative the paper rejects for
// requiring FPGA state capture, modelled here for the design-space
// study). The in-flight item is aborted — its saved state lets it resume
// later — and the task returns to idle. It returns the aborted item, or
// -1 if the task was at a batch boundary anyway.
func (a *App) MarkCheckpointPreempted(t int) (int, error) {
	if a.state[t] != TaskActive {
		return -1, fmt.Errorf("sched: %s task %d is %v, cannot checkpoint-preempt", a.Name, t, a.state[t])
	}
	item := a.inflight[t]
	a.inflight[t] = -1
	a.state[t] = TaskIdle
	a.slot[t] = -1
	return item, nil
}

// MarkKilled aborts task t after a watchdog kill or a permanent slot
// failure. Unlike MarkCheckpointPreempted there is no saved state: the
// in-flight item's progress is lost and the item will be re-executed from
// scratch when the task is rescheduled. It returns the aborted item, or
// -1 if the task was between items.
func (a *App) MarkKilled(t int) (int, error) {
	if a.state[t] != TaskActive {
		return -1, fmt.Errorf("sched: %s task %d is %v, cannot kill", a.Name, t, a.state[t])
	}
	item := a.inflight[t]
	a.inflight[t] = -1
	a.state[t] = TaskIdle
	a.slot[t] = -1
	return item, nil
}

// MarkItemStarted records that task t began processing item i.
func (a *App) MarkItemStarted(t, i int) error {
	if a.state[t] != TaskActive {
		return fmt.Errorf("sched: %s task %d is %v, cannot start item", a.Name, t, a.state[t])
	}
	if a.inflight[t] != -1 {
		return fmt.Errorf("sched: %s task %d already processing item %d", a.Name, t, a.inflight[t])
	}
	if i < 0 || i >= a.Batch || a.done[t*a.Batch+i] {
		return fmt.Errorf("sched: %s task %d item %d invalid or done", a.Name, t, i)
	}
	a.inflight[t] = i
	return nil
}

// MarkItemDone records completion of the in-flight item. It reports
// whether the task has now finished its whole batch; if so the task
// transitions to TaskDone and its slot association is cleared.
func (a *App) MarkItemDone(t, i int) (taskDone bool, err error) {
	if a.inflight[t] != i {
		return false, fmt.Errorf("sched: %s task %d finishing item %d but in-flight is %d", a.Name, t, i, a.inflight[t])
	}
	a.inflight[t] = -1
	a.done[t*a.Batch+i] = true
	a.doneCnt[t]++
	if a.doneCnt[t] == a.Batch {
		a.state[t] = TaskDone
		a.slot[t] = -1
		a.tasksFin++
		return true, nil
	}
	return false, nil
}

// MarkAborted force-retires the application regardless of progress:
// the hypervisor evacuated it off a dead board or cancelled it as a
// hedge loser. Policies that retain stale references (RR's slot queues)
// see Retired() and skip it; the app object is otherwise discarded.
func (a *App) MarkAborted() { a.retired = true }

// Retire marks the application complete.
func (a *App) Retire() error {
	if !a.Done() {
		return fmt.Errorf("sched: retiring %s with %d/%d tasks done", a.Name, a.tasksFin, a.Graph.NumTasks())
	}
	if a.retired {
		return fmt.Errorf("sched: %s retired twice", a.Name)
	}
	a.retired = true
	return nil
}

// String summarizes the app for traces.
func (a *App) String() string {
	return fmt.Sprintf("%s#%d{batch=%d prio=%d arrival=%v}", a.Name, a.ID, a.Batch, a.Priority, a.Arrival)
}
