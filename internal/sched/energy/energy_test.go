package energy

import (
	"strings"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/fpga"
	"nimblock/internal/sched"
	"nimblock/internal/sched/schedtest"
	"nimblock/internal/sim"
)

func mkApp(t *testing.T, id int64, tenant string, weight float64, arrival sim.Time) *sched.App {
	t.Helper()
	a := schedtest.NewApp(t, id, apps.MustGraph(apps.LeNet), 2, 3, arrival)
	a.Tenant, a.Weight = tenant, weight
	return a
}

func TestNameAndPipelining(t *testing.T) {
	s := New(fpga.DefaultConfig())
	if s.Name() != "NimblockEnergy" {
		t.Fatalf("name %q", s.Name())
	}
	if !s.Pipelining() {
		t.Fatal("pipelining should be on")
	}
}

// The most underserved tenant's application must win the CAP even when
// it arrived later.
func TestDeficitOrderingLaunchesUnderservedTenant(t *testing.T) {
	w := schedtest.NewWorld(10)
	a := mkApp(t, 1, "rich", 1, 0)
	b := mkApp(t, 2, "poor", 1, 1)
	w.AppList = []*sched.App{a, b}
	w.Service["rich"] = 5 * sim.Second
	w.Service["poor"] = sim.Second
	s := New(fpga.DefaultConfig())
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != 1 || !strings.HasPrefix(w.Reconfigs[0], "LeNet#2/") {
		t.Fatalf("reconfigs %v, want app 2 (tenant poor) first", w.Reconfigs)
	}
}

// Weights divide service: a half-weight tenant with the same raw
// service is twice as overserved, so the full-weight tenant launches.
func TestDeficitOrderingRespectsWeights(t *testing.T) {
	w := schedtest.NewWorld(10)
	a := mkApp(t, 1, "half", 0.5, 0)
	b := mkApp(t, 2, "full", 1, 1)
	w.AppList = []*sched.App{a, b}
	w.Service["half"] = 2 * sim.Second
	w.Service["full"] = 3 * sim.Second
	s := New(fpga.DefaultConfig())
	s.Schedule(w, sched.ReasonTick)
	// half: 2s/0.5 = 4s effective; full: 3s/1 = 3s effective -> full first.
	if len(w.Reconfigs) != 1 || !strings.HasPrefix(w.Reconfigs[0], "LeNet#2/") {
		t.Fatalf("reconfigs %v, want app 2 (tenant full) first", w.Reconfigs)
	}
}

// Equal deficits fall back to Nimblock's age order deterministically.
func TestEqualDeficitFallsBackToAgeOrder(t *testing.T) {
	w := schedtest.NewWorld(10)
	a := mkApp(t, 1, "t0", 1, 0)
	b := mkApp(t, 2, "t1", 1, 1)
	w.AppList = []*sched.App{a, b}
	s := New(fpga.DefaultConfig())
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != 1 || !strings.HasPrefix(w.Reconfigs[0], "LeNet#1/") {
		t.Fatalf("reconfigs %v, want oldest app first on equal deficit", w.Reconfigs)
	}
}

// Allocation stops at the goal number: with one candidate on a big
// board, slots past the saturation goal stay free (core's phase 3
// would hand them out).
func TestAllocationCappedAtGoal(t *testing.T) {
	w := schedtest.NewWorld(10)
	a := mkApp(t, 1, "t0", 1, 0)
	w.AppList = []*sched.App{a}
	s := New(fpga.DefaultConfig())
	s.Schedule(w, sched.ReasonTick)
	if a.Goal < 1 {
		t.Fatalf("goal %d not computed", a.Goal)
	}
	if a.SlotsAllocated != a.Goal {
		t.Fatalf("allocated %d slots, want goal %d exactly", a.SlotsAllocated, a.Goal)
	}
	if a.SlotsAllocated >= w.Slots {
		t.Fatalf("goal allocation %d consumed the whole board; energy lever is gone", a.SlotsAllocated)
	}
}

// The launch must use the lowest-index free slot.
func TestLaunchPicksLowestFreeSlot(t *testing.T) {
	w := schedtest.NewWorld(4)
	blocker := mkApp(t, 9, "x", 1, 0)
	w.Occupy(t, 0, blocker, 0)
	a := mkApp(t, 1, "t0", 1, 0)
	w.AppList = []*sched.App{a}
	s := New(fpga.DefaultConfig())
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != 1 || !strings.HasSuffix(w.Reconfigs[0], "@s1") {
		t.Fatalf("reconfigs %v, want slot 1 (lowest free)", w.Reconfigs)
	}
}

// No launch while the CAP streams.
func TestNoLaunchWhileCAPBusy(t *testing.T) {
	w := schedtest.NewWorld(4)
	w.Busy = true
	a := mkApp(t, 1, "t0", 1, 0)
	w.AppList = []*sched.App{a}
	s := New(fpga.DefaultConfig())
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != 0 {
		t.Fatalf("reconfigured with busy CAP: %v", w.Reconfigs)
	}
}

// With every slot taken and an over-consumer on board, the policy
// requests exactly one batch preemption.
func TestPreemptsOverConsumer(t *testing.T) {
	w := schedtest.NewWorld(2)
	hog := mkApp(t, 1, "hog", 1, 0)
	hog.SlotsAllocated = 1 // uses 2
	w.Occupy(t, 0, hog, 0)
	w.Occupy(t, 1, hog, 1)
	starved := mkApp(t, 2, "starved", 1, 1)
	w.AppList = []*sched.App{hog, starved}
	s := New(fpga.DefaultConfig())
	s.Schedule(w, sched.ReasonTick)
	if len(w.Preempts) != 1 {
		t.Fatalf("preempts %v, want exactly one", w.Preempts)
	}
}
