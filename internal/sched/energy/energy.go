// Package energy implements NimblockEnergy: the Nimblock algorithm with
// an energy-conserving allocation and weighted per-tenant fairness.
//
// It keeps Nimblock's skeleton — PREMA tokens, candidate pool,
// goal-number slot allocation from saturation analysis, single-CAP
// launch, boundary preemption of over-consumers — and changes two
// things:
//
//   - Energy: allocation stops at each candidate's goal number. Core
//     Nimblock's phase 3 hands leftover slots to any application that
//     can still use them, buying marginal latency at the cost of extra
//     occupied slots (active power) well past the saturation point.
//     NimblockEnergy leaves post-goal slots idle, so the active-power
//     integral tracks the work's saturation profile instead of the
//     board size.
//
//   - Fairness: candidates with equal age are served in ascending order
//     of weighted tenant service deficit (delivered fabric time divided
//     by tenant weight), so tenants converge to service proportional to
//     their weights under contention. Ties break by arrival then ID, so
//     the order — and every decision downstream of it — stays
//     deterministic.
package energy

import (
	"slices"

	"nimblock/internal/fpga"
	"nimblock/internal/saturate"
	"nimblock/internal/sched"
)

// satKey caches saturation analyses per application shape and board
// size, exactly like core.
type satKey struct {
	name  string
	batch int
	slots int
}

// Scheduler is the NimblockEnergy policy.
type Scheduler struct {
	board fpga.Config
	pool  *sched.TokenPool
	cache map[satKey]saturate.Result
	cands []*sched.App // scratch, reused across Schedule calls
}

// New returns a NimblockEnergy scheduler planning against boards shaped
// like the given configuration.
func New(board fpga.Config) *Scheduler {
	return &Scheduler{
		board: board,
		pool:  sched.NewTokenPool(),
		cache: map[satKey]saturate.Result{},
	}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "NimblockEnergy" }

// Pipelining implements sched.Scheduler: pipelining within the goal
// allocation costs no extra slots, so it stays on.
func (s *Scheduler) Pipelining() bool { return true }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w sched.World, why sched.Reason) {
	apps := w.Apps()
	s.pool.Accumulate(w.Now(), apps)
	s.cands = sched.CandidatesInto(s.cands, apps)
	s.orderByDeficit(w, s.cands)
	s.reallocate(w, s.cands)
	s.selectAndLaunch(w, s.cands)
}

// orderByDeficit re-sorts the candidate pool so the most underserved
// tenant (lowest delivered-service-to-weight ratio) launches first.
// The sort is stable over CandidatesInto's age order, so single-tenant
// workloads see exactly Nimblock's candidate order.
func (s *Scheduler) orderByDeficit(w sched.World, cands []*sched.App) {
	slices.SortStableFunc(cands, func(x, y *sched.App) int {
		dx := float64(w.TenantService(x.Tenant)) / x.ServiceWeight()
		dy := float64(w.TenantService(y.Tenant)) / y.ServiceWeight()
		if dx != dy {
			if dx < dy {
				return -1
			}
			return 1
		}
		return 0
	})
}

// analysis mirrors core.Scheduler.analysis: cached saturation analysis
// at the current usable slot count, with a conservative fallback.
func (s *Scheduler) analysis(a *sched.App, slots int) saturate.Result {
	key := satKey{name: a.Name, batch: a.Batch, slots: slots}
	if r, ok := s.cache[key]; ok {
		return r
	}
	board := s.board
	board.Slots = slots
	r, err := saturate.AnalyzeCached(a.Graph, a.Report, a.Batch, board, true)
	if err != nil {
		r = saturate.Result{Goal: 2, MaxUseful: a.Graph.NumTasks()}
	}
	if r.Goal < 1 {
		r.Goal = 1
	}
	if r.MaxUseful < r.Goal {
		r.MaxUseful = r.Goal
	}
	s.cache[key] = r
	return r
}

// reallocate is core's phases 1 and 2 only: one slot per candidate,
// then up to each candidate's goal number. The missing phase 3 is the
// energy lever — slots past every goal stay free and draw no active
// power, while the saturation analysis guarantees the goal allocation
// already sits at the latency knee.
func (s *Scheduler) reallocate(w sched.World, cands []*sched.App) {
	for _, a := range w.Apps() {
		a.SlotsAllocated = 0
	}
	usable := w.UsableSlots()
	remaining := usable
	if remaining == 0 {
		return
	}
	for _, a := range cands {
		if remaining == 0 {
			return
		}
		a.SlotsAllocated = 1
		remaining--
	}
	for _, a := range cands {
		if remaining == 0 {
			return
		}
		an := s.analysis(a, usable)
		a.Goal = an.Goal
		add := an.Goal - a.SlotsAllocated
		if add > remaining {
			add = remaining
		}
		if add > 0 {
			a.SlotsAllocated += add
			remaining -= add
		}
	}
}

// selectAndLaunch mirrors core: first deficit-ordered candidate with
// headroom and a configurable task wins the idle CAP; the lowest-index
// free slot hosts it (deterministic tie-break).
func (s *Scheduler) selectAndLaunch(w sched.World, cands []*sched.App) {
	if w.CAPBusy() {
		return
	}
	for _, a := range cands {
		if a.SlotsAllocated == 0 || a.SlotsUsed() >= a.SlotsAllocated {
			continue
		}
		tasks := a.ConfigurableTasks()
		if len(tasks) == 0 {
			continue
		}
		if free := w.FreeSlots(); len(free) > 0 {
			w.Reconfigure(free[0], a, tasks[0])
			return
		}
		s.preempt(w)
		return
	}
}

// preempt mirrors core's Algorithm 2: batch-preempt the topologically
// latest active task of the worst over-consumer, one request in flight.
func (s *Scheduler) preempt(w sched.World) {
	for slot := 0; slot < w.NumSlots(); slot++ {
		if w.PreemptRequested(slot) {
			return
		}
	}
	var victim *sched.App
	over := 0
	for slot := 0; slot < w.NumSlots(); slot++ {
		a, _, ok := w.SlotOccupant(slot)
		if !ok {
			continue
		}
		if c := a.OverConsumption(); c > over {
			over, victim = c, a
		}
	}
	if victim == nil {
		return
	}
	rank := victim.Graph.TopoRank()
	bestSlot, bestRank := -1, -1
	for slot := 0; slot < w.NumSlots(); slot++ {
		a, task, ok := w.SlotOccupant(slot)
		if !ok || a != victim || a.TaskState(task) != sched.TaskActive {
			continue
		}
		if rank[task] > bestRank {
			bestRank, bestSlot = rank[task], slot
		}
	}
	if bestSlot >= 0 {
		w.RequestPreempt(bestSlot)
	}
}
