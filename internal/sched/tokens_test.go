package sched

import (
	"testing"
	"testing/quick"

	"nimblock/internal/apps"
	"nimblock/internal/hls"
	"nimblock/internal/sim"
)

func mkApp(t *testing.T, id int64, name string, batch, prio int, arrival sim.Time) *App {
	t.Helper()
	g := apps.MustGraph(name)
	a, err := NewApp(id, g, hls.Analyze(g), batch, prio, arrival)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInitialTokensEqualPriority(t *testing.T) {
	p := NewTokenPool()
	a := mkApp(t, 1, apps.LeNet, 5, 9, 0)
	p.Accumulate(0, []*App{a})
	if a.Tokens != 9 {
		t.Fatalf("initial tokens = %v, want priority 9", a.Tokens)
	}
}

func TestTokensGrowWithWaitAndPriority(t *testing.T) {
	p := NewTokenPool()
	lo := mkApp(t, 1, apps.LeNet, 5, 1, 0)
	hi := mkApp(t, 2, apps.LeNet, 5, 9, 0)
	all := []*App{lo, hi}
	p.Accumulate(0, all)
	p.Accumulate(10*sim.Time(sim.Second), all)
	if hi.Tokens-9 <= (lo.Tokens-1)*8.9 {
		t.Fatalf("high-priority accumulation too slow: lo=%v hi=%v", lo.Tokens, hi.Tokens)
	}
	if lo.Tokens <= 1 {
		t.Fatalf("low-priority app accumulated nothing: %v", lo.Tokens)
	}
}

func TestShortAppsDegradeFaster(t *testing.T) {
	p := NewTokenPool()
	short := mkApp(t, 1, apps.ImageCompression, 1, 3, 0)
	long := mkApp(t, 2, apps.DigitRecognition, 1, 3, 0)
	all := []*App{short, long}
	p.Accumulate(0, all)
	p.Accumulate(sim.Time(sim.Second), all)
	if short.Tokens <= long.Tokens {
		t.Fatalf("short app should accumulate faster: short=%v long=%v", short.Tokens, long.Tokens)
	}
}

func TestFloorPriority(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
	}{{0.5, 0}, {1, 1}, {2.9, 1}, {3, 3}, {8.99, 3}, {9, 9}, {100, 9}}
	for _, c := range cases {
		if got := floorPriority(c.in); got != c.want {
			t.Errorf("floorPriority(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestThresholdingCandidates(t *testing.T) {
	p := NewTokenPool()
	a := mkApp(t, 1, apps.LeNet, 5, 9, 0) // tokens 9
	b := mkApp(t, 2, apps.LeNet, 5, 3, 0) // tokens 3
	c := mkApp(t, 3, apps.LeNet, 5, 1, 0) // tokens 1
	p.Accumulate(0, []*App{a, b, c})
	// Threshold = floor(9) = 9 -> only a qualifies.
	if !a.Candidate || b.Candidate || c.Candidate {
		t.Fatalf("candidates = %v %v %v, want only first", a.Candidate, b.Candidate, c.Candidate)
	}
}

func TestCandidatePoolNeverEmptyWhileAppsWait(t *testing.T) {
	// Regression for the >= vs > deviation: with a single app whose
	// tokens sit exactly on a priority level, the pool must not be empty.
	p := NewTokenPool()
	a := mkApp(t, 1, apps.LeNet, 5, 3, 0)
	p.Accumulate(0, []*App{a})
	if !a.Candidate {
		t.Fatal("single waiting app is not a candidate")
	}
}

func TestCandidateSinceStable(t *testing.T) {
	p := NewTokenPool()
	a := mkApp(t, 1, apps.LeNet, 5, 9, 0)
	p.Accumulate(0, []*App{a})
	first := a.CandidateSince
	p.Accumulate(sim.Time(sim.Second), []*App{a})
	if a.CandidateSince != first {
		t.Fatal("CandidateSince changed while app stayed in the pool")
	}
}

func TestCandidatesOrderedByPoolAge(t *testing.T) {
	a := mkApp(t, 1, apps.LeNet, 5, 3, 0)
	b := mkApp(t, 2, apps.LeNet, 5, 3, 5)
	c := mkApp(t, 3, apps.LeNet, 5, 3, 5)
	a.Candidate, a.CandidateSince = true, 100
	b.Candidate, b.CandidateSince = true, 50
	c.Candidate, c.CandidateSince = true, 50
	got := Candidates([]*App{a, b, c})
	if len(got) != 3 || got[0].ID != 2 || got[1].ID != 3 || got[2].ID != 1 {
		ids := []int64{}
		for _, x := range got {
			ids = append(ids, x.ID)
		}
		t.Fatalf("candidate order = %v, want [2 3 1]", ids)
	}
}

func TestRetiredAppsForgotten(t *testing.T) {
	p := NewTokenPool()
	a := mkApp(t, 1, apps.LeNet, 5, 9, 0)
	p.Accumulate(0, []*App{a})
	p.Accumulate(sim.Time(sim.Second), nil) // app retired
	if len(p.seen) != 0 {
		t.Fatalf("pool still tracks %d retired apps", len(p.seen))
	}
}

// Property: tokens are monotonically nondecreasing over successive
// accumulations, and always at least the priority.
func TestTokenMonotonicityProperty(t *testing.T) {
	f := func(steps []uint16, prioSel uint8) bool {
		prio := PriorityLevels[int(prioSel)%len(PriorityLevels)]
		g := apps.MustGraph(apps.LeNet)
		a, _ := NewApp(1, g, hls.Analyze(g), 3, prio, 0)
		p := NewTokenPool()
		now := sim.Time(0)
		p.Accumulate(now, []*App{a})
		prev := a.Tokens
		for _, s := range steps {
			now = now.Add(sim.Duration(s) * sim.Millisecond)
			p.Accumulate(now, []*App{a})
			if a.Tokens < prev || a.Tokens < float64(prio) {
				return false
			}
			prev = a.Tokens
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any accumulation over any app mix, at least one pending
// app is a candidate (the pool can never deadlock empty).
func TestCandidateNonEmptyProperty(t *testing.T) {
	f := func(prios []uint8, gap uint16) bool {
		if len(prios) == 0 {
			return true
		}
		if len(prios) > 12 {
			prios = prios[:12]
		}
		var all []*App
		g := apps.MustGraph(apps.Rendering3D)
		for i, ps := range prios {
			prio := PriorityLevels[int(ps)%len(PriorityLevels)]
			a, _ := NewApp(int64(i), g, hls.Analyze(g), 2, prio, sim.Time(i))
			all = append(all, a)
		}
		p := NewTokenPool()
		p.Accumulate(0, all)
		p.Accumulate(sim.Time(gap), all)
		for _, a := range all {
			if a.Candidate {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
