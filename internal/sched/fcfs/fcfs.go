// Package fcfs implements the naive first-come, first-served sharing
// policy from the paper's evaluation: ready tasks from all pending
// applications are configured onto free slots in application arrival
// order. Applications may execute parallel branches simultaneously, but
// there is no priority awareness, no cross-batch pipelining, and no
// preemption.
package fcfs

import (
	"nimblock/internal/sched"
)

// Scheduler is the FCFS policy.
type Scheduler struct{}

// New returns an FCFS scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "FCFS" }

// Pipelining implements sched.Scheduler: bulk processing only.
func (s *Scheduler) Pipelining() bool { return false }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w sched.World, why sched.Reason) {
	free := w.FreeSlots()
	idx := 0
	for _, a := range w.Apps() {
		// Configuring a task can make its successors configurable
		// (reconfiguration prefetch), so re-evaluate until exhausted.
		for {
			if idx >= len(free) {
				return
			}
			tasks := a.ConfigurableTasks()
			if len(tasks) == 0 {
				break
			}
			if err := w.Reconfigure(free[idx], a, tasks[0]); err != nil {
				return
			}
			idx++
		}
	}
}
