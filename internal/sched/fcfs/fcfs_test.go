package fcfs

import (
	"strings"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/sched"
	"nimblock/internal/sched/schedtest"
)

func TestIdentity(t *testing.T) {
	s := New()
	if s.Name() != "FCFS" || s.Pipelining() {
		t.Fatalf("identity: name=%q pipelining=%v", s.Name(), s.Pipelining())
	}
}

func TestArrivalOrderSharing(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(3)
	first := schedtest.NewApp(t, 1, apps.MustGraph(apps.ImageCompression), 2, 1, 0)
	second := schedtest.NewApp(t, 2, apps.MustGraph(apps.LeNet), 2, 9, 1)
	w.AppList = []*sched.App{first, second}
	s.Schedule(w, sched.ReasonArrival)
	if len(w.Reconfigs) != 3 {
		t.Fatalf("reconfigs = %v, want all 3 slots filled", w.Reconfigs)
	}
	// The first-arrived app's chain prefix greedily takes every slot —
	// priority is ignored and later arrivals starve. This is exactly the
	// FCFS weakness the paper calls out.
	for i, want := range []string{"ImageCompression#1/t0", "ImageCompression#1/t1", "ImageCompression#1/t2"} {
		if !strings.HasPrefix(w.Reconfigs[i], want) {
			t.Fatalf("order = %v", w.Reconfigs)
		}
	}
	if second.SlotsUsed() != 0 {
		t.Fatal("second app got slots despite FCFS greed")
	}
}

func TestStopsWhenSlotsExhausted(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(1)
	a := schedtest.NewApp(t, 1, apps.MustGraph(apps.OpticalFlow), 2, 3, 0)
	w.AppList = []*sched.App{a}
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != 1 {
		t.Fatalf("reconfigs = %v, want 1", w.Reconfigs)
	}
	// Re-scheduling with no free slots is a no-op.
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != 1 {
		t.Fatalf("reconfigured without free slots: %v", w.Reconfigs)
	}
}

func TestParallelBranches(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(8)
	a := schedtest.NewApp(t, 1, apps.MustGraph(apps.AlexNet), 1, 3, 0)
	w.AppList = []*sched.App{a}
	s.Schedule(w, sched.ReasonTick)
	// AlexNet's first layer has 7 parallel tasks; all are sources and
	// immediately configurable, and the prefetch gate admits layer 2.
	if a.SlotsUsed() != 8 {
		t.Fatalf("slots used = %d, want 8", a.SlotsUsed())
	}
}
