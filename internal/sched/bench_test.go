package sched

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/hls"
	"nimblock/internal/sim"
)

func benchApps(b *testing.B, n int) []*App {
	b.Helper()
	var out []*App
	names := apps.Names()
	for i := 0; i < n; i++ {
		g := apps.MustGraph(names[i%len(names)])
		a, err := NewApp(int64(i+1), g, hls.Analyze(g), 1+i%10, PriorityLevels[i%3], sim.Time(i))
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

func BenchmarkTokenAccumulation(b *testing.B) {
	apps := benchApps(b, 20)
	p := NewTokenPool()
	p.Accumulate(0, apps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Accumulate(sim.Time(i+1)*sim.Time(sim.Millisecond), apps)
	}
}

func BenchmarkCandidates(b *testing.B) {
	apps := benchApps(b, 20)
	p := NewTokenPool()
	p.Accumulate(0, apps)
	p.Accumulate(sim.Time(sim.Second), apps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Candidates(apps) == nil {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkConfigurableTasks(b *testing.B) {
	a := benchApps(b, 1)[0] // first name alphabetically: AlexNet (38 tasks)
	a.MarkConfiguring(0, 0)
	a.MarkActive(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ConfigurableTasks()
	}
}

func BenchmarkNextReadyItem(b *testing.B) {
	a := benchApps(b, 1)[0]
	a.MarkConfiguring(0, 0)
	a.MarkActive(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.NextReadyItem(0, true)
	}
}
