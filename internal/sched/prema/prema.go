// Package prema implements the task-based PREMA comparator from the
// paper's evaluation (adapted from Choi & Rhu's predictive multi-task
// scheduler as ported to multi-slot FPGA systems).
//
// PREMA keeps the token accumulation and candidate thresholding scheme —
// tokens grow with priority and normalized performance degradation — and
// selects the *shortest* candidate (smallest estimated remaining work) to
// execute next. It shares slots among candidates but has no cross-batch
// pipelining and no preemption.
package prema

import (
	"slices"

	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

// byRem pairs a candidate with its remaining-work estimate so the sort
// computes each estimate once instead of O(n log n) times.
type byRem struct {
	app *sched.App
	rem sim.Duration
}

// Scheduler is the task-based PREMA policy.
type Scheduler struct {
	pool  *sched.TokenPool
	cands []*sched.App // scratch, reused across Schedule calls
	order []byRem      // scratch, reused across Schedule calls
}

// New returns a PREMA scheduler.
func New() *Scheduler { return &Scheduler{pool: sched.NewTokenPool()} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "PREMA" }

// Pipelining implements sched.Scheduler: bulk processing only.
func (s *Scheduler) Pipelining() bool { return false }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w sched.World, why sched.Reason) {
	apps := w.Apps()
	s.pool.Accumulate(w.Now(), apps)
	s.cands = sched.CandidatesInto(s.cands, apps)
	// Shortest estimated remaining work first (PREMA's selection rule).
	order := s.order[:0]
	for _, a := range s.cands {
		order = append(order, byRem{app: a, rem: a.RemainingEstimate()})
	}
	slices.SortStableFunc(order, func(x, y byRem) int {
		if x.rem != y.rem {
			if x.rem < y.rem {
				return -1
			}
			return 1
		}
		if x.app.ID < y.app.ID {
			return -1
		}
		if x.app.ID > y.app.ID {
			return 1
		}
		return 0
	})
	s.order = order
	free := w.FreeSlots()
	idx := 0
	for _, c := range order {
		a := c.app
		// Re-evaluate after each configuration: prefetching a task makes
		// its successors configurable.
		for {
			if idx >= len(free) {
				return
			}
			tasks := a.ConfigurableTasks()
			if len(tasks) == 0 {
				break
			}
			if err := w.Reconfigure(free[idx], a, tasks[0]); err != nil {
				return
			}
			idx++
		}
	}
}
