// Package prema implements the task-based PREMA comparator from the
// paper's evaluation (adapted from Choi & Rhu's predictive multi-task
// scheduler as ported to multi-slot FPGA systems).
//
// PREMA keeps the token accumulation and candidate thresholding scheme —
// tokens grow with priority and normalized performance degradation — and
// selects the *shortest* candidate (smallest estimated remaining work) to
// execute next. It shares slots among candidates but has no cross-batch
// pipelining and no preemption.
package prema

import (
	"sort"

	"nimblock/internal/sched"
)

// Scheduler is the task-based PREMA policy.
type Scheduler struct {
	pool *sched.TokenPool
}

// New returns a PREMA scheduler.
func New() *Scheduler { return &Scheduler{pool: sched.NewTokenPool()} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "PREMA" }

// Pipelining implements sched.Scheduler: bulk processing only.
func (s *Scheduler) Pipelining() bool { return false }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w sched.World, why sched.Reason) {
	apps := w.Apps()
	s.pool.Accumulate(w.Now(), apps)
	cands := sched.Candidates(apps)
	// Shortest estimated remaining work first (PREMA's selection rule).
	sort.SliceStable(cands, func(i, j int) bool {
		ri, rj := cands[i].RemainingEstimate(), cands[j].RemainingEstimate()
		if ri != rj {
			return ri < rj
		}
		return cands[i].ID < cands[j].ID
	})
	free := w.FreeSlots()
	idx := 0
	for _, a := range cands {
		// Re-evaluate after each configuration: prefetching a task makes
		// its successors configurable.
		for {
			if idx >= len(free) {
				return
			}
			tasks := a.ConfigurableTasks()
			if len(tasks) == 0 {
				break
			}
			if err := w.Reconfigure(free[idx], a, tasks[0]); err != nil {
				return
			}
			idx++
		}
	}
}
