package prema

import (
	"strings"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/sched"
	"nimblock/internal/sched/schedtest"
	"nimblock/internal/sim"
)

func TestIdentity(t *testing.T) {
	s := New()
	if s.Name() != "PREMA" || s.Pipelining() {
		t.Fatalf("identity: name=%q pipelining=%v", s.Name(), s.Pipelining())
	}
}

func TestShortestCandidateFirst(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(2)
	long := schedtest.NewApp(t, 1, apps.MustGraph(apps.DigitRecognition), 5, 3, 0)
	short := schedtest.NewApp(t, 2, apps.MustGraph(apps.ImageCompression), 5, 3, 0)
	w.AppList = []*sched.App{long, short}
	s.Schedule(w, sched.ReasonArrival)
	if len(w.Reconfigs) == 0 {
		t.Fatal("nothing scheduled")
	}
	// Both start with equal tokens (same priority) so both are
	// candidates; the shorter app must be configured first.
	if !strings.HasPrefix(w.Reconfigs[0], "ImageCompression") {
		t.Fatalf("first reconfig = %v, want shortest candidate", w.Reconfigs)
	}
}

func TestHighPriorityDominatesCandidacy(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(1)
	lo := schedtest.NewApp(t, 1, apps.MustGraph(apps.ImageCompression), 1, 1, 0)
	hi := schedtest.NewApp(t, 2, apps.MustGraph(apps.DigitRecognition), 1, 9, 0)
	w.AppList = []*sched.App{lo, hi}
	s.Schedule(w, sched.ReasonArrival)
	// Threshold floors to 9; only the high-priority app is a candidate,
	// even though the other is shorter.
	if len(w.Reconfigs) != 1 || !strings.HasPrefix(w.Reconfigs[0], "DigitRecognition") {
		t.Fatalf("reconfigs = %v, want only the high-priority candidate", w.Reconfigs)
	}
}

func TestWaitingPromotesLowPriority(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(1)
	lo := schedtest.NewApp(t, 1, apps.MustGraph(apps.ImageCompression), 1, 1, 0)
	hi := schedtest.NewApp(t, 2, apps.MustGraph(apps.DigitRecognition), 1, 9, 0)
	w.AppList = []*sched.App{lo, hi}
	s.Schedule(w, sched.ReasonArrival) // hi gets the slot
	// Let a long time pass; the short low-priority app degrades fast
	// (normalized by its tiny isolated latency) and crosses the
	// threshold.
	w.Clock = w.Clock.Add(30 * sim.Second)
	s.Schedule(w, sched.ReasonTick)
	if !lo.Candidate {
		t.Fatalf("low-priority app never became a candidate (tokens=%v)", lo.Tokens)
	}
}

func TestNoPreemptionEver(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(1)
	hog := schedtest.NewApp(t, 1, apps.MustGraph(apps.DigitRecognition), 5, 1, 0)
	w.Occupy(t, 0, hog, 0)
	hi := schedtest.NewApp(t, 2, apps.MustGraph(apps.LeNet), 1, 9, 1)
	w.AppList = []*sched.App{hog, hi}
	for i := 0; i < 5; i++ {
		w.Clock = w.Clock.Add(sim.Second)
		s.Schedule(w, sched.ReasonTick)
	}
	if len(w.Preempts) != 0 {
		t.Fatalf("PREMA preempted: %v", w.Preempts)
	}
}
