package schedtest

import (
	"strings"
	"testing"

	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

func ev(at sim.Duration, k trace.Kind, app int64, task, slot, item int) trace.Event {
	return trace.Event{At: sim.Time(at), Kind: k, App: "a", AppID: app, Task: task, Slot: slot, Item: item}
}

// A well-formed lifetime passes every check.
func TestCheckerAcceptsCleanRun(t *testing.T) {
	c := NewChecker()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ev(90*sim.Millisecond, trace.KindItemDone, 1, 0, 0, 0),
		ev(90*sim.Millisecond, trace.KindTaskDone, 1, 0, 0, -1),
		ev(91*sim.Millisecond, trace.KindRetire, 1, -1, -1, -1),
	} {
		c.Observe(e)
	}
	if err := c.Finish(1); err != nil {
		t.Fatal(err)
	}
	if c.Events() != 7 {
		t.Fatalf("saw %d events, want 7", c.Events())
	}
}

// Each corrupted sequence must be flagged with a violation mentioning
// the expected phrase — the checker is only useful if it really fires.
func TestCheckerCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		events []trace.Event
		want   string
	}{
		{
			"double-booked slot",
			[]trace.Event{
				ev(0, trace.KindArrival, 1, -1, -1, -1),
				ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
				ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
				ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
				ev(82*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 1),
			},
			"two items in flight",
		},
		{
			"item on unconfigured slot",
			[]trace.Event{
				ev(0, trace.KindArrival, 1, -1, -1, -1),
				ev(1*sim.Millisecond, trace.KindItemStart, 1, 0, 2, 0),
			},
			"unconfigured slot",
		},
		{
			"CAP overlap",
			[]trace.Event{
				ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
				ev(0, trace.KindReconfigStart, 2, 0, 1, -1),
				ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
				ev(90*sim.Millisecond, trace.KindReconfigDone, 2, 0, 1, -1),
			},
			"CAP not serialized",
		},
		{
			"mid-item preemption",
			[]trace.Event{
				ev(0, trace.KindArrival, 1, -1, -1, -1),
				ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
				ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
				ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
				ev(85*sim.Millisecond, trace.KindPreempt, 1, 0, 0, -1),
			},
			"mid-item",
		},
		{
			"retire before arrival",
			[]trace.Event{ev(0, trace.KindRetire, 7, -1, -1, -1)},
			"retire before arrival",
		},
		{
			"offline slot reused",
			[]trace.Event{
				ev(0, trace.KindSlotOffline, -1, -1, 3, -1),
				ev(1*sim.Millisecond, trace.KindReconfigStart, 1, 0, 3, -1),
			},
			"offline slot",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewChecker()
			for _, e := range tc.events {
				c.Observe(e)
			}
			err := c.Err()
			if err == nil {
				t.Fatalf("checker accepted %s", tc.name)
			}
			joined := strings.Join(c.Violations(), "\n")
			if !strings.Contains(joined, tc.want) {
				t.Fatalf("violations %q do not mention %q", joined, tc.want)
			}
		})
	}
}

// Item conservation: a start without a finish or abort fails Finish; a
// watchdog abort followed by a re-execution passes.
func TestCheckerItemConservation(t *testing.T) {
	c := NewChecker()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
	} {
		c.Observe(e)
	}
	if err := c.Finish(0); err == nil {
		t.Fatal("unfinished item not flagged")
	}

	c = NewChecker()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ev(300*sim.Millisecond, trace.KindWatchdog, 1, 0, 0, 0),
		ev(301*sim.Millisecond, trace.KindReconfigStart, 1, 0, 1, -1),
		ev(381*sim.Millisecond, trace.KindReconfigDone, 1, 0, 1, -1),
		ev(382*sim.Millisecond, trace.KindItemStart, 1, 0, 1, 0),
		ev(390*sim.Millisecond, trace.KindItemDone, 1, 0, 1, 0),
		ev(390*sim.Millisecond, trace.KindTaskDone, 1, 0, 1, -1),
		ev(391*sim.Millisecond, trace.KindRetire, 1, -1, -1, -1),
	} {
		c.Observe(e)
	}
	if err := c.Finish(1); err != nil {
		t.Fatalf("watchdog re-execution flagged: %v", err)
	}
}

// Replay drives a recorded log through the same state machines.
func TestCheckerReplay(t *testing.T) {
	lg := trace.New()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ev(90*sim.Millisecond, trace.KindItemDone, 1, 0, 0, 0),
		ev(90*sim.Millisecond, trace.KindTaskDone, 1, 0, 0, -1),
		ev(91*sim.Millisecond, trace.KindRetire, 1, -1, -1, -1),
	} {
		lg.Add(e)
	}
	c := NewChecker().Replay(lg)
	if c.Events() != lg.Len() {
		t.Fatalf("replayed %d of %d events", c.Events(), lg.Len())
	}
	if err := c.Finish(1); err != nil {
		t.Fatal(err)
	}
}

// The remaining per-kind state machines: each corrupted stream must fire,
// and the matching well-formed stream must not.
func TestCheckerRecoveryAndFaultKinds(t *testing.T) {
	// Reconfiguration prologue shared by most cases.
	pro := []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
	}
	loaded := append(append([]trace.Event{}, pro...),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1))
	inflight := append(append([]trace.Event{}, loaded...),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0))

	bad := []struct {
		name   string
		events []trace.Event
		want   string
	}{
		{"done without start", []trace.Event{ev(0, trace.KindReconfigDone, 1, 0, 0, -1)}, "without start"},
		{"retry while idle", []trace.Event{ev(0, trace.KindRetry, 1, 0, 0, -1)}, "not reconfiguring"},
		{"fault while idle", []trace.Event{ev(0, trace.KindFault, 1, 0, 0, -1)}, "not reconfiguring"},
		{"item start before arrival", append(
			[]trace.Event{
				ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
				ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
			},
			ev(81*sim.Millisecond, trace.KindItemStart, 9, 0, 0, 0)), "before arrival"},
		{"item done without start", append(append([]trace.Event{}, loaded...),
			ev(81*sim.Millisecond, trace.KindItemDone, 1, 0, 0, 0)), "without start"},
		{"item done mismatch", append(append([]trace.Event{}, inflight...),
			ev(90*sim.Millisecond, trace.KindItemDone, 1, 0, 0, 5)), "does not match open item"},
		{"task done mid-item", append(append([]trace.Event{}, inflight...),
			ev(90*sim.Millisecond, trace.KindTaskDone, 1, 0, 0, -1)), "item in flight"},
		{"preempt request on empty slot", []trace.Event{ev(0, trace.KindPreemptRequest, 1, 0, 4, -1)}, "empty slot"},
		{"preempt unloaded slot", []trace.Event{ev(0, trace.KindPreempt, 1, 0, 4, -1)}, "unloaded"},
		{"checkpoint with no item", append(append([]trace.Event{}, loaded...),
			ev(90*sim.Millisecond, trace.KindCheckpoint, 1, 0, 0, -1)), "no item in flight"},
		{"watchdog with no item", append(append([]trace.Event{}, loaded...),
			ev(90*sim.Millisecond, trace.KindWatchdog, 1, 0, 0, -1)), "no item in flight"},
		{"quarantine mid-item", append(append([]trace.Event{}, inflight...),
			ev(90*sim.Millisecond, trace.KindQuarantine, 1, 0, 0, -1)), "item in flight"},
		{"item start on offline slot", []trace.Event{
			ev(0, trace.KindArrival, 1, -1, -1, -1),
			ev(0, trace.KindSlotOffline, -1, -1, 0, -1),
			ev(1*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		}, "offline slot"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			c := NewChecker()
			for _, e := range tc.events {
				c.Observe(e)
			}
			if err := c.Err(); err == nil {
				t.Fatalf("checker accepted %s", tc.name)
			} else if got := strings.Join(c.Violations(), "\n"); !strings.Contains(got, tc.want) {
				t.Fatalf("violations %q do not mention %q", got, tc.want)
			}
		})
	}

	// Well-formed recovery: a transient fault retries, a checkpoint aborts
	// the open item mid-flight, a preempt-request lands on a loaded slot,
	// an offline slot kills its occupant silently. None violate.
	c := NewChecker()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(10*sim.Millisecond, trace.KindFault, 1, 0, 0, -1),
		ev(10*sim.Millisecond, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(11*sim.Millisecond, trace.KindRetry, 1, 0, 0, -1),
		ev(90*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(91*sim.Millisecond, trace.KindPreemptRequest, 1, 0, 0, -1),
		ev(92*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ev(99*sim.Millisecond, trace.KindCheckpoint, 1, 0, 0, 0),
		ev(200*sim.Millisecond, trace.KindReconfigStart, 1, 0, 1, -1),
		ev(280*sim.Millisecond, trace.KindReconfigDone, 1, 0, 1, -1),
		ev(281*sim.Millisecond, trace.KindItemStart, 1, 0, 1, 0),
		ev(282*sim.Millisecond, trace.KindSlotOffline, -1, -1, 1, -1),
		ev(283*sim.Millisecond, trace.KindQuarantine, -1, -1, 1, -1),
		ev(400*sim.Millisecond, trace.KindReconfigStart, 1, 0, 2, -1),
		ev(480*sim.Millisecond, trace.KindReconfigDone, 1, 0, 2, -1),
		ev(481*sim.Millisecond, trace.KindItemStart, 1, 0, 2, 0),
		ev(490*sim.Millisecond, trace.KindItemDone, 1, 0, 2, 0),
		ev(490*sim.Millisecond, trace.KindTaskDone, 1, 0, 2, -1),
		ev(491*sim.Millisecond, trace.KindRetire, 1, -1, -1, -1),
	} {
		c.Observe(e)
	}
	if err := c.Finish(1); err != nil {
		t.Fatalf("clean recovery stream flagged: %v", err)
	}
}

// End-of-run bookkeeping violations.
func TestCheckerFinishViolations(t *testing.T) {
	// Double finish of the same (app, task, item).
	c := NewChecker()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ev(90*sim.Millisecond, trace.KindItemDone, 1, 0, 0, 0),
		ev(91*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ev(99*sim.Millisecond, trace.KindItemDone, 1, 0, 0, 0),
		ev(99*sim.Millisecond, trace.KindTaskDone, 1, 0, 0, -1),
		ev(100*sim.Millisecond, trace.KindRetire, 1, -1, -1, -1),
	} {
		c.Observe(e)
	}
	err := c.Finish(1)
	if err == nil || !strings.Contains(err.Error(), "finished 2 times") {
		t.Fatalf("double finish not flagged: %v", err)
	}

	// Result-count mismatch.
	c = NewChecker()
	c.Observe(ev(0, trace.KindArrival, 1, -1, -1, -1))
	if err := c.Finish(5); err == nil {
		t.Fatal("arrival/result mismatch not flagged")
	}
}
