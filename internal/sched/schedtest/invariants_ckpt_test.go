package schedtest

import (
	"strings"
	"testing"

	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

func ckptEv(at sim.Duration, k trace.Kind, app int64, task, slot, item int, dur, progress sim.Duration) trace.Event {
	e := ev(at, k, app, task, slot, item)
	e.Dur = dur
	e.Progress = progress
	return e
}

// A clean checkpoint lifetime: periodic saves with growing progress, a
// watchdog kill, a restore of exactly the saved progress on another
// slot, and completion. Nothing fires.
func TestCheckerAcceptsCheckpointStream(t *testing.T) {
	c := NewChecker()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ckptEv(131*sim.Millisecond, trace.KindCheckpointSave, 1, 0, 0, 0, 9*sim.Millisecond, 10*sim.Millisecond),
		ckptEv(190*sim.Millisecond, trace.KindCheckpointSave, 1, 0, 0, 0, 9*sim.Millisecond, 20*sim.Millisecond),
		ev(400*sim.Millisecond, trace.KindWatchdog, 1, 0, 0, 0),
		ev(401*sim.Millisecond, trace.KindReconfigStart, 1, 0, 1, -1),
		ev(481*sim.Millisecond, trace.KindReconfigDone, 1, 0, 1, -1),
		ev(482*sim.Millisecond, trace.KindItemStart, 1, 0, 1, 0),
		ckptEv(491*sim.Millisecond, trace.KindRestore, 1, 0, 1, 0, 9*sim.Millisecond, 20*sim.Millisecond),
		ev(580*sim.Millisecond, trace.KindItemDone, 1, 0, 1, 0),
		ev(580*sim.Millisecond, trace.KindTaskDone, 1, 0, 1, -1),
		ev(581*sim.Millisecond, trace.KindRetire, 1, -1, -1, -1),
	} {
		c.Observe(e)
	}
	if err := c.Finish(1); err != nil {
		t.Fatalf("clean checkpoint stream flagged: %v", err)
	}
}

// Each corrupted checkpoint sequence must fire with a violation
// mentioning the expected phrase.
func TestCheckerCatchesCheckpointViolations(t *testing.T) {
	inflight := []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
	}
	withSave := append(append([]trace.Event{}, inflight...),
		ckptEv(131*sim.Millisecond, trace.KindCheckpointSave, 1, 0, 0, 0, 9*sim.Millisecond, 20*sim.Millisecond))

	cases := []struct {
		name   string
		events []trace.Event
		want   string
	}{
		{"save for idle item", []trace.Event{
			ckptEv(0, trace.KindCheckpointSave, 1, 0, 0, 0, sim.Millisecond, sim.Millisecond),
		}, "not in flight"},
		{"save without progress", append(append([]trace.Event{}, inflight...),
			ckptEv(131*sim.Millisecond, trace.KindCheckpointSave, 1, 0, 0, 0, sim.Millisecond, 0)),
			"captured no progress"},
		{"save not monotonic", append(append([]trace.Event{}, withSave...),
			ckptEv(190*sim.Millisecond, trace.KindCheckpointSave, 1, 0, 0, 0, sim.Millisecond, 20*sim.Millisecond)),
			"not beyond last snapshot"},
		{"restore from nothing", append(append([]trace.Event{}, inflight...),
			ckptEv(90*sim.Millisecond, trace.KindRestore, 1, 0, 0, 0, sim.Millisecond, 10*sim.Millisecond)),
			"without a prior checkpoint"},
		{"restore beyond snapshot", append(append([]trace.Event{}, withSave...),
			ev(200*sim.Millisecond, trace.KindWatchdog, 1, 0, 0, 0),
			ev(201*sim.Millisecond, trace.KindReconfigStart, 1, 0, 1, -1),
			ev(281*sim.Millisecond, trace.KindReconfigDone, 1, 0, 1, -1),
			ev(282*sim.Millisecond, trace.KindItemStart, 1, 0, 1, 0),
			ckptEv(290*sim.Millisecond, trace.KindRestore, 1, 0, 1, 0, sim.Millisecond, 50*sim.Millisecond)),
			"more than"},
		{"restore for idle item", append(append([]trace.Event{}, withSave...),
			ev(200*sim.Millisecond, trace.KindWatchdog, 1, 0, 0, 0),
			ckptEv(290*sim.Millisecond, trace.KindRestore, 1, 0, 0, 0, sim.Millisecond, 20*sim.Millisecond)),
			"not in flight"},
		{"fault from nothing", []trace.Event{
			ckptEv(0, trace.KindCheckpointFault, 1, 0, 0, 0, 0, 10*sim.Millisecond),
		}, "without a prior checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewChecker()
			for _, e := range tc.events {
				c.Observe(e)
			}
			if err := c.Err(); err == nil {
				t.Fatalf("checker accepted %s", tc.name)
			} else if got := strings.Join(c.Violations(), "\n"); !strings.Contains(got, tc.want) {
				t.Fatalf("violations %q do not mention %q", got, tc.want)
			}
		})
	}
}

// With MinStateXferGap set, checkpoint state transfers that complete
// closer than one CAP stream time are flagged.
func TestCheckerStateTransferSerialization(t *testing.T) {
	c := NewChecker()
	c.MinStateXferGap = 8 * sim.Millisecond
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindArrival, 2, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ev(100*sim.Millisecond, trace.KindReconfigStart, 2, 0, 1, -1),
		ev(180*sim.Millisecond, trace.KindReconfigDone, 2, 0, 1, -1),
		ev(181*sim.Millisecond, trace.KindItemStart, 2, 0, 1, 0),
		ckptEv(200*sim.Millisecond, trace.KindCheckpointSave, 1, 0, 0, 0, 8*sim.Millisecond, 10*sim.Millisecond),
		ckptEv(203*sim.Millisecond, trace.KindCheckpointSave, 2, 0, 1, 0, 8*sim.Millisecond, 10*sim.Millisecond),
	} {
		c.Observe(e)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("overlapping state transfers accepted")
	}
	if got := strings.Join(c.Violations(), "\n"); !strings.Contains(got, "CAP not serialized") {
		t.Fatalf("violations %q do not mention CAP serialization", got)
	}

	// Spaced exactly one stream time apart: clean.
	c = NewChecker()
	c.MinStateXferGap = 8 * sim.Millisecond
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ckptEv(200*sim.Millisecond, trace.KindCheckpointSave, 1, 0, 0, 0, 8*sim.Millisecond, 10*sim.Millisecond),
		ckptEv(208*sim.Millisecond, trace.KindCheckpointSave, 1, 0, 0, 0, 8*sim.Millisecond, 20*sim.Millisecond),
	} {
		c.Observe(e)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("serialized transfers flagged: %v", err)
	}
}
