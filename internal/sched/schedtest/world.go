// Package schedtest provides a lightweight fake sched.World for unit
// testing scheduling policies without the hypervisor or the simulator.
package schedtest

import (
	"fmt"
	"testing"

	"nimblock/internal/hls"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Occ is one slot occupant.
type Occ struct {
	App  *sched.App
	Task int
}

// World is a scriptable sched.World.
type World struct {
	Clock     sim.Time
	Slots     int
	Occupants map[int]Occ
	Waiting   map[int]bool
	Preempted map[int]bool
	Offline   map[int]bool
	Busy      bool
	AppList   []*sched.App
	// Service scripts per-tenant delivered service for TenantService.
	Service map[string]sim.Duration

	// Reconfigs records Reconfigure calls as "name#id/tN@sM".
	Reconfigs []string
	// Preempts records RequestPreempt slots in order.
	Preempts []int
}

// NewWorld returns an empty world with the given slot count.
func NewWorld(slots int) *World {
	return &World{
		Slots:     slots,
		Occupants: map[int]Occ{},
		Waiting:   map[int]bool{},
		Preempted: map[int]bool{},
		Offline:   map[int]bool{},
		Service:   map[string]sim.Duration{},
	}
}

// Now implements sched.World.
func (w *World) Now() sim.Time { return w.Clock }

// NumSlots implements sched.World.
func (w *World) NumSlots() int { return w.Slots }

// UsableSlots implements sched.World.
func (w *World) UsableSlots() int { return w.Slots - len(w.Offline) }

// SlotUsable implements sched.World.
func (w *World) SlotUsable(slot int) bool { return !w.Offline[slot] }

// CAPBusy implements sched.World.
func (w *World) CAPBusy() bool { return w.Busy }

// Apps implements sched.World.
func (w *World) Apps() []*sched.App { return w.AppList }

// FreeSlots implements sched.World.
func (w *World) FreeSlots() []int {
	var free []int
	for s := 0; s < w.Slots; s++ {
		if _, ok := w.Occupants[s]; !ok && !w.Offline[s] {
			free = append(free, s)
		}
	}
	return free
}

// SlotOccupant implements sched.World.
func (w *World) SlotOccupant(slot int) (*sched.App, int, bool) {
	o, ok := w.Occupants[slot]
	return o.App, o.Task, ok
}

// SlotWaiting implements sched.World.
func (w *World) SlotWaiting(slot int) bool { return w.Waiting[slot] }

// PreemptRequested implements sched.World.
func (w *World) PreemptRequested(slot int) bool { return w.Preempted[slot] }

// TenantService implements sched.World from the scripted Service map.
func (w *World) TenantService(tenant string) sim.Duration { return w.Service[tenant] }

// RequestPreempt implements sched.World.
func (w *World) RequestPreempt(slot int) error {
	w.Preempted[slot] = true
	w.Preempts = append(w.Preempts, slot)
	return nil
}

// Reconfigure implements sched.World: it transitions the task to
// configuring and records the call.
func (w *World) Reconfigure(slot int, a *sched.App, task int) error {
	if _, ok := w.Occupants[slot]; ok {
		return fmt.Errorf("schedtest: slot %d occupied", slot)
	}
	if w.Offline[slot] {
		return fmt.Errorf("schedtest: slot %d offline", slot)
	}
	if !a.Configurable(task) {
		return fmt.Errorf("schedtest: %s task %d not configurable", a.Name, task)
	}
	if err := a.MarkConfiguring(task, slot); err != nil {
		return err
	}
	w.Occupants[slot] = Occ{a, task}
	w.Reconfigs = append(w.Reconfigs, fmt.Sprintf("%s#%d/t%d@s%d", a.Name, a.ID, task, slot))
	return nil
}

// Occupy places an app's task in a slot as already active.
func (w *World) Occupy(t *testing.T, slot int, a *sched.App, task int) {
	t.Helper()
	if err := a.MarkConfiguring(task, slot); err != nil {
		t.Fatal(err)
	}
	if err := a.MarkActive(task); err != nil {
		t.Fatal(err)
	}
	w.Occupants[slot] = Occ{a, task}
}

// ActivateConfigured flips every configuring occupant to active,
// emulating reconfiguration completion.
func (w *World) ActivateConfigured(t *testing.T) {
	t.Helper()
	for _, o := range w.Occupants {
		if o.App.TaskState(o.Task) == sched.TaskConfiguring {
			if err := o.App.MarkActive(o.Task); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// FinishTask drives a task through all its remaining items and frees the
// slot, emulating bulk completion.
func (w *World) FinishTask(t *testing.T, slot int) {
	t.Helper()
	o, ok := w.Occupants[slot]
	if !ok {
		t.Fatalf("schedtest: finish of empty slot %d", slot)
	}
	a, task := o.App, o.Task
	if a.TaskState(task) == sched.TaskConfiguring {
		if err := a.MarkActive(task); err != nil {
			t.Fatal(err)
		}
	}
	for a.TaskState(task) == sched.TaskActive {
		item := a.NextReadyItem(task, true)
		if item < 0 {
			t.Fatalf("schedtest: task %d of %s stuck with no ready item", task, a.Name)
		}
		if err := a.MarkItemStarted(task, item); err != nil {
			t.Fatal(err)
		}
		if _, err := a.MarkItemDone(task, item); err != nil {
			t.Fatal(err)
		}
	}
	delete(w.Occupants, slot)
}

// NewApp builds an app over a benchmark graph.
func NewApp(t *testing.T, id int64, g *taskgraph.Graph, batch, prio int, arrival sim.Time) *sched.App {
	t.Helper()
	a, err := sched.NewApp(id, g, hls.Analyze(g), batch, prio, arrival)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
