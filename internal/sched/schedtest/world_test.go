package schedtest

import (
	"testing"

	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// chainGraph builds a two-task chain for driving the fake world.
func chainGraph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	b := taskgraph.NewBuilder("chain")
	b.AddTask("t0", 10*sim.Millisecond)
	b.AddTask("t1", 10*sim.Millisecond)
	b.AddEdge(0, 1)
	return b.MustBuild()
}

func TestWorldImplementsSchedWorld(t *testing.T) {
	var _ sched.World = NewWorld(1)
}

func TestWorldAccessors(t *testing.T) {
	w := NewWorld(3)
	if w.Now() != 0 || w.NumSlots() != 3 || w.UsableSlots() != 3 || w.CAPBusy() {
		t.Fatalf("fresh world state wrong: %+v", w)
	}
	w.Clock = sim.Time(42)
	w.Busy = true
	if w.Now() != 42 || !w.CAPBusy() {
		t.Fatal("clock/CAP not scriptable")
	}
	w.Offline[2] = true
	if w.UsableSlots() != 2 || w.SlotUsable(2) || !w.SlotUsable(0) {
		t.Fatal("offline slot still usable")
	}
	if free := w.FreeSlots(); len(free) != 2 || free[0] != 0 || free[1] != 1 {
		t.Fatalf("free slots %v, want [0 1]", free)
	}
	a := NewApp(t, 1, chainGraph(t), 2, 3, 0)
	w.AppList = []*sched.App{a}
	if len(w.Apps()) != 1 {
		t.Fatal("apps not exposed")
	}
	if w.SlotWaiting(0) || w.PreemptRequested(0) {
		t.Fatal("fresh slot flags set")
	}
	w.Waiting[0] = true
	if !w.SlotWaiting(0) {
		t.Fatal("waiting flag not exposed")
	}
	if err := w.RequestPreempt(1); err != nil {
		t.Fatal(err)
	}
	if !w.PreemptRequested(1) || len(w.Preempts) != 1 || w.Preempts[0] != 1 {
		t.Fatal("preempt request not recorded")
	}
}

func TestWorldReconfigureAndFinish(t *testing.T) {
	w := NewWorld(2)
	a := NewApp(t, 7, chainGraph(t), 2, 3, 0)

	if err := w.Reconfigure(0, a, 0); err != nil {
		t.Fatal(err)
	}
	if len(w.Reconfigs) != 1 || w.Reconfigs[0] != "chain#7/t0@s0" {
		t.Fatalf("reconfig record %v", w.Reconfigs)
	}
	if got, task, ok := w.SlotOccupant(0); !ok || got != a || task != 0 {
		t.Fatal("occupant not recorded")
	}
	if _, _, ok := w.SlotOccupant(1); ok {
		t.Fatal("phantom occupant")
	}
	// Occupied slot, offline slot, and a dependency-blocked task all refuse.
	if err := w.Reconfigure(0, a, 0); err == nil {
		t.Fatal("occupied slot accepted")
	}
	w.Offline[1] = true
	if err := w.Reconfigure(1, a, 1); err == nil {
		t.Fatal("offline slot accepted")
	}
	delete(w.Offline, 1)
	// A task whose predecessor is still idle is not configurable.
	b := NewApp(t, 8, chainGraph(t), 2, 3, 0)
	if err := w.Reconfigure(1, b, 1); err == nil {
		t.Fatal("dependency-blocked task accepted")
	}

	w.ActivateConfigured(t)
	if a.TaskState(0) != sched.TaskActive {
		t.Fatal("occupant not activated")
	}
	w.ActivateConfigured(t) // idempotent on active occupants
	w.FinishTask(t, 0)
	if _, _, ok := w.SlotOccupant(0); ok {
		t.Fatal("slot not freed")
	}

	// Second task is now configurable; FinishTask activates it itself.
	if err := w.Reconfigure(1, a, 1); err != nil {
		t.Fatal(err)
	}
	w.FinishTask(t, 1)
	if !a.Done() {
		t.Fatal("app not done after both tasks finished")
	}
}

func TestWorldOccupy(t *testing.T) {
	w := NewWorld(1)
	a := NewApp(t, 3, chainGraph(t), 1, 1, 0)
	w.Occupy(t, 0, a, 0)
	if a.TaskState(0) != sched.TaskActive {
		t.Fatal("occupy did not activate the task")
	}
	if _, task, ok := w.SlotOccupant(0); !ok || task != 0 {
		t.Fatal("occupy did not seat the task")
	}
}
