package schedtest

import (
	"strings"
	"testing"

	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// A hand-computed stream must satisfy the energy invariant exactly:
// one slot occupied from reconfig-start through task-done (90 ms),
// on a 2-slot board observed for 100 ms, with no offline time.
func TestCheckEnergyAcceptsConservedRun(t *testing.T) {
	c := NewChecker()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(81*sim.Millisecond, trace.KindItemStart, 1, 0, 0, 0),
		ev(90*sim.Millisecond, trace.KindItemDone, 1, 0, 0, 0),
		ev(90*sim.Millisecond, trace.KindTaskDone, 1, 0, 0, -1),
		ev(91*sim.Millisecond, trace.KindRetire, 1, -1, -1, -1),
	} {
		c.Observe(e)
	}
	until := sim.Time(100 * sim.Millisecond)
	const staticW, activeW = 2.0, 5.0
	// usable = 2 slots x 0.1 s; occupied = 1 slot x 0.09 s.
	want := staticW*(2*0.1) + activeW*0.09
	if err := c.CheckEnergy(2, staticW, activeW, until, want); err != nil {
		t.Fatal(err)
	}
	if got := c.OccupiedSlotTime(until); got != 90*sim.Millisecond {
		t.Fatalf("occupied slot-time %v, want 90ms", got)
	}
}

// A report that disagrees with the trace-derived integrals must be
// flagged, and the offline integral must shrink the usable slot-time.
func TestCheckEnergyFlagsViolations(t *testing.T) {
	c := NewChecker()
	for _, e := range []trace.Event{
		ev(0, trace.KindArrival, 1, -1, -1, -1),
		ev(0, trace.KindReconfigStart, 1, 0, 0, -1),
		ev(80*sim.Millisecond, trace.KindReconfigDone, 1, 0, 0, -1),
		ev(90*sim.Millisecond, trace.KindTaskDone, 1, 0, 0, -1),
		// Slot 1 dies at 50 ms: usable drops to 1 slot from then on.
		ev(50*sim.Millisecond, trace.KindSlotOffline, -1, -1, 1, -1),
	} {
		c.Observe(e)
	}
	until := sim.Time(100 * sim.Millisecond)
	const staticW, activeW = 2.0, 5.0
	// usable = 2 x 0.05 + 1 x 0.05 = 0.15 slot-s; occupied = 0.09 slot-s.
	want := staticW*0.15 + activeW*0.09
	if err := c.CheckEnergy(2, staticW, activeW, until, want); err != nil {
		t.Fatalf("conserved report rejected: %v", err)
	}
	err := c.CheckEnergy(2, staticW, activeW, until, want*1.01)
	if err == nil || !strings.Contains(err.Error(), "energy not conserved") {
		t.Fatalf("inflated report not flagged: %v", err)
	}
	if err := c.CheckEnergy(2, staticW, activeW, until, want-0.001); err == nil {
		t.Fatal("deflated report not flagged")
	}
}
