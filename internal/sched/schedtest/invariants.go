package schedtest

import (
	"fmt"
	"math"
	"sync"

	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/trace"
)

// DefaultMinReconfigGap is the minimum spacing between reconfiguration
// completions on the default board: one slot image takes ~80 ms end to
// end, so completions closer than this betray a CAP that stopped
// serializing.
const DefaultMinReconfigGap = 70 * sim.Millisecond

// maxViolations bounds how many violations a Checker retains; a broken
// scheduler produces them by the thousand and the first few tell the story.
const maxViolations = 20

// Checker is a streaming scheduler-invariant checker. It consumes trace
// events one at a time — implementing the obs.Sink shape — so the same
// checker validates recorded logs (Replay) and live runs (attach it as
// hv.Config.Observer). It verifies the structural properties every
// policy and workload must honour:
//
//  1. CAP serialization: the board has one configuration port, so
//     reconfiguration completions are spaced by at least MinReconfigGap.
//  2. Slot exclusivity: a slot hosts at most one activity at a time
//     (reconfiguring or one in-flight item), items run only on
//     configured slots, and offline slots are never used again.
//  3. Item conservation: every (app, task, item) that finishes finished
//     exactly once, and every start is matched by a finish or an
//     explicit abort (checkpoint, watchdog kill, slot failure).
//  4. Batch-boundary preemption: KindPreempt never lands mid-item.
//  5. Causality: retire follows arrival; nothing happens to an
//     application before it arrives.
//  6. Checkpoint consistency: snapshots capture strictly increasing
//     progress per item, an item restores only from a state that was
//     actually checkpointed and never resumes more work than was saved,
//     and checkpoint state transfers share the serialized CAP
//     (successive transfer completions are spaced by MinStateXferGap).
//  7. Energy conservation (CheckEnergy): the checker independently
//     integrates occupied (reconfiguring or loaded) and offline slot
//     counts over the event stream; reported joules must equal static
//     power x usable-slot integral + active power x occupied-slot
//     integral.
//
// Checker is safe for concurrent use; the simulation itself is
// single-threaded per engine, but one checker may watch several engines
// (the parallel harness) at the cost of interleaving slot state, so for
// strict checking attach one checker per run.
type Checker struct {
	// MinReconfigGap overrides the CAP serialization spacing; zero
	// disables the check (heterogeneous boards have different stream
	// times). Set before the first event.
	MinReconfigGap sim.Duration
	// MinStateXferGap is the minimum spacing between checkpoint state
	// transfer completions (saves, restores, corrupt restores): the CAP
	// streams one state image at a time, so with a uniform state size
	// completions can never be closer than one stream time. Zero (the
	// default) disables the check — state sizes vary per task in the
	// general case.
	MinStateXferGap sim.Duration

	mu         sync.Mutex
	slots      map[int]*slotState
	started    map[itemKey]int
	finished   map[itemKey]int
	aborted    map[itemKey]int
	snapshots  map[itemKey]sim.Duration
	arrived    map[int64]sim.Time
	retired    map[int64]sim.Time
	lastDone   sim.Time
	seenDone   bool
	lastXfer   sim.Time
	seenXfer   bool
	events     int
	violations []string

	// Occupancy integrals for the energy-conservation check: occInt is
	// the integral over time of occupied slots (reconfiguring or
	// loaded), offInt of offline slots; both accrue lazily at every
	// event that changes a slot's state.
	occCount int
	offCount int
	occLast  sim.Time
	occInt   sim.Duration
	offInt   sim.Duration
}

type slotState struct {
	reconfiguring bool
	loaded        bool
	itemOpen      bool
	openItem      itemKey
	offline       bool
}

type itemKey struct {
	app        int64
	task, item int
}

// NewChecker returns a checker with the default CAP gap.
func NewChecker() *Checker {
	return &Checker{
		MinReconfigGap: DefaultMinReconfigGap,
		slots:          map[int]*slotState{},
		started:        map[itemKey]int{},
		finished:       map[itemKey]int{},
		aborted:        map[itemKey]int{},
		snapshots:      map[itemKey]sim.Duration{},
		arrived:        map[int64]sim.Time{},
		retired:        map[int64]sim.Time{},
	}
}

// Replay feeds an entire recorded log through the checker and returns
// the checker for chaining.
func (c *Checker) Replay(l *trace.Log) *Checker {
	for _, e := range l.Events() {
		c.Observe(e)
	}
	return c
}

func (c *Checker) violatef(format string, args ...any) {
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

func (c *Checker) slot(s int) *slotState {
	st, ok := c.slots[s]
	if !ok {
		st = &slotState{}
		c.slots[s] = st
	}
	return st
}

// Observe implements the obs.Sink shape: it advances the per-slot state
// machines and records violations instead of failing, so it can run
// inside a live simulation.
func (c *Checker) Observe(e trace.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events++
	var st *slotState
	var preOcc, preOff bool
	if e.Slot >= 0 {
		st = c.slot(e.Slot)
		preOcc = st.reconfiguring || st.loaded
		preOff = st.offline
	}
	c.observeLocked(e)
	if st == nil {
		return
	}
	postOcc := st.reconfiguring || st.loaded
	postOff := st.offline
	if postOcc == preOcc && postOff == preOff {
		return
	}
	// Integrate with the old counts up to this instant, then step them:
	// the occupancy integrals stay exact under int64 arithmetic, so the
	// energy check can demand equality rather than closeness.
	c.accrueOcc(e.At)
	if postOcc != preOcc {
		if postOcc {
			c.occCount++
		} else {
			c.occCount--
		}
	}
	if postOff != preOff {
		if postOff {
			c.offCount++
		} else {
			c.offCount--
		}
	}
}

func (c *Checker) observeLocked(e trace.Event) {
	switch e.Kind {
	case trace.KindArrival:
		c.arrived[e.AppID] = e.At
	case trace.KindRetire:
		if _, ok := c.arrived[e.AppID]; !ok {
			c.violatef("retire before arrival: %v", e)
		} else if e.At < c.arrived[e.AppID] {
			c.violatef("retire at %v precedes arrival at %v: %v", e.At, c.arrived[e.AppID], e)
		}
		c.retired[e.AppID] = e.At
	case trace.KindReconfigStart:
		s := c.slot(e.Slot)
		if s.offline {
			c.violatef("reconfig start on offline slot: %v", e)
		}
		if s.reconfiguring || s.loaded || s.itemOpen {
			c.violatef("reconfig start on busy slot: %v", e)
		}
		s.reconfiguring = true
	case trace.KindReconfigDone:
		s := c.slot(e.Slot)
		if !s.reconfiguring {
			c.violatef("reconfig done without start: %v", e)
		}
		s.reconfiguring = false
		s.loaded = true
		if gap := c.MinReconfigGap; gap > 0 && c.seenDone && e.At.Sub(c.lastDone) < gap {
			c.violatef("reconfigurations completed %v apart (< %v): CAP not serialized: %v", e.At.Sub(c.lastDone), gap, e)
		}
		c.lastDone, c.seenDone = e.At, true
	case trace.KindRetry:
		if s := c.slot(e.Slot); !s.reconfiguring {
			c.violatef("retry on slot not reconfiguring: %v", e)
		}
	case trace.KindFault:
		s := c.slot(e.Slot)
		if !s.reconfiguring {
			c.violatef("fault on slot not reconfiguring: %v", e)
		}
		s.reconfiguring = false
	case trace.KindItemStart:
		s := c.slot(e.Slot)
		if s.offline {
			c.violatef("item start on offline slot: %v", e)
		}
		if !s.loaded {
			c.violatef("item start on unconfigured slot: %v", e)
		}
		if s.itemOpen {
			c.violatef("two items in flight on slot %d: %v", e.Slot, e)
		}
		if _, ok := c.arrived[e.AppID]; !ok {
			c.violatef("item start before arrival: %v", e)
		}
		s.itemOpen = true
		s.openItem = itemKey{e.AppID, e.Task, e.Item}
		c.started[s.openItem]++
	case trace.KindItemDone:
		s := c.slot(e.Slot)
		if !s.itemOpen {
			c.violatef("item done without start: %v", e)
		} else if (itemKey{e.AppID, e.Task, e.Item}) != s.openItem {
			c.violatef("item done %v does not match open item %+v", e, s.openItem)
		}
		s.itemOpen = false
		c.finished[itemKey{e.AppID, e.Task, e.Item}]++
		delete(c.snapshots, itemKey{e.AppID, e.Task, e.Item})
	case trace.KindTaskDone:
		s := c.slot(e.Slot)
		if s.itemOpen {
			c.violatef("task done with item in flight: %v", e)
		}
		s.loaded = false
	case trace.KindPreemptRequest:
		if s := c.slot(e.Slot); !s.loaded && !s.reconfiguring {
			c.violatef("preempt request on empty slot: %v", e)
		}
	case trace.KindPreempt:
		s := c.slot(e.Slot)
		if s.itemOpen {
			c.violatef("preemption mid-item (not at a batch boundary): %v", e)
		}
		if !s.loaded {
			c.violatef("preemption of unloaded slot: %v", e)
		}
		s.loaded = false
	case trace.KindCheckpoint:
		// Mid-item preemption with state capture (both the legacy study
		// mode and the checkpoint subsystem's on-demand path): the
		// in-flight item is aborted and resumes later.
		s := c.slot(e.Slot)
		if !s.itemOpen {
			c.violatef("checkpoint with no item in flight: %v", e)
		} else {
			c.aborted[s.openItem]++
		}
		if e.Progress > 0 {
			k := itemKey{e.AppID, e.Task, e.Item}
			if prev, ok := c.snapshots[k]; ok && e.Progress < prev {
				c.violatef("checkpoint progress regressed from %v: %v", prev, e)
			}
			c.snapshots[k] = e.Progress
		}
		c.observeXfer(e)
		s.itemOpen = false
		s.loaded = false
	case trace.KindCheckpointSave:
		// Periodic save: the state streams out through the CAP while the
		// item stays in flight; each snapshot must capture strictly more
		// progress than the last.
		s := c.slot(e.Slot)
		k := itemKey{e.AppID, e.Task, e.Item}
		if !s.itemOpen || s.openItem != k {
			c.violatef("checkpoint save for an item not in flight: %v", e)
		}
		if e.Progress <= 0 {
			c.violatef("checkpoint save captured no progress: %v", e)
		}
		if prev, ok := c.snapshots[k]; ok && e.Progress <= prev {
			c.violatef("checkpoint save progress %v not beyond last snapshot %v: %v", e.Progress, prev, e)
		}
		c.snapshots[k] = e.Progress
		c.observeXfer(e)
	case trace.KindRestore:
		// Resume-from-checkpoint: only a state that was actually saved can
		// stream back, and never with more progress than was captured.
		s := c.slot(e.Slot)
		k := itemKey{e.AppID, e.Task, e.Item}
		if !s.itemOpen || s.openItem != k {
			c.violatef("restore for an item not in flight: %v", e)
		}
		prev, ok := c.snapshots[k]
		if !ok {
			c.violatef("restore without a prior checkpoint: %v", e)
		} else if e.Progress > prev {
			c.violatef("restore resumed %v, more than the %v saved: %v", e.Progress, prev, e)
		}
		if e.Progress <= 0 {
			c.violatef("restore resumed no progress: %v", e)
		}
		c.observeXfer(e)
	case trace.KindCheckpointFault:
		// A lost or corrupt snapshot discovered at restore time: it must
		// have existed, and it is unusable afterwards.
		k := itemKey{e.AppID, e.Task, e.Item}
		if _, ok := c.snapshots[k]; !ok {
			c.violatef("checkpoint fault without a prior checkpoint: %v", e)
		}
		delete(c.snapshots, k)
		c.observeXfer(e)
	case trace.KindWatchdog:
		s := c.slot(e.Slot)
		if !s.itemOpen {
			c.violatef("watchdog kill with no item in flight: %v", e)
		} else {
			c.aborted[s.openItem]++
		}
		s.itemOpen = false
		s.loaded = false
	case trace.KindQuarantine:
		if s := c.slot(e.Slot); s.itemOpen {
			c.violatef("quarantine with item in flight: %v", e)
		}
	case trace.KindSlotOffline:
		// Permanent failure or quarantine. A running occupant is killed
		// without its own event; account its open item as aborted.
		s := c.slot(e.Slot)
		if s.itemOpen {
			c.aborted[s.openItem]++
		}
		*s = slotState{offline: true}
	}
}

// observeXfer applies the CAP serialization spacing to checkpoint state
// transfers: events carrying a transfer duration complete one stream at
// a time, so with MinStateXferGap set (uniform state size) completions
// can never be closer than one stream time.
func (c *Checker) observeXfer(e trace.Event) {
	if e.Dur <= 0 {
		return
	}
	if gap := c.MinStateXferGap; gap > 0 && c.seenXfer && e.At.Sub(c.lastXfer) < gap {
		c.violatef("state transfers completed %v apart (< %v): CAP not serialized: %v", e.At.Sub(c.lastXfer), gap, e)
	}
	c.lastXfer, c.seenXfer = e.At, true
}

// accrueOcc folds elapsed time into the occupancy integrals.
func (c *Checker) accrueOcc(at sim.Time) {
	if d := at.Sub(c.occLast); d > 0 {
		c.occInt += d * sim.Duration(c.occCount)
		c.offInt += d * sim.Duration(c.offCount)
	}
	c.occLast = at
}

// OccupiedSlotTime reports the checker's independently integrated
// occupied-slot time, accrued to the given instant.
func (c *Checker) OccupiedSlotTime(until sim.Time) sim.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accrueOcc(until)
	return c.occInt
}

// CheckEnergy is the energy-conservation invariant: for a board with
// the given slot count and per-slot static and active power, the
// reported total joules over [0, until] must match static power x
// usable-slot integral + active power x occupied-slot integral, both
// integrals reconstructed from the event stream alone. The integrals
// are exact on both sides; the tolerance only absorbs the final
// float64 joule conversion.
func (c *Checker) CheckEnergy(slots int, staticW, activeW float64, until sim.Time, gotJoules float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accrueOcc(until)
	usable := sim.Duration(until)*sim.Duration(slots) - c.offInt
	want := staticW*usable.Seconds() + activeW*c.occInt.Seconds()
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(want), math.Abs(gotJoules)))
	if math.Abs(want-gotJoules) > tol {
		return fmt.Errorf("schedtest: energy not conserved: reported %v J, trace implies %v J (usable %v slot-time, occupied %v slot-time over %v)",
			gotJoules, want, usable, c.occInt, until)
	}
	return nil
}

// Events reports the number of events observed.
func (c *Checker) Events() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events
}

// Violations returns the violations recorded so far (capped).
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...)
}

// Err returns nil when no invariant has been violated so far, or an
// error describing the first violations.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errLocked()
}

func (c *Checker) errLocked() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("schedtest: %d invariant violation(s), first: %s", len(c.violations), c.violations[0])
}

// Finish runs the end-of-run checks for a completed simulation: item
// conservation (every start matched by exactly one finish or an abort,
// every finish unique), and arrival/retire bookkeeping against the
// expected number of retired applications. It returns the combined
// verdict including any streaming violations.
func (c *Checker) Finish(results int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, n := range c.finished {
		if n != 1 {
			c.violatef("item %+v finished %d times", k, n)
		}
		if c.started[k] == 0 {
			c.violatef("item %+v finished without start", k)
		}
	}
	for k, n := range c.started {
		if want := c.finished[k] + c.aborted[k]; n != want {
			c.violatef("item %+v started %d times, finished %d + aborted %d", k, n, c.finished[k], c.aborted[k])
		}
	}
	if len(c.arrived) != results || len(c.retired) != results {
		c.violatef("%d arrivals, %d retires, %d results", len(c.arrived), len(c.retired), results)
	}
	for id, at := range c.retired {
		if at < c.arrived[id] {
			c.violatef("app %d retired (%v) before arrival (%v)", id, at, c.arrived[id])
		}
	}
	return c.errLocked()
}

// CheckTokenInvariants verifies the PREMA token-pool properties on a set
// of pending applications immediately after TokenPool.Accumulate:
//
//   - non-negativity: no application ever holds negative tokens;
//   - threshold consistency: with threshold defined as the maximum token
//     count floored to a priority level, exactly the applications at or
//     above the threshold are marked candidates;
//   - the candidate pool is never empty while applications wait.
func CheckTokenInvariants(apps []*sched.App) error {
	if len(apps) == 0 {
		return nil
	}
	threshold := 0.0
	for _, a := range apps {
		if a.Tokens < 0 {
			return fmt.Errorf("schedtest: app %d holds negative tokens %v", a.ID, a.Tokens)
		}
		if math.IsNaN(a.Tokens) || math.IsInf(a.Tokens, 0) {
			return fmt.Errorf("schedtest: app %d holds non-finite tokens %v", a.ID, a.Tokens)
		}
		if f := floorPriority(a.Tokens); f > threshold {
			threshold = f
		}
	}
	candidates := 0
	for _, a := range apps {
		want := a.Tokens >= threshold
		if a.Candidate != want {
			return fmt.Errorf("schedtest: app %d candidate=%v, want %v (tokens %v, threshold %v)",
				a.ID, a.Candidate, want, a.Tokens, threshold)
		}
		if a.Candidate {
			candidates++
		}
	}
	if candidates == 0 {
		return fmt.Errorf("schedtest: empty candidate pool with %d waiting applications", len(apps))
	}
	return nil
}

// floorPriority mirrors the unexported sched helper: tokens rounded down
// to the nearest priority level, zero below the lowest.
func floorPriority(tokens float64) float64 {
	out := 0.0
	for _, l := range sched.PriorityLevels {
		if tokens >= float64(l) {
			out = float64(l)
		}
	}
	return out
}
