package schedtest

import (
	"math"
	"strings"
	"testing"

	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

func tokenApps(t *testing.T) []*sched.App {
	t.Helper()
	g := chainGraph(t)
	apps := []*sched.App{
		NewApp(t, 1, g, 2, 1, 0),
		NewApp(t, 2, g, 2, 3, 0),
		NewApp(t, 3, g, 2, 9, 0),
	}
	sched.NewTokenPool().Accumulate(sim.Time(0), apps)
	return apps
}

func TestCheckTokenInvariants(t *testing.T) {
	if err := CheckTokenInvariants(nil); err != nil {
		t.Fatalf("empty app set flagged: %v", err)
	}
	if err := CheckTokenInvariants(tokenApps(t)); err != nil {
		t.Fatalf("freshly accumulated pool flagged: %v", err)
	}

	cases := []struct {
		name    string
		corrupt func([]*sched.App)
		want    string
	}{
		{"negative tokens", func(a []*sched.App) { a[0].Tokens = -1 }, "negative"},
		{"non-finite tokens", func(a []*sched.App) { a[1].Tokens = math.NaN() }, "non-finite"},
		{"candidate below threshold", func(a []*sched.App) { a[0].Candidate = true }, "candidate"},
		{"non-candidate at threshold", func(a []*sched.App) { a[2].Candidate = false }, "candidate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			apps := tokenApps(t)
			tc.corrupt(apps)
			err := CheckTokenInvariants(apps)
			if err == nil {
				t.Fatalf("corruption %q accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
