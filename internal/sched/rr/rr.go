// Package rr implements the queue-based round-robin comparator adapted
// from Coyote's scheduler (Korolija et al., OSDI 2020), ported to the
// Nimblock overlay as in the paper's evaluation.
//
// Tasks from all pending applications are issued to per-slot priority
// queues in a round-robin fashion: each newly ready task goes to the
// queue of the slot with the fewest waiting tasks. Within a queue, tasks
// are ordered by priority level (then issue order). When a slot frees,
// the head of its queue is configured. There is no pipelining and no
// preemption, and — like the original — no global rebalancing once a
// task is issued to a slot queue.
package rr

import (
	"slices"

	"nimblock/internal/sched"
)

// entry is one queued task.
type entry struct {
	app  *sched.App
	task int
	seq  int64
}

// Scheduler is the round-robin policy.
type Scheduler struct {
	queues [][]entry
	issued map[int64]map[int]bool // app ID -> task -> queued at least once
	seq    int64
	free   []bool // scratch for dispatch's free-slot lookup
}

// New returns a round-robin scheduler.
func New() *Scheduler { return &Scheduler{issued: map[int64]map[int]bool{}} }

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "RR" }

// Pipelining implements sched.Scheduler: bulk processing only.
func (s *Scheduler) Pipelining() bool { return false }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(w sched.World, why sched.Reason) {
	if s.queues == nil {
		s.queues = make([][]entry, w.NumSlots())
	}
	s.reroute(w)
	// Dispatching a task can make its successors configurable and
	// therefore issuable; iterate to a fixpoint.
	for {
		issued := s.issue(w)
		dispatched := s.dispatch(w)
		if issued == 0 && dispatched == 0 {
			return
		}
	}
}

// reroute drains queues of slots that went offline, re-issuing their
// entries to the shortest usable queue. Without it the original
// no-rebalancing rule would strand tasks behind a dead slot forever. If
// the whole board is offline the entries stay put until a slot returns.
func (s *Scheduler) reroute(w sched.World) {
	if w.UsableSlots() == 0 {
		return
	}
	var orphans []entry
	for slot := range s.queues {
		if w.SlotUsable(slot) || len(s.queues[slot]) == 0 {
			continue
		}
		orphans = append(orphans, s.queues[slot]...)
		s.queues[slot] = nil
	}
	for _, e := range orphans {
		s.enqueue(w, e)
	}
}

// enqueue appends the entry to the shortest usable queue, keeping the
// queue ordered by priority (high first) then issue order. It reports
// false when no usable slot exists.
func (s *Scheduler) enqueue(w sched.World, e entry) bool {
	q := s.shortestQueue(w)
	if q < 0 {
		return false
	}
	s.queues[q] = append(s.queues[q], e)
	slices.SortStableFunc(s.queues[q], func(x, y entry) int {
		if x.app.Priority != y.app.Priority {
			return y.app.Priority - x.app.Priority
		}
		if x.seq < y.seq {
			return -1
		}
		if x.seq > y.seq {
			return 1
		}
		return 0
	})
	return true
}

// issue sends newly ready tasks to the shortest slot queue, returning how
// many tasks were enqueued.
func (s *Scheduler) issue(w sched.World) int {
	n := 0
	for _, a := range w.Apps() {
		for _, t := range a.ConfigurableTasks() {
			m := s.issued[a.ID]
			if m == nil {
				m = map[int]bool{}
				s.issued[a.ID] = m
			}
			if m[t] {
				continue
			}
			s.seq++
			if !s.enqueue(w, entry{app: a, task: t, seq: s.seq}) {
				// Board fully offline; retry at the next opportunity.
				return n
			}
			m[t] = true
			n++
		}
	}
	return n
}

// shortestQueue returns the usable slot whose queue holds the fewest
// waiting tasks, counting an occupied slot's running task as one waiting
// unit so issuance spreads across the board. It returns -1 when every
// slot is offline.
func (s *Scheduler) shortestQueue(w sched.World) int {
	length := func(slot int) int {
		n := len(s.queues[slot])
		if _, _, busy := w.SlotOccupant(slot); busy {
			n++
		}
		return n
	}
	best, bestLen := -1, 0
	for i := 0; i < len(s.queues); i++ {
		if !w.SlotUsable(i) {
			continue
		}
		if l := length(i); best < 0 || l < bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// dispatch configures queue heads into their slots when free, returning
// how many reconfigurations were issued.
func (s *Scheduler) dispatch(w sched.World) int {
	if s.free == nil {
		s.free = make([]bool, len(s.queues))
	}
	free := s.free
	for i := range free {
		free[i] = false
	}
	for _, f := range w.FreeSlots() {
		free[f] = true
	}
	n := 0
	for slot := range s.queues {
		if !free[slot] {
			continue
		}
		for len(s.queues[slot]) > 0 {
			head := s.queues[slot][0]
			// Pop by copying down so the queue keeps its backing array;
			// re-slicing forward would force enqueue to reallocate forever.
			q := s.queues[slot]
			copy(q, q[1:])
			s.queues[slot] = q[:len(q)-1]
			if head.app.Retired() || !head.app.Configurable(head.task) {
				// Stale entry (task already finished or configured).
				continue
			}
			if err := w.Reconfigure(slot, head.app, head.task); err != nil {
				return n
			}
			n++
			break
		}
	}
	return n
}
