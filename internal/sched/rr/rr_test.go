package rr

import (
	"strings"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/sched"
	"nimblock/internal/sched/schedtest"
)

func TestIdentity(t *testing.T) {
	s := New()
	if s.Name() != "RR" || s.Pipelining() {
		t.Fatalf("identity: name=%q pipelining=%v", s.Name(), s.Pipelining())
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(3)
	a := schedtest.NewApp(t, 1, apps.MustGraph(apps.ImageCompression), 2, 3, 0)
	w.AppList = []*sched.App{a}
	s.Schedule(w, sched.ReasonArrival)
	// The chain prefix spreads across distinct slots (shortest queue
	// first), so three different slots are configured.
	if len(w.Reconfigs) != 3 {
		t.Fatalf("reconfigs = %v", w.Reconfigs)
	}
	used := map[string]bool{}
	for _, rc := range w.Reconfigs {
		used[rc[strings.Index(rc, "@"):]] = true
	}
	if len(used) != 3 {
		t.Fatalf("tasks not distributed round-robin: %v", w.Reconfigs)
	}
}

func TestPriorityOrderWithinQueue(t *testing.T) {
	s := New()
	// Single slot: everything lands in the same queue; priority decides.
	w := schedtest.NewWorld(1)
	lo := schedtest.NewApp(t, 1, apps.MustGraph(apps.LeNet), 1, 1, 0)
	hi := schedtest.NewApp(t, 2, apps.MustGraph(apps.LeNet), 1, 9, 1)
	w.AppList = []*sched.App{lo, hi}
	s.Schedule(w, sched.ReasonArrival)
	if len(w.Reconfigs) != 1 {
		t.Fatalf("reconfigs = %v", w.Reconfigs)
	}
	// The slot was free at issue time, so the first issued task (lo.t0)
	// dispatched immediately; the queue now orders hi ahead of lo's
	// remaining tasks. Free the slot and re-schedule.
	w.FinishTask(t, 0)
	s.Schedule(w, sched.ReasonSlotFree)
	if len(w.Reconfigs) != 2 || !strings.HasPrefix(w.Reconfigs[1], "LeNet#2") {
		t.Fatalf("reconfigs = %v, want high-priority task next", w.Reconfigs)
	}
}

func TestStaleEntriesSkipped(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(2)
	a := schedtest.NewApp(t, 1, apps.MustGraph(apps.LeNet), 1, 3, 0)
	w.AppList = []*sched.App{a}
	// Drive the whole app to completion through the scheduler.
	for round := 0; round < 10 && !a.Done(); round++ {
		s.Schedule(w, sched.ReasonTick)
		for slot := 0; slot < 2; slot++ {
			if _, ok := w.Occupants[slot]; ok {
				w.FinishTask(t, slot)
			}
		}
	}
	if !a.Done() {
		t.Fatal("app never finished under RR")
	}
	a.Retire()
	w.AppList = nil
	// Any queue entries left behind are stale: scheduling must not
	// reconfigure anything.
	n := len(w.Reconfigs)
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != n {
		t.Fatalf("stale entries dispatched: %v", w.Reconfigs[n:])
	}
}

func TestTasksIssuedOnce(t *testing.T) {
	s := New()
	w := schedtest.NewWorld(1)
	a := schedtest.NewApp(t, 1, apps.MustGraph(apps.Rendering3D), 1, 3, 0)
	w.AppList = []*sched.App{a}
	s.Schedule(w, sched.ReasonArrival)
	s.Schedule(w, sched.ReasonTick)
	s.Schedule(w, sched.ReasonTick)
	if len(w.Reconfigs) != 1 {
		t.Fatalf("reconfigs = %v; a queued task was re-issued", w.Reconfigs)
	}
}
