package sched

import (
	"slices"

	"nimblock/internal/sim"
)

// PriorityLevels are the three increasing priority levels used throughout
// the paper: low, medium, high.
var PriorityLevels = []int{1, 3, 9}

// DefaultAlpha scales token accumulation per unit of normalized
// performance degradation.
const DefaultAlpha = 1.0

// TokenPool implements the PREMA token accumulation strategy shared by
// the PREMA comparator and the Nimblock algorithm (Algorithm 1):
//
//   - a newly arrived application starts with tokens equal to its priority;
//   - waiting applications accumulate tokens proportional to priority and
//     normalized performance degradation;
//   - the candidate threshold is the maximum token count rounded down to
//     the nearest priority level, and applications at or above it are
//     candidates.
//
// Degradation is normalized by the HLS-estimated isolated batch latency,
// so short applications degrade (and therefore accumulate tokens) faster
// than long ones for the same wait — PREMA's intent.
type TokenPool struct {
	// Alpha scales accumulation; DefaultAlpha if zero-constructed via
	// NewTokenPool.
	Alpha float64

	seen map[int64]sim.Time // app ID -> last accumulation time
	live map[int64]bool     // scratch for Accumulate's retirement sweep
}

// NewTokenPool returns a pool with the default alpha.
func NewTokenPool() *TokenPool {
	return &TokenPool{Alpha: DefaultAlpha, seen: map[int64]sim.Time{}}
}

// Accumulate initializes tokens for new applications and accrues tokens
// for waiting ones, integrating degradation since the previous call.
// It then recomputes the candidate pool. Retired apps are forgotten.
func (p *TokenPool) Accumulate(now sim.Time, apps []*App) {
	if p.seen == nil {
		p.seen = map[int64]sim.Time{}
	}
	if p.live == nil {
		p.live = map[int64]bool{}
	}
	live := p.live
	clear(live)
	for _, a := range apps {
		live[a.ID] = true
		last, ok := p.seen[a.ID]
		if !ok {
			// Arrival queue -> pending queue: initial tokens = priority.
			a.Tokens = float64(a.Priority)
			p.seen[a.ID] = now
			continue
		}
		dt := now.Sub(last)
		if dt <= 0 {
			continue
		}
		// The application latency estimate is the sum of task latency
		// estimates over the task-graph (Section 4.1) — per item, not
		// batch-scaled, so large batches do not slow token accrual.
		est := a.Report.AppLatency()
		if est <= 0 {
			est = 1
		}
		degradation := float64(dt) / float64(est)
		a.Tokens += p.Alpha * float64(a.Priority) * degradation
		p.seen[a.ID] = now
	}
	for id := range p.seen {
		if !live[id] {
			delete(p.seen, id)
		}
	}
	p.updateCandidates(now, apps)
}

// floorPriority rounds tokens down to the nearest priority level; tokens
// below the lowest level floor to zero.
func floorPriority(tokens float64) float64 {
	out := 0.0
	for _, l := range PriorityLevels {
		if tokens >= float64(l) {
			out = float64(l)
		}
	}
	return out
}

// updateCandidates applies PREMA thresholding: threshold is the maximum
// token count floored to a priority level; apps at or above it are
// candidates. (Algorithm 1 line 9 compares strictly; we use >= so the
// pool is never empty while apps wait — see DESIGN.md.)
func (p *TokenPool) updateCandidates(now sim.Time, apps []*App) {
	threshold := 0.0
	for _, a := range apps {
		if f := floorPriority(a.Tokens); f > threshold {
			threshold = f
		}
	}
	for _, a := range apps {
		if a.Tokens >= threshold {
			if !a.Candidate {
				a.Candidate = true
				a.CandidateSince = now
			}
		} else {
			a.Candidate = false
		}
	}
}

// Candidates returns the candidate applications ordered by age in the
// pool (earliest CandidateSince first, ties by arrival then ID): the
// order Nimblock allocates and selects in.
func Candidates(apps []*App) []*App {
	return CandidatesInto(nil, apps)
}

// CandidatesInto is Candidates appending into dst (reset to length zero
// first), letting policies reuse a scratch slice across scheduling
// opportunities instead of allocating per call.
func CandidatesInto(dst []*App, apps []*App) []*App {
	out := dst[:0]
	for _, a := range apps {
		if a.Candidate {
			out = append(out, a)
		}
	}
	slices.SortStableFunc(out, func(x, y *App) int {
		if x.CandidateSince != y.CandidateSince {
			if x.CandidateSince < y.CandidateSince {
				return -1
			}
			return 1
		}
		if x.Arrival != y.Arrival {
			if x.Arrival < y.Arrival {
				return -1
			}
			return 1
		}
		if x.ID < y.ID {
			return -1
		}
		if x.ID > y.ID {
			return 1
		}
		return 0
	})
	return out
}
