// Package interconnect models inter-slot data movement on the Nimblock
// overlay.
//
// On the evaluation system, slots exchange data through the processing
// system: a producer writes its output buffer in shared DDR and the
// consumer reads it back, serializing all transfers through the PS
// memory interface. The paper's future-work section proposes a
// Network-on-Chip for direct slot-to-slot transfers. This package
// provides three models:
//
//   - Folded: transfers cost nothing extra (the calibrated default — the
//     paper's measured task latencies already include data movement);
//   - PSBus: transfers serialize through a single shared channel at a
//     fixed bandwidth, like the real overlay;
//   - NoC: transfers run in parallel over a mesh, with latency
//     proportional to hop distance between slots.
//
// The hypervisor asks the model when a producer-to-consumer hand-off
// completes; everything else (buffering, readiness) stays unchanged.
package interconnect

import (
	"fmt"

	"nimblock/internal/sim"
)

// Kind selects an interconnect model.
type Kind int

const (
	// Folded charges no explicit transfer time (calibration default).
	Folded Kind = iota
	// PSBus serializes transfers through the processing system.
	PSBus
	// NoC transfers in parallel across a mesh between slots.
	NoC
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Folded:
		return "folded"
	case PSBus:
		return "ps-bus"
	case NoC:
		return "noc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterizes a model.
type Config struct {
	Kind Kind
	// BytesPerItem is the data volume of one batch item hand-off.
	BytesPerItem int64
	// PSBandwidth is the shared PS channel bandwidth (bytes/s).
	PSBandwidth float64
	// NoCLinkBandwidth is the per-link NoC bandwidth (bytes/s).
	NoCLinkBandwidth float64
	// NoCHopLatency is the added latency per mesh hop.
	NoCHopLatency sim.Duration
	// MeshWidth is the number of slot columns in the NoC mesh (slots
	// are laid out row-major); 0 defaults to 5 (a 5x2 mesh of 10 slots).
	MeshWidth int
}

// DefaultConfig returns a Folded model (no explicit transfer cost).
func DefaultConfig() Config { return Config{Kind: Folded} }

// DefaultPSBus models the ZCU106's PS-mediated path: every hand-off is a
// write to DDR plus a read back through HP ports that are shared with
// control traffic and reconfiguration, so usable bandwidth is far below
// the port peak and all transfers serialize.
func DefaultPSBus() Config {
	return Config{
		Kind:         PSBus,
		BytesPerItem: 16 << 20, // 16 MiB moved per hand-off (write + read back)
		PSBandwidth:  0.8e9,    // usable shared bandwidth -> ~21 ms per hand-off
	}
}

// DefaultNoC models a lightweight hard NoC between slots: direct
// slot-to-slot links, transfers in parallel.
func DefaultNoC() Config {
	return Config{
		Kind:             NoC,
		BytesPerItem:     16 << 20,
		NoCLinkBandwidth: 8e9, // ~2 ms per hand-off, no serialization
		NoCHopLatency:    2 * sim.Microsecond,
		MeshWidth:        5,
	}
}

// Model computes transfer completion times. It is driven by the
// hypervisor in virtual time; PSBus keeps internal channel state, so a
// Model belongs to exactly one simulation.
type Model struct {
	cfg      Config
	busyTill sim.Time // PSBus: when the shared channel frees
	stats    Stats
}

// Stats counts transfer activity.
type Stats struct {
	Transfers int
	Busy      sim.Duration // summed transfer durations
	Queued    sim.Duration // summed waiting-for-channel time (PSBus)
}

// New builds a model.
func New(cfg Config) (*Model, error) {
	switch cfg.Kind {
	case Folded:
	case PSBus:
		if cfg.PSBandwidth <= 0 || cfg.BytesPerItem <= 0 {
			return nil, fmt.Errorf("interconnect: PS bus needs positive bandwidth and item size")
		}
	case NoC:
		if cfg.NoCLinkBandwidth <= 0 || cfg.BytesPerItem <= 0 {
			return nil, fmt.Errorf("interconnect: NoC needs positive bandwidth and item size")
		}
		if cfg.MeshWidth < 0 {
			return nil, fmt.Errorf("interconnect: negative mesh width")
		}
	default:
		return nil, fmt.Errorf("interconnect: unknown kind %v", cfg.Kind)
	}
	return &Model{cfg: cfg}, nil
}

// Kind reports the model kind.
func (m *Model) Kind() Kind { return m.cfg.Kind }

// Stats returns transfer counters.
func (m *Model) Stats() Stats { return m.stats }

// hops returns the Manhattan distance between two slots on the mesh.
func (m *Model) hops(from, to int) int {
	w := m.cfg.MeshWidth
	if w <= 0 {
		w = 5
	}
	fx, fy := from%w, from/w
	tx, ty := to%w, to/w
	dx, dy := fx-tx, fy-ty
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// TransferDone reports when one item's data, produced in slot from at
// time now, becomes available to a consumer in slot to. A negative from
// or to means the endpoint is the PS itself (application input/output),
// which is free on all models.
func (m *Model) TransferDone(now sim.Time, from, to int) sim.Time {
	if from < 0 || to < 0 {
		return now
	}
	switch m.cfg.Kind {
	case Folded:
		return now
	case PSBus:
		d := sim.Seconds(float64(m.cfg.BytesPerItem) / m.cfg.PSBandwidth)
		start := now
		if m.busyTill > start {
			m.stats.Queued += m.busyTill.Sub(start)
			start = m.busyTill
		}
		done := start.Add(d)
		m.busyTill = done
		m.stats.Transfers++
		m.stats.Busy += d
		return done
	case NoC:
		if from == to {
			return now
		}
		d := sim.Seconds(float64(m.cfg.BytesPerItem)/m.cfg.NoCLinkBandwidth) +
			sim.Duration(m.hops(from, to))*m.cfg.NoCHopLatency
		m.stats.Transfers++
		m.stats.Busy += d
		return now.Add(d)
	default:
		return now
	}
}
