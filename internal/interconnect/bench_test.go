package interconnect

import "testing"

func BenchmarkPSBusTransfer(b *testing.B) {
	m, err := New(DefaultPSBus())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.TransferDone(0, i%10, (i+3)%10)
	}
}

func BenchmarkNoCTransfer(b *testing.B) {
	m, err := New(DefaultNoC())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.TransferDone(0, i%10, (i+3)%10)
	}
}
