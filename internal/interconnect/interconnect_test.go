package interconnect

import (
	"testing"

	"nimblock/internal/sim"
)

func TestFoldedIsFree(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TransferDone(100, 0, 9); got != 100 {
		t.Fatalf("folded transfer took time: %v", got)
	}
	if m.Stats().Transfers != 0 {
		t.Fatal("folded model counted transfers")
	}
}

func TestPSBusSerializes(t *testing.T) {
	cfg := DefaultPSBus()
	cfg.BytesPerItem = 1_000_000
	cfg.PSBandwidth = 1e6 // 1 s per transfer
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sec := sim.Time(sim.Second)
	d1 := m.TransferDone(0, 0, 1)
	d2 := m.TransferDone(0, 2, 3)
	if d1 != sec {
		t.Fatalf("first transfer done at %v, want 1s", d1)
	}
	if d2 != 2*sec {
		t.Fatalf("second transfer done at %v, want 2s (serialized)", d2)
	}
	// A transfer starting after the channel frees is not delayed.
	d3 := m.TransferDone(5*sec, 4, 5)
	if d3 != 6*sec {
		t.Fatalf("third transfer done at %v, want 6s", d3)
	}
	st := m.Stats()
	if st.Transfers != 3 || st.Busy != 3*sim.Second || st.Queued != sim.Second {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoCParallelAndDistance(t *testing.T) {
	cfg := DefaultNoC()
	cfg.BytesPerItem = 8_000_000
	cfg.NoCLinkBandwidth = 8e9 // 1 ms serialization
	cfg.NoCHopLatency = sim.Millisecond
	cfg.MeshWidth = 5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Slots 0 and 1 are adjacent: 1 hop.
	d := m.TransferDone(0, 0, 1)
	if d != sim.Time(2*sim.Millisecond) {
		t.Fatalf("adjacent transfer done at %v, want 2ms", d)
	}
	// Slots 0 and 9 on a 5x2 mesh: (0,0) -> (4,1) = 5 hops.
	d = m.TransferDone(0, 0, 9)
	if d != sim.Time(6*sim.Millisecond) {
		t.Fatalf("far transfer done at %v, want 6ms", d)
	}
	// Transfers do not serialize.
	d1 := m.TransferDone(0, 0, 1)
	d2 := m.TransferDone(0, 2, 3)
	if d1 != d2 {
		t.Fatalf("NoC transfers serialized: %v vs %v", d1, d2)
	}
	// Same slot: free.
	if got := m.TransferDone(42, 3, 3); got != 42 {
		t.Fatalf("same-slot transfer took time: %v", got)
	}
}

func TestPSEndpointsFree(t *testing.T) {
	m, _ := New(DefaultPSBus())
	if got := m.TransferDone(7, -1, 3); got != 7 {
		t.Fatalf("input from PS took time: %v", got)
	}
	if got := m.TransferDone(7, 3, -1); got != 7 {
		t.Fatalf("output to PS took time: %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Kind: PSBus},
		{Kind: PSBus, BytesPerItem: 1},
		{Kind: NoC, BytesPerItem: 1},
		{Kind: NoC, BytesPerItem: 1, NoCLinkBandwidth: 1, MeshWidth: -1},
		{Kind: Kind(99)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	for _, good := range []Config{DefaultConfig(), DefaultPSBus(), DefaultNoC()} {
		if _, err := New(good); err != nil {
			t.Errorf("default config rejected: %v", err)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Folded, PSBus, NoC, Kind(99)} {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", int(k))
		}
	}
}

func TestNoCFasterThanPSBusUnderContention(t *testing.T) {
	ps, _ := New(DefaultPSBus())
	noc, _ := New(DefaultNoC())
	var psLast, nocLast sim.Time
	for i := 0; i < 16; i++ {
		psLast = ps.TransferDone(0, i%10, (i+1)%10)
		nocLast = noc.TransferDone(0, i%10, (i+1)%10)
	}
	if nocLast >= psLast {
		t.Fatalf("NoC (%v) not faster than PS bus (%v) for 16 concurrent transfers", nocLast, psLast)
	}
}
