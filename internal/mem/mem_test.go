package mem

import (
	"testing"
	"testing/quick"

	"nimblock/internal/sim"
)

func newMgr(t *testing.T, cap int64) *Manager {
	t.Helper()
	m, err := NewManager(cap)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllocateReleaseAccounting(t *testing.T) {
	m := newMgr(t, 1000)
	b, err := m.Allocate("app", "t0.out", 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Used() != 400 || m.Live() != 1 || m.Peak() != 400 {
		t.Fatalf("after alloc: used=%d live=%d peak=%d", m.Used(), m.Live(), m.Peak())
	}
	if err := m.Release(b.ID); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 400 {
		t.Fatal("buffer freed while references remain")
	}
	if err := m.Release(b.ID); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 0 || m.Live() != 0 {
		t.Fatalf("after final release: used=%d live=%d", m.Used(), m.Live())
	}
	if err := m.Release(b.ID); err == nil {
		t.Fatal("double release accepted")
	}
}

func TestRetain(t *testing.T) {
	m := newMgr(t, 1000)
	b, _ := m.Allocate("app", "x", 10, 1)
	if err := m.Retain(b.ID); err != nil {
		t.Fatal(err)
	}
	m.Release(b.ID)
	if m.Live() != 1 {
		t.Fatal("retained buffer freed early")
	}
	m.Release(b.ID)
	if m.Live() != 0 {
		t.Fatal("buffer not freed")
	}
	if err := m.Retain(b.ID); err == nil {
		t.Fatal("retain of dead buffer accepted")
	}
}

func TestOutOfMemory(t *testing.T) {
	m := newMgr(t, 100)
	if _, err := m.Allocate("a", "x", 60, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate("a", "y", 60, 1); err == nil {
		t.Fatal("over-capacity allocation accepted")
	}
	if m.Used() != 60 {
		t.Fatal("failed allocation changed accounting")
	}
}

func TestAllocationValidation(t *testing.T) {
	m := newMgr(t, 100)
	if _, err := m.Allocate("a", "x", -1, 1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := m.Allocate("a", "x", 1, 0); err == nil {
		t.Fatal("zero refs accepted")
	}
	if _, err := NewManager(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestReleaseOwner(t *testing.T) {
	m := newMgr(t, 1000)
	m.Allocate("a", "x", 100, 5)
	m.Allocate("a", "y", 100, 5)
	m.Allocate("b", "z", 100, 5)
	if n := m.ReleaseOwner("a"); n != 2 {
		t.Fatalf("ReleaseOwner freed %d buffers, want 2", n)
	}
	if m.Used() != 100 || m.Live() != 1 {
		t.Fatalf("after owner release: used=%d live=%d", m.Used(), m.Live())
	}
}

func TestStats(t *testing.T) {
	m := newMgr(t, 1000)
	b, _ := m.Allocate("a", "x", 10, 1)
	m.Release(b.ID)
	s := m.Stats()
	if s.Allocs != 1 || s.Frees != 1 || s.Used != 0 || s.Peak != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if m.Capacity() != 1000 {
		t.Fatalf("capacity = %d", m.Capacity())
	}
}

func TestTransferTime(t *testing.T) {
	if got := TransferTime(1_000_000, 1e6); got != sim.Second {
		t.Fatalf("TransferTime = %v", got)
	}
	if TransferTime(0, 1e6) != 0 || TransferTime(100, 0) != 0 {
		t.Fatal("degenerate transfers should be free")
	}
}

// Property: any sequence of allocations each matched with refs releases
// returns the manager to zero usage, and peak never exceeds capacity.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint16, refs []uint8) bool {
		m, _ := NewManager(1 << 40)
		var ids []int64
		var counts []int
		for i, sz := range sizes {
			r := 1
			if i < len(refs) {
				r = int(refs[i]%4) + 1
			}
			b, err := m.Allocate("p", "x", int64(sz), r)
			if err != nil {
				return false
			}
			ids = append(ids, b.ID)
			counts = append(counts, r)
		}
		for i, id := range ids {
			for j := 0; j < counts[i]; j++ {
				if err := m.Release(id); err != nil {
					return false
				}
			}
		}
		return m.Used() == 0 && m.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
