// Package mem models the hypervisor's data-buffer management.
//
// On the real system the hypervisor allocates buffers in shared DDR for
// each task launch; user logic reads inputs from and writes outputs to
// those buffers through its memory-mapped data interface, and the
// hypervisor relinquishes buffers once every consumer has finished with
// them. The simulation keeps the same allocate/retain/release discipline
// with byte-level accounting so leaks and double-releases are detectable.
package mem

import (
	"fmt"

	"nimblock/internal/sim"
)

// Buffer is one allocation in shared system memory.
type Buffer struct {
	ID    int64
	Owner string // application that owns the data
	Label string // what the buffer holds, e.g. "task3.out"
	Bytes int64
	refs  int
}

// Refs reports the current reference count.
func (b *Buffer) Refs() int { return b.refs }

// Manager tracks live buffers against a fixed DDR capacity.
type Manager struct {
	capacity int64
	live     map[int64]*Buffer
	nextID   int64
	used     int64
	peak     int64
	allocs   int64
	frees    int64
}

// NewManager returns a manager for a memory of the given capacity in
// bytes. Capacity must be positive.
func NewManager(capacity int64) (*Manager, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("mem: capacity must be positive, got %d", capacity)
	}
	return &Manager{capacity: capacity, live: map[int64]*Buffer{}}, nil
}

// Allocate reserves a buffer with an initial reference count. refs must be
// at least 1; the buffer is freed when Release drops it to zero.
func (m *Manager) Allocate(owner, label string, bytes int64, refs int) (*Buffer, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("mem: negative allocation %d for %s/%s", bytes, owner, label)
	}
	if refs < 1 {
		return nil, fmt.Errorf("mem: allocation %s/%s needs at least one reference", owner, label)
	}
	if m.used+bytes > m.capacity {
		return nil, fmt.Errorf("mem: out of memory: %d used + %d requested > %d capacity", m.used, bytes, m.capacity)
	}
	m.nextID++
	b := &Buffer{ID: m.nextID, Owner: owner, Label: label, Bytes: bytes, refs: refs}
	m.live[b.ID] = b
	m.used += bytes
	m.allocs++
	if m.used > m.peak {
		m.peak = m.used
	}
	return b, nil
}

// Retain adds a reference to a live buffer.
func (m *Manager) Retain(id int64) error {
	b, ok := m.live[id]
	if !ok {
		return fmt.Errorf("mem: retain of dead buffer %d", id)
	}
	b.refs++
	return nil
}

// Release drops one reference; the buffer is freed at zero.
func (m *Manager) Release(id int64) error {
	b, ok := m.live[id]
	if !ok {
		return fmt.Errorf("mem: release of dead buffer %d", id)
	}
	b.refs--
	if b.refs == 0 {
		delete(m.live, id)
		m.used -= b.Bytes
		m.frees++
	}
	return nil
}

// ReleaseOwner force-releases every buffer owned by an application,
// regardless of reference count. The hypervisor uses this when retiring
// an application.
func (m *Manager) ReleaseOwner(owner string) int {
	n := 0
	for id, b := range m.live {
		if b.Owner == owner {
			delete(m.live, id)
			m.used -= b.Bytes
			m.frees++
			n++
		}
	}
	return n
}

// Used reports live bytes.
func (m *Manager) Used() int64 { return m.used }

// Peak reports the high-water mark of live bytes.
func (m *Manager) Peak() int64 { return m.peak }

// Capacity reports the configured capacity.
func (m *Manager) Capacity() int64 { return m.capacity }

// Live reports the number of live buffers.
func (m *Manager) Live() int { return len(m.live) }

// Stats summarizes allocation activity.
type Stats struct {
	Allocs, Frees int64
	Used, Peak    int64
}

// Stats returns current counters.
func (m *Manager) Stats() Stats {
	return Stats{Allocs: m.allocs, Frees: m.frees, Used: m.used, Peak: m.peak}
}

// TransferTime models moving n bytes over the PS interconnect at the
// given bandwidth; inter-slot communication goes through the PS on this
// overlay (no NoC).
func TransferTime(bytes int64, bytesPerSec float64) sim.Duration {
	if bytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return sim.Seconds(float64(bytes) / bytesPerSec)
}
