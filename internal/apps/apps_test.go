package apps

import (
	"testing"

	"nimblock/internal/sim"
)

// Table 2 of the paper: task and edge counts per benchmark.
func TestTable2Counts(t *testing.T) {
	want := map[string][2]int{
		LeNet:            {3, 2},
		AlexNet:          {38, 184},
		ImageCompression: {6, 5},
		OpticalFlow:      {9, 8},
		Rendering3D:      {3, 2},
		DigitRecognition: {3, 2},
	}
	for name, w := range want {
		g := MustGraph(name)
		if g.NumTasks() != w[0] || g.NumEdges() != w[1] {
			t.Errorf("%s: got %d tasks / %d edges, want %d / %d",
				name, g.NumTasks(), g.NumEdges(), w[0], w[1])
		}
	}
}

func TestNamesStableAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names returned %d entries, want 6", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	for _, n := range names {
		if _, err := Graph(n); err != nil {
			t.Errorf("Graph(%q) failed: %v", n, err)
		}
		if Abbrev[n] == "" {
			t.Errorf("no abbreviation for %q", n)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Graph("nope"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGraph did not panic")
		}
	}()
	MustGraph("nope")
}

func TestAllGraphsValid(t *testing.T) {
	for name, g := range All() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("graph name %q filed under %q", g.Name(), name)
		}
	}
}

func TestAlexNetShape(t *testing.T) {
	g := MustGraph(AlexNet)
	// Max width matches the widest layer (conv1, 7 tasks).
	if g.MaxWidth() != 7 {
		t.Fatalf("AlexNet MaxWidth = %d, want 7", g.MaxWidth())
	}
	// Single sink: fc8.
	if sinks := g.Sinks(); len(sinks) != 1 {
		t.Fatalf("AlexNet sinks = %v, want 1", sinks)
	}
	// 8 layers -> depth of sink is 7.
	if d := g.Depth(g.Sinks()[0]); d != 7 {
		t.Fatalf("AlexNet sink depth = %d, want 7", d)
	}
	// Critical path: 7 x 1.6s + 1.2s = 12.4s per item.
	if cp := g.CriticalPath(); cp != sim.Seconds(12.4) {
		t.Fatalf("AlexNet critical path = %v, want 12.4s", cp)
	}
}

func TestChainsAreChains(t *testing.T) {
	for _, name := range []string{LeNet, ImageCompression, OpticalFlow, Rendering3D, DigitRecognition} {
		g := MustGraph(name)
		if g.MaxWidth() != 1 {
			t.Errorf("%s: MaxWidth = %d, want 1 (chain)", name, g.MaxWidth())
		}
		if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
			t.Errorf("%s: not a chain (sources=%v sinks=%v)", name, g.Sources(), g.Sinks())
		}
	}
}

// Relative magnitudes from Table 3: DR is by far the longest-running,
// ImgC and LeNet the shortest.
func TestLatencyOrdering(t *testing.T) {
	work := map[string]sim.Duration{}
	for name, g := range All() {
		work[name] = g.TotalWork()
	}
	if !(work[DigitRecognition] > work[AlexNet] &&
		work[AlexNet] > work[OpticalFlow] &&
		work[OpticalFlow] > work[Rendering3D] &&
		work[Rendering3D] > work[LeNet] &&
		work[LeNet] > work[ImageCompression]) {
		t.Fatalf("per-item total work ordering does not match Table 3: %v", work)
	}
}

func TestSynthetic(t *testing.T) {
	g := Synthetic("syn", 4, 10*sim.Millisecond)
	if g.NumTasks() != 4 || g.NumEdges() != 3 {
		t.Fatalf("Synthetic shape: %d tasks %d edges", g.NumTasks(), g.NumEdges())
	}
	if g.Name() != "syn" {
		t.Fatalf("Synthetic name = %q", g.Name())
	}
}
