// Package apps defines the benchmark suite from the Nimblock evaluation.
//
// The paper evaluates six applications drawn from the Rosetta suite and the
// DML custom benchmarks: 3D rendering, digit recognition, and optical flow
// (Rosetta); image compression, LeNet, and AlexNet (custom). Each is
// manually partitioned into slot-sized tasks forming a DAG (Table 2 gives
// task/edge counts; Figure 4 shows AlexNet's graph).
//
// Per-item task latencies are calibrated so that the no-sharing baseline
// with batch size 5 reproduces the execution times in Table 3 of the paper
// (LeNet 0.73 s, AlexNet 65.44 s, image compression 0.56 s, optical flow
// 22.91 s, 3D rendering 1.55 s, digit recognition 984.23 s). Absolute
// times on the authors' ZCU106 cannot be measured here; the calibration
// preserves the latency ratios and the compute-vs-reconfiguration balance
// that drive every scheduling result.
package apps

import (
	"fmt"
	"sort"

	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Benchmark names as used throughout the paper.
const (
	LeNet            = "LeNet"
	AlexNet          = "AlexNet"
	ImageCompression = "ImageCompression"
	OpticalFlow      = "OpticalFlow"
	Rendering3D      = "3DRendering"
	DigitRecognition = "DigitRecognition"
)

// Abbrev maps benchmark names to the paper's abbreviations (Table 2).
var Abbrev = map[string]string{
	LeNet:            "LN",
	AlexNet:          "AN",
	ImageCompression: "IMGC",
	OpticalFlow:      "OF",
	Rendering3D:      "3DR",
	DigitRecognition: "DR",
}

// buildChain constructs an n-task chain with uniform per-item latency.
func buildChain(name string, n int, latency sim.Duration) *taskgraph.Graph {
	b := taskgraph.NewBuilder(name)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = b.AddTask(fmt.Sprintf("%s-t%d", name, i), latency)
	}
	b.Chain(ids...)
	return b.MustBuild()
}

// lenet: six layers grouped into three tasks (conv+pool, conv+pool,
// conv+fc), a 3-node chain. Calibrated: 0.08 + 15*43ms = 0.725 s.
func lenet() *taskgraph.Graph {
	return buildChain(LeNet, 3, 43*sim.Millisecond)
}

// imageCompression: a 6-task chain. With 15 ms items the baseline is
// reconfiguration-bound (5*15 ms < 80 ms), finishing around 0.56 s.
func imageCompression() *taskgraph.Graph {
	return buildChain(ImageCompression, 6, 15*sim.Millisecond)
}

// opticalFlow: a 9-task chain; 0.08 + 45*0.507 s = 22.9 s.
func opticalFlow() *taskgraph.Graph {
	return buildChain(OpticalFlow, 9, 507*sim.Millisecond)
}

// rendering3D: a 3-task chain; 0.08 + 15*98 ms = 1.55 s.
func rendering3D() *taskgraph.Graph {
	return buildChain(Rendering3D, 3, 98*sim.Millisecond)
}

// digitRecognition: a 3-task chain of very long KNN-vote tasks; the
// long-running benchmark of the suite. 15*65.61 s = 984.2 s.
func digitRecognition() *taskgraph.Graph {
	return buildChain(DigitRecognition, 3, sim.Seconds(65.61))
}

// alexnetLayers describes AlexNet's partitioning (Figure 4): each layer is
// split into identical slot-sized tasks (same color in the figure), and
// consecutive layers are fully connected because every split consumes the
// concatenated activations of the previous layer. Widths sum to 38 tasks
// and the bipartite connections give 184 edges, matching Table 2.
var alexnetLayers = []struct {
	name    string
	width   int
	latency sim.Duration
}{
	{"conv1", 7, 1600 * sim.Millisecond},
	{"conv2", 6, 1600 * sim.Millisecond},
	{"conv3", 6, 1600 * sim.Millisecond},
	{"conv4", 6, 1600 * sim.Millisecond},
	{"conv5", 6, 1600 * sim.Millisecond},
	{"fc6", 4, 1600 * sim.Millisecond},
	{"fc7", 2, 1600 * sim.Millisecond},
	{"fc8", 1, 1200 * sim.Millisecond},
}

func alexnet() *taskgraph.Graph {
	b := taskgraph.NewBuilder(AlexNet)
	var prev []int
	for _, layer := range alexnetLayers {
		cur := make([]int, layer.width)
		for i := range cur {
			cur[i] = b.AddTask(fmt.Sprintf("%s-%d", layer.name, i), layer.latency)
		}
		for _, p := range prev {
			for _, c := range cur {
				b.AddEdge(p, c)
			}
		}
		prev = cur
	}
	return b.MustBuild()
}

// catalog holds the lazily-built benchmark graphs, keyed by name.
var catalog = map[string]func() *taskgraph.Graph{
	LeNet:            lenet,
	AlexNet:          alexnet,
	ImageCompression: imageCompression,
	OpticalFlow:      opticalFlow,
	Rendering3D:      rendering3D,
	DigitRecognition: digitRecognition,
}

// Names returns all benchmark names in a stable order.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Graph builds the task-graph for the named benchmark.
func Graph(name string) (*taskgraph.Graph, error) {
	f, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown benchmark %q", name)
	}
	return f(), nil
}

// MustGraph is Graph that panics on unknown names.
func MustGraph(name string) *taskgraph.Graph {
	g, err := Graph(name)
	if err != nil {
		panic(err)
	}
	return g
}

// All builds every benchmark graph, keyed by name.
func All() map[string]*taskgraph.Graph {
	m := make(map[string]*taskgraph.Graph, len(catalog))
	for n, f := range catalog {
		m[n] = f()
	}
	return m
}

// Synthetic builds a parameterized chain application for tests and
// examples that need controlled workloads rather than the paper suite.
func Synthetic(name string, tasks int, latency sim.Duration) *taskgraph.Graph {
	return buildChain(name, tasks, latency)
}
