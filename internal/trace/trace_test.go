package trace

import (
	"strings"
	"testing"

	"nimblock/internal/sim"
)

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Add(Event{})
	if l.Len() != 0 || l.Events() != nil || l.Count(KindArrival) != 0 {
		t.Fatal("nil log misbehaved")
	}
}

func TestAddAndCount(t *testing.T) {
	l := New()
	l.Add(Event{At: 1, Kind: KindArrival, App: "a", Task: -1, Slot: -1, Item: -1})
	l.Add(Event{At: 2, Kind: KindItemDone, App: "a", Task: 0, Slot: 1, Item: 0})
	l.Add(Event{At: 3, Kind: KindItemDone, App: "a", Task: 0, Slot: 1, Item: 1})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.Count(KindItemDone) != 2 {
		t.Fatalf("Count = %d", l.Count(KindItemDone))
	}
	got := l.Filter(func(e Event) bool { return e.Kind == KindArrival })
	if len(got) != 1 || got[0].App != "a" {
		t.Fatalf("Filter = %v", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Time(1_500_000), Kind: KindItemStart, App: "LeNet", AppID: 4, Task: 2, Slot: 7, Item: 3}
	s := e.String()
	for _, want := range []string{"1.500", "item-start", "LeNet#4", "task=2", "slot=7", "item=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
	// Fields that do not apply are suppressed.
	s2 := Event{Kind: KindArrival, App: "x", Task: -1, Slot: -1, Item: -1}.String()
	if strings.Contains(s2, "task=") || strings.Contains(s2, "slot=") ||
		strings.Contains(s2, "dur=") || strings.Contains(s2, "progress=") {
		t.Fatalf("suppressed fields leaked: %q", s2)
	}
	// Checkpoint events render transfer time and captured progress.
	s3 := Event{Kind: KindRestore, App: "x", Task: 0, Slot: 1, Item: 2,
		Dur: 5 * sim.Millisecond, Progress: 40 * sim.Millisecond}.String()
	if !strings.Contains(s3, "dur=") || !strings.Contains(s3, "progress=") {
		t.Fatalf("checkpoint fields missing: %q", s3)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindArrival, KindReconfigStart, KindReconfigDone, KindItemStart,
		KindItemDone, KindTaskDone, KindPreemptRequest, KindPreempt, KindCheckpoint, KindRetire, KindFault,
		KindRetry, KindWatchdog, KindQuarantine, KindSlotOffline,
		KindCheckpointSave, KindRestore, KindCheckpointFault, Kind(99)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
}

func TestGantt(t *testing.T) {
	l := New()
	sec := sim.Time(sim.Second)
	l.Add(Event{At: 0, Kind: KindReconfigStart, App: "a", Slot: 0, Task: 0, Item: -1})
	l.Add(Event{At: sec, Kind: KindReconfigDone, App: "a", Slot: 0, Task: 0, Item: -1})
	l.Add(Event{At: sec, Kind: KindItemStart, App: "a", Slot: 0, Task: 0, Item: 0})
	l.Add(Event{At: 3 * sec, Kind: KindItemDone, App: "a", Slot: 0, Task: 0, Item: 0})
	g := l.Gantt(2, 4*sec, 8)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], "RR####..") {
		t.Fatalf("slot 0 row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "........") {
		t.Fatalf("slot 1 row = %q", lines[2])
	}
}

func TestGanttDegenerate(t *testing.T) {
	l := New()
	if g := l.Gantt(1, sim.Time(sim.Second), 10); g != "" {
		t.Fatalf("empty log produced gantt %q", g)
	}
	l.Add(Event{At: 0, Kind: KindItemStart, Slot: 0})
	if g := l.Gantt(1, 0, 10); g != "" {
		t.Fatal("zero end produced gantt")
	}
	if g := l.Gantt(1, sim.Time(sim.Second), 0); g != "" {
		t.Fatal("zero cols produced gantt")
	}
}

func TestDump(t *testing.T) {
	l := New()
	l.Add(Event{At: 1, Kind: KindArrival, App: "a", Task: -1, Slot: -1, Item: -1})
	l.Add(Event{At: 2, Kind: KindRetire, App: "a", Task: -1, Slot: -1, Item: -1})
	d := l.Dump()
	if strings.Count(d, "\n") != 2 {
		t.Fatalf("dump = %q", d)
	}
}
