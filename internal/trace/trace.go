// Package trace records typed execution events from the hypervisor and
// renders them for humans (event listings and per-slot Gantt charts).
// Traces power the examples and let tests assert scheduling behaviour
// (e.g. "a preemption happened at a batch boundary").
package trace

import (
	"fmt"
	"sort"
	"strings"

	"nimblock/internal/sim"
)

// Kind classifies a trace event.
type Kind int

const (
	// KindArrival marks an application entering the pending queue.
	KindArrival Kind = iota
	// KindReconfigStart marks a reconfiguration request reaching the CAP queue.
	KindReconfigStart
	// KindReconfigDone marks user logic becoming active in a slot.
	KindReconfigDone
	// KindItemStart marks a task beginning one batch item.
	KindItemStart
	// KindItemDone marks a task finishing one batch item.
	KindItemDone
	// KindTaskDone marks a task finishing its whole batch.
	KindTaskDone
	// KindPreemptRequest marks the scheduler requesting batch-preemption.
	KindPreemptRequest
	// KindPreempt marks a preemption honoured at a batch boundary.
	KindPreempt
	// KindCheckpoint marks a classic mid-item preemption with state
	// capture (the PreemptWithCheckpoint study mode).
	KindCheckpoint
	// KindRetire marks an application completing.
	KindRetire
	// KindFault marks a reconfiguration fault.
	KindFault
	// KindRetry marks a faulted reconfiguration attempt being retried
	// (with backoff) on the CAP.
	KindRetry
	// KindWatchdog marks the hypervisor watchdog killing a task whose
	// in-flight item ran past its deadline (k x the HLS estimate); the
	// lost item is re-executed later.
	KindWatchdog
	// KindQuarantine marks a slot being quarantined after exceeding the
	// fault threshold; a KindSlotOffline event follows.
	KindQuarantine
	// KindSlotOffline marks a slot leaving service permanently (hardware
	// failure or quarantine); the usable slot count drops by one.
	KindSlotOffline
	// KindCheckpointSave marks a periodic checkpoint completing through
	// the CAP while the item keeps running; Dur is the transfer time and
	// Progress the nominal work captured by the snapshot.
	KindCheckpointSave
	// KindRestore marks an item resuming from its last checkpoint on a
	// (possibly different) slot; Dur is the CAP restore transfer time and
	// Progress the nominal work the snapshot carried over.
	KindRestore
	// KindCheckpointFault marks a lost or corrupt checkpoint discovered
	// at restore time; the item falls back to from-scratch re-execution.
	KindCheckpointFault

	// kindCount is a sentinel one past the last valid Kind. Every new
	// kind MUST be added above it so iteration (JSON interchange, tests)
	// cannot silently drop events.
	kindCount
)

// NumKinds reports the number of defined event kinds.
func NumKinds() int { return int(kindCount) }

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindReconfigStart:
		return "reconfig-start"
	case KindReconfigDone:
		return "reconfig-done"
	case KindItemStart:
		return "item-start"
	case KindItemDone:
		return "item-done"
	case KindTaskDone:
		return "task-done"
	case KindPreemptRequest:
		return "preempt-request"
	case KindPreempt:
		return "preempt"
	case KindCheckpoint:
		return "checkpoint"
	case KindRetire:
		return "retire"
	case KindFault:
		return "fault"
	case KindRetry:
		return "retry"
	case KindWatchdog:
		return "watchdog"
	case KindQuarantine:
		return "quarantine"
	case KindSlotOffline:
		return "slot-offline"
	case KindCheckpointSave:
		return "ckpt-save"
	case KindRestore:
		return "restore"
	case KindCheckpointFault:
		return "ckpt-fault"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded occurrence. Fields that do not apply are -1
// (Task/Slot/Item) or 0 (Dur/Progress).
type Event struct {
	At    sim.Time
	Kind  Kind
	App   string
	AppID int64
	Task  int
	Slot  int
	Item  int
	// Dur carries the transfer time of checkpoint save/restore events.
	Dur sim.Duration
	// Progress carries the nominal work captured or resumed by a
	// checkpoint save/restore event.
	Progress sim.Duration
}

// String renders the event as one log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10.3f  %-16s %s#%d", e.At.Seconds(), e.Kind, e.App, e.AppID)
	if e.Task >= 0 {
		fmt.Fprintf(&b, " task=%d", e.Task)
	}
	if e.Slot >= 0 {
		fmt.Fprintf(&b, " slot=%d", e.Slot)
	}
	if e.Item >= 0 {
		fmt.Fprintf(&b, " item=%d", e.Item)
	}
	if e.Dur > 0 {
		fmt.Fprintf(&b, " dur=%v", e.Dur)
	}
	if e.Progress > 0 {
		fmt.Fprintf(&b, " progress=%v", e.Progress)
	}
	return b.String()
}

// Log accumulates events. A nil *Log is valid and discards everything, so
// tracing can be disabled without branching at call sites.
type Log struct {
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Add records an event. No-op on a nil log.
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	l.events = append(l.events, e)
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len reports the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Count tallies events of one kind.
func (l *Log) Count(k Kind) int {
	n := 0
	for _, e := range l.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Filter returns events matching the predicate.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders every event, one per line.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// interval is a closed-open busy span in a slot.
type interval struct {
	from, to sim.Time
	label    string
	kind     byte // 'R' reconfig, '#' compute
}

// Gantt renders a per-slot occupancy chart with the given number of
// character columns spanning [0, end]. 'R' cells are reconfiguration,
// '#' cells are item execution, '.' is idle-or-waiting.
func (l *Log) Gantt(slots int, end sim.Time, cols int) string {
	if cols < 1 || end <= 0 || l.Len() == 0 {
		return ""
	}
	perSlot := make([][]interval, slots)
	openReconfig := map[int]sim.Time{}
	openItem := map[int]sim.Time{}
	for _, e := range l.Events() {
		if e.Slot < 0 || e.Slot >= slots {
			continue
		}
		switch e.Kind {
		case KindReconfigStart:
			openReconfig[e.Slot] = e.At
		case KindReconfigDone:
			if from, ok := openReconfig[e.Slot]; ok {
				perSlot[e.Slot] = append(perSlot[e.Slot], interval{from, e.At, e.App, 'R'})
				delete(openReconfig, e.Slot)
			}
		case KindItemStart:
			openItem[e.Slot] = e.At
		case KindItemDone:
			if from, ok := openItem[e.Slot]; ok {
				perSlot[e.Slot] = append(perSlot[e.Slot], interval{from, e.At, e.App, '#'})
				delete(openItem, e.Slot)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gantt 0s .. %v (%d cols, R=reconfig #=compute)\n", end, cols)
	for s := 0; s < slots; s++ {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		ivs := perSlot[s]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].from < ivs[j].from })
		for _, iv := range ivs {
			lo := int(int64(iv.from) * int64(cols) / int64(end))
			hi := int(int64(iv.to) * int64(cols) / int64(end))
			if hi == lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < cols; i++ {
				row[i] = iv.kind
			}
		}
		fmt.Fprintf(&b, "slot %2d |%s|\n", s, row)
	}
	return b.String()
}
