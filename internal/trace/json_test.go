package trace

import (
	"fmt"
	"strings"
	"testing"

	"nimblock/internal/sim"
)

// Every defined kind must survive a JSON export/import cycle. Iterating
// to the kindCount sentinel means a newly added kind that is missing a
// String case (or was added below the sentinel) fails here instead of
// being silently dropped from exports.
func TestJSONRoundTripsEveryKind(t *testing.T) {
	l := New()
	for k := Kind(0); k < kindCount; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no String case: %q", int(k), k.String())
		}
		l.Add(Event{At: sim.Time(int64(k) + 1), Kind: k, App: "a", AppID: 7, Task: int(k), Slot: 1, Item: -1})
	}
	data, err := l.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip lost events: %d -> %d", l.Len(), back.Len())
	}
	for i, e := range back.Events() {
		if e != l.Events()[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, l.Events()[i])
		}
	}
}

func TestParseJSONRejectsUnknownKind(t *testing.T) {
	if _, err := ParseJSON([]byte(`[{"kind":"no-such-kind"}]`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseJSON([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	// The sentinel itself must not be exportable vocabulary.
	if _, err := ParseJSON([]byte(fmt.Sprintf(`[{"kind":%q}]`, kindCount.String()))); err == nil {
		t.Fatal("kindCount sentinel accepted as a kind")
	}
}
