package trace

import (
	"testing"

	"nimblock/internal/sim"
)

func benchLog(events int) *Log {
	l := New()
	for i := 0; i < events; i++ {
		l.Add(Event{
			At:    sim.Time(i) * sim.Time(sim.Millisecond),
			Kind:  Kind(i % int(KindFault+1)),
			App:   "app",
			AppID: int64(i % 8),
			Task:  i % 4,
			Slot:  i % 10,
			Item:  i % 3,
		})
	}
	return l
}

func BenchmarkSummarize(b *testing.B) {
	l := benchLog(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Summarize()
	}
}

func BenchmarkGanttRender(b *testing.B) {
	l := benchLog(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Gantt(10, sim.Time(10*sim.Second), 120)
	}
}

func BenchmarkJSONExport(b *testing.B) {
	l := benchLog(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.MarshalJSON(); err != nil {
			b.Fatal(err)
		}
	}
}
