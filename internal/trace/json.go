package trace

import (
	"encoding/json"
	"fmt"

	"nimblock/internal/sim"
)

// jsonEvent is the interchange form of an Event. Dur/Progress carry
// checkpoint transfer time and captured progress; they are omitted when
// zero so pre-checkpoint exports parse unchanged.
type jsonEvent struct {
	At       sim.Time     `json:"at_us"`
	Kind     string       `json:"kind"`
	App      string       `json:"app"`
	AppID    int64        `json:"app_id"`
	Task     int          `json:"task"`
	Slot     int          `json:"slot"`
	Item     int          `json:"item"`
	Dur      sim.Duration `json:"dur_us,omitempty"`
	Progress sim.Duration `json:"progress_us,omitempty"`
}

// kindNames maps Kind to its interchange string and back. Iterating up
// to the kindCount sentinel guarantees newly added kinds are always part
// of the interchange vocabulary.
var kindNames = func() map[string]Kind {
	m := map[string]Kind{}
	for k := Kind(0); k < kindCount; k++ {
		m[k.String()] = k
	}
	return m
}()

func toJSON(e Event) jsonEvent {
	return jsonEvent{At: e.At, Kind: e.Kind.String(), App: e.App, AppID: e.AppID,
		Task: e.Task, Slot: e.Slot, Item: e.Item, Dur: e.Dur, Progress: e.Progress}
}

func fromJSON(raw jsonEvent, kind Kind) Event {
	return Event{At: raw.At, Kind: kind, App: raw.App, AppID: raw.AppID,
		Task: raw.Task, Slot: raw.Slot, Item: raw.Item, Dur: raw.Dur, Progress: raw.Progress}
}

// MarshalJSON exports the log for offline analysis or replay.
func (l *Log) MarshalJSON() ([]byte, error) {
	events := l.Events()
	out := make([]jsonEvent, len(events))
	for i, e := range events {
		out[i] = toJSON(e)
	}
	return json.Marshal(out)
}

// EventJSON returns the interchange form of one event — the same schema
// MarshalJSON uses for whole logs — for streaming exports that emit one
// object per event (e.g. the obs JSONL sink).
func EventJSON(e Event) any {
	return toJSON(e)
}

// ParseEventJSON decodes one interchange object produced by EventJSON,
// rejecting unknown kinds.
func ParseEventJSON(data []byte) (Event, error) {
	var raw jsonEvent
	if err := json.Unmarshal(data, &raw); err != nil {
		return Event{}, fmt.Errorf("trace: parsing event: %w", err)
	}
	kind, ok := kindNames[raw.Kind]
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown kind %q", raw.Kind)
	}
	return fromJSON(raw, kind), nil
}

// ParseJSON imports a log previously exported with MarshalJSON.
func ParseJSON(data []byte) (*Log, error) {
	var raw []jsonEvent
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("trace: parsing log: %w", err)
	}
	l := New()
	for i, e := range raw {
		kind, ok := kindNames[e.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: event %d has unknown kind %q", i, e.Kind)
		}
		l.Add(fromJSON(e, kind))
	}
	return l, nil
}
