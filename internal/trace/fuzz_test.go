package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"unicode/utf8"

	"nimblock/internal/sim"
)

// FuzzEventRoundTrip asserts decode(encode(e)) == e for every valid
// kind — including any kind added later, via the kindCount sentinel —
// and that encoding an out-of-range kind produces a document the parser
// rejects rather than silently corrupts.
func FuzzEventRoundTrip(f *testing.F) {
	for k := 0; k < NumKinds(); k++ {
		f.Add(int64(k*1000), uint8(k), "app", int64(k), k, k%4, k*2, int64(k*7), int64(k*11))
	}
	f.Add(int64(-5), uint8(200), "", int64(-1), -1, -1, -1, int64(0), int64(0))
	f.Fuzz(func(t *testing.T, at int64, kind uint8, app string, appID int64, task, slot, item int, dur, progress int64) {
		e := Event{At: sim.Time(at), Kind: Kind(kind), App: app, AppID: appID, Task: task, Slot: slot, Item: item,
			Dur: sim.Duration(dur), Progress: sim.Duration(progress)}
		data, err := json.Marshal(EventJSON(e))
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := ParseEventJSON(data)
		if int(kind) >= NumKinds() {
			if err == nil {
				t.Fatalf("unknown kind %d accepted: %s", kind, data)
			}
			if !strings.Contains(err.Error(), "unknown kind") {
				t.Fatalf("unknown kind %d rejected with unexpected error: %v", kind, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
		if !utf8.ValidString(app) {
			// JSON cannot carry invalid UTF-8: the encoder substitutes
			// U+FFFD. Application names are identifiers in practice, so
			// only require that the substitution is clean and everything
			// else round-trips exactly.
			if !utf8.ValidString(got.App) {
				t.Fatalf("sanitized app name still invalid: %q", got.App)
			}
			got.App, e.App = "", ""
		}
		if got != e {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v\n via %s", e, got, data)
		}
	})
}

// The parser rejects structurally invalid documents outright.
func TestParseEventJSONRejectsGarbage(t *testing.T) {
	for _, bad := range []string{``, `{`, `[]`, `{"kind": 3}`, `{"kind":"no-such-kind"}`} {
		if _, err := ParseEventJSON([]byte(bad)); err == nil {
			t.Fatalf("parser accepted %q", bad)
		}
	}
}
