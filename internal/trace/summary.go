package trace

import (
	"fmt"
	"sort"
	"strings"

	"nimblock/internal/sim"
)

// AppSummary aggregates one application's activity from the trace.
type AppSummary struct {
	App          string
	AppID        int64
	Arrival      sim.Time
	Retire       sim.Time
	Items        int
	ComputeTime  sim.Duration
	Reconfigs    int
	Preemptions  int
	SlotsTouched int
}

// Response is retirement minus arrival.
func (s AppSummary) Response() sim.Duration { return s.Retire.Sub(s.Arrival) }

// Summarize derives per-application aggregates from the log; the
// hypervisor's own accounting must agree with these (tests assert it).
func (l *Log) Summarize() []AppSummary {
	byID := map[int64]*AppSummary{}
	slots := map[int64]map[int]bool{}
	itemStart := map[[3]int64]sim.Time{}
	get := func(e Event) *AppSummary {
		s, ok := byID[e.AppID]
		if !ok {
			s = &AppSummary{App: e.App, AppID: e.AppID}
			byID[e.AppID] = s
			slots[e.AppID] = map[int]bool{}
		}
		return s
	}
	for _, e := range l.Events() {
		switch e.Kind {
		case KindArrival:
			get(e).Arrival = e.At
		case KindRetire:
			get(e).Retire = e.At
		case KindReconfigDone:
			s := get(e)
			s.Reconfigs++
			slots[e.AppID][e.Slot] = true
		case KindItemStart:
			itemStart[[3]int64{e.AppID, int64(e.Task), int64(e.Item)}] = e.At
		case KindItemDone:
			s := get(e)
			s.Items++
			if from, ok := itemStart[[3]int64{e.AppID, int64(e.Task), int64(e.Item)}]; ok {
				s.ComputeTime += e.At.Sub(from)
			}
		case KindPreempt:
			get(e).Preemptions++
		}
	}
	var out []AppSummary
	for id, s := range byID {
		s.SlotsTouched = len(slots[id])
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AppID < out[j].AppID })
	return out
}

// SummaryTable renders the per-application aggregates as text.
func (l *Log) SummaryTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %10s %10s %6s %8s %8s %6s\n",
		"app", "items", "response", "compute", "slots", "reconfig", "preempt", "")
	for _, s := range l.Summarize() {
		fmt.Fprintf(&b, "%-20s %8d %9.2fs %9.2fs %6d %8d %8d\n",
			fmt.Sprintf("%s#%d", s.App, s.AppID), s.Items,
			s.Response().Seconds(), s.ComputeTime.Seconds(),
			s.SlotsTouched, s.Reconfigs, s.Preemptions)
	}
	return b.String()
}
