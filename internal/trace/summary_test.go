package trace

import (
	"strings"
	"testing"

	"nimblock/internal/sim"
)

func sampleLog() *Log {
	l := New()
	sec := sim.Time(sim.Second)
	add := func(at sim.Time, k Kind, id int64, task, slot, item int) {
		l.Add(Event{At: at, Kind: k, App: "app", AppID: id, Task: task, Slot: slot, Item: item})
	}
	add(0, KindArrival, 1, -1, -1, -1)
	add(0, KindReconfigStart, 1, 0, 2, -1)
	add(sec, KindReconfigDone, 1, 0, 2, -1)
	add(sec, KindItemStart, 1, 0, 2, 0)
	add(3*sec, KindItemDone, 1, 0, 2, 0)
	add(3*sec, KindPreempt, 1, 0, 2, -1)
	add(4*sec, KindReconfigStart, 1, 0, 5, -1)
	add(5*sec, KindReconfigDone, 1, 0, 5, -1)
	add(5*sec, KindItemStart, 1, 0, 5, 1)
	add(6*sec, KindItemDone, 1, 0, 5, 1)
	add(6*sec, KindRetire, 1, -1, -1, -1)
	return l
}

func TestSummarize(t *testing.T) {
	s := sampleLog().Summarize()
	if len(s) != 1 {
		t.Fatalf("summaries = %d", len(s))
	}
	a := s[0]
	if a.Items != 2 {
		t.Errorf("items = %d", a.Items)
	}
	if a.ComputeTime != 3*sim.Second {
		t.Errorf("compute = %v", a.ComputeTime)
	}
	if a.Reconfigs != 2 || a.Preemptions != 1 || a.SlotsTouched != 2 {
		t.Errorf("aggregates = %+v", a)
	}
	if a.Response() != 6*sim.Second {
		t.Errorf("response = %v", a.Response())
	}
}

func TestSummaryTable(t *testing.T) {
	out := sampleLog().SummaryTable()
	for _, want := range []string{"app#1", "6.00s", "3.00s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeOrdersByID(t *testing.T) {
	l := New()
	l.Add(Event{Kind: KindArrival, App: "b", AppID: 2, Task: -1, Slot: -1, Item: -1})
	l.Add(Event{Kind: KindArrival, App: "a", AppID: 1, Task: -1, Slot: -1, Item: -1})
	s := l.Summarize()
	if len(s) != 2 || s[0].AppID != 1 || s[1].AppID != 2 {
		t.Fatalf("order = %+v", s)
	}
}

func TestSummarizeEmptyAndNil(t *testing.T) {
	if got := New().Summarize(); len(got) != 0 {
		t.Fatal("empty log produced summaries")
	}
	var l *Log
	if got := l.Summarize(); got != nil {
		t.Fatal("nil log produced summaries")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := sampleLog()
	data, err := l.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), l.Len())
	}
	for i, e := range l.Events() {
		if back.Events()[i] != e {
			t.Fatalf("event %d changed: %v vs %v", i, back.Events()[i], e)
		}
	}
	// Summaries agree after round trip.
	a, b := l.Summarize(), back.Summarize()
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("summaries diverged: %+v vs %+v", a, b)
	}
}

func TestParseJSONErrors(t *testing.T) {
	if _, err := ParseJSON([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseJSON([]byte(`[{"kind":"nope"}]`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
