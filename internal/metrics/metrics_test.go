package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty input should yield 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean")
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Fatal("even median")
	}
}

func TestJainIndex(t *testing.T) {
	if !almost(JainIndex([]float64{5, 5, 5}), 1) {
		t.Fatal("equal allocations should score 1")
	}
	if !almost(JainIndex([]float64{1, 0, 0, 0}), 0.25) {
		t.Fatal("monopoly over n tenants should score 1/n")
	}
	if !almost(JainIndex([]float64{1, 3}), 0.8) {
		t.Fatal("(1+3)^2 / (2*(1+9)) = 0.8")
	}
	if JainIndex(nil) != 1 || JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("degenerate inputs should score 1")
	}
	// The index is scale-invariant and bounded in [1/n, 1].
	if err := quick.Check(func(a, b, c uint8) bool {
		xs := []float64{float64(a), float64(b), float64(c)}
		j := JainIndex(xs)
		scaled := JainIndex([]float64{xs[0] * 7, xs[1] * 7, xs[2] * 7})
		return j >= 1.0/3-1e-12 && j <= 1+1e-12 && almost(j, scaled)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("geomean")
	}
	if GeoMean([]float64{1, 0}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("degenerate geomean")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {95, 48}, {-5, 10}, {110, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func res(id int64, prio int, respSec float64) hv.Result {
	return hv.Result{AppID: id, Priority: prio, Response: sim.Seconds(respSec)}
}

func TestReductions(t *testing.T) {
	base := []hv.Result{res(1, 3, 10), res(2, 3, 20)}
	algo := []hv.Result{res(2, 3, 5), res(1, 3, 5)} // order shuffled
	red, err := Reductions(base, algo)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(red[0], 4) || !almost(red[1], 2) {
		t.Fatalf("reductions = %v", red)
	}
	norm, err := NormalizedResponses(base, algo)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(norm[0], 0.25) || !almost(norm[1], 0.5) {
		t.Fatalf("normalized = %v", norm)
	}
}

func TestReductionsErrors(t *testing.T) {
	if _, err := Reductions([]hv.Result{res(1, 3, 1)}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Reductions([]hv.Result{res(1, 3, 1)}, []hv.Result{res(2, 3, 1)}); err == nil {
		t.Fatal("unmatched event accepted")
	}
	if _, err := Reductions([]hv.Result{res(1, 3, 0)}, []hv.Result{res(1, 3, 1)}); err == nil {
		t.Fatal("zero response accepted")
	}
}

func TestDeadlineSweep(t *testing.T) {
	results := []hv.Result{res(1, 9, 10), res(2, 9, 30), res(3, 1, 1000)}
	ss := map[int64]sim.Duration{
		1: sim.Seconds(10), // meets at Ds>=1
		2: sim.Seconds(10), // meets at Ds>=3
		3: sim.Seconds(1),  // low priority, excluded
	}
	points, err := DeadlineSweep(results, ss, DeadlineSpec{From: 1, To: 4, Step: 1, Priority: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %v", points)
	}
	wantRates := []float64{0.5, 0.5, 0, 0}
	for i, p := range points {
		if !almost(p.ViolationRate, wantRates[i]) {
			t.Fatalf("Ds=%v rate=%v, want %v", p.Ds, p.ViolationRate, wantRates[i])
		}
	}
	if ep := ErrorPoint(points, 0.10); !almost(ep, 3) {
		t.Fatalf("10%% error point = %v, want 3", ep)
	}
	if ep := ErrorPoint(points[:2], 0.10); ep != -1 {
		t.Fatalf("unreachable error point = %v, want -1", ep)
	}
}

func TestDeadlineSweepValidation(t *testing.T) {
	if _, err := DeadlineSweep(nil, nil, DeadlineSpec{From: 1, To: 0, Step: 1}); err == nil {
		t.Fatal("inverted grid accepted")
	}
	if _, err := DeadlineSweep([]hv.Result{res(1, 9, 1)}, map[int64]sim.Duration{}, DefaultDeadlineSpec()); err == nil {
		t.Fatal("missing single-slot latency accepted")
	}
}

func TestDefaultDeadlineSpecGrid(t *testing.T) {
	spec := DefaultDeadlineSpec()
	pts, err := DeadlineSweep(nil, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	// 1 to 20 at 0.25 = 77 samples.
	if len(pts) != 77 {
		t.Fatalf("grid has %d points, want 77", len(pts))
	}
	if !almost(pts[0].Ds, 1) || !almost(pts[len(pts)-1].Ds, 20) {
		t.Fatalf("grid endpoints %v..%v", pts[0].Ds, pts[len(pts)-1].Ds)
	}
}

func TestResponsesAndByApp(t *testing.T) {
	rs := []hv.Result{
		{AppID: 1, App: "a", Response: sim.Seconds(1)},
		{AppID: 2, App: "b", Response: sim.Seconds(2)},
		{AppID: 3, App: "a", Response: sim.Seconds(3)},
	}
	if xs := Responses(rs); !almost(xs[2], 3) {
		t.Fatalf("Responses = %v", xs)
	}
	m := ByApp(rs)
	if len(m["a"]) != 2 || len(m["b"]) != 1 {
		t.Fatalf("ByApp = %v", m)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		a := float64(p1 % 101)
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		va, vb := Percentile(xs, a), Percentile(xs, b)
		return va <= vb+1e-9 && va >= lo-1e-9 && vb <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	xs := []float64{10, 12, 9, 11, 10, 13, 8, 10, 11, 12}
	ci, err := BootstrapMeanCI(xs, 500, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ci.Point, Mean(xs)) {
		t.Fatalf("point = %v, want %v", ci.Point, Mean(xs))
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Fatalf("interval %+v does not bracket the point", ci)
	}
	// Interval should be within the sample range.
	if ci.Lo < 8 || ci.Hi > 13 {
		t.Fatalf("interval %+v outside sample range", ci)
	}
	// Deterministic.
	ci2, _ := BootstrapMeanCI(xs, 500, 0.95, 1)
	if ci != ci2 {
		t.Fatal("bootstrap not deterministic")
	}
	if ci.String() == "" {
		t.Fatal("empty string")
	}
}

func TestBootstrapValidation(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 10, 0.95, 1); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0, 0.95, 1); err == nil {
		t.Fatal("zero resamples accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 10, 1.5, 1); err == nil {
		t.Fatal("bad confidence accepted")
	}
}

func TestBootstrapNarrowsWithSampleSize(t *testing.T) {
	rngVals := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i%7) + 1
		}
		return out
	}
	small, _ := BootstrapMeanCI(rngVals(10), 400, 0.95, 2)
	large, _ := BootstrapMeanCI(rngVals(1000), 400, 0.95, 2)
	if (large.Hi - large.Lo) >= (small.Hi - small.Lo) {
		t.Fatalf("CI did not narrow: small %v, large %v", small, large)
	}
}
