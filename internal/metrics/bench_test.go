package metrics

import (
	"math/rand"
	"testing"

	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

func benchResults(n int) ([]hv.Result, []hv.Result, map[int64]sim.Duration) {
	rng := rand.New(rand.NewSource(1))
	base := make([]hv.Result, n)
	algo := make([]hv.Result, n)
	ss := map[int64]sim.Duration{}
	for i := 0; i < n; i++ {
		id := int64(i + 1)
		base[i] = hv.Result{AppID: id, Priority: 9, Response: sim.Seconds(1 + 100*rng.Float64())}
		algo[i] = hv.Result{AppID: id, Priority: 9, Response: sim.Seconds(1 + 50*rng.Float64())}
		ss[id] = sim.Seconds(1 + 10*rng.Float64())
	}
	return base, algo, ss
}

func BenchmarkReductions(b *testing.B) {
	base, algo, _ := benchResults(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Reductions(base, algo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeadlineSweep(b *testing.B) {
	_, algo, ss := benchResults(200)
	spec := DefaultDeadlineSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DeadlineSweep(algo, ss, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPercentile(b *testing.B) {
	xs := make([]float64, 10_000)
	rng := rand.New(rand.NewSource(2))
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 99)
	}
}
