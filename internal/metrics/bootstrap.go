package metrics

import (
	"fmt"
	"math/rand"
	"sort"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point, Lo, Hi float64
}

// String renders the interval compactly.
func (c CI) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]", c.Point, c.Lo, c.Hi)
}

// BootstrapMeanCI estimates a confidence interval for the mean by the
// percentile bootstrap with the given number of resamples and confidence
// level (e.g. 0.95). Resampling is seeded and deterministic, matching
// the repository's reproducibility discipline.
func BootstrapMeanCI(xs []float64, resamples int, confidence float64, seed int64) (CI, error) {
	if len(xs) == 0 {
		return CI{}, fmt.Errorf("metrics: bootstrap over empty sample")
	}
	if resamples < 1 {
		return CI{}, fmt.Errorf("metrics: need at least one resample")
	}
	if confidence <= 0 || confidence >= 1 {
		return CI{}, fmt.Errorf("metrics: confidence %v outside (0,1)", confidence)
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		means[r] = Mean(buf)
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	lo := means[int(alpha*float64(resamples-1))]
	hi := means[int((1-alpha)*float64(resamples-1))]
	return CI{Point: Mean(xs), Lo: lo, Hi: hi}, nil
}
