// Package metrics computes the statistics reported in the paper's
// evaluation: average and tail response-time reductions normalized to the
// no-sharing baseline, and deadline-violation sweeps over the deadline
// scaling factor Ds.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value
// is non-positive or input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) over per-tenant
// allocations: 1 when every tenant receives identical service, 1/n when
// a single tenant monopolizes the resource. Empty or all-zero input
// yields 1 (nothing was shared, so nothing was unfair).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Percentile returns the p-th percentile (linear interpolation between
// closest ranks); p is clamped to [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Reductions pairs each event's response under an algorithm with its
// response under the baseline and returns per-event reduction factors
// baseline/algo (higher is better). Results are matched by AppID, which
// is stable because every algorithm replays the identical sequence.
func Reductions(base, algo []hv.Result) ([]float64, error) {
	if len(base) != len(algo) {
		return nil, fmt.Errorf("metrics: %d baseline results vs %d algorithm results", len(base), len(algo))
	}
	byID := make(map[int64]hv.Result, len(base))
	for _, r := range base {
		byID[r.AppID] = r
	}
	out := make([]float64, 0, len(algo))
	for _, r := range algo {
		b, ok := byID[r.AppID]
		if !ok {
			return nil, fmt.Errorf("metrics: event %d missing from baseline results", r.AppID)
		}
		if r.Response <= 0 || b.Response <= 0 {
			return nil, fmt.Errorf("metrics: non-positive response for event %d", r.AppID)
		}
		out = append(out, float64(b.Response)/float64(r.Response))
	}
	return out, nil
}

// NormalizedResponses returns per-event algo/baseline response ratios
// (lower is better); the tail of this distribution is Figure 6's metric.
func NormalizedResponses(base, algo []hv.Result) ([]float64, error) {
	red, err := Reductions(base, algo)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(red))
	for i, r := range red {
		out[i] = 1 / r
	}
	return out, nil
}

// DeadlineSpec parameterizes the Section 5.4 sweep.
type DeadlineSpec struct {
	// From, To, Step define the Ds grid (paper: 1 to 20 at 0.25).
	From, To, Step float64
	// Priority restricts the analysis to one priority level; 0 includes
	// all. The paper focuses on high-priority applications (9).
	Priority int
}

// DefaultDeadlineSpec matches the paper.
func DefaultDeadlineSpec() DeadlineSpec {
	return DeadlineSpec{From: 1, To: 20, Step: 0.25, Priority: 9}
}

// DeadlinePoint is one sweep sample.
type DeadlinePoint struct {
	Ds            float64
	ViolationRate float64 // fraction of applications missing Ds x single-slot latency
}

// DeadlineSweep computes the violation rate across the Ds grid. The
// single-slot latency of each event is supplied by the caller (it depends
// on the board, graph, and batch but not on the algorithm).
func DeadlineSweep(results []hv.Result, singleSlot map[int64]sim.Duration, spec DeadlineSpec) ([]DeadlinePoint, error) {
	if spec.Step <= 0 || spec.To < spec.From {
		return nil, fmt.Errorf("metrics: bad deadline grid [%v,%v] step %v", spec.From, spec.To, spec.Step)
	}
	var pool []hv.Result
	for _, r := range results {
		if spec.Priority != 0 && r.Priority != spec.Priority {
			continue
		}
		if _, ok := singleSlot[r.AppID]; !ok {
			return nil, fmt.Errorf("metrics: no single-slot latency for event %d", r.AppID)
		}
		pool = append(pool, r)
	}
	var points []DeadlinePoint
	for ds := spec.From; ds <= spec.To+1e-9; ds += spec.Step {
		violations := 0
		for _, r := range pool {
			deadline := sim.Duration(ds * float64(singleSlot[r.AppID]))
			if r.Response > deadline {
				violations++
			}
		}
		rate := 0.0
		if len(pool) > 0 {
			rate = float64(violations) / float64(len(pool))
		}
		points = append(points, DeadlinePoint{Ds: ds, ViolationRate: rate})
	}
	return points, nil
}

// ErrorPoint returns the smallest Ds whose violation rate is at or below
// the threshold (e.g. 0.10 for the paper's 10% error point), or -1 if the
// sweep never reaches it.
func ErrorPoint(points []DeadlinePoint, threshold float64) float64 {
	for _, p := range points {
		if p.ViolationRate <= threshold {
			return p.Ds
		}
	}
	return -1
}

// EffectiveSlots is the time-weighted average usable slot count over
// [0, until], integrated from a recovery timeline (hv.RecoveryStats).
// With no slot losses it equals the board size; each failure bends the
// average down in proportion to how long the run continued without the
// slot. Samples after the window are ignored.
func EffectiveSlots(timeline []hv.SlotSample, until sim.Time) float64 {
	if len(timeline) == 0 || until <= 0 {
		return 0
	}
	var weighted float64
	for i, s := range timeline {
		if s.At >= until {
			break
		}
		end := until
		if i+1 < len(timeline) && timeline[i+1].At < end {
			end = timeline[i+1].At
		}
		weighted += float64(s.Usable) * float64(end.Sub(s.At))
	}
	return weighted / float64(until)
}

// Responses extracts response times in seconds.
func Responses(rs []hv.Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Response.Seconds()
	}
	return out
}

// ByApp groups results by application name.
func ByApp(rs []hv.Result) map[string][]hv.Result {
	m := map[string][]hv.Result{}
	for _, r := range rs {
		m[r.App] = append(m[r.App], r)
	}
	return m
}
