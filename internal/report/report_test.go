package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tbl.AddRow("short", 1.5)
	tbl.AddRow("a-much-longer-name", "x")
	out := tbl.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Fatalf("title line = %q", lines[0])
	}
	// Columns aligned: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatalf("header missing: %q", lines[1])
	}
	if got := strings.Index(lines[3], "1.5"); got != idx {
		t.Fatalf("value column misaligned (%d vs %d):\n%s", got, idx, out)
	}
	if !strings.Contains(out, "1.5") {
		t.Fatalf("float cell missing:\n%s", out)
	}
}

func TestTableNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("a", "b")
	out := tbl.Render()
	if strings.Contains(out, "---") {
		t.Fatalf("separator printed without header:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[string]string{
		FormatFloat(1.5):      "1.5",
		FormatFloat(2.0):      "2",
		FormatFloat(0.333333): "0.333",
		FormatFloat(0):        "0",
		FormatSeconds(1.234):  "1.23s",
		FormatFactor(4.666):   "4.67x",
		FormatPercent(0.493):  "49.3%",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("formatter: got %q, want %q", got, want)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	s := []Series{
		{Name: "A", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
		{Name: "B", X: []float64{1, 2, 3}, Y: []float64{5, 15}},
	}
	out := RenderSeries("fig", "Ds", s)
	if !strings.Contains(out, "== fig ==") || !strings.Contains(out, "Ds") {
		t.Fatalf("missing title/xlabel:\n%s", out)
	}
	if !strings.Contains(out, "30") {
		t.Fatalf("missing sample:\n%s", out)
	}
	// Short series pads with '-'.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing pad:\n%s", out)
	}
	if RenderSeries("empty", "x", nil) == "" {
		t.Fatal("empty series should still render a title")
	}
}

func TestCSVExport(t *testing.T) {
	tbl := &Table{Header: []string{"name", "note"}}
	tbl.AddRow("plain", "a,b")
	tbl.AddRow(`quo"ted`, "line\nbreak")
	out := tbl.CSV()
	lines := strings.Split(out, "\n")
	if lines[0] != "name,note" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `plain,"a,b"` {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], `"quo""ted","line`) {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestMarkdownExport(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow("x|y", 1.5)
	out := tbl.Markdown()
	for _, want := range []string{"### demo", "| a | b |", "|---|---|", `x\|y`, "1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	if (&Table{}).Markdown() != "" {
		t.Fatal("empty table should render nothing")
	}
}
