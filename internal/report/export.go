package report

import (
	"fmt"
	"strings"
)

// CSV renders the table as RFC-4180-style comma-separated values with a
// header row, for spreadsheet import of experiment results.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
}

// csvEscape quotes a cell when it contains separators, quotes, or
// newlines.
func csvEscape(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
}

// Markdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return ""
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeMDRow := func(cells []string) {
		b.WriteByte('|')
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", `\|`))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	header := t.Header
	if len(header) == 0 {
		header = make([]string, cols)
	}
	writeMDRow(header)
	b.WriteByte('|')
	for i := 0; i < cols; i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeMDRow(r)
	}
	return b.String()
}
