// Package report renders experiment results as aligned ASCII tables and
// labeled series, mirroring the reports the paper's artifact generates
// from serial-console output.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render produces the aligned table text.
func (t *Table) Render() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FormatFloat renders floats compactly (3 significant decimals, trimmed).
func FormatFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// FormatSeconds renders a duration in seconds with 2 decimals.
func FormatSeconds(sec float64) string { return fmt.Sprintf("%.2fs", sec) }

// FormatFactor renders a speedup factor ("4.7x").
func FormatFactor(f float64) string { return fmt.Sprintf("%.2fx", f) }

// FormatPercent renders a 0..1 rate as a percentage.
func FormatPercent(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Series is one labeled line of a figure: a name plus (x, y) samples.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// RenderSeries prints multiple series as a column-per-series listing
// sharing the X grid of the first series.
func RenderSeries(title, xLabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	if len(series) == 0 {
		return b.String()
	}
	t := &Table{Header: append([]string{xLabel}, names(series)...)}
	for i, x := range series[0].X {
		row := []any{FormatFloat(x)}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, FormatFloat(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.Render())
	return b.String()
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}
