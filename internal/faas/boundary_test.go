package faas

import (
	"strings"
	"testing"

	"nimblock/internal/admit"
	"nimblock/internal/apps"
	"nimblock/internal/sim"
)

// TestPickBoundaries table-drives the warm/scale-up decision over the
// documented boundary conditions, checking pick() directly against a
// hand-built platform state.
func TestPickBoundaries(t *testing.T) {
	const fn = "f"
	cases := []struct {
		name        string
		boards      int
		scaleUp     int
		warm        []int // boards already holding fn's bitstreams
		outstanding []int
		wantBoard   int
		wantCold    bool
	}{
		{
			name:   "no warm board: cheapest cold board",
			boards: 3, scaleUp: 4,
			warm: nil, outstanding: []int{2, 0, 1},
			wantBoard: 1, wantCold: true,
		},
		{
			name:   "warm under threshold wins over idle cold",
			boards: 2, scaleUp: 4,
			warm: []int{0}, outstanding: []int{3, 0},
			wantBoard: 0, wantCold: false,
		},
		{
			name:   "warm at threshold scales to less-loaded cold",
			boards: 2, scaleUp: 4,
			warm: []int{0}, outstanding: []int{4, 0},
			wantBoard: 1, wantCold: true,
		},
		{
			name:   "over threshold but cold equally loaded: stay warm",
			boards: 2, scaleUp: 4,
			warm: []int{0}, outstanding: []int{5, 5},
			wantBoard: 0, wantCold: false,
		},
		{
			name:   "all boards warm and over threshold: least-loaded warm",
			boards: 3, scaleUp: 2,
			warm: []int{0, 1, 2}, outstanding: []int{9, 4, 7},
			wantBoard: 1, wantCold: false,
		},
		{
			name:   "warm load tie breaks to lowest index",
			boards: 3, scaleUp: 4,
			warm: []int{1, 2}, outstanding: []int{0, 2, 2},
			wantBoard: 1, wantCold: false,
		},
		{
			name:   "zero ScaleUp scales eagerly on any warm backlog",
			boards: 2, scaleUp: 0,
			warm: []int{0}, outstanding: []int{1, 0},
			wantBoard: 1, wantCold: true,
		},
		{
			name:   "zero ScaleUp keeps an idle warm board",
			boards: 2, scaleUp: 0,
			warm: []int{0}, outstanding: []int{0, 0},
			wantBoard: 0, wantCold: false,
		},
		{
			name:   "single board always wins warm",
			boards: 1, scaleUp: 0,
			warm: []int{0}, outstanding: []int{7},
			wantBoard: 0, wantCold: false,
		},
		{
			name:   "single board cold on first touch",
			boards: 1, scaleUp: 4,
			warm: nil, outstanding: []int{0},
			wantBoard: 0, wantCold: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Boards = tc.boards
			cfg.ScaleUp = tc.scaleUp
			_, p := newPlatform(t, cfg)
			if err := p.Register(fn, Function{Graph: apps.MustGraph(apps.LeNet), Priority: 3}); err != nil {
				t.Fatal(err)
			}
			for _, b := range tc.warm {
				p.deployed[b][fn] = true
			}
			copy(p.outstanding, tc.outstanding)
			board, cold := p.pick(fn)
			if board != tc.wantBoard || cold != tc.wantCold {
				t.Fatalf("pick = (%d, %v), want (%d, %v)", board, cold, tc.wantBoard, tc.wantCold)
			}
		})
	}
}

// TestOutstandingTracksRetirement pins the load-accounting fix: the
// dispatcher's per-board load must fall back to zero as invocations
// retire (the old pending-count approximation never saw in-flight
// cold-start submissions and misrouted bursts).
func TestOutstandingTracksRetirement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 2
	_, p := newPlatform(t, cfg)
	registerSuite(t, p)
	for i := 0; i < 4; i++ {
		if err := p.Invoke(apps.LeNet, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d results", len(res))
	}
	for b := 0; b < p.Boards(); b++ {
		if p.Outstanding(b) != 0 {
			t.Fatalf("board %d still shows %d outstanding after drain", b, p.Outstanding(b))
		}
	}
}

// TestSameInstantBurstSeesItself pins the second half of that fix:
// simultaneous invocations must observe each other's placement
// immediately, so a burst at one instant spreads instead of landing on
// one board. Board 0 is pre-warmed; with ScaleUp 1 the second
// same-instant invocation must already see the first one's load.
func TestSameInstantBurstSeesItself(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 2
	cfg.ScaleUp = 1
	_, p := newPlatform(t, cfg)
	registerSuite(t, p)
	if err := p.Invoke(apps.LeNet, 2, 0); err != nil { // cold-starts board 0
		t.Fatal(err)
	}
	burst := sim.Time(10 * sim.Second)
	for i := 0; i < 2; i++ {
		if err := p.Invoke(apps.LeNet, 2, burst); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	boards := map[int]int{}
	for _, r := range res[1:] {
		boards[r.Board]++
	}
	if boards[0] != 1 || boards[1] != 1 {
		t.Fatalf("same-instant burst not spread: %v", boards)
	}
}

// TestDispatchErrorSurfaced pins the panic removal on the faas dispatch
// path: a submission the hypervisor rejects at dispatch time surfaces as
// an error from Run.
func TestDispatchErrorSurfaced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 1
	cfg.HV.MemCapacity = 1 // no graph's buffers fit: Submit fails mechanically
	_, p := newPlatform(t, cfg)
	registerSuite(t, p)
	if err := p.Invoke(apps.LeNet, 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(); err == nil {
		t.Fatal("dispatch failure not surfaced from Run")
	}
}

// TestFaasAdmissionSheds: a burst past admission capacity is shed and
// reported as Rejected results while admitted traffic completes.
func TestFaasAdmissionSheds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 1
	cfg.Admission = &admit.Config{Capacity: 2}
	_, p := newPlatform(t, cfg)
	registerSuite(t, p)
	for i := 0; i < 5; i++ {
		if err := p.Invoke(apps.LeNet, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d results", len(res))
	}
	var done, shed int
	for _, r := range res {
		if r.Rejected {
			shed++
			if r.Board != -1 || r.RejectReason != "shed" || r.Latency != 0 {
				t.Fatalf("bad rejection: %+v", r)
			}
		} else {
			done++
			if r.Latency <= 0 {
				t.Fatalf("bad completion: %+v", r)
			}
		}
	}
	if done != 2 || shed != 3 {
		t.Fatalf("done %d shed %d", done, shed)
	}
	if st := p.Stats(); st.Rejections != 3 || st.Invocations != 2 {
		t.Fatalf("stats %+v", st)
	}
	if s := p.AdmissionStats(); s.Offered != 5 || s.Completed != 2 {
		t.Fatalf("admission stats %+v", s)
	}
}

// TestFaasAdmissionQuotaByTenant: functions carry tenant identity into
// admission; a capped tenant's excess is rejected with reason "quota".
func TestFaasAdmissionQuotaByTenant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 1
	cfg.Admission = &admit.Config{Quotas: map[string]int{"capped": 1}}
	_, p := newPlatform(t, cfg)
	if err := p.Register("capped-fn", Function{Graph: apps.MustGraph(apps.LeNet), Priority: 3, Tenant: "capped"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("free-fn", Function{Graph: apps.MustGraph(apps.ImageCompression), Priority: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Invoke("capped-fn", 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Invoke("free-fn", 2, 0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	var quotaRejects, completed int
	for _, r := range res {
		if r.Rejected && r.RejectReason == "quota" {
			quotaRejects++
			if !strings.HasPrefix(r.Function, "capped") {
				t.Fatalf("wrong function rejected: %+v", r)
			}
		} else if !r.Rejected {
			completed++
		}
	}
	if quotaRejects != 2 || completed != 2 {
		t.Fatalf("quota rejects %d completed %d", quotaRejects, completed)
	}
}

// TestFaasAdmissionQueueDrains: a bounded dispatch window promotes
// queued invocations as boards drain; everything completes.
func TestFaasAdmissionQueueDrains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 1
	cfg.Admission = &admit.Config{Capacity: 4, MaxInFlight: 1}
	_, p := newPlatform(t, cfg)
	registerSuite(t, p)
	for i := 0; i < 4; i++ {
		if err := p.Invoke(apps.LeNet, 2, sim.Time(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Rejected || r.Latency <= 0 {
			t.Fatalf("result %d not completed: %+v", i, r)
		}
	}
	if s := p.AdmissionStats(); s.Completed != 4 || s.PeakInFlight != 1 {
		t.Fatalf("admission stats %+v", s)
	}
}
