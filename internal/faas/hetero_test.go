package faas

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sched/energy"
	"nimblock/internal/sim"
)

// heteroPlatform builds a platform whose board i gets latency scale
// scales[i], running the energy-aware policy on every board.
func heteroPlatform(t *testing.T, scales []float64) (*sim.Engine, *Platform) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Boards = len(scales)
	cfgs := make([]hv.Config, len(scales))
	for i, s := range scales {
		c := hv.DefaultConfig()
		c.Board.LatencyScale = s
		cfgs[i] = c
	}
	cfg.BoardConfigs = cfgs
	p, err := New(eng, cfg, func() sched.Scheduler { return energy.New(hv.DefaultConfig().Board) })
	if err != nil {
		t.Fatal(err)
	}
	return eng, p
}

// Regression (mirrors the PR 4/PR 8 tie-break tests): identical boards
// have identical placement scores, so the first cold invocation must
// land on board 0 — equal scores break toward the lowest index.
func TestPlacementTieBreaksByLowestIndex(t *testing.T) {
	_, p := heteroPlatform(t, []float64{1, 1, 1})
	if err := p.Register(apps.LeNet, Function{Graph: apps.MustGraph(apps.LeNet), Priority: 3}); err != nil {
		t.Fatal(err)
	}
	if err := p.Invoke(apps.LeNet, 2, 0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Board != 0 || !res[0].Cold {
		t.Fatalf("first invocation on board %d (cold=%v), want cold start on board 0", res[0].Board, res[0].Cold)
	}
}

// A slow low-index board must lose the cold placement to a fast
// high-index board: the score folds the latency scale in.
func TestPlacementPrefersFasterBoard(t *testing.T) {
	_, p := heteroPlatform(t, []float64{4, 1})
	if err := p.Register(apps.LeNet, Function{Graph: apps.MustGraph(apps.LeNet), Priority: 3}); err != nil {
		t.Fatal(err)
	}
	if err := p.Invoke(apps.LeNet, 2, 0); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Board != 1 {
		t.Fatalf("invocation on board %d, want the fast board 1", res[0].Board)
	}
}

// Function tenancy rides invocation dispatch onto the boards, and the
// platform-level reports aggregate per-tenant service and energy.
func TestFunctionTenantAndEnergyWiring(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Boards = 2
	bcfg := hv.DefaultConfig()
	bcfg.Board.StaticWattsPerSlot = 1.5
	bcfg.Board.ActiveWattsPerSlot = 0.5
	cfg.BoardConfigs = []hv.Config{bcfg, bcfg}
	p, err := New(eng, cfg, func() sched.Scheduler { return energy.New(bcfg.Board) })
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Register("lenet-a", Function{Graph: apps.MustGraph(apps.LeNet), Priority: 3, Tenant: "alpha", Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("lenet-b", Function{Graph: apps.MustGraph(apps.LeNet), Priority: 3, Tenant: "beta", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		fn := "lenet-a"
		if i%2 == 1 {
			fn = "lenet-b"
		}
		if err := p.Invoke(fn, 2, sim.Time(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	svc := p.TenantServices()
	if svc["alpha"] <= 0 || svc["beta"] <= 0 {
		t.Fatalf("tenant service %v, want both tenants credited", svc)
	}
	es := p.Energy()
	if es.StaticJoules <= 0 || es.ActiveJoules <= 0 {
		t.Fatalf("platform energy %+v, want positive static and active joules", es)
	}
}
