package faas

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

// Energy sampled after Run must be horizon-independent: Run drains to
// quiescence (the makespan) instead of advancing the clock to the
// horizon, so the lazily-priced static-power integral covers only the
// time actually spanned by work. Before the DrainUntil fix, a 10x
// horizon inflated static joules ~10x over the idle tail.
func TestPlatformEnergyHorizonIndependent(t *testing.T) {
	run := func(horizon sim.Time) (hv.EnergyStats, sim.Time) {
		cfg := DefaultConfig()
		cfg.HV.Horizon = horizon
		cfg.HV.Board.StaticWattsPerSlot = 1
		cfg.HV.Board.ActiveWattsPerSlot = 2
		eng, p := newPlatform(t, cfg)
		registerSuite(t, p)
		for i := 0; i < 6; i++ {
			if err := p.Invoke(apps.LeNet, 2, sim.Time(i)*sim.Time(50*sim.Millisecond)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Energy(), eng.Now()
	}

	base := hv.DefaultConfig().Horizon
	short, shortNow := run(base)
	long, longNow := run(10 * base)
	if short != long {
		t.Fatalf("energy depends on horizon:\n  at %v: %+v\n  at %v: %+v", base, short, 10*base, long)
	}
	if shortNow != longNow {
		t.Fatalf("makespan depends on horizon: %v vs %v", shortNow, longNow)
	}
	if longNow >= 10*base {
		t.Fatalf("clock ran to the horizon (%v), not the makespan", longNow)
	}
	if short.StaticJoules <= 0 || short.ActiveJoules <= 0 {
		t.Fatalf("degenerate energy report %+v", short)
	}
}
