package faas

// Board-level failure domains for the serverless front-end. The same
// health monitor the cluster uses drives per-board liveness here; the
// differences are serverless-specific: a dead board loses its deployed
// bitstreams (re-invocations pay a fresh cold start on the next board),
// and there is no hedged dispatch — invocations are cheap to re-run and
// duplicate placement would fight the warm-affinity model.

import (
	"fmt"

	"nimblock/internal/admit"
	"nimblock/internal/health"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

// parkedInv is one invocation waiting for a placeable board: a fresh
// arrival during a full outage, or an evacuee carried off a dead board.
type parkedInv struct {
	in     *invocation
	ticket *admit.Ticket
	// snaps and workDone travel with an evacuee: surviving checkpoints
	// to seed into the next board, and the fabric time already spent.
	snaps    []hv.Snapshot
	workDone sim.Duration
	// redispatch marks evacuees, so placement books the failover
	// accounting.
	redispatch bool
}

// initHealth arms the failure-domain layer when configured. With no
// Health options and no board faults the platform behaves exactly as it
// did without this layer.
func (p *Platform) initHealth() error {
	if p.cfg.Health == nil && len(p.cfg.BoardFaults) == 0 {
		return nil
	}
	opt := health.Options{}
	if p.cfg.Health != nil {
		opt = *p.cfg.Health
	}
	opt = opt.WithDefaults()
	p.hopt = opt
	ins := health.NewInstruments(opt.Registry)
	hooks := health.Hooks{
		Progress:  func(b int) uint64 { return p.boards[b].Progress() },
		Busy:      func(b int) bool { return p.boards[b].PendingCount() > 0 },
		OnDead:    p.boardDead,
		OnFreeze:  func(b int) { p.boards[b].Freeze() },
		OnDegrade: func(b int, factor float64) { p.boards[b].SetSlowdown(factor) },
		OnRevive:  p.boardRevive,
	}
	p.mon = health.NewMonitor(p.eng, len(p.boards), opt.Tracker, hooks, ins)
	if err := p.mon.Schedule(p.cfg.BoardFaults); err != nil {
		return fmt.Errorf("faas: %w", err)
	}
	return nil
}

// settleMigration finishes a placement: seeds evacuated checkpoints so
// migrated items resume through the target's CAP, books failover
// accounting, and keeps the liveness poll armed.
func (p *Platform) settleMigration(board int, id int64, pk parkedInv) {
	if p.mon == nil {
		return
	}
	st := p.mon.StatsRef()
	ins := p.mon.Instruments()
	var migrated sim.Duration
	if len(pk.snaps) > 0 && p.boardConfig(board).Checkpoint.Enabled {
		p.boards[board].SeedCheckpoints(id, pk.snaps)
		for _, s := range pk.snaps {
			migrated += s.Progress
		}
		st.MigratedItems += len(pk.snaps)
		st.MigratedWork += migrated
		if ins != nil {
			ins.MigratedItems.Add(int64(len(pk.snaps)))
			ins.MigratedWork.Add(migrated.Seconds())
		}
	}
	if pk.redispatch {
		wasted := pk.workDone - migrated
		if wasted < 0 {
			wasted = 0
		}
		st.Redispatched++
		st.WastedWork += wasted
		if ins != nil {
			ins.Redispatched.Inc()
			ins.WastedWork.Add(wasted.Seconds())
		}
	}
	p.mon.Kick()
}

// boardDead fails a dead board's invocations over. Results that retired
// before the death are settled now — the board is rebuilt immediately
// and its replacement reuses local IDs, so every stale key must go
// first. The board's bitstream deployments die with it.
func (p *Platform) boardDead(b int) {
	evs := p.boards[b].Evacuate()
	results, err := p.boards[b].Collect()
	if err != nil {
		p.errs = append(p.errs, fmt.Errorf("faas: harvesting dead board %d: %w", b, err))
	}
	for _, r := range results {
		info, ok := p.inv[invKey{b, r.AppID}]
		if !ok {
			p.errs = append(p.errs, fmt.Errorf("faas: dead board %d reported unknown app %d", b, r.AppID))
			continue
		}
		p.done = append(p.done, Result{
			Function:  info.function,
			Board:     b,
			Cold:      info.cold,
			InvokedAt: info.invoked,
			Latency:   r.Retire.Sub(info.invoked),
			Items:     info.items,
			Attempts:  info.attempts,
		})
	}
	type evac struct {
		in *invocation
		t  *admit.Ticket
		ev hv.Evacuee
	}
	var work []evac
	for _, ev := range evs {
		key := invKey{b, ev.ID}
		in, ok := p.inv[key]
		if !ok {
			p.errs = append(p.errs, fmt.Errorf("faas: dead board %d evacuated unknown app %d", b, ev.ID))
			continue
		}
		work = append(work, evac{in, p.tickets[key], ev})
	}
	for key := range p.inv {
		if key.board == b {
			delete(p.inv, key)
			delete(p.tickets, key)
		}
	}
	if h, err := p.newBoard(b); err != nil {
		p.errs = append(p.errs, fmt.Errorf("faas: rebuilding board %d: %w", b, err))
	} else {
		p.boards[b] = h
	}
	p.deployed[b] = map[string]bool{}
	p.outstanding[b] = 0
	for _, w := range work {
		p.failover(w.in, w.t, w.ev)
	}
}

// failover re-places one evacuated invocation, failing it permanently
// once its retry budget runs out.
func (p *Platform) failover(in *invocation, t *admit.Ticket, ev hv.Evacuee) {
	in.retries++
	if in.retries > p.hopt.RetryBudget {
		st := p.mon.StatsRef()
		st.WastedWork += ev.WorkDone
		if ins := p.mon.Instruments(); ins != nil {
			ins.WastedWork.Add(ev.WorkDone.Seconds())
		}
		p.fail(in, "retries-exhausted", t)
		return
	}
	p.place(parkedInv{in: in, ticket: t, snaps: ev.Snapshots, workDone: ev.WorkDone, redispatch: true})
}

// fail records a permanent loss: the invocation surfaces from Run as a
// Failed result instead of vanishing, and its admission slot is freed.
func (p *Platform) fail(in *invocation, reason string, t *admit.Ticket) {
	board := -1
	if in.attempts > 0 {
		board = in.board
	}
	p.done = append(p.done, Result{
		Function:   in.function,
		Board:      board,
		InvokedAt:  in.invoked,
		Items:      in.items,
		Failed:     true,
		FailReason: reason,
		Attempts:   in.attempts,
	})
	if p.ctrl != nil && t != nil {
		p.ctrl.Release(t)
		if p.ctrl.QueueDepth() > 0 {
			p.eng.After(0, p.pump)
		}
	}
	st := p.mon.StatsRef()
	st.FailedSubmissions++
	if ins := p.mon.Instruments(); ins != nil {
		ins.Failed.Inc()
	}
}

// unpark retries placement for everything parked; invocations that
// still have no placeable board stay parked.
func (p *Platform) unpark() {
	if len(p.parked) == 0 {
		return
	}
	waiting := p.parked
	p.parked = nil
	for _, pk := range waiting {
		// place re-parks internally when nothing is placeable.
		p.place(pk)
	}
}

// strand fails everything still parked when the run ends: no board ever
// came back to take it.
func (p *Platform) strand() {
	st := p.mon.StatsRef()
	ins := p.mon.Instruments()
	for _, pk := range p.parked {
		st.WastedWork += pk.workDone
		if ins != nil {
			ins.WastedWork.Add(pk.workDone.Seconds())
		}
		p.fail(pk.in, "stranded", pk.ticket)
	}
	p.parked = nil
}

// boardRevive runs when a dead board's scheduled recovery arrives. The
// hypervisor was already rebuilt at death; what remains is waking
// parked work once the circuit breaker re-admits the board.
func (p *Platform) boardRevive(b int) {
	at := p.mon.Tracker(b).ReadmitAt()
	p.eng.At(at, p.unpark)
}

// FailoverStats reports the platform's failover accounting; the zero
// Stats when the failure-domain layer is off.
func (p *Platform) FailoverStats() health.Stats {
	if p.mon == nil {
		return health.Stats{}
	}
	return p.mon.Stats()
}

// BoardStates reports every board's health state; nil when the
// failure-domain layer is off.
func (p *Platform) BoardStates() []health.State {
	if p.mon == nil {
		return nil
	}
	out := make([]health.State, len(p.boards))
	for b := range p.boards {
		out[b] = p.mon.Tracker(b).State()
	}
	return out
}
