package faas

import (
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/core"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
)

func newPlatform(t *testing.T, cfg Config) (*sim.Engine, *Platform) {
	t.Helper()
	eng := sim.NewEngine()
	p, err := New(eng, cfg, func() sched.Scheduler {
		return core.New(core.DefaultOptions(), cfg.HV.Board)
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, p
}

func registerSuite(t *testing.T, p *Platform) {
	t.Helper()
	for _, n := range []string{apps.LeNet, apps.ImageCompression, apps.Rendering3D} {
		if err := p.Register(n, Function{Graph: apps.MustGraph(n), Priority: 3}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInvokeLifecycle(t *testing.T) {
	_, p := newPlatform(t, DefaultConfig())
	registerSuite(t, p)
	for i := 0; i < 6; i++ {
		if err := p.Invoke(apps.LeNet, 2, sim.Time(i)*sim.Time(100*sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("%d results", len(res))
	}
	for i, r := range res {
		if r.Function != apps.LeNet || r.Latency <= 0 || r.Items != 2 {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
	st := p.Stats()
	if st.Invocations != 6 || st.ColdStarts < 1 || st.ColdStarts+st.WarmStarts != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestColdStartPaidOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 1
	cfg.ScaleUp = 1 << 30 // never scale up
	_, p := newPlatform(t, cfg)
	registerSuite(t, p)
	p.Invoke(apps.LeNet, 1, 0)
	p.Invoke(apps.LeNet, 1, sim.Time(5*sim.Second))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Cold || res[1].Cold {
		t.Fatalf("cold flags = %v %v, want cold then warm", res[0].Cold, res[1].Cold)
	}
	// The cold invocation pays at least the cold-start delay extra.
	if res[0].Latency < res[1].Latency+cfg.ColdStart-sim.Duration(100*sim.Millisecond) {
		t.Fatalf("cold latency %v vs warm %v (cold start %v)", res[0].Latency, res[1].Latency, cfg.ColdStart)
	}
}

func TestWarmAffinity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 3
	cfg.ScaleUp = 1 << 30
	_, p := newPlatform(t, cfg)
	registerSuite(t, p)
	// Sparse invocations of one function stay on the first (warm) board.
	for i := 0; i < 5; i++ {
		p.Invoke(apps.Rendering3D, 1, sim.Time(i)*sim.Time(10*sim.Second))
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	cold := 0
	for _, r := range res {
		if r.Cold {
			cold++
		}
		if r.Board != res[0].Board {
			t.Fatalf("invocation moved boards despite warm affinity: %+v", res)
		}
	}
	if cold != 1 {
		t.Fatalf("%d cold starts, want 1", cold)
	}
}

func TestScaleUpOpensNewBoards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boards = 3
	cfg.ScaleUp = 2
	_, p := newPlatform(t, cfg)
	registerSuite(t, p)
	// A burst far exceeding one board's scale-up threshold.
	for i := 0; i < 12; i++ {
		p.Invoke(apps.Rendering3D, 3, sim.Time(i)*sim.Time(10*sim.Millisecond))
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	boards := map[int]bool{}
	for _, r := range res {
		boards[r.Board] = true
	}
	if len(boards) < 2 {
		t.Fatalf("burst never scaled beyond one board: %+v", p.Stats())
	}
	if p.Stats().ColdStarts != len(boards) {
		t.Fatalf("cold starts %d != boards used %d", p.Stats().ColdStarts, len(boards))
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Boards: 0, HV: hv.DefaultConfig()}, nil); err == nil {
		t.Fatal("zero boards accepted")
	}
	cfg := DefaultConfig()
	cfg.ColdStart = -1
	if _, err := New(eng, cfg, func() sched.Scheduler { return core.New(core.DefaultOptions(), cfg.HV.Board) }); err == nil {
		t.Fatal("negative cold start accepted")
	}
	_, p := newPlatform(t, DefaultConfig())
	if err := p.Invoke("ghost", 1, 0); err == nil {
		t.Fatal("unknown function accepted")
	}
	if err := p.Register("bad", Function{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if err := p.Register("bad", Function{Graph: apps.MustGraph(apps.LeNet), Priority: 0}); err == nil {
		t.Fatal("zero priority accepted")
	}
	registerSuite(t, p)
	if err := p.Register(apps.LeNet, Function{Graph: apps.MustGraph(apps.LeNet), Priority: 1}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := p.Invoke(apps.LeNet, 0, 0); err == nil {
		t.Fatal("zero items accepted")
	}
	if p.Boards() != 4 {
		t.Fatalf("Boards = %d", p.Boards())
	}
}

func TestMixedFunctionsComplete(t *testing.T) {
	_, p := newPlatform(t, DefaultConfig())
	registerSuite(t, p)
	names := []string{apps.LeNet, apps.ImageCompression, apps.Rendering3D}
	n := 0
	for i := 0; i < 15; i++ {
		if err := p.Invoke(names[i%3], 1+i%4, sim.Time(i)*sim.Time(80*sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
		n++
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("%d results for %d invocations", len(res), n)
	}
	// Results sorted by invocation time.
	for i := 1; i < len(res); i++ {
		if res[i].InvokedAt < res[i-1].InvokedAt {
			t.Fatal("results not sorted by invocation time")
		}
	}
}
