package faas

import (
	"fmt"
	"math/rand"
	"testing"

	"nimblock/internal/apps"
	"nimblock/internal/faults"
	"nimblock/internal/health"
	"nimblock/internal/hv"
	"nimblock/internal/sim"
)

func newFailoverPlatform(t *testing.T, cfg Config, events []faults.BoardEvent) *Platform {
	t.Helper()
	if cfg.HV.Board.Slots == 0 {
		cfg.HV = hv.DefaultConfig()
	}
	if cfg.ColdStart == 0 {
		cfg.ColdStart = 500 * sim.Millisecond
	}
	if cfg.ScaleUp == 0 {
		cfg.ScaleUp = 4
	}
	cfg.BoardFaults = events
	_, p := newPlatform(t, cfg)
	return p
}

// classifyInv asserts every result is exactly one of completed,
// rejected, or failed, and returns the counts.
func classifyInv(t *testing.T, res []Result) (completed, rejected, failed int) {
	t.Helper()
	for i, r := range res {
		switch {
		case r.Rejected && r.Failed:
			t.Fatalf("result %d both rejected and failed: %+v", i, r)
		case r.Rejected:
			rejected++
		case r.Failed:
			if r.FailReason == "" {
				t.Fatalf("result %d failed without a reason: %+v", i, r)
			}
			if r.Latency != 0 {
				t.Fatalf("failed result %d has a latency: %+v", i, r)
			}
			failed++
		default:
			if r.Board < 0 || r.Latency <= 0 || r.Attempts < 1 {
				t.Fatalf("completed result %d malformed: %+v", i, r)
			}
			completed++
		}
	}
	return completed, rejected, failed
}

// TestFaaSBoardCrashFailsOver kills the warm board mid-run: in-flight
// invocations must land on the surviving board (paying a fresh cold
// start — the bitstreams died with the board) and nothing may be lost.
func TestFaaSBoardCrashFailsOver(t *testing.T) {
	events := []faults.BoardEvent{{
		Kind: faults.BoardCrash, Board: 0,
		At: sim.Time(300 * sim.Millisecond), Recover: sim.Time(60 * sim.Second),
	}}
	p := newFailoverPlatform(t, Config{Boards: 2, Health: &health.Options{}}, events)
	registerSuite(t, p)
	for i := 0; i < 6; i++ {
		if err := p.Invoke(apps.Rendering3D, 2, sim.Time(i)*sim.Time(100*sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("%d results for 6 invocations", len(res))
	}
	completed, _, failed := classifyInv(t, res)
	if completed+failed != 6 {
		t.Fatalf("conservation broken: %d + %d != 6", completed, failed)
	}
	st := p.FailoverStats()
	if st.Deaths == 0 {
		t.Fatal("scheduled crash never registered as a death")
	}
	if st.Redispatched == 0 && failed == 0 {
		t.Fatal("board death affected nothing: no redispatch, no failure")
	}
	retried := 0
	for _, r := range res {
		if !r.Failed && r.Attempts > 1 {
			retried++
			if r.Board != 1 {
				t.Fatalf("failover landed on board %d, want the survivor 1", r.Board)
			}
		}
	}
	if retried == 0 {
		t.Fatal("no invocation survived the crash with a second attempt")
	}
	// Warm affinity put everything on board 0; failover must have paid a
	// second cold start to deploy on the survivor.
	if p.Stats().ColdStarts < 2 {
		t.Fatalf("%d cold starts, want at least 2 (initial + failover)", p.Stats().ColdStarts)
	}
}

// TestFaaSRecoveredBoardColdStartsAgain runs the full breaker cycle on
// a single board: crash, recovery, re-admission — and checks the
// rebuilt board forgot its deployed bitstreams.
func TestFaaSRecoveredBoardColdStartsAgain(t *testing.T) {
	hopt := &health.Options{Tracker: health.Config{
		BackoffBase: 100 * sim.Millisecond,
		BackoffMax:  200 * sim.Millisecond,
	}}
	events := []faults.BoardEvent{{
		Kind: faults.BoardCrash, Board: 0,
		At: sim.Time(200 * sim.Millisecond), Recover: sim.Time(2 * sim.Second),
	}}
	p := newFailoverPlatform(t, Config{Boards: 1, ScaleUp: 1 << 30, Health: hopt}, events)
	registerSuite(t, p)
	p.Invoke(apps.Rendering3D, 2, 0)
	p.Invoke(apps.Rendering3D, 2, sim.Time(30*sim.Second))
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	completed, _, failed := classifyInv(t, res)
	if completed+failed != 2 {
		t.Fatalf("conservation broken: %d + %d != 2", completed, failed)
	}
	st := p.FailoverStats()
	if st.Recoveries == 0 {
		t.Fatal("scheduled recovery never revived the board")
	}
	if completed == 0 {
		t.Fatal("nothing completed on the revived board")
	}
	// The board's bitstream store died with it: the first placement and
	// the first post-rebuild placement are both cold.
	if p.Stats().ColdStarts < 2 {
		t.Fatalf("%d cold starts, want at least 2 (rebuild wipes deployments)", p.Stats().ColdStarts)
	}
	if s := p.BoardStates()[0]; s == health.Dead || s == health.Draining {
		t.Fatalf("board 0 ended the run %v", s)
	}
}

// TestFaaSCheckpointMigration crashes a board mid-item with
// checkpointing on: evacuated snapshots must seed the replacement
// placement and register as migrated work.
func TestFaaSCheckpointMigration(t *testing.T) {
	cfg := Config{Boards: 2, ScaleUp: 1 << 30, Health: &health.Options{}, HV: hv.DefaultConfig()}
	cfg.HV.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 20 * sim.Millisecond}
	events := []faults.BoardEvent{{
		Kind: faults.BoardCrash, Board: 0,
		At: sim.Time(1 * sim.Second), Recover: sim.Time(120 * sim.Second),
	}}
	p := newFailoverPlatform(t, cfg, events)
	if err := p.Register(apps.OpticalFlow, Function{Graph: apps.MustGraph(apps.OpticalFlow), Priority: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.Invoke(apps.OpticalFlow, 2, sim.Time(i)*sim.Time(50*sim.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	completed, _, failed := classifyInv(t, res)
	if completed+failed != 2 {
		t.Fatalf("conservation broken: %d + %d != 2", completed, failed)
	}
	st := p.FailoverStats()
	if st.Redispatched == 0 {
		t.Fatal("crash at 1s redispatched nothing")
	}
	if st.MigratedItems == 0 || st.MigratedWork <= 0 {
		t.Fatalf("no checkpoint migration despite enabled checkpoints: %+v", st)
	}
}

// TestFaaSConservationUnderBoardFaults is the serverless counterpart of
// the cluster conservation property: random fault schedules, retry
// budgets, and checkpointing never lose or double-count an invocation.
func TestFaaSConservationUnderBoardFaults(t *testing.T) {
	pool := []string{apps.LeNet, apps.ImageCompression, apps.Rendering3D}
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			boards := 1 + rng.Intn(3)
			cfg := Config{Boards: boards, ScaleUp: 1 + rng.Intn(4), HV: hv.DefaultConfig()}
			if rng.Intn(2) == 0 {
				cfg.HV.Checkpoint = hv.CheckpointConfig{Enabled: true, Period: 30 * sim.Millisecond}
			}
			cfg.Health = &health.Options{RetryBudget: 1 + rng.Intn(3)}
			var events []faults.BoardEvent
			for i, n := 0, 1+rng.Intn(3); i < n; i++ {
				b := rng.Intn(boards)
				at := sim.Time(rng.Int63n(int64(2 * sim.Second)))
				var recover sim.Time
				if rng.Intn(2) == 0 {
					recover = at + sim.Time(1+rng.Int63n(int64(10*sim.Second)))
				}
				switch rng.Intn(3) {
				case 0:
					events = append(events, faults.BoardEvent{Kind: faults.BoardCrash, Board: b, At: at, Recover: recover})
				case 1:
					events = append(events, faults.BoardEvent{Kind: faults.BoardHang, Board: b, At: at, Recover: recover})
				default:
					events = append(events, faults.BoardEvent{
						Kind: faults.BoardDegrade, Board: b, At: at,
						Until: at + sim.Time(1+rng.Int63n(int64(5*sim.Second))), Factor: 1.5 + rng.Float64()*6,
					})
				}
			}
			p := newFailoverPlatform(t, cfg, events)
			registerSuite(t, p)
			n := 4 + rng.Intn(8)
			for i := 0; i < n; i++ {
				fn := pool[rng.Intn(len(pool))]
				at := sim.Time(rng.Int63n(int64(2 * sim.Second)))
				if err := p.Invoke(fn, 1+rng.Intn(3), at); err != nil {
					t.Fatal(err)
				}
			}
			res, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != n {
				t.Fatalf("%d results for %d invocations", len(res), n)
			}
			completed, rejected, failed := classifyInv(t, res)
			if rejected != 0 {
				t.Fatalf("no admission configured but %d rejected", rejected)
			}
			if completed+failed != n {
				t.Fatalf("conservation broken: %d + %d != %d", completed, failed, n)
			}
			st := p.FailoverStats()
			if failed != st.FailedSubmissions {
				t.Fatalf("%d failed results but stats count %d", failed, st.FailedSubmissions)
			}
			for i, r := range res {
				if !r.Failed && r.Attempts > cfg.Health.RetryBudget+1 {
					t.Fatalf("result %d used %d attempts with budget %d", i, r.Attempts, cfg.Health.RetryBudget)
				}
			}
		})
	}
}
