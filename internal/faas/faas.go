// Package faas layers a serverless platform over the virtualized FPGA
// cluster.
//
// The paper's introduction argues FPGA virtualization is the enabler for
// serverless computing with FPGAs as first-class accelerators: FaaS needs
// strong isolation between tenants (slots), fine-grained scheduling of
// individual tasks (the Nimblock runtime), and flexible resource
// allocation (the cluster). This package supplies the missing front-end:
// a function registry, invocation dispatch with warm-board affinity, and
// cold-start modelling — a function's partial bitstreams must be
// distributed to a board before its first invocation runs there.
package faas

import (
	"fmt"
	"sort"

	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Function is a registered FPGA function: a task-graph with a fixed
// priority class.
type Function struct {
	Graph    *taskgraph.Graph
	Priority int
}

// Config parameterizes the platform.
type Config struct {
	// Boards is the cluster size.
	Boards int
	// HV configures each board.
	HV hv.Config
	// ColdStart is the delay to distribute a function's bitstreams to a
	// board that has never run it (network copy to the board's SD card).
	ColdStart sim.Duration
	// ScaleUp is the pending-invocation count on warm boards beyond
	// which the dispatcher pays a cold start to open a new board.
	ScaleUp int
}

// DefaultConfig is a four-board platform with a 500 ms cold start.
func DefaultConfig() Config {
	return Config{
		Boards:    4,
		HV:        hv.DefaultConfig(),
		ColdStart: 500 * sim.Millisecond,
		ScaleUp:   4,
	}
}

// Result is one completed invocation.
type Result struct {
	Function string
	Board    int
	Cold     bool
	// InvokedAt is when the client issued the invocation.
	InvokedAt sim.Time
	// Latency is retirement minus invocation, including any cold start.
	Latency sim.Duration
	// Items echoes the invocation batch.
	Items int
}

// Stats aggregates platform counters.
type Stats struct {
	Invocations int
	ColdStarts  int
	WarmStarts  int
}

// pendingInvocation links a board-local application ID back to the
// invocation that produced it.
type invKey struct {
	board   int
	localID int64
}

type invInfo struct {
	function string
	invoked  sim.Time
	cold     bool
	items    int
}

// Platform is the serverless front-end.
type Platform struct {
	eng       *sim.Engine
	cfg       Config
	boards    []*hv.Hypervisor
	submitted []int64 // per-board submission counter (board-local IDs)
	deployed  []map[string]bool
	pendInv   []int // per-board dispatched-not-finished estimate
	funcs     map[string]Function
	inv       map[invKey]invInfo
	stats     Stats
	expected  int
}

// New builds a platform; mkPolicy supplies one scheduler per board.
func New(eng *sim.Engine, cfg Config, mkPolicy func() sched.Scheduler) (*Platform, error) {
	if cfg.Boards < 1 {
		return nil, fmt.Errorf("faas: need at least one board")
	}
	if cfg.ColdStart < 0 {
		return nil, fmt.Errorf("faas: negative cold start")
	}
	if mkPolicy == nil {
		return nil, fmt.Errorf("faas: nil policy factory")
	}
	p := &Platform{
		eng:   eng,
		cfg:   cfg,
		funcs: map[string]Function{},
		inv:   map[invKey]invInfo{},
	}
	for i := 0; i < cfg.Boards; i++ {
		h, err := hv.New(eng, cfg.HV, mkPolicy())
		if err != nil {
			return nil, err
		}
		p.boards = append(p.boards, h)
		p.deployed = append(p.deployed, map[string]bool{})
		p.pendInv = append(p.pendInv, 0)
		p.submitted = append(p.submitted, 0)
	}
	return p, nil
}

// Register adds a function to the registry. Functions must be registered
// before they are invoked; re-registration replaces the definition only
// if no invocation has run yet.
func (p *Platform) Register(name string, fn Function) error {
	if fn.Graph == nil {
		return fmt.Errorf("faas: function %q has no task-graph", name)
	}
	if fn.Priority < 1 {
		return fmt.Errorf("faas: function %q priority %d < 1", name, fn.Priority)
	}
	if _, dup := p.funcs[name]; dup {
		return fmt.Errorf("faas: function %q already registered", name)
	}
	p.funcs[name] = fn
	return nil
}

// Invoke schedules an invocation of a registered function at the given
// time with the given number of independent inputs.
func (p *Platform) Invoke(function string, items int, at sim.Time) error {
	if _, ok := p.funcs[function]; !ok {
		return fmt.Errorf("faas: unknown function %q", function)
	}
	if items < 1 {
		return fmt.Errorf("faas: invocation of %q with %d items", function, items)
	}
	p.expected++
	p.eng.At(at, func() { p.dispatch(function, items, at) })
	return nil
}

// dispatch places an invocation at its arrival instant.
func (p *Platform) dispatch(function string, items int, invoked sim.Time) {
	fn := p.funcs[function]
	board, cold := p.pick(function)
	arrival := p.eng.Now()
	if cold {
		p.deployed[board][function] = true
		p.stats.ColdStarts++
		arrival = arrival.Add(p.cfg.ColdStart)
	} else {
		p.stats.WarmStarts++
	}
	p.stats.Invocations++
	p.pendInv[board]++
	if err := p.boards[board].Submit(fn.Graph, items, fn.Priority, arrival); err != nil {
		panic(fmt.Sprintf("faas: dispatch-time submit failed: %v", err))
	}
	p.submitted[board]++
	p.inv[invKey{board, p.submitted[board]}] = invInfo{
		function: function,
		invoked:  invoked,
		cold:     cold,
		items:    items,
	}
}

// pick chooses a board with warm affinity: the least-busy board that
// already holds the function's bitstreams, unless all warm boards exceed
// the scale-up threshold and a colder board is idle enough to justify
// the cold start.
func (p *Platform) pick(function string) (board int, cold bool) {
	warmBest, warmLoad := -1, 0
	coldBest, coldLoad := -1, 0
	for i := range p.boards {
		load := p.pendInv[i] - doneApprox(p.boards[i], p.pendInv[i])
		if p.deployed[i][function] {
			if warmBest == -1 || load < warmLoad {
				warmBest, warmLoad = i, load
			}
		} else if coldBest == -1 || load < coldLoad {
			coldBest, coldLoad = i, load
		}
	}
	if warmBest == -1 {
		return coldBest, true
	}
	if coldBest != -1 && warmLoad >= p.cfg.ScaleUp && coldLoad < warmLoad {
		return coldBest, true
	}
	return warmBest, false
}

// doneApprox estimates completed invocations on a board from its pending
// count: dispatched minus currently pending.
func doneApprox(h *hv.Hypervisor, dispatched int) int {
	pend := h.PendingCount()
	if pend > dispatched {
		return 0
	}
	return dispatched - pend
}

// Stats returns platform counters.
func (p *Platform) Stats() Stats { return p.stats }

// Boards reports the cluster size.
func (p *Platform) Boards() int { return len(p.boards) }

// Run drives the simulation until every invocation completes and returns
// per-invocation results ordered by invocation time (ties by board).
func (p *Platform) Run() ([]Result, error) {
	p.eng.RunUntil(p.cfg.HV.Horizon)
	var out []Result
	for bi, b := range p.boards {
		results, err := b.Collect()
		if err != nil {
			return nil, fmt.Errorf("faas: board %d: %w", bi, err)
		}
		for _, r := range results {
			info, ok := p.inv[invKey{bi, r.AppID}]
			if !ok {
				return nil, fmt.Errorf("faas: board %d app %d has no invocation record", bi, r.AppID)
			}
			out = append(out, Result{
				Function:  info.function,
				Board:     bi,
				Cold:      info.cold,
				InvokedAt: info.invoked,
				Latency:   r.Retire.Sub(info.invoked),
				Items:     info.items,
			})
		}
	}
	if len(out) != p.expected {
		return nil, fmt.Errorf("faas: %d results for %d invocations", len(out), p.expected)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InvokedAt != out[j].InvokedAt {
			return out[i].InvokedAt < out[j].InvokedAt
		}
		return out[i].Board < out[j].Board
	})
	return out, nil
}
