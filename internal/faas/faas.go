// Package faas layers a serverless platform over the virtualized FPGA
// cluster.
//
// The paper's introduction argues FPGA virtualization is the enabler for
// serverless computing with FPGAs as first-class accelerators: FaaS needs
// strong isolation between tenants (slots), fine-grained scheduling of
// individual tasks (the Nimblock runtime), and flexible resource
// allocation (the cluster). This package supplies the missing front-end:
// a function registry, invocation dispatch with warm-board affinity, and
// cold-start modelling — a function's partial bitstreams must be
// distributed to a board before its first invocation runs there.
//
// An optional admission controller (internal/admit) bounds what the
// platform accepts; rejected invocations come back from Run as Rejected
// results, so a traffic spike sheds load instead of queueing without
// bound.
package faas

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nimblock/internal/admit"
	"nimblock/internal/faults"
	"nimblock/internal/health"
	"nimblock/internal/hv"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/taskgraph"
)

// Function is a registered FPGA function: a task-graph with a fixed
// priority class and optional admission attributes.
type Function struct {
	Graph    *taskgraph.Graph
	Priority int
	// Tenant attributes the function's invocations for admission quotas
	// and fair sharing; "" is the shared default tenant.
	Tenant string
	// Weight is the tenant's fair-share weight for service-proportional
	// scheduling on the boards (NimblockEnergy); 0 means weight 1.
	Weight float64
	// SLO is the per-invocation latency budget for deadline admission;
	// 0 falls back to the admission controller's DeadlineFactor.
	SLO sim.Duration
}

// Config parameterizes the platform.
type Config struct {
	// Boards is the cluster size.
	Boards int
	// HV configures each board.
	HV hv.Config
	// BoardConfigs, when non-nil, overrides HV per board, enabling a
	// heterogeneous platform (mixed slot counts, latency scales, power
	// envelopes). Its length must equal Boards. Placement folds each
	// board's latency scale and usable slot count into its load score.
	BoardConfigs []hv.Config
	// ColdStart is the delay to distribute a function's bitstreams to a
	// board that has never run it (network copy to the board's SD card).
	ColdStart sim.Duration
	// ScaleUp is the pending-invocation count on warm boards beyond
	// which the dispatcher pays a cold start to open a new board.
	// Values <= 0 mean eager scaling: any warm backlog at all justifies
	// a strictly less-loaded cold board.
	ScaleUp int
	// Admission, when non-nil, bounds accepted invocations; rejections
	// are reported as Rejected results from Run.
	Admission *admit.Config
	// Health, when non-nil, arms the board-level failure domain layer:
	// liveness tracking, health-aware placement, failover of invocations
	// off dead boards (checkpoint migration when HV.Checkpoint is
	// enabled), and circuit-breaker re-admission. A dead board loses its
	// deployed bitstreams, so re-invocations pay a fresh cold start.
	// Hedged dispatch is a cluster-only feature: invocations are cheap
	// to re-run and warm affinity would make duplicate placement fight
	// the cold-start model. Enabled automatically when BoardFaults is
	// non-empty.
	Health *health.Options
	// BoardFaults schedules board-level fault events (crash, hang,
	// degrade), typically via faults.Plan.BoardEvents.
	BoardFaults []faults.BoardEvent
}

// DefaultConfig is a four-board platform with a 500 ms cold start.
func DefaultConfig() Config {
	return Config{
		Boards:    4,
		HV:        hv.DefaultConfig(),
		ColdStart: 500 * sim.Millisecond,
		ScaleUp:   4,
	}
}

// Result is one completed (or rejected) invocation. A Rejected result
// never reached a board: Board is -1, Latency 0, and RejectReason names
// the admission outcome.
type Result struct {
	Function string
	Board    int
	Cold     bool
	// InvokedAt is when the client issued the invocation.
	InvokedAt sim.Time
	// Latency is retirement minus invocation, including any cold start.
	Latency sim.Duration
	// Items echoes the invocation batch.
	Items        int
	Rejected     bool
	RejectReason string
	// Failed marks invocations lost permanently to board deaths: the
	// retry budget ran out ("retries-exhausted") or no board ever came
	// back ("stranded"). Board is the last board that held it, or -1.
	Failed     bool
	FailReason string
	// Attempts counts placements: 1 for an invocation that ran where it
	// first landed, more after failover, 0 for rejected (or failed
	// before any board could take it).
	Attempts int
}

// Stats aggregates platform counters. Invocations counts accepted
// dispatches only; Rejections counts what admission turned away.
type Stats struct {
	Invocations int
	ColdStarts  int
	WarmStarts  int
	Rejections  int
}

// invKey links a board-local application ID back to the invocation that
// produced it.
type invKey struct {
	board   int
	localID int64
}

type invocation struct {
	function string
	invoked  sim.Time
	items    int
	cold     bool
	board    int
	// attempts counts successful placements; retries counts board
	// deaths survived so far (failover bookkeeping).
	attempts int
	retries  int
}

// Platform is the serverless front-end.
type Platform struct {
	eng         *sim.Engine
	cfg         Config
	boards      []hv.Instance
	deployed    []map[string]bool
	outstanding []int // per-board dispatched-not-retired invocations
	funcs       map[string]Function
	inv         map[invKey]*invocation
	tickets     map[invKey]*admit.Ticket
	ctrl        *admit.Controller
	rejects     []Result
	errs        []error
	stats       Stats
	expected    int

	// Failure-domain state (nil/empty when Config.Health is off; see
	// failover.go).
	mkPolicy func() sched.Scheduler // retained to rebuild dead boards
	mon      *health.Monitor
	hopt     health.Options
	parked   []parkedInv
	done     []Result // results settled before Run (harvested or failed)
}

// New builds a platform; mkPolicy supplies one scheduler per board.
func New(eng *sim.Engine, cfg Config, mkPolicy func() sched.Scheduler) (*Platform, error) {
	if cfg.Boards < 1 {
		return nil, fmt.Errorf("faas: need at least one board")
	}
	if cfg.ColdStart < 0 {
		return nil, fmt.Errorf("faas: negative cold start")
	}
	if mkPolicy == nil {
		return nil, fmt.Errorf("faas: nil policy factory")
	}
	if cfg.BoardConfigs != nil && len(cfg.BoardConfigs) != cfg.Boards {
		return nil, fmt.Errorf("faas: %d board configs for %d boards", len(cfg.BoardConfigs), cfg.Boards)
	}
	p := &Platform{
		eng:      eng,
		cfg:      cfg,
		funcs:    map[string]Function{},
		inv:      map[invKey]*invocation{},
		tickets:  map[invKey]*admit.Ticket{},
		mkPolicy: mkPolicy,
	}
	if cfg.Admission != nil {
		ctrl, err := admit.New(*cfg.Admission)
		if err != nil {
			return nil, fmt.Errorf("faas: %w", err)
		}
		p.ctrl = ctrl
	}
	for i := 0; i < cfg.Boards; i++ {
		h, err := p.newBoard(i)
		if err != nil {
			return nil, err
		}
		p.boards = append(p.boards, h)
		p.deployed = append(p.deployed, map[string]bool{})
		p.outstanding = append(p.outstanding, 0)
	}
	if err := p.initHealth(); err != nil {
		return nil, err
	}
	return p, nil
}

// newBoard builds (or rebuilds, after a recovery) board i's hypervisor
// with the platform's retire hook chained onto any user-provided one.
func (p *Platform) newBoard(i int) (hv.Instance, error) {
	bcfg := p.boardConfig(i)
	board, user := i, bcfg.OnRetire
	bcfg.OnRetire = func(id int64) {
		if user != nil {
			user(id)
		}
		p.onRetire(board, id)
	}
	return hv.New(p.eng, bcfg, p.mkPolicy())
}

// Register adds a function to the registry. Functions must be registered
// before they are invoked; re-registration replaces the definition only
// if no invocation has run yet.
func (p *Platform) Register(name string, fn Function) error {
	if fn.Graph == nil {
		return fmt.Errorf("faas: function %q has no task-graph", name)
	}
	if fn.Priority < 1 {
		return fmt.Errorf("faas: function %q priority %d < 1", name, fn.Priority)
	}
	if _, dup := p.funcs[name]; dup {
		return fmt.Errorf("faas: function %q already registered", name)
	}
	p.funcs[name] = fn
	return nil
}

// Invoke schedules an invocation of a registered function at the given
// time with the given number of independent inputs.
func (p *Platform) Invoke(function string, items int, at sim.Time) error {
	if _, ok := p.funcs[function]; !ok {
		return fmt.Errorf("faas: unknown function %q", function)
	}
	if items < 1 {
		return fmt.Errorf("faas: invocation of %q with %d items", function, items)
	}
	p.expected++
	p.eng.At(at, func() { p.arrive(function, items, at) })
	return nil
}

// arrive runs the admission decision (if configured) at the invocation
// instant and dispatches or records the outcome.
func (p *Platform) arrive(function string, items int, invoked sim.Time) {
	in := &invocation{function: function, invoked: invoked, items: items}
	if p.ctrl == nil {
		p.dispatch(in, nil)
		return
	}
	fn := p.funcs[function]
	_, evicted, out := p.ctrl.Offer(admit.Request{
		Tenant:   fn.Tenant,
		Priority: fn.Priority,
		Estimate: p.estimate(fn.Graph, items),
		SLO:      fn.SLO,
		Arrival:  p.eng.Now(),
		Payload:  in,
	}, p.minLoad())
	if out != admit.Admitted {
		p.reject(in, out.String())
		return
	}
	if evicted != nil {
		p.reject(evicted.Request().Payload.(*invocation), admit.Shed.String())
	}
	p.pump()
}

// estimate is the admission-time work estimate: single-slot latency on
// the platform's fastest-case board, optimistic across heterogeneous
// fleets so the deadline test never rejects work a fast board could
// have finished in time.
func (p *Platform) estimate(g *taskgraph.Graph, items int) sim.Duration {
	best := hv.SingleSlotLatencyFor(p.boardConfig(0).Board, g, items)
	for i := 1; i < len(p.boards); i++ {
		if e := hv.SingleSlotLatencyFor(p.boardConfig(i).Board, g, items); e < best {
			best = e
		}
	}
	return best
}

// pump dispatches every invocation the controller clears.
func (p *Platform) pump() {
	for _, t := range p.ctrl.Dispatchable() {
		p.dispatch(t.Request().Payload.(*invocation), t)
	}
}

// reject records an admission rejection for reporting from Run.
func (p *Platform) reject(in *invocation, reason string) {
	p.stats.Rejections++
	p.rejects = append(p.rejects, Result{
		Function:     in.function,
		Board:        -1,
		InvokedAt:    in.invoked,
		Items:        in.items,
		Rejected:     true,
		RejectReason: reason,
	})
}

// dispatch places an invocation now. Submit failures are recorded and
// surfaced from Run, never panicked: one bad invocation must not take
// down the platform.
func (p *Platform) dispatch(in *invocation, t *admit.Ticket) {
	p.place(parkedInv{in: in, ticket: t})
}

// place lands one invocation (fresh, parked, or evacuated) on a board,
// seeding any surviving checkpoints so migrated items resume instead of
// re-executing. With no placeable board it parks the invocation until
// one recovers.
func (p *Platform) place(pk parkedInv) {
	in := pk.in
	fn := p.funcs[in.function]
	board, cold := p.pick(in.function)
	if board < 0 {
		p.parked = append(p.parked, pk)
		return
	}
	arrival := p.eng.Now()
	if cold {
		arrival = arrival.Add(p.cfg.ColdStart)
	}
	var id int64
	var err error
	if fn.Tenant != "" {
		id, err = p.boards[board].SubmitTenant(fn.Graph, in.items, fn.Priority, arrival, fn.Tenant, fn.Weight)
	} else {
		id, err = p.boards[board].SubmitID(fn.Graph, in.items, fn.Priority, arrival)
	}
	if err != nil {
		p.errs = append(p.errs, fmt.Errorf("faas: invocation of %q: %w", in.function, err))
		if p.ctrl != nil {
			p.ctrl.Release(pk.ticket) // free the admission slot the failed dispatch held
		}
		return
	}
	if cold {
		p.deployed[board][in.function] = true
		p.stats.ColdStarts++
	} else {
		p.stats.WarmStarts++
	}
	if in.attempts == 0 {
		p.stats.Invocations++
	}
	in.attempts++
	p.outstanding[board]++
	in.cold, in.board = cold, board
	key := invKey{board, id}
	p.inv[key] = in
	if pk.ticket != nil {
		p.tickets[key] = pk.ticket
	}
	p.settleMigration(board, id, pk)
}

// onRetire keeps the per-board outstanding count honest and releases the
// retiring invocation's admission slot; promotion of queued work happens
// on the next event tick, outside the hypervisor's retire processing.
func (p *Platform) onRetire(board int, id int64) {
	key := invKey{board, id}
	if _, ok := p.inv[key]; !ok {
		return
	}
	p.outstanding[board]--
	if p.mon != nil {
		p.mon.Tracker(board).ReportSuccess()
		if len(p.parked) > 0 {
			p.eng.After(0, p.unpark)
		}
	}
	if t, ok := p.tickets[key]; ok {
		delete(p.tickets, key)
		p.ctrl.Release(t)
		if p.ctrl.QueueDepth() > 0 {
			p.eng.After(0, p.pump)
		}
	}
}

// pick chooses a board with warm affinity: the least-busy board that
// already holds the function's bitstreams, unless every warm board is at
// or over the scale-up threshold and a cold board is strictly less
// loaded, in which case the cold start is worth paying. Load ties break
// toward the lowest board index (strict "<"), so placement is
// deterministic. Boundary behavior, pinned by tests:
//
//   - no warm board: cheapest cold board, cold start;
//   - all boards warm (nowhere to scale to): least-loaded warm board,
//     however deep its backlog;
//   - ScaleUp <= 0: eager scaling — any warm backlog justifies a
//     strictly less-loaded cold board (an idle warm board still wins);
//   - single board: always that board, cold exactly once per function.
func (p *Platform) pick(function string) (board int, cold bool) {
	warmBest, coldBest := -1, -1
	var warmScore, coldScore float64
	warmLoad := 0
	for i := range p.boards {
		if p.mon != nil && !p.mon.Tracker(i).Placeable(p.eng.Now()) {
			continue
		}
		score := p.score(i)
		if p.deployed[i][function] {
			if warmBest == -1 || score < warmScore {
				warmBest, warmScore = i, score
				warmLoad = p.outstanding[i]
			}
		} else if coldBest == -1 || score < coldScore {
			coldBest, coldScore = i, score
		}
	}
	if warmBest == -1 {
		if coldBest == -1 {
			return -1, false // nothing placeable right now
		}
		return coldBest, true
	}
	threshold := p.cfg.ScaleUp
	if threshold <= 0 {
		threshold = 1
	}
	if coldBest != -1 && warmLoad >= threshold && coldScore < warmScore {
		return coldBest, true
	}
	return warmBest, false
}

// score ranks a board for placement: the outstanding invocation count,
// stretched by the board's latency scale and divided by its usable slot
// count, so a slow or narrow board looks busier than a fast wide board
// at the same queue depth. On a homogeneous platform every factor
// cancels and the score orders exactly like the raw count did, ties
// still breaking toward the lowest board index through strict "<".
func (p *Platform) score(i int) float64 {
	usable := p.boards[i].Board().UsableSlots()
	if usable == 0 {
		return math.Inf(1)
	}
	return float64(1+p.outstanding[i]) * p.boards[i].Board().LatencyScale() / float64(usable)
}

// boardConfig resolves the effective hv.Config of board i.
func (p *Platform) boardConfig(i int) hv.Config {
	if p.cfg.BoardConfigs != nil {
		return p.cfg.BoardConfigs[i]
	}
	return p.cfg.HV
}

// Energy sums the per-board energy reports.
func (p *Platform) Energy() hv.EnergyStats {
	var total hv.EnergyStats
	for _, b := range p.boards {
		es := b.Energy()
		total.StaticJoules += es.StaticJoules
		total.ActiveJoules += es.ActiveJoules
		total.OccupiedSlotSeconds += es.OccupiedSlotSeconds
		total.UsableSlotSeconds += es.UsableSlotSeconds
	}
	return total
}

// TenantServices merges delivered per-tenant fabric time across boards.
func (p *Platform) TenantServices() map[string]sim.Duration {
	out := map[string]sim.Duration{}
	for _, b := range p.boards {
		for tenant, d := range b.TenantServices() {
			out[tenant] += d
		}
	}
	return out
}

// minLoad is the least-loaded board's outstanding work estimate, the
// admission controller's view of how soon a new invocation could start.
func (p *Platform) minLoad() sim.Duration {
	best, any := sim.Duration(0), false
	for i := range p.boards {
		if p.mon != nil && !p.mon.Tracker(i).Placeable(p.eng.Now()) {
			continue
		}
		if l := p.boards[i].OutstandingEstimate(); !any || l < best {
			best, any = l, true
		}
	}
	if !any {
		// Nothing placeable: admission sees an effectively infinite queue.
		return p.cfg.HV.Horizon.Sub(0)
	}
	return best
}

// Stats returns platform counters.
func (p *Platform) Stats() Stats { return p.stats }

// AdmissionStats reports the admission controller's counters; the zero
// Stats when admission is disabled.
func (p *Platform) AdmissionStats() admit.Stats {
	if p.ctrl == nil {
		return admit.Stats{}
	}
	return p.ctrl.Stats()
}

// Boards reports the cluster size.
func (p *Platform) Boards() int { return len(p.boards) }

// Outstanding reports dispatched-not-retired invocations on one board
// (for tests and reports).
func (p *Platform) Outstanding(board int) int { return p.outstanding[board] }

// Run drives the simulation until every accepted invocation completes
// and returns per-invocation results — completed and rejected — ordered
// by invocation time (ties by board, rejections first). Dispatch-time
// submit failures accumulated during the run are returned joined.
func (p *Platform) Run() ([]Result, error) {
	// Drain rather than run to the horizon: DrainUntil leaves the clock
	// at the last fired event (the platform's makespan), so Energy
	// sampled after Run prices static power over time actually spanned
	// by work, not over the idle tail out to the horizon.
	p.eng.DrainUntil(p.cfg.HV.Horizon)
	if p.mon != nil {
		p.strand()
	}
	if err := errors.Join(p.errs...); err != nil {
		return nil, err
	}
	out := append([]Result(nil), p.rejects...)
	out = append(out, p.done...)
	for bi, b := range p.boards {
		results, err := b.Collect()
		if err != nil {
			return nil, fmt.Errorf("faas: board %d: %w", bi, err)
		}
		for _, r := range results {
			info, ok := p.inv[invKey{bi, r.AppID}]
			if !ok {
				return nil, fmt.Errorf("faas: board %d app %d has no invocation record", bi, r.AppID)
			}
			out = append(out, Result{
				Function:  info.function,
				Board:     bi,
				Cold:      info.cold,
				InvokedAt: info.invoked,
				Latency:   r.Retire.Sub(info.invoked),
				Items:     info.items,
				Attempts:  info.attempts,
			})
		}
	}
	if p.ctrl != nil && p.ctrl.QueueDepth() > 0 {
		return nil, fmt.Errorf("faas: %d admitted invocations still queued at horizon", p.ctrl.QueueDepth())
	}
	if len(out) != p.expected {
		return nil, fmt.Errorf("faas: %d results for %d invocations", len(out), p.expected)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InvokedAt != out[j].InvokedAt {
			return out[i].InvokedAt < out[j].InvokedAt
		}
		return out[i].Board < out[j].Board
	})
	return out, nil
}
