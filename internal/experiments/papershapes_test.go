package experiments

import (
	"testing"

	"nimblock/internal/workload"
)

// TestPaperShapes verifies the paper's headline orderings at full scale
// (10 sequences x 20 events per scenario). It takes a few seconds and is
// skipped under -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape verification skipped in -short mode")
	}
	cfg := DefaultConfig()
	data := map[workload.Scenario]*ScenarioData{}
	for _, sc := range workload.Scenarios() {
		d, err := RunScenario(cfg, sc, PolicyNames)
		if err != nil {
			t.Fatal(err)
		}
		data[sc] = d
	}

	f5, err := Fig5(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range workload.Scenarios() {
		red := f5.Reduction[sc]
		// Ordering claim (Section 5.2): Nimblock > PREMA > {FCFS, RR},
		// and every sharing algorithm beats the baseline on average.
		if !(red["Nimblock"] > red["PREMA"] && red["PREMA"] > red["RR"]) {
			t.Errorf("%v: ordering violated: %v", sc, red)
		}
		for _, pol := range SharingPolicyNames {
			if red[pol] <= 1 {
				t.Errorf("%v/%s: no improvement over baseline (%v)", sc, pol, red[pol])
			}
		}
		// Headline factor: Nimblock's improvement over PREMA is in the
		// paper's 1.2x-3x band.
		ratio := red["Nimblock"] / red["PREMA"]
		if ratio < 1.2 || ratio > 3.0 {
			t.Errorf("%v: Nimblock/PREMA ratio %.2f outside [1.2, 3.0]", sc, ratio)
		}
	}

	f6, err := Fig6(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range workload.Scenarios() {
		// Section 5.3 headline: Nimblock has the best p95 of the
		// priority-aware algorithms in every scenario.
		nim := f6.Tail[sc]["Nimblock"][0]
		if nim > f6.Tail[sc]["PREMA"][0] || nim > f6.Tail[sc]["RR"][0] {
			t.Errorf("%v: Nimblock p95 %v not best (PREMA %v, RR %v)",
				sc, nim, f6.Tail[sc]["PREMA"][0], f6.Tail[sc]["RR"][0])
		}
	}

	f7, err := Fig7(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range workload.Scenarios() {
		// Section 5.4: Nimblock has the lowest violation rate at the
		// tightest deadline and the earliest 10% error point.
		for _, pol := range PolicyNames {
			if pol == "Nimblock" {
				continue
			}
			if f7.Points[sc]["Nimblock"][0].ViolationRate > f7.Points[sc][pol][0].ViolationRate {
				t.Errorf("%v: Nimblock tight-deadline rate above %s", sc, pol)
			}
			nimEP := f7.ErrorPoint10[sc]["Nimblock"]
			polEP := f7.ErrorPoint10[sc][pol]
			if nimEP < 0 || (polEP >= 0 && polEP < nimEP) {
				t.Errorf("%v: %s reaches 10%% error point earlier (%v) than Nimblock (%v)", sc, pol, polEP, nimEP)
			}
		}
	}

	// Fig 9 shape at full scale: pipelining is the dominant mechanism
	// for batches above 1, and batch 1 is insensitive.
	ab, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := Fig9(ab)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range AblationBatchSizes {
		noPipe := f9.Relative[b]["NimblockNoPipe"]
		if b == 1 {
			if noPipe < 0.95 || noPipe > 1.05 {
				t.Errorf("batch 1: NoPipe relative %v, want ~1", noPipe)
			}
			continue
		}
		if noPipe < 1.1 {
			t.Errorf("batch %d: NoPipe relative %v, want clearly > 1", b, noPipe)
		}
	}
}
