package experiments

import (
	"fmt"
	"nimblock/internal/apps"

	"nimblock/internal/interconnect"
	"nimblock/internal/report"
	"nimblock/internal/workload"
)

// InterconnectStudyResult quantifies the paper's future-work NoC
// proposal: how much explicit inter-slot data movement costs when it
// serializes through the PS (the evaluated overlay) versus a
// Network-on-Chip, relative to the calibrated folded model.
type InterconnectStudyResult struct {
	// MeanResponse maps interconnect kind -> scenario -> mean response
	// seconds under Nimblock.
	MeanResponse map[interconnect.Kind]map[workload.Scenario]float64
	// Transfers maps kind -> total hand-offs priced (0 for folded).
	Transfers map[interconnect.Kind]int
}

// interconnectKinds in presentation order.
var interconnectKinds = []interconnect.Kind{interconnect.Folded, interconnect.PSBus, interconnect.NoC}

// InterconnectStudy runs a communication-heavy workload under Nimblock
// with each interconnect model. The stimulus restricts the pool to the
// edge-dense benchmarks (AlexNet contributes 184 hand-off edges per
// batch item) with a fixed batch of 10, where inter-slot data movement
// actually matters; chains with second-scale tasks barely notice it.
func InterconnectStudy(cfg Config) (*InterconnectStudyResult, error) {
	out := &InterconnectStudyResult{
		MeanResponse: map[interconnect.Kind]map[workload.Scenario]float64{},
		Transfers:    map[interconnect.Kind]int{},
	}
	pool := []string{apps.AlexNet, apps.OpticalFlow, apps.ImageCompression}
	for _, kind := range interconnectKinds {
		c := cfg
		switch kind {
		case interconnect.PSBus:
			c.HV.Interconnect = interconnect.DefaultPSBus()
		case interconnect.NoC:
			c.HV.Interconnect = interconnect.DefaultNoC()
		default:
			c.HV.Interconnect = interconnect.DefaultConfig()
		}
		out.MeanResponse[kind] = map[workload.Scenario]float64{}
		for _, sc := range []workload.Scenario{workload.Standard, workload.Stress} {
			spec := workload.Spec{Scenario: sc, Events: c.Events, FixedBatch: 10, Pool: pool}
			data, err := runSpec(c, spec, sc, []string{"Nimblock"})
			if err != nil {
				return nil, fmt.Errorf("interconnect %v, scenario %v: %w", kind, sc, err)
			}
			out.MeanResponse[kind][sc] = meanResponse(data.Results["Nimblock"])
		}
	}
	return out, nil
}

// Render prints the study.
func (r *InterconnectStudyResult) Render() string {
	t := &report.Table{
		Title:  "Interconnect study: Nimblock mean response by inter-slot data path",
		Header: []string{"Scenario", "folded (calibrated)", "ps-bus", "noc", "noc vs ps-bus"},
	}
	for _, sc := range []workload.Scenario{workload.Standard, workload.Stress} {
		folded := r.MeanResponse[interconnect.Folded][sc]
		ps := r.MeanResponse[interconnect.PSBus][sc]
		noc := r.MeanResponse[interconnect.NoC][sc]
		speedup := 0.0
		if noc > 0 {
			speedup = ps / noc
		}
		t.AddRow(sc.String(),
			report.FormatSeconds(folded),
			report.FormatSeconds(ps),
			report.FormatSeconds(noc),
			report.FormatFactor(speedup))
	}
	return t.Render()
}
