package experiments

import (
	"strings"
	"testing"
)

func TestCheckpointAblationQuick(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sequences = 1
	cfg.Events = 6
	r, err := CheckpointAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off := r.Cells["off"]
	for _, pol := range CheckpointPolicies {
		c := off[pol]
		if c.WatchdogKills == 0 {
			t.Fatalf("policy %s: the slow+hang plan killed nothing; the sweep tests nothing", pol)
		}
		if c.ResumedItems != 0 || c.SavedWork != 0 || c.CheckpointOverhead != 0 {
			t.Errorf("policy %s: disabled control reports checkpoint activity: %+v", pol, c)
		}
	}
	for _, v := range CheckpointVariants {
		cells := r.Cells[v.Name]
		if len(cells) != len(CheckpointPolicies) {
			t.Fatalf("variant %s: %d cells, want %d", v.Name, len(cells), len(CheckpointPolicies))
		}
		if !v.Ckpt.Enabled {
			continue
		}
		for pol, c := range cells {
			if c.ResumedItems == 0 || c.SavedWork <= 0 {
				t.Errorf("variant %s policy %s: nothing resumed: %+v", v.Name, pol, c)
			}
			if c.CheckpointOverhead <= 0 {
				t.Errorf("variant %s policy %s: state moved through the CAP for free", v.Name, pol)
			}
			// The headline trade: resumes salvage progress, so strictly
			// less fabric time is wasted than the disabled control.
			if c.WastedWork >= off[pol].WastedWork {
				t.Errorf("variant %s policy %s: wasted %v, control wasted %v",
					v.Name, pol, c.WastedWork, off[pol].WastedWork)
			}
		}
	}
	dump := r.Render()
	if !strings.Contains(dump, "Checkpoint ablation: NimblockCheckpoint") || !strings.Contains(dump, "50ms/8MiB") {
		t.Fatalf("render missing expected rows:\n%s", dump)
	}
}
