package experiments

import (
	"context"
	"fmt"

	"nimblock/internal/faults"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/report"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// CheckpointVariant is one checkpoint configuration swept by the
// ablation: a save period and a default per-task state size (the knobs
// that set the overhead side of the overhead-vs-responsiveness
// trade-off), plus the disabled control.
type CheckpointVariant struct {
	Name string
	Ckpt hv.CheckpointConfig
}

// CheckpointVariants sweeps the save period at the default state size,
// then the state size at the default period, with a disabled control.
// The two axes expose both sides of the cost model: shorter periods
// save more often (less progress lost per kill, more CAP overhead) and
// bigger states make every save and restore proportionally slower.
var CheckpointVariants = []CheckpointVariant{
	{Name: "off", Ckpt: hv.CheckpointConfig{}},
	{Name: "25ms/1MiB", Ckpt: hv.CheckpointConfig{Enabled: true, Period: 25 * sim.Millisecond}},
	{Name: "50ms/1MiB", Ckpt: hv.CheckpointConfig{Enabled: true, Period: 50 * sim.Millisecond}},
	{Name: "200ms/1MiB", Ckpt: hv.CheckpointConfig{Enabled: true, Period: 200 * sim.Millisecond}},
	{Name: "50ms/64KiB", Ckpt: hv.CheckpointConfig{Enabled: true, Period: 50 * sim.Millisecond, StateBytes: 64 << 10}},
	{Name: "50ms/8MiB", Ckpt: hv.CheckpointConfig{Enabled: true, Period: 50 * sim.Millisecond, StateBytes: 8 << 20}},
}

// CheckpointPolicies compares plain Nimblock (boundary preemption only)
// against the NimblockCheckpoint variant (mid-batch SLO rescue).
var CheckpointPolicies = []string{"Nimblock", "NimblockCheckpoint"}

// CheckpointCell aggregates one (variant, policy) combination.
type CheckpointCell struct {
	// MeanResponse is over all applications; HighPrioResponse over the
	// priority-9 tier only — the tier the rescue pass protects.
	MeanResponse     float64
	HighPrioResponse float64
	// Recovery accounting pooled across sequences.
	WatchdogKills    int
	ResumedItems     int
	CheckpointSaves  int
	CheckpointFaults int
	// WastedWork is fabric seconds burned on lost progress; SavedWork is
	// fabric seconds restores carried over; CheckpointOverhead is wall
	// seconds spent moving state through the CAP.
	WastedWork         float64
	SavedWork          float64
	CheckpointOverhead float64
}

// CheckpointResult reports the sweep: variant name -> policy -> cell.
type CheckpointResult struct {
	Cells map[string]map[string]CheckpointCell
}

// checkpointPlan slows and hangs items at fixed rates so the watchdog
// fires throughout the run: the scenario where resuming from a
// checkpoint (instead of re-executing from scratch) pays.
func checkpointPlan(seed int64) string {
	return fmt.Sprintf("seed %d\nslow prob=0.3 factor=4\nhang prob=0.03\n", seed)
}

// CheckpointAblation reruns the stress stimulus under every checkpoint
// variant and both policies with a slow+hang fault plan and the
// watchdog armed. Overhead (saves, CAP seconds) should rise as periods
// shrink and states grow; wasted work and high-priority response should
// fall — the overhead-vs-responsiveness trade-off the subsystem buys.
func CheckpointAblation(cfg Config) (*CheckpointResult, error) {
	factory, err := faults.ParsePlan(checkpointPlan(cfg.Seed))
	if err != nil {
		return nil, err
	}
	injector, err := factory.Factory()
	if err != nil {
		return nil, err
	}

	cfgs := make([]Config, len(CheckpointVariants))
	for i, v := range CheckpointVariants {
		c := cfg
		c.HV.Board.NewInjector = injector
		c.HV.WatchdogFactor = chaosWatchdogFactor
		c.HV.WatchdogGrace = chaosWatchdogGrace
		c.HV.Checkpoint = v.Ckpt
		cfgs[i] = c
	}

	spec := workload.Spec{Scenario: workload.Stress, Events: cfg.Events}
	seqs := workload.GenerateTest(spec, cfg.Seed)
	if cfg.Sequences < len(seqs) {
		seqs = seqs[:cfg.Sequences]
	}

	type ckptRun struct {
		res []hv.Result
		rec hv.RecoveryStats
	}
	var jobs []func(context.Context) (ckptRun, error)
	for vi, v := range CheckpointVariants {
		c, v := cfgs[vi], v
		for _, pol := range CheckpointPolicies {
			pol := pol
			for si, seq := range seqs {
				si, seq := si, seq
				jobs = append(jobs, func(context.Context) (ckptRun, error) {
					res, rec, _, err := runChaosSequence(c, pol, seq)
					if err != nil {
						return ckptRun{}, fmt.Errorf("checkpoint variant %s, sequence %d, policy %s: %w", v.Name, si, pol, err)
					}
					return ckptRun{res: res, rec: rec}, nil
				})
			}
		}
	}
	results, err := runJobs(cfg.workers(), jobs)
	if err != nil {
		return nil, err
	}

	out := &CheckpointResult{Cells: map[string]map[string]CheckpointCell{}}
	ji := 0
	for _, v := range CheckpointVariants {
		cells := map[string]CheckpointCell{}
		for _, pol := range CheckpointPolicies {
			cell := CheckpointCell{}
			var responses, high []float64
			for range seqs {
				run := results[ji]
				ji++
				for _, r := range run.res {
					responses = append(responses, r.Response.Seconds())
					if r.Priority == 9 {
						high = append(high, r.Response.Seconds())
					}
				}
				cell.WatchdogKills += run.rec.WatchdogKills
				cell.ResumedItems += run.rec.ResumedItems
				cell.CheckpointSaves += run.rec.CheckpointSaves
				cell.CheckpointFaults += run.rec.CheckpointFaults
				cell.WastedWork += run.rec.WastedWork.Seconds()
				cell.SavedWork += run.rec.SavedWork.Seconds()
				cell.CheckpointOverhead += run.rec.CheckpointOverhead.Seconds()
			}
			cell.MeanResponse = metrics.Mean(responses)
			cell.HighPrioResponse = metrics.Mean(high)
			cells[pol] = cell
		}
		out.Cells[v.Name] = cells
	}
	return out, nil
}

// Render prints one table per policy: rows sweep the variants, columns
// report the trade-off (response vs overhead vs salvage).
func (r *CheckpointResult) Render() string {
	out := ""
	for _, pol := range CheckpointPolicies {
		t := &report.Table{
			Title: fmt.Sprintf("Checkpoint ablation: %s (stress, slow+hang plan)", pol),
			Header: []string{
				"Period/State", "Mean resp", "Prio-9 resp", "Kills", "Resumed",
				"Saved", "Wasted", "Overhead",
			},
		}
		for _, v := range CheckpointVariants {
			c := r.Cells[v.Name][pol]
			t.AddRow(v.Name,
				report.FormatSeconds(c.MeanResponse),
				report.FormatSeconds(c.HighPrioResponse),
				fmt.Sprintf("%d", c.WatchdogKills),
				fmt.Sprintf("%d", c.ResumedItems),
				report.FormatSeconds(c.SavedWork),
				report.FormatSeconds(c.WastedWork),
				report.FormatSeconds(c.CheckpointOverhead),
			)
		}
		out += t.Render() + "\n"
	}
	return out
}
