package experiments

import (
	"fmt"

	"nimblock/internal/report"
	"nimblock/internal/workload"
)

// SlotSweepCounts are the overlay sizes swept: edge-scale devices hold
// fewer slots, cloud-scale devices more (the paper partitions the ZCU106
// into 10 and names both directions as future exploration).
var SlotSweepCounts = []int{4, 6, 8, 10, 14, 20}

// SlotSweepResult reports how overlay size affects each algorithm.
type SlotSweepResult struct {
	// MeanResponse maps slot count -> policy -> mean response seconds
	// under the stress scenario.
	MeanResponse map[int]map[string]float64
}

// SlotSweep reruns the stress stimulus on boards of different sizes.
// Nimblock is "flexible across different numbers of slots" (Section
// 2.1); the sweep quantifies that and shows where each algorithm
// saturates. Every board size is submitted to the worker pool together.
func SlotSweep(cfg Config) (*SlotSweepResult, error) {
	runs := make([]specRun, 0, len(SlotSweepCounts))
	for _, slots := range SlotSweepCounts {
		c := cfg
		c.HV.Board.Slots = slots
		spec := workload.Spec{Scenario: workload.Stress, Events: c.Events}
		runs = append(runs, specRun{cfg: c, spec: spec, scenario: workload.Stress, policies: PolicyNames})
	}
	datas, err := runSpecs(runs)
	if err != nil {
		return nil, fmt.Errorf("slot sweep: %w", err)
	}
	out := &SlotSweepResult{MeanResponse: map[int]map[string]float64{}}
	for i, slots := range SlotSweepCounts {
		out.MeanResponse[slots] = map[string]float64{}
		for _, pol := range PolicyNames {
			out.MeanResponse[slots][pol] = meanResponse(datas[i].Results[pol])
		}
	}
	return out, nil
}

// Render prints the sweep.
func (r *SlotSweepResult) Render() string {
	t := &report.Table{
		Title:  "Slot sweep: mean response (s) by overlay size (stress)",
		Header: append([]string{"Slots"}, PolicyNames...),
	}
	for _, slots := range SlotSweepCounts {
		row := []any{fmt.Sprintf("%d", slots)}
		for _, pol := range PolicyNames {
			row = append(row, report.FormatSeconds(r.MeanResponse[slots][pol]))
		}
		t.AddRow(row...)
	}
	return t.Render()
}
