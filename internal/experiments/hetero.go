package experiments

import (
	"context"
	"fmt"

	"nimblock/internal/cluster"
	"nimblock/internal/hv"
	"nimblock/internal/metrics"
	"nimblock/internal/obs"
	"nimblock/internal/report"
	"nimblock/internal/sched"
	"nimblock/internal/sim"
	"nimblock/internal/workload"
)

// HeteroRatios sweeps the heterogeneity ratio: the latency scale of the
// fleet's edge boards relative to the reference board. Ratio 1 is a
// homogeneous control (every board reference-speed); ratio 2 makes the
// edge boards half-speed.
var HeteroRatios = []float64{1, 2}

// HeteroPolicyNames is the policy axis of the heterogeneity sweep: the
// paper's five algorithms plus the energy- and fairness-aware variant.
var HeteroPolicyNames = []string{"Baseline", "FCFS", "PREMA", "RR", "Nimblock", "NimblockEnergy"}

// The fleet shape: one reference board (the configured slot count) and
// two narrower edge boards whose latency scale is the swept ratio.
const (
	heteroBoards    = 3
	heteroEdgeSlots = 4
)

// The power model applied to every board in the sweep, in watts per
// slot: static leakage burns on every usable slot for the whole run,
// active power only while a slot is reconfiguring or computing.
const (
	HeteroStaticWatts = 2.5
	HeteroActiveWatts = 1.5
)

// heteroTenants alternate over submissions with equal weights, so
// Jain's index over delivered service reads how evenly each policy
// splits the fabric between two equally-entitled tenants.
var heteroTenants = [2]string{"tenant-0", "tenant-1"}

// HeteroCell aggregates one (ratio, policy) combination.
type HeteroCell struct {
	// JoulesPerBatch is total fleet energy over completed submissions.
	JoulesPerBatch float64
	// StaticJoules and ActiveJoules split the fleet total.
	StaticJoules, ActiveJoules float64
	// Jain is Jain's fairness index over per-tenant delivered service,
	// pooled across the cell's runs.
	Jain float64
	// MeanResponse and P99Response are in seconds.
	MeanResponse, P99Response float64
	// Completed counts submissions (every one completes: no admission,
	// no faults in this sweep).
	Completed int
}

// HeteroResult reports the heterogeneity sweep.
type HeteroResult struct {
	// Cells maps ratio -> policy -> cell.
	Cells map[float64]map[string]HeteroCell
}

// heteroBoardConfigs builds the fleet for one ratio on top of the
// harness board config: board 0 is the reference, boards 1..N-1 are
// edge boards with fewer slots and the swept latency scale. Every
// board gets the sweep's power model.
func heteroBoardConfigs(base hv.Config, ratio float64) []hv.Config {
	cfgs := make([]hv.Config, heteroBoards)
	for i := range cfgs {
		c := base
		c.Board.StaticWattsPerSlot = HeteroStaticWatts
		c.Board.ActiveWattsPerSlot = HeteroActiveWatts
		if i > 0 {
			c.Board.Slots = heteroEdgeSlots
			c.Board.LatencyScale = ratio
		}
		cfgs[i] = c
	}
	return cfgs
}

// Hetero sweeps heterogeneity ratio x policy over a three-board fleet
// with a per-slot power model, reporting joules per batch, Jain's
// fairness index over two equally-weighted tenants, and response
// latency. Placement is hetero-aware (scores fold in each board's
// latency scale and width); within a board the swept policy schedules.
func Hetero(cfg Config) (*HeteroResult, error) {
	for _, pol := range HeteroPolicyNames {
		if _, err := NewPolicy(pol, cfg.HV.Board); err != nil {
			return nil, err
		}
	}
	spec := workload.Spec{Scenario: workload.Stress, Events: cfg.Events}
	seqs := workload.GenerateTest(spec, cfg.Seed)
	if cfg.Sequences < len(seqs) {
		seqs = seqs[:cfg.Sequences]
	}

	type heteroRun struct {
		energy    hv.EnergyStats
		service   map[string]sim.Duration
		responses []float64
	}
	var jobs []func(context.Context) (heteroRun, error)
	for _, ratio := range HeteroRatios {
		ratio := ratio
		for _, pol := range HeteroPolicyNames {
			pol := pol
			for si, seq := range seqs {
				si, seq := si, seq
				jobs = append(jobs, func(context.Context) (heteroRun, error) {
					eng := sim.NewEngine()
					defer countEvents(eng)
					bcfgs := heteroBoardConfigs(cfg.HV, ratio)
					var sink obs.Sink
					if cfg.NewObserver != nil {
						sink = cfg.NewObserver()
						for i := range bcfgs {
							bcfgs[i].Observer = obs.Tee(bcfgs[i].Observer, sink)
						}
					}
					cl, err := cluster.New(eng, cluster.Config{
						Boards:       heteroBoards,
						HV:           cfg.HV,
						BoardConfigs: bcfgs,
						Dispatch:     cluster.HeteroAware,
						Seed:         cfg.Seed,
					}, func(b hv.Config) sched.Scheduler {
						p, perr := NewPolicy(pol, b.Board)
						if perr != nil {
							panic(perr) // validated above; unreachable
						}
						return p
					})
					if err != nil {
						return heteroRun{}, err
					}
					for i, ev := range seq {
						err := cl.SubmitWith(cachedGraph(ev.App), ev.Batch, ev.Priority, ev.Arrival,
							cluster.SubmitOptions{Tenant: heteroTenants[i%2], Weight: 1})
						if err != nil {
							return heteroRun{}, err
						}
					}
					// Drain the engine before collecting: the clock stops at
					// the last event (the makespan), so the energy sample
					// integrates static power over the time the batch
					// actually needed — cluster.Run alone would advance the
					// clock to the idle horizon and drown the signal.
					eng.Run()
					run := heteroRun{energy: cl.Energy(), service: cl.TenantServices()}
					res, err := cl.Run()
					if err != nil {
						return heteroRun{}, fmt.Errorf("hetero ratio %v, policy %s, sequence %d: %w", ratio, pol, si, err)
					}
					for _, r := range res {
						run.responses = append(run.responses, r.Response.Seconds())
					}
					if m, ok := sink.(*obs.Metrics); ok {
						m.RecordEnergy(run.energy.StaticJoules, run.energy.ActiveJoules)
						m.RecordFairness(metrics.JainIndex(serviceVector(run.service)))
					}
					return run, nil
				})
			}
		}
	}
	results, err := runJobs(cfg.workers(), jobs)
	if err != nil {
		return nil, err
	}

	out := &HeteroResult{Cells: map[float64]map[string]HeteroCell{}}
	ji := 0
	for _, ratio := range HeteroRatios {
		out.Cells[ratio] = map[string]HeteroCell{}
		for _, pol := range HeteroPolicyNames {
			cell := HeteroCell{}
			var responses []float64
			service := map[string]sim.Duration{}
			for range seqs {
				run := results[ji]
				ji++
				cell.StaticJoules += run.energy.StaticJoules
				cell.ActiveJoules += run.energy.ActiveJoules
				cell.Completed += len(run.responses)
				responses = append(responses, run.responses...)
				for tenant, d := range run.service {
					service[tenant] += d
				}
			}
			if cell.Completed > 0 {
				cell.JoulesPerBatch = (cell.StaticJoules + cell.ActiveJoules) / float64(cell.Completed)
			}
			cell.Jain = metrics.JainIndex(serviceVector(service))
			cell.MeanResponse = metrics.Mean(responses)
			cell.P99Response = metrics.Percentile(responses, 99)
			out.Cells[ratio][pol] = cell
		}
	}
	return out, nil
}

// serviceVector flattens a per-tenant service map into the fixed tenant
// order (stable input for Jain's index).
func serviceVector(svc map[string]sim.Duration) []float64 {
	out := make([]float64, 0, len(heteroTenants))
	for _, tenant := range heteroTenants {
		out = append(out, svc[tenant].Seconds())
	}
	return out
}

// Render prints one table per heterogeneity ratio.
func (r *HeteroResult) Render() string {
	out := ""
	for _, ratio := range HeteroRatios {
		t := &report.Table{
			Title: fmt.Sprintf("Heterogeneous fleet: edge boards %dx slots at %gx latency (stress, %d boards, hetero-aware dispatch, %g/%g W per slot static/active)",
				heteroEdgeSlots, ratio, heteroBoards, HeteroStaticWatts, HeteroActiveWatts),
			Header: []string{"Policy", "J/batch", "Static J", "Active J", "Jain", "Mean resp", "p99 resp"},
		}
		for _, pol := range HeteroPolicyNames {
			c := r.Cells[ratio][pol]
			t.AddRow(
				pol,
				fmt.Sprintf("%.1f", c.JoulesPerBatch),
				fmt.Sprintf("%.0f", c.StaticJoules),
				fmt.Sprintf("%.0f", c.ActiveJoules),
				fmt.Sprintf("%.3f", c.Jain),
				report.FormatSeconds(c.MeanResponse),
				report.FormatSeconds(c.P99Response),
			)
		}
		out += t.Render() + "\n"
	}
	return out
}
