package experiments

import (
	"strings"
	"testing"
)

func TestChaosQuick(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sequences = 1
	cfg.Events = 6
	r, err := Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range ChaosRates {
		cells := r.Cells[rate]
		if len(cells) != len(PolicyNames) {
			t.Fatalf("rate %v: %d cells, want %d", rate, len(cells), len(PolicyNames))
		}
		for pol, c := range cells {
			if c.MeanResponse <= 0 {
				t.Errorf("rate %v policy %s: mean response %v", rate, pol, c.MeanResponse)
			}
			if rate == 0 && c.FaultsInjected != 0 {
				t.Errorf("policy %s: %d faults in the fault-free control", pol, c.FaultsInjected)
			}
			if rate >= 0.1 && c.FaultsInjected == 0 {
				t.Errorf("rate %v policy %s: no faults fired", rate, pol)
			}
			if c.FaultsInjected != c.Recovered {
				t.Errorf("rate %v policy %s: %d faults but %d recovered — uniform transients must all recover",
					rate, pol, c.FaultsInjected, c.Recovered)
			}
			if c.SlotsOffline != 0 || c.WatchdogKills != 0 {
				t.Errorf("rate %v policy %s: uniform transients took slots offline (%d) or killed items (%d)",
					rate, pol, c.SlotsOffline, c.WatchdogKills)
			}
			board := cfg.HV.Board.Slots
			if c.EffectiveSlots != float64(board) {
				t.Errorf("rate %v policy %s: effective slots %v, want full board %d",
					rate, pol, c.EffectiveSlots, board)
			}
		}
	}
	// The sweep is deterministic: a faulted Nimblock run is never faster
	// than the fault-free control on the identical stimulus.
	if f0, f2 := r.Cells[0]["Nimblock"].MeanResponse, r.Cells[0.2]["Nimblock"].MeanResponse; f2 < f0 {
		t.Errorf("faults sped Nimblock up: %v < %v", f2, f0)
	}
	dump := r.Render()
	if !strings.Contains(dump, "Chaos: fault rate 20%") || !strings.Contains(dump, "Nimblock") {
		t.Fatalf("render missing expected rows:\n%s", dump)
	}
}
